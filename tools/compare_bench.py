#!/usr/bin/env python3
"""Diff a fresh radsurf perf run against a committed BENCH_perf.json.

Usage:
    tools/compare_bench.py BASELINE.json FRESH.json [--min-speedup X]

Prints a per-scenario speedup table (fresh shots/s over baseline shots/s)
for every scenario present in both files, plus scenarios only one side
measured.  A watchlist of named hot-path scenarios (see WATCHED_SCENARIOS;
extend with --watch) is additionally checked for regressions beyond
--watch-threshold (default 20%) and flagged in a summary block.
Report-only by default: the exit code is 0 regardless of the numbers,
so CI can surface regressions without blocking on shared-runner timing
noise.  Pass --min-speedup to turn it into a gate (exit 1 when any
common scenario falls below the threshold) for local perf work.
"""

import argparse
import json
import sys

# Scenarios on the decode/campaign hot path, where a real regression is
# a product problem rather than runner noise.  Flagged (never fatal
# without --min-speedup) when they lose more than --watch-threshold.
WATCHED_SCENARIOS = (
    "decoder/mwpm/rep15/k20",
    "decoder/mwpm/rep15/k32",
    "decoder/mwpm/rep15/k40",
    "decoder/mwpm_cached/rep15/pool32",
    "pipeline/intrinsic/rep5",
    "pipeline/radiation/rep5/frame",
    "pipeline/radiation/rotated_memz_d11",
    "pipeline/radiation/rotated_memz_d17",
    "pipeline/radiation/rotated_memz_d21",
    "simulator/compact/rotated_memz_d11",
    "simulator/compact/rotated_memz_d17",
    "simulator/compact/rotated_memz_d21",
    "timeline/rep5_200r/window",
    "timeline/burst_rotated_d5/unaware",
    "timeline/burst_rotated_d5/aware",
)


def load_records(path):
    with open(path) as f:
        data = json.load(f)
    records = {}
    for record in data.get("records", []):
        name = record.get("scenario")
        rate = record.get("shots_per_second")
        if isinstance(name, str) and isinstance(rate, (int, float)) and rate > 0:
            records[name] = float(rate)
    return records


def fmt_rate(rate):
    if rate >= 1e6:
        return f"{rate / 1e6:.2f}M"
    if rate >= 1e3:
        return f"{rate / 1e3:.1f}k"
    return f"{rate:.1f}"


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed BENCH_perf.json")
    parser.add_argument("fresh", help="BENCH_perf.json from a fresh run")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="exit 1 if any common scenario's speedup falls below this",
    )
    parser.add_argument(
        "--watch",
        action="append",
        default=[],
        metavar="SCENARIO",
        help="additional scenario name to put on the regression watchlist",
    )
    parser.add_argument(
        "--watch-threshold",
        type=float,
        default=0.2,
        help="flag watched scenarios that regress by more than this "
        "fraction (default 0.2 = 20%%); report-only",
    )
    args = parser.parse_args(argv)

    baseline = load_records(args.baseline)
    fresh = load_records(args.fresh)
    common = sorted(set(baseline) & set(fresh))
    removed = sorted(set(baseline) - set(fresh))
    added = sorted(set(fresh) - set(baseline))
    if not common and not removed and not added:
        print("no scenarios in either file")
        return 0

    # One-sided scenarios are part of the diff, not noise: a rename or a
    # dropped bench must show up even when the two files share nothing.
    width = max(len(name) for name in common + removed + added)
    print(f"{'scenario':<{width}}  {'baseline':>10}  {'fresh':>10}  {'speedup':>8}")
    worst = None
    for name in common:
        speedup = fresh[name] / baseline[name]
        if worst is None or speedup < worst[1]:
            worst = (name, speedup)
        marker = "" if 0.9 <= speedup <= 1.1 else ("  ▲" if speedup > 1 else "  ▼")
        print(
            f"{name:<{width}}  {fmt_rate(baseline[name]):>10}  "
            f"{fmt_rate(fresh[name]):>10}  {speedup:>7.2f}x{marker}"
        )

    for name in removed:
        print(f"{name:<{width}}  {fmt_rate(baseline[name]):>10}  {'—':>10}  (not re-run)")
    for name in added:
        print(f"{name:<{width}}  {'—':>10}  {fmt_rate(fresh[name]):>10}  (new scenario)")

    summary = f"\n{len(common)} scenarios compared"
    if worst is not None:
        summary += f"; worst speedup {worst[1]:.2f}x ({worst[0]})"
    if removed or added:
        summary += f"; {len(removed)} removed, {len(added)} added"
    print(summary)

    watched = list(WATCHED_SCENARIOS) + args.watch
    floor = 1.0 - args.watch_threshold
    flagged = [
        (name, fresh[name] / baseline[name])
        for name in watched
        if name in baseline and name in fresh
        and fresh[name] / baseline[name] < floor
    ]
    if flagged:
        print(
            f"\nREGRESSION WATCH: {len(flagged)} watched scenario(s) lost "
            f"more than {args.watch_threshold:.0%} (report-only):"
        )
        for name, speedup in flagged:
            print(f"  {name}: {speedup:.2f}x of baseline")

    if args.min_speedup is not None and worst is not None and worst[1] < args.min_speedup:
        print(f"FAIL: below --min-speedup {args.min_speedup}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
