#!/usr/bin/env python3
"""Diff a fresh radsurf perf run against a committed BENCH_perf.json.

Usage:
    tools/compare_bench.py BASELINE.json FRESH.json [--min-speedup X]

Prints a per-scenario speedup table (fresh shots/s over baseline shots/s)
for every scenario present in both files, plus scenarios only one side
measured.  Report-only by default: the exit code is 0 regardless of the
numbers, so CI can surface regressions without blocking on shared-runner
timing noise.  Pass --min-speedup to turn it into a gate (exit 1 when any
common scenario falls below the threshold) for local perf work.
"""

import argparse
import json
import sys


def load_records(path):
    with open(path) as f:
        data = json.load(f)
    records = {}
    for record in data.get("records", []):
        name = record.get("scenario")
        rate = record.get("shots_per_second")
        if isinstance(name, str) and isinstance(rate, (int, float)) and rate > 0:
            records[name] = float(rate)
    return records


def fmt_rate(rate):
    if rate >= 1e6:
        return f"{rate / 1e6:.2f}M"
    if rate >= 1e3:
        return f"{rate / 1e3:.1f}k"
    return f"{rate:.1f}"


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed BENCH_perf.json")
    parser.add_argument("fresh", help="BENCH_perf.json from a fresh run")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="exit 1 if any common scenario's speedup falls below this",
    )
    args = parser.parse_args()

    baseline = load_records(args.baseline)
    fresh = load_records(args.fresh)
    common = sorted(set(baseline) & set(fresh))
    if not common:
        print("no common scenarios between the two files")
        return 0

    width = max(len(name) for name in common)
    print(f"{'scenario':<{width}}  {'baseline':>10}  {'fresh':>10}  {'speedup':>8}")
    worst = None
    for name in common:
        speedup = fresh[name] / baseline[name]
        if worst is None or speedup < worst[1]:
            worst = (name, speedup)
        marker = "" if 0.9 <= speedup <= 1.1 else ("  ▲" if speedup > 1 else "  ▼")
        print(
            f"{name:<{width}}  {fmt_rate(baseline[name]):>10}  "
            f"{fmt_rate(fresh[name]):>10}  {speedup:>7.2f}x{marker}"
        )

    for name in sorted(set(baseline) - set(fresh)):
        print(f"{name:<{width}}  {fmt_rate(baseline[name]):>10}  {'—':>10}  (not re-run)")
    for name in sorted(set(fresh) - set(baseline)):
        print(f"{name:<{width}}  {'—':>10}  {fmt_rate(fresh[name]):>10}  (new scenario)")

    print(
        f"\n{len(common)} scenarios compared; worst speedup "
        f"{worst[1]:.2f}x ({worst[0]})"
    )
    if args.min_speedup is not None and worst[1] < args.min_speedup:
        print(f"FAIL: below --min-speedup {args.min_speedup}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
