#!/usr/bin/env python3
"""Diff a fresh radsurf perf run against a committed BENCH_perf.json.

Usage:
    tools/compare_bench.py BASELINE.json FRESH.json [--min-speedup X]

Prints a per-scenario speedup table (fresh shots/s over baseline shots/s)
for every scenario present in both files, plus scenarios only one side
measured.  A watchlist of named hot-path scenarios (see WATCHED_SCENARIOS;
extend with --watch) is additionally checked for regressions beyond
--watch-threshold (default 20%) and flagged in a summary block.

Records carrying commit-latency percentiles (commit_p50_ms/commit_p99_ms,
the serve/ family) get a second table comparing p50/p99 directly — lower
is better, so the regression direction is inverted: a watched latency
scenario (LATENCY_WATCHED; extend with --watch-latency) is flagged when
its fresh p99 exceeds baseline by more than --watch-threshold.

Report-only by default: the exit code is 0 regardless of the numbers,
so CI can surface regressions without blocking on shared-runner timing
noise.  Pass --min-speedup to turn it into a gate (exit 1 when any
common scenario falls below the threshold) for local perf work.
"""

import argparse
import json
import sys

# Scenarios on the decode/campaign hot path, where a real regression is
# a product problem rather than runner noise.  Flagged (never fatal
# without --min-speedup) when they lose more than --watch-threshold.
WATCHED_SCENARIOS = (
    "decoder/mwpm/rep15/k20",
    "decoder/mwpm/rep15/k32",
    "decoder/mwpm/rep15/k40",
    "decoder/mwpm_cached/rep15/pool32",
    "pipeline/intrinsic/rep5",
    "pipeline/radiation/rep5/frame",
    "pipeline/radiation/rotated_memz_d11",
    "pipeline/radiation/rotated_memz_d17",
    "pipeline/radiation/rotated_memz_d21",
    "simulator/compact/rotated_memz_d11",
    "simulator/compact/rotated_memz_d17",
    "simulator/compact/rotated_memz_d21",
    "timeline/rep5_200r/window",
    "timeline/burst_rotated_d5/unaware",
    "timeline/burst_rotated_d5/aware",
    "serve/rep5_200r_w10/c4",
    "serve/rep5_200r_w10/c8",
)

# Latency records where the p99 commit latency IS the product claim
# (bounded-latency window commits): flagged when fresh p99 grows beyond
# the watch threshold.  Lower is better — opposite direction to speedups.
LATENCY_WATCHED = (
    "serve/rep5_200r_w10/c1",
    "serve/rep5_200r_w10/c4",
    "serve/rep5_200r_w10/c8",
    "serve/rep5_200r_w10/unix_c4",
)


def load_records(path):
    with open(path) as f:
        data = json.load(f)
    records = {}
    for record in data.get("records", []):
        name = record.get("scenario")
        rate = record.get("shots_per_second")
        if isinstance(name, str) and isinstance(rate, (int, float)) and rate > 0:
            records[name] = float(rate)
    return records


def load_latencies(path):
    """scenario -> (p50_ms, p99_ms) for records carrying both percentiles."""
    with open(path) as f:
        data = json.load(f)
    latencies = {}
    for record in data.get("records", []):
        name = record.get("scenario")
        p50 = record.get("commit_p50_ms")
        p99 = record.get("commit_p99_ms")
        if (
            isinstance(name, str)
            and isinstance(p50, (int, float))
            and isinstance(p99, (int, float))
            and p50 > 0
            and p99 > 0
        ):
            latencies[name] = (float(p50), float(p99))
    return latencies


def fmt_rate(rate):
    if rate >= 1e6:
        return f"{rate / 1e6:.2f}M"
    if rate >= 1e3:
        return f"{rate / 1e3:.1f}k"
    return f"{rate:.1f}"


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed BENCH_perf.json")
    parser.add_argument("fresh", help="BENCH_perf.json from a fresh run")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="exit 1 if any common scenario's speedup falls below this",
    )
    parser.add_argument(
        "--watch",
        action="append",
        default=[],
        metavar="SCENARIO",
        help="additional scenario name to put on the regression watchlist",
    )
    parser.add_argument(
        "--watch-threshold",
        type=float,
        default=0.2,
        help="flag watched scenarios that regress by more than this "
        "fraction (default 0.2 = 20%%); report-only",
    )
    parser.add_argument(
        "--watch-latency",
        action="append",
        default=[],
        metavar="SCENARIO",
        help="additional scenario name to put on the p99 latency watchlist",
    )
    args = parser.parse_args(argv)

    baseline = load_records(args.baseline)
    fresh = load_records(args.fresh)
    common = sorted(set(baseline) & set(fresh))
    removed = sorted(set(baseline) - set(fresh))
    added = sorted(set(fresh) - set(baseline))
    if not common and not removed and not added:
        print("no scenarios in either file")
        return 0

    # One-sided scenarios are part of the diff, not noise: a rename or a
    # dropped bench must show up even when the two files share nothing.
    width = max(len(name) for name in common + removed + added)
    print(f"{'scenario':<{width}}  {'baseline':>10}  {'fresh':>10}  {'speedup':>8}")
    worst = None
    for name in common:
        speedup = fresh[name] / baseline[name]
        if worst is None or speedup < worst[1]:
            worst = (name, speedup)
        marker = "" if 0.9 <= speedup <= 1.1 else ("  ▲" if speedup > 1 else "  ▼")
        print(
            f"{name:<{width}}  {fmt_rate(baseline[name]):>10}  "
            f"{fmt_rate(fresh[name]):>10}  {speedup:>7.2f}x{marker}"
        )

    for name in removed:
        print(f"{name:<{width}}  {fmt_rate(baseline[name]):>10}  {'—':>10}  (not re-run)")
    for name in added:
        print(f"{name:<{width}}  {'—':>10}  {fmt_rate(fresh[name]):>10}  (new scenario)")

    summary = f"\n{len(common)} scenarios compared"
    if worst is not None:
        summary += f"; worst speedup {worst[1]:.2f}x ({worst[0]})"
    if removed or added:
        summary += f"; {len(removed)} removed, {len(added)} added"
    print(summary)

    # --- commit-latency percentiles (lower is better) ----------------------
    base_lat = load_latencies(args.baseline)
    fresh_lat = load_latencies(args.fresh)
    lat_common = sorted(set(base_lat) & set(fresh_lat))
    if lat_common:
        lat_width = max(len(name) for name in lat_common)
        print(
            f"\n{'latency (commit p50/p99 ms)':<{lat_width}}  "
            f"{'baseline':>15}  {'fresh':>15}  {'p99 ratio':>9}"
        )
        for name in lat_common:
            b50, b99 = base_lat[name]
            f50, f99 = fresh_lat[name]
            ratio = f99 / b99
            marker = "" if 0.9 <= ratio <= 1.1 else ("  ▼" if ratio > 1 else "  ▲")
            print(
                f"{name:<{lat_width}}  {b50:>6.2f} /{b99:>7.2f}  "
                f"{f50:>6.2f} /{f99:>7.2f}  {ratio:>8.2f}x{marker}"
            )

    watched = list(WATCHED_SCENARIOS) + args.watch
    floor = 1.0 - args.watch_threshold
    flagged = [
        (name, fresh[name] / baseline[name])
        for name in watched
        if name in baseline and name in fresh
        and fresh[name] / baseline[name] < floor
    ]
    if flagged:
        print(
            f"\nREGRESSION WATCH: {len(flagged)} watched scenario(s) lost "
            f"more than {args.watch_threshold:.0%} (report-only):"
        )
        for name, speedup in flagged:
            print(f"  {name}: {speedup:.2f}x of baseline")

    # Latency direction is inverted: flag growth beyond the threshold.
    lat_watched = list(LATENCY_WATCHED) + args.watch_latency
    ceiling = 1.0 + args.watch_threshold
    lat_flagged = [
        (name, fresh_lat[name][1] / base_lat[name][1])
        for name in lat_watched
        if name in base_lat and name in fresh_lat
        and fresh_lat[name][1] / base_lat[name][1] > ceiling
    ]
    if lat_flagged:
        print(
            f"\nLATENCY WATCH: {len(lat_flagged)} watched scenario(s) grew "
            f"p99 by more than {args.watch_threshold:.0%} (report-only):"
        )
        for name, ratio in lat_flagged:
            print(f"  {name}: {ratio:.2f}x of baseline p99")

    if args.min_speedup is not None and worst is not None and worst[1] < args.min_speedup:
        print(f"FAIL: below --min-speedup {args.min_speedup}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
