#!/usr/bin/env python3
"""Unit checks for tools/compare_bench.py (stdlib only, run by CI).

The regression these pin down: one-sided scenarios must be reported as
additions/removals even when the two files have no scenario in common
(the old script early-returned and silently dropped them).
"""

import contextlib
import io
import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import compare_bench


def bench_file(tmpdir, name, rates):
    path = os.path.join(tmpdir, name)
    records = [
        {"scenario": scenario, "shots_per_second": rate}
        for scenario, rate in rates.items()
    ]
    with open(path, "w") as f:
        json.dump({"bench": "radsurf-perf", "records": records}, f)
    return path


def run_compare(argv):
    out = io.StringIO()
    with contextlib.redirect_stdout(out):
        code = compare_bench.main(argv)
    return code, out.getvalue()


class CompareBenchTest(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.tmpdir = self._tmp.name
        self.addCleanup(self._tmp.cleanup)

    def test_common_scenarios_get_speedups(self):
        base = bench_file(self.tmpdir, "base.json", {"a": 100.0, "b": 200.0})
        fresh = bench_file(self.tmpdir, "fresh.json", {"a": 150.0, "b": 100.0})
        code, out = run_compare([base, fresh])
        self.assertEqual(code, 0)
        self.assertIn("1.50x", out)
        self.assertIn("0.50x", out)
        self.assertIn("2 scenarios compared", out)

    def test_disjoint_files_report_additions_and_removals(self):
        base = bench_file(self.tmpdir, "base.json", {"old/bench": 100.0})
        fresh = bench_file(self.tmpdir, "fresh.json", {"new/bench": 50.0})
        code, out = run_compare([base, fresh])
        self.assertEqual(code, 0)
        self.assertIn("old/bench", out)
        self.assertIn("(not re-run)", out)
        self.assertIn("new/bench", out)
        self.assertIn("(new scenario)", out)
        self.assertIn("0 scenarios compared; 1 removed, 1 added", out)

    def test_partial_overlap_lists_all_three_kinds(self):
        base = bench_file(self.tmpdir, "base.json", {"a": 100.0, "gone": 1.0})
        fresh = bench_file(self.tmpdir, "fresh.json", {"a": 100.0, "new": 2.0})
        code, out = run_compare([base, fresh])
        self.assertEqual(code, 0)
        self.assertIn("1.00x", out)
        self.assertIn("(not re-run)", out)
        self.assertIn("(new scenario)", out)
        self.assertIn("1 removed, 1 added", out)

    def test_empty_files_are_not_an_error(self):
        base = bench_file(self.tmpdir, "base.json", {})
        fresh = bench_file(self.tmpdir, "fresh.json", {})
        code, out = run_compare([base, fresh])
        self.assertEqual(code, 0)
        self.assertIn("no scenarios in either file", out)

    def test_min_speedup_gates_only_on_common_scenarios(self):
        base = bench_file(self.tmpdir, "base.json", {"a": 100.0})
        fresh = bench_file(self.tmpdir, "fresh.json", {"a": 50.0})
        code, _ = run_compare([base, fresh, "--min-speedup", "0.8"])
        self.assertEqual(code, 1)
        # Disjoint files have no common scenario to gate on: report-only.
        disjoint = bench_file(self.tmpdir, "disjoint.json", {"b": 10.0})
        code, _ = run_compare([base, disjoint, "--min-speedup", "0.8"])
        self.assertEqual(code, 0)

    def test_nonpositive_and_malformed_records_are_skipped(self):
        path = os.path.join(self.tmpdir, "odd.json")
        with open(path, "w") as f:
            json.dump(
                {
                    "records": [
                        {"scenario": "ok", "shots_per_second": 5.0},
                        {"scenario": "zero", "shots_per_second": 0},
                        {"scenario": "textual", "shots_per_second": "fast"},
                        {"shots_per_second": 9.0},
                    ]
                },
                f,
            )
        self.assertEqual(compare_bench.load_records(path), {"ok": 5.0})


if __name__ == "__main__":
    unittest.main()
