#!/usr/bin/env python3
"""Unit checks for tools/compare_bench.py (stdlib only, run by CI).

The regression these pin down: one-sided scenarios must be reported as
additions/removals even when the two files have no scenario in common
(the old script early-returned and silently dropped them).
"""

import contextlib
import io
import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import compare_bench


def bench_file(tmpdir, name, rates, latencies=None):
    path = os.path.join(tmpdir, name)
    records = [
        {"scenario": scenario, "shots_per_second": rate}
        for scenario, rate in rates.items()
    ]
    for scenario, (p50, p99) in (latencies or {}).items():
        records.append(
            {
                "scenario": scenario,
                "shots_per_second": 1.0,
                "commit_p50_ms": p50,
                "commit_p99_ms": p99,
            }
        )
    with open(path, "w") as f:
        json.dump({"bench": "radsurf-perf", "records": records}, f)
    return path


def run_compare(argv):
    out = io.StringIO()
    with contextlib.redirect_stdout(out):
        code = compare_bench.main(argv)
    return code, out.getvalue()


class CompareBenchTest(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.tmpdir = self._tmp.name
        self.addCleanup(self._tmp.cleanup)

    def test_common_scenarios_get_speedups(self):
        base = bench_file(self.tmpdir, "base.json", {"a": 100.0, "b": 200.0})
        fresh = bench_file(self.tmpdir, "fresh.json", {"a": 150.0, "b": 100.0})
        code, out = run_compare([base, fresh])
        self.assertEqual(code, 0)
        self.assertIn("1.50x", out)
        self.assertIn("0.50x", out)
        self.assertIn("2 scenarios compared", out)

    def test_disjoint_files_report_additions_and_removals(self):
        base = bench_file(self.tmpdir, "base.json", {"old/bench": 100.0})
        fresh = bench_file(self.tmpdir, "fresh.json", {"new/bench": 50.0})
        code, out = run_compare([base, fresh])
        self.assertEqual(code, 0)
        self.assertIn("old/bench", out)
        self.assertIn("(not re-run)", out)
        self.assertIn("new/bench", out)
        self.assertIn("(new scenario)", out)
        self.assertIn("0 scenarios compared; 1 removed, 1 added", out)

    def test_partial_overlap_lists_all_three_kinds(self):
        base = bench_file(self.tmpdir, "base.json", {"a": 100.0, "gone": 1.0})
        fresh = bench_file(self.tmpdir, "fresh.json", {"a": 100.0, "new": 2.0})
        code, out = run_compare([base, fresh])
        self.assertEqual(code, 0)
        self.assertIn("1.00x", out)
        self.assertIn("(not re-run)", out)
        self.assertIn("(new scenario)", out)
        self.assertIn("1 removed, 1 added", out)

    def test_empty_files_are_not_an_error(self):
        base = bench_file(self.tmpdir, "base.json", {})
        fresh = bench_file(self.tmpdir, "fresh.json", {})
        code, out = run_compare([base, fresh])
        self.assertEqual(code, 0)
        self.assertIn("no scenarios in either file", out)

    def test_min_speedup_gates_only_on_common_scenarios(self):
        base = bench_file(self.tmpdir, "base.json", {"a": 100.0})
        fresh = bench_file(self.tmpdir, "fresh.json", {"a": 50.0})
        code, _ = run_compare([base, fresh, "--min-speedup", "0.8"])
        self.assertEqual(code, 1)
        # Disjoint files have no common scenario to gate on: report-only.
        disjoint = bench_file(self.tmpdir, "disjoint.json", {"b": 10.0})
        code, _ = run_compare([base, disjoint, "--min-speedup", "0.8"])
        self.assertEqual(code, 0)

    def test_latency_records_get_a_percentile_table(self):
        base = bench_file(
            self.tmpdir, "base.json", {"a": 100.0},
            latencies={"serve/x/c4": (1.0, 2.0)},
        )
        fresh = bench_file(
            self.tmpdir, "fresh.json", {"a": 100.0},
            latencies={"serve/x/c4": (1.5, 4.0)},
        )
        code, out = run_compare([base, fresh])
        self.assertEqual(code, 0)
        self.assertIn("latency (commit p50/p99 ms)", out)
        self.assertIn("2.00x", out)  # p99 ratio 4.0 / 2.0

    def test_latency_watchlist_flags_p99_growth_not_shrink(self):
        watched = "serve/rep5_200r_w10/c4"
        base = bench_file(
            self.tmpdir, "base.json", {}, latencies={watched: (1.0, 2.0)}
        )
        worse = bench_file(
            self.tmpdir, "worse.json", {}, latencies={watched: (1.0, 3.0)}
        )
        better = bench_file(
            self.tmpdir, "better.json", {}, latencies={watched: (1.0, 1.0)}
        )
        code, out = run_compare([base, worse])
        self.assertEqual(code, 0)  # report-only
        self.assertIn("LATENCY WATCH", out)
        self.assertIn(watched, out)
        code, out = run_compare([base, better])
        self.assertEqual(code, 0)
        self.assertNotIn("LATENCY WATCH", out)

    def test_custom_latency_watch_flag(self):
        base = bench_file(
            self.tmpdir, "base.json", {}, latencies={"my/serve": (1.0, 2.0)}
        )
        fresh = bench_file(
            self.tmpdir, "fresh.json", {}, latencies={"my/serve": (1.0, 5.0)}
        )
        code, out = run_compare([base, fresh])
        self.assertNotIn("LATENCY WATCH", out)  # not on the default list
        code, out = run_compare([base, fresh, "--watch-latency", "my/serve"])
        self.assertEqual(code, 0)
        self.assertIn("LATENCY WATCH", out)

    def test_load_latencies_skips_partial_records(self):
        path = os.path.join(self.tmpdir, "odd.json")
        with open(path, "w") as f:
            json.dump(
                {
                    "records": [
                        {"scenario": "ok", "commit_p50_ms": 1.0,
                         "commit_p99_ms": 2.0},
                        {"scenario": "no99", "commit_p50_ms": 1.0},
                        {"scenario": "zero", "commit_p50_ms": 0,
                         "commit_p99_ms": 0},
                        {"scenario": "text", "commit_p50_ms": "fast",
                         "commit_p99_ms": 1.0},
                    ]
                },
                f,
            )
        self.assertEqual(
            compare_bench.load_latencies(path), {"ok": (1.0, 2.0)}
        )

    def test_nonpositive_and_malformed_records_are_skipped(self):
        path = os.path.join(self.tmpdir, "odd.json")
        with open(path, "w") as f:
            json.dump(
                {
                    "records": [
                        {"scenario": "ok", "shots_per_second": 5.0},
                        {"scenario": "zero", "shots_per_second": 0},
                        {"scenario": "textual", "shots_per_second": "fast"},
                        {"shots_per_second": 9.0},
                    ]
                },
                f,
            )
        self.assertEqual(compare_bench.load_records(path), {"ok": 5.0})


if __name__ == "__main__":
    unittest.main()
