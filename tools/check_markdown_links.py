#!/usr/bin/env python3
"""Check intra-repo markdown links.

Scans the given markdown files (or directories, recursively) for inline
links/images `[text](target)` and fails if a relative target does not
exist on disk.  External links (http/https/mailto) and pure in-page
anchors (#...) are skipped; a `path#anchor` target is checked for the
file part only.  Code spans and fenced code blocks are ignored so
documentation can show link syntax without tripping the checker.

Usage: tools/check_markdown_links.py README.md docs/ [more ...]
Exit code 0 when every link resolves, 1 otherwise.
"""

import os
import re
import sys

LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^()\s]+(?:\([^()]*\))?)\)")
FENCE_RE = re.compile(r"^(```|~~~)")
CODE_SPAN_RE = re.compile(r"`[^`]*`")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def iter_markdown_files(args):
    for arg in args:
        if os.path.isdir(arg):
            for root, _dirs, files in os.walk(arg):
                for name in sorted(files):
                    if name.endswith(".md"):
                        yield os.path.join(root, name)
        else:
            yield arg


def check_file(path):
    errors = []
    in_fence = False
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            if FENCE_RE.match(line.strip()):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for match in LINK_RE.finditer(CODE_SPAN_RE.sub("``", line)):
                target = match.group(1)
                if target.startswith(SKIP_PREFIXES) or target.startswith("#"):
                    continue
                file_part = target.split("#", 1)[0]
                if not file_part:
                    continue
                resolved = os.path.normpath(
                    os.path.join(os.path.dirname(path), file_part))
                if not os.path.exists(resolved):
                    errors.append(
                        f"{path}:{lineno}: broken link '{target}' "
                        f"(resolved to {resolved})")
    return errors


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    files = list(iter_markdown_files(argv[1:]))
    if not files:
        print("no markdown files found", file=sys.stderr)
        return 2
    all_errors = []
    for path in files:
        all_errors.extend(check_file(path))
    for error in all_errors:
        print(error, file=sys.stderr)
    print(f"checked {len(files)} markdown files: "
          f"{'OK' if not all_errors else f'{len(all_errors)} broken links'}")
    return 1 if all_errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
