// Umbrella header: the full public API of radsurf.
//
//   #include "core/radsurf.hpp"
//
// pulls in the circuit IR, simulators, codes, noise models, architecture
// graphs, transpiler, decoders, the injection engine, the figure-level
// experiment drivers and the spec-driven scenario registry/runner.
#pragma once

#include "arch/graph.hpp"           // IWYU pragma: export
#include "arch/subgraphs.hpp"       // IWYU pragma: export
#include "arch/topologies.hpp"      // IWYU pragma: export
#include "circuit/circuit.hpp"      // IWYU pragma: export
#include "circuit/dag.hpp"          // IWYU pragma: export
#include "codes/code.hpp"           // IWYU pragma: export
#include "codes/repetition.hpp"     // IWYU pragma: export
#include "cli/registry.hpp"         // IWYU pragma: export
#include "cli/runner.hpp"           // IWYU pragma: export
#include "cli/spec.hpp"             // IWYU pragma: export
#include "codes/xxzz.hpp"           // IWYU pragma: export
#include "core/ablations.hpp"       // IWYU pragma: export
#include "core/experiments.hpp"     // IWYU pragma: export
#include "decoder/decoder.hpp"      // IWYU pragma: export
#include "decoder/mwpm.hpp"         // IWYU pragma: export
#include "decoder/sliding_window.hpp"  // IWYU pragma: export
#include "detector/detectors.hpp"   // IWYU pragma: export
#include "detector/error_model.hpp" // IWYU pragma: export
#include "inject/campaign.hpp"      // IWYU pragma: export
#include "inject/results.hpp"       // IWYU pragma: export
#include "noise/depolarizing.hpp"   // IWYU pragma: export
#include "noise/radiation.hpp"      // IWYU pragma: export
#include "noise/timeline.hpp"       // IWYU pragma: export
#include "stab/frame_sim.hpp"       // IWYU pragma: export
#include "stab/tableau_sim.hpp"     // IWYU pragma: export
#include "transpile/transpiler.hpp" // IWYU pragma: export
#include "util/json.hpp"            // IWYU pragma: export
#include "util/stats.hpp"           // IWYU pragma: export
