#include "core/experiments.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "arch/subgraphs.hpp"
#include "arch/topologies.hpp"
#include "circuit/dag.hpp"
#include "codes/repetition.hpp"
#include "codes/xxzz.hpp"
#include "inject/campaign.hpp"
#include "inject/results.hpp"
#include "util/error.hpp"

namespace radsurf {

ExperimentOptions ExperimentOptions::from_args(int argc, char** argv) {
  ExperimentOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&](const char* what) -> std::string {
      RADSURF_CHECK_ARG(i + 1 < argc, what << " needs a value");
      return argv[++i];
    };
    if (arg == "--shots") {
      opts.shots = std::stoull(next_value("--shots"));
    } else if (arg == "--seed") {
      opts.seed = std::stoull(next_value("--seed"));
    } else if (arg == "--csv") {
      opts.csv = true;
    } else if (arg == "--help" || arg == "-h") {
      // Handled by caller printing the report anyway; ignore.
    } else {
      throw InvalidArgument("unknown argument: " + arg +
                            " (expected --shots N, --seed N, --csv)");
    }
  }
  return opts;
}

std::size_t ExperimentOptions::resolve_shots(
    std::size_t figure_default) const {
  std::size_t s = shots;
  if (s == 0) {
    if (const char* env = std::getenv("RADSURF_SHOTS"))
      s = std::strtoull(env, nullptr, 10);
  }
  if (s == 0) s = figure_default;
  if (const char* fast = std::getenv("RADSURF_FAST");
      fast && fast[0] != '\0' && fast[0] != '0')
    s = std::max<std::size_t>(s / 10, 20);
  return std::max<std::size_t>(s, 20);
}

std::string ExperimentReport::to_string(bool csv) const {
  std::ostringstream ss;
  ss << "== " << title << " ==\n";
  ss << (csv ? table.to_csv() : table.to_string());
  for (const auto& note : notes) ss << "note: " << note << '\n';
  return ss.str();
}

Graph scaled_mesh_for(std::size_t num_qubits) {
  const std::size_t cols =
      std::max<std::size_t>(2, (num_qubits + 4) / 5);
  return make_mesh(5, cols);
}

// ---------------------------------------------------------------------------
// Fig. 3
// ---------------------------------------------------------------------------

ExperimentReport fig3_temporal_decay(const RadiationModel& model) {
  ExperimentReport rep;
  rep.title = "Fig. 3 — temporal decay T(t) = exp(-" +
              Table::fmt(model.gamma, 0) + " t) and step approximation " +
              "T^(t) over ns = " + std::to_string(model.ns) + " samples";
  Table t({"t", "T(t)", "T^(t) (step)"});
  const auto times = model.sample_times();
  const auto values = model.sample_values();
  // Render a dense time axis; the step value is the sample whose interval
  // contains t.
  for (int i = 0; i <= 100; i += 2) {
    const double time = i / 100.0;
    std::size_t bucket = 0;
    for (std::size_t s = 0; s < times.size(); ++s)
      if (times[s] <= time) bucket = s;
    t.add_row({Table::fmt(time, 2), Table::fmt(model.temporal(time), 6),
               Table::fmt(values[bucket], 6)});
  }
  rep.table = std::move(t);
  rep.notes.push_back("T(0) = 1 (100% injection probability at strike)");
  rep.notes.push_back("T(1) = " + Table::fmt(model.temporal(1.0), 6) +
                      " (fault extinguished)");
  return rep;
}

// ---------------------------------------------------------------------------
// Fig. 4
// ---------------------------------------------------------------------------

ExperimentReport fig4_spatial_decay(const RadiationModel& model, int extent) {
  ExperimentReport rep;
  rep.title =
      "Fig. 4 — spatial decay S(d) = n^2/(d+n)^2 on a 2D lattice, impact at "
      "(0,0)";
  Table t({"dx", "dy", "manhattan d", "S(d)"});
  for (int y = -extent; y <= extent; y += 2) {
    for (int x = -extent; x <= extent; x += 2) {
      const auto d = static_cast<std::size_t>(std::abs(x) + std::abs(y));
      t.add_row({std::to_string(x), std::to_string(y), std::to_string(d),
                 Table::fmt(model.spatial(d), 6)});
    }
  }
  rep.table = std::move(t);
  rep.notes.push_back("S(0) = 1 (100%), S(1) = " +
                      Table::fmt(model.spatial(1), 4) + ", S(2) = " +
                      Table::fmt(model.spatial(2), 4));
  return rep;
}

// ---------------------------------------------------------------------------
// Fig. 5
// ---------------------------------------------------------------------------

ExperimentReport fig5_noise_vs_radiation(const ExperimentOptions& options,
                                         const Fig5Options& fig5) {
  const std::size_t shots = options.resolve_shots(2000);
  const std::uint32_t root = fig5.root;
  ExperimentReport rep;
  rep.title =
      "Fig. 5 — logical error landscape: intrinsic noise x radiation time "
      "evolution (root qubit " +
      std::to_string(root) + ", spreading fault)";
  Table t({"code", "p (intrinsic)", "t", "root prob", "logical error",
           "CI low", "CI high"});

  const std::vector<double>& ps = fig5.error_rates;
  RADSURF_CHECK_ARG(!ps.empty(), "fig5 error_rates must not be empty");
  struct Config {
    std::string label;
    std::unique_ptr<SurfaceCode> code;
    Graph arch;
  };
  std::vector<Config> configs;
  configs.push_back({"repetition-(5,1)",
                     std::make_unique<RepetitionCode>(
                         5, RepetitionFlavor::BIT_FLIP),
                     make_mesh(5, 2)});
  configs.push_back({"xxzz-(3,3)", std::make_unique<XXZZCode>(3, 3),
                     make_mesh(5, 4)});

  struct Summary {
    double peak = 0;
    double at_strike_sum = 0;
    std::size_t at_strike_count = 0;
    double lowp_at_strike = 0;
  };

  for (auto& cfg : configs) {
    Summary summary;
    for (double p : ps) {
      EngineOptions eopts;
      eopts.physical_error_rate = p;
      InjectionEngine engine(*cfg.code, cfg.arch, eopts);
      const auto times = engine.radiation().sample_times();
      const auto values = engine.radiation().sample_values();
      for (std::size_t i = 0; i < values.size(); ++i) {
        const Proportion res = engine.run_radiation_at(
            root, values[i], /*spread=*/true, shots,
            options.seed + static_cast<std::uint64_t>(i) * 977 +
                static_cast<std::uint64_t>(p * 1e9));
        t.add_row({cfg.label, Table::fmt(p, 8), Table::fmt(times[i], 2),
                   Table::fmt(values[i], 5), Table::pct(res.rate()),
                   Table::pct(res.wilson_low()),
                   Table::pct(res.wilson_high())});
        summary.peak = std::max(summary.peak, res.rate());
        if (i == 0) {
          summary.at_strike_sum += res.rate();
          ++summary.at_strike_count;
          if (p == ps.front()) summary.lowp_at_strike = res.rate();
        }
      }
    }
    rep.notes.push_back(
        cfg.label + ": peak LER " + Table::pct(summary.peak) +
        ", mean LER at strike " +
        Table::pct(summary.at_strike_sum / summary.at_strike_count) +
        ", LER at strike with p=" + Table::fmt(ps.front(), 8) + " " +
        Table::pct(summary.lowp_at_strike));
  }
  rep.notes.push_back(
      "paper: peaks 48% (rep) / 54% (xxzz); strike means 27% / 50%; "
      "radiation dominates even at p = 1e-8 (Obs. I/II)");
  rep.table = std::move(t);
  return rep;
}

// ---------------------------------------------------------------------------
// Fig. 6
// ---------------------------------------------------------------------------

ExperimentReport fig6_code_distance(const ExperimentOptions& options,
                                    const Fig6Options& fig6) {
  const std::size_t shots = options.resolve_shots(1500);
  ExperimentReport rep;
  rep.title =
      "Fig. 6 — single non-spreading erasure at t=0 vs surface code "
      "distance (median over root qubit, p = 1e-2)";
  Table t({"code", "distance", "circuit size", "median LER", "min LER",
           "max LER"});

  struct Entry {
    CodeFamily family;
    int dz, dx;
  };
  const std::vector<Entry> entries = {
      {CodeFamily::REPETITION, 3, 1},  {CodeFamily::REPETITION, 5, 1},
      {CodeFamily::REPETITION, 7, 1},  {CodeFamily::REPETITION, 9, 1},
      {CodeFamily::REPETITION, 11, 1}, {CodeFamily::REPETITION, 13, 1},
      {CodeFamily::REPETITION, 15, 1}, {CodeFamily::XXZZ, 1, 3},
      {CodeFamily::XXZZ, 3, 1},        {CodeFamily::XXZZ, 3, 3},
      {CodeFamily::XXZZ, 3, 5},        {CodeFamily::XXZZ, 5, 3}};

  double rep31_bitflip = -1, xxzz13_phaseflip = -1;
  for (const Entry& e : entries) {
    const auto code = make_code(e.family, e.dz, e.dx);
    InjectionEngine engine(*code, scaled_mesh_for(code->num_qubits()),
                           EngineOptions{});
    std::vector<Proportion> per_root;
    std::uint64_t salt = 0;
    for (std::uint32_t root : engine.active_qubits()) {
      per_root.push_back(
          engine.run_erasure({root}, shots, options.seed + 131 * ++salt));
    }
    std::vector<double> rates;
    for (const auto& p : per_root) rates.push_back(p.rate());
    const double med = median(rates);
    t.add_row({e.family == CodeFamily::REPETITION ? "repetition" : "xxzz",
               "(" + std::to_string(e.dz) + "," + std::to_string(e.dx) + ")",
               std::to_string(code->num_qubits()), Table::pct(med),
               Table::pct(*std::min_element(rates.begin(), rates.end())),
               Table::pct(*std::max_element(rates.begin(), rates.end()))});
    if (e.family == CodeFamily::XXZZ && e.dz == 3 && e.dx == 1)
      rep31_bitflip = med;
    if (e.family == CodeFamily::XXZZ && e.dz == 1 && e.dx == 3)
      xxzz13_phaseflip = med;
  }
  for (const int d : fig6.rotated_distances) {
    for (const CodeFamily family :
         {CodeFamily::ROTATED_MEMORY_Z, CodeFamily::ROTATED_MEMORY_X}) {
      const auto code = make_code(family, d, d);
      // Rotated codes carry their own syndrome-coupling graph; the identity
      // layout is optimal there, so skip the mesh + layout search entirely.
      EngineOptions eopts;
      eopts.layout = LayoutStrategy::TRIVIAL;
      InjectionEngine engine(*code, native_graph_for(*code), eopts);
      std::vector<double> rates;
      std::uint64_t salt = 0;
      for (std::uint32_t root : engine.active_qubits())
        rates.push_back(
            engine.run_erasure({root}, shots, options.seed + 131 * ++salt)
                .rate());
      t.add_row({family == CodeFamily::ROTATED_MEMORY_Z ? "rotated_memz"
                                                        : "rotated_memx",
                 "(" + std::to_string(d) + "," + std::to_string(d) + ")",
                 std::to_string(code->num_qubits()),
                 Table::pct(median(rates)),
                 Table::pct(*std::min_element(rates.begin(), rates.end())),
                 Table::pct(*std::max_element(rates.begin(), rates.end()))});
    }
  }
  if (rep31_bitflip >= 0 && xxzz13_phaseflip >= 0) {
    rep.notes.push_back(
        "bit-flip (3,1) vs phase-flip (1,3) advantage: " +
        Table::pct(xxzz13_phaseflip - rep31_bitflip) +
        " absolute (paper Obs. IV: bit-flip protection up to ~10% better)");
  }
  rep.notes.push_back(
      "paper: rep (3,1) ~8% rising to ~20.5% at (13,1); xxzz (3,1) ~7.5%, "
      "(1,3) ~12%, (3,3) ~21%, (3,5) ~29.5%, (5,3) ~26% (Obs. III)");
  rep.table = std::move(t);
  return rep;
}

// ---------------------------------------------------------------------------
// Fig. 7
// ---------------------------------------------------------------------------

ExperimentReport fig7_fault_spread(const ExperimentOptions& options) {
  const std::size_t shots = options.resolve_shots(1000);
  ExperimentReport rep;
  rep.title =
      "Fig. 7 — k simultaneous erasures (connected subgraphs, median) vs a "
      "single spreading radiation fault at t=0";
  Table t({"code", "corrupted qubits", "median LER", "subgraphs",
           "radiation LER (red line)"});

  struct Config {
    std::string label;
    std::unique_ptr<SurfaceCode> code;
    Graph arch;
    std::size_t max_k;
  };
  std::vector<Config> configs;
  configs.push_back({"repetition-(15,1)",
                     std::make_unique<RepetitionCode>(
                         15, RepetitionFlavor::BIT_FLIP),
                     make_mesh(5, 6), 16});
  configs.push_back({"xxzz-(3,3)", std::make_unique<XXZZCode>(3, 3),
                     make_mesh(5, 4), 15});

  for (auto& cfg : configs) {
    InjectionEngine engine(*cfg.code, cfg.arch, EngineOptions{});

    // Red line: single spreading fault at full intensity, median over all
    // active roots.
    std::vector<Proportion> spread_results;
    std::uint64_t salt = 0;
    for (std::uint32_t root : engine.active_qubits()) {
      spread_results.push_back(engine.run_radiation_at(
          root, 1.0, /*spread=*/true, shots, options.seed + 977 * ++salt));
    }
    const double red_line = median_rate(spread_results);

    Rng subgraph_rng(options.seed ^ 0xabcdef);
    for (std::size_t k = 1; k <= cfg.max_k; ++k) {
      auto sets = sample_connected_subgraphs(engine.architecture(), k, 8,
                                             subgraph_rng);
      if (sets.empty()) continue;
      std::vector<Proportion> per_set;
      for (const auto& s : sets) {
        per_set.push_back(
            engine.run_erasure(s, shots, options.seed + 31 * ++salt));
      }
      t.add_row({cfg.label, std::to_string(k),
                 Table::pct(median_rate(per_set)),
                 std::to_string(sets.size()), Table::pct(red_line)});
    }
    rep.notes.push_back(cfg.label + ": spreading-fault (red line) LER = " +
                        Table::pct(red_line));
  }
  rep.notes.push_back(
      "paper: rep ~17% at k=1 rising to ~25% at k=15, ~80% past half the "
      "qubits, red line ~34%; xxzz ~21% at k=1, ~36% at k=10, ~80% at k=15, "
      "red line ~3x the single-erasure error (Obs. V/VI)");
  rep.table = std::move(t);
  return rep;
}

// ---------------------------------------------------------------------------
// Fig. 8
// ---------------------------------------------------------------------------

ExperimentReport fig8_architecture(const ExperimentOptions& options) {
  const std::size_t shots = options.resolve_shots(300);
  ExperimentReport rep;
  rep.title =
      "Fig. 8 — median logical error by root injection qubit across "
      "architectures (full spatio-temporal fault)";
  Table t({"code", "architecture", "phys qubit", "role", "first layer",
           "median LER"});

  struct Config {
    std::string code_label;
    std::unique_ptr<SurfaceCode> code;
    std::vector<std::string> archs;
  };
  std::vector<Config> configs;
  configs.push_back({"repetition-(11,1)",
                     std::make_unique<RepetitionCode>(
                         11, RepetitionFlavor::BIT_FLIP),
                     {"linear:22", "mesh:5x6", "brooklyn", "cairo",
                      "cambridge"}});
  configs.push_back({"xxzz-(3,3)", std::make_unique<XXZZCode>(3, 3),
                     {"complete:18", "linear:18", "mesh:5x4", "almaden",
                      "brooklyn", "cambridge", "johannesburg"}});

  for (auto& cfg : configs) {
    for (const std::string& arch_name : cfg.archs) {
      InjectionEngine engine(*cfg.code, make_topology(arch_name),
                             EngineOptions{});
      const CircuitDag dag(engine.transpiled().circuit);
      std::vector<double> medians;
      std::vector<std::pair<std::size_t, double>> layer_vs_ler;
      std::uint64_t salt = 0;
      for (std::uint32_t root : engine.active_qubits()) {
        const auto series = engine.run_radiation_event(
            root, shots, options.seed + 733 * ++salt);
        const double med = median_rate(series);
        medians.push_back(med);
        const std::size_t layer = dag.first_use_layer(root);
        layer_vs_ler.emplace_back(layer, med);
        t.add_row({cfg.code_label, arch_name, std::to_string(root),
                   role_name(engine.role_of_physical(root)),
                   std::to_string(layer), Table::pct(med)});
      }
      // Per-architecture summary note.
      std::ostringstream note;
      note << cfg.code_label << " on " << arch_name << ": median LER range ["
           << Table::pct(*std::min_element(medians.begin(), medians.end()))
           << ", "
           << Table::pct(*std::max_element(medians.begin(), medians.end()))
           << "], swaps=" << engine.transpiled().swap_count
           << ", ops=" << engine.transpiled().ops_after;
      // Obs. VII: early-used qubits hurt more.
      std::sort(layer_vs_ler.begin(), layer_vs_ler.end());
      const std::size_t half = layer_vs_ler.size() / 2;
      if (half > 0) {
        double early = 0, late = 0;
        for (std::size_t i = 0; i < half; ++i) early += layer_vs_ler[i].second;
        for (std::size_t i = layer_vs_ler.size() - half;
             i < layer_vs_ler.size(); ++i)
          late += layer_vs_ler[i].second;
        note << ", early-half mean " << Table::pct(early / half)
             << " vs late-half mean " << Table::pct(late / half)
             << " (Obs. VII)";
      }
      rep.notes.push_back(note.str());
    }
  }
  rep.notes.push_back(
      "paper: rep best on linear/mesh (~15-17%), worst on cairo (~23%); "
      "xxzz best on mesh (~22-24.5%), linear much worse from SWAP overhead "
      "(Obs. VIII)");
  rep.table = std::move(t);
  return rep;
}

// ---------------------------------------------------------------------------
// Timeline extension (multi-event long-memory workload)
// ---------------------------------------------------------------------------

ExperimentReport ext_timeline(const ExperimentOptions& options) {
  const std::size_t shots = options.resolve_shots(300);
  ExperimentReport rep;
  rep.title =
      "Timeline — logical error per round vs Poisson event rate "
      "(multi-round memory, sliding-window decoding)";
  Table t({"code", "rounds", "window", "events/round", "mean events",
           "LER", "LER/round", "CI low", "CI high"});

  struct Config {
    std::string label;
    std::unique_ptr<SurfaceCode> code;
    Graph arch;
    std::size_t rounds;
    SlidingWindowOptions window;
  };
  std::vector<Config> configs;
  configs.push_back({"repetition-(5,1)",
                     std::make_unique<RepetitionCode>(
                         5, RepetitionFlavor::BIT_FLIP),
                     make_mesh(5, 2), 32, {8, 4}});
  configs.push_back({"xxzz-(3,3)", std::make_unique<XXZZCode>(3, 3),
                     make_mesh(5, 4), 12, {6, 3}});

  const std::vector<double> rates = {0.0, 0.01, 0.03, 0.1};
  for (auto& cfg : configs) {
    EngineOptions eopts;
    eopts.rounds = cfg.rounds;
    eopts.whole_history_decoder = false;  // sliding windows only
    InjectionEngine engine(*cfg.code, cfg.arch, eopts);
    for (double rate : rates) {
      TimelineOptions topts;
      topts.events_per_round = rate;
      topts.duration_rounds = 8;
      const RadiationTimeline timeline(engine.radiation(), topts);
      const TimelineSummary summary = engine.run_timeline_campaign(
          timeline, /*num_timelines=*/4, shots,
          options.seed + static_cast<std::uint64_t>(rate * 1e6),
          cfg.window);
      const double ler = summary.errors.rate();
      const double per_round =
          1.0 - std::pow(1.0 - std::min(ler, 1.0 - 1e-12),
                         1.0 / static_cast<double>(cfg.rounds));
      t.add_row({cfg.label, std::to_string(cfg.rounds),
                 std::to_string(cfg.window.window) + "/" +
                     std::to_string(cfg.window.resolved_commit()),
                 Table::fmt(rate, 3), Table::fmt(summary.mean_events(), 2),
                 Table::pct(ler), Table::pct(per_round),
                 Table::pct(summary.errors.wilson_low()),
                 Table::pct(summary.errors.wilson_high())});
    }
    rep.notes.push_back(
        cfg.label + ": " + std::to_string(cfg.rounds) + " rounds, window " +
        std::to_string(cfg.window.window) + " commit " +
        std::to_string(cfg.window.resolved_commit()) +
        " (decoder memory O(window), not O(rounds))");
  }
  rep.notes.push_back(
      "events arrive Poisson per round and decay over 8 rounds (T(t) "
      "stretched); rate 0 is the intrinsic-noise floor");
  rep.table = std::move(t);
  return rep;
}

}  // namespace radsurf
