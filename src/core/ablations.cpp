#include "core/ablations.hpp"

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "arch/topologies.hpp"
#include "codes/repetition.hpp"
#include "codes/xxzz.hpp"
#include "core/logical_layer.hpp"
#include "inject/campaign.hpp"
#include "inject/results.hpp"

namespace radsurf {

namespace {

struct PairConfig {
  std::string label;
  std::unique_ptr<SurfaceCode> code;
  Graph arch;
};

/// The rep-(5,1)/xxzz-(3,3) pair most ablations sweep over.
std::vector<PairConfig> paper_pair() {
  std::vector<PairConfig> configs;
  configs.push_back({"repetition-(5,1)",
                     std::make_unique<RepetitionCode>(
                         5, RepetitionFlavor::BIT_FLIP),
                     make_mesh(5, 2)});
  configs.push_back({"xxzz-(3,3)", std::make_unique<XXZZCode>(3, 3),
                     make_mesh(5, 4)});
  return configs;
}

}  // namespace

ExperimentReport abl_decoders(const ExperimentOptions& options) {
  const std::size_t shots = options.resolve_shots(1500);
  ExperimentReport rep;
  rep.title = "Ablation — decoder choice under radiation";
  Table table({"code", "decoder", "intrinsic LER", "strike LER",
               "late-event LER"});
  for (auto& cfg : paper_pair()) {
    for (auto kind : {DecoderKind::MWPM, DecoderKind::UNION_FIND,
                      DecoderKind::GREEDY}) {
      EngineOptions eopts;
      eopts.decoder = kind;
      InjectionEngine engine(*cfg.code, cfg.arch, eopts);
      const auto intrinsic = engine.run_intrinsic(shots, options.seed);
      const auto strike =
          engine.run_radiation_at(2, 1.0, true, shots, options.seed + 1);
      const auto late =
          engine.run_radiation_at(2, engine.radiation().temporal(0.5), true,
                                  shots, options.seed + 2);
      table.add_row({cfg.label, decoder_kind_name(kind),
                     Table::pct(intrinsic.rate()), Table::pct(strike.rate()),
                     Table::pct(late.rate())});
    }
  }
  rep.table = std::move(table);
  rep.notes.push_back(
      "paper uses MWPM throughout (Sec. II-D); union-find and greedy trade "
      "accuracy for speed");
  return rep;
}

ExperimentReport abl_rounds(const ExperimentOptions& options) {
  const std::size_t shots = options.resolve_shots(1200);
  ExperimentReport rep;
  rep.title = "Ablation — stabilisation round count";
  Table table({"code", "rounds", "ops", "intrinsic LER", "strike LER"});
  for (auto& cfg : paper_pair()) {
    for (std::size_t rounds : {2, 3, 4, 6}) {
      EngineOptions eopts;
      eopts.rounds = rounds;
      InjectionEngine engine(*cfg.code, cfg.arch, eopts);
      const auto intrinsic = engine.run_intrinsic(shots, options.seed);
      const auto strike =
          engine.run_radiation_at(2, 1.0, true, shots, options.seed + 1);
      table.add_row({cfg.label, std::to_string(rounds),
                     std::to_string(engine.transpiled().ops_after),
                     Table::pct(intrinsic.rate()),
                     Table::pct(strike.rate())});
    }
  }
  rep.table = std::move(table);
  rep.notes.push_back("paper uses 2 rounds (Figs 1-2)");
  return rep;
}

ExperimentReport abl_meas_error(const ExperimentOptions& options) {
  const std::size_t shots = options.resolve_shots(1500);
  ExperimentReport rep;
  rep.title = "Ablation — readout (SPAM) error sensitivity";
  Table table({"code", "meas error", "intrinsic LER", "strike LER"});
  for (auto& cfg : paper_pair()) {
    for (double pm : {0.0, 1e-3, 1e-2, 5e-2}) {
      EngineOptions eopts;
      eopts.measurement_error_rate = pm;
      InjectionEngine engine(*cfg.code, cfg.arch, eopts);
      const auto intrinsic = engine.run_intrinsic(shots, options.seed);
      const auto strike =
          engine.run_radiation_at(2, 1.0, true, shots, options.seed + 1);
      table.add_row({cfg.label, Table::fmt(pm, 4),
                     Table::pct(intrinsic.rate()),
                     Table::pct(strike.rate())});
    }
  }
  rep.table = std::move(table);
  rep.notes.push_back(
      "paper Eq. 4 attaches noise to gates only (pm = 0 row)");
  return rep;
}

ExperimentReport abl_noise_channel(const ExperimentOptions& options) {
  const std::size_t shots = options.resolve_shots(2000);
  ExperimentReport rep;
  rep.title = "Ablation — two-qubit depolarizing channel";
  Table table({"code", "two-qubit channel", "p", "intrinsic LER",
               "strike LER"});
  for (auto& cfg : paper_pair()) {
    for (double p : {1e-3, 1e-2, 5e-2}) {
      for (bool uniform : {false, true}) {
        EngineOptions eopts;
        eopts.physical_error_rate = p;
        eopts.uniform_two_qubit = uniform;
        InjectionEngine engine(*cfg.code, cfg.arch, eopts);
        const auto intrinsic = engine.run_intrinsic(shots, options.seed);
        const auto strike =
            engine.run_radiation_at(2, 1.0, true, shots, options.seed + 1);
        table.add_row({cfg.label, uniform ? "uniform-15" : "E(x)E (paper)",
                       Table::fmt(p, 4), Table::pct(intrinsic.rate()),
                       Table::pct(strike.rate())});
      }
    }
  }
  rep.table = std::move(table);
  return rep;
}

ExperimentReport abl_time_sampling(const ExperimentOptions& options) {
  const std::size_t shots = options.resolve_shots(1200);
  ExperimentReport rep;
  rep.title = "Ablation — temporal step-function resolution ns";
  Table table({"ns", "event-mean LER", "strike LER", "samples"});
  const XXZZCode code(3, 3);
  for (std::size_t ns : {2, 5, 10, 20, 40}) {
    EngineOptions eopts;
    eopts.radiation.ns = ns;
    InjectionEngine engine(code, make_mesh(5, 4), eopts);
    const auto series = engine.run_radiation_event(
        2, std::max<std::size_t>(shots / ns, 50), options.seed);
    table.add_row({std::to_string(ns), Table::pct(mean_rate(series)),
                   Table::pct(series.front().rate()),
                   std::to_string(series.size())});
  }
  rep.table = std::move(table);
  rep.notes.push_back("paper selects ns = 10 (Sec. III-B, Fig. 3)");
  return rep;
}

ExperimentReport abl_aware_decoder(const ExperimentOptions& options) {
  const std::size_t shots = options.resolve_shots(1500);
  ExperimentReport rep;
  rep.title = "Extension — radiation-aware MWPM (RQ3 headroom)";
  Table table({"code", "root prob T(t)", "standard LER", "aware LER",
               "absolute gain"});
  for (auto& cfg : paper_pair()) {
    InjectionEngine engine(*cfg.code, cfg.arch, EngineOptions{});
    for (double t : {0.0, 0.1, 0.2, 0.4}) {
      const double prob = engine.radiation().temporal(t);
      const auto standard =
          engine.run_radiation_at(2, prob, true, shots, options.seed);
      const auto aware =
          engine.run_radiation_at_aware(2, prob, true, shots, options.seed);
      table.add_row({cfg.label, Table::fmt(prob, 4),
                     Table::pct(standard.rate()), Table::pct(aware.rate()),
                     Table::pct(standard.rate() - aware.rate())});
    }
  }
  rep.table = std::move(table);
  rep.notes.push_back(
      "the aware decoder knows the strike's reset field; the paper's "
      "decoder (standard) knows only intrinsic noise");
  return rep;
}

ExperimentReport ext_logical_layer(const ExperimentOptions& options) {
  const std::size_t shots = options.resolve_shots(2000);
  ExperimentReport rep;
  rep.title = "Extension — post-QEC logical-layer fault injection";

  // Physical layer: measure the struck patch's LER over the event.
  const XXZZCode code(3, 3);
  InjectionEngine engine(code, make_mesh(5, 4), EngineOptions{});
  const auto series = engine.run_radiation_event(2, shots, options.seed);
  const auto base = engine.run_intrinsic(shots, options.seed + 1);
  const auto times = engine.radiation().sample_times();

  // Logical layer: 5-patch GHZ, the struck patch's fault rate follows the
  // event; the others stay at the intrinsic-only rate.
  const std::size_t patches = 5;
  const Circuit ghz = logical_ghz_circuit(patches);
  Table table({"t", "struck patch LER", "GHZ corruption", "baseline"});
  Rng rng(options.seed + 99);

  LogicalFaultModel nominal;
  nominal.x_rate.assign(patches, base.rate());
  const double baseline = logical_corruption_rate(
      instrument_logical_faults(ghz, nominal), shots, rng);

  for (std::size_t i = 0; i < series.size(); ++i) {
    LogicalFaultModel model = nominal;
    model.x_rate[2] = series[i].rate();  // the struck patch
    const double corruption = logical_corruption_rate(
        instrument_logical_faults(ghz, model), shots, rng);
    table.add_row({Table::fmt(times[i], 2), Table::pct(series[i].rate()),
                   Table::pct(corruption), Table::pct(baseline)});
  }
  rep.table = std::move(table);
  rep.notes.push_back(
      "struck patch = logical qubit 2 of a 5-patch GHZ; rates from the "
      "physical XXZZ-(3,3) campaign");
  return rep;
}

}  // namespace radsurf
