#include "core/logical_layer.hpp"

#include "detector/detectors.hpp"
#include "stab/frame_sim.hpp"
#include "util/error.hpp"

namespace radsurf {

Circuit instrument_logical_faults(const Circuit& logical,
                                  const LogicalFaultModel& model) {
  auto rate_of = [](const std::vector<double>& rates, std::uint32_t q) {
    return q < rates.size() ? rates[q] : 0.0;
  };
  Circuit out(logical.num_qubits());
  for (const Instruction& ins : logical.instructions()) {
    const GateInfo& info = gate_info(ins.gate);
    if (info.is_annotation) {
      out.append_annotation(ins.gate, ins.lookbacks, ins.args);
      continue;
    }
    out.append(ins.gate, ins.targets, ins.args);
    if (!info.is_unitary || ins.gate == Gate::I) continue;
    for (std::uint32_t q : ins.targets) {
      const double px = rate_of(model.x_rate, q);
      const double pz = rate_of(model.z_rate, q);
      RADSURF_CHECK_ARG(px >= 0.0 && px <= 1.0 && pz >= 0.0 && pz <= 1.0,
                        "logical fault rate out of [0,1]");
      if (px > 0.0) out.append(Gate::X_ERROR, {q}, {px});
      if (pz > 0.0) out.append(Gate::Z_ERROR, {q}, {pz});
    }
  }
  return out;
}

double logical_corruption_rate(const Circuit& instrumented,
                               std::size_t shots, Rng& rng) {
  RADSURF_CHECK_ARG(shots > 0, "need at least one shot");
  RADSURF_CHECK_ARG(instrumented.num_observables() > 0,
                    "logical circuit declares no observables");
  const DetectorSet ds = DetectorSet::compile(instrumented);
  std::size_t corrupted = 0;
  std::size_t done = 0;
  while (done < shots) {
    const std::size_t batch = std::min<std::size_t>(shots - done, 256);
    FrameSimulator sim(instrumented, batch);
    const MeasurementFlips flips = sim.run(rng);
    const auto obs_rows = ds.observable_flips(flips);
    for (std::size_t s = 0; s < batch; ++s) {
      bool any = false;
      for (const BitVec& row : obs_rows) any = any || row.get(s);
      corrupted += any;
    }
    done += batch;
  }
  return static_cast<double>(corrupted) / static_cast<double>(shots);
}

Circuit logical_ghz_circuit(std::size_t patches) {
  RADSURF_CHECK_ARG(patches >= 2, "GHZ needs at least two logical qubits");
  Circuit c(patches);
  for (std::uint32_t q = 0; q < patches; ++q) c.r(q);
  c.h(0);
  for (std::uint32_t q = 0; q + 1 < patches; ++q) c.cx(q, q + 1);
  for (std::uint32_t q = 0; q < patches; ++q) c.m(q);
  // Pairwise parities (deterministically 0 for a GHZ state) as
  // observables, plus the all-qubit parity.
  const auto n = static_cast<std::uint32_t>(patches);
  std::uint32_t obs = 0;
  for (std::uint32_t q = 0; q + 1 < patches; ++q)
    c.observable_include(obs++, {n - q, n - q - 1});
  std::vector<std::uint32_t> all;
  for (std::uint32_t q = 0; q < patches; ++q) all.push_back(n - q);
  c.observable_include(obs, std::move(all));
  return c;
}

}  // namespace radsurf
