// Ablation and extension experiment drivers (beyond the paper's figures).
//
// Like core/experiments.hpp, one function per driver; every abl_*/ext_*
// bench binary is a thin compatibility shim that routes through the
// scenario registry (cli/registry.hpp), which in turn calls these.  The
// report text matches what the pre-registry standalone binaries printed,
// byte for byte, so downstream diffs of bench output stay clean.
#pragma once

#include "core/experiments.hpp"

namespace radsurf {

/// Decoder-kind ablation: MWPM vs union-find vs greedy on intrinsic,
/// strike-time and late-event campaigns (paper fixes MWPM, Sec. II-D).
ExperimentReport abl_decoders(const ExperimentOptions& options);

/// Stabilisation-round-count ablation (paper uses 2 rounds, Figs 1-2).
ExperimentReport abl_rounds(const ExperimentOptions& options);

/// Readout (SPAM) error sensitivity sweep (paper Eq. 4 is gate-noise only).
ExperimentReport abl_meas_error(const ExperimentOptions& options);

/// Two-qubit channel ablation: the paper's E (x) E vs uniform 15-Pauli.
ExperimentReport abl_noise_channel(const ExperimentOptions& options);

/// Temporal step-function resolution ns sweep (paper selects ns = 10).
ExperimentReport abl_time_sampling(const ExperimentOptions& options);

/// Radiation-aware MWPM (paper RQ3): decoder rebuilt with the strike's
/// reset field; the standard-vs-aware gap is the software-only headroom.
ExperimentReport abl_aware_decoder(const ExperimentOptions& options);

/// Post-QEC logical-layer fault injection (paper Sec. VI future work):
/// physical XXZZ-(3,3) strike rates drive logical X faults on one patch of
/// a 5-patch logical GHZ circuit.
ExperimentReport ext_logical_layer(const ExperimentOptions& options);

}  // namespace radsurf
