// Post-QEC logical-layer fault injection (the paper's Sec. VI future
// work: "propagate the logical fault induced by radiation in the coded
// qubit status in quantum circuits").
//
// Each logical qubit is an error-corrected patch whose decoded output is
// wrong with some probability per code cycle — exactly the post-QEC
// logical error rates the physical campaigns measure.  A logical circuit
// is then a Clifford circuit over patches, and the radiation-induced
// logical faults are X flips injected after each logical gate with the
// patch's current rate.  During a radiation event the struck patch's rate
// follows the measured per-sample series, letting the physical results
// drive a logical-layer corruption analysis.
#pragma once

#include <cstdint>
#include <vector>

#include "circuit/circuit.hpp"
#include "util/rng.hpp"

namespace radsurf {

struct LogicalFaultModel {
  /// Per-logical-qubit probability of a logical X flip after each logical
  /// gate (missing entries are 0).
  std::vector<double> x_rate;
  /// Optional per-logical-qubit logical phase-flip rate.
  std::vector<double> z_rate;
};

/// Instrument a logical circuit: after every unitary logical gate, each
/// target patch suffers X_ERROR(x_rate[q]) and Z_ERROR(z_rate[q]).
Circuit instrument_logical_faults(const Circuit& logical,
                                  const LogicalFaultModel& model);

/// Fraction of shots in which at least one OBSERVABLE of the instrumented
/// logical circuit flips (frame sampling; the fault model is pure Pauli).
double logical_corruption_rate(const Circuit& instrumented,
                               std::size_t shots, Rng& rng);

/// A logical GHZ preparation over `patches` logical qubits with one parity
/// observable per qubit pair and a global parity observable — the
/// benchmark workload of the logical-layer analysis.
Circuit logical_ghz_circuit(std::size_t patches);

}  // namespace radsurf
