// Figure-level experiment drivers (paper Sec. V).
//
// One driver per paper figure; every bench binary is a thin wrapper that
// parses options, calls its driver, and prints the report.  Shot counts
// default to values that resolve the paper's reported effects on a laptop
// and can be scaled with --shots / RADSURF_SHOTS / RADSURF_FAST.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "noise/radiation.hpp"
#include "util/table.hpp"

namespace radsurf {

struct ExperimentOptions {
  std::size_t shots = 0;  // 0 = per-figure default
  std::uint64_t seed = 20240715;
  bool csv = false;

  /// Parse --shots N, --seed N, --csv plus RADSURF_SHOTS / RADSURF_FAST
  /// environment overrides.  Unknown arguments throw InvalidArgument.
  static ExperimentOptions from_args(int argc, char** argv);

  /// Effective per-cell shot count for a figure whose default is
  /// `figure_default`.
  std::size_t resolve_shots(std::size_t figure_default) const;
};

struct ExperimentReport {
  std::string title;
  Table table;
  std::vector<std::string> notes;

  /// Render title, table (or CSV) and notes.
  std::string to_string(bool csv = false) const;
};

/// Fig. 3: temporal decay T(t) and its ns-sample step approximation.
ExperimentReport fig3_temporal_decay(const RadiationModel& model = {});

/// Fig. 4: spatial decay S(d) over a 2D lattice around the impact point.
ExperimentReport fig4_spatial_decay(const RadiationModel& model = {},
                                    int extent = 10);

/// Spec-tunable knobs of the Fig. 5 landscape (defaults reproduce the
/// paper's sweep).
struct Fig5Options {
  /// Intrinsic physical error rates of the landscape's noise axis.
  std::vector<double> error_rates = {1e-8, 1e-7, 1e-6, 1e-5,
                                     1e-4, 1e-3, 1e-2, 1e-1};
  /// Physical qubit struck by the radiation fault.
  std::uint32_t root = 2;
};

/// Fig. 5: logical-error landscape over (physical error rate, fault time)
/// for repetition-(5,1) on a 5x2 mesh and XXZZ-(3,3) on a 5x4 mesh.
ExperimentReport fig5_noise_vs_radiation(const ExperimentOptions& options,
                                         const Fig5Options& fig5 = {});

struct Fig6Options {
  /// Rotated surface code distances appended to the paper's repetition/XXZZ
  /// sweep. Rotated entries run both memory bases on their native coupling
  /// graph (trivial layout) rather than the scaled 5xN mesh.
  std::vector<int> rotated_distances = {3, 5};
};

/// Fig. 6: single non-spreading erasure at t=0 vs code distance.
ExperimentReport fig6_code_distance(const ExperimentOptions& options,
                                    const Fig6Options& fig6 = {});

/// Fig. 7: k simultaneous erasures (connected subgraphs) vs one spreading
/// radiation fault, for repetition-(15,1) and XXZZ-(3,3).
ExperimentReport fig7_fault_spread(const ExperimentOptions& options);

/// Fig. 8: per-root-qubit median logical error over the full fault
/// evolution, across architectures; includes the Obs. VII DAG analysis.
ExperimentReport fig8_architecture(const ExperimentOptions& options);

/// Timeline extension (beyond the paper, toward arXiv:2506.16834's regime):
/// logical error per round under Poisson-arriving radiation events during
/// N-round memory experiments, decoded with sliding windows, for
/// repetition-(5,1) and XXZZ-(3,3).
ExperimentReport ext_timeline(const ExperimentOptions& options);

/// Mesh 5xN sized to `num_qubits` (the paper's "scaled down" 5x6 lattice).
Graph scaled_mesh_for(std::size_t num_qubits);

}  // namespace radsurf
