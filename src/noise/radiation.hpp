// Radiation-induced transient fault model (paper Sec. III-B).
//
// A particle strike at a root qubit produces, for every qubit q of the
// device, a probability p_q = T(t) * S(d_q) of a non-unitary reset after
// each gate acting on q, where T(t) = exp(-gamma t) is the temporal decay
// (gamma = 10, step-approximated over ns equidistant samples) and
// S(d) = n^2/(d+n)^2 the spatial damping over BFS distance d on the
// architecture graph (n = 1).
#pragma once

#include <cstdint>
#include <vector>

#include "arch/graph.hpp"
#include "circuit/circuit.hpp"

namespace radsurf {

struct RadiationModel {
  double gamma = 10.0;     // temporal decay constant (Eq. 5)
  double n = 1.0;          // spatial scale (Eq. 6)
  std::size_t ns = 10;     // temporal step-function samples

  /// T(t) of Eq. 5, t in [0, 1].
  double temporal(double t) const;
  /// S(d) of Eq. 6 for integer graph distance d.
  double spatial(std::size_t d) const;
  /// F(t, d) of Eq. 7.
  double decay(double t, std::size_t d) const {
    return temporal(t) * spatial(d);
  }

  /// The ns equidistant sample times t_i = i/ns (T̂ of Fig. 3).
  std::vector<double> sample_times() const;
  /// T(t_i) at each sample time; index 0 is the strike (T = 1).
  std::vector<double> sample_values() const;

  /// Per-qubit reset probabilities for a strike of instantaneous root
  /// intensity `root_prob` at `root`, spreading over `arch` (S(d) scaling).
  /// With spread disabled only the root is affected.
  std::vector<double> qubit_probabilities(const Graph& arch,
                                          std::uint32_t root,
                                          double root_prob,
                                          bool spread = true) const;
};

/// Append RESET_ERROR(p_q) after every unitary gate for each target qubit
/// q with p_q > 0.  `per_qubit_prob` may be shorter than the circuit's
/// qubit count (missing entries are 0).
Circuit instrument_reset_noise(const Circuit& circuit,
                               const std::vector<double>& per_qubit_prob);

/// Erasure experiment helper (Figs 6–7): probability-1 resets on a fixed
/// qubit set, no spatial spread.
std::vector<double> erasure_probabilities(std::size_t num_qubits,
                                          const std::vector<std::uint32_t>&
                                              corrupted);

}  // namespace radsurf
