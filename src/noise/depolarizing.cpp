#include "noise/depolarizing.hpp"

#include "util/error.hpp"

namespace radsurf {

Circuit DepolarizingModel::apply(const Circuit& circuit) const {
  RADSURF_CHECK_ARG(p >= 0.0 && p <= 1.0, "error rate out of [0,1]: " << p);
  RADSURF_CHECK_ARG(measurement_error >= 0.0 && measurement_error <= 1.0,
                    "measurement error rate out of [0,1]: "
                        << measurement_error);
  if (p == 0.0 && measurement_error == 0.0) return circuit;

  Circuit out(circuit.num_qubits());
  for (const Instruction& ins : circuit.instructions()) {
    const GateInfo& info = gate_info(ins.gate);
    if (info.is_annotation) {
      out.append_annotation(ins.gate, ins.lookbacks, ins.args);
      continue;
    }
    if (info.is_measurement && measurement_error > 0.0)
      out.append(Gate::X_ERROR, ins.targets, {measurement_error});
    out.append(ins.gate, ins.targets, ins.args);
    if (!info.is_unitary || ins.gate == Gate::I || p == 0.0) continue;
    if (info.is_two_qubit) {
      out.append(uniform_two_qubit ? Gate::DEPOLARIZE2_UNIFORM
                                   : Gate::DEPOLARIZE2,
                 ins.targets, {p});
    } else {
      out.append(Gate::DEPOLARIZE1, ins.targets, {p});
    }
  }
  return out;
}

}  // namespace radsurf
