// Intrinsic-noise instrumentation (paper Eq. 4).
//
// The depolarisation channel E = sqrt(1-p) I + sqrt(p/3)(X+Y+Z) is appended
// after every unitary gate; two-qubit gates receive E (x) E — two
// *independent* single-qubit channels (the paper's model, which differs
// from the uniform 15-Pauli channel kept here as an ablation).
#pragma once

#include "circuit/circuit.hpp"

namespace radsurf {

struct DepolarizingModel {
  /// Physical error rate p of Eq. 4 (paper default: 1e-2).
  double p = 1e-2;
  /// Use the uniform two-qubit depolarizing channel instead of E (x) E.
  bool uniform_two_qubit = false;
  /// Readout (SPAM) error rate: an X_ERROR immediately before every
  /// measurement.  The paper folds readout accuracy into its intrinsic
  /// noise discussion (Sec. II-B); 0 disables, matching Eq. 4 exactly.
  double measurement_error = 0.0;

  /// Instrument `circuit`: a noise channel after every unitary gate and
  /// (optionally) before every measurement.  All-zero rates return the
  /// circuit unchanged.
  Circuit apply(const Circuit& circuit) const;
};

}  // namespace radsurf
