#include "noise/radiation.hpp"

#include <cmath>
#include <limits>

#include "noise/timeline.hpp"
#include "util/error.hpp"

namespace radsurf {

double RadiationModel::temporal(double t) const {
  RADSURF_CHECK_ARG(t >= 0.0 && t <= 1.0, "t out of [0,1]: " << t);
  return std::exp(-gamma * t);
}

double RadiationModel::spatial(std::size_t d) const {
  const double dd = static_cast<double>(d);
  return (n * n) / ((dd + n) * (dd + n));
}

std::vector<double> RadiationModel::sample_times() const {
  RADSURF_CHECK_ARG(ns >= 1, "need at least one temporal sample");
  std::vector<double> ts(ns);
  for (std::size_t i = 0; i < ns; ++i)
    ts[i] = static_cast<double>(i) / static_cast<double>(ns);
  return ts;
}

std::vector<double> RadiationModel::sample_values() const {
  std::vector<double> vs;
  vs.reserve(ns);
  for (double t : sample_times()) vs.push_back(temporal(t));
  return vs;
}

std::vector<double> RadiationModel::qubit_probabilities(
    const Graph& arch, std::uint32_t root, double root_prob,
    bool spread) const {
  RADSURF_CHECK_ARG(root < arch.num_nodes(),
                    "root qubit " << root << " not in architecture of "
                                  << arch.num_nodes() << " nodes");
  RADSURF_CHECK_ARG(root_prob >= 0.0 && root_prob <= 1.0,
                    "root probability out of [0,1]: " << root_prob);
  std::vector<double> probs(arch.num_nodes(), 0.0);
  if (!spread) {
    probs[root] = root_prob;
    return probs;
  }
  const auto dist = arch.bfs_distances(root);
  for (std::size_t q = 0; q < probs.size(); ++q) {
    if (dist[q] == std::numeric_limits<std::size_t>::max()) continue;
    probs[q] = root_prob * spatial(dist[q]);
  }
  return probs;
}

Circuit instrument_reset_noise(const Circuit& circuit,
                               const std::vector<double>& per_qubit_prob) {
  // A time-invariant reset field is a one-round timeline schedule.
  return instrument_timeline_noise(circuit, {per_qubit_prob});
}

std::vector<double> erasure_probabilities(
    std::size_t num_qubits, const std::vector<std::uint32_t>& corrupted) {
  std::vector<double> probs(num_qubits, 0.0);
  for (std::uint32_t q : corrupted) {
    RADSURF_CHECK_ARG(q < num_qubits,
                      "corrupted qubit " << q << " out of range");
    probs[q] = 1.0;
  }
  return probs;
}

}  // namespace radsurf
