// Long-horizon radiation timelines (beyond the paper's single strike).
//
// Real devices accumulate Poisson-arriving particle strikes over arbitrarily
// long syndrome-measurement histories.  A RadiationTimeline samples event
// arrivals — rate per stabilisation round, configurable burst multiplicity —
// and composes every event's temporal decay T(t) (stretched over
// `duration_rounds` rounds) and spatial decay S(d) into a *round-indexed*
// noise schedule: per round, per qubit, the probability of a non-unitary
// reset after each gate.  Overlapping events combine as independent fault
// sources (1 - prod(1 - p)).  The schedule instruments an N-round memory
// circuit via instrument_timeline_noise, which scopes each round's reset
// field to the gates between consecutive TICK round markers.
//
// TimelineOptions::chip_burst switches the per-event footprint from the
// paper's S(d) site model to a chip-scale quasiparticle-spread model
// (exp(-hops / qp_lambda) over the epicenter's connected component, with
// epicenter-correlated burst roots) — the correlated cosmic-ray regime of
// Harrington et al. (arXiv:2402.03208); see TimelineOptions below.
//
// Contracts:
//  * RNG determinism — sample() draws only from the Rng it is handed, so
//    an event realization is a pure function of (options, rounds, roots,
//    rng state); campaigns pass streams derived from the campaign seed.
//    schedule() and instrument_timeline_noise are deterministic.
//  * Thread-safety — RadiationTimeline is immutable after construction
//    and safe to share across threads; sample() mutates only the caller's
//    Rng.
//  * Engine/decoder interaction — timeline-instrumented circuits run on
//    either sampling engine (AUTO/EXACT, inject/campaign.hpp) and are
//    decoded exclusively by sliding-window MWPM
//    (decoder/sliding_window.hpp); window >= rounds reproduces
//    whole-history MWPM bit for bit.
#pragma once

#include <cstdint>
#include <vector>

#include "arch/graph.hpp"
#include "circuit/circuit.hpp"
#include "noise/radiation.hpp"
#include "util/rng.hpp"

namespace radsurf {

/// One particle strike of a timeline.
struct RadiationEvent {
  std::size_t round = 0;    // arrival round (peak intensity)
  std::uint32_t root = 0;   // impact qubit
  double intensity = 1.0;   // reset probability at the root at arrival

  bool operator==(const RadiationEvent& o) const = default;
};

struct TimelineOptions {
  /// Poisson arrival rate: expected strike events per stabilisation round.
  double events_per_round = 0.01;
  /// Simultaneous impact points per event (a shower hitting several roots
  /// in the same round; roots are drawn without replacement).
  std::size_t burst_multiplicity = 1;
  /// Rounds an event needs to decay away: round r of an event arriving at
  /// r0 scales its intensity by T((r - r0) / duration_rounds), reaching the
  /// paper's extinguished T(1) after duration_rounds rounds.
  std::size_t duration_rounds = 10;
  /// Peak reset probability at the root at the strike instant.
  double intensity = 1.0;
  /// Spread over the architecture with S(d); false confines to the root.
  bool spread = true;
  /// Chip-scale quasiparticle-spread events (beyond the paper's per-site
  /// model): an impact's footprint decays exponentially in BFS hop
  /// distance from the epicenter, intensity * exp(-d / qp_lambda), over
  /// the epicenter's whole connected component — replacing S(d), which
  /// dies off within ~2 hops — and burst-multiplicity secondary roots are
  /// drawn correlated near the epicenter instead of uniformly (weight
  /// exp(-d / qp_lambda), without replacement).  Chip-burst sampling needs
  /// the device graph: use the sample() overload that takes one.
  bool chip_burst = false;
  /// Quasiparticle diffusion length of the chip-burst footprint, in BFS
  /// hops.  Larger values flood more of the chip per event.
  double qp_lambda = 3.0;
};

class RadiationTimeline {
 public:
  RadiationTimeline(RadiationModel model, TimelineOptions options);

  const RadiationModel& model() const { return model_; }
  const TimelineOptions& options() const { return options_; }

  /// Sample one event realization over `rounds` rounds: per round, a
  /// Poisson(events_per_round) number of events, each striking
  /// burst_multiplicity distinct roots drawn uniformly from `roots`.
  /// Rejects chip_burst options (correlated root draws need the device
  /// graph — use the overload below).
  std::vector<RadiationEvent> sample(
      std::size_t rounds, const std::vector<std::uint32_t>& roots,
      Rng& rng) const;

  /// Graph-aware sampling: identical draws (bit-for-bit) to the overload
  /// above unless chip_burst is set, in which case each shower's first
  /// root (the epicenter) is uniform and the remaining burst roots are
  /// drawn without replacement with weight exp(-d(epicenter, r) /
  /// qp_lambda) — zero for roots outside the epicenter's connected
  /// component, so a shower never jumps components.
  std::vector<RadiationEvent> sample(
      std::size_t rounds, const std::vector<std::uint32_t>& roots,
      const Graph* arch, Rng& rng) const;

  /// Per-qubit peak reset probabilities of a single event at `root`:
  /// the chip-burst footprint intensity * exp(-d / qp_lambda) when
  /// chip_burst is set (unreachable qubits get 0 — the footprint is
  /// confined to the root's connected component), the paper's
  /// S(d)-spread qubit_probabilities otherwise.
  std::vector<double> footprint(const Graph& arch, std::uint32_t root,
                                double intensity) const;

  /// Round-indexed per-qubit reset probabilities on `arch` composing
  /// `events` (independent-source combination).  Result has `rounds` rows
  /// of arch.num_nodes() entries.
  std::vector<std::vector<double>> schedule(
      const Graph& arch, const std::vector<RadiationEvent>& events,
      std::size_t rounds) const;

 private:
  RadiationModel model_;
  TimelineOptions options_;
};

/// Knuth Poisson sampler (exact for the per-round rates timelines use).
std::size_t poisson_sample(double rate, Rng& rng);

/// Instrument `circuit` with the round-indexed reset schedule: gates between
/// TICK markers k-1 and k receive round k's per-qubit reset probabilities
/// (clamped to the last row for the trailing readout block).  The schedule
/// rows may be shorter than the circuit's qubit count (missing entries 0).
Circuit instrument_timeline_noise(
    const Circuit& circuit,
    const std::vector<std::vector<double>>& round_probs);

}  // namespace radsurf
