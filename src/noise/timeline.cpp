#include "noise/timeline.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace radsurf {

RadiationTimeline::RadiationTimeline(RadiationModel model,
                                     TimelineOptions options)
    : model_(model), options_(options) {
  RADSURF_CHECK_ARG(options_.events_per_round >= 0.0,
                    "negative event rate: " << options_.events_per_round);
  RADSURF_CHECK_ARG(options_.burst_multiplicity >= 1,
                    "burst multiplicity must be >= 1");
  RADSURF_CHECK_ARG(options_.duration_rounds >= 1,
                    "event duration must be >= 1 round");
  RADSURF_CHECK_ARG(
      options_.intensity >= 0.0 && options_.intensity <= 1.0,
      "peak intensity out of [0,1]: " << options_.intensity);
  RADSURF_CHECK_ARG(options_.qp_lambda > 0.0,
                    "quasiparticle diffusion length must be > 0, got "
                        << options_.qp_lambda);
}

std::size_t poisson_sample(double rate, Rng& rng) {
  RADSURF_CHECK_ARG(rate >= 0.0, "negative Poisson rate: " << rate);
  if (rate == 0.0) return 0;
  // Knuth: multiply uniforms until the product drops below exp(-rate).
  const double limit = std::exp(-rate);
  std::size_t k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= rng.uniform();
  } while (p > limit);
  return k - 1;
}

std::vector<RadiationEvent> RadiationTimeline::sample(
    std::size_t rounds, const std::vector<std::uint32_t>& roots,
    Rng& rng) const {
  return sample(rounds, roots, nullptr, rng);
}

std::vector<RadiationEvent> RadiationTimeline::sample(
    std::size_t rounds, const std::vector<std::uint32_t>& roots,
    const Graph* arch, Rng& rng) const {
  RADSURF_CHECK_ARG(!roots.empty(), "need at least one candidate root");
  RADSURF_CHECK_ARG(!options_.chip_burst || arch != nullptr,
                    "chip-burst sampling draws epicenter-correlated burst "
                    "roots and needs the device graph: pass one via "
                    "sample(rounds, roots, &arch, rng)");
  const std::size_t burst =
      std::min(options_.burst_multiplicity, roots.size());
  std::vector<RadiationEvent> events;
  std::vector<std::uint32_t> pool;
  std::vector<double> weights;
  for (std::size_t round = 0; round < rounds; ++round) {
    const std::size_t arrivals =
        poisson_sample(options_.events_per_round, rng);
    for (std::size_t e = 0; e < arrivals; ++e) {
      if (!options_.chip_burst) {
        // Partial Fisher-Yates: draw `burst` distinct roots for this shower.
        pool = roots;
        for (std::size_t j = 0; j < burst; ++j) {
          const std::size_t pick =
              j + static_cast<std::size_t>(rng.below(pool.size() - j));
          std::swap(pool[j], pool[pick]);
          events.push_back({round, pool[j], options_.intensity});
        }
        continue;
      }
      // Chip burst: the epicenter is uniform; the remaining burst roots
      // are drawn without replacement with weight exp(-hops / qp_lambda)
      // around it.  Unreachable roots weigh 0, so the whole shower stays
      // inside the epicenter's connected component (a shower that runs
      // out of reachable roots simply strikes fewer of them).
      const std::uint32_t epicenter =
          roots[static_cast<std::size_t>(rng.below(roots.size()))];
      events.push_back({round, epicenter, options_.intensity});
      if (burst <= 1) continue;
      const std::vector<std::size_t> hops = arch->bfs_distances(epicenter);
      pool.clear();
      weights.clear();
      double total = 0.0;
      for (const std::uint32_t r : roots) {
        if (r == epicenter || r >= hops.size() ||
            hops[r] == std::numeric_limits<std::size_t>::max())
          continue;
        pool.push_back(r);
        weights.push_back(std::exp(-static_cast<double>(hops[r]) /
                                   options_.qp_lambda));
        total += weights.back();
      }
      for (std::size_t j = 1; j < burst && total > 0.0; ++j) {
        double u = rng.uniform() * total;
        // Prefix walk over the still-unstruck roots; accumulated float
        // drift past the end lands on the last one.
        std::size_t pick = pool.size();
        for (std::size_t k = 0; k < pool.size(); ++k) {
          if (weights[k] <= 0.0) continue;
          pick = k;
          if (u < weights[k]) break;
          u -= weights[k];
        }
        if (pick == pool.size()) break;
        events.push_back({round, pool[pick], options_.intensity});
        total -= weights[pick];
        weights[pick] = 0.0;
      }
    }
  }
  return events;
}

std::vector<double> RadiationTimeline::footprint(const Graph& arch,
                                                 std::uint32_t root,
                                                 double intensity) const {
  if (!options_.chip_burst)
    return model_.qubit_probabilities(arch, root, intensity, options_.spread);
  RADSURF_CHECK_ARG(root < arch.num_nodes(),
                    "epicenter " << root << " outside architecture of "
                                 << arch.num_nodes() << " qubits");
  const std::vector<std::size_t> hops = arch.bfs_distances(root);
  std::vector<double> probs(arch.num_nodes(), 0.0);
  for (std::size_t q = 0; q < probs.size(); ++q) {
    if (hops[q] == std::numeric_limits<std::size_t>::max()) continue;
    probs[q] = intensity * std::exp(-static_cast<double>(hops[q]) /
                                    options_.qp_lambda);
  }
  return probs;
}

std::vector<std::vector<double>> RadiationTimeline::schedule(
    const Graph& arch, const std::vector<RadiationEvent>& events,
    std::size_t rounds) const {
  std::vector<std::vector<double>> probs(
      rounds, std::vector<double>(arch.num_nodes(), 0.0));
  const auto duration = static_cast<double>(options_.duration_rounds);
  for (const RadiationEvent& event : events) {
    RADSURF_CHECK_ARG(event.round < rounds,
                      "event round " << event.round << " outside timeline of "
                                     << rounds << " rounds");
    const std::vector<double> peak =
        footprint(arch, event.root, event.intensity);
    for (std::size_t dr = 0; dr < options_.duration_rounds; ++dr) {
      const std::size_t r = event.round + dr;
      if (r >= rounds) break;
      const double factor =
          model_.temporal(static_cast<double>(dr) / duration);
      for (std::size_t q = 0; q < peak.size(); ++q) {
        if (peak[q] <= 0.0) continue;
        // Overlapping events are independent fault sources.
        probs[r][q] = 1.0 - (1.0 - probs[r][q]) * (1.0 - peak[q] * factor);
      }
    }
  }
  return probs;
}

Circuit instrument_timeline_noise(
    const Circuit& circuit,
    const std::vector<std::vector<double>>& round_probs) {
  RADSURF_CHECK_ARG(!round_probs.empty(), "empty timeline schedule");
  const std::size_t rounds = round_probs.size();
  auto prob_of = [&](std::size_t round, std::uint32_t q) {
    const auto& row = round_probs[std::min(round, rounds - 1)];
    return q < row.size() ? row[q] : 0.0;
  };

  Circuit out(circuit.num_qubits());
  std::size_t ticks = 0;
  for (const Instruction& ins : circuit.instructions()) {
    const GateInfo& info = gate_info(ins.gate);
    if (info.is_annotation) {
      out.append_annotation(ins.gate, ins.lookbacks, ins.args);
      if (ins.gate == Gate::TICK) ++ticks;
      continue;
    }
    out.append(ins.gate, ins.targets, ins.args);
    if (!info.is_unitary || ins.gate == Gate::I) continue;
    for (std::uint32_t q : ins.targets) {
      const double p = prob_of(ticks, q);
      RADSURF_CHECK_ARG(p >= 0.0 && p <= 1.0,
                        "reset probability out of [0,1]: " << p);
      if (p > 0.0) out.append(Gate::RESET_ERROR, {q}, {p});
    }
  }
  return out;
}

}  // namespace radsurf
