// Fault-injection campaign engine (the paper's methodology, Sec. III–IV).
//
// An InjectionEngine owns one experimental configuration: a surface code,
// an architecture, an intrinsic-noise level and a decoder.  Construction
// runs the full static pipeline once —
//   code circuit -> transpile -> intrinsic instrumentation ->
//   detector error model -> matching graph -> decoder tables ->
//   noiseless reference sample —
// after which the run_* methods execute shot campaigns for the paper's
// injection scenarios (intrinsic only, erasure sets, spreading strikes,
// full spatio-temporal radiation events).
//
// Contracts:
//  * RNG determinism — every run_* campaign shards its shots through
//    parallel_chunks (util/parallel.hpp): chunk c always draws from RNG
//    stream c of the campaign seed, so results are a pure function of
//    (engine configuration, seed), independent of OpenMP thread count and
//    schedule.  Repeated calls with the same seed return identical
//    Proportions.
//  * Thread-safety — the engine is internally parallel; the run_* methods
//    are const and safe to call from one thread at a time per engine.
//    Concurrent run_* calls on the SAME engine are not supported (the
//    syndrome cache and residual accounting are shared); build one engine
//    per concurrent caller instead.  Campaign-level parallelism belongs to
//    the cell layer (cli/grid.hpp), not to concurrent engines.
//  * Engine selection — SamplingPath::AUTO runs the bit-parallel frame
//    fast path and hands residual shots (heralded resets at
//    reference-random sites) to a batched exact replay engine,
//    conditioned on the herald signature; above
//    residual_fraction_threshold every shot goes straight to replay.  The
//    replay engine follows the n <= 31 / word-sliced rule of
//    stab/compact_tableau.hpp: the single-word CompactTableau up to 31
//    qubits, the word-sliced WideTableau up to kMaxSupportedQubits, the
//    generic tableau beyond — never silently: the choice is surfaced as
//    replay_engine() and recorded in BENCH extras.
//    SamplingPath::EXACT forces the paper's per-shot tableau baseline.
//  * Decoder selection — EngineOptions::decoder picks the whole-history
//    backend (decoder/decoder.hpp); run_timeline* always decodes through
//    sliding-window MWPM and is the only campaign allowed when
//    whole_history_decoder = false.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "arch/graph.hpp"
#include "codes/code.hpp"
#include "decoder/decode_cache.hpp"
#include "decoder/decoder.hpp"
#include "decoder/sliding_window.hpp"
#include "detector/detectors.hpp"
#include "noise/depolarizing.hpp"
#include "noise/radiation.hpp"
#include "noise/timeline.hpp"
#include "transpile/transpiler.hpp"
#include "util/stats.hpp"

namespace radsurf {

/// Shot-sampling strategy of the campaign engine.
enum class SamplingPath {
  /// Bit-parallel frame simulation for every shot it can express (now
  /// including heralded resets and shared-instant erasures at sites where
  /// the noiseless reference is deterministic), with an exact per-shot
  /// tableau re-run of the residual shots.
  AUTO,
  /// Force the exact per-shot tableau engine for every shot (the paper's
  /// original methodology; also the cross-validation baseline).
  EXACT,
};

struct EngineOptions {
  /// Intrinsic physical error rate p (paper default 1e-2).
  double physical_error_rate = 1e-2;
  /// Use the uniform 15-Pauli two-qubit channel instead of E (x) E.
  bool uniform_two_qubit = false;
  /// Readout error rate (X before each measurement); paper default 0.
  double measurement_error_rate = 0.0;
  /// Stabilisation rounds (paper: 2).
  std::size_t rounds = 2;
  /// Decoder backend and matcher knobs (implicitly constructible from a
  /// bare DecoderKind).  Applies to the whole-history decoder AND to the
  /// per-window matchers of run_timeline's sliding windows.
  DecoderOptions decoder = DecoderKind::MWPM;
  LayoutStrategy layout = LayoutStrategy::AUTO;
  /// Error rate used to weight the decoder's matching graph; 0 means
  /// max(physical_error_rate, 1e-3) so the decoder stays defined when the
  /// sampled intrinsic noise is turned off.
  double decoder_error_rate = 0.0;
  /// Radiation model parameters (gamma, n, ns).
  RadiationModel radiation = {};
  /// Shots per parallel chunk (RNG stream granularity).  1024 keeps the
  /// bit-parallel kernels at 16 words per instruction, where per-
  /// instruction dispatch overhead stops mattering; campaigns stay
  /// deterministic per seed at any value, but changing it changes the
  /// stream decomposition and therefore the sampled values.
  std::size_t shots_per_chunk = 1024;
  /// Shot-sampling strategy (AUTO = frame fast path + exact residual).
  SamplingPath sampling_path = SamplingPath::AUTO;
  /// When the expected residual fraction of an AUTO campaign exceeds this
  /// threshold, the frame batch is pure overhead and every shot goes
  /// straight to the batched exact replay engine (the per-shot frame
  /// bookkeeping would be discarded for almost all shots anyway).  The
  /// default is the measured break-even on xxzz-(3,3) reset-noise sweeps
  /// (frame wins up to ~0.55 observed residual, the replay engine from
  /// ~0.8; see ISSUE 3); 1.0 never skips, 0.0 always skips.
  double residual_fraction_threshold = 0.7;
  /// Memoize defect-set -> prediction across shots (see decode_cache.hpp).
  bool decode_cache = true;
  /// Let the decode cache switch itself off mid-campaign: once its
  /// observed hit rate stays under a floor after an initial probe window
  /// (CachingDecoder::kBypass* in decode_cache.hpp), every further decode
  /// skips the hashing and shard probing entirely — high-entropy syndrome
  /// mixes (large-distance strikes) otherwise pay for a cache they never
  /// hit.  Surfaced as cache_bypassed() and in BENCH extras.
  bool cache_auto_bypass = true;
  /// Herald-group frame promotion: group the residual shots of a campaign
  /// by their full conditioning signature (fired forced sites + strike
  /// ordinal) and run each group of at least `promotion_min_group` shots
  /// as ONE conditioned reference walk (exact, per distinct signature)
  /// plus a bit-parallel frame replay of the whole group against it —
  /// per-signature exact cost instead of per-shot.  Groups below the
  /// minimum replay per shot exactly as before — in the
  /// all-signatures-distinct worst case (full-intensity spread strikes,
  /// and chip-burst timelines whose component-wide footprints make nearly
  /// every herald signature unique) promotion degrades gracefully to
  /// per-shot conditioned walks: groups = promoted_shots = 0, every
  /// residual counted in exact_replays, never silently grouping distinct
  /// signatures.
  /// Also applies above residual_fraction_threshold, where signatures are
  /// pre-drawn so the whole campaign can be grouped without a frame batch.
  bool herald_promotion = true;
  /// Smallest signature group worth promoting (minimum 2: the conditioned
  /// walk costs about one exact shot, so a group of k replays in ~1 walk
  /// + k frame shots instead of k exact walks).
  std::size_t promotion_min_group = 2;
  /// Decode frame batches through the batch-major path: detector flip rows
  /// are 64×64 block-transposed into shot-major syndrome words at the
  /// decode boundary, zero-syndrome shots are skipped by a whole-word OR,
  /// and non-empty shots probe the decode cache on the raw word span
  /// (Decoder::decode_syndrome).  `false` keeps the legacy per-bit row
  /// probing — bit-for-bit identical results and cache stats, kept as the
  /// equivalence-test oracle.
  bool batch_major_decode = true;
  /// Build the whole-history decoder at construction.  Its distance tables
  /// are O((rounds * ns)^2); long-timeline engines that only decode through
  /// run_timeline's sliding windows turn this off to keep decoder memory
  /// O(window) — every other run_* campaign requires it.
  bool whole_history_decoder = true;
};

/// Herald-group promotion counters, cumulative over every campaign an
/// engine has run (see EngineOptions::herald_promotion): `groups` counts
/// conditioned reference walks (one per promoted signature), `promoted_shots`
/// the shots served by a group frame replay instead of a per-shot exact
/// walk, and `exact_replays` the shots that did take a per-shot exact walk
/// (singletons and sub-minimum groups, secondary residuals of promoted
/// groups, and every shot of EXACT or non-promoted frame-skipped
/// campaigns).  Recorded per scenario in BENCH_perf.json.
struct PromotionStats {
  std::uint64_t groups = 0;
  std::uint64_t promoted_shots = 0;
  std::uint64_t exact_replays = 0;
};

/// One recorded shot of a timeline realization: the fired detectors
/// (global ids, ascending = circuit order) and the actual observable-flip
/// word — the offline ground truth a streamed decode is pinned against.
struct RecordedShot {
  std::vector<std::uint32_t> defects;
  std::uint64_t observables = 0;
};

/// Aggregate of a multi-realization timeline campaign.
struct TimelineSummary {
  Proportion errors;                  // pooled over every realization
  std::size_t num_timelines = 0;      // event realizations sampled
  std::size_t total_events = 0;       // strikes across all realizations
  std::size_t rounds = 0;             // stabilisation rounds per shot
  std::size_t num_windows = 0;        // sliding windows per decode
  std::size_t window_decoders = 0;    // distinct window shapes built
  // Herald-aware decoding (DecoderOptions::herald_aware): realizations
  // whose strike herald fired and therefore decoded on a per-realization
  // strike-reweighted matching graph instead of the shared intrinsic one.
  std::size_t aware_rebuilds = 0;
  double mean_events() const {
    return num_timelines == 0
               ? 0.0
               : static_cast<double>(total_events) / num_timelines;
  }
};

class InjectionEngine {
 public:
  InjectionEngine(const SurfaceCode& code, Graph arch, EngineOptions options);
  /// Same pipeline, but reusing a precomputed transpile of
  /// `code.build(options.rounds)` onto `arch` — the grid layer memoizes
  /// transpiles across cells that share (code, architecture, rounds), so
  /// sweeps over noise levels or decoders pay the routing search once.
  InjectionEngine(const SurfaceCode& code, Graph arch, EngineOptions options,
                  TranspileResult transpiled);

  // --- static pipeline introspection --------------------------------------
  const Graph& architecture() const { return arch_; }
  const TranspileResult& transpiled() const { return transpiled_; }
  const RadiationModel& radiation() const { return options_.radiation; }
  const MatchingGraph& matching_graph() const { return matching_graph_; }
  const DetectorErrorModel& error_model() const { return dem_; }
  const EngineOptions& options() const { return options_; }

  /// Physical qubits the transpiled circuit actually touches — the
  /// candidate injection roots of the paper's per-qubit analyses.
  const std::vector<std::uint32_t>& active_qubits() const {
    return active_qubits_;
  }
  /// Role of a physical qubit under the initial layout (data/stabilizer/
  /// ancilla); routing ancillas that never host a code qubit report
  /// STABILIZER-like behaviour is irrelevant, so they return ANCILLA.
  QubitRole role_of_physical(std::uint32_t phys) const;

  /// Cumulative syndrome-cache statistics over every campaign this engine
  /// has run (own decoder and per-call override decoders combined).
  DecodeCacheStats decode_cache_stats() const;

  /// Name of the exact engine the batched residual replay path uses for
  /// this device: "compact" (single-word tableau, n <= 31), "compact:w<W>"
  /// (word-sliced, W column words), or "tableau" (generic fallback past
  /// the compact cap).  Surfaced so perf at new code distances is
  /// attributable to the engine actually running (BENCH extras).
  std::string replay_engine() const;

  /// Herald-group promotion counters (see PromotionStats), cumulative over
  /// every campaign this engine has run.
  PromotionStats promotion_stats() const {
    return {promo_groups_.load(std::memory_order_relaxed),
            promo_shots_.load(std::memory_order_relaxed),
            residual_shots_.load(std::memory_order_relaxed)};
  }

  /// True once the decode cache has switched itself off (see
  /// EngineOptions::cache_auto_bypass); false when caching is disabled.
  bool cache_bypassed() const;

  /// Fraction of sampled shots that took a *per-shot* exact engine walk
  /// rather than a bit-parallel frame path (plain batch or group-promoted
  /// replay), cumulative over every campaign this engine has run: AUTO
  /// counts its per-shot exact replays, EXACT counts everything.  The
  /// observable cost driver behind `speedup_vs_exact` — recorded per
  /// scenario in BENCH_perf.json.
  double residual_fraction() const {
    const std::uint64_t total =
        sampled_shots_.load(std::memory_order_relaxed);
    return total == 0 ? 0.0
                      : static_cast<double>(residual_shots_.load(
                            std::memory_order_relaxed)) /
                            static_cast<double>(total);
  }

  // --- campaigns -----------------------------------------------------------

  /// Intrinsic noise only.
  Proportion run_intrinsic(std::size_t shots, std::uint64_t seed) const;

  /// Arbitrary per-physical-qubit reset probabilities on top of the
  /// intrinsic noise (the generic injection primitive).
  Proportion run_reset_probs(const std::vector<double>& probs,
                             std::size_t shots, std::uint64_t seed) const;

  /// Single erasure event (Figs 6–7): every corrupted qubit is reset once,
  /// at a per-shot uniformly random instant shared by the whole set (the
  /// hypernode "undergoes the same fault event"), with no spatial spread.
  Proportion run_erasure(const std::vector<std::uint32_t>& corrupted,
                         std::size_t shots, std::uint64_t seed) const;

  /// Sustained erasure: probability-1 reset after *every* gate on the
  /// corrupted qubits (the t = 0 limit of the per-gate radiation model).
  Proportion run_sustained_erasure(
      const std::vector<std::uint32_t>& corrupted, std::size_t shots,
      std::uint64_t seed) const;

  /// Radiation strike of instantaneous root intensity `root_prob` at
  /// `root` (S(d)-spread optional).
  Proportion run_radiation_at(std::uint32_t root, double root_prob,
                              bool spread, std::size_t shots,
                              std::uint64_t seed) const;

  /// Full spatio-temporal event: one campaign per temporal sample T̂(t_i).
  std::vector<Proportion> run_radiation_event(std::uint32_t root,
                                              std::size_t shots_per_sample,
                                              std::uint64_t seed,
                                              bool spread = true) const;

  /// Long-horizon timeline campaign: instrument the N-round memory circuit
  /// (N = options.rounds) with the round-indexed reset schedule of a fixed
  /// event realization and decode every shot with sliding windows (memory
  /// O(window), not O(rounds); window >= rounds reproduces whole-history
  /// MWPM bit-for-bit).  Events come from timeline.sample() or are built
  /// directly for deterministic scenarios.  With
  /// options.decoder.herald_aware set and a non-empty event list, the
  /// windows decode on a strike-reweighted matching graph instead (see
  /// DecoderOptions::herald_aware); an empty realization is bit-for-bit
  /// the unaware path.
  Proportion run_timeline(const RadiationTimeline& timeline,
                          const std::vector<RadiationEvent>& events,
                          std::size_t shots, std::uint64_t seed,
                          const SlidingWindowOptions& window = {}) const;

  /// Monte-Carlo over the event layer too: sample `num_timelines` Poisson
  /// realizations (roots drawn from active_qubits()) and pool the shots.
  TimelineSummary run_timeline_campaign(
      const RadiationTimeline& timeline, std::size_t num_timelines,
      std::size_t shots_per_timeline, std::uint64_t seed,
      const SlidingWindowOptions& window = {}) const;

  /// run_timeline with a caller-owned decoder (run_timeline itself builds a
  /// fresh one per call).  Lets callers keep window memos warm across runs
  /// and read back decoder.matcher_stats() afterwards — the perf benches
  /// use it to attach matcher work counters to timeline records.
  Proportion run_timeline_with(const RadiationTimeline& timeline,
                               const std::vector<RadiationEvent>& events,
                               std::size_t shots, std::uint64_t seed,
                               SlidingWindowDecoder& decoder) const;

  /// Stabilisation-round index of every detector of the transpiled circuit
  /// (final-readout detectors folded into the last round) — the sliding-
  /// window decoder's round map.
  const std::vector<std::uint32_t>& detector_rounds() const {
    return detector_rounds_;
  }

  // --- streaming / serve support ------------------------------------------

  /// Sample exact per-shot records of one timeline realization — the same
  /// circuit, chunk decomposition and RNG streams as
  /// run_timeline(..., SamplingPath::EXACT), so shot s here is bit-for-bit
  /// the record that campaign decodes.  Stream replay and parity tests are
  /// built on this; engine counters (residual accounting, caches) are
  /// deliberately untouched.
  std::vector<RecordedShot> record_timeline_shots(
      const RadiationTimeline& timeline,
      const std::vector<RadiationEvent>& events, std::size_t shots,
      std::uint64_t seed) const;

  /// Sliding-window decoder for streaming (serve) sessions: with an empty
  /// event list, the shared intrinsic-weighted windows run_timeline
  /// decodes quiet realizations with; with events (and their timeline
  /// model), the strike-reweighted aware windows of run_timeline's
  /// herald-aware path.  Bit-for-bit the decoder the offline campaign
  /// would use, so streamed predictions pin against run_timeline exactly.
  std::unique_ptr<SlidingWindowDecoder> make_stream_decoder(
      const RadiationTimeline* timeline,
      const std::vector<RadiationEvent>& events,
      const SlidingWindowOptions& window = {}) const;

  /// Radiation-aware ablation (beyond the paper, answering its RQ3): the
  /// decoder's matching graph is rebuilt with the strike's reset field
  /// included (approximated as X/Z mechanisms of half the reset
  /// probability), modelling a decoder co-designed with a cosmic-ray
  /// detector that knows the impact point and intensity.
  Proportion run_radiation_at_aware(std::uint32_t root, double root_prob,
                                    bool spread, std::size_t shots,
                                    std::uint64_t seed) const;

 private:
  Proportion run_circuit(const Circuit& circuit, std::size_t shots,
                         std::uint64_t seed,
                         const std::vector<std::uint32_t>* erasure = nullptr,
                         Decoder* decoder_override = nullptr) const;

  SlidingWindowOptions window_options(const SlidingWindowOptions& window) const;

  /// The timeline-instrumented sampling circuit of one event realization.
  Circuit timeline_circuit(const RadiationTimeline& timeline,
                           const std::vector<RadiationEvent>& events) const;

  /// Herald-aware window decoder (DecoderOptions::herald_aware): sliding
  /// windows over a matching graph rebuilt from the strike-instrumented
  /// circuit with the reset field folded into the DEM — the timeline
  /// analogue of run_radiation_at_aware's reweighting.
  std::unique_ptr<SlidingWindowDecoder> aware_window_decoder(
      const Circuit& instrumented, const SlidingWindowOptions& window) const;

  EngineOptions options_;
  Graph arch_;
  Circuit logical_;
  TranspileResult transpiled_;
  Circuit noisy_base_;  // transpiled + intrinsic noise (sampling baseline)
  DetectorSet detectors_;
  DetectorErrorModel dem_;
  MatchingGraph matching_graph_;
  std::unique_ptr<Decoder> decoder_;
  // Persistent syndrome cache over decoder_ (campaign series re-hit it).
  std::unique_ptr<CachingDecoder> cached_decoder_;
  // Stats of the transient caches wrapped around override decoders.
  mutable std::atomic<std::uint64_t> override_cache_hits_{0};
  mutable std::atomic<std::uint64_t> override_cache_lookups_{0};
  // Residual accounting across campaigns (see residual_fraction()):
  // residual_shots_ counts per-shot exact walks only — group-promoted
  // shots count in promo_shots_ instead.
  mutable std::atomic<std::uint64_t> sampled_shots_{0};
  mutable std::atomic<std::uint64_t> residual_shots_{0};
  mutable std::atomic<std::uint64_t> promo_groups_{0};
  mutable std::atomic<std::uint64_t> promo_shots_{0};
  BitVec reference_;
  std::vector<std::uint32_t> active_qubits_;
  std::vector<QubitRole> physical_roles_;
  std::vector<std::uint32_t> detector_rounds_;
};

}  // namespace radsurf
