#include "inject/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <iterator>
#include <memory>

#include "detector/error_model.hpp"
#include "stab/compact_tableau.hpp"
#include "stab/frame_sim.hpp"
#include "stab/tableau_sim.hpp"
#include "util/hash.hpp"
#include "util/parallel.hpp"

namespace radsurf {

namespace {
// Expected fraction of shots the frame fast path must hand back to the
// exact engine: a shot is residual iff some herald fires at a reference-
// random reset site, or (for erasures) its strike instant finds a
// corrupted qubit with a random reference.  Computable upfront from the
// reference trace, so SamplingPath::AUTO can skip the frame batch when
// nearly every shot would fall through anyway.
double expected_residual_fraction(const Circuit& circuit,
                                  const ReferenceTrace& trace,
                                  bool erase) {
  double survive = 1.0;  // P(no herald at any reference-random site)
  std::size_t site = 0;
  for (const Instruction& ins : circuit.instructions()) {
    if (ins.gate != Gate::RESET_ERROR) continue;
    for (std::size_t i = 0; i < ins.targets.size(); ++i, ++site) {
      RADSURF_ASSERT(site < trace.reset_sites.size());
      if (trace.reset_sites[site] == 0) survive *= 1.0 - ins.args[0];
    }
  }
  const std::size_t num_corrupted = trace.corrupted.size();
  if (erase && trace.num_physical_ops > 0 && num_corrupted > 0) {
    std::size_t bad_instants = 0;
    for (std::size_t k = 0; k < trace.num_physical_ops; ++k) {
      for (std::size_t j = 0; j < num_corrupted; ++j) {
        if (trace.erasure_sites[k * num_corrupted + j] == 0) {
          ++bad_instants;
          break;
        }
      }
    }
    survive *= 1.0 - static_cast<double>(bad_instants) /
                         static_cast<double>(trace.num_physical_ops);
  }
  return 1.0 - survive;
}

// One residual shot of a frame batch, with the conditioning signature the
// exact replay must pin (see ResidualDetail / ReplayConstraint).
struct ResidualShot {
  std::vector<std::uint32_t> fired;  // fired reference-random sites, sorted
  std::uint32_t strike = 0;
  bool has_strike = false;
};

// The shot-independent half of every replay constraint: raw ordinals of
// the reference-random RESET_ERROR sites with nonzero probability, in
// circuit order.
std::vector<std::uint32_t> reference_random_sites(
    const Circuit& circuit, const ReferenceTrace& trace) {
  std::vector<std::uint32_t> sites;
  std::size_t site = 0;
  for (const Instruction& ins : circuit.instructions()) {
    if (ins.gate != Gate::RESET_ERROR) continue;
    for (std::size_t i = 0; i < ins.targets.size(); ++i, ++site) {
      if (trace.reset_sites[site] == 0 && ins.args[0] > 0.0)
        sites.push_back(static_cast<std::uint32_t>(site));
    }
  }
  return sites;
}

// Exact sampler over a shared precompiled tape: the compact single-word
// engine when the device fits, the generic tableau otherwise.  One
// instance per replay worker; the tape is compiled once per campaign.
class ReplayEngine {
 public:
  ReplayEngine(const std::shared_ptr<const CircuitTape>& tape,
               const Circuit& circuit) {
    if (CompactTableauSimulator::supports(circuit.num_qubits()))
      compact_ = std::make_unique<CompactTableauSimulator>(tape);
    else
      generic_ = std::make_unique<TableauSimulator>(circuit, tape);
  }

  void sample_into(Rng& rng, BitVec& record) {
    if (compact_) compact_->sample_into(rng, record);
    else generic_->sample_into(rng, record);
  }
  void sample_with_erasure_into(Rng& rng,
                                const std::vector<std::uint32_t>& corrupted,
                                BitVec& record) {
    if (compact_) compact_->sample_with_erasure_into(rng, corrupted, record);
    else generic_->sample_with_erasure_into(rng, corrupted, record);
  }
  void sample_replay_into(Rng& rng,
                          const std::vector<std::uint32_t>* corrupted,
                          const ReplayConstraint& constraint,
                          BitVec& record) {
    if (compact_) compact_->sample_replay_into(rng, corrupted, constraint,
                                               record);
    else generic_->sample_replay_into(rng, corrupted, constraint, record);
  }

 private:
  std::unique_ptr<CompactTableauSimulator> compact_;
  std::unique_ptr<TableauSimulator> generic_;
};

// Salt separating the replay phase's RNG streams from the frame phase's.
constexpr std::uint64_t kReplaySalt = 0x7265706c61797221ULL;
// Salt of the group-promotion streams (one stream per group chunk).
constexpr std::uint64_t kPromoteSalt = 0x70726f6d6f746521ULL;
// Salt of the pre-drawn signature stream (high-residual promotion).
constexpr std::uint64_t kSignatureSalt = 0x7369676e61747572ULL;

// Groups replayed per parallel chunk: amortizes the conditioned-walk
// simulator across a chunk while keeping the grain fine enough to spread
// unequal group sizes over workers.  Like shots_per_chunk, changing it
// changes the stream decomposition and therefore the sampled values.
constexpr std::size_t kGroupsPerChunk = 16;
}  // namespace

InjectionEngine::InjectionEngine(const SurfaceCode& code, Graph arch,
                                 EngineOptions options)
    : InjectionEngine(code, arch,
                      options,
                      transpile(code.build(options.rounds), arch,
                                TranspileOptions{options.layout})) {}

InjectionEngine::InjectionEngine(const SurfaceCode& code, Graph arch,
                                 EngineOptions options,
                                 TranspileResult transpiled)
    : options_(options), arch_(std::move(arch)) {
  logical_ = code.build(options_.rounds);
  transpiled_ = std::move(transpiled);
  RADSURF_CHECK_ARG(
      transpiled_.circuit.num_measurements() == logical_.num_measurements(),
      "precomputed transpile does not match code.build(options.rounds)");

  DepolarizingModel sampling_noise{options_.physical_error_rate,
                                   options_.uniform_two_qubit,
                                   options_.measurement_error_rate};
  noisy_base_ = sampling_noise.apply(transpiled_.circuit);

  // The decoder's matching graph is weighted by the *intrinsic* model only
  // (the radiation fault is out-of-model, as in the paper).
  double p_dec = options_.decoder_error_rate;
  if (p_dec <= 0.0)
    p_dec = std::max(options_.physical_error_rate, 1e-3);
  DepolarizingModel decoder_noise{p_dec, options_.uniform_two_qubit,
                                  options_.measurement_error_rate};
  dem_ = DetectorErrorModel::from_circuit(
      decoder_noise.apply(transpiled_.circuit));
  matching_graph_ = MatchingGraph::from_dem(dem_);
  if (options_.whole_history_decoder)
    decoder_ = make_decoder(options_.decoder, matching_graph_);

  detectors_ = DetectorSet::compile(transpiled_.circuit);
  // Fold the final-readout detectors (round == rounds) into the last round.
  detector_rounds_ = DetectorSet::detector_rounds(transpiled_.circuit);
  for (auto& r : detector_rounds_)
    r = std::min<std::uint32_t>(
        r, static_cast<std::uint32_t>(options_.rounds - 1));
  TableauSimulator ref_sim(transpiled_.circuit);
  reference_ = ref_sim.reference_sample();

  if (options_.decode_cache && decoder_) {
    cached_decoder_ = std::make_unique<CachingDecoder>(*decoder_);
    if (options_.cache_auto_bypass) cached_decoder_->enable_auto_bypass();
  }

  active_qubits_ = transpiled_.touched_physical_qubits();

  physical_roles_.assign(arch_.num_nodes(), QubitRole::ANCILLA);
  const auto& roles = code.roles();
  for (std::uint32_t l = 0; l < roles.size(); ++l)
    physical_roles_[transpiled_.initial_layout[l]] = roles[l];
}

QubitRole InjectionEngine::role_of_physical(std::uint32_t phys) const {
  RADSURF_CHECK_ARG(phys < physical_roles_.size(),
                    "physical qubit out of range");
  return physical_roles_[phys];
}

std::string InjectionEngine::replay_engine() const {
  // The replay circuits all run on the transpiled device, so the engine
  // choice is a pure function of its qubit count (same rule ReplayEngine
  // applies per instance).
  return CompactTableauSimulator::engine_name(noisy_base_.num_qubits());
}

Proportion InjectionEngine::run_circuit(
    const Circuit& circuit, std::size_t shots, std::uint64_t seed,
    const std::vector<std::uint32_t>* erasure,
    Decoder* decoder_override) const {
  // Syndrome memoization: the engine's own decoder keeps a persistent
  // cache (campaign series repeat syndromes across calls); an override
  // decoder gets a transient cache whose stats fold into the engine's.
  std::unique_ptr<CachingDecoder> local_cache;
  Decoder* decoder = decoder_override ? decoder_override : decoder_.get();
  RADSURF_CHECK_ARG(decoder != nullptr,
                    "engine built with whole_history_decoder = false "
                    "supports only run_timeline");
  if (options_.decode_cache) {
    if (decoder_override) {
      local_cache = std::make_unique<CachingDecoder>(*decoder_override);
      if (options_.cache_auto_bypass) local_cache->enable_auto_bypass();
      decoder = local_cache.get();
    } else {
      decoder = cached_decoder_.get();
    }
  }

  const bool erase = erasure && !erasure->empty();
  if (erasure) {
    for (std::uint32_t q : *erasure) {
      RADSURF_CHECK_ARG(q < circuit.num_qubits(),
                        "corrupted qubit " << q << " out of range");
    }
  }
  std::atomic<std::size_t> errors{0};
  sampled_shots_.fetch_add(shots, std::memory_order_relaxed);

  // Decode one exact record and count the logical error (defects and
  // observables come from one pass over the record diff).
  const auto decode_record = [&](const BitVec& record,
                                 std::vector<std::uint32_t>& defects,
                                 std::size_t& local_errors) {
    std::uint64_t actual = 0;
    detectors_.defects_and_observables_into(record, reference_, defects,
                                            &actual);
    const std::uint64_t predicted = decoder->decode(defects);
    if ((predicted ^ actual) & 1u) ++local_errors;
  };

  // SamplingPath::AUTO: the bit-parallel frame simulator carries every
  // shot it can express — pure Pauli noise exactly, probabilistic resets
  // and erasures through the heralded fast path.  Shots whose herald lands
  // on a reference-random site are *replayed* through a batched exact
  // engine, conditioned on the observed herald signature: the selection
  // into the residual set is a function of those heralds, so resampling
  // them from scratch would bias the frame/exact mixture.  The replay
  // engine shares one precompiled tape across workers and collapses to
  // single-word tableau arithmetic on devices up to 32 qubits.

  // One reference-trace walk shared by every chunk (AUTO only).
  ReferenceTrace trace;
  const bool needs_trace =
      options_.sampling_path != SamplingPath::EXACT &&
      (erase || contains_reset_noise(circuit));
  double expected_residual = 0.0;
  if (needs_trace) {
    trace =
        TableauSimulator(circuit).reference_trace(erase ? erasure : nullptr);
    expected_residual = expected_residual_fraction(circuit, trace, erase);
  }

  // Conditioned replay of a sorted residual list, shared by the frame
  // path's phase 3 and the high-residual pre-drawn path.  Runs of shots
  // with one signature become herald groups: ONE conditioned reference
  // walk (exact cost, per distinct signature) plus a bit-parallel frame
  // replay of the whole group; a member that heralds at a *conditioned*-
  // random site falls through to a per-shot exact replay under the merged
  // constraint.  Signatures too rare to group replay per shot as before.
  const auto replay_residuals = [&](const std::vector<ResidualShot>&
                                        residuals,
                                    const ReferenceTrace& trace) {
    if (residuals.empty()) return;
    const auto forced_sites = reference_random_sites(circuit, trace);
    const auto tape = CircuitTape::compile(circuit);
    const auto constraint_of = [&](const ResidualShot& shot) {
      ReplayConstraint c;
      c.forced_sites = &forced_sites;
      c.fired = shot.fired.data();
      c.num_fired = shot.fired.size();
      c.strike_ordinal = shot.strike;
      c.has_strike = shot.has_strike;
      return c;
    };

    // Partition the sorted list into promoted groups and per-shot singles.
    struct Group {
      std::size_t begin, end;
    };
    std::vector<Group> groups;
    std::vector<std::size_t> singles;
    const std::size_t min_group =
        std::max<std::size_t>(2, options_.promotion_min_group);
    for (std::size_t i = 0; i < residuals.size();) {
      std::size_t j = i + 1;
      while (j < residuals.size() &&
             residuals[j].fired == residuals[i].fired &&
             residuals[j].strike == residuals[i].strike)
        ++j;
      if (options_.herald_promotion && j - i >= min_group)
        groups.push_back({i, j});
      else
        for (std::size_t k = i; k < j; ++k) singles.push_back(k);
      i = j;
    }

    if (!singles.empty()) {
      residual_shots_.fetch_add(singles.size(), std::memory_order_relaxed);
      parallel_chunks(
          singles.size(), options_.shots_per_chunk, Rng(seed ^ kReplaySalt),
          [&](const ChunkRange& range, Rng& rng) {
            std::size_t local_errors = 0;
            ReplayEngine sim(tape, circuit);
            BitVec record(detectors_.num_records());
            std::vector<std::uint32_t> defects;
            for (std::size_t s = range.begin; s < range.end; ++s) {
              const ResidualShot& shot = residuals[singles[s]];
              sim.sample_replay_into(rng, erase ? erasure : nullptr,
                                     constraint_of(shot), record);
              decode_record(record, defects, local_errors);
            }
            errors.fetch_add(local_errors, std::memory_order_relaxed);
          });
    }

    if (!groups.empty()) {
      promo_groups_.fetch_add(groups.size(), std::memory_order_relaxed);
      std::atomic<std::uint64_t> promoted{0}, seconded{0};
      parallel_chunks(
          groups.size(), kGroupsPerChunk, Rng(seed ^ kPromoteSalt),
          [&](const ChunkRange& range, Rng& rng) {
            std::size_t local_errors = 0;
            std::uint64_t local_promoted = 0, local_seconded = 0;
            TableauSimulator cond_sim(circuit, tape);
            std::unique_ptr<ReplayEngine> sec_sim;  // lazy: secondaries rare
            BitVec record(detectors_.num_records());
            std::vector<std::uint32_t> defects;
            std::vector<std::uint32_t> merged_forced, sec_fired, merged_fired;
            for (std::size_t g = range.begin; g < range.end; ++g) {
              const ResidualShot& rep = residuals[groups[g].begin];
              const std::size_t gsize = groups[g].end - groups[g].begin;
              const ReplayConstraint constraint = constraint_of(rep);
              const ConditionedReference cond = cond_sim.conditioned_reference(
                  erase ? erasure : nullptr, constraint);
              FrameSimulator fsim(circuit, gsize, &cond.trace);
              BitVec secondary(gsize);
              ResidualDetail detail;
              const MeasurementFlips& flips =
                  fsim.run_group(rng, constraint, cond,
                                 erase ? erasure : nullptr, &secondary,
                                 &detail);
              const bool any_secondary = secondary.any();
              if (any_secondary) {
                // Merged pinning for the double-residual members: the
                // group signature plus the member's heralds at every
                // conditioned-random site — fired AND unfired, since the
                // fall-through selection depends on all of them.
                merged_forced.clear();
                std::merge(forced_sites.begin(), forced_sites.end(),
                           detail.random_sites.begin(),
                           detail.random_sites.end(),
                           std::back_inserter(merged_forced));
                if (!sec_sim)
                  sec_sim = std::make_unique<ReplayEngine>(tape, circuit);
              }
              for (std::size_t m = 0; m < gsize; ++m) {
                if (any_secondary && secondary.get(m)) {
                  sec_fired.clear();
                  for (std::size_t i = 0; i < detail.random_sites.size(); ++i)
                    if (detail.heralds[i].get(m))
                      sec_fired.push_back(detail.random_sites[i]);
                  merged_fired.clear();
                  std::merge(rep.fired.begin(), rep.fired.end(),
                             sec_fired.begin(), sec_fired.end(),
                             std::back_inserter(merged_fired));
                  ReplayConstraint mc;
                  mc.forced_sites = &merged_forced;
                  mc.fired = merged_fired.data();
                  mc.num_fired = merged_fired.size();
                  mc.strike_ordinal = rep.strike;
                  mc.has_strike = rep.has_strike;
                  sec_sim->sample_replay_into(rng, erase ? erasure : nullptr,
                                              mc, record);
                  decode_record(record, defects, local_errors);
                  ++local_seconded;
                  continue;
                }
                // Absolute record of a promoted member: the conditioned
                // reference record XOR the member's flip column.
                record = cond.record;
                for (std::size_t r = 0; r < flips.size(); ++r)
                  if (flips[r].get(m)) record.flip(r);
                decode_record(record, defects, local_errors);
                ++local_promoted;
              }
            }
            errors.fetch_add(local_errors, std::memory_order_relaxed);
            promoted.fetch_add(local_promoted, std::memory_order_relaxed);
            seconded.fetch_add(local_seconded, std::memory_order_relaxed);
          });
      promo_shots_.fetch_add(promoted.load(), std::memory_order_relaxed);
      residual_shots_.fetch_add(seconded.load(), std::memory_order_relaxed);
    }
  };

  if (options_.sampling_path == SamplingPath::EXACT) {
    // The paper's baseline methodology (and the cross-validation oracle):
    // one generic tableau walk per shot, nothing shared, nothing batched.
    residual_shots_.fetch_add(shots, std::memory_order_relaxed);
    parallel_chunks(
        shots, options_.shots_per_chunk, Rng(seed),
        [&](const ChunkRange& range, Rng& rng) {
          std::size_t local_errors = 0;
          TableauSimulator sim(circuit);
          BitVec record(detectors_.num_records());
          std::vector<std::uint32_t> defects;
          for (std::size_t s = range.begin; s < range.end; ++s) {
            if (erase)
              sim.sample_with_erasure_into(rng, *erasure, record);
            else
              sim.sample_into(rng, record);
            decode_record(record, defects, local_errors);
          }
          errors.fetch_add(local_errors, std::memory_order_relaxed);
        });
  } else if (needs_trace &&
             expected_residual > options_.residual_fraction_threshold &&
             !options_.herald_promotion) {
    // (Almost) every shot would be residual: the frame batch is pure
    // overhead, so every shot goes straight to the batched replay engine —
    // still exact, still seed-deterministic, but with the tape compiled
    // once and the single-word tableau doing the collapses.
    residual_shots_.fetch_add(shots, std::memory_order_relaxed);
    const auto tape = CircuitTape::compile(circuit);
    parallel_chunks(
        shots, options_.shots_per_chunk, Rng(seed),
        [&](const ChunkRange& range, Rng& rng) {
          std::size_t local_errors = 0;
          ReplayEngine sim(tape, circuit);
          BitVec record(detectors_.num_records());
          std::vector<std::uint32_t> defects;
          for (std::size_t s = range.begin; s < range.end; ++s) {
            if (erase)
              sim.sample_with_erasure_into(rng, *erasure, record);
            else
              sim.sample_into(rng, record);
            decode_record(record, defects, local_errors);
          }
          errors.fetch_add(local_errors, std::memory_order_relaxed);
        });
  } else if (needs_trace &&
             expected_residual > options_.residual_fraction_threshold) {
    // High-residual promotion: the frame batch would be pure overhead, but
    // instead of walking every shot exactly, pre-draw each shot's full
    // conditioning signature (heralds at the forced sites, strike ordinal)
    // from a dedicated stream — they are independent of the circuit state,
    // so sampling them first and replaying conditioned on them is the same
    // chain-rule factorization the frame path uses — and hand the whole
    // campaign to the grouped replay.  Signatures with any mass collapse
    // into herald groups; the rest replays per shot, pinned to its drawn
    // signature (it was selected into the singles by that signature, so it
    // must not be resampled).
    std::vector<ResidualShot> residuals(shots);
    Rng sig_rng(seed ^ kSignatureSalt);
    if (erase && trace.num_physical_ops > 0) {
      for (auto& r : residuals) {
        r.strike =
            static_cast<std::uint32_t>(sig_rng.below(trace.num_physical_ops));
        r.has_strike = true;
      }
    }
    const auto forced_sites = reference_random_sites(circuit, trace);
    if (!forced_sites.empty() && shots > 0) {
      std::vector<double> site_prob(forced_sites.size(), 0.0);
      std::size_t site = 0, fi = 0;
      for (const Instruction& ins : circuit.instructions()) {
        if (ins.gate != Gate::RESET_ERROR) continue;
        for (std::size_t i = 0; i < ins.targets.size(); ++i, ++site)
          if (fi < forced_sites.size() && forced_sites[fi] == site)
            site_prob[fi++] = ins.args[0];
      }
      BitVec col(shots);
      for (std::size_t i = 0; i < forced_sites.size(); ++i) {
        FrameSimulator::fill_biased(col, site_prob[i], sig_rng);
        for_each_set_bit(col.words(), col.num_words(), [&](std::size_t s) {
          residuals[s].fired.push_back(forced_sites[i]);
        });
      }
    }
    std::stable_sort(residuals.begin(), residuals.end(),
                     [](const ResidualShot& a, const ResidualShot& b) {
                       if (a.fired != b.fired) return a.fired < b.fired;
                       return a.strike < b.strike;
                     });
    replay_residuals(residuals, trace);
  } else {
    // Phase 1 — frame batches: decode every expressible shot, collect the
    // conditioning signature of every residual one.
    const std::size_t chunk_size = options_.shots_per_chunk;
    const std::size_t num_chunks =
        shots == 0 ? 0 : (shots + chunk_size - 1) / chunk_size;
    std::vector<std::vector<ResidualShot>> residual_by_chunk(num_chunks);
    // The frame simulator is rebuilt only when (campaign invocation,
    // batch size) changes: one simulator per worker thread survives the
    // whole chunk sweep, so circuit walks reuse every frame/flip buffer.
    // The invocation id (not the circuit address, which a temporary could
    // reuse) keys the rebind; a stale simulator is never run again, only
    // replaced.
    static std::atomic<std::uint64_t> run_counter{0};
    const std::uint64_t run_id =
        run_counter.fetch_add(1, std::memory_order_relaxed) + 1;
    parallel_chunks(
        shots, chunk_size, Rng(seed),
        [&](const ChunkRange& range, Rng& rng) {
          std::size_t local_errors = 0;
          const std::size_t batch = range.end - range.begin;
          thread_local std::unique_ptr<FrameSimulator> sim;
          thread_local std::uint64_t sim_run_id = 0;
          thread_local std::size_t sim_batch = 0;
          if (!sim || sim_run_id != run_id || sim_batch != batch) {
            sim = std::make_unique<FrameSimulator>(
                circuit, batch, needs_trace ? &trace : nullptr);
            sim_run_id = run_id;
            sim_batch = batch;
          }
          thread_local BitVec residual;
          residual.reset(batch);
          thread_local ResidualDetail detail;
          const MeasurementFlips& flips =
              erase
                  ? sim->run_with_erasure(rng, *erasure, &residual, &detail)
                  : sim->run(rng, &residual, &detail);
          auto& chunk_residuals = residual_by_chunk[range.index];
          const auto collect_residual = [&](std::size_t s) {
            ResidualShot shot;
            for (std::size_t i = 0; i < detail.random_sites.size(); ++i)
              if (detail.heralds[i].get(s))
                shot.fired.push_back(detail.random_sites[i]);
            if (erase && !detail.strike_ordinals.empty()) {
              shot.strike = detail.strike_ordinals[s];
              shot.has_strike = true;
            }
            chunk_residuals.push_back(std::move(shot));
          };
          // Walk the batch splitting residual shots from decodable ones,
          // loading the residual mask one word per 64 shots (residuals
          // are rare; a zero word decodes the whole block unchecked).
          const auto for_each_shot = [&](const auto& decode_shot) {
            const BitVec::Word* res_words = residual.words();
            for (std::size_t s = 0; s < batch;) {
              const BitVec::Word res_word = res_words[s / 64];
              const std::size_t block_end =
                  std::min(batch, (s / 64 + 1) * 64);
              if (res_word == 0) {
                for (; s < block_end; ++s) decode_shot(s);
              } else {
                for (; s < block_end; ++s) {
                  if ((res_word >> (s % 64)) & 1u)
                    collect_residual(s);
                  else
                    decode_shot(s);
                }
              }
            }
          };
          // Scratch lives per OpenMP worker, not per chunk: a worker
          // processes many chunks back to back and every buffer below
          // reshapes in place.
          thread_local DetectorSet::SyndromeScratch scratch;
          const std::size_t num_records = detectors_.num_records();
          const bool record_major =
              options_.batch_major_decode && num_records >= 1 &&
              num_records <= 64 && detectors_.syndrome_words() <= 4;
          if (record_major) {
            // Single-word record fast path: when the whole measurement
            // record fits one word (every small-distance memory circuit),
            // transpose the raw record flips once and derive each shot's
            // syndrome and observable words from its record word.  Shots
            // with a zero record word — the bulk at campaign noise
            // levels — are decided with one load: no flipped records
            // means empty syndrome and unflipped observables.
            thread_local BitTable record_table;
            transpose_bits(flips, record_table);
            const std::size_t num_words = detectors_.syndrome_words();
            // The shot outcome is a pure function of the record word
            // (syndrome, observables and the deterministic decoder all
            // derive from it), so repeat words resolve from a per-thread
            // memo without touching the decoder; the skipped cache probe
            // is booked through book_repeat_hit() to keep stats exact.
            // Keyed by campaign invocation: circuit, decoder and
            // reference are fixed within one, any of them may change
            // across two.
            struct RecordMemo {
              BitVec::Word rw;
              std::uint8_t error;
              std::uint8_t nonempty;
              std::uint8_t used;
            };
            constexpr std::size_t kMemoSlots = 4096;
            thread_local std::vector<RecordMemo> memo;
            thread_local std::uint64_t memo_run_id = 0;
            if (memo_run_id != run_id) {
              memo.assign(kMemoSlots, RecordMemo{});
              memo_run_id = run_id;
            }
            CachingDecoder* const stats_cache =
                dynamic_cast<CachingDecoder*>(decoder);
            const auto decode_shot = [&](std::size_t s) {
              BitVec::Word rw = record_table.row(s)[0];
              if (rw == 0) return;  // predicted == actual == 0
              RecordMemo& entry =
                  memo[splitmix64_mix(rw) & (kMemoSlots - 1)];
              if (entry.used && entry.rw == rw) {
                if (entry.nonempty && stats_cache != nullptr)
                  stats_cache->book_repeat_hit();
                local_errors += entry.error;
                return;
              }
              BitVec::Word syn[4] = {0, 0, 0, 0};
              std::uint64_t actual = 0;
              for_each_set_bit(&rw, 1, [&](std::size_t r) {
                const BitVec::Word* mask =
                    detectors_.record_detector_mask(r).words();
                for (std::size_t w = 0; w < num_words; ++w)
                  syn[w] ^= mask[w];
                actual ^= detectors_.observables_of_record(r);
              });
              BitVec::Word any = 0;
              for (std::size_t w = 0; w < num_words; ++w) any |= syn[w];
              const std::uint64_t predicted =
                  any ? decoder->decode_syndrome(syn, num_words) : 0;
              const auto error =
                  static_cast<std::uint8_t>((predicted ^ actual) & 1u);
              local_errors += error;
              entry = RecordMemo{rw, error, any != 0, 1};
            };
            for_each_shot(decode_shot);
          } else if (options_.batch_major_decode) {
            // Batch-major decode: flip the detector-major rows into
            // shot-major syndrome words once (64×64 block transpose),
            // then walk contiguous rows — a whole-word OR skips
            // zero-syndrome shots without touching the decoder, and
            // non-empty shots hand their raw word span to
            // decode_syndrome (word-keyed cache probe).
            thread_local BitTable syndromes;
            thread_local BitTable observables;
            detectors_.transposed_flips(flips, scratch, syndromes,
                                        observables);
            const std::size_t num_words = syndromes.words_per_row();
            const bool has_obs = observables.words_per_row() > 0;
            const auto decode_shot = [&](std::size_t s) {
              const BitVec::Word* row = syndromes.row(s);
              BitVec::Word any = 0;
              for (std::size_t w = 0; w < num_words; ++w) any |= row[w];
              const std::uint64_t actual =
                  has_obs ? observables.row(s)[0] : 0;
              const std::uint64_t predicted =
                  any ? decoder->decode_syndrome(row, num_words) : 0;
              if ((predicted ^ actual) & 1u) ++local_errors;
            };
            for_each_shot(decode_shot);
          } else {
            // Per-bit oracle path: probe every detector row with a
            // single-bit get(s) per shot, exactly as before the batch-
            // major pipeline (the equivalence tests pin the two paths
            // against each other, error counts and cache stats alike).
            detectors_.detector_flips_into(flips, scratch.det_rows);
            detectors_.observable_flips_into(flips, scratch.obs_rows);
            const auto& det_rows = scratch.det_rows;
            const auto& obs_rows = scratch.obs_rows;
            std::vector<std::uint32_t> defects;
            for (std::size_t s = 0; s < batch; ++s) {
              if (residual.get(s)) {
                collect_residual(s);
                continue;
              }
              defects.clear();
              for (std::size_t d = 0; d < det_rows.size(); ++d)
                if (det_rows[d].get(s))
                  defects.push_back(static_cast<std::uint32_t>(d));
              std::uint64_t actual = 0;
              for (std::size_t o = 0; o < obs_rows.size(); ++o)
                if (obs_rows[o].get(s)) actual |= std::uint64_t{1} << o;
              const std::uint64_t predicted = decoder->decode(defects);
              if ((predicted ^ actual) & 1u) ++local_errors;
            }
          }
          errors.fetch_add(local_errors, std::memory_order_relaxed);
        });

    // Phase 2 — flatten (chunk order is deterministic) and group shots
    // with identical corruption signatures so replay workers share
    // constraints and the bucketing is schedule-independent.
    std::vector<ResidualShot> residuals;
    for (auto& chunk : residual_by_chunk)
      for (auto& shot : chunk) residuals.push_back(std::move(shot));
    std::stable_sort(residuals.begin(), residuals.end(),
                     [](const ResidualShot& a, const ResidualShot& b) {
                       if (a.fired != b.fired) return a.fired < b.fired;
                       return a.strike < b.strike;
                     });

    // Phase 3 — conditioned replay of the residual shots: herald groups
    // through one conditioned walk + a frame replay each, the rest per
    // shot, all on deterministic per-chunk RNG streams.
    replay_residuals(residuals, trace);
  }

  if (local_cache) {
    const DecodeCacheStats s = local_cache->stats();
    override_cache_hits_.fetch_add(s.hits, std::memory_order_relaxed);
    override_cache_lookups_.fetch_add(s.lookups, std::memory_order_relaxed);
  }
  return Proportion{errors.load(), shots};
}

bool InjectionEngine::cache_bypassed() const {
  return cached_decoder_ != nullptr && cached_decoder_->bypassed();
}

DecodeCacheStats InjectionEngine::decode_cache_stats() const {
  DecodeCacheStats s;
  if (cached_decoder_) s += cached_decoder_->stats();
  s.hits += override_cache_hits_.load(std::memory_order_relaxed);
  s.lookups += override_cache_lookups_.load(std::memory_order_relaxed);
  return s;
}

Proportion InjectionEngine::run_intrinsic(std::size_t shots,
                                          std::uint64_t seed) const {
  return run_circuit(noisy_base_, shots, seed);
}

Proportion InjectionEngine::run_reset_probs(const std::vector<double>& probs,
                                            std::size_t shots,
                                            std::uint64_t seed) const {
  return run_circuit(instrument_reset_noise(noisy_base_, probs), shots, seed);
}

Proportion InjectionEngine::run_erasure(
    const std::vector<std::uint32_t>& corrupted, std::size_t shots,
    std::uint64_t seed) const {
  for (std::uint32_t q : corrupted) {
    RADSURF_CHECK_ARG(q < arch_.num_nodes(),
                      "corrupted qubit " << q << " outside architecture");
  }
  return run_circuit(noisy_base_, shots, seed, &corrupted);
}

Proportion InjectionEngine::run_sustained_erasure(
    const std::vector<std::uint32_t>& corrupted, std::size_t shots,
    std::uint64_t seed) const {
  return run_reset_probs(
      erasure_probabilities(arch_.num_nodes(), corrupted), shots, seed);
}

Proportion InjectionEngine::run_radiation_at(std::uint32_t root,
                                             double root_prob, bool spread,
                                             std::size_t shots,
                                             std::uint64_t seed) const {
  return run_reset_probs(options_.radiation.qubit_probabilities(
                             arch_, root, root_prob, spread),
                         shots, seed);
}

Proportion InjectionEngine::run_radiation_at_aware(
    std::uint32_t root, double root_prob, bool spread, std::size_t shots,
    std::uint64_t seed) const {
  const auto probs = options_.radiation.qubit_probabilities(
      arch_, root, root_prob, spread);
  const Circuit sampling = instrument_reset_noise(noisy_base_, probs);
  // The aware decoder sees the same reset field it will be asked to
  // correct, on top of the intrinsic model.
  DemOptions dem_options;
  dem_options.include_reset_approximation = true;
  const auto dem = DetectorErrorModel::from_circuit(sampling, dem_options);
  const MatchingGraph graph = MatchingGraph::from_dem(dem);
  const auto aware = make_decoder(options_.decoder, graph);
  return run_circuit(sampling, shots, seed, nullptr, aware.get());
}

// Window options with the engine's matcher knobs folded in: timeline
// windows decode with the same cluster threshold / backend selection as
// the whole-history decoder.
SlidingWindowOptions InjectionEngine::window_options(
    const SlidingWindowOptions& window) const {
  SlidingWindowOptions w = window;
  w.matcher.dp_max_cluster = options_.decoder.dp_max_cluster;
  w.matcher.dense_matcher = options_.decoder.dense_matcher;
  return w;
}

Circuit InjectionEngine::timeline_circuit(
    const RadiationTimeline& timeline,
    const std::vector<RadiationEvent>& events) const {
  return instrument_timeline_noise(
      noisy_base_, timeline.schedule(arch_, events, options_.rounds));
}

std::unique_ptr<SlidingWindowDecoder> InjectionEngine::aware_window_decoder(
    const Circuit& instrumented, const SlidingWindowOptions& window) const {
  // Same reweighting as run_radiation_at_aware, per realization: the
  // windows' matching graph is rebuilt from the circuit that carries the
  // strike's reset field, folded into the DEM as X/Z mechanisms of half
  // the reset probability — edges inside the footprint's rounds and
  // region get cheaper, everything else keeps its intrinsic weight.  The
  // detector set is a function of the noiseless structure, so the round
  // map carries over unchanged.
  DemOptions dem_options;
  dem_options.include_reset_approximation = true;
  const auto dem = DetectorErrorModel::from_circuit(instrumented, dem_options);
  // The view layout copies the subgraphs it needs, so `graph` may die
  // with this frame.
  const MatchingGraph graph = MatchingGraph::from_dem(dem);
  RADSURF_ASSERT(graph.num_detectors() == matching_graph_.num_detectors());
  return std::make_unique<SlidingWindowDecoder>(
      graph, detector_rounds_, options_.rounds, window);
}

std::vector<RecordedShot> InjectionEngine::record_timeline_shots(
    const RadiationTimeline& timeline,
    const std::vector<RadiationEvent>& events, std::size_t shots,
    std::uint64_t seed) const {
  const Circuit circuit = timeline_circuit(timeline, events);
  std::vector<RecordedShot> out(shots);
  // Mirror of run_circuit's EXACT branch: same chunk decomposition, same
  // per-chunk RNG streams, one generic tableau walk per shot — so the
  // records equal the ones run_timeline(EXACT) decodes, shot for shot.
  parallel_chunks(shots, options_.shots_per_chunk, Rng(seed),
                  [&](const ChunkRange& range, Rng& rng) {
                    TableauSimulator sim(circuit);
                    BitVec record(detectors_.num_records());
                    for (std::size_t s = range.begin; s < range.end; ++s) {
                      sim.sample_into(rng, record);
                      detectors_.defects_and_observables_into(
                          record, reference_, out[s].defects,
                          &out[s].observables);
                    }
                  });
  return out;
}

std::unique_ptr<SlidingWindowDecoder> InjectionEngine::make_stream_decoder(
    const RadiationTimeline* timeline,
    const std::vector<RadiationEvent>& events,
    const SlidingWindowOptions& window) const {
  if (!events.empty()) {
    RADSURF_CHECK_ARG(timeline != nullptr,
                      "heralded stream decoder needs the timeline model "
                      "that produced the events");
    return aware_window_decoder(timeline_circuit(*timeline, events),
                                window_options(window));
  }
  return std::make_unique<SlidingWindowDecoder>(
      matching_graph_, detector_rounds_, options_.rounds,
      window_options(window));
}

Proportion InjectionEngine::run_timeline_with(
    const RadiationTimeline& timeline,
    const std::vector<RadiationEvent>& events, std::size_t shots,
    std::uint64_t seed, SlidingWindowDecoder& decoder) const {
  const Circuit circuit = timeline_circuit(timeline, events);
  return run_circuit(circuit, shots, seed, nullptr, &decoder);
}

Proportion InjectionEngine::run_timeline(
    const RadiationTimeline& timeline,
    const std::vector<RadiationEvent>& events, std::size_t shots,
    std::uint64_t seed, const SlidingWindowOptions& window) const {
  if (options_.decoder.herald_aware && !events.empty()) {
    const Circuit circuit = timeline_circuit(timeline, events);
    const auto aware = aware_window_decoder(circuit, window_options(window));
    return run_circuit(circuit, shots, seed, nullptr, aware.get());
  }
  SlidingWindowDecoder decoder(matching_graph_, detector_rounds_,
                               options_.rounds, window_options(window));
  return run_timeline_with(timeline, events, shots, seed, decoder);
}

TimelineSummary InjectionEngine::run_timeline_campaign(
    const RadiationTimeline& timeline, std::size_t num_timelines,
    std::size_t shots_per_timeline, std::uint64_t seed,
    const SlidingWindowOptions& window) const {
  TimelineSummary summary;
  summary.num_timelines = num_timelines;
  summary.rounds = options_.rounds;
  // One decoder serves every quiet realization (decode() is thread-safe
  // and the window layout depends only on the engine and the window
  // options); herald-aware cells swap heralded realizations onto a
  // per-realization strike-reweighted decoder instead.
  SlidingWindowDecoder decoder(matching_graph_, detector_rounds_,
                               options_.rounds, window_options(window));
  summary.num_windows = decoder.num_windows();
  summary.window_decoders = decoder.num_decoders();
  Rng event_rng(seed ^ 0x7261647375726621ULL);
  for (std::size_t i = 0; i < num_timelines; ++i) {
    const auto events =
        timeline.sample(options_.rounds, active_qubits_, &arch_, event_rng);
    summary.total_events += events.size();
    const std::uint64_t shot_seed = seed + 0x9e37 * (i + 1);
    if (options_.decoder.herald_aware && !events.empty()) {
      const Circuit circuit = timeline_circuit(timeline, events);
      const auto aware =
          aware_window_decoder(circuit, window_options(window));
      summary.errors +=
          run_circuit(circuit, shots_per_timeline, shot_seed, nullptr,
                      aware.get());
      ++summary.aware_rebuilds;
    } else {
      summary.errors += run_timeline_with(timeline, events,
                                          shots_per_timeline, shot_seed,
                                          decoder);
    }
  }
  return summary;
}

std::vector<Proportion> InjectionEngine::run_radiation_event(
    std::uint32_t root, std::size_t shots_per_sample, std::uint64_t seed,
    bool spread) const {
  std::vector<Proportion> out;
  const auto values = options_.radiation.sample_values();
  out.reserve(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    out.push_back(run_radiation_at(root, values[i], spread, shots_per_sample,
                                   seed + 0x9e37 * (i + 1)));
  }
  return out;
}

}  // namespace radsurf
