#include "inject/campaign.hpp"

#include <atomic>

#include "detector/error_model.hpp"
#include "stab/frame_sim.hpp"
#include "stab/tableau_sim.hpp"
#include "util/parallel.hpp"

namespace radsurf {

namespace {
bool contains_reset_noise(const Circuit& circuit) {
  for (const Instruction& ins : circuit.instructions())
    if (ins.gate == Gate::RESET_ERROR) return true;
  return false;
}
}  // namespace

InjectionEngine::InjectionEngine(const SurfaceCode& code, Graph arch,
                                 EngineOptions options)
    : options_(options), arch_(std::move(arch)) {
  logical_ = code.build(options_.rounds);
  transpiled_ = transpile(logical_, arch_, TranspileOptions{options_.layout});

  DepolarizingModel sampling_noise{options_.physical_error_rate,
                                   options_.uniform_two_qubit,
                                   options_.measurement_error_rate};
  noisy_base_ = sampling_noise.apply(transpiled_.circuit);

  // The decoder's matching graph is weighted by the *intrinsic* model only
  // (the radiation fault is out-of-model, as in the paper).
  double p_dec = options_.decoder_error_rate;
  if (p_dec <= 0.0)
    p_dec = std::max(options_.physical_error_rate, 1e-3);
  DepolarizingModel decoder_noise{p_dec, options_.uniform_two_qubit,
                                  options_.measurement_error_rate};
  dem_ = DetectorErrorModel::from_circuit(
      decoder_noise.apply(transpiled_.circuit));
  matching_graph_ = MatchingGraph::from_dem(dem_);
  decoder_ = make_decoder(options_.decoder, matching_graph_);

  detectors_ = DetectorSet::compile(transpiled_.circuit);
  TableauSimulator ref_sim(transpiled_.circuit);
  reference_ = ref_sim.reference_sample();

  active_qubits_ = transpiled_.touched_physical_qubits();

  physical_roles_.assign(arch_.num_nodes(), QubitRole::ANCILLA);
  const auto& roles = code.roles();
  for (std::uint32_t l = 0; l < roles.size(); ++l)
    physical_roles_[transpiled_.initial_layout[l]] = roles[l];
}

QubitRole InjectionEngine::role_of_physical(std::uint32_t phys) const {
  RADSURF_CHECK_ARG(phys < physical_roles_.size(),
                    "physical qubit out of range");
  return physical_roles_[phys];
}

Proportion InjectionEngine::run_circuit(
    const Circuit& circuit, std::size_t shots, std::uint64_t seed,
    const std::vector<std::uint32_t>* erasure,
    Decoder* decoder_override) const {
  Decoder* decoder = decoder_override ? decoder_override : decoder_.get();
  std::atomic<std::size_t> errors{0};

  // Pure-Pauli campaigns (no probabilistic reset, no erasure plan) can use
  // the bit-parallel frame simulator — detector semantics are identical
  // (cross-validated in tests), throughput is far higher.
  const bool frame_fast_path = !erasure && !contains_reset_noise(circuit);

  parallel_chunks(
      shots, options_.shots_per_chunk, Rng(seed),
      [&](const ChunkRange& range, Rng& rng) {
        std::size_t local_errors = 0;
        if (frame_fast_path) {
          const std::size_t batch = range.end - range.begin;
          FrameSimulator sim(circuit, batch);
          const MeasurementFlips flips = sim.run(rng);
          const auto det_rows = detectors_.detector_flips(flips);
          const auto obs_rows = detectors_.observable_flips(flips);
          std::vector<std::uint32_t> defects;
          for (std::size_t s = 0; s < batch; ++s) {
            defects.clear();
            for (std::size_t d = 0; d < det_rows.size(); ++d)
              if (det_rows[d].get(s))
                defects.push_back(static_cast<std::uint32_t>(d));
            const std::uint64_t predicted = decoder->decode(defects);
            std::uint64_t actual = 0;
            for (std::size_t o = 0; o < obs_rows.size(); ++o)
              if (obs_rows[o].get(s)) actual |= std::uint64_t{1} << o;
            if ((predicted ^ actual) & 1u) ++local_errors;
          }
        } else {
          TableauSimulator sim(circuit);
          for (std::size_t s = range.begin; s < range.end; ++s) {
            const BitVec record =
                erasure ? sim.sample_with_erasure(rng, *erasure)
                        : sim.sample(rng);
            const auto defects = detectors_.defects(record, reference_);
            const std::uint64_t predicted = decoder->decode(defects);
            const std::uint64_t actual =
                detectors_.observable_values(record, reference_);
            if ((predicted ^ actual) & 1u) ++local_errors;
          }
        }
        errors.fetch_add(local_errors, std::memory_order_relaxed);
      });
  return Proportion{errors.load(), shots};
}

Proportion InjectionEngine::run_intrinsic(std::size_t shots,
                                          std::uint64_t seed) const {
  return run_circuit(noisy_base_, shots, seed);
}

Proportion InjectionEngine::run_reset_probs(const std::vector<double>& probs,
                                            std::size_t shots,
                                            std::uint64_t seed) const {
  return run_circuit(instrument_reset_noise(noisy_base_, probs), shots, seed);
}

Proportion InjectionEngine::run_erasure(
    const std::vector<std::uint32_t>& corrupted, std::size_t shots,
    std::uint64_t seed) const {
  for (std::uint32_t q : corrupted) {
    RADSURF_CHECK_ARG(q < arch_.num_nodes(),
                      "corrupted qubit " << q << " outside architecture");
  }
  return run_circuit(noisy_base_, shots, seed, &corrupted);
}

Proportion InjectionEngine::run_sustained_erasure(
    const std::vector<std::uint32_t>& corrupted, std::size_t shots,
    std::uint64_t seed) const {
  return run_reset_probs(
      erasure_probabilities(arch_.num_nodes(), corrupted), shots, seed);
}

Proportion InjectionEngine::run_radiation_at(std::uint32_t root,
                                             double root_prob, bool spread,
                                             std::size_t shots,
                                             std::uint64_t seed) const {
  return run_reset_probs(options_.radiation.qubit_probabilities(
                             arch_, root, root_prob, spread),
                         shots, seed);
}

Proportion InjectionEngine::run_radiation_at_aware(
    std::uint32_t root, double root_prob, bool spread, std::size_t shots,
    std::uint64_t seed) const {
  const auto probs = options_.radiation.qubit_probabilities(
      arch_, root, root_prob, spread);
  const Circuit sampling = instrument_reset_noise(noisy_base_, probs);
  // The aware decoder sees the same reset field it will be asked to
  // correct, on top of the intrinsic model.
  DemOptions dem_options;
  dem_options.include_reset_approximation = true;
  const auto dem = DetectorErrorModel::from_circuit(sampling, dem_options);
  const MatchingGraph graph = MatchingGraph::from_dem(dem);
  const auto aware = make_decoder(options_.decoder, graph);
  return run_circuit(sampling, shots, seed, nullptr, aware.get());
}

std::vector<Proportion> InjectionEngine::run_radiation_event(
    std::uint32_t root, std::size_t shots_per_sample, std::uint64_t seed,
    bool spread) const {
  std::vector<Proportion> out;
  const auto values = options_.radiation.sample_values();
  out.reserve(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    out.push_back(run_radiation_at(root, values[i], spread, shots_per_sample,
                                   seed + 0x9e37 * (i + 1)));
  }
  return out;
}

}  // namespace radsurf
