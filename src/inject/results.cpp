#include "inject/results.hpp"

#include <sstream>

#include "util/table.hpp"

namespace radsurf {

double median_rate(const std::vector<Proportion>& props) {
  std::vector<double> rates;
  rates.reserve(props.size());
  for (const auto& p : props) rates.push_back(p.rate());
  return median(std::move(rates));
}

double mean_rate(const std::vector<Proportion>& props) {
  std::vector<double> rates;
  rates.reserve(props.size());
  for (const auto& p : props) rates.push_back(p.rate());
  return mean(rates);
}

Proportion pool(const std::vector<Proportion>& props) {
  Proportion out;
  for (const auto& p : props) out += p;
  return out;
}

std::string format_rate_ci(const Proportion& p) {
  std::ostringstream ss;
  ss << Table::pct(p.rate()) << " [" << Table::pct(p.wilson_low()) << ", "
     << Table::pct(p.wilson_high()) << "]";
  return ss.str();
}

}  // namespace radsurf
