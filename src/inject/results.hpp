// Aggregation helpers for campaign results.
//
// The paper aggregates per-injection-point results as medians (Figs 6–8)
// and reports logical error rates as percentages; these helpers keep that
// logic out of the figure drivers.
#pragma once

#include <string>
#include <vector>

#include "util/stats.hpp"

namespace radsurf {

/// Median of the rates of a set of proportions.
double median_rate(const std::vector<Proportion>& props);

/// Mean of the rates.
double mean_rate(const std::vector<Proportion>& props);

/// Pooled proportion (sums successes and trials).
Proportion pool(const std::vector<Proportion>& props);

/// "12.3% [11.9%, 12.8%]" rendering of a proportion with Wilson CI.
std::string format_rate_ci(const Proportion& p);

}  // namespace radsurf
