// Undirected architecture graph.
//
// Nodes are physical qubits; edges are the couplings a two-qubit gate may
// use.  The radiation model's spatial damping S(d) is parameterised by BFS
// distance on this graph (Sec. III-B: fixed edge weight 1), and the router
// moves logical qubits along its shortest paths.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace radsurf {

class Graph {
 public:
  Graph() = default;
  explicit Graph(std::size_t num_nodes) : adj_(num_nodes) {}

  std::size_t num_nodes() const { return adj_.size(); }
  std::size_t num_edges() const { return edges_.size(); }

  /// Add an undirected edge (idempotent; self-loops rejected).
  void add_edge(std::uint32_t a, std::uint32_t b);

  bool has_edge(std::uint32_t a, std::uint32_t b) const;
  const std::vector<std::uint32_t>& neighbors(std::uint32_t v) const;
  const std::vector<std::pair<std::uint32_t, std::uint32_t>>& edges() const {
    return edges_;
  }

  std::size_t degree(std::uint32_t v) const { return neighbors(v).size(); }
  double average_degree() const;
  std::size_t max_degree() const;

  bool is_connected() const;

  /// BFS hop distances from `src`; unreachable nodes get SIZE_MAX.
  std::vector<std::size_t> bfs_distances(std::uint32_t src) const;

  /// All-pairs BFS distance matrix.
  std::vector<std::vector<std::size_t>> all_pairs_distances() const;

  /// Shortest path (inclusive of endpoints); empty if unreachable.
  std::vector<std::uint32_t> shortest_path(std::uint32_t from,
                                           std::uint32_t to) const;

  /// Induced subgraph on `nodes` (relabelled 0..k-1 in the given order).
  Graph induced(const std::vector<std::uint32_t>& nodes) const;

 private:
  std::vector<std::vector<std::uint32_t>> adj_;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges_;
};

}  // namespace radsurf
