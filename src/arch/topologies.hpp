// Architecture graph builders (paper Sec. V-D).
//
// The generic families (linear, mesh, complete, heavy-hex) are exact.  The
// named IBM devices follow the published coupling patterns: Cairo uses the
// standard 27-qubit Falcon heavy-hex map; Almaden and Johannesburg use the
// 20-qubit grid-with-bridges patterns of those devices; Brooklyn (65q) and
// Cambridge (28q) are instantiated from IBM's heavy-hex cell family at the
// device sizes.  As documented in DESIGN.md these are shape-faithful
// reconstructions: the degree profile and cell structure — the properties
// the paper's architecture analysis depends on — match the real devices.
#pragma once

#include <string>
#include <vector>

#include "arch/graph.hpp"

namespace radsurf {

/// Path graph 0-1-...-(n-1).
Graph make_linear(std::size_t n);

/// rows x cols grid with 4-neighbour connectivity.
Graph make_mesh(std::size_t rows, std::size_t cols);

/// Complete graph K_n.
Graph make_complete(std::size_t n);

/// IBM-style heavy-hex lattice.
/// `row_lengths` are the qubit-row lengths; between consecutive qubit rows
/// a sparse row of bridge qubits connects them at every 4th column, with
/// the bridge column offset alternating by 2 per gap (IBM cell pattern).
Graph make_heavy_hex(const std::vector<std::size_t>& row_lengths);

// Named devices.
Graph make_almaden();       // 20 qubits
Graph make_johannesburg();  // 20 qubits
Graph make_cairo();         // 27 qubits (Falcon heavy-hex)
Graph make_cambridge();     // 28 qubits (heavy-hex family)
Graph make_brooklyn();      // 65 qubits (Hummingbird heavy-hex)

/// Lookup by name: "linear:<n>", "mesh:<r>x<c>", "complete:<n>", "almaden",
/// "johannesburg", "cairo", "cambridge", "brooklyn".
Graph make_topology(const std::string& name);

/// Names of all built-in named devices.
std::vector<std::string> named_topologies();

}  // namespace radsurf
