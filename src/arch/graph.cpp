#include "arch/graph.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "util/error.hpp"

namespace radsurf {

void Graph::add_edge(std::uint32_t a, std::uint32_t b) {
  RADSURF_CHECK_ARG(a != b, "self-loop on node " << a);
  RADSURF_CHECK_ARG(a < adj_.size() && b < adj_.size(),
                    "edge (" << a << "," << b << ") out of range for "
                             << adj_.size() << " nodes");
  if (has_edge(a, b)) return;
  adj_[a].push_back(b);
  adj_[b].push_back(a);
  edges_.emplace_back(std::min(a, b), std::max(a, b));
}

bool Graph::has_edge(std::uint32_t a, std::uint32_t b) const {
  if (a >= adj_.size() || b >= adj_.size()) return false;
  const auto& na = adj_[a];
  return std::find(na.begin(), na.end(), b) != na.end();
}

const std::vector<std::uint32_t>& Graph::neighbors(std::uint32_t v) const {
  RADSURF_ASSERT(v < adj_.size());
  return adj_[v];
}

double Graph::average_degree() const {
  if (adj_.empty()) return 0.0;
  return 2.0 * static_cast<double>(edges_.size()) /
         static_cast<double>(adj_.size());
}

std::size_t Graph::max_degree() const {
  std::size_t d = 0;
  for (const auto& nb : adj_) d = std::max(d, nb.size());
  return d;
}

bool Graph::is_connected() const {
  if (adj_.empty()) return true;
  const auto dist = bfs_distances(0);
  return std::none_of(dist.begin(), dist.end(), [](std::size_t d) {
    return d == std::numeric_limits<std::size_t>::max();
  });
}

std::vector<std::size_t> Graph::bfs_distances(std::uint32_t src) const {
  RADSURF_CHECK_ARG(src < adj_.size(), "bfs source out of range");
  std::vector<std::size_t> dist(adj_.size(),
                                std::numeric_limits<std::size_t>::max());
  std::queue<std::uint32_t> q;
  dist[src] = 0;
  q.push(src);
  while (!q.empty()) {
    const std::uint32_t v = q.front();
    q.pop();
    for (std::uint32_t w : adj_[v]) {
      if (dist[w] == std::numeric_limits<std::size_t>::max()) {
        dist[w] = dist[v] + 1;
        q.push(w);
      }
    }
  }
  return dist;
}

std::vector<std::vector<std::size_t>> Graph::all_pairs_distances() const {
  std::vector<std::vector<std::size_t>> out;
  out.reserve(adj_.size());
  for (std::uint32_t v = 0; v < adj_.size(); ++v)
    out.push_back(bfs_distances(v));
  return out;
}

std::vector<std::uint32_t> Graph::shortest_path(std::uint32_t from,
                                                std::uint32_t to) const {
  RADSURF_CHECK_ARG(from < adj_.size() && to < adj_.size(),
                    "path endpoints out of range");
  std::vector<std::int64_t> parent(adj_.size(), -1);
  std::queue<std::uint32_t> q;
  parent[from] = from;
  q.push(from);
  while (!q.empty() && parent[to] < 0) {
    const std::uint32_t v = q.front();
    q.pop();
    for (std::uint32_t w : adj_[v]) {
      if (parent[w] < 0) {
        parent[w] = v;
        q.push(w);
      }
    }
  }
  if (parent[to] < 0) return {};
  std::vector<std::uint32_t> path{to};
  while (path.back() != from)
    path.push_back(static_cast<std::uint32_t>(parent[path.back()]));
  std::reverse(path.begin(), path.end());
  return path;
}

Graph Graph::induced(const std::vector<std::uint32_t>& nodes) const {
  Graph g(nodes.size());
  for (std::uint32_t i = 0; i < nodes.size(); ++i) {
    for (std::uint32_t j = i + 1; j < nodes.size(); ++j) {
      if (has_edge(nodes[i], nodes[j])) g.add_edge(i, j);
    }
  }
  return g;
}

}  // namespace radsurf
