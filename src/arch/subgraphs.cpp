#include "arch/subgraphs.hpp"

#include <algorithm>
#include <set>

#include "util/error.hpp"

namespace radsurf {

namespace {

// Duplicate-free recursive extension: grow S only with neighbours not in
// the exclusion set X; after trying an extension vertex it joins X, so each
// connected set is produced exactly once (standard RSSP enumeration).
struct Enumerator {
  const Graph& g;
  std::size_t k;
  std::size_t max_count;
  std::vector<std::vector<std::uint32_t>>& out;
  std::vector<char> in_s;

  bool extend(std::vector<std::uint32_t>& s, std::vector<char>& excluded) {
    if (s.size() == k) {
      out.push_back(s);
      std::sort(out.back().begin(), out.back().end());
      return out.size() < max_count;
    }
    // Frontier: neighbours of S not in S and not excluded.
    std::vector<std::uint32_t> frontier;
    for (std::uint32_t v : s) {
      for (std::uint32_t w : g.neighbors(v)) {
        if (!in_s[w] && !excluded[w] &&
            std::find(frontier.begin(), frontier.end(), w) == frontier.end())
          frontier.push_back(w);
      }
    }
    std::vector<char> local_excluded = excluded;
    for (std::uint32_t w : frontier) {
      s.push_back(w);
      in_s[w] = 1;
      const bool keep_going = extend(s, local_excluded);
      in_s[w] = 0;
      s.pop_back();
      if (!keep_going) return false;
      local_excluded[w] = 1;
    }
    return true;
  }
};

}  // namespace

std::vector<std::vector<std::uint32_t>> enumerate_connected_subgraphs(
    const Graph& g, std::size_t k, std::size_t max_count) {
  RADSURF_CHECK_ARG(k >= 1, "subgraph size must be >= 1");
  std::vector<std::vector<std::uint32_t>> out;
  if (k > g.num_nodes()) return out;
  Enumerator e{g, k, max_count, out, std::vector<char>(g.num_nodes(), 0)};
  for (std::uint32_t v = 0; v < g.num_nodes(); ++v) {
    std::vector<std::uint32_t> s{v};
    e.in_s[v] = 1;
    // Exclude all vertices <= v so v is the minimum of every set found.
    std::vector<char> excluded(g.num_nodes(), 0);
    for (std::uint32_t u = 0; u <= v; ++u) excluded[u] = 1;
    const bool keep_going = e.extend(s, excluded);
    e.in_s[v] = 0;
    if (!keep_going) break;
  }
  return out;
}

std::vector<std::vector<std::uint32_t>> sample_connected_subgraphs(
    const Graph& g, std::size_t k, std::size_t count, Rng& rng) {
  RADSURF_CHECK_ARG(k >= 1, "subgraph size must be >= 1");
  std::vector<std::vector<std::uint32_t>> out;
  if (k > g.num_nodes() || count == 0) return out;

  std::set<std::vector<std::uint32_t>> seen;
  const std::size_t max_attempts = count * 64 + 256;
  std::vector<char> in_s(g.num_nodes(), 0);
  for (std::size_t attempt = 0;
       attempt < max_attempts && out.size() < count; ++attempt) {
    std::vector<std::uint32_t> s;
    std::vector<std::uint32_t> frontier;
    const auto start =
        static_cast<std::uint32_t>(rng.below(g.num_nodes()));
    s.push_back(start);
    in_s[start] = 1;
    for (std::uint32_t w : g.neighbors(start)) frontier.push_back(w);
    while (s.size() < k && !frontier.empty()) {
      const std::size_t pick = rng.below(frontier.size());
      const std::uint32_t v = frontier[pick];
      frontier.erase(frontier.begin() + static_cast<std::ptrdiff_t>(pick));
      if (in_s[v]) continue;
      s.push_back(v);
      in_s[v] = 1;
      for (std::uint32_t w : g.neighbors(v))
        if (!in_s[w]) frontier.push_back(w);
    }
    for (std::uint32_t v : s) in_s[v] = 0;
    if (s.size() != k) continue;
    std::sort(s.begin(), s.end());
    if (seen.insert(s).second) out.push_back(std::move(s));
  }
  return out;
}

}  // namespace radsurf
