// Connected-subgraph enumeration and sampling.
//
// The paper's Figs 6–7 inject the same reset event into every qubit of a
// connected subgraph ("hypernode") of the architecture lattice and report
// medians grouped by subgraph size.  Exact enumeration is exponential in
// k, so both a capped exact enumerator and a deduplicated random-growth
// sampler are provided.
#pragma once

#include <cstdint>
#include <vector>

#include "arch/graph.hpp"
#include "util/rng.hpp"

namespace radsurf {

/// All connected induced vertex sets of size k, each exactly once
/// (sorted ascending), stopping after `max_count` results.
std::vector<std::vector<std::uint32_t>> enumerate_connected_subgraphs(
    const Graph& g, std::size_t k, std::size_t max_count = 1'000'000);

/// Up to `count` distinct connected vertex sets of size k obtained by
/// random growth (uniform frontier extension).  Returns fewer when the
/// graph has fewer such sets or the attempt budget is exhausted.
std::vector<std::vector<std::uint32_t>> sample_connected_subgraphs(
    const Graph& g, std::size_t k, std::size_t count, Rng& rng);

}  // namespace radsurf
