#include "arch/topologies.hpp"

#include <numeric>

#include "util/error.hpp"

namespace radsurf {

Graph make_linear(std::size_t n) {
  RADSURF_CHECK_ARG(n >= 1, "linear topology needs >= 1 node");
  Graph g(n);
  for (std::uint32_t i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1);
  return g;
}

Graph make_mesh(std::size_t rows, std::size_t cols) {
  RADSURF_CHECK_ARG(rows >= 1 && cols >= 1, "mesh needs positive dimensions");
  Graph g(rows * cols);
  auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<std::uint32_t>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) g.add_edge(id(r, c), id(r + 1, c));
    }
  }
  return g;
}

Graph make_complete(std::size_t n) {
  RADSURF_CHECK_ARG(n >= 1, "complete topology needs >= 1 node");
  Graph g(n);
  for (std::uint32_t i = 0; i < n; ++i)
    for (std::uint32_t j = i + 1; j < n; ++j) g.add_edge(i, j);
  return g;
}

Graph make_heavy_hex(const std::vector<std::size_t>& row_lengths) {
  RADSURF_CHECK_ARG(!row_lengths.empty(), "heavy-hex needs at least one row");
  // Count nodes: qubit rows plus bridge rows between them.  Bridge columns
  // sit at every 4th column with the offset alternating 0/2 per gap (IBM
  // cell pattern); a bridge column beyond a shorter row clamps to that
  // row's last qubit.
  // First pass: row offsets and per-gap bridge offsets.  A gap's bridges
  // are numbered directly after the row above them.
  std::vector<std::uint32_t> row_start;
  std::vector<std::uint32_t> gap_start;
  std::size_t total = 0;
  for (std::size_t r = 0; r < row_lengths.size(); ++r) {
    RADSURF_CHECK_ARG(row_lengths[r] >= 1, "empty heavy-hex row");
    row_start.push_back(static_cast<std::uint32_t>(total));
    total += row_lengths[r];
    if (r + 1 < row_lengths.size()) {
      gap_start.push_back(static_cast<std::uint32_t>(total));
      const std::size_t offset = (r % 2 == 0) ? 0 : 2;
      const std::size_t span = std::max(row_lengths[r], row_lengths[r + 1]);
      for (std::size_t c = offset; c < span; c += 4) total += 1;
    }
  }
  Graph g(total);
  // Horizontal chains.
  for (std::size_t r = 0; r < row_lengths.size(); ++r) {
    for (std::size_t c = 0; c + 1 < row_lengths[r]; ++c)
      g.add_edge(row_start[r] + static_cast<std::uint32_t>(c),
                 row_start[r] + static_cast<std::uint32_t>(c + 1));
  }
  // Bridges.
  for (std::size_t r = 0; r + 1 < row_lengths.size(); ++r) {
    const std::size_t offset = (r % 2 == 0) ? 0 : 2;
    const std::size_t span = std::max(row_lengths[r], row_lengths[r + 1]);
    std::uint32_t bridge = gap_start[r];
    for (std::size_t c = offset; c < span; c += 4, ++bridge) {
      const auto top = static_cast<std::uint32_t>(
          std::min(c, row_lengths[r] - 1));
      const auto bot = static_cast<std::uint32_t>(
          std::min(c, row_lengths[r + 1] - 1));
      g.add_edge(row_start[r] + top, bridge);
      g.add_edge(bridge, row_start[r + 1] + bot);
    }
  }
  return g;
}

Graph make_almaden() {
  // 20-qubit grid: four rows of five, bridged at alternating columns.
  Graph g(20);
  const std::uint32_t rows[4] = {0, 5, 10, 15};
  for (std::uint32_t r : rows)
    for (std::uint32_t c = 0; c < 4; ++c) g.add_edge(r + c, r + c + 1);
  // Verticals (Boeblingen/Almaden pattern).
  const std::pair<std::uint32_t, std::uint32_t> verts[] = {
      {1, 6}, {3, 8}, {5, 10}, {7, 12}, {9, 14}, {11, 16}, {13, 18}};
  for (auto [a, b] : verts) g.add_edge(a, b);
  return g;
}

Graph make_johannesburg() {
  // 20-qubit grid: four rows of five, bridged at the outer columns plus
  // the row-dependent inner columns (Johannesburg pattern).
  Graph g(20);
  const std::uint32_t rows[4] = {0, 5, 10, 15};
  for (std::uint32_t r : rows)
    for (std::uint32_t c = 0; c < 4; ++c) g.add_edge(r + c, r + c + 1);
  const std::pair<std::uint32_t, std::uint32_t> verts[] = {
      {0, 5}, {4, 9}, {5, 10}, {7, 12}, {9, 14}, {10, 15}, {14, 19}};
  for (auto [a, b] : verts) g.add_edge(a, b);
  return g;
}

Graph make_cairo() {
  // Standard IBM 27-qubit Falcon heavy-hex coupling map.
  Graph g(27);
  const std::pair<std::uint32_t, std::uint32_t> edges[] = {
      {0, 1},   {1, 2},   {1, 4},   {2, 3},   {3, 5},   {4, 7},   {5, 8},
      {6, 7},   {7, 10},  {8, 9},   {8, 11},  {10, 12}, {11, 14}, {12, 13},
      {12, 15}, {13, 14}, {14, 16}, {15, 18}, {16, 19}, {17, 18}, {18, 21},
      {19, 20}, {19, 22}, {21, 23}, {22, 25}, {23, 24}, {24, 25}, {25, 26}};
  for (auto [a, b] : edges) g.add_edge(a, b);
  return g;
}

Graph make_cambridge() {
  // 28-qubit instance of the heavy-hex cell family (shape-faithful
  // reconstruction of the IBM Cambridge device: hexagonal cell rows).
  // Rows {8,8,8}: 24 row qubits + 2 bridges per gap -> 28 nodes.
  Graph g = make_heavy_hex({8, 8, 8});
  RADSURF_ASSERT_MSG(g.num_nodes() == 28, "cambridge generator produced "
                                              << g.num_nodes() << " nodes");
  return g;
}

Graph make_brooklyn() {
  // 65-qubit Hummingbird heavy-hex: qubit rows of 10/11/11/11/10 with
  // 3-bridge rows between them (IBM cell pattern).
  Graph g = make_heavy_hex({10, 11, 11, 11, 10});
  RADSURF_ASSERT_MSG(g.num_nodes() == 65, "brooklyn generator produced "
                                              << g.num_nodes() << " nodes");
  return g;
}

Graph make_topology(const std::string& name) {
  auto starts_with = [&](const char* p) {
    return name.rfind(p, 0) == 0;
  };
  if (name == "almaden") return make_almaden();
  if (name == "johannesburg") return make_johannesburg();
  if (name == "cairo") return make_cairo();
  if (name == "cambridge") return make_cambridge();
  if (name == "brooklyn") return make_brooklyn();
  if (starts_with("linear:"))
    return make_linear(std::stoul(name.substr(7)));
  if (starts_with("complete:"))
    return make_complete(std::stoul(name.substr(9)));
  if (starts_with("mesh:")) {
    const std::string dims = name.substr(5);
    const auto x = dims.find('x');
    RADSURF_CHECK_ARG(x != std::string::npos,
                      "mesh spec must be mesh:<rows>x<cols>, got " << name);
    return make_mesh(std::stoul(dims.substr(0, x)),
                     std::stoul(dims.substr(x + 1)));
  }
  throw InvalidArgument("unknown topology: " + name);
}

std::vector<std::string> named_topologies() {
  return {"almaden", "johannesburg", "cairo", "cambridge", "brooklyn"};
}

}  // namespace radsurf
