// Detector error model (DEM) extraction.
//
// Every component of every Pauli noise channel in an instrumented circuit
// is propagated (by symplectic conjugation) through the remainder of the
// circuit to find which detectors and observables it flips.  Components
// whose detector signature exceeds two are CSS-decomposed into their X and
// Z parts (each propagated independently — conjugation is linear over the
// symplectic representation, so the full signature is the XOR of the
// parts').  The result is the error hypergraph the matching decoder is
// built from; RESET_ERROR channels are deliberately excluded, because the
// decoder only knows the intrinsic noise model (the radiation fault is the
// out-of-model adversary, exactly as in the paper).
#pragma once

#include <cstdint>
#include <vector>

#include "circuit/circuit.hpp"
#include "detector/detectors.hpp"
#include "stab/pauli.hpp"

namespace radsurf {

struct ErrorMechanism {
  double probability = 0.0;
  std::vector<std::uint32_t> detectors;  // sorted, deduplicated
  std::uint64_t observables = 0;         // bit o = flips observable o

  bool operator==(const ErrorMechanism& o) const = default;
};

struct DemOptions {
  /// Include RESET_ERROR channels, approximated as X and Z errors of half
  /// the reset probability each (a reset of a qubit in an unknown state
  /// flips its Z-basis value with probability 1/2 and fully randomises its
  /// phase).  Off by default: the paper's decoder knows only the intrinsic
  /// noise.  Turning it on yields the "radiation-aware" decoder of the
  /// ablation bench — a decoder co-designed with a strike detector.
  bool include_reset_approximation = false;
};

struct DetectorErrorModel {
  std::size_t num_detectors = 0;
  std::size_t num_observables = 0;
  std::vector<ErrorMechanism> mechanisms;

  /// Mechanisms that flip no detector but flip an observable: invisible
  /// to any decoder, a floor on the achievable logical error rate.
  std::size_t num_undetectable = 0;
  /// Mechanisms dropped because even the X/Z split left > 2 detectors.
  std::size_t num_unmatched = 0;

  static DetectorErrorModel from_circuit(const Circuit& circuit,
                                         const DemOptions& options = {});
};

/// Propagate a Pauli error inserted *after* instruction `position` to the
/// end of the circuit; returns the flipped record indices (ascending).
std::vector<std::size_t> propagate_error(const Circuit& circuit,
                                         std::size_t position,
                                         const PauliString& error);

}  // namespace radsurf
