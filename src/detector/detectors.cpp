#include "detector/detectors.hpp"

#include <bit>

#include "util/error.hpp"

namespace radsurf {

DetectorSet DetectorSet::compile(const Circuit& circuit) {
  DetectorSet ds;
  ds.num_records_ = circuit.num_measurements();
  ds.record_to_detectors_.assign(ds.num_records_, {});
  ds.record_to_observables_.assign(ds.num_records_, 0);
  ds.observable_masks_.assign(circuit.num_observables(),
                              BitVec(ds.num_records_));

  const auto& instrs = circuit.instructions();
  for (std::size_t i = 0; i < instrs.size(); ++i) {
    const Instruction& ins = instrs[i];
    if (ins.gate == Gate::DETECTOR) {
      const auto d = static_cast<std::uint32_t>(ds.detector_masks_.size());
      BitVec mask(ds.num_records_);
      for (std::size_t r : circuit.annotation_records(i)) {
        mask.flip(r);
        ds.record_to_detectors_[r].push_back(d);
      }
      ds.detector_masks_.push_back(std::move(mask));
    } else if (ins.gate == Gate::OBSERVABLE_INCLUDE) {
      const auto o = static_cast<std::size_t>(ins.args[0]);
      for (std::size_t r : circuit.annotation_records(i)) {
        ds.observable_masks_[o].flip(r);
        ds.record_to_observables_[r] ^= std::uint64_t{1} << o;
      }
    }
  }
  RADSURF_CHECK_ARG(ds.num_observables() <= 64,
                    "at most 64 observables supported");
  ds.record_detector_masks_.assign(ds.num_records_,
                                   BitVec(ds.num_detectors()));
  for (std::size_t r = 0; r < ds.num_records_; ++r)
    for (std::uint32_t d : ds.record_to_detectors_[r])
      ds.record_detector_masks_[r].flip(d);
  return ds;
}

std::vector<std::uint32_t> DetectorSet::detector_rounds(
    const Circuit& circuit) {
  std::vector<std::uint32_t> rounds;
  rounds.reserve(circuit.num_detectors());
  std::uint32_t ticks = 0;
  for (const Instruction& ins : circuit.instructions()) {
    if (ins.gate == Gate::TICK)
      ++ticks;
    else if (ins.gate == Gate::DETECTOR)
      rounds.push_back(ticks);
  }
  return rounds;
}

BitVec DetectorSet::detector_values(const BitVec& record,
                                    const BitVec& reference) const {
  RADSURF_ASSERT(record.size() == num_records_);
  RADSURF_ASSERT(reference.size() == num_records_);
  BitVec out(num_detectors());
  for (std::size_t d = 0; d < detector_masks_.size(); ++d) {
    const bool v = detector_masks_[d].and_parity(record) ^
                   detector_masks_[d].and_parity(reference);
    out.set(d, v);
  }
  return out;
}

namespace {

// Per-thread diff scratch of the record-major scans below: exact-replay
// shot loops call them back to back on the hot path, and the campaign
// engine decodes from many OpenMP workers at once.
thread_local BitVec t_record_diff;

}  // namespace

std::uint64_t DetectorSet::observable_values(const BitVec& record,
                                             const BitVec& reference) const {
  // Record-major word scan: XOR the observable membership of every
  // *flipped* record (sparse at campaign noise levels) instead of probing
  // each observable mask.
  BitVec& diff = t_record_diff;
  diff.assign_xor(record, reference);
  std::uint64_t out = 0;
  for_each_set_bit(diff.words(), diff.num_words(), [&](std::size_t r) {
    out ^= record_to_observables_[r];
  });
  return out;
}

std::vector<std::uint32_t> DetectorSet::defects(const BitVec& record,
                                                const BitVec& reference) const {
  std::vector<std::uint32_t> out;
  defects_into(record, reference, out);
  return out;
}

void DetectorSet::defects_into(const BitVec& record, const BitVec& reference,
                               std::vector<std::uint32_t>& out) const {
  defects_and_observables_into(record, reference, out, nullptr);
}

void DetectorSet::defects_and_observables_into(
    const BitVec& record, const BitVec& reference,
    std::vector<std::uint32_t>& out, std::uint64_t* observables) const {
  // Word-scan replacement of the per-detector parity probes: accumulate
  // the detector membership (and observable mask) of each flipped record,
  // then first_set-walk the nonzero words of the result.  Cost is
  // O(flipped records × detector words), not O(detectors × record words).
  out.clear();
  std::uint64_t obs = 0;
  thread_local BitVec values;
  BitVec& diff = t_record_diff;
  diff.assign_xor(record, reference);
  values.reset(num_detectors());
  for_each_set_bit(diff.words(), diff.num_words(), [&](std::size_t r) {
    values ^= record_detector_masks_[r];
    obs ^= record_to_observables_[r];
  });
  values.append_set_bits(out);
  if (observables != nullptr) *observables = obs;
}

std::vector<BitVec> DetectorSet::detector_flips(
    const MeasurementFlips& flips) const {
  std::vector<BitVec> out;
  detector_flips_into(flips, out);
  return out;
}

std::vector<BitVec> DetectorSet::observable_flips(
    const MeasurementFlips& flips) const {
  std::vector<BitVec> out;
  observable_flips_into(flips, out);
  return out;
}

void DetectorSet::detector_flips_into(const MeasurementFlips& flips,
                                      std::vector<BitVec>& out) const {
  RADSURF_ASSERT(flips.size() == num_records_);
  const std::size_t batch = flips.empty() ? 0 : flips[0].size();
  out.resize(num_detectors());
  for (BitVec& row : out) row.reset(batch);
  for (std::size_t r = 0; r < num_records_; ++r) {
    for (std::uint32_t d : record_to_detectors_[r]) out[d] ^= flips[r];
  }
}

void DetectorSet::observable_flips_into(const MeasurementFlips& flips,
                                        std::vector<BitVec>& out) const {
  RADSURF_ASSERT(flips.size() == num_records_);
  const std::size_t batch = flips.empty() ? 0 : flips[0].size();
  out.resize(num_observables());
  for (BitVec& row : out) row.reset(batch);
  for (std::size_t r = 0; r < num_records_; ++r) {
    const std::uint64_t obs = record_to_observables_[r];
    for (std::size_t o = 0; o < num_observables(); ++o)
      if (obs & (std::uint64_t{1} << o)) out[o] ^= flips[r];
  }
}

void DetectorSet::transposed_flips(const MeasurementFlips& flips,
                                   SyndromeScratch& scratch,
                                   BitTable& syndromes,
                                   BitTable& observables) const {
  detector_flips_into(flips, scratch.det_rows);
  observable_flips_into(flips, scratch.obs_rows);
  const std::size_t batch = flips.empty() ? 0 : flips[0].size();
  transpose_bits(scratch.det_rows, syndromes);
  transpose_bits(scratch.obs_rows, observables);
  // An experiment with no detectors (or observables) still has one
  // (all-zero) syndrome row per shot, so batch loops can index rows
  // unconditionally.
  if (num_detectors() == 0) syndromes.reshape(batch, 0);
  if (num_observables() == 0) observables.reshape(batch, 0);
}

}  // namespace radsurf
