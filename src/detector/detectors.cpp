#include "detector/detectors.hpp"

#include "util/error.hpp"

namespace radsurf {

DetectorSet DetectorSet::compile(const Circuit& circuit) {
  DetectorSet ds;
  ds.num_records_ = circuit.num_measurements();
  ds.record_to_detectors_.assign(ds.num_records_, {});
  ds.record_to_observables_.assign(ds.num_records_, 0);
  ds.observable_masks_.assign(circuit.num_observables(),
                              BitVec(ds.num_records_));

  const auto& instrs = circuit.instructions();
  for (std::size_t i = 0; i < instrs.size(); ++i) {
    const Instruction& ins = instrs[i];
    if (ins.gate == Gate::DETECTOR) {
      const auto d = static_cast<std::uint32_t>(ds.detector_masks_.size());
      BitVec mask(ds.num_records_);
      for (std::size_t r : circuit.annotation_records(i)) {
        mask.flip(r);
        ds.record_to_detectors_[r].push_back(d);
      }
      ds.detector_masks_.push_back(std::move(mask));
    } else if (ins.gate == Gate::OBSERVABLE_INCLUDE) {
      const auto o = static_cast<std::size_t>(ins.args[0]);
      for (std::size_t r : circuit.annotation_records(i)) {
        ds.observable_masks_[o].flip(r);
        ds.record_to_observables_[r] ^= std::uint64_t{1} << o;
      }
    }
  }
  RADSURF_CHECK_ARG(ds.num_observables() <= 64,
                    "at most 64 observables supported");
  return ds;
}

std::vector<std::uint32_t> DetectorSet::detector_rounds(
    const Circuit& circuit) {
  std::vector<std::uint32_t> rounds;
  rounds.reserve(circuit.num_detectors());
  std::uint32_t ticks = 0;
  for (const Instruction& ins : circuit.instructions()) {
    if (ins.gate == Gate::TICK)
      ++ticks;
    else if (ins.gate == Gate::DETECTOR)
      rounds.push_back(ticks);
  }
  return rounds;
}

BitVec DetectorSet::detector_values(const BitVec& record,
                                    const BitVec& reference) const {
  RADSURF_ASSERT(record.size() == num_records_);
  RADSURF_ASSERT(reference.size() == num_records_);
  BitVec out(num_detectors());
  for (std::size_t d = 0; d < detector_masks_.size(); ++d) {
    const bool v = detector_masks_[d].and_parity(record) ^
                   detector_masks_[d].and_parity(reference);
    out.set(d, v);
  }
  return out;
}

std::uint64_t DetectorSet::observable_values(const BitVec& record,
                                             const BitVec& reference) const {
  std::uint64_t out = 0;
  for (std::size_t o = 0; o < observable_masks_.size(); ++o) {
    const bool v = observable_masks_[o].and_parity(record) ^
                   observable_masks_[o].and_parity(reference);
    if (v) out |= std::uint64_t{1} << o;
  }
  return out;
}

std::vector<std::uint32_t> DetectorSet::defects(const BitVec& record,
                                                const BitVec& reference) const {
  std::vector<std::uint32_t> out;
  defects_into(record, reference, out);
  return out;
}

void DetectorSet::defects_into(const BitVec& record, const BitVec& reference,
                               std::vector<std::uint32_t>& out) const {
  out.clear();
  for (std::size_t d = 0; d < detector_masks_.size(); ++d) {
    const bool v = detector_masks_[d].and_parity(record) ^
                   detector_masks_[d].and_parity(reference);
    if (v) out.push_back(static_cast<std::uint32_t>(d));
  }
}

std::vector<BitVec> DetectorSet::detector_flips(
    const MeasurementFlips& flips) const {
  RADSURF_ASSERT(flips.size() == num_records_);
  const std::size_t batch = flips.empty() ? 0 : flips[0].size();
  std::vector<BitVec> out(num_detectors(), BitVec(batch));
  for (std::size_t r = 0; r < num_records_; ++r) {
    for (std::uint32_t d : record_to_detectors_[r]) out[d] ^= flips[r];
  }
  return out;
}

std::vector<BitVec> DetectorSet::observable_flips(
    const MeasurementFlips& flips) const {
  RADSURF_ASSERT(flips.size() == num_records_);
  const std::size_t batch = flips.empty() ? 0 : flips[0].size();
  std::vector<BitVec> out(num_observables(), BitVec(batch));
  for (std::size_t r = 0; r < num_records_; ++r) {
    const std::uint64_t obs = record_to_observables_[r];
    for (std::size_t o = 0; o < num_observables(); ++o)
      if (obs & (std::uint64_t{1} << o)) out[o] ^= flips[r];
  }
  return out;
}

}  // namespace radsurf
