#include "detector/matching_graph.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/error.hpp"

namespace radsurf {

namespace {
double edge_weight(double p) {
  // Clamp into (0, 0.5) to keep weights finite and non-negative.
  const double pc = std::clamp(p, 1e-15, 0.5 - 1e-12);
  return std::log((1.0 - pc) / pc);
}
}  // namespace

MatchingGraph MatchingGraph::from_dem(const DetectorErrorModel& dem) {
  MatchingGraph g;
  g.num_detectors_ = dem.num_detectors;

  // Merge mechanisms by endpoint pair.
  struct Acc {
    double probability = 0.0;
    std::uint64_t observables = 0;
    bool initialised = false;
  };
  std::map<std::pair<std::uint32_t, std::uint32_t>, Acc> acc;

  for (const ErrorMechanism& m : dem.mechanisms) {
    if (m.detectors.empty()) continue;  // undetectable: not matchable
    RADSURF_ASSERT_MSG(m.detectors.size() <= 2,
                       "DEM mechanism with " << m.detectors.size()
                                             << " detectors reached the "
                                                "matching graph");
    const std::uint32_t a = m.detectors[0];
    const std::uint32_t b = m.detectors.size() == 2 ? m.detectors[1]
                                                    : g.boundary_node();
    auto& slot = acc[{std::min(a, b), std::max(a, b)}];
    if (!slot.initialised) {
      slot.probability = m.probability;
      slot.observables = m.observables;
      slot.initialised = true;
    } else if (slot.observables == m.observables) {
      slot.probability = slot.probability * (1 - m.probability) +
                         m.probability * (1 - slot.probability);
    } else {
      // Conflicting observable signature between the same detectors: keep
      // the likelier hypothesis.
      ++g.conflicts_;
      if (m.probability > slot.probability) {
        slot.probability = m.probability;
        slot.observables = m.observables;
      }
    }
  }

  g.adjacency_.assign(g.num_nodes(), {});
  for (const auto& [key, slot] : acc) {
    MatchingEdge e;
    e.a = key.first;
    e.b = key.second;
    e.probability = slot.probability;
    e.observables = slot.observables;
    e.weight = edge_weight(slot.probability);
    const auto id = static_cast<std::uint32_t>(g.edges_.size());
    g.edges_.push_back(e);
    g.adjacency_[e.a].push_back(id);
    if (e.b != e.a) g.adjacency_[e.b].push_back(id);
  }
  return g;
}

}  // namespace radsurf
