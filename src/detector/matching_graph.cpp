#include "detector/matching_graph.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/error.hpp"

namespace radsurf {

namespace {
double edge_weight(double p) {
  // Clamp into (0, 0.5) to keep weights finite and non-negative.
  const double pc = std::clamp(p, 1e-15, 0.5 - 1e-12);
  return std::log((1.0 - pc) / pc);
}

// Shared parallel-edge merge policy (from_dem and from_edges): identical
// observable signatures combine as independent sources; conflicting ones
// keep the likelier hypothesis and count the conflict.
void merge_parallel(double& probability, std::uint64_t& observables,
                    double p, std::uint64_t obs, std::size_t& conflicts) {
  if (observables == obs) {
    probability = probability * (1 - p) + p * (1 - probability);
  } else {
    ++conflicts;
    if (p > probability) {
      probability = p;
      observables = obs;
    }
  }
}
}  // namespace

MatchingGraph MatchingGraph::from_dem(const DetectorErrorModel& dem) {
  MatchingGraph g;
  g.num_detectors_ = dem.num_detectors;

  // Merge mechanisms by endpoint pair.
  struct Acc {
    double probability = 0.0;
    std::uint64_t observables = 0;
    bool initialised = false;
  };
  std::map<std::pair<std::uint32_t, std::uint32_t>, Acc> acc;

  for (const ErrorMechanism& m : dem.mechanisms) {
    if (m.detectors.empty()) continue;  // undetectable: not matchable
    RADSURF_ASSERT_MSG(m.detectors.size() <= 2,
                       "DEM mechanism with " << m.detectors.size()
                                             << " detectors reached the "
                                                "matching graph");
    const std::uint32_t a = m.detectors[0];
    const std::uint32_t b = m.detectors.size() == 2 ? m.detectors[1]
                                                    : g.boundary_node();
    auto& slot = acc[{std::min(a, b), std::max(a, b)}];
    if (!slot.initialised) {
      slot.probability = m.probability;
      slot.observables = m.observables;
      slot.initialised = true;
    } else {
      merge_parallel(slot.probability, slot.observables, m.probability,
                     m.observables, g.conflicts_);
    }
  }

  g.adjacency_.assign(g.num_nodes(), {});
  for (const auto& [key, slot] : acc) {
    MatchingEdge e;
    e.a = key.first;
    e.b = key.second;
    e.probability = slot.probability;
    e.observables = slot.observables;
    e.weight = edge_weight(slot.probability);
    const auto id = static_cast<std::uint32_t>(g.edges_.size());
    g.edges_.push_back(e);
    g.adjacency_[e.a].push_back(id);
    if (e.b != e.a) g.adjacency_[e.b].push_back(id);
  }
  return g;
}

MatchingGraph MatchingGraph::from_edges(
    std::size_t num_detectors, const std::vector<MatchingEdge>& edges) {
  MatchingGraph g;
  g.num_detectors_ = num_detectors;

  // Merge parallel edges in first-occurrence order, so building from a
  // graph's own edge list reproduces it verbatim (edges are already unique
  // by endpoint pair then).
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::size_t> slot_of;
  for (const MatchingEdge& in : edges) {
    const std::uint32_t a = std::min(in.a, in.b);
    const std::uint32_t b = std::max(in.a, in.b);
    RADSURF_CHECK_ARG(b <= g.boundary_node(),
                      "edge endpoint " << b << " outside graph of "
                                       << num_detectors << " detectors");
    const auto [it, inserted] = slot_of.try_emplace({a, b}, g.edges_.size());
    if (inserted) {
      MatchingEdge e = in;
      e.a = a;
      e.b = b;
      e.weight = edge_weight(e.probability);
      g.edges_.push_back(e);
      continue;
    }
    MatchingEdge& e = g.edges_[it->second];
    merge_parallel(e.probability, e.observables, in.probability,
                   in.observables, g.conflicts_);
    e.weight = edge_weight(e.probability);
  }

  g.adjacency_.assign(g.num_nodes(), {});
  for (std::size_t id = 0; id < g.edges_.size(); ++id) {
    const MatchingEdge& e = g.edges_[id];
    g.adjacency_[e.a].push_back(static_cast<std::uint32_t>(id));
    if (e.b != e.a)
      g.adjacency_[e.b].push_back(static_cast<std::uint32_t>(id));
  }
  return g;
}

std::uint32_t MatchingGraphView::to_local(std::uint32_t global) const {
  const auto it =
      std::lower_bound(global_ids.begin(), global_ids.end(), global);
  RADSURF_CHECK_ARG(it != global_ids.end() && *it == global,
                    "detector " << global << " not in window");
  return static_cast<std::uint32_t>(it - global_ids.begin());
}

MatchingGraphView time_window(const MatchingGraph& full,
                              const std::vector<std::uint32_t>& detectors) {
  MatchingGraphView view;
  view.global_ids = detectors;
  RADSURF_CHECK_ARG(
      std::is_sorted(detectors.begin(), detectors.end()) &&
          std::adjacent_find(detectors.begin(), detectors.end()) ==
              detectors.end(),
      "window detector set must be sorted and unique");

  const std::uint32_t global_boundary = full.boundary_node();
  const auto local_boundary =
      static_cast<std::uint32_t>(detectors.size());  // view boundary node
  const auto in_window = [&](std::uint32_t node) {
    return node != global_boundary &&
           std::binary_search(detectors.begin(), detectors.end(), node);
  };

  std::vector<MatchingEdge> local_edges;
  for (const MatchingEdge& e : full.edges()) {
    const bool a_in = in_window(e.a);
    const bool b_in = in_window(e.b);
    if (!a_in && !b_in) continue;
    // Drop edges crossing a temporal cut (far endpoint is an out-of-window
    // detector); keep edges to the real boundary.
    if (!a_in && e.a != global_boundary) continue;
    if (!b_in && e.b != global_boundary) continue;
    MatchingEdge out = e;
    out.a = a_in ? view.to_local(e.a) : local_boundary;
    out.b = b_in ? view.to_local(e.b) : local_boundary;
    local_edges.push_back(out);
  }
  view.graph = MatchingGraph::from_edges(detectors.size(), local_edges);
  return view;
}

}  // namespace radsurf
