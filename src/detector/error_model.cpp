#include "detector/error_model.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "util/error.hpp"

namespace radsurf {

std::vector<std::size_t> propagate_error(const Circuit& circuit,
                                         std::size_t position,
                                         const PauliString& error) {
  RADSURF_ASSERT(position < circuit.size());
  PauliString p = error;
  std::vector<std::size_t> flipped;

  const auto& instrs = circuit.instructions();
  // Record index produced so far, counting instructions up to `position`.
  std::size_t rec = 0;
  for (std::size_t i = 0; i <= position; ++i) {
    if (gate_info(instrs[i].gate).is_measurement)
      rec += instrs[i].targets.size();
  }

  for (std::size_t i = position + 1; i < instrs.size(); ++i) {
    const Instruction& ins = instrs[i];
    const GateInfo& info = gate_info(ins.gate);
    if (info.is_annotation || info.is_noise) continue;

    if (info.is_unitary) {
      p.apply_gate(ins.gate, ins.targets);
      continue;
    }
    switch (ins.gate) {
      case Gate::M:
        for (auto q : ins.targets) {
          if (p.x(q)) flipped.push_back(rec);
          ++rec;
        }
        break;
      case Gate::R:
        for (auto q : ins.targets) p.set_pauli(q, 0);
        break;
      case Gate::MR:
        for (auto q : ins.targets) {
          if (p.x(q)) flipped.push_back(rec);
          ++rec;
          p.set_pauli(q, 0);
        }
        break;
      default:
        RADSURF_ASSERT_MSG(false, "unhandled non-unitary in propagation");
    }
  }
  return flipped;
}

namespace {

struct Signature {
  std::vector<std::uint32_t> detectors;
  std::uint64_t observables = 0;
  bool empty() const { return detectors.empty() && observables == 0; }
};

Signature signature_of(const Circuit& circuit, const DetectorSet& ds,
                       std::size_t position, const PauliString& error) {
  Signature sig;
  for (std::size_t r : propagate_error(circuit, position, error)) {
    for (std::uint32_t d : ds.detectors_of_record(r)) {
      // XOR semantics: toggle membership.
      auto it = std::find(sig.detectors.begin(), sig.detectors.end(), d);
      if (it == sig.detectors.end())
        sig.detectors.push_back(d);
      else
        sig.detectors.erase(it);
    }
    sig.observables ^= ds.observables_of_record(r);
  }
  std::sort(sig.detectors.begin(), sig.detectors.end());
  return sig;
}

PauliString make_single(std::size_t n, std::uint32_t q, int pauli) {
  PauliString p(n);
  p.set_pauli(q, pauli);
  return p;
}

}  // namespace

DetectorErrorModel DetectorErrorModel::from_circuit(const Circuit& circuit,
                                                    const DemOptions& options) {
  const DetectorSet ds = DetectorSet::compile(circuit);
  DetectorErrorModel dem;
  dem.num_detectors = ds.num_detectors();
  dem.num_observables = ds.num_observables();

  const std::size_t n = circuit.num_qubits();
  // Accumulate mechanisms keyed by (detectors, observables); independent
  // occurrences combine as p = p1(1-p2) + p2(1-p1).
  std::map<std::pair<std::vector<std::uint32_t>, std::uint64_t>, double> acc;
  // Signatures with > 2 detectors even after the X/Z split; they are
  // greedily decomposed into already-known edges in a second pass.
  std::vector<Signature> deferred;
  std::vector<double> deferred_prob;

  auto combine = [](double a, double b) { return a * (1 - b) + b * (1 - a); };

  auto add_mechanism = [&](const Signature& sig, double prob) {
    if (prob <= 0.0) return;
    if (sig.empty()) return;  // invisible and harmless
    if (sig.detectors.empty() && sig.observables != 0) {
      ++dem.num_undetectable;
      return;
    }
    auto key = std::make_pair(sig.detectors, sig.observables);
    auto [it, inserted] = acc.emplace(std::move(key), prob);
    if (!inserted) it->second = combine(it->second, prob);
  };

  // Add a propagated component, CSS-splitting when over-weight.
  auto add_component = [&](std::size_t pos, const PauliString& err,
                           double prob) {
    const Signature full = signature_of(circuit, ds, pos, err);
    if (full.detectors.size() <= 2) {
      add_mechanism(full, prob);
      return;
    }
    // Split into X part and Z part (linearity of conjugation).
    PauliString xpart(err.num_qubits());
    PauliString zpart(err.num_qubits());
    xpart.xs() = err.xs();
    zpart.zs() = err.zs();
    const Signature sx = signature_of(circuit, ds, pos, xpart);
    const Signature sz = signature_of(circuit, ds, pos, zpart);
    for (const Signature* part : {&sx, &sz}) {
      if (part->detectors.size() <= 2) {
        add_mechanism(*part, prob);
      } else {
        deferred.push_back(*part);
        deferred_prob.push_back(prob);
      }
    }
  };

  const auto& instrs = circuit.instructions();
  for (std::size_t i = 0; i < instrs.size(); ++i) {
    const Instruction& ins = instrs[i];
    if (!gate_info(ins.gate).is_noise) continue;
    const double p = ins.args[0];
    switch (ins.gate) {
      case Gate::X_ERROR:
        for (auto q : ins.targets) add_component(i, make_single(n, q, 1), p);
        break;
      case Gate::Z_ERROR:
        for (auto q : ins.targets) add_component(i, make_single(n, q, 2), p);
        break;
      case Gate::Y_ERROR:
        for (auto q : ins.targets) add_component(i, make_single(n, q, 3), p);
        break;
      case Gate::DEPOLARIZE1:
        for (auto q : ins.targets)
          for (int pl = 1; pl <= 3; ++pl)
            add_component(i, make_single(n, q, pl), p / 3.0);
        break;
      case Gate::DEPOLARIZE2: {
        // E (x) E: marginals pI = 1-p, pX = pY = pZ = p/3.
        const double p3 = p / 3.0;
        const double pi = 1.0 - p;
        for (std::size_t t = 0; t + 1 < ins.targets.size(); t += 2) {
          for (int pa = 0; pa <= 3; ++pa) {
            for (int pb = 0; pb <= 3; ++pb) {
              if (pa == 0 && pb == 0) continue;
              PauliString e(n);
              e.set_pauli(ins.targets[t], pa);
              e.set_pauli(ins.targets[t + 1], pb);
              const double prob = (pa == 0 ? pi : p3) * (pb == 0 ? pi : p3);
              add_component(i, e, prob);
            }
          }
        }
        break;
      }
      case Gate::DEPOLARIZE2_UNIFORM: {
        for (std::size_t t = 0; t + 1 < ins.targets.size(); t += 2) {
          for (int k = 1; k <= 15; ++k) {
            PauliString e(n);
            e.set_pauli(ins.targets[t], k % 4);
            e.set_pauli(ins.targets[t + 1], k / 4);
            add_component(i, e, p / 15.0);
          }
        }
        break;
      }
      case Gate::RESET_ERROR:
        // Out-of-model for the paper's decoder; optionally approximated
        // for the radiation-aware ablation (see DemOptions).
        if (options.include_reset_approximation) {
          for (auto q : ins.targets) {
            add_component(i, make_single(n, q, 1), p * 0.5);  // X part
            add_component(i, make_single(n, q, 2), p * 0.5);  // Z part
          }
        }
        break;
      default:
        RADSURF_ASSERT_MSG(false, "unhandled noise instruction in DEM");
    }
  }

  // Second pass: decompose over-weight signatures into edges that exist in
  // the accumulated set (hook/routing errors on transpiled circuits that
  // touch 3+ stabilizer reads).  The whole mechanism's observable flip is
  // attributed to its first component — a standard small-probability
  // approximation (these mechanisms are rare relative to the primitive
  // edges they decompose into).
  if (!deferred.empty()) {
    std::set<std::pair<std::uint32_t, std::uint32_t>> pairs;
    std::set<std::uint32_t> singles;
    for (const auto& [key, prob] : acc) {
      if (key.first.size() == 2)
        pairs.insert({key.first[0], key.first[1]});
      else if (key.first.size() == 1)
        singles.insert(key.first[0]);
    }
    for (std::size_t d = 0; d < deferred.size(); ++d) {
      std::vector<std::uint32_t> remaining = deferred[d].detectors;
      std::vector<Signature> parts;
      bool ok = true;
      while (!remaining.empty()) {
        const std::uint32_t d0 = remaining.front();
        remaining.erase(remaining.begin());
        bool paired = false;
        for (std::size_t j = 0; j < remaining.size(); ++j) {
          const auto key = std::minmax(d0, remaining[j]);
          if (pairs.count({key.first, key.second})) {
            parts.push_back(Signature{{key.first, key.second}, 0});
            remaining.erase(remaining.begin() +
                            static_cast<std::ptrdiff_t>(j));
            paired = true;
            break;
          }
        }
        if (paired) continue;
        if (singles.count(d0)) {
          parts.push_back(Signature{{d0}, 0});
          continue;
        }
        ok = false;
        break;
      }
      if (!ok || parts.empty()) {
        ++dem.num_unmatched;
        continue;
      }
      parts.front().observables = deferred[d].observables;
      for (const Signature& part : parts)
        add_mechanism(part, deferred_prob[d]);
    }
  }

  dem.mechanisms.reserve(acc.size());
  for (auto& [key, prob] : acc) {
    ErrorMechanism m;
    m.detectors = key.first;
    m.observables = key.second;
    m.probability = prob;
    dem.mechanisms.push_back(std::move(m));
  }
  return dem;
}

}  // namespace radsurf
