// Matching graph construction from a detector error model.
//
// Mechanisms flipping one detector become edges to a virtual boundary
// node; mechanisms flipping two become internal edges.  Parallel edges with
// identical endpoints and observable signature merge probabilistically;
// conflicting signatures keep the likelier edge (counted).  Weights are the
// standard -log-likelihood ratios log((1-p)/p).
#pragma once

#include <cstdint>
#include <vector>

#include "detector/error_model.hpp"

namespace radsurf {

struct MatchingEdge {
  std::uint32_t a = 0;
  std::uint32_t b = 0;  // may equal boundary_node()
  double probability = 0.0;
  double weight = 0.0;
  std::uint64_t observables = 0;
};

class MatchingGraph {
 public:
  static MatchingGraph from_dem(const DetectorErrorModel& dem);

  /// Build directly from pre-merged edges over `num_detectors` detectors
  /// (endpoint indices may equal num_detectors == the boundary).  Parallel
  /// edges with identical endpoints merge exactly as in from_dem; edge
  /// order is otherwise preserved, so a view of the full detector set
  /// reproduces the original graph verbatim.
  static MatchingGraph from_edges(std::size_t num_detectors,
                                  const std::vector<MatchingEdge>& edges);

  std::size_t num_detectors() const { return num_detectors_; }
  /// Virtual boundary node index (== num_detectors()).
  std::uint32_t boundary_node() const {
    return static_cast<std::uint32_t>(num_detectors_);
  }
  std::size_t num_nodes() const { return num_detectors_ + 1; }

  const std::vector<MatchingEdge>& edges() const { return edges_; }
  /// Out-edges of a node (boundary included as a regular node).
  const std::vector<std::uint32_t>& adjacent_edges(std::uint32_t node) const {
    return adjacency_[node];
  }

  std::size_t num_conflicting_edges() const { return conflicts_; }

 private:
  std::size_t num_detectors_ = 0;
  std::vector<MatchingEdge> edges_;
  std::vector<std::vector<std::uint32_t>> adjacency_;  // node -> edge ids
  std::size_t conflicts_ = 0;
};

/// A windowed view of a matching graph: the subgraph induced on a sorted
/// subset of its detectors, with local (dense) node indices.  Edges to the
/// real (spatial) boundary are kept; edges whose far endpoint is a detector
/// outside the subset are *dropped* — a temporal cut is closed, not an open
/// boundary, so a defect whose partner lies beyond the cut cannot fake a
/// cheap boundary exit and is instead deferred until an overlapping window
/// contains both (which is why sliding windows must overlap by at least the
/// time-span of the error mechanisms).  The sliding-window decoder builds
/// one view per W-round window.
struct MatchingGraphView {
  MatchingGraph graph;                    // local indices 0..k-1 (+boundary)
  std::vector<std::uint32_t> global_ids;  // local index -> global detector

  std::uint32_t to_local(std::uint32_t global) const;
};

/// View of `full` induced on `detectors` (sorted, deduplicated global ids).
/// With `detectors` == all detectors of `full`, the view's graph is
/// identical to `full` (same edges in the same order).
MatchingGraphView time_window(const MatchingGraph& full,
                              const std::vector<std::uint32_t>& detectors);

}  // namespace radsurf
