// Matching graph construction from a detector error model.
//
// Mechanisms flipping one detector become edges to a virtual boundary
// node; mechanisms flipping two become internal edges.  Parallel edges with
// identical endpoints and observable signature merge probabilistically;
// conflicting signatures keep the likelier edge (counted).  Weights are the
// standard -log-likelihood ratios log((1-p)/p).
#pragma once

#include <cstdint>
#include <vector>

#include "detector/error_model.hpp"

namespace radsurf {

struct MatchingEdge {
  std::uint32_t a = 0;
  std::uint32_t b = 0;  // may equal boundary_node()
  double probability = 0.0;
  double weight = 0.0;
  std::uint64_t observables = 0;
};

class MatchingGraph {
 public:
  static MatchingGraph from_dem(const DetectorErrorModel& dem);

  std::size_t num_detectors() const { return num_detectors_; }
  /// Virtual boundary node index (== num_detectors()).
  std::uint32_t boundary_node() const {
    return static_cast<std::uint32_t>(num_detectors_);
  }
  std::size_t num_nodes() const { return num_detectors_ + 1; }

  const std::vector<MatchingEdge>& edges() const { return edges_; }
  /// Out-edges of a node (boundary included as a regular node).
  const std::vector<std::uint32_t>& adjacent_edges(std::uint32_t node) const {
    return adjacency_[node];
  }

  std::size_t num_conflicting_edges() const { return conflicts_; }

 private:
  std::size_t num_detectors_ = 0;
  std::vector<MatchingEdge> edges_;
  std::vector<std::vector<std::uint32_t>> adjacency_;  // node -> edge ids
  std::size_t conflicts_ = 0;
};

}  // namespace radsurf
