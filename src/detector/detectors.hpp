// Compiled detector/observable structure of an annotated circuit.
//
// Detectors are parities of measurement records that are deterministic at
// zero noise; the decoder consumes detector *flips*.  DetectorSet compiles
// the annotations into bit masks over the record (records are few, so a
// mask is one or two words) and evaluates them against absolute records or
// frame-simulator flip tables.
#pragma once

#include <cstdint>
#include <vector>

#include "circuit/circuit.hpp"
#include "stab/frame_sim.hpp"
#include "util/bitmat.hpp"
#include "util/bitvec.hpp"

namespace radsurf {

class DetectorSet {
 public:
  static DetectorSet compile(const Circuit& circuit);

  /// Stabilisation-round index of every DETECTOR annotation: the number of
  /// TICK round markers preceding it in the circuit (code builders emit one
  /// TICK per stabilisation round, after that round's detectors).  The
  /// final-readout detectors therefore report round == rounds; callers that
  /// want them folded into the last round clamp to rounds - 1.  Consumed by
  /// the sliding-window decoder (see decoder/sliding_window.hpp).
  static std::vector<std::uint32_t> detector_rounds(const Circuit& circuit);

  std::size_t num_detectors() const { return detector_masks_.size(); }
  std::size_t num_observables() const { return observable_masks_.size(); }
  std::size_t num_records() const { return num_records_; }

  /// Record-index mask of detector d.
  const BitVec& detector_mask(std::size_t d) const {
    return detector_masks_[d];
  }
  const BitVec& observable_mask(std::size_t o) const {
    return observable_masks_[o];
  }

  /// Detector values of an absolute record relative to a reference record
  /// (bit d set = detector fired).
  BitVec detector_values(const BitVec& record, const BitVec& reference) const;

  /// Observable values (bit o) of an absolute record relative to reference.
  std::uint64_t observable_values(const BitVec& record,
                                  const BitVec& reference) const;

  /// Indices of fired detectors — the decoder's defect list.
  std::vector<std::uint32_t> defects(const BitVec& record,
                                     const BitVec& reference) const;
  /// Allocation-free variant for shot loops: `out` is cleared and refilled.
  void defects_into(const BitVec& record, const BitVec& reference,
                    std::vector<std::uint32_t>& out) const;
  /// One-pass combination of defects_into and observable_values for
  /// per-shot decode loops: the record diff is computed and word-scanned
  /// once.  `observables`, if non-null, receives the observable-flip mask.
  void defects_and_observables_into(const BitVec& record,
                                    const BitVec& reference,
                                    std::vector<std::uint32_t>& out,
                                    std::uint64_t* observables) const;

  /// Batch conversion of frame-simulator record flips into detector flip
  /// rows (detector-major, one bit per shot).
  std::vector<BitVec> detector_flips(const MeasurementFlips& flips) const;
  std::vector<BitVec> observable_flips(const MeasurementFlips& flips) const;

  /// Allocation-reusing variants: `out` is reshaped (rows resized and
  /// zeroed in place) instead of reallocated, so chunk loops pay the
  /// BitVec allocations once per thread, not once per batch.
  void detector_flips_into(const MeasurementFlips& flips,
                           std::vector<BitVec>& out) const;
  void observable_flips_into(const MeasurementFlips& flips,
                             std::vector<BitVec>& out) const;

  /// Scratch buffers of transposed_flips, owned by the caller so repeated
  /// batches reuse every allocation (one instance per chunk worker).
  struct SyndromeScratch {
    std::vector<BitVec> det_rows;
    std::vector<BitVec> obs_rows;
  };

  /// The batch-major decode boundary: convert frame flips into a
  /// *shot-major* syndrome matrix (syndromes.row(s) bit d = detector d
  /// fired in shot s) and observable matrix (observables.row(s) word 0 =
  /// the shot's observable-flip mask, observables <= 64), via the 64×64
  /// block transpose.  Everything downstream of this call sees contiguous
  /// per-shot words: a row_or() spots zero-syndrome shots and the word
  /// span keys the decode cache directly.
  void transposed_flips(const MeasurementFlips& flips,
                        SyndromeScratch& scratch, BitTable& syndromes,
                        BitTable& observables) const;

  /// Detectors containing record r (inverse index).
  const std::vector<std::uint32_t>& detectors_of_record(std::size_t r) const {
    return record_to_detectors_[r];
  }
  std::uint64_t observables_of_record(std::size_t r) const {
    return record_to_observables_[r];
  }

  /// Words per shot-major syndrome row (= BitTable::words_per_row of the
  /// tables transposed_flips produces).
  std::size_t syndrome_words() const {
    return (num_detectors() + BitVec::kWordBits - 1) / BitVec::kWordBits;
  }
  /// Detector-membership mask of record r over detector indices (the
  /// record-major inverse of detector_mask) — sized num_detectors().
  const BitVec& record_detector_mask(std::size_t r) const {
    return record_detector_masks_[r];
  }

 private:
  std::size_t num_records_ = 0;
  std::vector<BitVec> detector_masks_;
  std::vector<BitVec> observable_masks_;
  std::vector<std::vector<std::uint32_t>> record_to_detectors_;
  std::vector<std::uint64_t> record_to_observables_;
  // Detector-membership mask of record r over detector indices — the
  // record-major inverse of detector_masks_, so defects_into can XOR one
  // mask per *flipped record* (sparse) instead of probing every detector.
  std::vector<BitVec> record_detector_masks_;
};

}  // namespace radsurf
