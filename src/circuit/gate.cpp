#include "circuit/gate.hpp"

#include <array>

#include "util/error.hpp"

namespace radsurf {

namespace {
// Index must match the Gate enum order.
constexpr std::array<GateInfo, kNumGates> kGateTable = {{
    //        name                 tpo uni   2q     meas   reset  noise  anno  args
    GateInfo{"I", 1, true, false, false, false, false, false, 0},
    GateInfo{"X", 1, true, false, false, false, false, false, 0},
    GateInfo{"Y", 1, true, false, false, false, false, false, 0},
    GateInfo{"Z", 1, true, false, false, false, false, false, 0},
    GateInfo{"H", 1, true, false, false, false, false, false, 0},
    GateInfo{"S", 1, true, false, false, false, false, false, 0},
    GateInfo{"S_DAG", 1, true, false, false, false, false, false, 0},
    GateInfo{"CX", 2, true, true, false, false, false, false, 0},
    GateInfo{"CZ", 2, true, true, false, false, false, false, 0},
    GateInfo{"SWAP", 2, true, true, false, false, false, false, 0},
    GateInfo{"M", 1, false, false, true, false, false, false, 0},
    GateInfo{"R", 1, false, false, false, true, false, false, 0},
    GateInfo{"MR", 1, false, false, true, true, false, false, 0},
    GateInfo{"X_ERROR", 1, false, false, false, false, true, false, 1},
    GateInfo{"Y_ERROR", 1, false, false, false, false, true, false, 1},
    GateInfo{"Z_ERROR", 1, false, false, false, false, true, false, 1},
    GateInfo{"DEPOLARIZE1", 1, false, false, false, false, true, false, 1},
    GateInfo{"DEPOLARIZE2", 2, false, true, false, false, true, false, 1},
    GateInfo{"DEPOLARIZE2_UNIFORM", 2, false, true, false, false, true, false,
             1},
    GateInfo{"RESET_ERROR", 1, false, false, false, false, true, false, 1},
    GateInfo{"DETECTOR", 0, false, false, false, false, false, true, 0},
    GateInfo{"OBSERVABLE_INCLUDE", 0, false, false, false, false, false, true,
             1},
    GateInfo{"TICK", 0, false, false, false, false, false, true, 0},
}};
}  // namespace

const GateInfo& gate_info(Gate g) {
  const auto idx = static_cast<std::size_t>(g);
  RADSURF_ASSERT(idx < kGateTable.size());
  return kGateTable[idx];
}

Gate gate_from_name(std::string_view name) {
  for (int i = 0; i < kNumGates; ++i) {
    if (kGateTable[static_cast<std::size_t>(i)].name == name)
      return static_cast<Gate>(i);
  }
  throw InvalidArgument("unknown gate name: " + std::string(name));
}

}  // namespace radsurf
