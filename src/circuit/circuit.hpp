// Quantum circuit intermediate representation.
//
// A Circuit is an ordered list of Instructions over qubit indices, plus
// Stim-style annotations:
//   * DETECTOR — a parity of measurement records that is deterministically 0
//     in the absence of noise; decoders work on detector flips.
//   * OBSERVABLE_INCLUDE — accumulates records into a logical observable.
// Measurement records are indexed globally in program order; annotations
// reference them with positive lookbacks (1 = most recent).
//
// The text form round-trips (see parse/str) and is used in tests and for
// dumping reproduction artifacts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "circuit/gate.hpp"
#include "util/error.hpp"

namespace radsurf {

struct Instruction {
  Gate gate = Gate::I;
  std::vector<std::uint32_t> targets;   // qubit indices
  std::vector<std::uint32_t> lookbacks; // record lookbacks (annotations only)
  std::vector<double> args;             // probabilities / observable index

  bool operator==(const Instruction& o) const = default;

  /// Number of individual gate applications (e.g. "CX 0 1 2 3" is 2).
  std::size_t num_ops() const {
    const int tpo = gate_info(gate).targets_per_op;
    return tpo == 0 ? 1 : targets.size() / static_cast<std::size_t>(tpo);
  }
};

class Circuit {
 public:
  Circuit() = default;
  explicit Circuit(std::size_t num_qubits) : num_qubits_(num_qubits) {}

  // --- construction -------------------------------------------------------

  /// Append an instruction; validates arity, argument count and probability
  /// ranges, and grows the qubit count as needed.
  void append(Gate g, std::vector<std::uint32_t> targets,
              std::vector<double> args = {});
  /// Append an annotation referencing measurement records.
  void append_annotation(Gate g, std::vector<std::uint32_t> lookbacks,
                         std::vector<double> args = {});

  // Convenience spellings used by the code builders.
  void i(std::uint32_t q) { append(Gate::I, {q}); }
  void x(std::uint32_t q) { append(Gate::X, {q}); }
  void y(std::uint32_t q) { append(Gate::Y, {q}); }
  void z(std::uint32_t q) { append(Gate::Z, {q}); }
  void h(std::uint32_t q) { append(Gate::H, {q}); }
  void s(std::uint32_t q) { append(Gate::S, {q}); }
  void s_dag(std::uint32_t q) { append(Gate::S_DAG, {q}); }
  void cx(std::uint32_t c, std::uint32_t t) { append(Gate::CX, {c, t}); }
  void cz(std::uint32_t a, std::uint32_t b) { append(Gate::CZ, {a, b}); }
  void swap_gate(std::uint32_t a, std::uint32_t b) {
    append(Gate::SWAP, {a, b});
  }
  void m(std::uint32_t q) { append(Gate::M, {q}); }
  void r(std::uint32_t q) { append(Gate::R, {q}); }
  void mr(std::uint32_t q) { append(Gate::MR, {q}); }
  /// DETECTOR over the k-th..most recent measurements; lookback 1 = last.
  void detector(std::vector<std::uint32_t> lookbacks) {
    append_annotation(Gate::DETECTOR, std::move(lookbacks));
  }
  void observable_include(std::uint32_t observable,
                          std::vector<std::uint32_t> lookbacks) {
    append_annotation(Gate::OBSERVABLE_INCLUDE, std::move(lookbacks),
                      {static_cast<double>(observable)});
  }
  void tick() { append_annotation(Gate::TICK, {}); }

  /// Append all instructions of another circuit (qubit indices unchanged).
  Circuit& operator+=(const Circuit& o);

  // --- inspection ---------------------------------------------------------

  const std::vector<Instruction>& instructions() const { return instrs_; }
  std::size_t size() const { return instrs_.size(); }
  std::size_t num_qubits() const { return num_qubits_; }
  std::size_t num_measurements() const { return num_measurements_; }
  std::size_t num_detectors() const { return num_detectors_; }
  std::size_t num_observables() const { return num_observables_; }

  /// Global index of the first record produced by instruction i (valid only
  /// for measurement instructions).
  std::size_t record_offset(std::size_t instruction_index) const;

  /// Absolute record indices referenced by the annotation at `index`.
  std::vector<std::size_t> annotation_records(std::size_t index) const;

  /// Count of gate applications, excluding annotations (paper's
  /// "number of gate operations" metric).
  std::size_t num_operations() const;

  bool operator==(const Circuit& o) const = default;

  // --- text round-trip ----------------------------------------------------

  std::string str() const;
  static Circuit parse(const std::string& text);

 private:
  std::vector<Instruction> instrs_;
  std::size_t num_qubits_ = 0;
  std::size_t num_measurements_ = 0;
  std::size_t num_detectors_ = 0;
  std::size_t num_observables_ = 0;
  // Records produced before instruction i, for measurement instructions.
  std::vector<std::size_t> record_offsets_;
};

/// True iff the circuit contains a probabilistic reset (RESET_ERROR) — the
/// channel that separates the heralded-reset frame fast path from plain
/// Pauli-frame sampling.
bool contains_reset_noise(const Circuit& circuit);

}  // namespace radsurf
