// Directed acyclic dependency graph over circuit instructions.
//
// The DAG captures the per-qubit sequential dependence the paper's
// Observation VII reasons about: a fault on a qubit used early in the gate
// sequence reaches every DAG descendant.  It also provides ASAP scheduling
// (moments / depth) used by the transpiler statistics.
#pragma once

#include <cstddef>
#include <vector>

#include "circuit/circuit.hpp"

namespace radsurf {

class CircuitDag {
 public:
  explicit CircuitDag(const Circuit& circuit);

  /// Number of DAG nodes (non-annotation instructions).
  std::size_t num_nodes() const { return nodes_.size(); }

  /// Instruction index (into circuit.instructions()) of DAG node n.
  std::size_t instruction_index(std::size_t node) const {
    return nodes_[node];
  }

  const std::vector<std::size_t>& successors(std::size_t node) const {
    return succ_[node];
  }
  const std::vector<std::size_t>& predecessors(std::size_t node) const {
    return pred_[node];
  }

  /// Circuit depth = longest dependency chain (in gate layers).
  std::size_t depth() const { return depth_; }

  /// ASAP layer of each node.
  const std::vector<std::size_t>& layers() const { return layer_; }

  /// Nodes whose instruction acts on `qubit`.
  std::vector<std::size_t> nodes_on_qubit(std::uint32_t qubit) const;

  /// Number of distinct nodes reachable from any gate acting on `qubit`
  /// (the qubit's "blast radius" in the paper's Obs. VII analysis),
  /// including the initial nodes themselves.
  std::size_t descendant_count(std::uint32_t qubit) const;

  /// ASAP layer of the first gate touching `qubit` (circuit depth if the
  /// qubit is never used).
  std::size_t first_use_layer(std::uint32_t qubit) const;

 private:
  const Circuit* circuit_;
  std::vector<std::size_t> nodes_;               // node -> instruction index
  std::vector<std::vector<std::size_t>> succ_;
  std::vector<std::vector<std::size_t>> pred_;
  std::vector<std::size_t> layer_;
  std::vector<std::vector<std::size_t>> qubit_nodes_;  // qubit -> nodes
  std::size_t depth_ = 0;
};

}  // namespace radsurf
