// Gate set and static gate metadata.
//
// The instruction set is the Clifford + measurement + reset set needed by
// the paper's circuits (Figs 1–2), the Pauli noise channels of the
// intrinsic-noise model (Eq. 4), the probabilistic-reset channel of the
// radiation model (Sec. III-B), and Stim-style DETECTOR / OBSERVABLE
// annotations that make circuits self-describing for the decoder.
#pragma once

#include <cstdint>
#include <string_view>

namespace radsurf {

enum class Gate : std::uint8_t {
  // Single-qubit Cliffords.
  I,
  X,
  Y,
  Z,
  H,
  S,
  S_DAG,
  // Two-qubit Cliffords (targets consumed pairwise).
  CX,
  CZ,
  SWAP,
  // Non-unitary operations.
  M,   // Z-basis measurement, appends one record bit per target
  R,   // reset to |0>
  MR,  // measure then reset
  // Noise channels (probability argument).
  X_ERROR,
  Y_ERROR,
  Z_ERROR,
  DEPOLARIZE1,          // X/Y/Z each with prob p/3 (paper Eq. 4)
  DEPOLARIZE2,          // E (x) E: two independent single-qubit channels
  DEPOLARIZE2_UNIFORM,  // uniform 15-Pauli channel (ablation)
  RESET_ERROR,          // radiation model: reset with prob p
  // Annotations (no quantum effect).
  DETECTOR,            // parity of measurement records, deterministic at p=0
  OBSERVABLE_INCLUDE,  // logical observable accumulator (arg = obs index)
  TICK,                // layer separator, cosmetic
};

struct GateInfo {
  std::string_view name;
  // Number of qubit targets consumed per application (1 or 2); 0 for
  // record-target annotations.
  int targets_per_op;
  bool is_unitary;
  bool is_two_qubit;
  bool is_measurement;  // produces record bits
  bool is_reset;        // forces |0> (R, MR after measuring)
  bool is_noise;
  bool is_annotation;
  int num_args;  // required argument count (-1 = any number >= 0)
};

/// Static metadata for a gate kind.
const GateInfo& gate_info(Gate g);

/// Parse a gate name ("CX", "DEPOLARIZE1", ...); throws InvalidArgument.
Gate gate_from_name(std::string_view name);

constexpr int kNumGates = static_cast<int>(Gate::TICK) + 1;

}  // namespace radsurf
