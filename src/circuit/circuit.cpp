#include "circuit/circuit.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace radsurf {

void Circuit::append(Gate g, std::vector<std::uint32_t> targets,
                     std::vector<double> args) {
  const GateInfo& info = gate_info(g);
  RADSURF_CHECK_ARG(!info.is_annotation,
                    "use append_annotation for " << info.name);
  RADSURF_CHECK_ARG(info.targets_per_op > 0 && !targets.empty(),
                    info.name << " needs at least one target");
  RADSURF_CHECK_ARG(
      targets.size() % static_cast<std::size_t>(info.targets_per_op) == 0,
      info.name << " target count " << targets.size() << " not a multiple of "
                << info.targets_per_op);
  if (info.num_args >= 0) {
    RADSURF_CHECK_ARG(args.size() == static_cast<std::size_t>(info.num_args),
                      info.name << " expects " << info.num_args
                                << " argument(s), got " << args.size());
  }
  if (info.is_noise) {
    RADSURF_CHECK_ARG(args[0] >= 0.0 && args[0] <= 1.0,
                      info.name << " probability out of [0,1]: " << args[0]);
  }
  if (info.is_two_qubit) {
    for (std::size_t i = 0; i + 1 < targets.size(); i += 2) {
      RADSURF_CHECK_ARG(targets[i] != targets[i + 1],
                        info.name << " with identical targets " << targets[i]);
    }
  }
  for (std::uint32_t q : targets)
    num_qubits_ = std::max<std::size_t>(num_qubits_, q + 1);

  if (info.is_measurement) {
    record_offsets_.resize(instrs_.size() + 1, 0);
    record_offsets_[instrs_.size()] = num_measurements_;
    num_measurements_ += targets.size();
  }
  instrs_.push_back(Instruction{g, std::move(targets), {}, std::move(args)});
}

void Circuit::append_annotation(Gate g, std::vector<std::uint32_t> lookbacks,
                                std::vector<double> args) {
  const GateInfo& info = gate_info(g);
  RADSURF_CHECK_ARG(info.is_annotation, info.name << " is not an annotation");
  if (info.num_args >= 0) {
    RADSURF_CHECK_ARG(args.size() == static_cast<std::size_t>(info.num_args),
                      info.name << " expects " << info.num_args
                                << " argument(s), got " << args.size());
  }
  for (std::uint32_t lb : lookbacks) {
    RADSURF_CHECK_ARG(lb >= 1 && lb <= num_measurements_,
                      info.name << " lookback " << lb
                                << " exceeds record count "
                                << num_measurements_);
  }
  if (g == Gate::DETECTOR) ++num_detectors_;
  if (g == Gate::OBSERVABLE_INCLUDE) {
    const auto obs = static_cast<std::size_t>(args[0]);
    num_observables_ = std::max(num_observables_, obs + 1);
  }
  instrs_.push_back(Instruction{g, {}, std::move(lookbacks), std::move(args)});
}

Circuit& Circuit::operator+=(const Circuit& o) {
  for (const Instruction& ins : o.instrs_) {
    if (gate_info(ins.gate).is_annotation)
      append_annotation(ins.gate, ins.lookbacks, ins.args);
    else
      append(ins.gate, ins.targets, ins.args);
  }
  return *this;
}

std::size_t Circuit::record_offset(std::size_t instruction_index) const {
  RADSURF_ASSERT(instruction_index < instrs_.size());
  RADSURF_ASSERT(gate_info(instrs_[instruction_index].gate).is_measurement);
  return record_offsets_[instruction_index];
}

std::vector<std::size_t> Circuit::annotation_records(std::size_t index) const {
  RADSURF_ASSERT(index < instrs_.size());
  const Instruction& ins = instrs_[index];
  RADSURF_ASSERT(gate_info(ins.gate).is_annotation);
  // Count records produced by instructions before `index`.
  std::size_t produced = 0;
  for (std::size_t i = 0; i < index; ++i) {
    if (gate_info(instrs_[i].gate).is_measurement)
      produced += instrs_[i].targets.size();
  }
  std::vector<std::size_t> out;
  out.reserve(ins.lookbacks.size());
  for (std::uint32_t lb : ins.lookbacks) {
    RADSURF_ASSERT(lb <= produced);
    out.push_back(produced - lb);
  }
  return out;
}

std::size_t Circuit::num_operations() const {
  std::size_t n = 0;
  for (const Instruction& ins : instrs_) {
    if (!gate_info(ins.gate).is_annotation) n += ins.num_ops();
  }
  return n;
}

std::string Circuit::str() const {
  std::ostringstream ss;
  for (const Instruction& ins : instrs_) {
    const GateInfo& info = gate_info(ins.gate);
    ss << info.name;
    if (!ins.args.empty()) {
      ss << '(';
      for (std::size_t a = 0; a < ins.args.size(); ++a) {
        if (a) ss << ", ";
        // Print integers exactly, probabilities with full precision.
        if (ins.args[a] == std::floor(ins.args[a]) &&
            std::abs(ins.args[a]) < 1e15)
          ss << static_cast<long long>(ins.args[a]);
        else
          ss << ins.args[a];
      }
      ss << ')';
    }
    for (std::uint32_t q : ins.targets) ss << ' ' << q;
    for (std::uint32_t lb : ins.lookbacks) ss << " rec[-" << lb << ']';
    ss << '\n';
  }
  return ss.str();
}

namespace {
void strip(std::string& s) {
  const auto b = s.find_first_not_of(" \t\r");
  const auto e = s.find_last_not_of(" \t\r");
  s = (b == std::string::npos) ? std::string{} : s.substr(b, e - b + 1);
}
}  // namespace

Circuit Circuit::parse(const std::string& text) {
  Circuit c;
  std::istringstream stream(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(stream, line)) {
    ++line_no;
    const auto comment = line.find('#');
    if (comment != std::string::npos) line = line.substr(0, comment);
    strip(line);
    if (line.empty()) continue;

    // Gate name, optional "(args)", then whitespace-separated targets.
    std::string name;
    std::vector<double> args;
    std::size_t pos = line.find_first_of(" \t(");
    name = line.substr(0, pos);
    std::string rest = (pos == std::string::npos) ? "" : line.substr(pos);
    strip(rest);
    if (!rest.empty() && rest.front() == '(') {
      const auto close = rest.find(')');
      RADSURF_CHECK_ARG(close != std::string::npos,
                        "line " << line_no << ": unterminated argument list");
      std::string arg_text = rest.substr(1, close - 1);
      rest = rest.substr(close + 1);
      strip(rest);
      std::replace(arg_text.begin(), arg_text.end(), ',', ' ');
      std::istringstream as(arg_text);
      double v = 0;
      while (as >> v) args.push_back(v);
    }

    Gate g = gate_from_name(name);
    std::vector<std::uint32_t> targets;
    std::vector<std::uint32_t> lookbacks;
    std::istringstream ts(rest);
    std::string tok;
    while (ts >> tok) {
      if (tok.rfind("rec[-", 0) == 0) {
        RADSURF_CHECK_ARG(tok.back() == ']',
                          "line " << line_no << ": bad record target " << tok);
        lookbacks.push_back(static_cast<std::uint32_t>(
            std::stoul(tok.substr(5, tok.size() - 6))));
      } else {
        targets.push_back(static_cast<std::uint32_t>(std::stoul(tok)));
      }
    }
    if (gate_info(g).is_annotation)
      c.append_annotation(g, std::move(lookbacks), std::move(args));
    else
      c.append(g, std::move(targets), std::move(args));
  }
  return c;
}

bool contains_reset_noise(const Circuit& circuit) {
  for (const Instruction& ins : circuit.instructions())
    if (ins.gate == Gate::RESET_ERROR) return true;
  return false;
}

}  // namespace radsurf
