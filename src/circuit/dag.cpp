#include "circuit/dag.hpp"

#include <algorithm>

namespace radsurf {

CircuitDag::CircuitDag(const Circuit& circuit) : circuit_(&circuit) {
  const auto& instrs = circuit.instructions();
  nodes_.reserve(instrs.size());
  for (std::size_t i = 0; i < instrs.size(); ++i) {
    if (!gate_info(instrs[i].gate).is_annotation) nodes_.push_back(i);
  }
  succ_.assign(nodes_.size(), {});
  pred_.assign(nodes_.size(), {});
  layer_.assign(nodes_.size(), 0);
  qubit_nodes_.assign(circuit.num_qubits(), {});

  // last_node[q] = most recent DAG node acting on qubit q.
  std::vector<long long> last_node(circuit.num_qubits(), -1);
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    const Instruction& ins = instrs[nodes_[n]];
    std::size_t this_layer = 0;
    for (std::uint32_t q : ins.targets) {
      qubit_nodes_[q].push_back(n);
      if (last_node[q] >= 0) {
        const auto p = static_cast<std::size_t>(last_node[q]);
        // Avoid duplicate edges when both targets share the predecessor.
        if (succ_[p].empty() || succ_[p].back() != n) {
          succ_[p].push_back(n);
          pred_[n].push_back(p);
        }
        this_layer = std::max(this_layer, layer_[p] + 1);
      }
      last_node[q] = static_cast<long long>(n);
    }
    layer_[n] = this_layer;
    depth_ = std::max(depth_, this_layer + 1);
  }
}

std::vector<std::size_t> CircuitDag::nodes_on_qubit(std::uint32_t qubit) const {
  if (qubit >= qubit_nodes_.size()) return {};
  return qubit_nodes_[qubit];
}

std::size_t CircuitDag::descendant_count(std::uint32_t qubit) const {
  if (qubit >= qubit_nodes_.size() || qubit_nodes_[qubit].empty()) return 0;
  std::vector<char> seen(nodes_.size(), 0);
  std::vector<std::size_t> stack;
  for (std::size_t n : qubit_nodes_[qubit]) {
    if (!seen[n]) {
      seen[n] = 1;
      stack.push_back(n);
    }
  }
  std::size_t count = stack.size();
  while (!stack.empty()) {
    const std::size_t n = stack.back();
    stack.pop_back();
    for (std::size_t s : succ_[n]) {
      if (!seen[s]) {
        seen[s] = 1;
        ++count;
        stack.push_back(s);
      }
    }
  }
  return count;
}

std::size_t CircuitDag::first_use_layer(std::uint32_t qubit) const {
  if (qubit >= qubit_nodes_.size() || qubit_nodes_[qubit].empty())
    return depth_;
  std::size_t best = depth_;
  for (std::size_t n : qubit_nodes_[qubit]) best = std::min(best, layer_[n]);
  return best;
}

}  // namespace radsurf
