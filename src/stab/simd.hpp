// Vectorized word kernels for the wide (word-sliced) tableau engine.
//
// The hot loop of a random-outcome measurement multiplies the pivot row
// into every anticommuting row: per column, a pure bitwise update of the
// X/Z words plus a packed 2-bit phase accumulation (lo/hi carry-save
// counters).  That kernel is branch-free per word and therefore maps
// directly onto 256-bit lanes; everything else in the tableau is either
// O(W) already or dominated by sparse word-mask iteration.
//
// Dispatch contract: `pivot_eliminate` is a function pointer bound once at
// static-init time — the AVX2 body when the build targets x86-64 AND the
// running CPU reports AVX2 (checked with __builtin_cpu_supports), the
// portable word loop otherwise.  Both bodies are compiled whenever the
// target allows it, so the portable path stays exercised on AVX2 hosts via
// the word-seam property tests, and non-x86 builds degrade cleanly.
// The two implementations are bit-identical by construction (the kernel is
// bitwise, with no reassociation of anything order-sensitive).
#pragma once

#include <cstdint>

namespace radsurf {
namespace simd {

/// Name of the elimination backend selected at startup ("avx2" or
/// "portable") — surfaced so perf records stay attributable.
const char* backend();

/// Multiply the pivot Pauli (xp, zp) into the rows selected by `m` over
/// words [w0, w1): update the column words xk/zk and accumulate the
/// per-row phase (in units of i^2) into the packed 2-bit counters lo/hi.
/// Words inside the span with m[w] == 0 are no-ops, so callers may pass a
/// contiguous hull of the sparse support.
using PivotEliminateFn = void (*)(std::uint64_t* xk, std::uint64_t* zk,
                                  const std::uint64_t* m, std::uint64_t* lo,
                                  std::uint64_t* hi, std::uint32_t w0,
                                  std::uint32_t w1, bool xp, bool zp);
extern const PivotEliminateFn pivot_eliminate;

}  // namespace simd
}  // namespace radsurf
