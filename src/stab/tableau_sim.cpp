#include "stab/tableau_sim.hpp"

#include <cmath>

#include "util/error.hpp"

namespace radsurf {

namespace {

// Pre-resolved Bernoulli threshold: fires iff rng.next() <= threshold.
// p >= 1 maps to the all-ones word (always fires, exactly); p in (0, 1)
// has quantisation error below 2^-63.
std::uint64_t bernoulli_threshold(double p) {
  if (p >= 1.0) return ~std::uint64_t{0};
  const double scaled = std::ldexp(p, 64);
  if (scaled >= 18446744073709551615.0) return ~std::uint64_t{0} - 1;
  return static_cast<std::uint64_t>(scaled);
}

bool fires(const std::uint64_t threshold, Rng& rng) {
  return rng.next() <= threshold;
}

}  // namespace

std::shared_ptr<const CircuitTape> CircuitTape::compile(
    const Circuit& circuit) {
  auto tape = std::make_shared<CircuitTape>();
  tape->num_qubits = circuit.num_qubits();
  tape->num_measurements = circuit.num_measurements();
  std::uint32_t raw_site = 0;
  for (const Instruction& ins : circuit.instructions()) {
    const GateInfo& info = gate_info(ins.gate);
    if (info.is_annotation) continue;
    const bool zero_noise = info.is_noise && ins.args[0] <= 0.0;
    if (ins.gate == Gate::RESET_ERROR) {
      // Raw ordinals count every site, elided or not, so they align with
      // ReferenceTrace::reset_sites and the frame simulator.
      if (zero_noise) {
        raw_site += static_cast<std::uint32_t>(ins.targets.size());
        continue;
      }
    } else if (zero_noise) {
      continue;  // never fires
    }
    Op op;
    op.gate = ins.gate;
    op.first = static_cast<std::uint32_t>(tape->targets.size());
    op.count = static_cast<std::uint32_t>(ins.targets.size());
    op.is_physical = !info.is_noise;
    if (info.is_noise) op.threshold = bernoulli_threshold(ins.args[0]);
    if (ins.gate == Gate::RESET_ERROR) {
      op.site_base = raw_site;
      raw_site += op.count;
    }
    tape->targets.insert(tape->targets.end(), ins.targets.begin(),
                         ins.targets.end());
    if (op.is_physical) ++tape->num_physical_ops;
    tape->ops.push_back(op);
  }
  return tape;
}

TableauSimulator::TableauSimulator(const Circuit& circuit)
    : TableauSimulator(circuit, CircuitTape::compile(circuit)) {}

TableauSimulator::TableauSimulator(const Circuit& circuit,
                                   std::shared_ptr<const CircuitTape> tape)
    : circuit_(circuit),
      num_qubits_(circuit.num_qubits()),
      tableau_(circuit.num_qubits() > 0 ? circuit.num_qubits() : 1),
      tape_(std::move(tape)) {
  RADSURF_CHECK_ARG(num_qubits_ > 0, "cannot simulate an empty circuit");
  RADSURF_CHECK_ARG(tape_->num_qubits == num_qubits_ &&
                        tape_->num_measurements == circuit_.num_measurements(),
                    "tape was compiled from a different circuit");
}

void TableauSimulator::apply_unitary(const CircuitTape::Op& op) {
  Tableau& t = tableau_;
  const std::uint32_t* tg = tape_->targets.data() + op.first;
  const std::uint32_t n = op.count;
  switch (op.gate) {
    case Gate::I:
      break;
    case Gate::X:
      for (std::uint32_t i = 0; i < n; ++i) t.apply_x(tg[i]);
      break;
    case Gate::Y:
      for (std::uint32_t i = 0; i < n; ++i) t.apply_y(tg[i]);
      break;
    case Gate::Z:
      for (std::uint32_t i = 0; i < n; ++i) t.apply_z(tg[i]);
      break;
    case Gate::H:
      for (std::uint32_t i = 0; i < n; ++i) t.apply_h(tg[i]);
      break;
    case Gate::S:
      for (std::uint32_t i = 0; i < n; ++i) t.apply_s(tg[i]);
      break;
    case Gate::S_DAG:
      for (std::uint32_t i = 0; i < n; ++i) t.apply_s_dag(tg[i]);
      break;
    case Gate::CX:
      for (std::uint32_t i = 0; i + 1 < n; i += 2)
        t.apply_cx(tg[i], tg[i + 1]);
      break;
    case Gate::CZ:
      for (std::uint32_t i = 0; i + 1 < n; i += 2)
        t.apply_cz(tg[i], tg[i + 1]);
      break;
    case Gate::SWAP:
      for (std::uint32_t i = 0; i + 1 < n; i += 2)
        t.apply_swap(tg[i], tg[i + 1]);
      break;
    default:
      RADSURF_ASSERT_MSG(false, "apply_unitary on non-unitary gate");
  }
}

void TableauSimulator::reference_reset(std::uint32_t q, Rng& rng) {
  if (tableau_.measure(q, rng, /*force_zero_if_random=*/true))
    tableau_.apply_x(q);
}

void TableauSimulator::run(Rng& rng, bool noiseless_reference,
                           const std::vector<std::uint32_t>* corrupted,
                           BitVec& record,
                           const ReplayConstraint* constraint) {
  Tableau& t = tableau_;
  t.reset_all();
  RADSURF_ASSERT(record.size() == circuit_.num_measurements());
  record.clear();
  std::size_t rec = 0;
  ReplayConstraintCursor cursor{constraint, 0, 0};

  // Strike instant for the single shared erasure, if any: uniform over the
  // physical (non-annotation, non-noise) operations, drawn per shot unless
  // the replay constraint pins it.
  std::size_t strike_at = std::size_t(-1);
  if (corrupted && !corrupted->empty() && tape_->num_physical_ops > 0) {
    strike_at = (constraint && constraint->has_strike)
                    ? constraint->strike_ordinal
                    : rng.below(tape_->num_physical_ops);
  }
  std::size_t physical_ordinal = 0;

  auto apply_one_qubit_pauli_noise = [&](std::uint32_t q,
                                         std::uint64_t threshold) {
    // E of Eq. 4: with probability p apply X, Y or Z uniformly.
    if (!fires(threshold, rng)) return;
    switch (rng.below(3)) {
      case 0: t.apply_x(q); break;
      case 1: t.apply_y(q); break;
      default: t.apply_z(q); break;
    }
  };

  for (const CircuitTape::Op& op : tape_->ops) {
    const std::uint32_t* tg = tape_->targets.data() + op.first;
    const std::uint32_t nt = op.count;

    if (op.is_physical) {
      if (physical_ordinal == strike_at) {
        for (std::uint32_t q : *corrupted) {
          RADSURF_CHECK_ARG(q < num_qubits_,
                            "corrupted qubit " << q << " out of range");
          t.reset(q, rng);
        }
      }
      ++physical_ordinal;
    }

    switch (op.gate) {
      case Gate::M:
        for (std::uint32_t i = 0; i < nt; ++i)
          record.set(rec++, t.measure(tg[i], rng, noiseless_reference));
        break;
      case Gate::R:
        for (std::uint32_t i = 0; i < nt; ++i) {
          if (noiseless_reference)
            reference_reset(tg[i], rng);
          else
            t.reset(tg[i], rng);
        }
        break;
      case Gate::MR:
        for (std::uint32_t i = 0; i < nt; ++i) {
          const bool m = t.measure(tg[i], rng, noiseless_reference);
          record.set(rec++, m);
          if (m) t.apply_x(tg[i]);
        }
        break;
      case Gate::X_ERROR:
        if (!noiseless_reference)
          for (std::uint32_t i = 0; i < nt; ++i)
            if (fires(op.threshold, rng)) t.apply_x(tg[i]);
        break;
      case Gate::Y_ERROR:
        if (!noiseless_reference)
          for (std::uint32_t i = 0; i < nt; ++i)
            if (fires(op.threshold, rng)) t.apply_y(tg[i]);
        break;
      case Gate::Z_ERROR:
        if (!noiseless_reference)
          for (std::uint32_t i = 0; i < nt; ++i)
            if (fires(op.threshold, rng)) t.apply_z(tg[i]);
        break;
      case Gate::DEPOLARIZE1:
      case Gate::DEPOLARIZE2:
        // DEPOLARIZE2 is the paper's Eq. 4 E (x) E — two independent
        // single-qubit channels.
        if (!noiseless_reference)
          for (std::uint32_t i = 0; i < nt; ++i)
            apply_one_qubit_pauli_noise(tg[i], op.threshold);
        break;
      case Gate::DEPOLARIZE2_UNIFORM:
        if (!noiseless_reference) {
          for (std::uint32_t i = 0; i + 1 < nt; i += 2) {
            if (!fires(op.threshold, rng)) continue;
            // Uniform over the 15 non-identity two-qubit Paulis.
            const auto k = rng.below(15) + 1;
            const auto pa = static_cast<int>(k % 4);
            const auto pb = static_cast<int>(k / 4);
            auto apply = [&](std::uint32_t q, int pauli) {
              if (pauli == 1) t.apply_x(q);
              else if (pauli == 2) t.apply_z(q);
              else if (pauli == 3) t.apply_y(q);
            };
            apply(tg[i], pa);
            apply(tg[i + 1], pb);
          }
        }
        break;
      case Gate::RESET_ERROR:
        // Radiation model (Sec. III-B): non-unitary reset with prob p.
        // Replay-pinned sites reuse the frame phase's herald outcome.
        if (!noiseless_reference) {
          for (std::uint32_t i = 0; i < nt; ++i) {
            bool fired;
            if (!cursor.pinned(op.site_base + i, fired))
              fired = fires(op.threshold, rng);
            if (fired) t.reset(tg[i], rng);
          }
        }
        break;
      default:
        apply_unitary(op);
    }
  }
  RADSURF_ASSERT(rec == record.size());
}

BitVec TableauSimulator::sample(Rng& rng) {
  BitVec record(circuit_.num_measurements());
  sample_into(rng, record);
  return record;
}

void TableauSimulator::sample_into(Rng& rng, BitVec& record) {
  run(rng, /*noiseless_reference=*/false, nullptr, record);
}

BitVec TableauSimulator::sample_with_erasure(
    Rng& rng, const std::vector<std::uint32_t>& corrupted) {
  BitVec record(circuit_.num_measurements());
  sample_with_erasure_into(rng, corrupted, record);
  return record;
}

void TableauSimulator::sample_with_erasure_into(
    Rng& rng, const std::vector<std::uint32_t>& corrupted, BitVec& record) {
  run(rng, /*noiseless_reference=*/false, &corrupted, record);
}

void TableauSimulator::sample_replay_into(
    Rng& rng, const std::vector<std::uint32_t>* corrupted,
    const ReplayConstraint& constraint, BitVec& record) {
  run(rng, /*noiseless_reference=*/false, corrupted, record, &constraint);
}

BitVec TableauSimulator::reference_sample() {
  Rng dummy(0);
  BitVec record(circuit_.num_measurements());
  run(dummy, /*noiseless_reference=*/true, nullptr, record);
  return record;
}

ConditionedReference TableauSimulator::conditioned_reference(
    const std::vector<std::uint32_t>* corrupted,
    const ReplayConstraint& constraint) {
  // Deterministic walk over the original instruction list (reset-site
  // ordinals must align with every other circuit walk, elided sites
  // included), with the group's pinned events applied.  Mirrors
  // reference_trace, plus: pinned fired resets and the pinned strike are
  // *executed*, every random collapse exports its destabilizer, and the
  // collapse-opportunity counter advances exactly as in
  // FrameSimulator::run_group (see CollapseEvent).
  ConditionedReference out;
  out.trace.num_physical_ops = tape_->num_physical_ops;
  if (corrupted) {
    out.trace.corrupted = *corrupted;
    for (std::uint32_t q : *corrupted) {
      RADSURF_CHECK_ARG(q < num_qubits_,
                        "corrupted qubit " << q << " out of range");
    }
    RADSURF_CHECK_ARG(corrupted->empty() || constraint.has_strike,
                      "conditioned reference with an erasure set requires a "
                      "pinned strike ordinal");
  }
  out.record = BitVec(circuit_.num_measurements());

  Tableau& t = tableau_;
  t.reset_all();
  Rng dummy(0);  // never consulted: every random outcome is pinned to zero
  ReplayConstraintCursor cursor{&constraint, 0, 0};
  const bool strike = corrupted && !corrupted->empty() &&
                      tape_->num_physical_ops > 0 && constraint.has_strike;
  std::size_t physical_ordinal = 0;
  std::size_t rec = 0;
  std::uint64_t opportunity = 0;
  std::uint32_t raw_site = 0;

  // Pinned-to-zero collapse of Z_q; a random outcome exports the
  // destabilizer of the collapse at the current opportunity ordinal.
  const auto collapse = [&](std::uint32_t q) -> bool {
    bool was_random = false;
    std::size_t pivot = 0;
    const bool m = t.measure(q, dummy, /*force_zero_if_random=*/true,
                             &was_random, &pivot);
    if (was_random) {
      CollapseEvent ev;
      ev.opportunity = opportunity;
      const PauliString d = t.row(pivot - num_qubits_);
      for (std::uint32_t k = 0; k < num_qubits_; ++k) {
        if (d.x(k)) ev.dx.push_back(k);
        if (d.z(k)) ev.dz.push_back(k);
      }
      out.events.push_back(std::move(ev));
    }
    ++opportunity;
    return m;
  };
  const auto collapse_reset = [&](std::uint32_t q) {
    if (collapse(q)) t.apply_x(q);
  };

  for (const Instruction& ins : circuit_.instructions()) {
    const GateInfo& info = gate_info(ins.gate);
    if (info.is_annotation) continue;

    if (ins.gate == Gate::RESET_ERROR) {
      for (std::uint32_t q : ins.targets) {
        out.trace.reset_sites.push_back(static_cast<std::int8_t>(t.peek_z(q)));
        bool fired = false;
        if (cursor.pinned(raw_site, fired) && fired) collapse_reset(q);
        ++raw_site;
      }
      continue;
    }
    if (info.is_noise) continue;  // member-sampled; never hits the reference

    // Physical op: the pinned strike lands immediately before it.
    if (strike && physical_ordinal == constraint.strike_ordinal) {
      for (std::uint32_t q : *corrupted) collapse_reset(q);
    }
    ++physical_ordinal;

    if (info.is_unitary) {
      const auto& tg = ins.targets;
      switch (ins.gate) {
        case Gate::I: break;
        case Gate::X: for (auto q : tg) t.apply_x(q); break;
        case Gate::Y: for (auto q : tg) t.apply_y(q); break;
        case Gate::Z: for (auto q : tg) t.apply_z(q); break;
        case Gate::H: for (auto q : tg) t.apply_h(q); break;
        case Gate::S: for (auto q : tg) t.apply_s(q); break;
        case Gate::S_DAG: for (auto q : tg) t.apply_s_dag(q); break;
        case Gate::CX:
          for (std::size_t i = 0; i + 1 < tg.size(); i += 2)
            t.apply_cx(tg[i], tg[i + 1]);
          break;
        case Gate::CZ:
          for (std::size_t i = 0; i + 1 < tg.size(); i += 2)
            t.apply_cz(tg[i], tg[i + 1]);
          break;
        case Gate::SWAP:
          for (std::size_t i = 0; i + 1 < tg.size(); i += 2)
            t.apply_swap(tg[i], tg[i + 1]);
          break;
        default:
          RADSURF_ASSERT_MSG(false,
                             "unhandled unitary in conditioned reference");
      }
      continue;
    }

    switch (ins.gate) {
      case Gate::M:
        for (auto q : ins.targets) out.record.set(rec++, collapse(q));
        break;
      case Gate::R:
        for (auto q : ins.targets) collapse_reset(q);
        break;
      case Gate::MR:
        for (auto q : ins.targets) {
          const bool m = collapse(q);
          out.record.set(rec++, m);
          if (m) t.apply_x(q);
        }
        break;
      default:
        RADSURF_ASSERT_MSG(false,
                           "unhandled instruction in conditioned reference");
    }
  }
  RADSURF_ASSERT(rec == out.record.size());
  return out;
}

ReferenceTrace TableauSimulator::reference_trace(
    const std::vector<std::uint32_t>* corrupted) {
  // Deterministic noiseless walk over the *original* instruction list (so
  // reset-site indices align with any other walk of the circuit, including
  // elided zero-probability sites), recording peek_z at every RESET_ERROR
  // site and, when requested, at every (physical instant, corrupted qubit).
  ReferenceTrace trace;
  trace.num_physical_ops = tape_->num_physical_ops;
  if (corrupted) {
    trace.corrupted = *corrupted;
    for (std::uint32_t q : *corrupted) {
      RADSURF_CHECK_ARG(q < num_qubits_,
                        "corrupted qubit " << q << " out of range");
    }
    trace.erasure_sites.reserve(tape_->num_physical_ops * corrupted->size());
  }

  Tableau& t = tableau_;
  t.reset_all();
  Rng dummy(0);  // never consulted: random outcomes are pinned to zero

  for (const Instruction& ins : circuit_.instructions()) {
    const GateInfo& info = gate_info(ins.gate);
    if (info.is_annotation) continue;

    if (ins.gate == Gate::RESET_ERROR) {
      for (std::uint32_t q : ins.targets)
        trace.reset_sites.push_back(static_cast<std::int8_t>(t.peek_z(q)));
      continue;
    }
    if (info.is_noise) continue;  // noise never perturbs the reference

    // Physical op: erasure strikes land immediately before it.
    if (corrupted) {
      for (std::uint32_t q : *corrupted)
        trace.erasure_sites.push_back(static_cast<std::int8_t>(t.peek_z(q)));
    }

    if (info.is_unitary) {
      const auto& tg = ins.targets;
      switch (ins.gate) {
        case Gate::I: break;
        case Gate::X: for (auto q : tg) t.apply_x(q); break;
        case Gate::Y: for (auto q : tg) t.apply_y(q); break;
        case Gate::Z: for (auto q : tg) t.apply_z(q); break;
        case Gate::H: for (auto q : tg) t.apply_h(q); break;
        case Gate::S: for (auto q : tg) t.apply_s(q); break;
        case Gate::S_DAG: for (auto q : tg) t.apply_s_dag(q); break;
        case Gate::CX:
          for (std::size_t i = 0; i + 1 < tg.size(); i += 2)
            t.apply_cx(tg[i], tg[i + 1]);
          break;
        case Gate::CZ:
          for (std::size_t i = 0; i + 1 < tg.size(); i += 2)
            t.apply_cz(tg[i], tg[i + 1]);
          break;
        case Gate::SWAP:
          for (std::size_t i = 0; i + 1 < tg.size(); i += 2)
            t.apply_swap(tg[i], tg[i + 1]);
          break;
        default:
          RADSURF_ASSERT_MSG(false, "unhandled unitary in reference trace");
      }
      continue;
    }

    switch (ins.gate) {
      case Gate::M:
        for (auto q : ins.targets)
          t.measure(q, dummy, /*force_zero_if_random=*/true);
        break;
      case Gate::R:
        for (auto q : ins.targets) reference_reset(q, dummy);
        break;
      case Gate::MR:
        for (auto q : ins.targets) {
          if (t.measure(q, dummy, /*force_zero_if_random=*/true))
            t.apply_x(q);
        }
        break;
      default:
        RADSURF_ASSERT_MSG(false, "unhandled instruction in reference trace");
    }
  }
  return trace;
}

}  // namespace radsurf
