#include "stab/tableau_sim.hpp"

#include "util/error.hpp"

namespace radsurf {

TableauSimulator::TableauSimulator(const Circuit& circuit)
    : circuit_(circuit), num_qubits_(circuit.num_qubits()) {
  RADSURF_CHECK_ARG(num_qubits_ > 0, "cannot simulate an empty circuit");
  const auto& instrs = circuit.instructions();
  for (std::size_t i = 0; i < instrs.size(); ++i) {
    const GateInfo& info = gate_info(instrs[i].gate);
    if (!info.is_annotation && !info.is_noise) physical_ops_.push_back(i);
  }
}

void TableauSimulator::apply_unitary(Tableau& t, const Instruction& ins) {
  const auto& tg = ins.targets;
  switch (ins.gate) {
    case Gate::I:
      break;
    case Gate::X:
      for (auto q : tg) t.apply_x(q);
      break;
    case Gate::Y:
      for (auto q : tg) t.apply_y(q);
      break;
    case Gate::Z:
      for (auto q : tg) t.apply_z(q);
      break;
    case Gate::H:
      for (auto q : tg) t.apply_h(q);
      break;
    case Gate::S:
      for (auto q : tg) t.apply_s(q);
      break;
    case Gate::S_DAG:
      for (auto q : tg) t.apply_s_dag(q);
      break;
    case Gate::CX:
      for (std::size_t i = 0; i + 1 < tg.size(); i += 2)
        t.apply_cx(tg[i], tg[i + 1]);
      break;
    case Gate::CZ:
      for (std::size_t i = 0; i + 1 < tg.size(); i += 2)
        t.apply_cz(tg[i], tg[i + 1]);
      break;
    case Gate::SWAP:
      for (std::size_t i = 0; i + 1 < tg.size(); i += 2)
        t.apply_swap(tg[i], tg[i + 1]);
      break;
    default:
      RADSURF_ASSERT_MSG(false, "apply_unitary on non-unitary gate");
  }
}

BitVec TableauSimulator::run(Rng& rng, bool noiseless_reference,
                             const std::vector<std::uint32_t>* corrupted) {
  Tableau t(num_qubits_);
  BitVec record(circuit_.num_measurements());
  std::size_t rec = 0;

  // Strike instant for the single shared erasure, if any.
  std::size_t strike_at = std::size_t(-1);
  if (corrupted && !corrupted->empty() && !physical_ops_.empty())
    strike_at = physical_ops_[rng.below(physical_ops_.size())];
  std::size_t instruction_index = std::size_t(-1);

  auto apply_one_qubit_pauli_noise = [&](std::uint32_t q, double p) {
    // E of Eq. 4: with probability p apply X, Y or Z uniformly.
    if (!rng.bernoulli(p)) return;
    switch (rng.below(3)) {
      case 0: t.apply_x(q); break;
      case 1: t.apply_y(q); break;
      default: t.apply_z(q); break;
    }
  };

  for (const Instruction& ins : circuit_.instructions()) {
    ++instruction_index;
    const GateInfo& info = gate_info(ins.gate);
    if (info.is_annotation) continue;

    if (instruction_index == strike_at) {
      for (std::uint32_t q : *corrupted) {
        RADSURF_CHECK_ARG(q < num_qubits_,
                          "corrupted qubit " << q << " out of range");
        t.reset(q, rng);
      }
    }

    if (info.is_unitary) {
      apply_unitary(t, ins);
      continue;
    }

    switch (ins.gate) {
      case Gate::M:
        for (auto q : ins.targets)
          record.set(rec++, t.measure(q, rng, noiseless_reference));
        break;
      case Gate::R:
        for (auto q : ins.targets) {
          if (noiseless_reference) {
            if (t.measure(q, rng, /*force_zero_if_random=*/true))
              t.apply_x(q);
          } else {
            t.reset(q, rng);
          }
        }
        break;
      case Gate::MR:
        for (auto q : ins.targets) {
          const bool m = t.measure(q, rng, noiseless_reference);
          record.set(rec++, m);
          if (m) t.apply_x(q);
        }
        break;
      case Gate::X_ERROR:
        if (!noiseless_reference)
          for (auto q : ins.targets)
            if (rng.bernoulli(ins.args[0])) t.apply_x(q);
        break;
      case Gate::Y_ERROR:
        if (!noiseless_reference)
          for (auto q : ins.targets)
            if (rng.bernoulli(ins.args[0])) t.apply_y(q);
        break;
      case Gate::Z_ERROR:
        if (!noiseless_reference)
          for (auto q : ins.targets)
            if (rng.bernoulli(ins.args[0])) t.apply_z(q);
        break;
      case Gate::DEPOLARIZE1:
        if (!noiseless_reference)
          for (auto q : ins.targets)
            apply_one_qubit_pauli_noise(q, ins.args[0]);
        break;
      case Gate::DEPOLARIZE2:
        // Paper Eq. 4: E (x) E — two independent single-qubit channels.
        if (!noiseless_reference)
          for (auto q : ins.targets)
            apply_one_qubit_pauli_noise(q, ins.args[0]);
        break;
      case Gate::DEPOLARIZE2_UNIFORM:
        if (!noiseless_reference) {
          for (std::size_t i = 0; i + 1 < ins.targets.size(); i += 2) {
            if (!rng.bernoulli(ins.args[0])) continue;
            // Uniform over the 15 non-identity two-qubit Paulis.
            const auto k = rng.below(15) + 1;
            const auto pa = static_cast<int>(k % 4);
            const auto pb = static_cast<int>(k / 4);
            auto apply = [&](std::uint32_t q, int pauli) {
              if (pauli == 1) t.apply_x(q);
              else if (pauli == 2) t.apply_z(q);
              else if (pauli == 3) t.apply_y(q);
            };
            apply(ins.targets[i], pa);
            apply(ins.targets[i + 1], pb);
          }
        }
        break;
      case Gate::RESET_ERROR:
        // Radiation model (Sec. III-B): non-unitary reset with prob p.
        if (!noiseless_reference)
          for (auto q : ins.targets)
            if (rng.bernoulli(ins.args[0])) t.reset(q, rng);
        break;
      default:
        RADSURF_ASSERT_MSG(false, "unhandled instruction in tableau sim");
    }
  }
  RADSURF_ASSERT(rec == record.size());
  return record;
}

BitVec TableauSimulator::sample(Rng& rng) {
  return run(rng, /*noiseless_reference=*/false);
}

BitVec TableauSimulator::sample_with_erasure(
    Rng& rng, const std::vector<std::uint32_t>& corrupted) {
  return run(rng, /*noiseless_reference=*/false, &corrupted);
}

BitVec TableauSimulator::reference_sample() {
  Rng dummy(0);
  return run(dummy, /*noiseless_reference=*/true);
}

}  // namespace radsurf
