// Stabilizer tableau (Aaronson–Gottesman with destabilizers).
//
// Layout is column-major: for each qubit there is one X-bit column and one
// Z-bit column indexed by row (rows 0..n-1 are destabilizers, n..2n-1
// stabilizers), plus a sign column.  Unitary gates then update whole
// columns with a handful of word operations, independent of the number of
// rows they conceptually touch — the property that makes per-shot exact
// simulation affordable for the campaign engine (radiation faults are
// probabilistic resets, which a Pauli-frame simulator cannot express).
//
// Measurement follows the textbook algorithm: a random outcome replaces the
// pivot stabilizer with ±Z_q after multiplying it into every other row that
// anticommutes with Z_q; a deterministic outcome is read off the product of
// the stabilizer rows selected by the destabilizer X-column.
#pragma once

#include <cstdint>
#include <vector>

#include "stab/pauli.hpp"
#include "util/bitvec.hpp"
#include "util/rng.hpp"

namespace radsurf {

class Tableau {
 public:
  explicit Tableau(std::size_t num_qubits);

  std::size_t num_qubits() const { return n_; }

  /// Reset to |0...0> (destabilizers X_i, stabilizers Z_i).
  void reset_all();

  // --- unitary gates ------------------------------------------------------
  void apply_h(std::uint32_t q);
  void apply_s(std::uint32_t q);
  void apply_s_dag(std::uint32_t q);
  void apply_x(std::uint32_t q);
  void apply_y(std::uint32_t q);
  void apply_z(std::uint32_t q);
  void apply_cx(std::uint32_t c, std::uint32_t t);
  void apply_cz(std::uint32_t a, std::uint32_t b);
  void apply_swap(std::uint32_t a, std::uint32_t b);

  // --- non-unitary --------------------------------------------------------

  /// Z-basis measurement.  If the outcome is random, `rng` decides it
  /// unless `force_zero_if_random` is set (used by the reference sampler).
  /// `was_random`, if non-null, reports which case occurred.  `pivot_out`,
  /// if non-null, receives the pivot stabilizer row index of a random
  /// outcome (untouched when deterministic): after the call, destabilizer
  /// row (pivot - n) holds the pre-measurement pivot row — the Pauli that
  /// maps the outcome-0 post-measurement state to the outcome-1 one, which
  /// the herald-group promotion path exports as its collapse destabilizer.
  bool measure(std::uint32_t q, Rng& rng, bool force_zero_if_random = false,
               bool* was_random = nullptr, std::size_t* pivot_out = nullptr);

  /// Reset to |0>: measure, then flip if the outcome was 1.
  void reset(std::uint32_t q, Rng& rng);

  /// Expectation structure of measuring Z_q without collapsing:
  /// returns +1/-1 for deterministic outcomes, 0 for random.
  int peek_z(std::uint32_t q) const;

  // --- inspection (tests) -------------------------------------------------

  /// Row as a PauliString (row < n: destabilizer, else stabilizer).
  PauliString row(std::size_t r) const;

  /// Symplectic sanity: destab_i anticommutes with stab_i and commutes with
  /// every other row; rows are independent.  O(n^3) — tests only.
  bool is_valid() const;

 private:
  // Accumulate stabilizer row i into the scratch row.
  void scratch_accumulate(std::size_t i);
  // First stabilizer row with an X component on q, or 2n if none.
  std::size_t find_pivot(std::uint32_t q) const;
  // Multiply the pivot row into every other row with an X component on q,
  // all rows at once: Pauli components update with whole-word XORs and the
  // phase of every row accumulates in a packed 2-bit counter (cnt_lo_/
  // cnt_hi_ hold phase mod 4 per row, in units of i).
  void batched_pivot_elimination(std::uint32_t q, std::size_t pivot);

  std::size_t n_;
  std::vector<BitVec> xs_;  // per qubit, bit r = X component of row r
  std::vector<BitVec> zs_;  // per qubit, bit r = Z component of row r
  BitVec signs_;            // bit r = sign of row r

  // Scratch row for deterministic measurement (row-major over qubits).
  BitVec scratch_x_;
  BitVec scratch_z_;
  int scratch_phase_ = 0;  // mod 4

  // Reused buffers of batched_pivot_elimination (rows to update + packed
  // 2-bit phase counter); allocated once so measurements are allocation-free.
  BitVec update_mask_;
  BitVec cnt_lo_;
  BitVec cnt_hi_;
};

}  // namespace radsurf
