#include "stab/compact_tableau.hpp"

#include <bit>

#include "util/error.hpp"

namespace radsurf {

namespace {

// Exclusive prefix parity: bit i of the result is the XOR of bits < i of v.
inline std::uint64_t prefix_xor_exclusive(std::uint64_t v) {
  std::uint64_t x = v << 1;
  x ^= x << 1;
  x ^= x << 2;
  x ^= x << 4;
  x ^= x << 8;
  x ^= x << 16;
  x ^= x << 32;
  return x;
}

inline bool fires(const std::uint64_t threshold, Rng& rng) {
  return rng.next() <= threshold;
}

}  // namespace

CompactTableau::CompactTableau(std::size_t num_qubits)
    : n_(static_cast<std::uint32_t>(num_qubits)) {
  RADSURF_CHECK_ARG(num_qubits > 0 && num_qubits <= kMaxQubits,
                    "CompactTableau supports 1.." << kMaxQubits
                                                  << " qubits, got "
                                                  << num_qubits);
  stab_mask_ = ((n_ == kMaxQubits ? 0 : (std::uint64_t{1} << (2 * n_))) -
                (std::uint64_t{1} << n_));
  reset_all();
}

void CompactTableau::reset_all() {
  for (std::uint32_t q = 0; q < n_; ++q) {
    xcol_[q] = std::uint64_t{1} << q;         // destabilizer q = X_q
    zcol_[q] = std::uint64_t{1} << (n_ + q);  // stabilizer q = Z_q
  }
  signs_ = 0;
  known_ = n_ == 32 ? 0xffffffffu : ((1u << n_) - 1);
  value_ = 0;
}

void CompactTableau::apply_h(std::uint32_t q) {
  signs_ ^= xcol_[q] & zcol_[q];
  std::swap(xcol_[q], zcol_[q]);
  known_ &= ~(1u << q);
}

void CompactTableau::apply_s(std::uint32_t q) {
  signs_ ^= xcol_[q] & zcol_[q];
  zcol_[q] ^= xcol_[q];
}

void CompactTableau::apply_s_dag(std::uint32_t q) {
  apply_s(q);
  apply_z(q);
}

void CompactTableau::apply_x(std::uint32_t q) {
  signs_ ^= zcol_[q];
  value_ ^= 1u << q;
}

void CompactTableau::apply_z(std::uint32_t q) { signs_ ^= xcol_[q]; }

void CompactTableau::apply_y(std::uint32_t q) {
  signs_ ^= xcol_[q] ^ zcol_[q];
  value_ ^= 1u << q;
}

void CompactTableau::apply_cx(std::uint32_t c, std::uint32_t t) {
  signs_ ^= xcol_[c] & zcol_[t] & ~(xcol_[t] ^ zcol_[c]);
  xcol_[t] ^= xcol_[c];
  zcol_[c] ^= zcol_[t];
  // Z_t value: t' = t XOR c when the control's Z is classical, otherwise
  // unknown.  Z_c is untouched (Z on the control commutes with CX).
  if (known_ & (1u << c)) {
    value_ ^= ((value_ >> c) & 1u) << t;
  } else {
    known_ &= ~(1u << t);
  }
}

void CompactTableau::apply_cz(std::uint32_t a, std::uint32_t b) {
  // Bit-identical to the generic H(b); CX(a,b); H(b) composition (the sign
  // term algebraically reduces to xa & xb & (za ^ zb)); Z values commute
  // through, so known bits survive.
  signs_ ^= xcol_[a] & xcol_[b] & (zcol_[a] ^ zcol_[b]);
  zcol_[a] ^= xcol_[b];
  zcol_[b] ^= xcol_[a];
}

void CompactTableau::apply_swap(std::uint32_t a, std::uint32_t b) {
  std::swap(xcol_[a], xcol_[b]);
  std::swap(zcol_[a], zcol_[b]);
  const std::uint32_t ka = (known_ >> a) & 1u, kb = (known_ >> b) & 1u;
  const std::uint32_t va = (value_ >> a) & 1u, vb = (value_ >> b) & 1u;
  known_ = (known_ & ~((1u << a) | (1u << b))) | (kb << a) | (ka << b);
  value_ = (value_ & ~((1u << a) | (1u << b))) | (vb << a) | (va << b);
}

bool CompactTableau::deterministic_outcome(std::uint32_t q) {
  // Sign of the product of the stabilizer rows selected by the
  // destabilizer X column, accumulated in Aaronson–Gottesman row order.
  const std::uint64_t low_mask = (std::uint64_t{1} << n_) - 1;
  const std::uint64_t sel = (xcol_[q] & low_mask) << n_;
  // Products of zero or one stabilizer rows carry no g-phase: the outcome
  // is the selected row's sign bit (or +1) — the common case for syndrome
  // ancillas.
  if ((sel & (sel - 1)) == 0) return (signs_ & sel) != 0;
  int phase = 2 * std::popcount(signs_ & sel);
  for (std::uint32_t k = 0; k < n_; ++k) {
    const std::uint64_t x1 = xcol_[k] & sel;
    const std::uint64_t z1 = zcol_[k] & sel;
    if (!(x1 | z1)) continue;
    // Exclusive prefix parities stand in for the accumulated scratch Pauli
    // at each row; the g-phase masks mirror pauli_mul_phase(row, scratch).
    const std::uint64_t x2 = prefix_xor_exclusive(x1);
    const std::uint64_t z2 = prefix_xor_exclusive(z1);
    const std::uint64_t plus = (x1 & ~z1 & x2 & z2) |
                               (x1 & z1 & ~x2 & z2) |
                               (~x1 & z1 & x2 & ~z2);
    const std::uint64_t minus = (x1 & ~z1 & ~x2 & z2) |
                                (x1 & z1 & x2 & ~z2) |
                                (~x1 & z1 & x2 & z2);
    phase += std::popcount(plus) - std::popcount(minus);
  }
  phase &= 3;
  RADSURF_ASSERT_MSG((phase & 1) == 0,
                     "deterministic measurement with imaginary phase");
  return phase == 2;
}

bool CompactTableau::measure(std::uint32_t q, Rng& rng) {
  if (known_ & (1u << q)) return (value_ >> q) & 1u;

  const std::uint64_t stab_x = xcol_[q] & stab_mask_;
  if (stab_x == 0) {
    const bool outcome = deterministic_outcome(q);
    known_ |= 1u << q;
    value_ = (value_ & ~(1u << q)) | (std::uint32_t{outcome} << q);
    return outcome;
  }

  // Random outcome: batched pivot elimination on single words.
  const auto pivot =
      static_cast<std::uint32_t>(std::countr_zero(stab_x));
  const std::uint64_t pivot_bit = std::uint64_t{1} << pivot;
  const std::uint64_t m = xcol_[q] & ~pivot_bit;
  if (m != 0) {
    const std::uint64_t pivot_sign =
        (signs_ & pivot_bit) ? ~std::uint64_t{0} : 0;
    std::uint64_t lo = 0;
    std::uint64_t hi = (signs_ ^ pivot_sign) & m;
    for (std::uint32_t k = 0; k < n_; ++k) {
      const bool xp = (xcol_[k] & pivot_bit) != 0;
      const bool zp = (zcol_[k] & pivot_bit) != 0;
      if (!xp && !zp) continue;
      const std::uint64_t x2 = xcol_[k];
      const std::uint64_t z2 = zcol_[k];
      std::uint64_t plus, minus;
      if (xp && zp) {        // pivot Y: +1 on Z rows, -1 on X rows
        plus = z2 & ~x2;
        minus = x2 & ~z2;
      } else if (xp) {       // pivot X: +1 on Y rows, -1 on Z rows
        plus = x2 & z2;
        minus = z2 & ~x2;
      } else {               // pivot Z: +1 on X rows, -1 on Y rows
        plus = x2 & ~z2;
        minus = x2 & z2;
      }
      plus &= m;
      minus &= m;
      const std::uint64_t carry = lo & plus;
      lo ^= plus;
      hi ^= carry;
      const std::uint64_t borrow = ~lo & minus;
      lo ^= minus;
      hi ^= borrow;
      if (xp) xcol_[k] ^= m;
      if (zp) zcol_[k] ^= m;
    }
    RADSURF_ASSERT_MSG((lo & stab_mask_ & m) == 0,
                       "stabilizer rowsum produced imaginary phase");
    signs_ = (signs_ & ~m) | (hi & m);
  }

  // Destabilizer paired with pivot := old pivot row, and pivot row := +/-
  // Z_q with the measured sign — fused into one pass over the columns.
  const std::uint32_t d = pivot - n_;
  const std::uint64_t d_bit = std::uint64_t{1} << d;
  const std::uint64_t clear_both = ~(d_bit | pivot_bit);
  for (std::uint32_t k = 0; k < n_; ++k) {
    const std::uint64_t x = xcol_[k];
    const std::uint64_t z = zcol_[k];
    xcol_[k] = (x & clear_both) | (((x >> pivot) & 1u) << d);
    zcol_[k] = (z & clear_both) | (((z >> pivot) & 1u) << d);
  }
  const bool outcome = rng.next() & 1;
  zcol_[q] |= pivot_bit;
  signs_ = (signs_ & clear_both) | (((signs_ >> pivot) & 1u) << d) |
           (outcome ? pivot_bit : std::uint64_t{0});

  known_ |= 1u << q;
  value_ = (value_ & ~(1u << q)) | (std::uint32_t{outcome} << q);
  return outcome;
}

void CompactTableau::reset(std::uint32_t q, Rng& rng) {
  if (measure(q, rng)) apply_x(q);
}

CompactTableauSimulator::CompactTableauSimulator(
    std::shared_ptr<const CircuitTape> tape)
    : tape_(std::move(tape)), tableau_(tape_->num_qubits) {}

void CompactTableauSimulator::sample_into(Rng& rng, BitVec& record) {
  run(rng, nullptr, record, nullptr);
}

void CompactTableauSimulator::sample_with_erasure_into(
    Rng& rng, const std::vector<std::uint32_t>& corrupted, BitVec& record) {
  run(rng, &corrupted, record, nullptr);
}

void CompactTableauSimulator::sample_replay_into(
    Rng& rng, const std::vector<std::uint32_t>* corrupted,
    const ReplayConstraint& constraint, BitVec& record) {
  run(rng, corrupted, record, &constraint);
}

void CompactTableauSimulator::run(Rng& rng,
                                  const std::vector<std::uint32_t>* corrupted,
                                  BitVec& record,
                                  const ReplayConstraint* constraint) {
  CompactTableau& t = tableau_;
  t.reset_all();
  RADSURF_ASSERT(record.size() == tape_->num_measurements);
  record.clear();
  std::size_t rec = 0;
  ReplayConstraintCursor cursor{constraint, 0, 0};

  std::size_t strike_at = std::size_t(-1);
  if (corrupted && !corrupted->empty() && tape_->num_physical_ops > 0) {
    strike_at = (constraint && constraint->has_strike)
                    ? constraint->strike_ordinal
                    : rng.below(tape_->num_physical_ops);
  }
  std::size_t physical_ordinal = 0;

  auto apply_one_qubit_pauli_noise = [&](std::uint32_t q,
                                         std::uint64_t threshold) {
    if (!fires(threshold, rng)) return;
    switch (rng.below(3)) {
      case 0: t.apply_x(q); break;
      case 1: t.apply_y(q); break;
      default: t.apply_z(q); break;
    }
  };

  for (const CircuitTape::Op& op : tape_->ops) {
    const std::uint32_t* tg = tape_->targets.data() + op.first;
    const std::uint32_t nt = op.count;

    if (op.is_physical) {
      if (physical_ordinal == strike_at)
        for (std::uint32_t q : *corrupted) t.reset(q, rng);
      ++physical_ordinal;
    }

    switch (op.gate) {
      case Gate::I:
        break;
      case Gate::X:
        for (std::uint32_t i = 0; i < nt; ++i) t.apply_x(tg[i]);
        break;
      case Gate::Y:
        for (std::uint32_t i = 0; i < nt; ++i) t.apply_y(tg[i]);
        break;
      case Gate::Z:
        for (std::uint32_t i = 0; i < nt; ++i) t.apply_z(tg[i]);
        break;
      case Gate::H:
        for (std::uint32_t i = 0; i < nt; ++i) t.apply_h(tg[i]);
        break;
      case Gate::S:
        for (std::uint32_t i = 0; i < nt; ++i) t.apply_s(tg[i]);
        break;
      case Gate::S_DAG:
        for (std::uint32_t i = 0; i < nt; ++i) t.apply_s_dag(tg[i]);
        break;
      case Gate::CX:
        for (std::uint32_t i = 0; i + 1 < nt; i += 2)
          t.apply_cx(tg[i], tg[i + 1]);
        break;
      case Gate::CZ:
        for (std::uint32_t i = 0; i + 1 < nt; i += 2)
          t.apply_cz(tg[i], tg[i + 1]);
        break;
      case Gate::SWAP:
        for (std::uint32_t i = 0; i + 1 < nt; i += 2)
          t.apply_swap(tg[i], tg[i + 1]);
        break;
      case Gate::M:
        for (std::uint32_t i = 0; i < nt; ++i)
          record.set(rec++, t.measure(tg[i], rng));
        break;
      case Gate::R:
        for (std::uint32_t i = 0; i < nt; ++i) t.reset(tg[i], rng);
        break;
      case Gate::MR:
        for (std::uint32_t i = 0; i < nt; ++i) {
          const bool m = t.measure(tg[i], rng);
          record.set(rec++, m);
          if (m) t.apply_x(tg[i]);
        }
        break;
      case Gate::X_ERROR:
        for (std::uint32_t i = 0; i < nt; ++i)
          if (fires(op.threshold, rng)) t.apply_x(tg[i]);
        break;
      case Gate::Y_ERROR:
        for (std::uint32_t i = 0; i < nt; ++i)
          if (fires(op.threshold, rng)) t.apply_y(tg[i]);
        break;
      case Gate::Z_ERROR:
        for (std::uint32_t i = 0; i < nt; ++i)
          if (fires(op.threshold, rng)) t.apply_z(tg[i]);
        break;
      case Gate::DEPOLARIZE1:
      case Gate::DEPOLARIZE2:
        for (std::uint32_t i = 0; i < nt; ++i)
          apply_one_qubit_pauli_noise(tg[i], op.threshold);
        break;
      case Gate::DEPOLARIZE2_UNIFORM:
        for (std::uint32_t i = 0; i + 1 < nt; i += 2) {
          if (!fires(op.threshold, rng)) continue;
          const auto k = rng.below(15) + 1;
          const auto pa = static_cast<int>(k % 4);
          const auto pb = static_cast<int>(k / 4);
          auto apply = [&](std::uint32_t q, int pauli) {
            if (pauli == 1) t.apply_x(q);
            else if (pauli == 2) t.apply_z(q);
            else if (pauli == 3) t.apply_y(q);
          };
          apply(tg[i], pa);
          apply(tg[i + 1], pb);
        }
        break;
      case Gate::RESET_ERROR:
        for (std::uint32_t i = 0; i < nt; ++i) {
          bool fired;
          if (!cursor.pinned(op.site_base + i, fired))
            fired = fires(op.threshold, rng);
          if (fired) t.reset(tg[i], rng);
        }
        break;
      default:
        RADSURF_ASSERT_MSG(false, "unhandled instruction in compact sim");
    }
  }
  RADSURF_ASSERT(rec == record.size());
}

}  // namespace radsurf
