#include "stab/compact_tableau.hpp"

#include <algorithm>
#include <bit>

#include "stab/simd.hpp"
#include "util/error.hpp"

namespace radsurf {

namespace {

// Exclusive prefix parity: bit i of the result is the XOR of bits < i of v.
inline std::uint64_t prefix_xor_exclusive(std::uint64_t v) {
  std::uint64_t x = v << 1;
  x ^= x << 1;
  x ^= x << 2;
  x ^= x << 4;
  x ^= x << 8;
  x ^= x << 16;
  x ^= x << 32;
  return x;
}

inline bool fires(const std::uint64_t threshold, Rng& rng) {
  return rng.next() <= threshold;
}

// Ascending set-bit iteration over a word mask.
template <class Fn>
inline void for_each_bit(std::uint64_t mask, Fn&& fn) {
  while (mask != 0) {
    fn(static_cast<std::uint32_t>(std::countr_zero(mask)));
    mask &= mask - 1;
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// CompactTableau — single word per column, n <= 31
// ---------------------------------------------------------------------------

CompactTableau::CompactTableau(std::size_t num_qubits)
    : n_(static_cast<std::uint32_t>(num_qubits)) {
  RADSURF_CHECK_ARG(num_qubits > 0 && num_qubits <= kMaxQubits,
                    "CompactTableau supports 1.." << kMaxQubits
                                                  << " qubits, got "
                                                  << num_qubits);
  // 2n + 1 <= 63 < 64: every row index, including a scratch row at bit 2n,
  // stays strictly inside one word (devices past 31 qubits take the
  // word-sliced WideTableau instead).
  stab_mask_ = (std::uint64_t{1} << (2 * n_)) - (std::uint64_t{1} << n_);
  reset_all();
}

void CompactTableau::reset_all() {
  for (std::uint32_t q = 0; q < n_; ++q) {
    xcol_[q] = std::uint64_t{1} << q;         // destabilizer q = X_q
    zcol_[q] = std::uint64_t{1} << (n_ + q);  // stabilizer q = Z_q
  }
  signs_ = 0;
  known_ = (1u << n_) - 1;
  value_ = 0;
}

void CompactTableau::apply_h(std::uint32_t q) {
  signs_ ^= xcol_[q] & zcol_[q];
  std::swap(xcol_[q], zcol_[q]);
  known_ &= ~(1u << q);
}

void CompactTableau::apply_s(std::uint32_t q) {
  signs_ ^= xcol_[q] & zcol_[q];
  zcol_[q] ^= xcol_[q];
}

void CompactTableau::apply_s_dag(std::uint32_t q) {
  apply_s(q);
  apply_z(q);
}

void CompactTableau::apply_x(std::uint32_t q) {
  signs_ ^= zcol_[q];
  value_ ^= 1u << q;
}

void CompactTableau::apply_z(std::uint32_t q) { signs_ ^= xcol_[q]; }

void CompactTableau::apply_y(std::uint32_t q) {
  signs_ ^= xcol_[q] ^ zcol_[q];
  value_ ^= 1u << q;
}

void CompactTableau::apply_cx(std::uint32_t c, std::uint32_t t) {
  signs_ ^= xcol_[c] & zcol_[t] & ~(xcol_[t] ^ zcol_[c]);
  xcol_[t] ^= xcol_[c];
  zcol_[c] ^= zcol_[t];
  // Z_t value: t' = t XOR c when the control's Z is classical, otherwise
  // unknown.  Z_c is untouched (Z on the control commutes with CX).
  if (known_ & (1u << c)) {
    value_ ^= ((value_ >> c) & 1u) << t;
  } else {
    known_ &= ~(1u << t);
  }
}

void CompactTableau::apply_cz(std::uint32_t a, std::uint32_t b) {
  // Bit-identical to the generic H(b); CX(a,b); H(b) composition (the sign
  // term algebraically reduces to xa & xb & (za ^ zb)); Z values commute
  // through, so known bits survive.
  signs_ ^= xcol_[a] & xcol_[b] & (zcol_[a] ^ zcol_[b]);
  zcol_[a] ^= xcol_[b];
  zcol_[b] ^= xcol_[a];
}

void CompactTableau::apply_swap(std::uint32_t a, std::uint32_t b) {
  std::swap(xcol_[a], xcol_[b]);
  std::swap(zcol_[a], zcol_[b]);
  const std::uint32_t ka = (known_ >> a) & 1u, kb = (known_ >> b) & 1u;
  const std::uint32_t va = (value_ >> a) & 1u, vb = (value_ >> b) & 1u;
  known_ = (known_ & ~((1u << a) | (1u << b))) | (kb << a) | (ka << b);
  value_ = (value_ & ~((1u << a) | (1u << b))) | (vb << a) | (va << b);
}

bool CompactTableau::deterministic_outcome(std::uint32_t q) {
  // Sign of the product of the stabilizer rows selected by the
  // destabilizer X column, accumulated in Aaronson–Gottesman row order.
  const std::uint64_t low_mask = (std::uint64_t{1} << n_) - 1;
  const std::uint64_t sel = (xcol_[q] & low_mask) << n_;
  // Products of zero or one stabilizer rows carry no g-phase: the outcome
  // is the selected row's sign bit (or +1) — the common case for syndrome
  // ancillas.
  if ((sel & (sel - 1)) == 0) return (signs_ & sel) != 0;
  int phase = 2 * std::popcount(signs_ & sel);
  for (std::uint32_t k = 0; k < n_; ++k) {
    const std::uint64_t x1 = xcol_[k] & sel;
    const std::uint64_t z1 = zcol_[k] & sel;
    if (!(x1 | z1)) continue;
    // Exclusive prefix parities stand in for the accumulated scratch Pauli
    // at each row; the g-phase masks mirror pauli_mul_phase(row, scratch).
    const std::uint64_t x2 = prefix_xor_exclusive(x1);
    const std::uint64_t z2 = prefix_xor_exclusive(z1);
    const std::uint64_t plus = (x1 & ~z1 & x2 & z2) |
                               (x1 & z1 & ~x2 & z2) |
                               (~x1 & z1 & x2 & ~z2);
    const std::uint64_t minus = (x1 & ~z1 & ~x2 & z2) |
                                (x1 & z1 & x2 & ~z2) |
                                (~x1 & z1 & x2 & z2);
    phase += std::popcount(plus) - std::popcount(minus);
  }
  phase &= 3;
  RADSURF_ASSERT_MSG((phase & 1) == 0,
                     "deterministic measurement with imaginary phase");
  return phase == 2;
}

bool CompactTableau::measure(std::uint32_t q, Rng& rng) {
  if (known_ & (1u << q)) return (value_ >> q) & 1u;

  const std::uint64_t stab_x = xcol_[q] & stab_mask_;
  if (stab_x == 0) {
    const bool outcome = deterministic_outcome(q);
    known_ |= 1u << q;
    value_ = (value_ & ~(1u << q)) | (std::uint32_t{outcome} << q);
    return outcome;
  }

  // Random outcome: batched pivot elimination on single words.
  const auto pivot =
      static_cast<std::uint32_t>(std::countr_zero(stab_x));
  const std::uint64_t pivot_bit = std::uint64_t{1} << pivot;
  const std::uint64_t m = xcol_[q] & ~pivot_bit;
  if (m != 0) {
    const std::uint64_t pivot_sign =
        (signs_ & pivot_bit) ? ~std::uint64_t{0} : 0;
    std::uint64_t lo = 0;
    std::uint64_t hi = (signs_ ^ pivot_sign) & m;
    for (std::uint32_t k = 0; k < n_; ++k) {
      const bool xp = (xcol_[k] & pivot_bit) != 0;
      const bool zp = (zcol_[k] & pivot_bit) != 0;
      if (!xp && !zp) continue;
      const std::uint64_t x2 = xcol_[k];
      const std::uint64_t z2 = zcol_[k];
      std::uint64_t plus, minus;
      if (xp && zp) {        // pivot Y: +1 on Z rows, -1 on X rows
        plus = z2 & ~x2;
        minus = x2 & ~z2;
      } else if (xp) {       // pivot X: +1 on Y rows, -1 on Z rows
        plus = x2 & z2;
        minus = z2 & ~x2;
      } else {               // pivot Z: +1 on X rows, -1 on Y rows
        plus = x2 & ~z2;
        minus = x2 & z2;
      }
      plus &= m;
      minus &= m;
      const std::uint64_t carry = lo & plus;
      lo ^= plus;
      hi ^= carry;
      const std::uint64_t borrow = ~lo & minus;
      lo ^= minus;
      hi ^= borrow;
      if (xp) xcol_[k] ^= m;
      if (zp) zcol_[k] ^= m;
    }
    RADSURF_ASSERT_MSG((lo & stab_mask_ & m) == 0,
                       "stabilizer rowsum produced imaginary phase");
    signs_ = (signs_ & ~m) | (hi & m);
  }

  // Destabilizer paired with pivot := old pivot row, and pivot row := +/-
  // Z_q with the measured sign — fused into one pass over the columns.
  const std::uint32_t d = pivot - n_;
  const std::uint64_t d_bit = std::uint64_t{1} << d;
  const std::uint64_t clear_both = ~(d_bit | pivot_bit);
  for (std::uint32_t k = 0; k < n_; ++k) {
    const std::uint64_t x = xcol_[k];
    const std::uint64_t z = zcol_[k];
    xcol_[k] = (x & clear_both) | (((x >> pivot) & 1u) << d);
    zcol_[k] = (z & clear_both) | (((z >> pivot) & 1u) << d);
  }
  const bool outcome = rng.next() & 1;
  zcol_[q] |= pivot_bit;
  signs_ = (signs_ & clear_both) | (((signs_ >> pivot) & 1u) << d) |
           (outcome ? pivot_bit : std::uint64_t{0});

  known_ |= 1u << q;
  value_ = (value_ & ~(1u << q)) | (std::uint32_t{outcome} << q);
  return outcome;
}

void CompactTableau::reset(std::uint32_t q, Rng& rng) {
  if (measure(q, rng)) apply_x(q);
}

// ---------------------------------------------------------------------------
// WideTableau — W = ceil(2n / 64) words per column
// ---------------------------------------------------------------------------

WideTableau::WideTableau(std::size_t num_qubits)
    : n_(static_cast<std::uint32_t>(num_qubits)),
      words_(static_cast<std::uint32_t>((2 * num_qubits + 63) / 64)),
      kwords_(static_cast<std::uint32_t>((num_qubits + 63) / 64)),
      cwords_(static_cast<std::uint32_t>((num_qubits + 63) / 64)) {
  RADSURF_CHECK_ARG(num_qubits > 0 &&
                        num_qubits <= CompactTableauSimulator::kMaxSupportedQubits,
                    "WideTableau supports 1.."
                        << CompactTableauSimulator::kMaxSupportedQubits
                        << " qubits, got " << num_qubits);
  xcols_.assign(static_cast<std::size_t>(n_) * words_, 0);
  zcols_.assign(static_cast<std::size_t>(n_) * words_, 0);
  signs_.assign(words_, 0);
  stab_mask_.assign(words_, 0);
  for (std::uint32_t r = n_; r < 2 * n_; ++r)
    stab_mask_[r >> 6] |= std::uint64_t{1} << (r & 63);
  known_.assign(kwords_, 0);
  value_.assign(kwords_, 0);
  xmask_.assign(n_, 0);
  zmask_.assign(n_, 0);
  occ_x_.assign(static_cast<std::size_t>(words_) * cwords_, 0);
  occ_z_.assign(static_cast<std::size_t>(words_) * cwords_, 0);
  m_.assign(words_, 0);
  lo_.assign(words_, 0);
  hi_.assign(words_, 0);
  sel_.assign(words_, 0);
  cand_.assign(cwords_, 0);
  reset_all();
}

void WideTableau::reset_all() {
  std::fill(xcols_.begin(), xcols_.end(), 0);
  std::fill(zcols_.begin(), zcols_.end(), 0);
  std::fill(signs_.begin(), signs_.end(), 0);
  std::fill(xmask_.begin(), xmask_.end(), 0);
  std::fill(zmask_.begin(), zmask_.end(), 0);
  std::fill(occ_x_.begin(), occ_x_.end(), 0);
  std::fill(occ_z_.begin(), occ_z_.end(), 0);
  for (std::uint32_t q = 0; q < n_; ++q) {
    xcol(q)[q >> 6] = std::uint64_t{1} << (q & 63);               // X_q
    zcol(q)[(n_ + q) >> 6] |= std::uint64_t{1} << ((n_ + q) & 63);  // Z_q
    sync_x(q, q >> 6);
    sync_z(q, (n_ + q) >> 6);
  }
  std::fill(known_.begin(), known_.end(), 0);
  for (std::uint32_t q = 0; q < n_; ++q)
    known_[q >> 6] |= std::uint64_t{1} << (q & 63);
  std::fill(value_.begin(), value_.end(), 0);
}

void WideTableau::apply_h(std::uint32_t q) {
  std::uint64_t* x = xcol(q);
  std::uint64_t* z = zcol(q);
  for_each_bit(xmask_[q] | zmask_[q], [&](std::uint32_t w) {
    signs_[w] ^= x[w] & z[w];
    std::swap(x[w], z[w]);
    sync_x(q, w);
    sync_z(q, w);
  });
  clear_known(q);
}

void WideTableau::apply_s(std::uint32_t q) {
  std::uint64_t* x = xcol(q);
  std::uint64_t* z = zcol(q);
  for_each_bit(xmask_[q], [&](std::uint32_t w) {
    signs_[w] ^= x[w] & z[w];
    z[w] ^= x[w];
    sync_z(q, w);
  });
}

void WideTableau::apply_s_dag(std::uint32_t q) {
  apply_s(q);
  apply_z(q);
}

void WideTableau::apply_x(std::uint32_t q) {
  const std::uint64_t* z = zcol(q);
  for_each_bit(zmask_[q], [&](std::uint32_t w) { signs_[w] ^= z[w]; });
  flip_value(q);
}

void WideTableau::apply_z(std::uint32_t q) {
  const std::uint64_t* x = xcol(q);
  for_each_bit(xmask_[q], [&](std::uint32_t w) { signs_[w] ^= x[w]; });
}

void WideTableau::apply_y(std::uint32_t q) {
  const std::uint64_t* x = xcol(q);
  const std::uint64_t* z = zcol(q);
  for_each_bit(xmask_[q] | zmask_[q],
               [&](std::uint32_t w) { signs_[w] ^= x[w] ^ z[w]; });
  flip_value(q);
}

void WideTableau::apply_cx(std::uint32_t c, std::uint32_t t) {
  std::uint64_t* xc = xcol(c);
  std::uint64_t* zc = zcol(c);
  std::uint64_t* xt = xcol(t);
  std::uint64_t* zt = zcol(t);
  // Only words where the control has X or the target has Z support can
  // change anything (the sign term needs both, the column updates one each).
  for_each_bit(xmask_[c] | zmask_[t], [&](std::uint32_t w) {
    signs_[w] ^= xc[w] & zt[w] & ~(xt[w] ^ zc[w]);
    xt[w] ^= xc[w];
    zc[w] ^= zt[w];
    sync_x(t, w);
    sync_z(c, w);
  });
  if (known_bit(c)) {
    if (value_bit(c)) flip_value(t);
  } else {
    clear_known(t);
  }
}

void WideTableau::apply_cz(std::uint32_t a, std::uint32_t b) {
  std::uint64_t* xa = xcol(a);
  std::uint64_t* za = zcol(a);
  std::uint64_t* xb = xcol(b);
  std::uint64_t* zb = zcol(b);
  for_each_bit(xmask_[a] | xmask_[b], [&](std::uint32_t w) {
    signs_[w] ^= xa[w] & xb[w] & (za[w] ^ zb[w]);
    za[w] ^= xb[w];
    zb[w] ^= xa[w];
    sync_z(a, w);
    sync_z(b, w);
  });
}

void WideTableau::apply_swap(std::uint32_t a, std::uint32_t b) {
  std::uint64_t* xa = xcol(a);
  std::uint64_t* za = zcol(a);
  std::uint64_t* xb = xcol(b);
  std::uint64_t* zb = zcol(b);
  for_each_bit(xmask_[a] | xmask_[b] | zmask_[a] | zmask_[b],
               [&](std::uint32_t w) {
                 std::swap(xa[w], xb[w]);
                 std::swap(za[w], zb[w]);
                 sync_x(a, w);
                 sync_x(b, w);
                 sync_z(a, w);
                 sync_z(b, w);
               });
  const bool ka = known_bit(a), kb = known_bit(b);
  const bool va = value_bit(a), vb = value_bit(b);
  clear_known(a);
  clear_known(b);
  if (kb) set_known(a, vb);
  if (ka) set_known(b, va);
}

bool WideTableau::deterministic_outcome(std::uint32_t q) {
  // sel = the destabilizer X bits of column q, shifted up by n rows: the
  // stabilizer rows whose product fixes Z_q.
  const std::uint64_t* x = xcol(q);
  const std::uint32_t shift_words = n_ >> 6;
  const std::uint32_t shift_bits = n_ & 63;
  std::fill(sel_.begin(), sel_.end(), 0);
  int selected = 0;
  const std::uint32_t last_low = (n_ - 1) >> 6;
  for_each_bit(xmask_[q] & ((std::uint64_t{2} << last_low) - 1),
               [&](std::uint32_t w) {
                 std::uint64_t v = x[w];
                 // Mask off any stabilizer-region bits sharing the word
                 // with row n-1.
                 const std::uint32_t base = w << 6;
                 if (base + 64 > n_)
                   v &= (std::uint64_t{1} << (n_ - base)) - 1;
                 if (v == 0) return;
                 selected += std::popcount(v);
                 sel_[w + shift_words] |= v << shift_bits;
                 if (shift_bits != 0 && w + shift_words + 1 < words_)
                   sel_[w + shift_words + 1] |= v >> (64 - shift_bits);
               });
  // Products of zero or one stabilizer rows carry no g-phase.
  if (selected == 0) return false;
  std::uint64_t selmask = 0;
  for (std::uint32_t w = 0; w < words_; ++w)
    if (sel_[w] != 0) selmask |= std::uint64_t{1} << w;
  int phase = 0;
  for_each_bit(selmask, [&](std::uint32_t w) {
    phase += std::popcount(signs_[w] & sel_[w]);
  });
  if (selected == 1) return phase != 0;
  phase *= 2;
  // Candidate columns: any with support in a selected-row word.  Columns
  // outside the union contribute nothing (x1 = z1 = 0 in every word).
  std::fill(cand_.begin(), cand_.end(), 0);
  for_each_bit(selmask, [&](std::uint32_t w) {
    const std::uint64_t* ox = occ_x_.data() +
                              static_cast<std::size_t>(w) * cwords_;
    const std::uint64_t* oz = occ_z_.data() +
                              static_cast<std::size_t>(w) * cwords_;
    for (std::uint32_t cw = 0; cw < cwords_; ++cw)
      cand_[cw] |= ox[cw] | oz[cw];
  });
  for (std::uint32_t cw = 0; cw < cwords_; ++cw) {
    for_each_bit(cand_[cw], [&](std::uint32_t cb) {
      const std::uint32_t k = (cw << 6) + cb;
      const std::uint64_t* xk = xcol(k);
      const std::uint64_t* zk = zcol(k);
      // Exclusive prefix parities carried across word boundaries stand in
      // for the accumulated scratch Pauli at each row.  Words with no
      // selected bits in this column leave both the phase and the carries
      // untouched, so the walk visits only the column's selected words,
      // ascending.
      std::uint64_t carry_x = 0, carry_z = 0;  // 0 or ~0: lower-word parity
      for_each_bit((xmask_[k] | zmask_[k]) & selmask, [&](std::uint32_t w) {
        const std::uint64_t x1 = xk[w] & sel_[w];
        const std::uint64_t z1 = zk[w] & sel_[w];
        if (!(x1 | z1)) return;
        const std::uint64_t x2 = prefix_xor_exclusive(x1) ^ carry_x;
        const std::uint64_t z2 = prefix_xor_exclusive(z1) ^ carry_z;
        const std::uint64_t plus = (x1 & ~z1 & x2 & z2) |
                                   (x1 & z1 & ~x2 & z2) |
                                   (~x1 & z1 & x2 & ~z2);
        const std::uint64_t minus = (x1 & ~z1 & ~x2 & z2) |
                                    (x1 & z1 & x2 & ~z2) |
                                    (~x1 & z1 & x2 & z2);
        phase += std::popcount(plus) - std::popcount(minus);
        if (std::popcount(x1) & 1) carry_x = ~carry_x;
        if (std::popcount(z1) & 1) carry_z = ~carry_z;
      });
    });
  }
  phase &= 3;
  RADSURF_ASSERT_MSG((phase & 1) == 0,
                     "deterministic measurement with imaginary phase");
  return phase == 2;
}

bool WideTableau::measure(std::uint32_t q, Rng& rng) {
  if (known_bit(q)) return value_bit(q);

  std::uint64_t* x = xcol(q);
  std::uint32_t pivot = 2 * n_;  // sentinel: no stabilizer X component
  {
    const std::uint32_t w0 = n_ >> 6;
    std::uint64_t hm = xmask_[q] & ~((std::uint64_t{1} << w0) - 1);
    while (hm != 0) {
      const auto w = static_cast<std::uint32_t>(std::countr_zero(hm));
      const std::uint64_t t = x[w] & stab_mask_[w];
      if (t != 0) {
        pivot = (w << 6) + static_cast<std::uint32_t>(std::countr_zero(t));
        break;
      }
      hm &= hm - 1;
    }
  }
  if (pivot == 2 * n_) {
    const bool outcome = deterministic_outcome(q);
    set_known(q, outcome);
    return outcome;
  }

  // Random outcome: batched pivot elimination on word slices, visiting
  // only the columns occupying the pivot word (occ rows) and only the
  // words of the measured column's support (m words).
  const std::uint32_t pw = pivot >> 6, pb = pivot & 63;
  const std::uint64_t pivot_bit = std::uint64_t{1} << pb;
  std::fill(m_.begin(), m_.end(), 0);
  std::uint64_t mmask = 0;
  for_each_bit(xmask_[q], [&](std::uint32_t w) {
    std::uint64_t v = x[w];
    if (w == pw) v &= ~pivot_bit;
    m_[w] = v;
    if (v != 0) mmask |= std::uint64_t{1} << w;
  });
  // Scan the pivot-word occupancy window once: it covers every column the
  // pivot row touches (support(pivot row) by definition occupies word pw).
  // The scan both runs the elimination kernel on anticommuting columns and
  // records the support list, which the row move below reuses — elimination
  // never flips pivot-row bits (m excludes the pivot bit), so the list
  // stays exact.
  hitk_.clear();
  {
    const bool eliminate = mmask != 0;
    std::uint32_t w_lo = 0, w_hi = 0;
    if (eliminate) {
      const std::uint64_t pivot_sign =
          (signs_[pw] & pivot_bit) ? ~std::uint64_t{0} : 0;
      for_each_bit(mmask, [&](std::uint32_t w) {
        lo_[w] = 0;
        hi_[w] = (signs_[w] ^ pivot_sign) & m_[w];
      });
      // Contiguous hull of the m support: interior gap words have m = 0 and
      // are no-ops, which lets the kernel run branch-free (and vectorized).
      w_lo = static_cast<std::uint32_t>(std::countr_zero(mmask));
      w_hi = static_cast<std::uint32_t>(64 - std::countl_zero(mmask));
    }
    const std::uint64_t* ox =
        occ_x_.data() + static_cast<std::size_t>(pw) * cwords_;
    const std::uint64_t* oz =
        occ_z_.data() + static_cast<std::size_t>(pw) * cwords_;
    for (std::uint32_t cw = 0; cw < cwords_; ++cw) {
      for_each_bit(ox[cw] | oz[cw], [&](std::uint32_t cb) {
        const std::uint32_t k = (cw << 6) + cb;
        std::uint64_t* xk = xcol(k);
        std::uint64_t* zk = zcol(k);
        const bool xp = (xk[pw] & pivot_bit) != 0;
        const bool zp = (zk[pw] & pivot_bit) != 0;
        if (!xp && !zp) return;
        hitk_.push_back(k);
        if (!eliminate) return;
        simd::pivot_eliminate(xk, zk, m_.data(), lo_.data(), hi_.data(),
                              w_lo, w_hi, xp, zp);
        for_each_bit(mmask, [&](std::uint32_t w) {
          if (xp) sync_x(k, w);
          if (zp) sync_z(k, w);
        });
      });
    }
    if (eliminate) {
      for_each_bit(mmask, [&](std::uint32_t w) {
        RADSURF_ASSERT_MSG((lo_[w] & stab_mask_[w] & m_[w]) == 0,
                           "stabilizer rowsum produced imaginary phase");
        signs_[w] = (signs_[w] & ~m_[w]) | (hi_[w] & m_[w]);
      });
    }
  }

  // Destabilizer paired with pivot := old pivot row, and pivot row := +/-
  // Z_q with the measured sign.  The full bit move only matters on
  // support(pivot row) — the hit list above — plus columns still holding a
  // destabilizer-row bit, which merely need that bit cleared.  The latter
  // are found with a single-bit test over the destabilizer-word occupancy
  // window (cheap: most window columns fail the test in a few ops).
  const std::uint32_t d = pivot - n_;
  const std::uint32_t dw = d >> 6, db = d & 63;
  const std::uint64_t d_bit = std::uint64_t{1} << db;
  {
    const std::uint64_t* oxd =
        occ_x_.data() + static_cast<std::size_t>(dw) * cwords_;
    const std::uint64_t* ozd =
        occ_z_.data() + static_cast<std::size_t>(dw) * cwords_;
    for (std::uint32_t cw = 0; cw < cwords_; ++cw) {
      for_each_bit(oxd[cw] | ozd[cw], [&](std::uint32_t cb) {
        const std::uint32_t k = (cw << 6) + cb;
        std::uint64_t* xk = xcol(k);
        std::uint64_t* zk = zcol(k);
        const std::uint64_t xd = xk[dw] & d_bit;
        const std::uint64_t zd = zk[dw] & d_bit;
        if (!(xd | zd)) return;
        if ((xk[pw] | zk[pw]) & pivot_bit) return;  // full move below
        if (xd) {
          xk[dw] &= ~d_bit;
          sync_x(k, dw);
        }
        if (zd) {
          zk[dw] &= ~d_bit;
          sync_z(k, dw);
        }
      });
    }
    for (const std::uint32_t k : hitk_) {
      std::uint64_t* xk = xcol(k);
      std::uint64_t* zk = zcol(k);
      const std::uint64_t xb = (xk[pw] >> pb) & 1u;
      const std::uint64_t zb = (zk[pw] >> pb) & 1u;
      xk[pw] &= ~pivot_bit;
      zk[pw] &= ~pivot_bit;
      xk[dw] = (xk[dw] & ~d_bit) | (xb << db);
      zk[dw] = (zk[dw] & ~d_bit) | (zb << db);
      sync_x(k, pw);
      sync_z(k, pw);
      sync_x(k, dw);
      sync_z(k, dw);
    }
  }
  const bool outcome = rng.next() & 1;
  const std::uint64_t sb = (signs_[pw] >> pb) & 1u;
  signs_[pw] &= ~pivot_bit;
  signs_[dw] = (signs_[dw] & ~d_bit) | (sb << db);
  signs_[pw] |= outcome ? pivot_bit : 0;
  zcol(q)[pw] |= pivot_bit;
  sync_z(q, pw);

  set_known(q, outcome);
  return outcome;
}

void WideTableau::reset(std::uint32_t q, Rng& rng) {
  if (measure(q, rng)) apply_x(q);
}

// ---------------------------------------------------------------------------
// CompactTableauSimulator — tape walker shared by both engines
// ---------------------------------------------------------------------------

std::string CompactTableauSimulator::engine_name(std::size_t num_qubits) {
  if (!supports(num_qubits)) return "tableau";
  if (num_qubits <= CompactTableau::kMaxQubits) return "compact";
  return "compact:w" + std::to_string((2 * num_qubits + 63) / 64);
}

CompactTableauSimulator::CompactTableauSimulator(
    std::shared_ptr<const CircuitTape> tape)
    : tape_(std::move(tape)) {
  RADSURF_CHECK_ARG(supports(tape_->num_qubits),
                    "CompactTableauSimulator supports 1.."
                        << kMaxSupportedQubits << " qubits, got "
                        << tape_->num_qubits);
  if (tape_->num_qubits <= CompactTableau::kMaxQubits)
    narrow_ = std::make_unique<CompactTableau>(tape_->num_qubits);
  else
    wide_ = std::make_unique<WideTableau>(tape_->num_qubits);
}

void CompactTableauSimulator::sample_into(Rng& rng, BitVec& record) {
  if (narrow_) run_with(*narrow_, rng, nullptr, record, nullptr);
  else run_with(*wide_, rng, nullptr, record, nullptr);
}

void CompactTableauSimulator::sample_with_erasure_into(
    Rng& rng, const std::vector<std::uint32_t>& corrupted, BitVec& record) {
  if (narrow_) run_with(*narrow_, rng, &corrupted, record, nullptr);
  else run_with(*wide_, rng, &corrupted, record, nullptr);
}

void CompactTableauSimulator::sample_replay_into(
    Rng& rng, const std::vector<std::uint32_t>* corrupted,
    const ReplayConstraint& constraint, BitVec& record) {
  if (narrow_) run_with(*narrow_, rng, corrupted, record, &constraint);
  else run_with(*wide_, rng, corrupted, record, &constraint);
}

template <class TableauT>
void CompactTableauSimulator::run_with(
    TableauT& t, Rng& rng, const std::vector<std::uint32_t>* corrupted,
    BitVec& record, const ReplayConstraint* constraint) {
  t.reset_all();
  RADSURF_ASSERT(record.size() == tape_->num_measurements);
  record.clear();
  std::size_t rec = 0;
  ReplayConstraintCursor cursor{constraint, 0, 0};

  std::size_t strike_at = std::size_t(-1);
  if (corrupted && !corrupted->empty() && tape_->num_physical_ops > 0) {
    strike_at = (constraint && constraint->has_strike)
                    ? constraint->strike_ordinal
                    : rng.below(tape_->num_physical_ops);
  }
  std::size_t physical_ordinal = 0;

  auto apply_one_qubit_pauli_noise = [&](std::uint32_t q,
                                         std::uint64_t threshold) {
    if (!fires(threshold, rng)) return;
    switch (rng.below(3)) {
      case 0: t.apply_x(q); break;
      case 1: t.apply_y(q); break;
      default: t.apply_z(q); break;
    }
  };

  for (const CircuitTape::Op& op : tape_->ops) {
    const std::uint32_t* tg = tape_->targets.data() + op.first;
    const std::uint32_t nt = op.count;

    if (op.is_physical) {
      if (physical_ordinal == strike_at)
        for (std::uint32_t q : *corrupted) t.reset(q, rng);
      ++physical_ordinal;
    }

    switch (op.gate) {
      case Gate::I:
        break;
      case Gate::X:
        for (std::uint32_t i = 0; i < nt; ++i) t.apply_x(tg[i]);
        break;
      case Gate::Y:
        for (std::uint32_t i = 0; i < nt; ++i) t.apply_y(tg[i]);
        break;
      case Gate::Z:
        for (std::uint32_t i = 0; i < nt; ++i) t.apply_z(tg[i]);
        break;
      case Gate::H:
        for (std::uint32_t i = 0; i < nt; ++i) t.apply_h(tg[i]);
        break;
      case Gate::S:
        for (std::uint32_t i = 0; i < nt; ++i) t.apply_s(tg[i]);
        break;
      case Gate::S_DAG:
        for (std::uint32_t i = 0; i < nt; ++i) t.apply_s_dag(tg[i]);
        break;
      case Gate::CX:
        for (std::uint32_t i = 0; i + 1 < nt; i += 2)
          t.apply_cx(tg[i], tg[i + 1]);
        break;
      case Gate::CZ:
        for (std::uint32_t i = 0; i + 1 < nt; i += 2)
          t.apply_cz(tg[i], tg[i + 1]);
        break;
      case Gate::SWAP:
        for (std::uint32_t i = 0; i + 1 < nt; i += 2)
          t.apply_swap(tg[i], tg[i + 1]);
        break;
      case Gate::M:
        for (std::uint32_t i = 0; i < nt; ++i)
          record.set(rec++, t.measure(tg[i], rng));
        break;
      case Gate::R:
        for (std::uint32_t i = 0; i < nt; ++i) t.reset(tg[i], rng);
        break;
      case Gate::MR:
        for (std::uint32_t i = 0; i < nt; ++i) {
          const bool m = t.measure(tg[i], rng);
          record.set(rec++, m);
          if (m) t.apply_x(tg[i]);
        }
        break;
      case Gate::X_ERROR:
        for (std::uint32_t i = 0; i < nt; ++i)
          if (fires(op.threshold, rng)) t.apply_x(tg[i]);
        break;
      case Gate::Y_ERROR:
        for (std::uint32_t i = 0; i < nt; ++i)
          if (fires(op.threshold, rng)) t.apply_y(tg[i]);
        break;
      case Gate::Z_ERROR:
        for (std::uint32_t i = 0; i < nt; ++i)
          if (fires(op.threshold, rng)) t.apply_z(tg[i]);
        break;
      case Gate::DEPOLARIZE1:
      case Gate::DEPOLARIZE2:
        for (std::uint32_t i = 0; i < nt; ++i)
          apply_one_qubit_pauli_noise(tg[i], op.threshold);
        break;
      case Gate::DEPOLARIZE2_UNIFORM:
        for (std::uint32_t i = 0; i + 1 < nt; i += 2) {
          if (!fires(op.threshold, rng)) continue;
          const auto k = rng.below(15) + 1;
          const auto pa = static_cast<int>(k % 4);
          const auto pb = static_cast<int>(k / 4);
          auto apply = [&](std::uint32_t q, int pauli) {
            if (pauli == 1) t.apply_x(q);
            else if (pauli == 2) t.apply_z(q);
            else if (pauli == 3) t.apply_y(q);
          };
          apply(tg[i], pa);
          apply(tg[i + 1], pb);
        }
        break;
      case Gate::RESET_ERROR:
        for (std::uint32_t i = 0; i < nt; ++i) {
          bool fired;
          if (!cursor.pinned(op.site_base + i, fired))
            fired = fires(op.threshold, rng);
          if (fired) t.reset(tg[i], rng);
        }
        break;
      default:
        RADSURF_ASSERT_MSG(false, "unhandled instruction in compact sim");
    }
  }
  RADSURF_ASSERT(rec == record.size());
}

}  // namespace radsurf
