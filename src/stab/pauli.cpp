#include "stab/pauli.hpp"

#include "util/error.hpp"

namespace radsurf {

int pauli_mul_phase(bool x1, bool z1, bool x2, bool z2) {
  // g(P1, P2) per Aaronson–Gottesman: exponent of i in P1 * P2.
  if (!x1 && !z1) return 0;  // I * P
  if (!x2 && !z2) return 0;  // P * I
  if (x1 == x2 && z1 == z2) return 0;  // P * P = I
  // Cyclic order X->Y->Z->X gives +1, reverse gives -1.
  const int p1 = x1 ? (z1 ? 2 : 1) : 3;  // X=1, Y=2, Z=3
  const int p2 = x2 ? (z2 ? 2 : 1) : 3;
  return ((p2 - p1 + 3) % 3 == 1) ? 1 : -1;
}

PauliString PauliString::from_string(const std::string& s) {
  std::size_t start = 0;
  bool sign = false;
  if (!s.empty() && (s[0] == '+' || s[0] == '-')) {
    sign = s[0] == '-';
    start = 1;
  }
  PauliString p(s.size() - start);
  p.sign_ = sign;
  for (std::size_t i = start; i < s.size(); ++i) {
    const std::size_t q = i - start;
    switch (s[i]) {
      case 'I':
      case '_':
        break;
      case 'X':
        p.x_.set(q, true);
        break;
      case 'Z':
        p.z_.set(q, true);
        break;
      case 'Y':
        p.x_.set(q, true);
        p.z_.set(q, true);
        break;
      default:
        throw InvalidArgument(std::string("bad Pauli character: ") + s[i]);
    }
  }
  return p;
}

void PauliString::set_pauli(std::size_t q, int xz) {
  x_.set(q, xz & 1);
  z_.set(q, (xz >> 1) & 1);
}

std::size_t PauliString::weight() const {
  BitVec support = x_;
  support |= z_;
  return support.popcount();
}

bool PauliString::commutes_with(const PauliString& o) const {
  return !(x_.and_parity(o.z_) ^ z_.and_parity(o.x_));
}

PauliString& PauliString::operator*=(const PauliString& o) {
  RADSURF_CHECK_ARG(num_qubits() == o.num_qubits(),
                    "PauliString size mismatch");
  int phase = (sign_ ? 2 : 0) + (o.sign_ ? 2 : 0);
  for (std::size_t q = 0; q < num_qubits(); ++q)
    phase += pauli_mul_phase(x_.get(q), z_.get(q), o.x_.get(q), o.z_.get(q));
  phase = ((phase % 4) + 4) % 4;
  RADSURF_ASSERT_MSG(phase % 2 == 0,
                     "Pauli product has imaginary phase (anticommuting "
                     "operands)");
  x_ ^= o.x_;
  z_ ^= o.z_;
  sign_ = phase == 2;
  return *this;
}

void PauliString::conj_h(std::uint32_t q) {
  const bool xb = x_.get(q);
  const bool zb = z_.get(q);
  sign_ ^= xb && zb;  // H Y H = -Y
  x_.set(q, zb);
  z_.set(q, xb);
}

void PauliString::conj_s(std::uint32_t q) {
  const bool xb = x_.get(q);
  const bool zb = z_.get(q);
  sign_ ^= xb && zb;  // S Y S^dag = -X
  z_.set(q, zb ^ xb); // S X S^dag = Y
}

void PauliString::conj_cx(std::uint32_t c, std::uint32_t t) {
  const bool xc = x_.get(c);
  const bool zc = z_.get(c);
  const bool xt = x_.get(t);
  const bool zt = z_.get(t);
  sign_ ^= xc && zt && !(xt ^ zc);
  x_.set(t, xt ^ xc);
  z_.set(c, zc ^ zt);
}

void PauliString::apply_gate(Gate g, std::span<const std::uint32_t> targets) {
  switch (g) {
    case Gate::I:
      break;
    case Gate::X:
      for (auto q : targets) sign_ ^= z_.get(q);
      break;
    case Gate::Y:
      for (auto q : targets) sign_ ^= x_.get(q) ^ z_.get(q);
      break;
    case Gate::Z:
      for (auto q : targets) sign_ ^= x_.get(q);
      break;
    case Gate::H:
      for (auto q : targets) conj_h(q);
      break;
    case Gate::S:
      for (auto q : targets) conj_s(q);
      break;
    case Gate::S_DAG:
      // S^dag = Z * S up to phase: conjugate by S, then by Z.
      for (auto q : targets) {
        conj_s(q);
        sign_ ^= x_.get(q);
      }
      break;
    case Gate::CX:
      for (std::size_t i = 0; i + 1 < targets.size(); i += 2)
        conj_cx(targets[i], targets[i + 1]);
      break;
    case Gate::CZ:
      // CZ = (I (x) H) CX (I (x) H).
      for (std::size_t i = 0; i + 1 < targets.size(); i += 2) {
        conj_h(targets[i + 1]);
        conj_cx(targets[i], targets[i + 1]);
        conj_h(targets[i + 1]);
      }
      break;
    case Gate::SWAP:
      for (std::size_t i = 0; i + 1 < targets.size(); i += 2) {
        const auto a = targets[i];
        const auto b = targets[i + 1];
        const bool xa = x_.get(a), za = z_.get(a);
        x_.set(a, x_.get(b));
        z_.set(a, z_.get(b));
        x_.set(b, xa);
        z_.set(b, za);
      }
      break;
    default:
      throw InvalidArgument(
          std::string("PauliString::apply_gate: not a unitary gate: ") +
          std::string(gate_info(g).name));
  }
}

std::string PauliString::to_string() const {
  std::string s;
  s.reserve(num_qubits() + 1);
  s.push_back(sign_ ? '-' : '+');
  static constexpr char kNames[] = {'I', 'X', 'Z', 'Y'};
  for (std::size_t q = 0; q < num_qubits(); ++q)
    s.push_back(kNames[pauli_at(q)]);
  return s;
}

}  // namespace radsurf
