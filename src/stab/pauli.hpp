// Pauli string over n qubits with sign tracking.
//
// Used by the detector-error-model extractor (propagating a candidate error
// through the rest of the circuit by Clifford conjugation) and by tests that
// pin down the simulators' conjugation rules.  The encoding is the standard
// symplectic one: qubit q holds X iff x[q] and only x[q] is set, Z iff only
// z[q], Y iff both.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "circuit/gate.hpp"
#include "util/bitvec.hpp"

namespace radsurf {

class PauliString {
 public:
  PauliString() = default;
  explicit PauliString(std::size_t num_qubits)
      : x_(num_qubits), z_(num_qubits) {}

  /// Parse "+XIZY" / "-XZ" (sign optional, defaults to +).
  static PauliString from_string(const std::string& s);

  std::size_t num_qubits() const { return x_.size(); }

  bool x(std::size_t q) const { return x_.get(q); }
  bool z(std::size_t q) const { return z_.get(q); }
  bool sign() const { return sign_; }
  void set_sign(bool s) { sign_ = s; }

  /// 0=I, 1=X, 2=Z, 3=Y at qubit q.
  int pauli_at(std::size_t q) const {
    return (x_.get(q) ? 1 : 0) | (z_.get(q) ? 2 : 0);
  }
  void set_pauli(std::size_t q, int xz);  // same encoding as pauli_at

  const BitVec& xs() const { return x_; }
  const BitVec& zs() const { return z_; }
  BitVec& xs() { return x_; }
  BitVec& zs() { return z_; }

  bool is_identity() const { return x_.none() && z_.none(); }
  std::size_t weight() const;  // number of non-identity sites

  /// True iff this commutes with o (symplectic inner product is 0).
  bool commutes_with(const PauliString& o) const;

  /// In-place product (*this) = (*this) * o.  Throws if the result carries
  /// an imaginary phase (callers multiply commuting strings).
  PauliString& operator*=(const PauliString& o);

  /// Conjugate by a unitary gate: P -> U P U^dag.  `targets` uses the same
  /// pairwise convention as Instruction targets.
  void apply_gate(Gate g, std::span<const std::uint32_t> targets);

  bool operator==(const PauliString& o) const = default;

  std::string to_string() const;

 private:
  void conj_h(std::uint32_t q);
  void conj_s(std::uint32_t q);
  void conj_cx(std::uint32_t c, std::uint32_t t);

  BitVec x_;
  BitVec z_;
  bool sign_ = false;  // (-1)^sign_
};

/// Exponent of i (mod 4) arising when multiplying single-qubit Paulis
/// (x1,z1)·(x2,z2); the Aaronson–Gottesman g function.
int pauli_mul_phase(bool x1, bool z1, bool x2, bool z2);

}  // namespace radsurf
