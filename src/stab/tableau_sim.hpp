// Exact per-shot stabilizer circuit simulator.
//
// The circuit is compiled once into a flat CircuitTape: annotations are
// dropped, zero-probability noise channels are elided, and every channel
// probability is pre-resolved into a 64-bit Bernoulli threshold so the shot
// loop compares raw RNG words instead of converting to floating point.
// The tape is immutable and shareable (shared_ptr), so a campaign's
// residual-replay workers all reuse one compile instead of re-walking the
// circuit per batch.  One simulator instance owns a single Tableau that is
// re-zeroed per shot, so campaign chunks run thousands of shots with no
// per-shot allocation; sample_into() additionally reuses a caller-owned
// record buffer.
//
// Replay constraints: the campaign engine's frame fast path hands shots
// that heralded a reset at a reference-random site back to an exact
// engine.  Statistical exactness requires those re-runs to be *conditioned*
// on the observed herald signature (the selection event), not resampled
// from scratch — sample_replay_into pins the heralds of the reference-
// random reset sites (and the erasure strike instant) to the first run's
// values and resamples everything else.
//
// Beyond sampling, the simulator computes the ReferenceTrace that the
// heralded-reset frame fast path needs: the reference value (|0>, |1> or
// random) of every RESET_ERROR site and, optionally, of every corrupted
// qubit at every physical-op instant (for the shared-instant erasure).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "circuit/circuit.hpp"
#include "stab/tableau.hpp"
#include "util/bitvec.hpp"
#include "util/rng.hpp"

namespace radsurf {

/// Reference values at probabilistic-reset sites: +1 means the noiseless
/// reference holds |0> there, -1 means |1>, 0 means the reference outcome
/// is random (the frame formalism cannot express a reset at such a site).
struct ReferenceTrace {
  /// One entry per RESET_ERROR target occurrence, in circuit order
  /// (including zero-probability sites, so indices align with any walk of
  /// the instruction list).
  std::vector<std::int8_t> reset_sites;
  /// Erasure support: entry [k * corrupted.size() + j] is the reference
  /// value of corrupted qubit j immediately before the k-th physical
  /// operation.  `corrupted` records the qubit set the trace was computed
  /// for (empty when none was supplied), so consumers can verify a
  /// supplied trace actually matches their erasure set.
  std::vector<std::int8_t> erasure_sites;
  std::vector<std::uint32_t> corrupted;
  std::size_t num_physical_ops = 0;
};

/// Immutable flat compilation of a circuit, shared by the exact engines.
/// `site_base` of a RESET_ERROR op is the raw reset-site ordinal of its
/// first target (raw = counting every RESET_ERROR target occurrence in
/// circuit order, zero-probability sites included), aligning tape walks
/// with ReferenceTrace::reset_sites and the frame simulator's site indices.
struct CircuitTape {
  struct Op {
    Gate gate;
    std::uint32_t first = 0;       // offset into targets
    std::uint32_t count = 0;       // number of targets
    std::uint32_t site_base = 0;   // raw reset-site ordinal (RESET_ERROR)
    bool is_physical = false;      // erasure-instant candidate
    std::uint64_t threshold = 0;   // noise fires iff rng.next() <= threshold
  };

  std::size_t num_qubits = 0;
  std::size_t num_measurements = 0;
  std::size_t num_physical_ops = 0;
  std::vector<Op> ops;
  std::vector<std::uint32_t> targets;

  static std::shared_ptr<const CircuitTape> compile(const Circuit& circuit);
};

/// Conditioning data for one replayed shot (see file comment).  The shared
/// parts (`forced_sites`) are per-circuit; `fired`/`strike_ordinal` vary
/// per shot.
struct ReplayConstraint {
  /// Sorted raw reset-site ordinals whose herald outcome is pinned (the
  /// reference-random sites).  Sites not listed resample as usual.
  const std::vector<std::uint32_t>* forced_sites = nullptr;
  /// Sorted subset of forced_sites that fired for this shot.
  const std::uint32_t* fired = nullptr;
  std::size_t num_fired = 0;
  /// Pinned erasure strike ordinal (only read when an erasure set is
  /// supplied); has_strike == false draws it per shot as usual.
  std::uint32_t strike_ordinal = 0;
  bool has_strike = false;
};

/// One random collapse of a conditioned reference walk (see
/// TableauSimulator::conditioned_reference).  `opportunity` is the ordinal
/// of the collapse opportunity the event belongs to; opportunities are
/// counted identically by the walk and by FrameSimulator::run_group —
/// every target of M / R / MR, every *fired pinned* RESET_ERROR target,
/// and every corrupted-qubit reset at the pinned strike instant, in walk
/// order.  (Unpinned RESET_ERROR sites are deliberately NOT opportunities:
/// whether they fire varies per group member, which would desynchronize
/// the two counters.)  `dx` / `dz` are the X / Z support of the collapse
/// destabilizer D — the Pauli mapping the pinned outcome-0 post-collapse
/// state to the outcome-1 one.  A member that draws collapse coin c
/// injects D^c into its frame, which is what keeps the group replay exact
/// even for detectors the pinned strike made nondeterministic.
struct CollapseEvent {
  std::uint64_t opportunity = 0;
  std::vector<std::uint32_t> dx, dz;
};

/// Output of a conditioned reference walk: the deterministic skeleton of a
/// herald group (shots sharing one ReplayConstraint signature).  `trace`
/// gives the *conditioned* reference value of every RESET_ERROR site (the
/// group members' unpinned heralds frame against these, not the primary
/// trace); `record` is the conditioned reference record (all random
/// collapses pinned to 0); `events` lists the random collapses with their
/// destabilizers.  A member's absolute record is `record` XOR its frame
/// flips, decodable against the campaign's primary reference.
struct ConditionedReference {
  ReferenceTrace trace;
  BitVec record;
  std::vector<CollapseEvent> events;
};

/// Two-pointer walk over a ReplayConstraint's forced-site list, shared by
/// both exact engines so their site handling stays in lockstep (their
/// bit-for-bit contract depends on it): pinned sites report the recorded
/// herald without consuming randomness.  Sites must be queried in
/// ascending order within a shot.
struct ReplayConstraintCursor {
  const ReplayConstraint* c = nullptr;
  std::size_t next_forced = 0;
  std::size_t next_fired = 0;

  /// True when `site` is pinned; `fired_out` receives the pinned outcome.
  bool pinned(std::uint32_t site, bool& fired_out) {
    if (!c || !c->forced_sites) return false;
    const auto& forced = *c->forced_sites;
    while (next_forced < forced.size() && forced[next_forced] < site)
      ++next_forced;
    if (next_forced == forced.size() || forced[next_forced] != site)
      return false;
    while (next_fired < c->num_fired && c->fired[next_fired] < site)
      ++next_fired;
    fired_out = next_fired < c->num_fired && c->fired[next_fired] == site;
    return true;
  }
};

class TableauSimulator {
 public:
  explicit TableauSimulator(const Circuit& circuit);
  /// Reuse a tape compiled from `circuit` (replay workers share one
  /// compile instead of re-walking the circuit per instance).
  TableauSimulator(const Circuit& circuit,
                   std::shared_ptr<const CircuitTape> tape);

  /// Run one shot; returns the measurement record (one bit per record).
  /// All randomness comes from `rng`.
  BitVec sample(Rng& rng);
  /// Allocation-free variant: `record` is resized/reused by the caller
  /// (must be sized circuit().num_measurements()).
  void sample_into(Rng& rng, BitVec& record);

  /// One shot with a single shared-instant erasure: every qubit in
  /// `corrupted` is reset once, immediately before a uniformly random
  /// physical operation of the circuit (the strike instant, drawn per
  /// shot).  This is the paper's Figs 6-7 "single erasure error (reset) at
  /// t = 0": the particle hits once, at an unknown moment of the shot, and
  /// every qubit of the hypernode undergoes the same fault event.
  BitVec sample_with_erasure(Rng& rng,
                             const std::vector<std::uint32_t>& corrupted);
  void sample_with_erasure_into(Rng& rng,
                                const std::vector<std::uint32_t>& corrupted,
                                BitVec& record);

  /// Conditioned re-run of a frame-phase residual shot: heralds at the
  /// constraint's forced sites (and the strike instant, if pinned) replay
  /// the first run's outcomes without consuming randomness; everything
  /// else resamples from `rng`.  `corrupted` may be null.
  void sample_replay_into(Rng& rng,
                          const std::vector<std::uint32_t>* corrupted,
                          const ReplayConstraint& constraint, BitVec& record);

  /// Noiseless reference sample: noise channels are skipped and random
  /// measurement outcomes are pinned to 0.  Deterministic.
  BitVec reference_sample();

  /// Reference values at every RESET_ERROR site and (when `corrupted` is
  /// non-null) at every (physical-op instant, corrupted qubit) pair, from
  /// one deterministic noiseless walk.  Consumed by FrameSimulator.
  ReferenceTrace reference_trace(
      const std::vector<std::uint32_t>* corrupted = nullptr);

  /// Conditioned reference walk for herald-group frame promotion: a
  /// noiseless deterministic walk that *applies* the constraint's pinned
  /// fired resets (and the pinned strike over `corrupted`, when supplied),
  /// pins every random collapse outcome to 0, and exports each collapse's
  /// destabilizer as a CollapseEvent.  Consumes no randomness; the result
  /// is a pure function of (circuit, constraint, corrupted) and is shared
  /// by every member of the herald group.  The constraint must pin a
  /// strike ordinal whenever `corrupted` is non-empty.
  ConditionedReference conditioned_reference(
      const std::vector<std::uint32_t>* corrupted,
      const ReplayConstraint& constraint);

  const Circuit& circuit() const { return circuit_; }
  /// Number of non-annotation, non-noise instructions (erasure instants).
  std::size_t num_physical_ops() const { return tape_->num_physical_ops; }

 private:
  void run(Rng& rng, bool noiseless_reference,
           const std::vector<std::uint32_t>* corrupted, BitVec& record,
           const ReplayConstraint* constraint = nullptr);
  void apply_unitary(const CircuitTape::Op& op);
  /// Reference-semantics reset (measure with pinned-zero random outcomes,
  /// then correct), shared by reference_sample and reference_trace.
  void reference_reset(std::uint32_t q, Rng& rng);

  Circuit circuit_;  // owned copy: simulators must outlive any temporary
  std::size_t num_qubits_;
  Tableau tableau_;
  std::shared_ptr<const CircuitTape> tape_;
};

}  // namespace radsurf
