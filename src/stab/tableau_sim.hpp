// Exact per-shot stabilizer circuit simulator.
//
// Walks a Circuit instruction by instruction, sampling every noise channel
// (including the radiation model's probabilistic reset, which is outside
// the Pauli-frame formalism) and collecting the measurement record.  One
// instance is reusable across shots; campaign loops call sample() per shot
// with a per-chunk RNG stream.
#pragma once

#include <vector>

#include "circuit/circuit.hpp"
#include "stab/tableau.hpp"
#include "util/bitvec.hpp"
#include "util/rng.hpp"

namespace radsurf {

class TableauSimulator {
 public:
  explicit TableauSimulator(const Circuit& circuit);

  /// Run one shot; returns the measurement record (one bit per record).
  /// All randomness comes from `rng`.
  BitVec sample(Rng& rng);

  /// One shot with a single shared-instant erasure: every qubit in
  /// `corrupted` is reset once, immediately before a uniformly random
  /// physical operation of the circuit (the strike instant, drawn per
  /// shot).  This is the paper's Figs 6-7 "single erasure error (reset) at
  /// t = 0": the particle hits once, at an unknown moment of the shot, and
  /// every qubit of the hypernode undergoes the same fault event.
  BitVec sample_with_erasure(Rng& rng,
                             const std::vector<std::uint32_t>& corrupted);

  /// Noiseless reference sample: noise channels are skipped and random
  /// measurement outcomes are pinned to 0.  Deterministic.
  BitVec reference_sample();

  const Circuit& circuit() const { return circuit_; }

 private:
  BitVec run(Rng& rng, bool noiseless_reference,
             const std::vector<std::uint32_t>* corrupted = nullptr);
  void apply_unitary(Tableau& t, const Instruction& ins);

  Circuit circuit_;  // owned copy: simulators must outlive any temporary
  std::size_t num_qubits_;
  std::vector<std::size_t> physical_ops_;  // instruction indices
};

}  // namespace radsurf
