// Exact per-shot stabilizer circuit simulator.
//
// The constructor compiles the circuit once into a flat instruction tape:
// annotations are dropped, zero-probability noise channels are elided, and
// every channel probability is pre-resolved into a 64-bit Bernoulli
// threshold so the shot loop compares raw RNG words instead of converting
// to floating point.  One instance owns a single Tableau that is re-zeroed
// per shot, so campaign chunks run thousands of shots with no per-shot
// allocation; sample_into() additionally reuses a caller-owned record
// buffer.
//
// Beyond sampling, the simulator computes the ReferenceTrace that the
// heralded-reset frame fast path needs: the reference value (|0>, |1> or
// random) of every RESET_ERROR site and, optionally, of every corrupted
// qubit at every physical-op instant (for the shared-instant erasure).
#pragma once

#include <cstdint>
#include <vector>

#include "circuit/circuit.hpp"
#include "stab/tableau.hpp"
#include "util/bitvec.hpp"
#include "util/rng.hpp"

namespace radsurf {

/// Reference values at probabilistic-reset sites: +1 means the noiseless
/// reference holds |0> there, -1 means |1>, 0 means the reference outcome
/// is random (the frame formalism cannot express a reset at such a site).
struct ReferenceTrace {
  /// One entry per RESET_ERROR target occurrence, in circuit order
  /// (including zero-probability sites, so indices align with any walk of
  /// the instruction list).
  std::vector<std::int8_t> reset_sites;
  /// Erasure support: entry [k * corrupted.size() + j] is the reference
  /// value of corrupted qubit j immediately before the k-th physical
  /// operation.  `corrupted` records the qubit set the trace was computed
  /// for (empty when none was supplied), so consumers can verify a
  /// supplied trace actually matches their erasure set.
  std::vector<std::int8_t> erasure_sites;
  std::vector<std::uint32_t> corrupted;
  std::size_t num_physical_ops = 0;
};

class TableauSimulator {
 public:
  explicit TableauSimulator(const Circuit& circuit);

  /// Run one shot; returns the measurement record (one bit per record).
  /// All randomness comes from `rng`.
  BitVec sample(Rng& rng);
  /// Allocation-free variant: `record` is resized/reused by the caller
  /// (must be sized circuit().num_measurements()).
  void sample_into(Rng& rng, BitVec& record);

  /// One shot with a single shared-instant erasure: every qubit in
  /// `corrupted` is reset once, immediately before a uniformly random
  /// physical operation of the circuit (the strike instant, drawn per
  /// shot).  This is the paper's Figs 6-7 "single erasure error (reset) at
  /// t = 0": the particle hits once, at an unknown moment of the shot, and
  /// every qubit of the hypernode undergoes the same fault event.
  BitVec sample_with_erasure(Rng& rng,
                             const std::vector<std::uint32_t>& corrupted);
  void sample_with_erasure_into(Rng& rng,
                                const std::vector<std::uint32_t>& corrupted,
                                BitVec& record);

  /// Noiseless reference sample: noise channels are skipped and random
  /// measurement outcomes are pinned to 0.  Deterministic.
  BitVec reference_sample();

  /// Reference values at every RESET_ERROR site and (when `corrupted` is
  /// non-null) at every (physical-op instant, corrupted qubit) pair, from
  /// one deterministic noiseless walk.  Consumed by FrameSimulator.
  ReferenceTrace reference_trace(
      const std::vector<std::uint32_t>* corrupted = nullptr);

  const Circuit& circuit() const { return circuit_; }
  /// Number of non-annotation, non-noise instructions (erasure instants).
  std::size_t num_physical_ops() const { return num_physical_ops_; }

 private:
  struct TapeOp {
    Gate gate;
    std::uint32_t first = 0;       // offset into flat_targets_
    std::uint32_t count = 0;       // number of targets
    bool is_physical = false;      // erasure-instant candidate
    std::uint64_t threshold = 0;   // noise fires iff rng.next() <= threshold
  };

  void run(Rng& rng, bool noiseless_reference,
           const std::vector<std::uint32_t>* corrupted, BitVec& record);
  void apply_unitary(const TapeOp& op);
  /// Reference-semantics reset (measure with pinned-zero random outcomes,
  /// then correct), shared by reference_sample and reference_trace.
  void reference_reset(std::uint32_t q, Rng& rng);

  Circuit circuit_;  // owned copy: simulators must outlive any temporary
  std::size_t num_qubits_;
  Tableau tableau_;
  std::vector<TapeOp> tape_;
  std::vector<std::uint32_t> flat_targets_;
  std::size_t num_physical_ops_ = 0;
};

}  // namespace radsurf
