// Flat-column stabilizer engines for the campaign replay path.
//
// The campaign engine's residual shots — heralded resets at reference-
// random sites, which no Pauli-frame update can express — need an exact
// per-shot tableau walk.  Two engines share one tape walker here, selected
// by device size (the "n <= 31 / word-sliced" rule):
//
//  * CompactTableau (n <= 31): the whole Aaronson–Gottesman tableau fits
//    in ONE 64-bit word per qubit column.  The bound is 31, not 32: a
//    single word holds 2n + 1 rows only up to n = 31, and keeping that
//    margin means every row index — including a hypothetical scratch row
//    at bit 2n — stays in-word with no edge cases.  (Measured, not
//    assumed: the word-boundary regression suite pins n = 31/32/33
//    against the generic tableau, and n = 32 is exact too because no
//    scratch row is ever materialized — see below — but 32 routes to the
//    word-sliced engine so the single-word kernels keep their slack.)
//    Every gate is a couple of register operations and every measurement
//    a short word-parallel loop.
//  * WideTableau (n >= 32): the same layout sliced over
//    W = ceil(2n / 64) words per column (multi-word xcol/zcol, per-word
//    stabilizer masks, 2-bit phase counters and prefix-XOR scans carried
//    across word boundaries).  Gate kernels are O(W); measurements are
//    O(n * W) like the generic tableau's, but on flat contiguous arrays
//    and with the known-Z fast path below — this is what carries rotated
//    surface codes at d = 11–21 (241..881 qubits) through exact replay.
//
// Shared tricks (both engines):
//
//  * random outcomes run the batched pivot elimination of stab/tableau.cpp
//    collapsed to word slices (2-bit packed phase counters in registers);
//  * deterministic outcomes evaluate the sign of the selected stabilizer
//    product with a prefix-XOR scan per qubit column instead of a
//    bit-serial scratch-row accumulation — the per-row Aaronson–Gottesman
//    g phase needs the parity of the already-accumulated rows, which is
//    exactly an exclusive prefix-xor over the selected row bits.  This is
//    why neither engine stores a scratch row at all;
//  * a known-Z fast path skips collapse work entirely: once Z_q is
//    measured or reset its value stays deterministic under Z-diagonal
//    gates, CX controls, and collapses of *other* qubits (projectors
//    commute with a stabilizer ±Z_q), so the dense reset trains of the
//    radiation model cost O(1) after the first collapse.
//
// Contracts:
//  * RNG determinism — both engines consume randomness in exactly the
//    same order as the generic TableauSimulator on the same tape, so all
//    three produce bit-identical records from equal RNG streams — the
//    property the cross-engine and word-boundary test suites pin down.
//  * Thread-safety — a simulator instance is single-threaded mutable
//    state; the campaign engine gives each parallel_chunks worker its own
//    instance (one per chunk, reused across that chunk's shots).
//  * Engine selection — InjectionEngine's batched residual replay uses
//    this simulator whenever the transpiled device fits
//    kMaxSupportedQubits, picking the single-word tableau for n <= 31 and
//    the word-sliced one beyond; the generic tableau is the fallback past
//    the cap.  The chosen engine is surfaced as
//    InjectionEngine::replay_engine() (and in BENCH extras), so perf
//    regressions at new distances are attributable.  SamplingPath::EXACT
//    deliberately keeps the generic engine: it is the paper's baseline
//    methodology and the oracle these engines are validated against.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "stab/tableau_sim.hpp"
#include "util/bitvec.hpp"
#include "util/rng.hpp"

namespace radsurf {

/// Single-word tableau: one 64-bit word per qubit column (n <= 31).
class CompactTableau {
 public:
  static constexpr std::size_t kMaxQubits = 31;

  explicit CompactTableau(std::size_t num_qubits);

  /// Reset to |0...0> (destabilizers X_i, stabilizers Z_i, all Z known).
  void reset_all();

  void apply_h(std::uint32_t q);
  void apply_s(std::uint32_t q);
  void apply_s_dag(std::uint32_t q);
  void apply_x(std::uint32_t q);
  void apply_y(std::uint32_t q);
  void apply_z(std::uint32_t q);
  void apply_cx(std::uint32_t c, std::uint32_t t);
  void apply_cz(std::uint32_t a, std::uint32_t b);
  void apply_swap(std::uint32_t a, std::uint32_t b);

  /// Z-basis measurement; random outcomes consume exactly one rng word
  /// (identical to Tableau::measure).
  bool measure(std::uint32_t q, Rng& rng);
  /// Reset to |0>: measure, then flip if the outcome was 1.
  void reset(std::uint32_t q, Rng& rng);

 private:
  bool deterministic_outcome(std::uint32_t q);

  std::uint32_t n_;
  std::uint64_t stab_mask_;   // bits n..2n-1
  std::uint64_t xcol_[kMaxQubits];  // bit r = X component of row r
  std::uint64_t zcol_[kMaxQubits];
  std::uint64_t signs_;
  // Known-Z fast path: bit q of known_ set => Z_q is deterministic with
  // value bit q of value_ (and the tableau state is untouched by measuring
  // it).
  std::uint32_t known_ = 0;
  std::uint32_t value_ = 0;
};

/// Word-sliced tableau: W = ceil(2n / 64) words per qubit column, same
/// algorithms and RNG order as CompactTableau with the per-word kernels
/// carrying phase counters and prefix parities across word boundaries.
class WideTableau {
 public:
  explicit WideTableau(std::size_t num_qubits);

  void reset_all();

  void apply_h(std::uint32_t q);
  void apply_s(std::uint32_t q);
  void apply_s_dag(std::uint32_t q);
  void apply_x(std::uint32_t q);
  void apply_y(std::uint32_t q);
  void apply_z(std::uint32_t q);
  void apply_cx(std::uint32_t c, std::uint32_t t);
  void apply_cz(std::uint32_t a, std::uint32_t b);
  void apply_swap(std::uint32_t a, std::uint32_t b);

  bool measure(std::uint32_t q, Rng& rng);
  void reset(std::uint32_t q, Rng& rng);

  std::size_t num_words() const { return words_; }

 private:
  bool deterministic_outcome(std::uint32_t q);

  std::uint64_t* xcol(std::uint32_t q) { return xcols_.data() + q * words_; }
  std::uint64_t* zcol(std::uint32_t q) { return zcols_.data() + q * words_; }

  bool known_bit(std::uint32_t q) const {
    return (known_[q >> 6] >> (q & 63)) & 1u;
  }
  bool value_bit(std::uint32_t q) const {
    return (value_[q >> 6] >> (q & 63)) & 1u;
  }
  void set_known(std::uint32_t q, bool value) {
    known_[q >> 6] |= std::uint64_t{1} << (q & 63);
    value_[q >> 6] = (value_[q >> 6] & ~(std::uint64_t{1} << (q & 63))) |
                     (std::uint64_t{value} << (q & 63));
  }
  void clear_known(std::uint32_t q) {
    known_[q >> 6] &= ~(std::uint64_t{1} << (q & 63));
  }
  void flip_value(std::uint32_t q) {
    value_[q >> 6] ^= std::uint64_t{1} << (q & 63);
  }

  // Sparsity index.  Surface-code columns stay sparse (stabilizer and
  // destabilizer rows are spatially local), so every measurement loop runs
  // over nonzero words and occupied columns instead of all n * W slots:
  //  * xmask_[q] / zmask_[q]: bit w set iff the column's word w is nonzero
  //    (words_ <= 32, so one 64-bit mask always suffices);
  //  * occ_x_ / occ_z_ [w * cwords_ + (q >> 6)]: the reverse map — bit q
  //    set iff column q's word w is nonzero — giving the candidate columns
  //    of a needle word (pivot row, destabilizer row, selected-row window)
  //    as a few word ORs instead of an O(n) column scan.
  // Every column mutation re-syncs the touched (q, w) slots, keeping the
  // index exact rather than conservative.
  void sync_x(std::uint32_t q, std::uint32_t w) {
    const std::uint64_t wb = std::uint64_t{1} << w;
    const std::uint64_t qb = std::uint64_t{1} << (q & 63);
    std::uint64_t& occ =
        occ_x_[static_cast<std::size_t>(w) * cwords_ + (q >> 6)];
    if (xcol(q)[w] != 0) {
      xmask_[q] |= wb;
      occ |= qb;
    } else {
      xmask_[q] &= ~wb;
      occ &= ~qb;
    }
  }
  void sync_z(std::uint32_t q, std::uint32_t w) {
    const std::uint64_t wb = std::uint64_t{1} << w;
    const std::uint64_t qb = std::uint64_t{1} << (q & 63);
    std::uint64_t& occ =
        occ_z_[static_cast<std::size_t>(w) * cwords_ + (q >> 6)];
    if (zcol(q)[w] != 0) {
      zmask_[q] |= wb;
      occ |= qb;
    } else {
      zmask_[q] &= ~wb;
      occ &= ~qb;
    }
  }

  std::uint32_t n_;
  std::uint32_t words_;   // ceil(2n / 64): words per column
  std::uint32_t kwords_;  // ceil(n / 64): words of the known/value masks
  std::uint32_t cwords_;  // ceil(n / 64): words of a column-index bitset
  std::vector<std::uint64_t> xcols_;  // [q * words_ + w]
  std::vector<std::uint64_t> zcols_;
  std::vector<std::uint64_t> signs_;      // words_
  std::vector<std::uint64_t> stab_mask_;  // bits n..2n-1, per word
  std::vector<std::uint64_t> known_;      // kwords_
  std::vector<std::uint64_t> value_;
  std::vector<std::uint64_t> xmask_, zmask_;  // [q]: nonzero-word masks
  std::vector<std::uint64_t> occ_x_, occ_z_;  // [w * cwords_ + cw]
  // Measurement scratch (member-owned: measure stays allocation-free).
  std::vector<std::uint64_t> m_, lo_, hi_, sel_, cand_;
  std::vector<std::uint32_t> hitk_;  // support(pivot row) of this measure
};

/// Drop-in exact sampler over a shared precompiled CircuitTape; see the
/// file comment for the engine-selection rule and the contract with
/// TableauSimulator.
class CompactTableauSimulator {
 public:
  /// Upper bound of the word-sliced engine (rotated d = 21 needs 881; the
  /// generic tableau takes over beyond this).
  static constexpr std::size_t kMaxSupportedQubits = 1024;

  static bool supports(std::size_t num_qubits) {
    return num_qubits > 0 && num_qubits <= kMaxSupportedQubits;
  }

  /// Canonical name of the engine the replay path picks for a device of
  /// `num_qubits`: "compact" (single word, n <= 31), "compact:w<W>"
  /// (word-sliced), or "tableau" (generic fallback past the cap).
  static std::string engine_name(std::size_t num_qubits);

  explicit CompactTableauSimulator(std::shared_ptr<const CircuitTape> tape);

  void sample_into(Rng& rng, BitVec& record);
  void sample_with_erasure_into(Rng& rng,
                                const std::vector<std::uint32_t>& corrupted,
                                BitVec& record);
  /// Conditioned residual re-run; see TableauSimulator::sample_replay_into.
  void sample_replay_into(Rng& rng,
                          const std::vector<std::uint32_t>* corrupted,
                          const ReplayConstraint& constraint, BitVec& record);

 private:
  template <class TableauT>
  void run_with(TableauT& t, Rng& rng,
                const std::vector<std::uint32_t>* corrupted, BitVec& record,
                const ReplayConstraint* constraint);

  std::shared_ptr<const CircuitTape> tape_;
  std::unique_ptr<CompactTableau> narrow_;  // n <= CompactTableau::kMaxQubits
  std::unique_ptr<WideTableau> wide_;       // otherwise
};

}  // namespace radsurf
