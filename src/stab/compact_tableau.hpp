// Single-word stabilizer engine for small devices (n <= 32 qubits).
//
// The campaign engine's residual shots — heralded resets at reference-
// random sites, which no Pauli-frame update can express — need an exact
// per-shot tableau walk.  For the paper's device sizes the whole
// Aaronson–Gottesman tableau fits in one 64-bit word per qubit column
// (2n + 1 rows <= 64 with n <= 32), which turns every gate into a couple
// of register operations and every measurement into a short word-parallel
// loop:
//
//  * random outcomes run the batched pivot elimination of stab/tableau.cpp
//    collapsed to single words (2-bit packed phase counters in two
//    registers);
//  * deterministic outcomes evaluate the sign of the selected stabilizer
//    product with a prefix-XOR scan per qubit column instead of the
//    bit-serial scratch accumulation — the per-row Aaronson–Gottesman g
//    phase needs the parity of the already-accumulated rows, which is
//    exactly an exclusive prefix-xor over the selected row bits;
//  * a known-Z fast path skips collapse work entirely: once Z_q is
//    measured or reset its value stays deterministic under Z-diagonal
//    gates, CX controls, and collapses of *other* qubits (projectors
//    commute with a stabilizer ±Z_q), so the dense reset trains of the
//    radiation model cost O(1) after the first collapse.
//
// Contracts:
//  * RNG determinism — the engine consumes randomness in exactly the same
//    order as the generic TableauSimulator on the same tape, so the two
//    produce bit-identical records from equal RNG streams — the property
//    the cross-engine test suite pins down.
//  * Thread-safety — a simulator instance is single-threaded mutable
//    state; the campaign engine gives each parallel_chunks worker its own
//    instance (one per chunk, reused across that chunk's shots).
//  * Engine selection — InjectionEngine's batched residual replay uses
//    this engine automatically whenever the transpiled device fits
//    kMaxQubits (<= 32), falling back to the generic tableau beyond.
//    SamplingPath::EXACT deliberately keeps the generic engine: it is the
//    paper's baseline methodology and the oracle this engine is validated
//    against.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "stab/tableau_sim.hpp"
#include "util/bitvec.hpp"
#include "util/rng.hpp"

namespace radsurf {

class CompactTableau {
 public:
  static constexpr std::size_t kMaxQubits = 32;

  explicit CompactTableau(std::size_t num_qubits);

  /// Reset to |0...0> (destabilizers X_i, stabilizers Z_i, all Z known).
  void reset_all();

  void apply_h(std::uint32_t q);
  void apply_s(std::uint32_t q);
  void apply_s_dag(std::uint32_t q);
  void apply_x(std::uint32_t q);
  void apply_y(std::uint32_t q);
  void apply_z(std::uint32_t q);
  void apply_cx(std::uint32_t c, std::uint32_t t);
  void apply_cz(std::uint32_t a, std::uint32_t b);
  void apply_swap(std::uint32_t a, std::uint32_t b);

  /// Z-basis measurement; random outcomes consume exactly one rng word
  /// (identical to Tableau::measure).
  bool measure(std::uint32_t q, Rng& rng);
  /// Reset to |0>: measure, then flip if the outcome was 1.
  void reset(std::uint32_t q, Rng& rng);

 private:
  bool deterministic_outcome(std::uint32_t q);

  std::uint32_t n_;
  std::uint64_t stab_mask_;   // bits n..2n-1
  std::uint64_t xcol_[kMaxQubits];  // bit r = X component of row r
  std::uint64_t zcol_[kMaxQubits];
  std::uint64_t signs_;
  // Known-Z fast path: bit q of known_ set => Z_q is deterministic with
  // value bit q of value_ (and the tableau state is untouched by measuring
  // it).
  std::uint32_t known_ = 0;
  std::uint32_t value_ = 0;
};

/// Drop-in exact sampler over a shared precompiled CircuitTape; see the
/// file comment for the contract with TableauSimulator.
class CompactTableauSimulator {
 public:
  static bool supports(std::size_t num_qubits) {
    return num_qubits > 0 && num_qubits <= CompactTableau::kMaxQubits;
  }

  explicit CompactTableauSimulator(std::shared_ptr<const CircuitTape> tape);

  void sample_into(Rng& rng, BitVec& record);
  void sample_with_erasure_into(Rng& rng,
                                const std::vector<std::uint32_t>& corrupted,
                                BitVec& record);
  /// Conditioned residual re-run; see TableauSimulator::sample_replay_into.
  void sample_replay_into(Rng& rng,
                          const std::vector<std::uint32_t>* corrupted,
                          const ReplayConstraint& constraint, BitVec& record);

 private:
  void run(Rng& rng, const std::vector<std::uint32_t>* corrupted,
           BitVec& record, const ReplayConstraint* constraint);

  std::shared_ptr<const CircuitTape> tape_;
  CompactTableau tableau_;
};

}  // namespace radsurf
