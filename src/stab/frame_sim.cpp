#include "stab/frame_sim.hpp"

#include <bit>
#include <cmath>

#include "util/error.hpp"

namespace radsurf {

FrameSimulator::FrameSimulator(const Circuit& circuit, std::size_t batch_size,
                               const ReferenceTrace* trace)
    : circuit_(&circuit), batch_(batch_size) {
  RADSURF_CHECK_ARG(batch_size > 0, "batch size must be positive");
  has_reset_noise_ = contains_reset_noise(circuit);
  if (trace) {
    trace_ = trace;
  } else if (has_reset_noise_) {
    owned_trace_ = TableauSimulator(circuit).reference_trace();
    trace_ = &owned_trace_;
  }
}

void FrameSimulator::fill_uniform(BitVec& bits, Rng& rng) {
  const std::size_t n = bits.size();
  auto* w = bits.words();
  for (std::size_t i = 0; i < bits.num_words(); ++i) w[i] = rng.next();
  // Keep padding bits zero (BitVec invariant).
  const std::size_t tail = n % BitVec::kWordBits;
  if (tail != 0 && bits.num_words() > 0)
    w[bits.num_words() - 1] &= (BitVec::Word{1} << tail) - 1;
}

void FrameSimulator::fill_biased(BitVec& bits, double p, Rng& rng) {
  bits.clear();
  if (p <= 0.0) return;
  const std::size_t n = bits.size();
  if (p >= 1.0) {
    auto* w = bits.words();
    for (std::size_t i = 0; i < bits.num_words(); ++i) w[i] = ~BitVec::Word{0};
    const std::size_t tail = n % BitVec::kWordBits;
    if (tail != 0 && bits.num_words() > 0)
      w[bits.num_words() - 1] &= (BitVec::Word{1} << tail) - 1;
    return;
  }
  if (p < 0.3) {
    // Geometric skipping: expected work O(n*p).  log1p(-p) is memoized on
    // p: a circuit walk calls this with the same handful of noise
    // probabilities thousands of times per batch, and the log was costing
    // as much as the skipping it enables.
    thread_local double last_p = -1.0;
    thread_local double last_log1mp = 0.0;
    if (p != last_p) {
      last_p = p;
      last_log1mp = std::log1p(-p);
    }
    const double log1mp = last_log1mp;
    double cursor = -1.0;
    while (true) {
      const double u = rng.uniform();
      const double skip = std::floor(std::log1p(-u) / log1mp);
      cursor += 1.0 + skip;
      if (cursor >= static_cast<double>(n)) break;
      bits.set(static_cast<std::size_t>(cursor), true);
    }
  } else {
    for (std::size_t i = 0; i < n; ++i)
      if (rng.bernoulli(p)) bits.set(i, true);
  }
}

const MeasurementFlips& FrameSimulator::run(Rng& rng, BitVec* residual,
                                            ResidualDetail* detail) {
  return run_impl(rng, nullptr, trace_, residual, detail);
}

const MeasurementFlips& FrameSimulator::run_with_erasure(
    Rng& rng, const std::vector<std::uint32_t>& corrupted, BitVec* residual,
    ResidualDetail* detail) {
  if (corrupted.empty())
    return run_impl(rng, nullptr, trace_, residual, detail);
  if (trace_ != nullptr && trace_->corrupted == corrupted)
    return run_impl(rng, &corrupted, trace_, residual, detail);
  // No erasure-aware trace supplied: compute one for this call.
  const ReferenceTrace local =
      TableauSimulator(*circuit_).reference_trace(&corrupted);
  return run_impl(rng, &corrupted, &local, residual, detail);
}

const MeasurementFlips& FrameSimulator::run_group(
    Rng& rng, const ReplayConstraint& constraint,
    const ConditionedReference& reference,
    const std::vector<std::uint32_t>* corrupted, BitVec* secondary,
    ResidualDetail* detail) {
  const Circuit& circuit = *circuit_;
  const std::size_t nq = circuit.num_qubits();
  RADSURF_CHECK_ARG(secondary && secondary->size() == batch_,
                    "run_group needs a secondary mask sized to the batch");
  RADSURF_CHECK_ARG(detail != nullptr,
                    "run_group needs a ResidualDetail for secondary shots");
  secondary->clear();
  detail->random_sites.clear();
  detail->heralds.clear();
  detail->strike_ordinals.clear();

  xf_.resize(nq);
  zf_.resize(nq);
  for (BitVec& row : xf_) row.reset(batch_);
  for (BitVec& row : zf_) row.reset(batch_);
  flips_.resize(circuit.num_measurements());
  std::vector<BitVec>& xf = xf_;
  std::vector<BitVec>& zf = zf_;
  MeasurementFlips& flips = flips_;
  std::size_t rec = 0;

  ReplayConstraintCursor cursor{&constraint, 0, 0};
  const ReferenceTrace& trace = reference.trace;
  const std::vector<CollapseEvent>& events = reference.events;
  const bool strike = corrupted && !corrupted->empty() &&
                      trace.num_physical_ops > 0 && constraint.has_strike;
  RADSURF_CHECK_ARG(!(corrupted && !corrupted->empty()) || constraint.has_strike,
                    "run_group with an erasure set requires a pinned strike");

  // Collapse-opportunity counter, advanced in lockstep with the group's
  // conditioned walk (the counting rule lives on CollapseEvent).  Events
  // are sorted by construction; each one is consumed exactly once.
  std::uint64_t opportunity = 0;
  std::size_t next_event = 0;
  const auto take_event = [&]() -> const CollapseEvent* {
    const CollapseEvent* ev = nullptr;
    if (next_event < events.size() &&
        events[next_event].opportunity == opportunity)
      ev = &events[next_event++];
    ++opportunity;
    return ev;
  };
  // Random collapse: the conditioned reference pinned the outcome to 0;
  // each member draws a fresh coin and the coin-1 shots differ from the
  // pinned branch by exactly the collapse destabilizer — inject it.
  coin_.reset(batch_);
  BitVec& coin = coin_;
  const auto apply_event = [&](const CollapseEvent* ev) {
    if (!ev) return;
    fill_uniform(coin, rng);
    for (std::uint32_t q : ev->dx) xf[q] ^= coin;
    for (std::uint32_t q : ev->dz) zf[q] ^= coin;
  };
  // Collapse-then-reset (pinned fired resets, strike resets): after the
  // event injection both member and conditioned reference hold |0> on q,
  // so the q-frame pins to 0 with an unobservable (fresh-uniform) Z part.
  const auto group_reset = [&](std::uint32_t q) {
    apply_event(take_event());
    xf[q].clear();
    fill_uniform(zf[q], rng);
  };

  mask_.reset(batch_);
  BitVec& mask = mask_;
  std::size_t reset_site = 0;
  std::size_t physical_ordinal = 0;

  const auto for_each_set = [&mask](const auto& body) {
    for_each_set_bit(mask.words(), mask.num_words(), body);
  };
  auto depolarize1 = [&](std::uint32_t q, double p) {
    fill_biased(mask, p, rng);
    for_each_set([&](std::size_t s) {
      switch (rng.below(3)) {
        case 0: xf[q].flip(s); break;
        case 1: xf[q].flip(s); zf[q].flip(s); break;
        default: zf[q].flip(s); break;
      }
    });
  };

  for (const Instruction& ins : circuit.instructions()) {
    const GateInfo& info = gate_info(ins.gate);
    if (info.is_annotation) continue;
    const auto& tg = ins.targets;

    if (!info.is_noise) {
      // Physical op: the group's pinned strike lands immediately before it,
      // on every shot at once.
      if (strike && physical_ordinal == constraint.strike_ordinal)
        for (std::uint32_t q : *corrupted) group_reset(q);
      ++physical_ordinal;
    }

    switch (ins.gate) {
      case Gate::I:
      case Gate::X:
      case Gate::Y:
      case Gate::Z:
        break;
      case Gate::H:
        for (auto q : tg) xf[q].swap(zf[q]);
        break;
      case Gate::S:
      case Gate::S_DAG:
        for (auto q : tg) zf[q] ^= xf[q];
        break;
      case Gate::CX:
        for (std::size_t i = 0; i + 1 < tg.size(); i += 2) {
          xf[tg[i + 1]] ^= xf[tg[i]];
          zf[tg[i]] ^= zf[tg[i + 1]];
        }
        break;
      case Gate::CZ:
        for (std::size_t i = 0; i + 1 < tg.size(); i += 2) {
          zf[tg[i + 1]] ^= xf[tg[i]];
          zf[tg[i]] ^= xf[tg[i + 1]];
        }
        break;
      case Gate::SWAP:
        for (std::size_t i = 0; i + 1 < tg.size(); i += 2) {
          xf[tg[i]].swap(xf[tg[i + 1]]);
          zf[tg[i]].swap(zf[tg[i + 1]]);
        }
        break;
      case Gate::M:
        for (auto q : tg) {
          // A random collapse's coin lands in the X frame through the
          // destabilizer (D always has X on the measured qubit), so the
          // flip row captures it; injection must precede the capture.
          apply_event(take_event());
          flips[rec++] = xf[q];
          fill_uniform(mask, rng);
          zf[q] ^= mask;
        }
        break;
      case Gate::R:
        for (auto q : tg) group_reset(q);
        break;
      case Gate::MR:
        for (auto q : tg) {
          apply_event(take_event());
          flips[rec++] = xf[q];
          xf[q].clear();
          fill_uniform(zf[q], rng);
        }
        break;
      case Gate::X_ERROR:
        for (auto q : tg) {
          fill_biased(mask, ins.args[0], rng);
          xf[q] ^= mask;
        }
        break;
      case Gate::Y_ERROR:
        for (auto q : tg) {
          fill_biased(mask, ins.args[0], rng);
          xf[q] ^= mask;
          zf[q] ^= mask;
        }
        break;
      case Gate::Z_ERROR:
        for (auto q : tg) {
          fill_biased(mask, ins.args[0], rng);
          zf[q] ^= mask;
        }
        break;
      case Gate::DEPOLARIZE1:
      case Gate::DEPOLARIZE2:
        for (auto q : tg) depolarize1(q, ins.args[0]);
        break;
      case Gate::DEPOLARIZE2_UNIFORM:
        for (std::size_t i = 0; i + 1 < tg.size(); i += 2) {
          fill_biased(mask, ins.args[0], rng);
          for_each_set([&](std::size_t s) {
            const auto k = rng.below(15) + 1;
            const auto pa = static_cast<int>(k % 4);
            const auto pb = static_cast<int>(k / 4);
            if (pa & 1) xf[tg[i]].flip(s);
            if (pa & 2) zf[tg[i]].flip(s);
            if (pb & 1) xf[tg[i + 1]].flip(s);
            if (pb & 2) zf[tg[i + 1]].flip(s);
          });
        }
        break;
      case Gate::RESET_ERROR: {
        for (auto q : tg) {
          RADSURF_ASSERT(reset_site < trace.reset_sites.size());
          const auto site = static_cast<std::uint32_t>(reset_site);
          const std::int8_t v = trace.reset_sites[reset_site++];
          bool pinned_fired = false;
          if (cursor.pinned(site, pinned_fired)) {
            // Group-pinned site: fired replays the reset on every shot
            // (it is part of the signature); unfired is a no-op and —
            // like the exact replay — consumes no randomness.
            if (pinned_fired) group_reset(q);
            continue;
          }
          // Unpinned site: member-sampled herald, framed against the
          // *conditioned* reference value.
          fill_biased(mask, ins.args[0], rng);
          if (v == 0 && detail && ins.args[0] > 0.0) {
            detail->random_sites.push_back(site);
            detail->heralds.push_back(mask);
          }
          if (mask.none()) continue;
          if (v == 0) {
            // Conditioned-random site heralded: the shot leaves the group
            // formalism and re-runs exactly under the merged constraint.
            *secondary |= mask;
            continue;
          }
          BitVec::Word* xw = xf[q].words();
          BitVec::Word* zw = zf[q].words();
          const BitVec::Word* mw = mask.words();
          const std::size_t W = mask.num_words();
          for (std::size_t w = 0; w < W; ++w) {
            const BitVec::Word m = mw[w];
            if (!m) continue;
            xw[w] = v < 0 ? (xw[w] | m) : (xw[w] & ~m);
            zw[w] = (zw[w] & ~m) | (rng.next() & m);
          }
        }
        break;
      }
      default:
        RADSURF_ASSERT_MSG(false, "unhandled instruction in group replay");
    }
  }
  RADSURF_ASSERT(rec == flips.size());
  RADSURF_ASSERT_MSG(next_event == events.size(),
                     "group replay and conditioned walk disagree on "
                     "collapse opportunities");
  return flips;
}

const MeasurementFlips& FrameSimulator::run_impl(
    Rng& rng, const std::vector<std::uint32_t>* corrupted,
    const ReferenceTrace* trace, BitVec* residual, ResidualDetail* detail) {
  const Circuit& circuit = *circuit_;
  const std::size_t nq = circuit.num_qubits();
  // Reshape the persistent scratch in place: repeat runs (chunk loops) pay
  // zero allocations once the shapes have stabilized.
  xf_.resize(nq);
  zf_.resize(nq);
  for (BitVec& row : xf_) row.reset(batch_);
  for (BitVec& row : zf_) row.reset(batch_);
  flips_.resize(circuit.num_measurements());
  std::vector<BitVec>& xf = xf_;
  std::vector<BitVec>& zf = zf_;
  MeasurementFlips& flips = flips_;
  std::size_t rec = 0;

  if (residual) {
    RADSURF_CHECK_ARG(residual->size() == batch_,
                      "residual mask must be sized to the batch");
    residual->clear();
  }
  if (detail) {
    // Reset all conditioning fields: a reused ResidualDetail must never
    // leak a previous batch's signature into this one.
    detail->random_sites.clear();
    detail->heralds.clear();
    detail->strike_ordinals.clear();
  }
  auto need_residual = [&]() -> BitVec& {
    if (!residual)
      throw CircuitError(
          "frame simulation heralded a reset at a reference-random site; "
          "caller must supply a residual mask (or use TableauSimulator)");
    return *residual;
  };

  // Shared-instant erasure: draw each shot's strike ordinal (uniform over
  // the physical operations) and bucket shots by ordinal so the walk below
  // touches each striking shot exactly once.
  std::vector<std::uint32_t>& strike_shots = strike_shots_;
  std::vector<std::uint32_t>& strike_begin = strike_begin_;
  strike_shots.clear();
  strike_begin.clear();
  const std::size_t num_corrupted = corrupted ? corrupted->size() : 0;
  if (corrupted) {
    RADSURF_ASSERT(trace && trace->corrupted == *corrupted);
    const std::size_t P = trace->num_physical_ops;
    if (P > 0) {
      std::vector<std::uint32_t>& strike_of = strike_of_;
      strike_of.resize(batch_);
      std::vector<std::uint32_t> counts(P + 1, 0);
      for (std::size_t s = 0; s < batch_; ++s) {
        strike_of[s] = static_cast<std::uint32_t>(rng.below(P));
        ++counts[strike_of[s] + 1];
      }
      if (detail) detail->strike_ordinals = strike_of;
      strike_begin.assign(P + 1, 0);
      for (std::size_t k = 1; k <= P; ++k)
        strike_begin[k] = strike_begin[k - 1] + counts[k];
      strike_shots.resize(batch_);
      std::vector<std::uint32_t> cursor(strike_begin.begin(),
                                        strike_begin.end() - 1);
      for (std::size_t s = 0; s < batch_; ++s)
        strike_shots[cursor[strike_of[s]]++] = static_cast<std::uint32_t>(s);
    }
  }

  // Applies one reset to one shot's frame, given the reference value v at
  // the site: deterministic |b> reference pins the X frame component to b
  // (the noisy qubit becomes exactly |0>) and randomizes the Z component;
  // a reference-random site (v == 0) sends the shot to the residual mask.
  auto apply_shot_reset = [&](std::uint32_t q, std::size_t s, std::int8_t v) {
    if (v == 0) {
      need_residual().set(s, true);
      return;
    }
    xf[q].set(s, v < 0);
    zf[q].set(s, rng.next() & 1);
  };

  mask_.reset(batch_);
  BitVec& mask = mask_;
  std::size_t reset_site = 0;       // cursor into trace->reset_sites
  std::size_t physical_ordinal = 0; // cursor over physical operations

  // Word-scan the mask's set bits in place (set_bits() would allocate a
  // vector per noise instruction, the chunk loop's other hidden cost).
  const auto for_each_set = [&mask](const auto& body) {
    for_each_set_bit(mask.words(), mask.num_words(), body);
  };

  auto depolarize1 = [&](std::uint32_t q, double p) {
    fill_biased(mask, p, rng);
    for_each_set([&](std::size_t s) {
      switch (rng.below(3)) {
        case 0: xf[q].flip(s); break;                     // X
        case 1: xf[q].flip(s); zf[q].flip(s); break;      // Y
        default: zf[q].flip(s); break;                    // Z
      }
    });
  };

  for (const Instruction& ins : circuit.instructions()) {
    const GateInfo& info = gate_info(ins.gate);
    if (info.is_annotation) continue;
    const auto& tg = ins.targets;

    if (!info.is_noise) {
      // Physical operation: erasure strikes land immediately before it.
      if (!strike_begin.empty()) {
        const std::size_t k = physical_ordinal;
        for (std::uint32_t i = strike_begin[k]; i < strike_begin[k + 1]; ++i) {
          const std::uint32_t s = strike_shots[i];
          for (std::size_t j = 0; j < num_corrupted; ++j)
            apply_shot_reset((*corrupted)[j], s,
                             trace->erasure_sites[k * num_corrupted + j]);
        }
      }
      ++physical_ordinal;
    }

    switch (ins.gate) {
      case Gate::I:
      case Gate::X:
      case Gate::Y:
      case Gate::Z:
        break;  // deterministic Paulis commute through the frame
      case Gate::H:
        for (auto q : tg) xf[q].swap(zf[q]);
        break;
      case Gate::S:
      case Gate::S_DAG:
        for (auto q : tg) zf[q] ^= xf[q];
        break;
      case Gate::CX:
        for (std::size_t i = 0; i + 1 < tg.size(); i += 2) {
          xf[tg[i + 1]] ^= xf[tg[i]];
          zf[tg[i]] ^= zf[tg[i + 1]];
        }
        break;
      case Gate::CZ:
        for (std::size_t i = 0; i + 1 < tg.size(); i += 2) {
          zf[tg[i + 1]] ^= xf[tg[i]];
          zf[tg[i]] ^= xf[tg[i + 1]];
        }
        break;
      case Gate::SWAP:
        for (std::size_t i = 0; i + 1 < tg.size(); i += 2) {
          xf[tg[i]].swap(xf[tg[i + 1]]);
          zf[tg[i]].swap(zf[tg[i + 1]]);
        }
        break;
      case Gate::M:
        for (auto q : tg) {
          flips[rec++] = xf[q];
          fill_uniform(mask, rng);  // measurement collapse randomization
          zf[q] ^= mask;
        }
        break;
      case Gate::R:
        for (auto q : tg) {
          xf[q].clear();
          fill_uniform(zf[q], rng);
        }
        break;
      case Gate::MR:
        for (auto q : tg) {
          flips[rec++] = xf[q];
          xf[q].clear();
          fill_uniform(zf[q], rng);
        }
        break;
      case Gate::X_ERROR:
        for (auto q : tg) {
          fill_biased(mask, ins.args[0], rng);
          xf[q] ^= mask;
        }
        break;
      case Gate::Y_ERROR:
        for (auto q : tg) {
          fill_biased(mask, ins.args[0], rng);
          xf[q] ^= mask;
          zf[q] ^= mask;
        }
        break;
      case Gate::Z_ERROR:
        for (auto q : tg) {
          fill_biased(mask, ins.args[0], rng);
          zf[q] ^= mask;
        }
        break;
      case Gate::DEPOLARIZE1:
        for (auto q : tg) depolarize1(q, ins.args[0]);
        break;
      case Gate::DEPOLARIZE2:
        // E (x) E: independent channels on the two targets.
        for (auto q : tg) depolarize1(q, ins.args[0]);
        break;
      case Gate::DEPOLARIZE2_UNIFORM:
        for (std::size_t i = 0; i + 1 < tg.size(); i += 2) {
          fill_biased(mask, ins.args[0], rng);
          for_each_set([&](std::size_t s) {
            const auto k = rng.below(15) + 1;
            const auto pa = static_cast<int>(k % 4);
            const auto pb = static_cast<int>(k / 4);
            if (pa & 1) xf[tg[i]].flip(s);
            if (pa & 2) zf[tg[i]].flip(s);
            if (pb & 1) xf[tg[i + 1]].flip(s);
            if (pb & 2) zf[tg[i + 1]].flip(s);
          });
        }
        break;
      case Gate::RESET_ERROR: {
        // Heralded-reset fast path: sample herald bits per shot, then apply
        // the reset as a frame update conditioned on the reference value.
        RADSURF_ASSERT_MSG(trace, "RESET_ERROR without a reference trace");
        for (auto q : tg) {
          RADSURF_ASSERT(reset_site < trace->reset_sites.size());
          const std::int8_t v = trace->reset_sites[reset_site++];
          fill_biased(mask, ins.args[0], rng);
          if (v == 0 && detail && ins.args[0] > 0.0) {
            // Conditioning data: every reference-random site belongs to
            // the batch signature, fired anywhere in the batch or not
            // (the replay must pin no-fire outcomes too).
            detail->random_sites.push_back(
                static_cast<std::uint32_t>(reset_site - 1));
            detail->heralds.push_back(mask);
          }
          if (mask.none()) continue;
          if (v == 0) {
            // Reference is random here: heralded shots leave the frame
            // formalism and must be re-run exactly.
            need_residual() |= mask;
            continue;
          }
          BitVec::Word* xw = xf[q].words();
          BitVec::Word* zw = zf[q].words();
          const BitVec::Word* mw = mask.words();
          const std::size_t W = mask.num_words();
          for (std::size_t w = 0; w < W; ++w) {
            const BitVec::Word m = mw[w];
            if (!m) continue;
            // X frame component := reference bit b (v < 0 means |1>),
            // Z frame component := fresh randomness (reset output is a
            // Z eigenstate; its Z frame is unobservable, as after R).
            xw[w] = v < 0 ? (xw[w] | m) : (xw[w] & ~m);
            zw[w] = (zw[w] & ~m) | (rng.next() & m);
          }
        }
        break;
      }
      default:
        RADSURF_ASSERT_MSG(false, "unhandled instruction in frame sim");
    }
  }
  RADSURF_ASSERT(rec == flips.size());
  return flips;
}

}  // namespace radsurf
