#include "stab/frame_sim.hpp"

#include <cmath>

#include "util/error.hpp"

namespace radsurf {

FrameSimulator::FrameSimulator(const Circuit& circuit, std::size_t batch_size)
    : circuit_(circuit), batch_(batch_size) {
  RADSURF_CHECK_ARG(batch_size > 0, "batch size must be positive");
}

void FrameSimulator::fill_uniform(BitVec& bits, Rng& rng) {
  const std::size_t n = bits.size();
  auto* w = bits.words();
  for (std::size_t i = 0; i < bits.num_words(); ++i) w[i] = rng.next();
  // Keep padding bits zero (BitVec invariant).
  const std::size_t tail = n % BitVec::kWordBits;
  if (tail != 0 && bits.num_words() > 0)
    w[bits.num_words() - 1] &= (BitVec::Word{1} << tail) - 1;
}

void FrameSimulator::fill_biased(BitVec& bits, double p, Rng& rng) {
  bits.clear();
  if (p <= 0.0) return;
  const std::size_t n = bits.size();
  if (p >= 1.0) {
    for (std::size_t i = 0; i < n; ++i) bits.set(i, true);
    return;
  }
  if (p < 0.3) {
    // Geometric skipping: expected work O(n*p).
    const double log1mp = std::log1p(-p);
    double cursor = -1.0;
    while (true) {
      const double u = rng.uniform();
      const double skip = std::floor(std::log1p(-u) / log1mp);
      cursor += 1.0 + skip;
      if (cursor >= static_cast<double>(n)) break;
      bits.set(static_cast<std::size_t>(cursor), true);
    }
  } else {
    for (std::size_t i = 0; i < n; ++i)
      if (rng.bernoulli(p)) bits.set(i, true);
  }
}

MeasurementFlips FrameSimulator::run(Rng& rng) {
  const std::size_t nq = circuit_.num_qubits();
  std::vector<BitVec> xf(nq, BitVec(batch_));
  std::vector<BitVec> zf(nq, BitVec(batch_));
  MeasurementFlips flips(circuit_.num_measurements(), BitVec(batch_));
  std::size_t rec = 0;

  BitVec mask(batch_);

  auto depolarize1 = [&](std::uint32_t q, double p) {
    fill_biased(mask, p, rng);
    for (std::size_t s : mask.set_bits()) {
      switch (rng.below(3)) {
        case 0: xf[q].flip(s); break;                     // X
        case 1: xf[q].flip(s); zf[q].flip(s); break;      // Y
        default: zf[q].flip(s); break;                    // Z
      }
    }
  };

  for (const Instruction& ins : circuit_.instructions()) {
    const GateInfo& info = gate_info(ins.gate);
    if (info.is_annotation) continue;
    const auto& tg = ins.targets;

    switch (ins.gate) {
      case Gate::I:
      case Gate::X:
      case Gate::Y:
      case Gate::Z:
        break;  // deterministic Paulis commute through the frame
      case Gate::H:
        for (auto q : tg) xf[q].swap(zf[q]);
        break;
      case Gate::S:
      case Gate::S_DAG:
        for (auto q : tg) zf[q] ^= xf[q];
        break;
      case Gate::CX:
        for (std::size_t i = 0; i + 1 < tg.size(); i += 2) {
          xf[tg[i + 1]] ^= xf[tg[i]];
          zf[tg[i]] ^= zf[tg[i + 1]];
        }
        break;
      case Gate::CZ:
        for (std::size_t i = 0; i + 1 < tg.size(); i += 2) {
          zf[tg[i + 1]] ^= xf[tg[i]];
          zf[tg[i]] ^= xf[tg[i + 1]];
        }
        break;
      case Gate::SWAP:
        for (std::size_t i = 0; i + 1 < tg.size(); i += 2) {
          xf[tg[i]].swap(xf[tg[i + 1]]);
          zf[tg[i]].swap(zf[tg[i + 1]]);
        }
        break;
      case Gate::M:
        for (auto q : tg) {
          flips[rec++] = xf[q];
          fill_uniform(mask, rng);  // measurement collapse randomization
          zf[q] ^= mask;
        }
        break;
      case Gate::R:
        for (auto q : tg) {
          xf[q].clear();
          fill_uniform(zf[q], rng);
        }
        break;
      case Gate::MR:
        for (auto q : tg) {
          flips[rec++] = xf[q];
          xf[q].clear();
          fill_uniform(zf[q], rng);
        }
        break;
      case Gate::X_ERROR:
        for (auto q : tg) {
          fill_biased(mask, ins.args[0], rng);
          xf[q] ^= mask;
        }
        break;
      case Gate::Y_ERROR:
        for (auto q : tg) {
          fill_biased(mask, ins.args[0], rng);
          xf[q] ^= mask;
          zf[q] ^= mask;
        }
        break;
      case Gate::Z_ERROR:
        for (auto q : tg) {
          fill_biased(mask, ins.args[0], rng);
          zf[q] ^= mask;
        }
        break;
      case Gate::DEPOLARIZE1:
        for (auto q : tg) depolarize1(q, ins.args[0]);
        break;
      case Gate::DEPOLARIZE2:
        // E (x) E: independent channels on the two targets.
        for (auto q : tg) depolarize1(q, ins.args[0]);
        break;
      case Gate::DEPOLARIZE2_UNIFORM:
        for (std::size_t i = 0; i + 1 < tg.size(); i += 2) {
          fill_biased(mask, ins.args[0], rng);
          for (std::size_t s : mask.set_bits()) {
            const auto k = rng.below(15) + 1;
            const auto pa = static_cast<int>(k % 4);
            const auto pb = static_cast<int>(k / 4);
            if (pa & 1) xf[tg[i]].flip(s);
            if (pa & 2) zf[tg[i]].flip(s);
            if (pb & 1) xf[tg[i + 1]].flip(s);
            if (pb & 2) zf[tg[i + 1]].flip(s);
          }
        }
        break;
      case Gate::RESET_ERROR:
        throw CircuitError(
            "FrameSimulator cannot express RESET_ERROR (probabilistic reset "
            "is not a Pauli channel); use TableauSimulator");
      default:
        RADSURF_ASSERT_MSG(false, "unhandled instruction in frame sim");
    }
  }
  RADSURF_ASSERT(rec == flips.size());
  return flips;
}

}  // namespace radsurf
