#include "stab/reference.hpp"

#include <algorithm>

#include "stab/tableau_sim.hpp"

namespace radsurf {

MeasurementSampler::MeasurementSampler(const Circuit& circuit)
    : circuit_(circuit) {
  TableauSimulator sim(circuit);
  reference_ = sim.reference_sample();
}

std::vector<BitVec> MeasurementSampler::sample(std::size_t shots, Rng& rng) {
  std::vector<BitVec> out;
  out.reserve(shots);
  const std::size_t nrec = circuit_.num_measurements();
  std::size_t done = 0;
  while (done < shots) {
    const std::size_t batch = std::min<std::size_t>(shots - done, 256);
    FrameSimulator fsim(circuit_, batch);
    const MeasurementFlips flips = fsim.run(rng);
    for (std::size_t s = 0; s < batch; ++s) {
      BitVec record = reference_;
      for (std::size_t r = 0; r < nrec; ++r) {
        if (flips[r].get(s)) record.flip(r);
      }
      out.push_back(std::move(record));
    }
    done += batch;
  }
  return out;
}

}  // namespace radsurf
