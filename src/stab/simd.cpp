#include "stab/simd.hpp"

#if defined(__x86_64__) || defined(_M_X64)
#define RADSURF_HAVE_AVX2_KERNELS 1
#include <immintrin.h>
#endif

namespace radsurf {
namespace simd {

namespace {

// One word of the elimination: given the column's X/Z words and the pivot
// Pauli type, derive the +i^2 / -i^2 row masks (pauli_mul_phase collapsed
// to the three pivot cases) and fold them into the 2-bit carry-save
// counters.  Shared verbatim by both backends so they cannot drift.
template <bool XP, bool ZP>
inline void eliminate_word(std::uint64_t& xw, std::uint64_t& zw,
                           std::uint64_t mw, std::uint64_t& low,
                           std::uint64_t& high) {
  const std::uint64_t x2 = xw;
  const std::uint64_t z2 = zw;
  std::uint64_t plus, minus;
  if constexpr (XP && ZP) {  // pivot Y: +1 on Z rows, -1 on X rows
    plus = z2 & ~x2;
    minus = x2 & ~z2;
  } else if constexpr (XP) {  // pivot X: +1 on Y rows, -1 on Z rows
    plus = x2 & z2;
    minus = z2 & ~x2;
  } else {  // pivot Z: +1 on X rows, -1 on Y rows
    plus = x2 & ~z2;
    minus = x2 & z2;
  }
  plus &= mw;
  minus &= mw;
  const std::uint64_t carry = low & plus;
  low ^= plus;
  high ^= carry;
  const std::uint64_t borrow = ~low & minus;
  low ^= minus;
  high ^= borrow;
  if constexpr (XP) xw ^= mw;
  if constexpr (ZP) zw ^= mw;
}

template <bool XP, bool ZP>
void eliminate_span_portable(std::uint64_t* xk, std::uint64_t* zk,
                             const std::uint64_t* m, std::uint64_t* lo,
                             std::uint64_t* hi, std::uint32_t w0,
                             std::uint32_t w1) {
  for (std::uint32_t w = w0; w < w1; ++w)
    eliminate_word<XP, ZP>(xk[w], zk[w], m[w], lo[w], hi[w]);
}

void pivot_eliminate_portable(std::uint64_t* xk, std::uint64_t* zk,
                              const std::uint64_t* m, std::uint64_t* lo,
                              std::uint64_t* hi, std::uint32_t w0,
                              std::uint32_t w1, bool xp, bool zp) {
  if (xp && zp) eliminate_span_portable<true, true>(xk, zk, m, lo, hi, w0, w1);
  else if (xp) eliminate_span_portable<true, false>(xk, zk, m, lo, hi, w0, w1);
  else eliminate_span_portable<false, true>(xk, zk, m, lo, hi, w0, w1);
}

#ifdef RADSURF_HAVE_AVX2_KERNELS

template <bool XP, bool ZP>
__attribute__((target("avx2"))) void eliminate_span_avx2(
    std::uint64_t* xk, std::uint64_t* zk, const std::uint64_t* m,
    std::uint64_t* lo, std::uint64_t* hi, std::uint32_t w0,
    std::uint32_t w1) {
  std::uint32_t w = w0;
  for (; w + 4 <= w1; w += 4) {
    const __m256i x2 = _mm256_loadu_si256(reinterpret_cast<__m256i*>(xk + w));
    const __m256i z2 = _mm256_loadu_si256(reinterpret_cast<__m256i*>(zk + w));
    const __m256i mw =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(m + w));
    __m256i low = _mm256_loadu_si256(reinterpret_cast<__m256i*>(lo + w));
    __m256i high = _mm256_loadu_si256(reinterpret_cast<__m256i*>(hi + w));
    __m256i plus, minus;
    if constexpr (XP && ZP) {
      plus = _mm256_andnot_si256(x2, z2);
      minus = _mm256_andnot_si256(z2, x2);
    } else if constexpr (XP) {
      plus = _mm256_and_si256(x2, z2);
      minus = _mm256_andnot_si256(x2, z2);
    } else {
      plus = _mm256_andnot_si256(z2, x2);
      minus = _mm256_and_si256(x2, z2);
    }
    plus = _mm256_and_si256(plus, mw);
    minus = _mm256_and_si256(minus, mw);
    const __m256i carry = _mm256_and_si256(low, plus);
    low = _mm256_xor_si256(low, plus);
    high = _mm256_xor_si256(high, carry);
    const __m256i borrow = _mm256_andnot_si256(low, minus);
    low = _mm256_xor_si256(low, minus);
    high = _mm256_xor_si256(high, borrow);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(lo + w), low);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(hi + w), high);
    if constexpr (XP)
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(xk + w),
                          _mm256_xor_si256(x2, mw));
    if constexpr (ZP)
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(zk + w),
                          _mm256_xor_si256(z2, mw));
  }
  for (; w < w1; ++w) eliminate_word<XP, ZP>(xk[w], zk[w], m[w], lo[w], hi[w]);
}

__attribute__((target("avx2"))) void pivot_eliminate_avx2(
    std::uint64_t* xk, std::uint64_t* zk, const std::uint64_t* m,
    std::uint64_t* lo, std::uint64_t* hi, std::uint32_t w0, std::uint32_t w1,
    bool xp, bool zp) {
  if (xp && zp) eliminate_span_avx2<true, true>(xk, zk, m, lo, hi, w0, w1);
  else if (xp) eliminate_span_avx2<true, false>(xk, zk, m, lo, hi, w0, w1);
  else eliminate_span_avx2<false, true>(xk, zk, m, lo, hi, w0, w1);
}

bool cpu_has_avx2() { return __builtin_cpu_supports("avx2"); }

#endif  // RADSURF_HAVE_AVX2_KERNELS

PivotEliminateFn select_pivot_eliminate() {
#ifdef RADSURF_HAVE_AVX2_KERNELS
  if (cpu_has_avx2()) return &pivot_eliminate_avx2;
#endif
  return &pivot_eliminate_portable;
}

}  // namespace

const PivotEliminateFn pivot_eliminate = select_pivot_eliminate();

const char* backend() {
#ifdef RADSURF_HAVE_AVX2_KERNELS
  if (pivot_eliminate == &pivot_eliminate_avx2) return "avx2";
#endif
  return "portable";
}

}  // namespace simd
}  // namespace radsurf
