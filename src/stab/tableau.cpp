#include "stab/tableau.hpp"

#include "util/error.hpp"

namespace radsurf {

Tableau::Tableau(std::size_t num_qubits)
    : n_(num_qubits),
      xs_(num_qubits, BitVec(2 * num_qubits)),
      zs_(num_qubits, BitVec(2 * num_qubits)),
      signs_(2 * num_qubits),
      scratch_x_(num_qubits),
      scratch_z_(num_qubits) {
  RADSURF_CHECK_ARG(num_qubits > 0, "Tableau needs at least one qubit");
  reset_all();
}

void Tableau::reset_all() {
  for (std::size_t q = 0; q < n_; ++q) {
    xs_[q].clear();
    zs_[q].clear();
    xs_[q].set(q, true);        // destabilizer q = X_q
    zs_[q].set(n_ + q, true);   // stabilizer q = Z_q
  }
  signs_.clear();
}

void Tableau::apply_h(std::uint32_t q) {
  // sign ^= x & z, then swap x/z columns.
  const std::size_t W = signs_.num_words();
  auto* sw = signs_.words();
  const auto* xw = xs_[q].words();
  const auto* zw = zs_[q].words();
  for (std::size_t w = 0; w < W; ++w) sw[w] ^= xw[w] & zw[w];
  xs_[q].swap(zs_[q]);
}

void Tableau::apply_s(std::uint32_t q) {
  const std::size_t W = signs_.num_words();
  auto* sw = signs_.words();
  const auto* xw = xs_[q].words();
  auto* zw = zs_[q].words();
  for (std::size_t w = 0; w < W; ++w) {
    sw[w] ^= xw[w] & zw[w];
    zw[w] ^= xw[w];
  }
}

void Tableau::apply_s_dag(std::uint32_t q) {
  // S^dag-conjugation = S-conjugation followed by Z-conjugation.
  apply_s(q);
  apply_z(q);
}

void Tableau::apply_x(std::uint32_t q) { signs_ ^= zs_[q]; }

void Tableau::apply_z(std::uint32_t q) { signs_ ^= xs_[q]; }

void Tableau::apply_y(std::uint32_t q) {
  const std::size_t W = signs_.num_words();
  auto* sw = signs_.words();
  const auto* xw = xs_[q].words();
  const auto* zw = zs_[q].words();
  for (std::size_t w = 0; w < W; ++w) sw[w] ^= xw[w] ^ zw[w];
}

void Tableau::apply_cx(std::uint32_t c, std::uint32_t t) {
  RADSURF_ASSERT(c != t);
  const std::size_t W = signs_.num_words();
  auto* sw = signs_.words();
  auto* xc = xs_[c].words();
  auto* zc = zs_[c].words();
  auto* xt = xs_[t].words();
  auto* zt = zs_[t].words();
  for (std::size_t w = 0; w < W; ++w) {
    sw[w] ^= xc[w] & zt[w] & ~(xt[w] ^ zc[w]);
    xt[w] ^= xc[w];
    zc[w] ^= zt[w];
  }
}

void Tableau::apply_cz(std::uint32_t a, std::uint32_t b) {
  apply_h(b);
  apply_cx(a, b);
  apply_h(b);
}

void Tableau::apply_swap(std::uint32_t a, std::uint32_t b) {
  xs_[a].swap(xs_[b]);
  zs_[a].swap(zs_[b]);
}

void Tableau::rowsum(std::size_t h, std::size_t i) {
  // Phase arithmetic mod 4: 2*r_h + 2*r_i + sum_q g(row_i[q], row_h[q]).
  int phase = (signs_.get(h) ? 2 : 0) + (signs_.get(i) ? 2 : 0);
  for (std::size_t q = 0; q < n_; ++q) {
    phase += pauli_mul_phase(xs_[q].get(i), zs_[q].get(i), xs_[q].get(h),
                             zs_[q].get(h));
  }
  phase = ((phase % 4) + 4) % 4;
  // Stabilizer rows only ever multiply commuting operators, so their phase
  // must stay real.  Destabilizer rows are defined up to phase (Aaronson-
  // Gottesman track their sign bits but never read them), and a rowsum
  // with their anticommuting stabilizer partner legitimately yields an
  // imaginary phase — it is simply dropped.
  RADSURF_ASSERT_MSG(h < n_ || phase % 2 == 0,
                     "stabilizer rowsum produced imaginary phase");
  for (std::size_t q = 0; q < n_; ++q) {
    xs_[q].set(h, xs_[q].get(h) ^ xs_[q].get(i));
    zs_[q].set(h, zs_[q].get(h) ^ zs_[q].get(i));
  }
  signs_.set(h, phase >= 2);
}

void Tableau::scratch_accumulate(std::size_t i) {
  int phase = scratch_phase_ + (signs_.get(i) ? 2 : 0);
  for (std::size_t q = 0; q < n_; ++q) {
    phase += pauli_mul_phase(xs_[q].get(i), zs_[q].get(i), scratch_x_.get(q),
                             scratch_z_.get(q));
    scratch_x_.set(q, scratch_x_.get(q) ^ xs_[q].get(i));
    scratch_z_.set(q, scratch_z_.get(q) ^ zs_[q].get(i));
  }
  scratch_phase_ = ((phase % 4) + 4) % 4;
}

int Tableau::peek_z(std::uint32_t q) const {
  // Random iff some stabilizer row anticommutes with Z_q (has X on q).
  for (std::size_t w = 0; w < xs_[q].num_words(); ++w) {
    BitVec::Word word = xs_[q].word(w);
    // Mask to stabilizer rows [n, 2n).
    const std::size_t base = w * BitVec::kWordBits;
    for (int b = 0; word; ++b, word >>= 1) {
      if ((word & 1) && base + static_cast<std::size_t>(b) >= n_) return 0;
    }
  }
  // Deterministic: product of stabilizer rows selected by destabilizer
  // X-column gives +/- Z_q.
  auto* self = const_cast<Tableau*>(this);
  self->scratch_x_.clear();
  self->scratch_z_.clear();
  self->scratch_phase_ = 0;
  for (std::size_t i = 0; i < n_; ++i) {
    if (xs_[q].get(i)) self->scratch_accumulate(i + n_);
  }
  RADSURF_ASSERT(self->scratch_phase_ % 2 == 0);
  return self->scratch_phase_ == 2 ? -1 : +1;
}

bool Tableau::measure(std::uint32_t q, Rng& rng, bool force_zero_if_random,
                      bool* was_random) {
  RADSURF_ASSERT(q < n_);
  // Find a stabilizer row with an X component on q.
  std::size_t pivot = 2 * n_;
  for (std::size_t r = n_; r < 2 * n_; ++r) {
    if (xs_[q].get(r)) {
      pivot = r;
      break;
    }
  }

  if (pivot < 2 * n_) {
    // Random outcome.
    if (was_random) *was_random = true;
    for (std::size_t r = 0; r < 2 * n_; ++r) {
      if (r != pivot && xs_[q].get(r)) rowsum(r, pivot);
    }
    // Destabilizer paired with pivot := old pivot row.
    const std::size_t d = pivot - n_;
    for (std::size_t k = 0; k < n_; ++k) {
      xs_[k].set(d, xs_[k].get(pivot));
      zs_[k].set(d, zs_[k].get(pivot));
    }
    signs_.set(d, signs_.get(pivot));
    // Pivot row := +/- Z_q with the measured sign.
    const bool outcome = force_zero_if_random ? false : (rng.next() & 1);
    for (std::size_t k = 0; k < n_; ++k) {
      xs_[k].set(pivot, false);
      zs_[k].set(pivot, false);
    }
    zs_[q].set(pivot, true);
    signs_.set(pivot, outcome);
    return outcome;
  }

  // Deterministic outcome.
  if (was_random) *was_random = false;
  scratch_x_.clear();
  scratch_z_.clear();
  scratch_phase_ = 0;
  for (std::size_t i = 0; i < n_; ++i) {
    if (xs_[q].get(i)) scratch_accumulate(i + n_);
  }
  RADSURF_ASSERT_MSG(scratch_phase_ % 2 == 0,
                     "deterministic measurement with imaginary phase");
  return scratch_phase_ == 2;
}

void Tableau::reset(std::uint32_t q, Rng& rng) {
  if (measure(q, rng)) apply_x(q);
}

PauliString Tableau::row(std::size_t r) const {
  RADSURF_ASSERT(r < 2 * n_);
  PauliString p(n_);
  for (std::size_t q = 0; q < n_; ++q) {
    p.xs().set(q, xs_[q].get(r));
    p.zs().set(q, zs_[q].get(r));
  }
  p.set_sign(signs_.get(r));
  return p;
}

bool Tableau::is_valid() const {
  // Commutation structure: row i vs row j must anticommute iff {i,j} is a
  // destabilizer/stabilizer pair (j == i + n).
  for (std::size_t i = 0; i < 2 * n_; ++i) {
    const PauliString pi = row(i);
    for (std::size_t j = i + 1; j < 2 * n_; ++j) {
      const bool should_anticommute = (j == i + n_);
      if (pi.commutes_with(row(j)) == should_anticommute) return false;
    }
  }
  return true;
}

}  // namespace radsurf
