#include "stab/tableau.hpp"

#include <bit>

#include "util/error.hpp"

namespace radsurf {

Tableau::Tableau(std::size_t num_qubits)
    : n_(num_qubits),
      xs_(num_qubits, BitVec(2 * num_qubits)),
      zs_(num_qubits, BitVec(2 * num_qubits)),
      signs_(2 * num_qubits),
      scratch_x_(num_qubits),
      scratch_z_(num_qubits),
      update_mask_(2 * num_qubits),
      cnt_lo_(2 * num_qubits),
      cnt_hi_(2 * num_qubits) {
  RADSURF_CHECK_ARG(num_qubits > 0, "Tableau needs at least one qubit");
  reset_all();
}

void Tableau::reset_all() {
  for (std::size_t q = 0; q < n_; ++q) {
    xs_[q].clear();
    zs_[q].clear();
    xs_[q].set(q, true);        // destabilizer q = X_q
    zs_[q].set(n_ + q, true);   // stabilizer q = Z_q
  }
  signs_.clear();
}

void Tableau::apply_h(std::uint32_t q) {
  // sign ^= x & z, then swap x/z columns.
  const std::size_t W = signs_.num_words();
  auto* sw = signs_.words();
  const auto* xw = xs_[q].words();
  const auto* zw = zs_[q].words();
  for (std::size_t w = 0; w < W; ++w) sw[w] ^= xw[w] & zw[w];
  xs_[q].swap(zs_[q]);
}

void Tableau::apply_s(std::uint32_t q) {
  const std::size_t W = signs_.num_words();
  auto* sw = signs_.words();
  const auto* xw = xs_[q].words();
  auto* zw = zs_[q].words();
  for (std::size_t w = 0; w < W; ++w) {
    sw[w] ^= xw[w] & zw[w];
    zw[w] ^= xw[w];
  }
}

void Tableau::apply_s_dag(std::uint32_t q) {
  // S^dag-conjugation = S-conjugation followed by Z-conjugation.
  apply_s(q);
  apply_z(q);
}

void Tableau::apply_x(std::uint32_t q) { signs_ ^= zs_[q]; }

void Tableau::apply_z(std::uint32_t q) { signs_ ^= xs_[q]; }

void Tableau::apply_y(std::uint32_t q) {
  const std::size_t W = signs_.num_words();
  auto* sw = signs_.words();
  const auto* xw = xs_[q].words();
  const auto* zw = zs_[q].words();
  for (std::size_t w = 0; w < W; ++w) sw[w] ^= xw[w] ^ zw[w];
}

void Tableau::apply_cx(std::uint32_t c, std::uint32_t t) {
  RADSURF_ASSERT(c != t);
  const std::size_t W = signs_.num_words();
  auto* sw = signs_.words();
  auto* xc = xs_[c].words();
  auto* zc = zs_[c].words();
  auto* xt = xs_[t].words();
  auto* zt = zs_[t].words();
  for (std::size_t w = 0; w < W; ++w) {
    sw[w] ^= xc[w] & zt[w] & ~(xt[w] ^ zc[w]);
    xt[w] ^= xc[w];
    zc[w] ^= zt[w];
  }
}

void Tableau::apply_cz(std::uint32_t a, std::uint32_t b) {
  apply_h(b);
  apply_cx(a, b);
  apply_h(b);
}

void Tableau::apply_swap(std::uint32_t a, std::uint32_t b) {
  xs_[a].swap(xs_[b]);
  zs_[a].swap(zs_[b]);
}

std::size_t Tableau::find_pivot(std::uint32_t q) const {
  // First stabilizer row (index >= n_) whose X component on q is set,
  // scanned a word at a time.
  const BitVec& col = xs_[q];
  const std::size_t W = col.num_words();
  for (std::size_t w = n_ / BitVec::kWordBits; w < W; ++w) {
    BitVec::Word word = col.word(w);
    const std::size_t base = w * BitVec::kWordBits;
    if (base < n_) word &= ~BitVec::Word{0} << (n_ - base);
    if (word) return base + static_cast<std::size_t>(std::countr_zero(word));
  }
  return 2 * n_;
}

void Tableau::batched_pivot_elimination(std::uint32_t q, std::size_t pivot) {
  // Every row r != pivot with an X component on q must become row_r *
  // row_pivot.  The rows-to-update mask is exactly column xs_[q] minus the
  // pivot bit, so the Pauli-component update is one conditional word-XOR
  // per qubit column.  Phases accumulate mod 4 in a packed 2-bit counter
  // (cnt_lo_, cnt_hi_), one lane per row: the Aaronson–Gottesman g
  // contribution of qubit k is +1 or -1 on row subsets expressible as
  // bitwise combinations of the k-th columns, because the pivot's component
  // at k is a scalar.
  BitVec& m = update_mask_;
  m = xs_[q];
  m.set(pivot, false);
  if (m.none()) return;

  const std::size_t W = m.num_words();
  const BitVec::Word* mw = m.words();
  BitVec::Word* lo = cnt_lo_.words();
  BitVec::Word* hi = cnt_hi_.words();
  const BitVec::Word* sw = signs_.words();
  // Initial phase of row r: 2*sign_r + 2*sign_pivot.
  const BitVec::Word pivot_sign = signs_.get(pivot) ? ~BitVec::Word{0} : 0;
  for (std::size_t w = 0; w < W; ++w) {
    lo[w] = 0;
    hi[w] = (sw[w] ^ pivot_sign) & mw[w];
  }

  for (std::size_t k = 0; k < n_; ++k) {
    const bool xp = xs_[k].get(pivot);
    const bool zp = zs_[k].get(pivot);
    if (!xp && !zp) continue;  // pivot is I on k: no phase, no update
    BitVec::Word* xk = xs_[k].words();
    BitVec::Word* zk = zs_[k].words();
    for (std::size_t w = 0; w < W; ++w) {
      const BitVec::Word mask = mw[w];
      if (!mask) continue;
      const BitVec::Word x2 = xk[w];
      const BitVec::Word z2 = zk[w];
      // g((xp,zp), (x2,z2)) per row: +1 / -1 row subsets (see pauli.cpp).
      BitVec::Word plus, minus;
      if (xp && zp) {        // pivot Y: +1 on Z rows, -1 on X rows
        plus = z2 & ~x2;
        minus = x2 & ~z2;
      } else if (xp) {       // pivot X: +1 on Y rows, -1 on Z rows
        plus = x2 & z2;
        minus = z2 & ~x2;
      } else {               // pivot Z: +1 on X rows, -1 on Y rows
        plus = x2 & ~z2;
        minus = x2 & z2;
      }
      plus &= mask;
      minus &= mask;
      // 2-bit add of +1 (carry) and +3 == -1 (borrow) per lane.
      const BitVec::Word carry = lo[w] & plus;
      lo[w] ^= plus;
      hi[w] ^= carry;
      const BitVec::Word borrow = ~lo[w] & minus;  // note: lo already ^= plus
      lo[w] ^= minus;
      hi[w] ^= borrow;
      // Pauli component update (after the phase read of the old values).
      if (xp) xk[w] = x2 ^ mask;
      if (zp) zk[w] = z2 ^ mask;
    }
  }

  // Stabilizer rows only ever multiply commuting operators, so their phase
  // must stay real.  Destabilizer rows are defined up to phase (their sign
  // bits are tracked but never read), so an odd phase there is dropped.
  BitVec::Word* smw = signs_.words();
  for (std::size_t w = 0; w < W; ++w) {
    const std::size_t base = w * BitVec::kWordBits;
    BitVec::Word stab = mw[w];
    if (base + BitVec::kWordBits <= n_)
      stab = 0;
    else if (base < n_)
      stab &= ~BitVec::Word{0} << (n_ - base);
    RADSURF_ASSERT_MSG((lo[w] & stab) == 0,
                       "stabilizer rowsum produced imaginary phase");
    // New sign of updated rows: phase mod 4 >= 2, i.e. the hi counter bit.
    smw[w] = (smw[w] & ~mw[w]) | (hi[w] & mw[w]);
  }
}

void Tableau::scratch_accumulate(std::size_t i) {
  int phase = scratch_phase_ + (signs_.get(i) ? 2 : 0);
  for (std::size_t q = 0; q < n_; ++q) {
    phase += pauli_mul_phase(xs_[q].get(i), zs_[q].get(i), scratch_x_.get(q),
                             scratch_z_.get(q));
    scratch_x_.set(q, scratch_x_.get(q) ^ xs_[q].get(i));
    scratch_z_.set(q, scratch_z_.get(q) ^ zs_[q].get(i));
  }
  scratch_phase_ = ((phase % 4) + 4) % 4;
}

int Tableau::peek_z(std::uint32_t q) const {
  // Random iff some stabilizer row anticommutes with Z_q (has X on q).
  if (find_pivot(q) < 2 * n_) return 0;
  // Deterministic: product of stabilizer rows selected by destabilizer
  // X-column gives +/- Z_q.
  auto* self = const_cast<Tableau*>(this);
  self->scratch_x_.clear();
  self->scratch_z_.clear();
  self->scratch_phase_ = 0;
  for (std::size_t i = 0; i < n_; ++i) {
    if (xs_[q].get(i)) self->scratch_accumulate(i + n_);
  }
  RADSURF_ASSERT(self->scratch_phase_ % 2 == 0);
  return self->scratch_phase_ == 2 ? -1 : +1;
}

bool Tableau::measure(std::uint32_t q, Rng& rng, bool force_zero_if_random,
                      bool* was_random, std::size_t* pivot_out) {
  RADSURF_ASSERT(q < n_);
  const std::size_t pivot = find_pivot(q);

  if (pivot < 2 * n_) {
    // Random outcome.
    if (was_random) *was_random = true;
    if (pivot_out) *pivot_out = pivot;
    batched_pivot_elimination(q, pivot);
    // Destabilizer paired with pivot := old pivot row.
    const std::size_t d = pivot - n_;
    for (std::size_t k = 0; k < n_; ++k) {
      xs_[k].set(d, xs_[k].get(pivot));
      zs_[k].set(d, zs_[k].get(pivot));
    }
    signs_.set(d, signs_.get(pivot));
    // Pivot row := +/- Z_q with the measured sign.
    const bool outcome = force_zero_if_random ? false : (rng.next() & 1);
    for (std::size_t k = 0; k < n_; ++k) {
      xs_[k].set(pivot, false);
      zs_[k].set(pivot, false);
    }
    zs_[q].set(pivot, true);
    signs_.set(pivot, outcome);
    return outcome;
  }

  // Deterministic outcome.
  if (was_random) *was_random = false;
  scratch_x_.clear();
  scratch_z_.clear();
  scratch_phase_ = 0;
  for (std::size_t i = 0; i < n_; ++i) {
    if (xs_[q].get(i)) scratch_accumulate(i + n_);
  }
  RADSURF_ASSERT_MSG(scratch_phase_ % 2 == 0,
                     "deterministic measurement with imaginary phase");
  return scratch_phase_ == 2;
}

void Tableau::reset(std::uint32_t q, Rng& rng) {
  if (measure(q, rng)) apply_x(q);
}

PauliString Tableau::row(std::size_t r) const {
  RADSURF_ASSERT(r < 2 * n_);
  PauliString p(n_);
  for (std::size_t q = 0; q < n_; ++q) {
    p.xs().set(q, xs_[q].get(r));
    p.zs().set(q, zs_[q].get(r));
  }
  p.set_sign(signs_.get(r));
  return p;
}

bool Tableau::is_valid() const {
  // Commutation structure: row i vs row j must anticommute iff {i,j} is a
  // destabilizer/stabilizer pair (j == i + n).
  for (std::size_t i = 0; i < 2 * n_; ++i) {
    const PauliString pi = row(i);
    for (std::size_t j = i + 1; j < 2 * n_; ++j) {
      const bool should_anticommute = (j == i + n_);
      if (pi.commutes_with(row(j)) == should_anticommute) return false;
    }
  }
  return true;
}

}  // namespace radsurf
