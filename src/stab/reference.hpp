// Reference-relative measurement sampling.
//
// The frame simulator produces record *flips* relative to a fixed noiseless
// reference execution.  MeasurementSampler glues the two together to
// provide absolute measurement records.
//
// Caveat (inherent to Pauli-frame simulation): every statistic that is
// deterministic at zero noise — detectors, observables, within-shot
// correlations — is sampled exactly; the marginal of an intrinsically
// *random* measurement is pinned to the reference's choice.  Decoding only
// consumes the former, and campaigns that need true raw marginals use the
// TableauSimulator.
#pragma once

#include <vector>

#include "circuit/circuit.hpp"
#include "stab/frame_sim.hpp"
#include "util/bitvec.hpp"
#include "util/rng.hpp"

namespace radsurf {

class MeasurementSampler {
 public:
  explicit MeasurementSampler(const Circuit& circuit);

  /// The pinned noiseless reference record (random outcomes forced to 0).
  const BitVec& reference() const { return reference_; }

  /// Sample `shots` absolute measurement records via frame simulation.
  /// Records are returned shot-major (one BitVec over records per shot).
  std::vector<BitVec> sample(std::size_t shots, Rng& rng);

 private:
  Circuit circuit_;  // owned copy
  BitVec reference_;
};

}  // namespace radsurf
