// Bit-parallel Pauli-frame simulator.
//
// Tracks, for a batch of shots simultaneously (one bit per shot), the Pauli
// difference ("frame") between each noisy shot and a noiseless reference
// execution.  Pauli noise XORs into the frame; measurements emit the X
// component as a record *flip* and randomize the Z component (the standard
// trick that makes frame sampling exact for stabilizer circuits).
//
// The frame formalism cannot express the radiation model's probabilistic
// reset (a non-Pauli channel relative to the reference), so RESET_ERROR
// instructions are rejected — campaigns with radiation use the exact
// TableauSimulator and the two engines are cross-validated in tests.
#pragma once

#include <vector>

#include "circuit/circuit.hpp"
#include "util/bitvec.hpp"
#include "util/rng.hpp"

namespace radsurf {

/// Per-record flip rows: flips[r].get(s) == record r differs from the
/// reference in shot s.
using MeasurementFlips = std::vector<BitVec>;

class FrameSimulator {
 public:
  FrameSimulator(const Circuit& circuit, std::size_t batch_size);

  std::size_t batch_size() const { return batch_; }

  /// Simulate one batch; returns per-record flip rows.
  MeasurementFlips run(Rng& rng);

  /// Fill `bits` with independent Bernoulli(p) draws (exposed for tests).
  static void fill_biased(BitVec& bits, double p, Rng& rng);
  /// Fill `bits` with uniform random draws.
  static void fill_uniform(BitVec& bits, Rng& rng);

 private:
  Circuit circuit_;  // owned copy
  std::size_t batch_;
};

}  // namespace radsurf
