// Bit-parallel Pauli-frame simulator.
//
// Tracks, for a batch of shots simultaneously (one bit per shot), the Pauli
// difference ("frame") between each noisy shot and a noiseless reference
// execution.  Pauli noise XORs into the frame; measurements emit the X
// component as a record *flip* and randomize the Z component (the standard
// trick that makes frame sampling exact for stabilizer circuits).
//
// Radiation support (heralded-reset fast path): RESET_ERROR is not a Pauli
// channel, but at a site where the reference holds a *deterministic*
// Z-eigenstate |b> the noisy qubit is also a definite |b XOR x-frame>, so a
// heralded reset is exactly a frame update — set the X component to b and
// randomize the Z component.  Herald bits are sampled per shot; shots whose
// herald fires at a reference-*random* site cannot be expressed as a frame
// and are flagged in a residual mask for an exact TableauSimulator re-run.
// The same mechanism covers the shared-instant erasure of Figs 6-7 (per-
// shot uniformly random strike instant over the physical operations).
// Reference values per site come from a ReferenceTrace (one deterministic
// tableau walk, shareable across batches).
#pragma once

#include <vector>

#include "circuit/circuit.hpp"
#include "stab/tableau_sim.hpp"
#include "util/bitvec.hpp"
#include "util/rng.hpp"

namespace radsurf {

/// Per-record flip rows: flips[r].get(s) == record r differs from the
/// reference in shot s.
using MeasurementFlips = std::vector<BitVec>;

/// What made each residual shot residual: the herald outcomes at every
/// reference-random reset site, and (for erasure runs) the per-shot strike
/// ordinal.  The exact engine replays a residual shot *conditioned* on this
/// signature (see ReplayConstraint) — resampling the heralds from scratch
/// would bias the frame/exact mixture, because residual selection is itself
/// a function of these outcomes.
struct ResidualDetail {
  /// Raw reset-site ordinals of the reference-random sites with nonzero
  /// probability, sorted (one entry per site, fired anywhere or not).
  std::vector<std::uint32_t> random_sites;
  /// heralds[i].get(s): the herald of random_sites[i] fired in shot s.
  std::vector<BitVec> heralds;
  /// Strike ordinal of every shot (size batch; erasure runs only).
  std::vector<std::uint32_t> strike_ordinals;
};

class FrameSimulator {
 public:
  /// `circuit` is borrowed, not copied, and must outlive the simulator —
  /// chunked campaign loops construct one simulator per chunk, and copying
  /// the instruction stream each time dominated small-device batches.
  /// `trace`, if supplied, must be the ReferenceTrace of `circuit` (and of
  /// the erasure set later passed to run_with_erasure); it is borrowed
  /// too.  When omitted and the circuit contains RESET_ERROR, the
  /// constructor computes (and owns) one itself — pass a precomputed
  /// trace to share the walk across chunks.
  FrameSimulator(const Circuit& circuit, std::size_t batch_size,
                 const ReferenceTrace* trace = nullptr);

  std::size_t batch_size() const { return batch_; }

  /// Simulate one batch; returns per-record flip rows (a reference to an
  /// internal table that is overwritten by the next run_* call — repeat
  /// runs on one simulator reuse every allocation).  `residual`, if
  /// non-null, must be sized batch_size() and receives the mask of shots
  /// that heralded a reset at a reference-random site: their flip rows are
  /// meaningless and the caller must re-run them through the exact engine.
  /// If `residual` is null and such a shot occurs, throws CircuitError.
  /// `detail`, if non-null, receives the conditioning signature of the
  /// batch (consumed by the campaign engine's conditioned replay).
  const MeasurementFlips& run(Rng& rng, BitVec* residual = nullptr,
                              ResidualDetail* detail = nullptr);

  /// Batch with the shared-instant erasure (see
  /// TableauSimulator::sample_with_erasure for the fault model).
  const MeasurementFlips& run_with_erasure(
      Rng& rng, const std::vector<std::uint32_t>& corrupted,
      BitVec* residual = nullptr, ResidualDetail* detail = nullptr);

  /// Herald-group frame replay: every shot of the batch shares one residual
  /// signature (`constraint`: pinned heralds at the forced sites, pinned
  /// strike over `corrupted`), and `reference` is the group's conditioned
  /// reference walk for that same signature.  Pinned fired resets and the
  /// strike replay as frame resets; each random collapse of the conditioned
  /// walk draws one fresh coin row and injects its destabilizer into the
  /// frames of the shots whose coin came up 1 (see CollapseEvent) — which
  /// is what makes the group replay exact even though the pinned events
  /// break detector determinism.  Flip rows are relative to
  /// `reference.record`, NOT to the campaign's primary reference.
  /// Heralds at unpinned sites sample per shot against the *conditioned*
  /// trace; shots that herald at a conditioned-random site land in the
  /// `secondary` mask (sized batch_size(), required) for a per-shot exact
  /// replay under the merged constraint, with their conditioning signature
  /// in `detail` (required; strike_ordinals stays empty — the strike is
  /// group-pinned).  Construct the simulator with `&reference.trace` to
  /// skip the constructor's primary-trace walk.
  const MeasurementFlips& run_group(Rng& rng,
                                    const ReplayConstraint& constraint,
                                    const ConditionedReference& reference,
                                    const std::vector<std::uint32_t>* corrupted,
                                    BitVec* secondary, ResidualDetail* detail);

  /// Fill `bits` with independent Bernoulli(p) draws (exposed for tests).
  static void fill_biased(BitVec& bits, double p, Rng& rng);
  /// Fill `bits` with uniform random draws.
  static void fill_uniform(BitVec& bits, Rng& rng);

 private:
  const MeasurementFlips& run_impl(
      Rng& rng, const std::vector<std::uint32_t>* corrupted,
      const ReferenceTrace* trace, BitVec* residual, ResidualDetail* detail);

  const Circuit* circuit_;  // borrowed; must outlive the simulator
  std::size_t batch_;
  const ReferenceTrace* trace_ = nullptr;  // borrowed, or &owned_trace_
  ReferenceTrace owned_trace_;  // backing store when no trace was passed
  bool has_reset_noise_ = false;

  // Per-run scratch, reused across run_* calls (and so across chunks when
  // the caller keeps one simulator alive).
  std::vector<BitVec> xf_, zf_;
  MeasurementFlips flips_;
  BitVec mask_;
  BitVec coin_;  // run_group: one fresh coin row per collapse event
  std::vector<std::uint32_t> strike_of_, strike_shots_, strike_begin_;
};

}  // namespace radsurf
