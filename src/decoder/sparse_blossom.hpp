// Sparse region-growing matcher for high-defect MWPM clusters.
//
// The cluster matcher above the subset-DP threshold used to pay the dense
// blossom oracle: a fresh O(n^2)-cell weight matrix over 2k nodes (defects
// plus per-defect virtual boundary copies) and an O(n^3) solve per cluster,
// per shot.  That is the decode cliff on radiation strikes, whose defect
// footprints routinely exceed the DP cap.
//
// This matcher removes both factors of the constant:
//
//  * Boundary-savings reduction — minimum-weight matching *with* a boundary
//    is equivalent to MAXIMUM-weight (non-perfect) matching over the defect
//    nodes alone, with edge value s_ij = dB(i) + dB(j) - d(i, j) (the
//    saving of pairing i with j instead of sending both to the boundary)
//    and only s > 0 edges kept: replacing any matched pair with s <= 0 by
//    two boundary exits never increases total weight, so some optimum uses
//    only positive-savings edges, and every defect left unmatched exits via
//    the boundary.  This halves the node count and deletes the virtual
//    boundary clique and the max-cardinality offset trick.
//  * Region-growing primal-dual blossom over that sparse savings graph —
//    alternating trees grow from unmatched defects, tight edges extend or
//    augment them, odd cycles contract into blossoms and shatter when their
//    dual reaches zero.  All scratch is flat, grow-only and reused across
//    solves, so the per-cluster cost is the matching work itself, with no
//    allocation and no matrix re-initialisation beyond the touched cells.
//
// Edge values are doubled internally so every dual stays integral
// (half-integral duals in original units), making the solve exact in
// fixed-point arithmetic.  Exactness is pinned in tests against the
// subset-DP matcher and the dense blossom oracle.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace radsurf {

/// Per-solve work counters, exposed through MwpmDecoder::matcher_stats()
/// and the perf JSON records.
struct SparseBlossomStats {
  std::uint64_t regions_grown = 0;      // alternating-tree roots grown
  std::uint64_t blossoms_formed = 0;    // odd cycles contracted
  std::uint64_t blossoms_expanded = 0;  // zero-dual blossoms shattered
  std::uint64_t dual_updates = 0;       // global dual adjustments
  std::uint64_t warm_reuses = 0;        // solves served by warm-start reuse
};

class SparseBlossomMatcher {
 public:
  /// mate() value for a node matched to the boundary (left unmatched by
  /// the maximum-savings matching).
  static constexpr std::uint32_t kBoundary = 0xffffffffu;

  struct Edge {
    std::uint32_t a = 0;
    std::uint32_t b = 0;
    std::int64_t savings = 0;  // must be > 0
  };

  /// Maximum-total-savings matching over nodes 0..num_nodes-1.  Parallel
  /// edges keep the larger savings.  Returns mate[i] = partner index, or
  /// kBoundary for nodes the optimum leaves unmatched.  The view is valid
  /// until the next solve(); scratch is reused (and grown) across calls.
  /// Re-solving the instance still resident in the arena is served by an
  /// O(E) warm-start verification instead of a fresh matching (see
  /// stats().warm_reuses).
  const std::vector<std::uint32_t>& solve(std::size_t num_nodes,
                                          const std::vector<Edge>& edges);

  /// Total savings of the last solve()'s matching (un-doubled).
  std::int64_t total_savings() const { return total_savings_; }

  /// Work counters of the last solve().
  const SparseBlossomStats& stats() const { return stats_; }

 private:
  // The primal-dual core is 1-indexed over surface nodes 1..n_x_ (base
  // nodes 1..n_, blossoms above), with 0 as the null sentinel, mirroring
  // the dense oracle's proven control flow.  Cells (u, v) of the flat
  // matrices hold the representative base-edge endpoints and the doubled
  // savings; blossom rows are rebuilt on contraction.
  std::int64_t& wc(int u, int v) { return w_[u * stride_ + v]; }
  std::int64_t wc(int u, int v) const { return w_[u * stride_ + v]; }
  std::int32_t& eu(int u, int v) { return eu_[u * stride_ + v]; }
  std::int32_t& ev(int u, int v) { return ev_[u * stride_ + v]; }
  std::int64_t e_delta(int u, int v) const {
    const std::size_t c = static_cast<std::size_t>(u) * stride_ + v;
    return lab_[eu_[c]] + lab_[ev_[c]] - 2 * w_[c];
  }
  void ensure_capacity(std::size_t num_nodes);
  void update_slack(int u, int x);
  void set_slack(int x);
  void q_push(int x);
  void set_st(int x, int b);
  int get_pr(int b, int xr);
  void set_match(int u, int v);
  void set_expose(int x, int target);
  void augment(int u, int v);
  void release(int u);
  int get_lca(int u, int v);
  void add_blossom(int u, int lca, int v);
  void expand_blossom(int b);
  bool on_found_cell(int a, int b);
  bool matching();
  int base_vertex(int x) const;
  void greedy_init();

  int n_ = 0, n_x_ = 0;
  std::size_t stride_ = 0;  // row stride of the cell matrices (== capacity N)
  std::size_t cap_nodes_ = 0;
  std::vector<std::int64_t> w_;
  std::vector<std::int32_t> eu_, ev_;
  std::vector<std::int64_t> lab_;
  std::vector<std::int32_t> match_, slack_, st_, pa_;
  std::vector<std::int8_t> S_;
  std::vector<std::int64_t> vis_;
  std::int64_t vis_stamp_ = 0;
  std::vector<std::vector<std::int32_t>> flower_;
  std::vector<std::int32_t> flower_from_;  // stride cap_nodes_ + 1
  std::vector<std::int32_t> q_;
  std::size_t q_head_ = 0;

  // Incremental reseed state: rows/cols above clean_corner_ may hold stale
  // blossom-slot cells from earlier solves (identity must be restored when
  // the base range grows past them), and edge_cells_ lists the distinct
  // base cells the previous solve's edge fill made non-zero (cleared at
  // the next solve instead of wiping the whole n x n corner).
  std::size_t clean_corner_ = 0;
  std::vector<std::pair<std::int32_t, std::int32_t>> edge_cells_;
  // True when the arena still holds a solved instance: a solve() presenting
  // the same instance (verified cell-by-cell) returns the stored optimum
  // without re-matching.  Radiation campaigns and sliding-window timelines
  // re-decode the same above-DP cluster instance on consecutive shots, so
  // this O(E) check removes the matching cost from the repeat path.
  bool warm_valid_ = false;
  // Per-solve CSR adjacency over base nodes: scans iterate real neighbours
  // instead of all n columns.  Built from edge_cells_, so parallel edges
  // appear once.
  std::vector<std::int32_t> adj_off_, nbr_;

  std::vector<std::uint32_t> mate_;
  std::int64_t total_savings_ = 0;
  SparseBlossomStats stats_;
};

}  // namespace radsurf
