// Syndrome-memoized decoding.
//
// Small-distance radiation campaigns repeat syndromes heavily: a handful of
// defect patterns (the strike's footprint plus sparse intrinsic noise)
// accounts for most shots.  CachingDecoder wraps any Decoder with an exact
// defect-set -> predicted-observable hash cache, turning repeat decodes
// into lookups.  The cache is sharded by hash so concurrent campaign chunks
// mostly touch distinct mutexes; a miss runs the inner decoder outside any
// lock (a racing duplicate decode is harmless — decoders are deterministic
// functions of the defect set).
//
// Keys are canonicalized before hashing: the defect list is sorted and
// delta-encoded (first index, then successive gaps), so key bytes are
// small, hash entropy spreads across shards, and permutations of the same
// syndrome share one entry.
//
// When the inner decoder is an MwpmDecoder, memoization is *per locality
// cluster* instead of per whole syndrome: the decoder's union-find
// prefilter (see mwpm.hpp) splits the defects into independently-matched
// clusters whose predictions XOR, so the cache key becomes the cluster —
// two syndromes that differ only in a far-away defect still share every
// other cluster's entry.  Cluster vocabularies are tiny (pairs and
// singletons dominate), which is what lifts radiation-campaign hit rates
// well above whole-syndrome caching.
//
// The empty syndrome bypasses the cache and the hit/lookup counters: it is
// trivially decoded by every decoder, and counting it would inflate hit
// rates in low-noise campaigns.  Capacity is bounded per shard; once full,
// new syndromes simply stop being inserted (radiation campaigns hit the
// hot set long before that).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "decoder/decoder.hpp"
#include "decoder/mwpm.hpp"

namespace radsurf {

struct DecodeCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t lookups = 0;
  double hit_rate() const {
    return lookups == 0 ? 0.0 : static_cast<double>(hits) / lookups;
  }
  DecodeCacheStats& operator+=(const DecodeCacheStats& o) {
    hits += o.hits;
    lookups += o.lookups;
    return *this;
  }
};

class CachingDecoder final : public Decoder {
 public:
  /// Wraps `inner` (not owned; must outlive this decoder).  `max_entries`
  /// bounds the total number of cached syndromes (cluster keys in cluster
  /// mode).  Cluster-level memoization engages automatically when `inner`
  /// is an MwpmDecoder.
  explicit CachingDecoder(Decoder& inner,
                          std::size_t max_entries = std::size_t{1} << 20);

  std::string name() const override;
  std::uint64_t decode(const std::vector<std::uint32_t>& defects) override;

  DecodeCacheStats stats() const {
    return {hits_.load(std::memory_order_relaxed),
            lookups_.load(std::memory_order_relaxed)};
  }
  /// Number of cached syndromes / clusters (approximate under concurrency).
  std::size_t size() const;
  /// True when memoizing per locality cluster (inner is an MwpmDecoder).
  bool cluster_mode() const { return clusterable_ != nullptr; }

 private:
  struct VecHash {
    std::size_t operator()(const std::vector<std::uint32_t>& v) const {
      // FNV-1a over the delta-encoded defect indices.
      std::uint64_t h = 1469598103934665603ULL;
      for (std::uint32_t d : v) {
        h ^= d;
        h *= 1099511628211ULL;
      }
      return static_cast<std::size_t>(h);
    }
  };
  struct Shard {
    std::mutex mu;
    std::unordered_map<std::vector<std::uint32_t>, std::uint64_t, VecHash>
        map;
  };
  static constexpr std::size_t kNumShards = 16;

  /// Cached lookup of one canonical (delta-encoded) key; `miss` computes
  /// the prediction when absent.
  template <typename ComputeFn>
  std::uint64_t lookup(const std::vector<std::uint32_t>& key,
                       const ComputeFn& miss);

  Decoder& inner_;
  MwpmDecoder* clusterable_;  // non-null => per-cluster memoization
  std::size_t max_entries_per_shard_;
  std::array<Shard, kNumShards> shards_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> lookups_{0};
};

}  // namespace radsurf
