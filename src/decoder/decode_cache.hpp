// Syndrome-memoized decoding.
//
// Small-distance radiation campaigns repeat syndromes heavily: a handful of
// defect patterns (the strike's footprint plus sparse intrinsic noise)
// accounts for most shots.  CachingDecoder wraps any Decoder with an exact
// defect-set -> predicted-observable hash cache, turning repeat decodes
// into lookups.  The cache is sharded by hash so concurrent campaign chunks
// mostly touch distinct mutexes; a miss runs the inner decoder outside any
// lock (a racing duplicate decode is harmless — decoders are deterministic
// functions of the defect set).
//
// Keys are canonicalized before hashing: the defect list is sorted and
// delta-encoded (first index, then successive gaps), so key bytes are
// small, hash entropy spreads across shards, and permutations of the same
// syndrome share one entry.
//
// The batch-major pipeline enters through decode_syndrome() instead: the
// shot's raw syndrome words (one transposed BitTable row) are hashed
// directly into a *word-keyed front table*, so a repeat syndrome is one
// hash probe with no defect materialization and no delta encoding.  The
// front table is a transparent accelerator over the canonical keyed cache:
// its own probes are not counted, a front hit books the same one
// lookup+hit the per-bit path's whole-syndrome probe would have booked,
// and a front miss falls through to decode() (which counts and populates
// the canonical cache exactly as the per-bit path does) before publishing
// the word key.  Hit/lookup stats are therefore bit-identical between the
// per-bit and batch-major paths as long as no shard saturates its
// capacity bound (the equivalence tests pin this).
//
// In front of the sharded word map sits a per-thread, direct-mapped L1
// (decode_cache.cpp): syndromes spanning at most 4 words resolve a repeat
// probe with one array index and a word compare — no mutex at all, which
// is what keeps the zero-contention campaign hot loop at memory speed.
// L1 entries are copies of published word-map entries keyed by a unique
// per-decoder id (never by address, so a decoder reallocated at a stale
// address cannot alias), and an L1 hit books the same lookup+hit a word-
// map hit would.
//
// When the inner decoder is an MwpmDecoder, memoization is *per locality
// cluster* instead of per whole syndrome: the decoder's union-find
// prefilter (see mwpm.hpp) splits the defects into independently-matched
// clusters whose predictions XOR, so the cache key becomes the cluster —
// two syndromes that differ only in a far-away defect still share every
// other cluster's entry.  Cluster vocabularies are tiny (pairs and
// singletons dominate), which is what lifts radiation-campaign hit rates
// well above whole-syndrome caching.
//
// The empty syndrome bypasses the cache and the hit/lookup counters: it is
// trivially decoded by every decoder, and counting it would inflate hit
// rates in low-noise campaigns.  Capacity is bounded per shard; once full,
// new syndromes simply stop being inserted (radiation campaigns hit the
// hot set long before that).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "decoder/decoder.hpp"
#include "decoder/mwpm.hpp"
#include "util/hash.hpp"

namespace radsurf {

struct DecodeCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t lookups = 0;
  double hit_rate() const {
    return lookups == 0 ? 0.0 : static_cast<double>(hits) / lookups;
  }
  DecodeCacheStats& operator+=(const DecodeCacheStats& o) {
    hits += o.hits;
    lookups += o.lookups;
    return *this;
  }
};

class CachingDecoder final : public Decoder {
 public:
  /// Wraps `inner` (not owned; must outlive this decoder).  `max_entries`
  /// bounds the total number of cached syndromes (cluster keys in cluster
  /// mode).  The word-keyed front table of decode_syndrome is bounded by
  /// the same per-shard cap but holds *duplicates* of canonical entries
  /// under a second key, so worst-case memory is ~2× max_entries entries
  /// (size() reports only the canonical map).  Cluster-level memoization
  /// engages automatically when `inner` is an MwpmDecoder.
  explicit CachingDecoder(Decoder& inner,
                          std::size_t max_entries = std::size_t{1} << 20);

  std::string name() const override;
  std::uint64_t decode(const std::vector<std::uint32_t>& defects) override;

  /// Word-keyed probe over the raw syndrome span (see the header comment).
  /// `words` must be zero-padded past the last detector bit; the span is
  /// the cache key, so callers must pass a fixed num_words per decoder.
  std::uint64_t decode_syndrome(const std::uint64_t* words,
                                std::size_t num_words) override;

  /// Observed-hit-rate auto-bypass (off unless enabled): once at least
  /// kBypassProbeWindow counted lookups have accumulated with a hit rate
  /// still below kBypassFloor, decode() / decode_syndrome() stop hashing
  /// and probing entirely and forward straight to the inner decoder —
  /// high-entropy syndrome mixes (large-distance strike campaigns) pay
  /// real per-shot hashing cost for a cache they essentially never hit.
  /// The trip is sticky for the decoder's lifetime and freezes the
  /// hit/lookup counters at their pre-bypass values, so a recorded hit
  /// rate below the floor plus bypassed() == true is self-describing.
  void enable_auto_bypass() { auto_bypass_ = true; }
  /// True once the auto-bypass has tripped.
  bool bypassed() const { return bypassed_.load(std::memory_order_relaxed); }
  static constexpr std::uint64_t kBypassProbeWindow = 4096;
  static constexpr double kBypassFloor = 0.02;

  /// Stats hook for callers that memoize decode *outcomes* above this
  /// cache (the campaign engine's record-word memo): books the one
  /// lookup+hit the skipped decode_syndrome call would have booked, so
  /// hit/lookup stats stay identical to the unmemoized path.  Only valid
  /// when the skipped syndrome was non-empty and previously decoded
  /// through this decoder.
  void book_repeat_hit() {
    lookups_.fetch_add(1, std::memory_order_relaxed);
  }

  DecodeCacheStats stats() const {
    // Misses are counted (they are rare), hits derived: the hot hit path
    // then pays one atomic increment, not two.
    const std::uint64_t lookups = lookups_.load(std::memory_order_relaxed);
    const std::uint64_t misses = misses_.load(std::memory_order_relaxed);
    return {lookups - misses, lookups};
  }
  /// Number of cached syndromes / clusters (approximate under concurrency).
  std::size_t size() const;
  /// True when memoizing per locality cluster (inner is an MwpmDecoder).
  bool cluster_mode() const { return clusterable_ != nullptr; }

 private:
  struct VecHash {
    std::size_t operator()(const std::vector<std::uint32_t>& v) const {
      // Over the delta-encoded defect indices.
      return static_cast<std::size_t>(fnv1a64_mixed(v.data(), v.size()));
    }
  };
  struct Shard {
    std::mutex mu;
    std::unordered_map<std::vector<std::uint32_t>, std::uint64_t, VecHash>
        map;
  };
  struct WordVecHash {
    std::size_t operator()(const std::vector<std::uint64_t>& v) const {
      // Over the raw syndrome words.
      return static_cast<std::size_t>(fnv1a64_mixed(v.data(), v.size()));
    }
  };
  struct WordShard {
    std::mutex mu;
    std::unordered_map<std::vector<std::uint64_t>, std::uint64_t,
                       WordVecHash>
        map;
  };
  static constexpr std::size_t kNumShards = 16;

  /// Cached lookup of one canonical (delta-encoded) key; `miss` computes
  /// the prediction when absent.
  template <typename ComputeFn>
  std::uint64_t lookup(const std::vector<std::uint32_t>& key,
                       const ComputeFn& miss);

  /// True when probing should be skipped (evaluates and latches the trip).
  bool check_bypass();

  Decoder& inner_;
  MwpmDecoder* clusterable_;  // non-null => per-cluster memoization
  bool auto_bypass_ = false;
  std::atomic<bool> bypassed_{false};
  const std::uint64_t instance_id_;  // L1 ownership tag (see the .cpp)
  std::size_t max_entries_per_shard_;
  std::array<Shard, kNumShards> shards_;
  // Word-keyed front table of decode_syndrome (uncounted accelerator).
  std::array<WordShard, kNumShards> word_shards_;
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> lookups_{0};
};

}  // namespace radsurf
