#include "decoder/sparse_blossom.hpp"

#include <algorithm>
#include <limits>

#include "util/error.hpp"

namespace radsurf {

// The control flow mirrors the dense oracle's proven primal-dual blossom
// (decoder/blossom.cpp) with three structural changes: the weight matrix is
// a flat, grow-only arena whose base cells are initialised once per
// capacity (a solve touches only the k x k corner it uses), the edge
// objects are decomposed into (weight, representative endpoints) cell
// triples so no E structs are copied, and the LCA visit stamp is a member
// (no thread_local), so independent matcher instances never interfere.

void SparseBlossomMatcher::ensure_capacity(std::size_t num_nodes) {
  if (num_nodes <= cap_nodes_) return;
  const std::size_t cap = std::max({num_nodes, cap_nodes_ * 2,
                                    static_cast<std::size_t>(8)});
  const std::size_t N = 2 * cap + 1;
  stride_ = N;
  cap_nodes_ = cap;
  w_.assign(N * N, 0);
  eu_.assign(N * N, 0);
  ev_.assign(N * N, 0);
  lab_.assign(N, 0);
  match_.assign(N, 0);
  slack_.assign(N, 0);
  st_.assign(N, 0);
  pa_.assign(N, 0);
  S_.assign(N, -1);
  vis_.assign(N, 0);
  vis_stamp_ = 0;
  flower_.assign(N, {});
  // flower_from_ rows span base nodes only (stride cap + 1).
  flower_from_.assign(N * (cap + 1), 0);
  // Fresh arena: everything is zero/identity-free, so the whole base range
  // must be seeded by the next solve, and there are no stale edge cells —
  // and no resident solved instance to warm-start from.
  clean_corner_ = 0;
  edge_cells_.clear();
  adj_off_.assign(N + 1, 0);
  warm_valid_ = false;
}

void SparseBlossomMatcher::update_slack(int u, int x) {
  if (!slack_[x] || e_delta(u, x) < e_delta(slack_[x], x)) slack_[x] = u;
}

void SparseBlossomMatcher::set_slack(int x) {
  slack_[x] = 0;
  if (x <= n_) {
    // Base node: only its real neighbours can hold an edge cell.
    for (std::int32_t a = adj_off_[x]; a < adj_off_[x + 1]; ++a) {
      const int u = nbr_[a];
      if (st_[u] != x && S_[st_[u]] == 0) update_slack(u, x);
    }
    return;
  }
  for (int u = 1; u <= n_; ++u)
    if (wc(u, x) > 0 && st_[u] != x && S_[st_[u]] == 0) update_slack(u, x);
}

void SparseBlossomMatcher::q_push(int x) {
  if (x <= n_) {
    q_.push_back(x);
  } else {
    for (int i : flower_[x]) q_push(i);
  }
}

void SparseBlossomMatcher::set_st(int x, int b) {
  st_[x] = b;
  if (x > n_)
    for (int i : flower_[x]) set_st(i, b);
}

int SparseBlossomMatcher::get_pr(int b, int xr) {
  auto& f = flower_[b];
  const int pr = static_cast<int>(std::find(f.begin(), f.end(), xr) -
                                  f.begin());
  if (pr % 2 == 1) {
    std::reverse(f.begin() + 1, f.end());
    return static_cast<int>(f.size()) - pr;
  }
  return pr;
}

void SparseBlossomMatcher::set_match(int u, int v) {
  match_[u] = ev(u, v);
  if (u > n_) {
    const int xr = flower_from_[u * (cap_nodes_ + 1) + eu(u, v)];
    const int pr = get_pr(u, xr);
    for (int i = 0; i < pr; ++i)
      set_match(flower_[u][i], flower_[u][i ^ 1]);
    set_match(xr, v);
    std::rotate(flower_[u].begin(), flower_[u].begin() + pr,
                flower_[u].end());
  }
}

// Mirror of set_match with no partner: rearrange x's internal matching so
// that base vertex `target` becomes the exposed base of x.
void SparseBlossomMatcher::set_expose(int x, int target) {
  match_[x] = 0;
  if (x > n_) {
    const int xr = flower_from_[x * (cap_nodes_ + 1) + target];
    const int pr = get_pr(x, xr);
    for (int i = 0; i < pr; ++i)
      set_match(flower_[x][i], flower_[x][i ^ 1]);
    set_expose(xr, target);
    std::rotate(flower_[x].begin(), flower_[x].begin() + pr,
                flower_[x].end());
  }
}

void SparseBlossomMatcher::augment(int u, int v) {
  for (;;) {
    const int xnv = st_[match_[u]];
    set_match(u, v);
    if (!xnv) return;
    set_match(xnv, st_[pa_[xnv]]);
    u = st_[pa_[xnv]];
    v = xnv;
  }
}

// Dual of augment for an outer base vertex whose dual just reached zero:
// flip the even alternating path from u's tree root down to u, so the root
// becomes matched and u becomes exposed.  All path edges are tight, so the
// flip changes total weight by +dual(root) >= 0, and an exposed vertex with
// zero dual is optimally unmatched — this is the non-perfect-matching
// termination step (per-vertex, since greedy duals are not uniform).
void SparseBlossomMatcher::release(int u) {
  const int t = st_[u];
  int xnv = st_[match_[t]];  // null iff t is its tree's root
  set_expose(t, u);
  while (xnv) {
    set_match(xnv, st_[pa_[xnv]]);
    const int up = st_[pa_[xnv]];
    const int next = st_[match_[up]];
    set_match(up, xnv);
    xnv = next;
  }
}

int SparseBlossomMatcher::get_lca(int u, int v) {
  for (++vis_stamp_; u || v; std::swap(u, v)) {
    if (u == 0) continue;
    if (vis_[u] == vis_stamp_) return u;
    vis_[u] = vis_stamp_;
    u = st_[match_[u]];
    if (u) u = st_[pa_[u]];
  }
  return 0;
}

void SparseBlossomMatcher::add_blossom(int u, int lca, int v) {
  int b = n_ + 1;
  while (b <= n_x_ && st_[b]) ++b;
  if (b > n_x_) ++n_x_;
  lab_[b] = 0;
  S_[b] = 0;
  match_[b] = match_[lca];
  flower_[b].clear();
  flower_[b].push_back(lca);
  for (int x = u, y; x != lca; x = st_[pa_[y]]) {
    flower_[b].push_back(x);
    flower_[b].push_back(y = st_[match_[x]]);
    q_push(y);
  }
  std::reverse(flower_[b].begin() + 1, flower_[b].end());
  for (int x = v, y; x != lca; x = st_[pa_[y]]) {
    flower_[b].push_back(x);
    flower_[b].push_back(y = st_[match_[x]]);
    q_push(y);
  }
  set_st(b, b);
  for (int x = 1; x <= n_x_; ++x) wc(b, x) = wc(x, b) = 0;
  for (int x = 1; x <= n_; ++x)
    flower_from_[b * (cap_nodes_ + 1) + x] = 0;
  for (const int xs : flower_[b]) {
    for (int x = 1; x <= n_x_; ++x) {
      // Only real member edges are candidates (a cleared member cell keeps
      // stale endpoints whose e_delta would be meaningless).
      if (wc(xs, x) > 0 &&
          (wc(b, x) == 0 || e_delta(xs, x) < e_delta(b, x))) {
        wc(b, x) = wc(xs, x);
        eu(b, x) = eu(xs, x);
        ev(b, x) = ev(xs, x);
        wc(x, b) = wc(x, xs);
        eu(x, b) = eu(x, xs);
        ev(x, b) = ev(x, xs);
      }
    }
    for (int x = 1; x <= n_; ++x)
      if (flower_from_[xs * (cap_nodes_ + 1) + x])
        flower_from_[b * (cap_nodes_ + 1) + x] = xs;
  }
  set_slack(b);
  ++stats_.blossoms_formed;
}

void SparseBlossomMatcher::expand_blossom(int b) {
  for (const int member : flower_[b]) set_st(member, member);
  const int xr = flower_from_[b * (cap_nodes_ + 1) + eu(b, pa_[b])];
  const int pr = get_pr(b, xr);
  for (int i = 0; i < pr; i += 2) {
    const int xs = flower_[b][i];
    const int xns = flower_[b][i + 1];
    pa_[xs] = eu(xns, xs);
    S_[xs] = 1;
    S_[xns] = 0;
    slack_[xs] = 0;
    set_slack(xns);
    q_push(xns);
  }
  S_[xr] = 1;
  pa_[xr] = pa_[b];
  for (std::size_t i = static_cast<std::size_t>(pr) + 1;
       i < flower_[b].size(); ++i) {
    const int xs = flower_[b][i];
    S_[xs] = -1;
    set_slack(xs);
  }
  st_[b] = 0;
  ++stats_.blossoms_expanded;
}

bool SparseBlossomMatcher::on_found_cell(int a, int c) {
  const int u0 = eu(a, c);
  const int v0 = ev(a, c);
  const int u = st_[u0];
  const int v = st_[v0];
  if (S_[v] == -1) {
    if (!match_[v]) {
      // v is exposed but not a root (its dual is zero — a released or
      // zero-label vertex): the tight edge completes an augmenting path
      // ending at v, worth +dual(root) to the matching.
      augment(u, v);
      augment(v, u);
      return true;
    }
    pa_[v] = u0;
    S_[v] = 1;
    const int nu = st_[match_[v]];
    slack_[v] = slack_[nu] = 0;
    S_[nu] = 0;
    q_push(nu);
  } else if (S_[v] == 0) {
    const int lca = get_lca(u, v);
    if (!lca) {
      augment(u, v);
      augment(v, u);
      return true;
    }
    add_blossom(u, lca, v);
  }
  return false;
}

int SparseBlossomMatcher::base_vertex(int x) const {
  while (x > n_) x = flower_[x][0];
  return x;
}

bool SparseBlossomMatcher::matching() {
  std::fill(S_.begin(), S_.begin() + n_x_ + 1, static_cast<std::int8_t>(-1));
  std::fill(slack_.begin(), slack_.begin() + n_x_ + 1, 0);
  q_.clear();
  q_head_ = 0;
  // Roots: exposed surface nodes whose exposed base vertex still has a
  // positive dual.  A zero-dual exposed vertex is optimally unmatched and
  // never roots a tree again (though another tree may still reach it and
  // rematch it through on_found_cell).
  for (int x = 1; x <= n_x_; ++x)
    if (st_[x] == x && !match_[x] && lab_[base_vertex(x)] > 0) {
      pa_[x] = 0;
      S_[x] = 0;
      q_push(x);
      ++stats_.regions_grown;
    }
  if (q_head_ == q_.size()) return false;
  for (;;) {
    while (q_head_ < q_.size()) {
      const int u = q_[q_head_++];
      if (S_[st_[u]] == 1) continue;
      // The queue holds base vertices only, and base-base cells always keep
      // identity endpoints (contractions rewrite only blossom rows), so the
      // tightness test inlines to lab_[u] + lab_[v] == 2 wc(u, v) over u's
      // real neighbours.  lab_[u] is stable within the scan; st_[u] is not
      // (a contraction may absorb u), so it is re-read per edge.
      const std::int64_t lu = lab_[u];
      const std::int64_t* row = w_.data() + u * stride_;
      for (std::int32_t a = adj_off_[u]; a < adj_off_[u + 1]; ++a) {
        const int v = nbr_[a];
        if (st_[u] == st_[v]) continue;
        if (lu + lab_[v] == 2 * row[v]) {
          if (on_found_cell(u, v)) return true;
        } else {
          update_slack(u, st_[v]);
        }
      }
    }
    // Dual step: bounded by the smallest outer vertex dual (duals must stay
    // non-negative), the inner blossom duals, and the slack edges.
    std::int64_t d1 = std::numeric_limits<std::int64_t>::max();
    int u_min = 0;
    for (int u = 1; u <= n_; ++u)
      if (S_[st_[u]] == 0 && lab_[u] < d1) {
        d1 = lab_[u];
        u_min = u;
      }
    std::int64_t d = d1;
    for (int b = n_ + 1; b <= n_x_; ++b)
      if (st_[b] == b && S_[b] == 1) d = std::min(d, lab_[b] / 2);
    for (int x = 1; x <= n_x_; ++x) {
      if (st_[x] == x && slack_[x]) {
        if (S_[x] == -1)
          d = std::min(d, e_delta(slack_[x], x));
        else if (S_[x] == 0)
          d = std::min(d, e_delta(slack_[x], x) / 2);
      }
    }
    // No slack edge, no blossom to expand, no dual to exhaust: the forest
    // cannot grow, so the matching is maximum for the remaining exposure.
    if (d == std::numeric_limits<std::int64_t>::max()) return false;
    ++stats_.dual_updates;
    // Circuit breaker: a correct run needs far fewer dual adjustments
    // than this (roughly O(n^2) across all phases); tripping it means an
    // invariant broke, and an exception beats an infinite decode loop.
    RADSURF_ASSERT_MSG(
        stats_.dual_updates <
            10000ull + 100ull * static_cast<unsigned long long>(n_) * n_,
        "sparse blossom matcher stalled (dual updates exploded)");
    for (int u = 1; u <= n_; ++u) {
      if (S_[st_[u]] == 0) {
        lab_[u] -= d;
      } else if (S_[st_[u]] == 1) {
        lab_[u] += d;
      }
    }
    for (int b = n_ + 1; b <= n_x_; ++b) {
      if (st_[b] == b) {
        if (S_[b] == 0)
          lab_[b] += d * 2;
        else if (S_[b] == 1)
          lab_[b] -= d * 2;
      }
    }
    if (d == d1) {
      // An outer vertex dual reached zero: flip its tree path so that
      // vertex takes the exposure (weight +dual(root) >= 0) and restart.
      release(u_min);
      return true;
    }
    q_.clear();
    q_head_ = 0;
    for (int x = 1; x <= n_x_; ++x) {
      if (st_[x] == x && slack_[x] && st_[slack_[x]] != x &&
          e_delta(slack_[x], x) == 0) {
        if (on_found_cell(slack_[x], x)) return true;
      }
    }
    for (int b = n_ + 1; b <= n_x_; ++b)
      if (st_[b] == b && S_[b] == 1 && lab_[b] == 0) expand_blossom(b);
  }
}

// Jumpstart (the sparse-blossom analogue of Blossom V's greedy init):
// feasible per-vertex starting duals plus a maximal greedy matching over
// the edges those duals make tight.  Most defect pairs in a radiation
// cluster are mutual nearest neighbours, so the primal-dual phases start
// with only a handful of exposed vertices instead of all of them.
void SparseBlossomMatcher::greedy_init() {
  // On entry lab_u = max incident cell value (seeded by the edge fill):
  // cells hold doubled savings and e_delta doubles them again, so
  // lab_u + lab_v >= 2 wc(u, v) for every edge (feasible) with equality
  // exactly on mutual-maximum edges.  All labels are even (cells are
  // doubled), which keeps every halved dual step integral.
  //
  // Dual descent: lower each dual to its feasibility floor given the
  // others.  A floor never exceeds the current label (each earlier
  // descent respected its constraints against u), so labels only drop,
  // and every vertex whose best partner is contested gains tight edges.
  for (int u = 1; u <= n_; ++u) {
    std::int64_t floor_u = 0;
    const std::int64_t* row = w_.data() + u * stride_;
    for (std::int32_t a = adj_off_[u]; a < adj_off_[u + 1]; ++a) {
      const int v = nbr_[a];
      floor_u = std::max(floor_u, 2 * row[v] - lab_[v]);
    }
    lab_[u] = floor_u;
  }
  // Maximal greedy matching over tight edges.
  for (int u = 1; u <= n_; ++u) {
    if (match_[u]) continue;
    const std::int64_t* row = w_.data() + u * stride_;
    for (std::int32_t a = adj_off_[u]; a < adj_off_[u + 1]; ++a) {
      const int v = nbr_[a];
      if (!match_[v] && lab_[u] + lab_[v] == 2 * row[v]) {
        match_[u] = v;
        match_[v] = u;
        break;
      }
    }
  }
}

const std::vector<std::uint32_t>& SparseBlossomMatcher::solve(
    std::size_t num_nodes, const std::vector<Edge>& edges) {
  // Warm-start reuse: when the arena still holds a solved instance and the
  // caller presents the same one — same node count, every positive edge
  // matching its resident doubled-savings cell, and no resident cell left
  // unpresented — the stored matching is already optimal, so return it.
  // The verification is exact (cell-by-cell, no hashing) and costs O(E).
  // Campaign shots and sliding-window timelines re-decode the same
  // above-DP cluster instance many times in a row, which makes this the
  // hot path there; any mismatch falls through to a cold solve.
  if (warm_valid_ && static_cast<std::size_t>(n_) == num_nodes) {
    std::size_t positive = 0;
    bool same = true;
    for (const Edge& e : edges) {
      if (e.savings <= 0) continue;
      ++positive;
      if (e.savings * 2 != wc(static_cast<int>(e.a) + 1,
                              static_cast<int>(e.b) + 1)) {
        same = false;
        break;
      }
    }
    if (same && positive == edge_cells_.size()) {
      stats_ = {};
      stats_.warm_reuses = 1;
      return mate_;
    }
  }
  warm_valid_ = false;
  stats_ = {};
  total_savings_ = 0;
  mate_.assign(num_nodes, kBoundary);
  if (num_nodes == 0) return mate_;
  ensure_capacity(num_nodes);
  n_ = static_cast<int>(num_nodes);
  n_x_ = n_;
  // Clear exactly the base weight cells the previous solve's edge fill
  // made non-zero (both triangles) — O(E_prev) instead of wiping the
  // whole n x n corner.
  for (const auto& [pa, pb] : edge_cells_) {
    w_[static_cast<std::size_t>(pa) * stride_ + pb] = 0;
    w_[static_cast<std::size_t>(pb) * stride_ + pa] = 0;
  }
  edge_cells_.clear();
  // Base-base cells are never rewritten during a solve (contractions touch
  // only blossom-slot rows above that solve's n_), so rows up to
  // clean_corner_ still hold identity endpoints; only the band this solve
  // grows into needs re-seeding.  The stale band rows were a smaller
  // solve's blossom slots.
  if (clean_corner_ < static_cast<std::size_t>(n_)) {
    const int c0 = static_cast<int>(clean_corner_);
    for (int u = 1; u <= n_; ++u) {
      const int v0 = (u <= c0) ? c0 + 1 : 1;
      std::fill(w_.begin() + u * stride_ + v0,
                w_.begin() + u * stride_ + n_ + 1, 0);
      for (int v = v0; v <= n_; ++v) {
        eu_[u * stride_ + v] = u;
        ev_[u * stride_ + v] = v;
        flower_from_[u * (cap_nodes_ + 1) + v] = 0;
      }
      flower_from_[u * (cap_nodes_ + 1) + u] = u;
      if (u > c0) flower_[u].clear();
    }
    clean_corner_ = static_cast<std::size_t>(n_);
  }
  for (int u = 1; u <= n_; ++u) {
    st_[u] = u;
    match_[u] = 0;
    lab_[u] = 0;
  }
  // Edge values are doubled so duals stay integral (half-integral in
  // original units): greedy_init starts every label even, labels in trees
  // then move together, so every e_delta the algorithm halves is even.
  // The fill also seeds lab_u = max incident cell value (greedy_init's
  // feasible start) and records each distinct cell for next solve's
  // clearing — which doubles as the distinct-edge list the CSR adjacency
  // is built from.
  for (const Edge& e : edges) {
    if (e.savings <= 0) continue;
    const int a = static_cast<int>(e.a) + 1;
    const int b = static_cast<int>(e.b) + 1;
    const std::int64_t s2 = e.savings * 2;
    std::int64_t& cell = wc(a, b);
    if (cell == 0) edge_cells_.emplace_back(a, b);
    if (s2 > cell) cell = wc(b, a) = s2;
    lab_[a] = std::max(lab_[a], s2);
    lab_[b] = std::max(lab_[b], s2);
  }
  std::fill(adj_off_.begin(), adj_off_.begin() + n_ + 2, 0);
  for (const auto& [a, b] : edge_cells_) {
    ++adj_off_[a + 1];
    ++adj_off_[b + 1];
  }
  for (int u = 1; u <= n_ + 1; ++u) adj_off_[u] += adj_off_[u - 1];
  nbr_.resize(2 * edge_cells_.size());
  for (const auto& [a, b] : edge_cells_) {
    nbr_[adj_off_[a]++] = b;
    nbr_[adj_off_[b]++] = a;
  }
  for (int u = n_ + 1; u >= 1; --u) adj_off_[u] = adj_off_[u - 1];
  adj_off_[0] = 0;
  greedy_init();
  while (matching()) {
  }
  for (int u = 1; u <= n_; ++u) {
    if (!match_[u]) continue;
    mate_[u - 1] = static_cast<std::uint32_t>(match_[u] - 1);
    if (match_[u] > u) total_savings_ += wc(u, match_[u]);
  }
  total_savings_ /= 2;
  // Contractions dirtied rows above n_; base rows keep their identity.
  if (n_x_ > n_) clean_corner_ = static_cast<std::size_t>(n_);
  warm_valid_ = true;
  return mate_;
}

}  // namespace radsurf
