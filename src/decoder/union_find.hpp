// Union-find decoder (Delfosse–Nickerson style), unweighted growth.
//
// Ablation decoder (the paper notes MWPM is the accuracy/speed sweet spot
// and leaves alternatives out of scope; we keep one for the decoder
// ablation bench).  Clusters grow synchronously from defects until every
// cluster has even defect parity or touches the boundary; a spanning-tree
// peeling pass then pairs defects inside each cluster and accumulates the
// observable crossings of the implied correction.
#pragma once

#include <cstdint>
#include <vector>

#include "decoder/decoder.hpp"

namespace radsurf {

class UnionFindDecoder final : public Decoder {
 public:
  explicit UnionFindDecoder(const MatchingGraph& graph);

  std::string name() const override { return "union-find"; }
  std::uint64_t decode(const std::vector<std::uint32_t>& defects) override;

 private:
  MatchingGraph graph_;  // owned copy: decoders must outlive any temporary
};

}  // namespace radsurf
