#include "decoder/mwpm.hpp"

#include <cmath>
#include <limits>
#include <queue>

#include "decoder/blossom.hpp"
#include "decoder/greedy.hpp"
#include "decoder/union_find.hpp"
#include "util/error.hpp"

namespace radsurf {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
// Fixed-point scale when converting path weights for the integer matcher.
constexpr double kScale = 1e6;
}  // namespace

MwpmDecoder::MwpmDecoder(const MatchingGraph& graph) : graph_(graph) {
  const std::size_t n = graph.num_nodes();
  dist_.assign(n, std::vector<double>(n, kInf));
  obs_.assign(n, std::vector<std::uint64_t>(n, 0));

  // Dijkstra from every node, tracking observable parity along the chosen
  // shortest path (any minimal path is a valid correction representative).
  for (std::uint32_t src = 0; src < n; ++src) {
    auto& dist = dist_[src];
    auto& obs = obs_[src];
    dist[src] = 0.0;
    using Item = std::pair<double, std::uint32_t>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
    pq.emplace(0.0, src);
    std::vector<char> done(n, 0);
    while (!pq.empty()) {
      const auto [d, v] = pq.top();
      pq.pop();
      if (done[v]) continue;
      done[v] = 1;
      for (std::uint32_t eid : graph.adjacent_edges(v)) {
        const MatchingEdge& e = graph.edges()[eid];
        const std::uint32_t w = (e.a == v) ? e.b : e.a;
        const double nd = d + e.weight;
        if (nd < dist[w]) {
          dist[w] = nd;
          obs[w] = obs[v] ^ e.observables;
          pq.emplace(nd, w);
        }
      }
    }
  }
}

std::uint64_t MwpmDecoder::decode(const std::vector<std::uint32_t>& defects) {
  const std::size_t k = defects.size();
  if (k == 0) return 0;
  const std::uint32_t B = graph_.boundary_node();

  // Nodes 0..k-1: defects; k..2k-1: per-defect virtual boundary copies.
  DenseMatcher matcher(2 * k);
  auto to_fixed = [](double w) {
    return static_cast<std::int64_t>(std::llround(w * kScale));
  };
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = i + 1; j < k; ++j) {
      const double d = dist_[defects[i]][defects[j]];
      if (std::isfinite(d)) matcher.add_edge(i, j, to_fixed(d));
    }
    const double db = dist_[defects[i]][B];
    if (std::isfinite(db)) matcher.add_edge(i, k + i, to_fixed(db));
  }
  for (std::size_t i = 0; i < k; ++i)
    for (std::size_t j = i + 1; j < k; ++j)
      matcher.add_edge(k + i, k + j, 0);

  const std::vector<std::size_t> mate = matcher.solve();

  std::uint64_t prediction = 0;
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t m = mate[i];
    if (m < k) {
      if (m > i) prediction ^= obs_[defects[i]][defects[m]];
    } else {
      prediction ^= obs_[defects[i]][B];
    }
  }
  return prediction;
}

std::string decoder_kind_name(DecoderKind kind) {
  switch (kind) {
    case DecoderKind::MWPM: return "mwpm";
    case DecoderKind::UNION_FIND: return "union-find";
    case DecoderKind::GREEDY: return "greedy";
  }
  return "?";
}

std::unique_ptr<Decoder> make_decoder(DecoderKind kind,
                                      const MatchingGraph& graph) {
  switch (kind) {
    case DecoderKind::MWPM:
      return std::make_unique<MwpmDecoder>(graph);
    case DecoderKind::UNION_FIND:
      return std::make_unique<UnionFindDecoder>(graph);
    case DecoderKind::GREEDY:
      return std::make_unique<GreedyDecoder>(graph);
  }
  throw InvalidArgument("unknown decoder kind");
}

}  // namespace radsurf
