#include "decoder/mwpm.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "decoder/blossom.hpp"
#include "decoder/greedy.hpp"
#include "decoder/union_find.hpp"
#include "util/error.hpp"

namespace radsurf {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
// Fixed-point scale when converting path weights for the integer matcher.
constexpr double kScale = 1e6;
}  // namespace

namespace {
constexpr std::uint32_t kNoPred = 0xffffffffu;
}

MwpmDecoder::MwpmDecoder(const MatchingGraph& graph, bool track_paths)
    : graph_(graph) {
  const std::size_t n = graph.num_nodes();
  dist_.assign(n, std::vector<double>(n, kInf));
  obs_.assign(n, std::vector<std::uint64_t>(n, 0));
  if (track_paths) pred_.assign(n, std::vector<std::uint32_t>(n, kNoPred));

  // Dijkstra from every node, tracking observable parity along the chosen
  // shortest path (any minimal path is a valid correction representative)
  // and, on request, the predecessor chain so the path itself can be
  // reconstructed for windowed partial commits.  Without tracking, the
  // writes land in one discarded scratch row.
  std::vector<std::uint32_t> scratch_pred(track_paths ? 0 : n);
  for (std::uint32_t src = 0; src < n; ++src) {
    auto& dist = dist_[src];
    auto& obs = obs_[src];
    auto& pred = track_paths ? pred_[src] : scratch_pred;
    dist[src] = 0.0;
    using Item = std::pair<double, std::uint32_t>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
    pq.emplace(0.0, src);
    std::vector<char> done(n, 0);
    while (!pq.empty()) {
      const auto [d, v] = pq.top();
      pq.pop();
      if (done[v]) continue;
      done[v] = 1;
      for (std::uint32_t eid : graph.adjacent_edges(v)) {
        const MatchingEdge& e = graph.edges()[eid];
        const std::uint32_t w = (e.a == v) ? e.b : e.a;
        const double nd = d + e.weight;
        if (nd < dist[w]) {
          dist[w] = nd;
          obs[w] = obs[v] ^ e.observables;
          pred[w] = v;
          pq.emplace(nd, w);
        }
      }
    }
  }
}

std::vector<MwpmMatch> MwpmDecoder::match_defects(
    const std::vector<std::uint32_t>& defects) const {
  const std::size_t k = defects.size();
  std::vector<MwpmMatch> pairs;
  if (k == 0) return pairs;
  const std::uint32_t B = graph_.boundary_node();

  // Nodes 0..k-1: defects; k..2k-1: per-defect virtual boundary copies.
  DenseMatcher matcher(2 * k);
  auto to_fixed = [](double w) {
    return static_cast<std::int64_t>(std::llround(w * kScale));
  };
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = i + 1; j < k; ++j) {
      const double d = dist_[defects[i]][defects[j]];
      if (std::isfinite(d)) matcher.add_edge(i, j, to_fixed(d));
    }
    const double db = dist_[defects[i]][B];
    if (std::isfinite(db)) matcher.add_edge(i, k + i, to_fixed(db));
  }
  for (std::size_t i = 0; i < k; ++i)
    for (std::size_t j = i + 1; j < k; ++j)
      matcher.add_edge(k + i, k + j, 0);

  const std::vector<std::size_t> mate = matcher.solve();

  pairs.reserve((k + 1) / 2);
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t m = mate[i];
    if (m < k) {
      if (m > i) pairs.push_back({defects[i], defects[m]});
    } else {
      pairs.push_back({defects[i], B});
    }
  }
  return pairs;
}

std::vector<std::uint32_t> MwpmDecoder::path_nodes(std::uint32_t a,
                                                   std::uint32_t b) const {
  RADSURF_CHECK_ARG(!pred_.empty(),
                    "decoder was built without track_paths");
  RADSURF_CHECK_ARG(std::isfinite(dist_[a][b]),
                    "no path between nodes " << a << " and " << b);
  std::vector<std::uint32_t> nodes{b};
  while (nodes.back() != a) nodes.push_back(pred_[a][nodes.back()]);
  std::reverse(nodes.begin(), nodes.end());
  return nodes;
}

std::uint64_t MwpmDecoder::decode(const std::vector<std::uint32_t>& defects) {
  std::uint64_t prediction = 0;
  for (const MwpmMatch& pair : match_defects(defects))
    prediction ^= obs_[pair.a][pair.b];
  return prediction;
}

std::string decoder_kind_name(DecoderKind kind) {
  switch (kind) {
    case DecoderKind::MWPM: return "mwpm";
    case DecoderKind::UNION_FIND: return "union-find";
    case DecoderKind::GREEDY: return "greedy";
  }
  return "?";
}

std::unique_ptr<Decoder> make_decoder(DecoderKind kind,
                                      const MatchingGraph& graph) {
  switch (kind) {
    case DecoderKind::MWPM:
      return std::make_unique<MwpmDecoder>(graph);
    case DecoderKind::UNION_FIND:
      return std::make_unique<UnionFindDecoder>(graph);
    case DecoderKind::GREEDY:
      return std::make_unique<GreedyDecoder>(graph);
  }
  throw InvalidArgument("unknown decoder kind");
}

}  // namespace radsurf
