#include "decoder/mwpm.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <queue>

#include "decoder/blossom.hpp"
#include "decoder/greedy.hpp"
#include "decoder/sparse_blossom.hpp"
#include "decoder/union_find.hpp"
#include "util/error.hpp"

namespace radsurf {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
// Fixed-point scale when converting path weights for the integer matcher.
constexpr double kScale = 1e6;
constexpr std::uint32_t kNoPred = 0xffffffffu;
// Fixed-point stand-in for an unreachable pair: large enough to lose every
// comparison, small enough that sums cannot overflow.
constexpr std::int64_t kInfWeight =
    std::numeric_limits<std::int64_t>::max() / 4;

std::int64_t to_fixed(double w) {
  if (!std::isfinite(w)) return kInfWeight;
  return static_cast<std::int64_t>(std::llround(w * kScale));
}
}  // namespace

MwpmDecoder::MwpmDecoder(const MatchingGraph& graph, MwpmOptions options)
    : graph_(graph), options_(options), rows_(graph.num_nodes()) {
  RADSURF_CHECK_ARG(options_.dp_max_cluster <= DecoderOptions::kDpClusterCap,
                    "dp_max_cluster " << options_.dp_max_cluster
                                      << " exceeds the cap "
                                      << DecoderOptions::kDpClusterCap);
  for (auto& slot : rows_) slot.store(nullptr, std::memory_order_relaxed);
  if (!options_.lazy) {
    // Dense backend: the original eager all-pairs precompute.
    for (std::uint32_t src = 0; src < graph_.num_nodes(); ++src) (void)row(src);
  }
}

MwpmDecoder::~MwpmDecoder() {
  for (auto& slot : rows_) delete slot.load(std::memory_order_relaxed);
}

void MwpmDecoder::compute_row(std::uint32_t src, Row& out) const {
  const std::size_t n = graph_.num_nodes();
  out.dist.assign(n, kInf);
  out.obs.assign(n, 0);
  if (options_.track_paths) out.pred.assign(n, kNoPred);

  // Dijkstra from src, tracking observable parity along the chosen shortest
  // path (any minimal path is a valid correction representative) and, on
  // request, the predecessor chain so the path itself can be reconstructed
  // for windowed partial commits.
  out.dist[src] = 0.0;
  using Item = std::pair<double, std::uint32_t>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  pq.emplace(0.0, src);
  std::vector<char> done(n, 0);
  while (!pq.empty()) {
    const auto [d, v] = pq.top();
    pq.pop();
    if (done[v]) continue;
    done[v] = 1;
    for (std::uint32_t eid : graph_.adjacent_edges(v)) {
      const MatchingEdge& e = graph_.edges()[eid];
      const std::uint32_t w = (e.a == v) ? e.b : e.a;
      const double nd = d + e.weight;
      if (nd < out.dist[w]) {
        out.dist[w] = nd;
        out.obs[w] = out.obs[v] ^ e.observables;
        if (options_.track_paths) out.pred[w] = v;
        pq.emplace(nd, w);
      }
    }
  }
  out.fx.resize(n);
  for (std::size_t i = 0; i < n; ++i) out.fx[i] = to_fixed(out.dist[i]);
}

const MwpmDecoder::Row& MwpmDecoder::row(std::uint32_t src) const {
  std::atomic<Row*>& slot = rows_[src];
  Row* existing = slot.load(std::memory_order_acquire);
  if (existing) return *existing;
  auto fresh = std::make_unique<Row>();
  compute_row(src, *fresh);
  Row* expected = nullptr;
  if (slot.compare_exchange_strong(expected, fresh.get(),
                                   std::memory_order_release,
                                   std::memory_order_acquire)) {
    rows_built_.fetch_add(1, std::memory_order_relaxed);
    return *fresh.release();
  }
  // Lost the publish race: the winner's row is identical (Dijkstra is a
  // deterministic function of the graph); drop ours.
  return *expected;
}

void MwpmDecoder::defect_clusters_into(
    const std::vector<std::uint32_t>& defects,
    std::vector<std::uint32_t>& flat, std::vector<std::uint32_t>& begins) const {
  const std::size_t k = defects.size();
  flat.clear();
  begins.clear();
  begins.push_back(0);
  if (k == 0) return;
  if (!options_.cluster || k <= 2) {
    flat.assign(defects.begin(), defects.end());
    begins.push_back(static_cast<std::uint32_t>(k));
    return;
  }

  const std::uint32_t B = graph_.boundary_node();
  // Small fixed-capacity scratch keeps the campaign hot path allocation-
  // free; defect counts beyond it fall back to heap scratch.
  constexpr std::size_t kStack = 32;
  std::int64_t boundary_stack[kStack];
  std::uint32_t parent_stack[kStack];
  std::vector<std::int64_t> boundary_heap;
  std::vector<std::uint32_t> parent_heap;
  std::int64_t* to_boundary = boundary_stack;
  std::uint32_t* parent = parent_stack;
  if (k > kStack) {
    boundary_heap.resize(k);
    parent_heap.resize(k);
    to_boundary = boundary_heap.data();
    parent = parent_heap.data();
  }
  for (std::size_t i = 0; i < k; ++i) {
    to_boundary[i] = row(defects[i]).fx[B];
    parent[i] = static_cast<std::uint32_t>(i);
  }

  // Union-find over defect indices: i and j may share a cluster only when
  // matching them directly can beat (or tie) two boundary exits; when
  // d(i, j) is strictly worse in fixed point, every minimum-weight matching
  // replaces the pair by boundary matches, so the cut is exact.  Ties stay
  // united, which is always safe (one merged subproblem).
  auto find = [&parent](std::uint32_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  // Once everything has merged into a single component no further union
  // can change the answer, so the pair scan stops early — the common case
  // for a dense radiation strike is one cluster after a few unions.
  std::size_t components = k;
  for (std::size_t i = 0; i + 1 < k && components > 1; ++i) {
    const auto& di = row(defects[i]).fx;
    for (std::size_t j = i + 1; j < k; ++j) {
      if (di[defects[j]] <= to_boundary[i] + to_boundary[j]) {
        const std::uint32_t ri = find(static_cast<std::uint32_t>(i));
        const std::uint32_t rj = find(static_cast<std::uint32_t>(j));
        if (ri != rj) {
          parent[ri] = rj;
          if (--components == 1) break;
        }
      }
    }
  }

  // Emit clusters in order of their first member, preserving input order
  // within each cluster.  Roots are flattened first so a plain equality
  // scan finds every member regardless of union direction.
  char done_stack[kStack];
  std::vector<char> done_heap;
  char* done = done_stack;
  if (k > kStack) {
    done_heap.assign(k, 0);
    done = done_heap.data();
  } else {
    std::fill(done, done + k, 0);
  }
  for (std::size_t i = 0; i < k; ++i)
    parent[i] = find(static_cast<std::uint32_t>(i));
  flat.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    if (done[i]) continue;
    const std::uint32_t r = parent[i];
    for (std::size_t j = i; j < k; ++j) {
      if (parent[j] == r) {
        flat.push_back(defects[j]);
        done[j] = 1;
      }
    }
    begins.push_back(static_cast<std::uint32_t>(flat.size()));
  }
}

std::vector<std::vector<std::uint32_t>> MwpmDecoder::defect_clusters(
    const std::vector<std::uint32_t>& defects) const {
  std::vector<std::uint32_t> flat;
  std::vector<std::uint32_t> begins;
  defect_clusters_into(defects, flat, begins);
  std::vector<std::vector<std::uint32_t>> clusters;
  for (std::size_t c = 0; c + 1 < begins.size(); ++c)
    clusters.emplace_back(flat.begin() + begins[c],
                          flat.begin() + begins[c + 1]);
  return clusters;
}

namespace {
std::int64_t sat_add(std::int64_t a, std::int64_t b) {
  return (a >= kInfWeight || b >= kInfWeight) ? kInfWeight : a + b;
}

// Stand-in boundary distance for a defect that cannot reach the boundary
// at all: large enough that leaving it unmatched never wins (it must pair
// internally), small enough that labels in the savings matcher stay far
// from overflow (~2^44 vs fixed-point path weights of ~2^30).  Because it
// enters every savings term of that defect as the same additive constant,
// the *choice* among its internal partners is unaffected, so the reduction
// stays exact; a defect the matching still leaves unmatched genuinely has
// no partner and no boundary, which is the existing DecodeError.
constexpr std::int64_t kForcedBoundary = std::int64_t{1} << 44;
}  // namespace

void MwpmDecoder::match_cluster(const std::uint32_t* cluster,
                                std::size_t size,
                                std::vector<MwpmMatch>& pairs) const {
  const std::size_t k = size;
  const std::uint32_t B = graph_.boundary_node();
  if (k == 1) {
    const double db = row(cluster[0]).dist[B];
    if (!std::isfinite(db))
      throw DecodeError("defect cannot reach the boundary or a partner");
    pairs.push_back({cluster[0], B});
    return;
  }

  if (k <= options_.dp_max_cluster) {
    // Exact minimum-weight matching by subset DP: M(S) is the cost of
    // resolving the defect subset S, peeling the lowest member i of S
    // either to the boundary or against a partner j.  Tie preference —
    // internal pair over boundary exit, lowest partner index first —
    // mirrors the blossom matcher's observed choices, which the
    // sparse-vs-dense property tests pin down.
    stat_clusters_dp_.fetch_add(1, std::memory_order_relaxed);
    constexpr std::size_t kCap = DecoderOptions::kDpClusterCap;
    std::int64_t w[kCap][kCap];
    std::int64_t wb[kCap];
    for (std::size_t i = 0; i < k; ++i) {
      const auto& di = row(cluster[i]).fx;
      wb[i] = di[B];
      for (std::size_t j = i + 1; j < k; ++j) w[i][j] = di[cluster[j]];
    }
    const std::uint32_t full = (1u << k) - 1;
    // The tables are 2^k entries; beyond the historic cap of 10 they leave
    // the stack (up to 576 KiB at the cap of 16), so thread-local scratch
    // grown once per thread replaces the fixed arrays.
    thread_local std::vector<std::int64_t> cost_scratch;
    thread_local std::vector<std::uint8_t> partner_scratch;
    if (cost_scratch.size() < full + 1u) {
      cost_scratch.resize(full + 1u);
      partner_scratch.resize(full + 1u);
    }
    std::int64_t* cost = cost_scratch.data();
    std::uint8_t* partner = partner_scratch.data();  // k == boundary
    cost[0] = 0;
    for (std::uint32_t S = 1; S <= full; ++S) {
      const auto i = static_cast<std::uint32_t>(std::countr_zero(S));
      const std::uint32_t rest = S & (S - 1);  // S without i
      std::int64_t best = sat_add(wb[i], cost[rest]);
      std::uint8_t best_partner = static_cast<std::uint8_t>(k);
      for (std::uint32_t j = i + 1; j < k; ++j) {
        if (!(rest >> j & 1)) continue;
        const std::int64_t cand =
            sat_add(w[i][j], cost[rest & ~(1u << j)]);
        if (cand < best ||
            (cand == best && best_partner == static_cast<std::uint8_t>(k))) {
          best = cand;
          best_partner = static_cast<std::uint8_t>(j);
        }
      }
      cost[S] = best;
      partner[S] = best_partner;
    }
    if (cost[full] >= kInfWeight)
      throw DecodeError("defect cannot reach the boundary or a partner");
    for (std::uint32_t S = full; S != 0;) {
      const auto i = static_cast<std::uint32_t>(std::countr_zero(S));
      const std::uint8_t j = partner[S];
      if (j == static_cast<std::uint8_t>(k)) {
        pairs.push_back({cluster[i], B});
        S &= S - 1;
      } else {
        pairs.push_back({cluster[i], cluster[j]});
        S = (S & (S - 1)) & ~(1u << j);
      }
    }
    return;
  }

  if (options_.dense_matcher) {
    // Dense oracle: nodes 0..k-1 are defects, k..2k-1 per-defect virtual
    // boundary copies with a free clique, so the perfect matching encodes
    // boundary exits.  Kept behind the flag for bit-for-bit validation of
    // the sparse matcher and as the before side of the perf cliff.
    stat_clusters_dense_.fetch_add(1, std::memory_order_relaxed);
    DenseMatcher matcher(2 * k);
    for (std::size_t i = 0; i < k; ++i) {
      const auto& di = row(cluster[i]).dist;
      for (std::size_t j = i + 1; j < k; ++j) {
        const double d = di[cluster[j]];
        if (std::isfinite(d)) matcher.add_edge(i, j, to_fixed(d));
      }
      const double db = di[B];
      if (std::isfinite(db)) matcher.add_edge(i, k + i, to_fixed(db));
    }
    for (std::size_t i = 0; i < k; ++i)
      for (std::size_t j = i + 1; j < k; ++j)
        matcher.add_edge(k + i, k + j, 0);

    const std::vector<std::size_t> mate = matcher.solve();
    for (std::size_t i = 0; i < k; ++i) {
      const std::size_t m = mate[i];
      if (m < k) {
        if (m > i) pairs.push_back({cluster[i], cluster[m]});
      } else {
        pairs.push_back({cluster[i], B});
      }
    }
    return;
  }

  // Sparse region-growing blossom on the boundary-savings graph: matching
  // i with j instead of sending both to the boundary saves
  // s_ij = dB(i) + dB(j) - d(i, j), and some minimum-weight matching uses
  // only s > 0 pairs (replacing an s <= 0 pair by two boundary exits never
  // costs more), so the matcher maximises savings over the defects alone —
  // half the nodes, no virtual boundary clique, no per-solve allocation.
  stat_clusters_sparse_.fetch_add(1, std::memory_order_relaxed);
  thread_local SparseBlossomMatcher matcher;
  thread_local std::vector<SparseBlossomMatcher::Edge> edges;
  thread_local std::vector<std::int64_t> wb;
  thread_local std::vector<const Row*> rows;
  edges.clear();
  wb.resize(k);
  rows.resize(k);
  for (std::size_t i = 0; i < k; ++i) {
    rows[i] = &row(cluster[i]);
    wb[i] = std::min(rows[i]->fx[B], kForcedBoundary);
  }
  for (std::size_t i = 0; i < k; ++i) {
    const auto& di = rows[i]->fx;
    for (std::size_t j = i + 1; j < k; ++j) {
      const std::int64_t d = di[cluster[j]];
      if (d >= kInfWeight) continue;
      const std::int64_t s = wb[i] + wb[j] - d;
      if (s > 0)
        edges.push_back({static_cast<std::uint32_t>(i),
                         static_cast<std::uint32_t>(j), s});
    }
  }
  const std::vector<std::uint32_t>& mate = matcher.solve(k, edges);
  for (std::size_t i = 0; i < k; ++i) {
    const std::uint32_t m = mate[i];
    if (m == SparseBlossomMatcher::kBoundary) {
      if (!std::isfinite(rows[i]->dist[B]))
        throw DecodeError("defect cannot reach the boundary or a partner");
      pairs.push_back({cluster[i], B});
    } else if (m > i) {
      pairs.push_back({cluster[i], cluster[m]});
    }
  }
  const SparseBlossomStats& ms = matcher.stats();
  stat_regions_grown_.fetch_add(ms.regions_grown, std::memory_order_relaxed);
  stat_blossoms_formed_.fetch_add(ms.blossoms_formed,
                                  std::memory_order_relaxed);
  stat_blossoms_expanded_.fetch_add(ms.blossoms_expanded,
                                    std::memory_order_relaxed);
  stat_warm_reuses_.fetch_add(ms.warm_reuses, std::memory_order_relaxed);
}

MwpmMatcherStats MwpmDecoder::matcher_stats() const {
  MwpmMatcherStats s;
  s.clusters_dp = stat_clusters_dp_.load(std::memory_order_relaxed);
  s.clusters_sparse = stat_clusters_sparse_.load(std::memory_order_relaxed);
  s.clusters_dense = stat_clusters_dense_.load(std::memory_order_relaxed);
  s.regions_grown = stat_regions_grown_.load(std::memory_order_relaxed);
  s.blossoms_formed = stat_blossoms_formed_.load(std::memory_order_relaxed);
  s.blossoms_expanded =
      stat_blossoms_expanded_.load(std::memory_order_relaxed);
  s.warm_reuses = stat_warm_reuses_.load(std::memory_order_relaxed);
  return s;
}

void MwpmDecoder::match_defects_into(
    const std::vector<std::uint32_t>& defects,
    std::vector<MwpmMatch>& pairs) const {
  pairs.clear();
  if (defects.empty()) return;
  pairs.reserve((defects.size() + 1) / 2);
  thread_local std::vector<std::uint32_t> flat;
  thread_local std::vector<std::uint32_t> begins;
  defect_clusters_into(defects, flat, begins);
  for (std::size_t c = 0; c + 1 < begins.size(); ++c)
    match_cluster(flat.data() + begins[c], begins[c + 1] - begins[c], pairs);
}

std::vector<MwpmMatch> MwpmDecoder::match_defects(
    const std::vector<std::uint32_t>& defects) const {
  std::vector<MwpmMatch> pairs;
  match_defects_into(defects, pairs);
  return pairs;
}

std::uint64_t MwpmDecoder::decode_cluster(const std::uint32_t* cluster,
                                          std::size_t size) const {
  if (size == 1) {
    // Singleton cluster: forced boundary match — two array reads.
    const Row& r = row(cluster[0]);
    const std::uint32_t B = graph_.boundary_node();
    if (!std::isfinite(r.dist[B]))
      throw DecodeError("defect cannot reach the boundary or a partner");
    return r.obs[B];
  }
  thread_local std::vector<MwpmMatch> pairs;
  pairs.clear();
  match_cluster(cluster, size, pairs);
  std::uint64_t prediction = 0;
  for (const MwpmMatch& pair : pairs)
    prediction ^= row(pair.a).obs[pair.b];
  return prediction;
}

std::vector<std::uint32_t> MwpmDecoder::path_nodes(std::uint32_t a,
                                                   std::uint32_t b) const {
  RADSURF_CHECK_ARG(options_.track_paths,
                    "decoder was built without track_paths");
  const Row& r = row(a);
  RADSURF_CHECK_ARG(std::isfinite(r.dist[b]),
                    "no path between nodes " << a << " and " << b);
  std::vector<std::uint32_t> nodes{b};
  while (nodes.back() != a) nodes.push_back(r.pred[nodes.back()]);
  std::reverse(nodes.begin(), nodes.end());
  return nodes;
}

std::uint64_t MwpmDecoder::decode(const std::vector<std::uint32_t>& defects) {
  thread_local std::vector<MwpmMatch> pairs;
  match_defects_into(defects, pairs);
  std::uint64_t prediction = 0;
  for (const MwpmMatch& pair : pairs)
    prediction ^= row(pair.a).obs[pair.b];
  return prediction;
}

std::string decoder_kind_name(DecoderKind kind) {
  switch (kind) {
    case DecoderKind::MWPM: return "mwpm";
    case DecoderKind::UNION_FIND: return "union-find";
    case DecoderKind::GREEDY: return "greedy";
  }
  return "?";
}

std::unique_ptr<Decoder> make_decoder(const DecoderOptions& options,
                                      const MatchingGraph& graph) {
  switch (options.kind) {
    case DecoderKind::MWPM:
      return std::make_unique<MwpmDecoder>(
          graph, MwpmOptions{/*track_paths=*/false, /*lazy=*/true,
                             /*cluster=*/true, options.dp_max_cluster,
                             options.dense_matcher});
    case DecoderKind::UNION_FIND:
      return std::make_unique<UnionFindDecoder>(graph);
    case DecoderKind::GREEDY:
      return std::make_unique<GreedyDecoder>(graph);
  }
  throw InvalidArgument("unknown decoder kind");
}

}  // namespace radsurf
