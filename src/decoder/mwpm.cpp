#include "decoder/mwpm.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <queue>

#include "decoder/blossom.hpp"
#include "decoder/greedy.hpp"
#include "decoder/union_find.hpp"
#include "util/error.hpp"

namespace radsurf {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
// Fixed-point scale when converting path weights for the integer matcher.
constexpr double kScale = 1e6;
constexpr std::uint32_t kNoPred = 0xffffffffu;
// Fixed-point stand-in for an unreachable pair: large enough to lose every
// comparison, small enough that sums cannot overflow.
constexpr std::int64_t kInfWeight =
    std::numeric_limits<std::int64_t>::max() / 4;

std::int64_t to_fixed(double w) {
  if (!std::isfinite(w)) return kInfWeight;
  return static_cast<std::int64_t>(std::llround(w * kScale));
}
}  // namespace

MwpmDecoder::MwpmDecoder(const MatchingGraph& graph, MwpmOptions options)
    : graph_(graph), options_(options), rows_(graph.num_nodes()) {
  for (auto& slot : rows_) slot.store(nullptr, std::memory_order_relaxed);
  if (!options_.lazy) {
    // Dense backend: the original eager all-pairs precompute.
    for (std::uint32_t src = 0; src < graph_.num_nodes(); ++src) (void)row(src);
  }
}

MwpmDecoder::~MwpmDecoder() {
  for (auto& slot : rows_) delete slot.load(std::memory_order_relaxed);
}

void MwpmDecoder::compute_row(std::uint32_t src, Row& out) const {
  const std::size_t n = graph_.num_nodes();
  out.dist.assign(n, kInf);
  out.obs.assign(n, 0);
  if (options_.track_paths) out.pred.assign(n, kNoPred);

  // Dijkstra from src, tracking observable parity along the chosen shortest
  // path (any minimal path is a valid correction representative) and, on
  // request, the predecessor chain so the path itself can be reconstructed
  // for windowed partial commits.
  out.dist[src] = 0.0;
  using Item = std::pair<double, std::uint32_t>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  pq.emplace(0.0, src);
  std::vector<char> done(n, 0);
  while (!pq.empty()) {
    const auto [d, v] = pq.top();
    pq.pop();
    if (done[v]) continue;
    done[v] = 1;
    for (std::uint32_t eid : graph_.adjacent_edges(v)) {
      const MatchingEdge& e = graph_.edges()[eid];
      const std::uint32_t w = (e.a == v) ? e.b : e.a;
      const double nd = d + e.weight;
      if (nd < out.dist[w]) {
        out.dist[w] = nd;
        out.obs[w] = out.obs[v] ^ e.observables;
        if (options_.track_paths) out.pred[w] = v;
        pq.emplace(nd, w);
      }
    }
  }
}

const MwpmDecoder::Row& MwpmDecoder::row(std::uint32_t src) const {
  std::atomic<Row*>& slot = rows_[src];
  Row* existing = slot.load(std::memory_order_acquire);
  if (existing) return *existing;
  auto fresh = std::make_unique<Row>();
  compute_row(src, *fresh);
  Row* expected = nullptr;
  if (slot.compare_exchange_strong(expected, fresh.get(),
                                   std::memory_order_release,
                                   std::memory_order_acquire)) {
    rows_built_.fetch_add(1, std::memory_order_relaxed);
    return *fresh.release();
  }
  // Lost the publish race: the winner's row is identical (Dijkstra is a
  // deterministic function of the graph); drop ours.
  return *expected;
}

void MwpmDecoder::defect_clusters_into(
    const std::vector<std::uint32_t>& defects,
    std::vector<std::uint32_t>& flat, std::vector<std::uint32_t>& begins) const {
  const std::size_t k = defects.size();
  flat.clear();
  begins.clear();
  begins.push_back(0);
  if (k == 0) return;
  if (!options_.cluster || k <= 2) {
    flat.assign(defects.begin(), defects.end());
    begins.push_back(static_cast<std::uint32_t>(k));
    return;
  }

  const std::uint32_t B = graph_.boundary_node();
  // Small fixed-capacity scratch keeps the campaign hot path allocation-
  // free; defect counts beyond it fall back to heap scratch.
  constexpr std::size_t kStack = 32;
  std::int64_t boundary_stack[kStack];
  std::uint32_t parent_stack[kStack];
  std::vector<std::int64_t> boundary_heap;
  std::vector<std::uint32_t> parent_heap;
  std::int64_t* to_boundary = boundary_stack;
  std::uint32_t* parent = parent_stack;
  if (k > kStack) {
    boundary_heap.resize(k);
    parent_heap.resize(k);
    to_boundary = boundary_heap.data();
    parent = parent_heap.data();
  }
  for (std::size_t i = 0; i < k; ++i) {
    to_boundary[i] = to_fixed(row(defects[i]).dist[B]);
    parent[i] = static_cast<std::uint32_t>(i);
  }

  // Union-find over defect indices: i and j may share a cluster only when
  // matching them directly can beat (or tie) two boundary exits; when
  // d(i, j) is strictly worse in fixed point, every minimum-weight matching
  // replaces the pair by boundary matches, so the cut is exact.  Ties stay
  // united, which is always safe (one merged subproblem).
  auto find = [&parent](std::uint32_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (std::size_t i = 0; i < k; ++i) {
    const auto& di = row(defects[i]).dist;
    for (std::size_t j = i + 1; j < k; ++j) {
      if (to_fixed(di[defects[j]]) <= to_boundary[i] + to_boundary[j])
        parent[find(static_cast<std::uint32_t>(i))] =
            find(static_cast<std::uint32_t>(j));
    }
  }

  // Emit clusters in order of their first member, preserving input order
  // within each cluster.  Roots are flattened first so a plain equality
  // scan finds every member regardless of union direction.
  char done_stack[kStack];
  std::vector<char> done_heap;
  char* done = done_stack;
  if (k > kStack) {
    done_heap.assign(k, 0);
    done = done_heap.data();
  } else {
    std::fill(done, done + k, 0);
  }
  for (std::size_t i = 0; i < k; ++i)
    parent[i] = find(static_cast<std::uint32_t>(i));
  flat.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    if (done[i]) continue;
    const std::uint32_t r = parent[i];
    for (std::size_t j = i; j < k; ++j) {
      if (parent[j] == r) {
        flat.push_back(defects[j]);
        done[j] = 1;
      }
    }
    begins.push_back(static_cast<std::uint32_t>(flat.size()));
  }
}

std::vector<std::vector<std::uint32_t>> MwpmDecoder::defect_clusters(
    const std::vector<std::uint32_t>& defects) const {
  std::vector<std::uint32_t> flat;
  std::vector<std::uint32_t> begins;
  defect_clusters_into(defects, flat, begins);
  std::vector<std::vector<std::uint32_t>> clusters;
  for (std::size_t c = 0; c + 1 < begins.size(); ++c)
    clusters.emplace_back(flat.begin() + begins[c],
                          flat.begin() + begins[c + 1]);
  return clusters;
}

namespace {
// Largest cluster handled by the exact subset-DP matcher; beyond this the
// general blossom matcher takes over.  2^k * k work and an 8 KiB table at
// the cap — far below blossom's constant for the small clusters the
// locality prefilter produces.
constexpr std::size_t kDpMaxCluster = 10;

std::int64_t sat_add(std::int64_t a, std::int64_t b) {
  return (a >= kInfWeight || b >= kInfWeight) ? kInfWeight : a + b;
}
}  // namespace

void MwpmDecoder::match_cluster(const std::uint32_t* cluster,
                                std::size_t size,
                                std::vector<MwpmMatch>& pairs) const {
  const std::size_t k = size;
  const std::uint32_t B = graph_.boundary_node();
  if (k == 1) {
    const double db = row(cluster[0]).dist[B];
    if (!std::isfinite(db))
      throw DecodeError("defect cannot reach the boundary or a partner");
    pairs.push_back({cluster[0], B});
    return;
  }

  if (k <= kDpMaxCluster) {
    // Exact minimum-weight matching by subset DP: M(S) is the cost of
    // resolving the defect subset S, peeling the lowest member i of S
    // either to the boundary or against a partner j.  Tie preference —
    // internal pair over boundary exit, lowest partner index first —
    // mirrors the blossom matcher's observed choices, which the
    // sparse-vs-dense property tests pin down.
    std::int64_t w[kDpMaxCluster][kDpMaxCluster];
    std::int64_t wb[kDpMaxCluster];
    for (std::size_t i = 0; i < k; ++i) {
      const auto& di = row(cluster[i]).dist;
      wb[i] = to_fixed(di[B]);
      for (std::size_t j = i + 1; j < k; ++j)
        w[i][j] = to_fixed(di[cluster[j]]);
    }
    const std::uint32_t full = (1u << k) - 1;
    std::int64_t cost[1u << kDpMaxCluster];
    std::uint8_t partner[1u << kDpMaxCluster];  // k == boundary
    cost[0] = 0;
    for (std::uint32_t S = 1; S <= full; ++S) {
      const auto i = static_cast<std::uint32_t>(std::countr_zero(S));
      const std::uint32_t rest = S & (S - 1);  // S without i
      std::int64_t best = sat_add(wb[i], cost[rest]);
      std::uint8_t best_partner = static_cast<std::uint8_t>(k);
      for (std::uint32_t j = i + 1; j < k; ++j) {
        if (!(rest >> j & 1)) continue;
        const std::int64_t cand =
            sat_add(w[i][j], cost[rest & ~(1u << j)]);
        if (cand < best ||
            (cand == best && best_partner == static_cast<std::uint8_t>(k))) {
          best = cand;
          best_partner = static_cast<std::uint8_t>(j);
        }
      }
      cost[S] = best;
      partner[S] = best_partner;
    }
    if (cost[full] >= kInfWeight)
      throw DecodeError("defect cannot reach the boundary or a partner");
    for (std::uint32_t S = full; S != 0;) {
      const auto i = static_cast<std::uint32_t>(std::countr_zero(S));
      const std::uint8_t j = partner[S];
      if (j == static_cast<std::uint8_t>(k)) {
        pairs.push_back({cluster[i], B});
        S &= S - 1;
      } else {
        pairs.push_back({cluster[i], cluster[j]});
        S = (S & (S - 1)) & ~(1u << j);
      }
    }
    return;
  }

  // Nodes 0..k-1: defects; k..2k-1: per-defect virtual boundary copies.
  DenseMatcher matcher(2 * k);
  for (std::size_t i = 0; i < k; ++i) {
    const auto& di = row(cluster[i]).dist;
    for (std::size_t j = i + 1; j < k; ++j) {
      const double d = di[cluster[j]];
      if (std::isfinite(d)) matcher.add_edge(i, j, to_fixed(d));
    }
    const double db = di[B];
    if (std::isfinite(db)) matcher.add_edge(i, k + i, to_fixed(db));
  }
  for (std::size_t i = 0; i < k; ++i)
    for (std::size_t j = i + 1; j < k; ++j)
      matcher.add_edge(k + i, k + j, 0);

  const std::vector<std::size_t> mate = matcher.solve();
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t m = mate[i];
    if (m < k) {
      if (m > i) pairs.push_back({cluster[i], cluster[m]});
    } else {
      pairs.push_back({cluster[i], B});
    }
  }
}

std::vector<MwpmMatch> MwpmDecoder::match_defects(
    const std::vector<std::uint32_t>& defects) const {
  std::vector<MwpmMatch> pairs;
  if (defects.empty()) return pairs;
  pairs.reserve((defects.size() + 1) / 2);
  std::vector<std::uint32_t> flat;
  std::vector<std::uint32_t> begins;
  defect_clusters_into(defects, flat, begins);
  for (std::size_t c = 0; c + 1 < begins.size(); ++c)
    match_cluster(flat.data() + begins[c], begins[c + 1] - begins[c], pairs);
  return pairs;
}

std::uint64_t MwpmDecoder::decode_cluster(const std::uint32_t* cluster,
                                          std::size_t size) const {
  if (size == 1) {
    // Singleton cluster: forced boundary match — two array reads.
    const Row& r = row(cluster[0]);
    const std::uint32_t B = graph_.boundary_node();
    if (!std::isfinite(r.dist[B]))
      throw DecodeError("defect cannot reach the boundary or a partner");
    return r.obs[B];
  }
  thread_local std::vector<MwpmMatch> pairs;
  pairs.clear();
  match_cluster(cluster, size, pairs);
  std::uint64_t prediction = 0;
  for (const MwpmMatch& pair : pairs)
    prediction ^= row(pair.a).obs[pair.b];
  return prediction;
}

std::vector<std::uint32_t> MwpmDecoder::path_nodes(std::uint32_t a,
                                                   std::uint32_t b) const {
  RADSURF_CHECK_ARG(options_.track_paths,
                    "decoder was built without track_paths");
  const Row& r = row(a);
  RADSURF_CHECK_ARG(std::isfinite(r.dist[b]),
                    "no path between nodes " << a << " and " << b);
  std::vector<std::uint32_t> nodes{b};
  while (nodes.back() != a) nodes.push_back(r.pred[nodes.back()]);
  std::reverse(nodes.begin(), nodes.end());
  return nodes;
}

std::uint64_t MwpmDecoder::decode(const std::vector<std::uint32_t>& defects) {
  std::uint64_t prediction = 0;
  for (const MwpmMatch& pair : match_defects(defects))
    prediction ^= row(pair.a).obs[pair.b];
  return prediction;
}

std::string decoder_kind_name(DecoderKind kind) {
  switch (kind) {
    case DecoderKind::MWPM: return "mwpm";
    case DecoderKind::UNION_FIND: return "union-find";
    case DecoderKind::GREEDY: return "greedy";
  }
  return "?";
}

std::unique_ptr<Decoder> make_decoder(DecoderKind kind,
                                      const MatchingGraph& graph) {
  switch (kind) {
    case DecoderKind::MWPM:
      return std::make_unique<MwpmDecoder>(graph);
    case DecoderKind::UNION_FIND:
      return std::make_unique<UnionFindDecoder>(graph);
    case DecoderKind::GREEDY:
      return std::make_unique<GreedyDecoder>(graph);
  }
  throw InvalidArgument("unknown decoder kind");
}

}  // namespace radsurf
