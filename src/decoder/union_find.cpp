#include "decoder/union_find.hpp"

#include <algorithm>
#include <queue>

#include "util/error.hpp"

namespace radsurf {

namespace {

struct Dsu {
  std::vector<std::uint32_t> parent;
  explicit Dsu(std::size_t n) : parent(n) {
    for (std::size_t i = 0; i < n; ++i)
      parent[i] = static_cast<std::uint32_t>(i);
  }
  std::uint32_t find(std::uint32_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  }
  void unite(std::uint32_t a, std::uint32_t b) { parent[find(a)] = find(b); }
};

}  // namespace

UnionFindDecoder::UnionFindDecoder(const MatchingGraph& graph)
    : graph_(graph) {}

std::uint64_t UnionFindDecoder::decode(
    const std::vector<std::uint32_t>& defects) {
  if (defects.empty()) return 0;
  const std::size_t n = graph_.num_nodes();
  const std::uint32_t B = graph_.boundary_node();

  std::vector<char> is_defect(n, 0);
  for (std::uint32_t d : defects) is_defect[d] = 1;

  // Synchronous unweighted growth: active clusters (odd defect parity, no
  // boundary contact) absorb all edges incident to their support.
  Dsu dsu(n);
  std::vector<char> in_support(n, 0);
  for (std::uint32_t d : defects) in_support[d] = 1;
  std::vector<char> edge_grown(graph_.edges().size(), 0);

  auto cluster_stats = [&](std::vector<int>& parity,
                           std::vector<char>& touches_boundary) {
    parity.assign(n, 0);
    touches_boundary.assign(n, 0);
    for (std::uint32_t v = 0; v < n; ++v) {
      if (!in_support[v]) continue;
      const std::uint32_t root = dsu.find(v);
      if (is_defect[v]) parity[root] ^= 1;
      if (v == B) touches_boundary[root] = 1;
    }
  };

  std::vector<int> parity;
  std::vector<char> touches_boundary;
  for (std::size_t round = 0; round <= graph_.edges().size(); ++round) {
    cluster_stats(parity, touches_boundary);
    bool any_active = false;
    for (std::uint32_t v = 0; v < n; ++v) {
      if (!in_support[v]) continue;
      const std::uint32_t root = dsu.find(v);
      if (parity[root] == 1 && !touches_boundary[root]) {
        any_active = true;
        break;
      }
    }
    if (!any_active) break;
    // Grow every active cluster by one edge layer.
    bool grew = false;
    for (std::uint32_t eid = 0; eid < graph_.edges().size(); ++eid) {
      if (edge_grown[eid]) continue;
      const MatchingEdge& e = graph_.edges()[eid];
      auto active_end = [&](std::uint32_t v) {
        if (!in_support[v]) return false;
        const std::uint32_t root = dsu.find(v);
        return parity[root] == 1 && !touches_boundary[root];
      };
      if (active_end(e.a) || active_end(e.b)) {
        edge_grown[eid] = 1;
        in_support[e.a] = in_support[e.b] = 1;
        dsu.unite(e.a, e.b);
        grew = true;
      }
    }
    if (!grew) {
      throw DecodeError(
          "union-find decoder: active cluster cannot grow (graph "
          "disconnected from boundary)");
    }
  }

  // Peeling: inside each cluster, build a spanning forest over grown edges
  // and peel leaves, toggling edges into the correction as needed.
  std::vector<std::vector<std::uint32_t>> tree_edges(n);
  {
    Dsu forest(n);
    for (std::uint32_t eid = 0; eid < graph_.edges().size(); ++eid) {
      if (!edge_grown[eid]) continue;
      const MatchingEdge& e = graph_.edges()[eid];
      if (forest.find(e.a) != forest.find(e.b)) {
        forest.unite(e.a, e.b);
        tree_edges[e.a].push_back(eid);
        tree_edges[e.b].push_back(eid);
      }
    }
  }

  std::vector<int> degree(n, 0);
  for (std::uint32_t v = 0; v < n; ++v)
    degree[v] = static_cast<int>(tree_edges[v].size());
  std::vector<char> edge_alive(graph_.edges().size(), 0);
  for (std::uint32_t v = 0; v < n; ++v)
    for (std::uint32_t eid : tree_edges[v]) edge_alive[eid] = 1;

  std::vector<char> pending(n, 0);
  for (std::uint32_t d : defects) pending[d] = 1;

  std::queue<std::uint32_t> leaves;
  for (std::uint32_t v = 0; v < n; ++v)
    if (degree[v] == 1 && v != B) leaves.push(v);

  std::uint64_t prediction = 0;
  while (!leaves.empty()) {
    const std::uint32_t v = leaves.front();
    leaves.pop();
    if (degree[v] != 1) continue;
    // The single alive tree edge at v.
    std::uint32_t the_edge = 0;
    bool found = false;
    for (std::uint32_t eid : tree_edges[v]) {
      if (edge_alive[eid]) {
        the_edge = eid;
        found = true;
        break;
      }
    }
    RADSURF_ASSERT(found);
    const MatchingEdge& e = graph_.edges()[the_edge];
    const std::uint32_t parent = (e.a == v) ? e.b : e.a;
    if (pending[v]) {
      prediction ^= e.observables;
      pending[v] = 0;
      pending[parent] ^= 1;
    }
    edge_alive[the_edge] = 0;
    --degree[v];
    --degree[parent];
    if (degree[parent] == 1 && parent != B) leaves.push(parent);
  }
  // Whatever parity remains must sit on the boundary (absorbed) or be zero.
  for (std::uint32_t v = 0; v < n; ++v) {
    if (pending[v] && v != B)
      throw DecodeError("union-find peeling left an unpaired defect");
  }
  return prediction;
}

}  // namespace radsurf
