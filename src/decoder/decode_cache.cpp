#include "decoder/decode_cache.hpp"

#include <algorithm>

namespace radsurf {

namespace {

// Canonical cache key: sorted defect indices, delta-encoded in place.
void delta_encode_into(const std::uint32_t* sorted, std::size_t size,
                       std::vector<std::uint32_t>& key) {
  key.resize(size);
  std::uint32_t prev = 0;
  for (std::size_t i = 0; i < size; ++i) {
    key[i] = sorted[i] - prev;
    prev = sorted[i];
  }
}

}  // namespace

CachingDecoder::CachingDecoder(Decoder& inner, std::size_t max_entries)
    : inner_(inner),
      clusterable_(dynamic_cast<MwpmDecoder*>(&inner)),
      max_entries_per_shard_(max_entries / kNumShards + 1) {}

std::string CachingDecoder::name() const {
  return inner_.name() + "+cache";
}

template <typename ComputeFn>
std::uint64_t CachingDecoder::lookup(const std::vector<std::uint32_t>& key,
                                     const ComputeFn& miss) {
  const std::size_t h = VecHash{}(key);
  // unordered_map consumes the low bits; shard on the high ones.
  Shard& shard = shards_[(h >> 58) % kNumShards];
  lookups_.fetch_add(1, std::memory_order_relaxed);
  {
    const std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  const std::uint64_t prediction = miss();
  {
    const std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.map.size() < max_entries_per_shard_)
      shard.map.emplace(key, prediction);
  }
  return prediction;
}

std::uint64_t CachingDecoder::decode(
    const std::vector<std::uint32_t>& defects) {
  if (defects.empty()) return inner_.decode(defects);

  // Canonicalize once per shot; scratch buffers are thread-local so the
  // shared engine cache stays allocation-free on the campaign hot path.
  // Campaign defect lists arrive sorted (detector-index order), so the
  // copy+sort is reserved for out-of-order callers.
  thread_local std::vector<std::uint32_t> scratch;
  thread_local std::vector<std::uint32_t> key;
  const std::vector<std::uint32_t>* sorted_ptr = &defects;
  if (!std::is_sorted(defects.begin(), defects.end())) {
    scratch.assign(defects.begin(), defects.end());
    std::sort(scratch.begin(), scratch.end());
    sorted_ptr = &scratch;
  }
  const std::vector<std::uint32_t>& sorted = *sorted_ptr;

  delta_encode_into(sorted.data(), sorted.size(), key);
  if (!clusterable_)
    return lookup(key, [&] { return inner_.decode(sorted); });

  // Cluster mode: the whole syndrome is looked up first (repeat decodes
  // stay a single hash probe), and a miss decomposes into locality
  // clusters, each memoized independently and XORed.  Keys are collision-
  // safe across levels: a delta-encoded key identifies an absolute defect
  // list, and a list decodes to the same prediction whether it arrived as
  // a whole syndrome or as a cluster of a larger one (clusters stay whole
  // under re-clustering).  Singleton clusters bypass the cache (and its
  // counters) outright: their prediction is a forced boundary match the
  // decoder reads off in O(1), cheaper than hashing — the same philosophy
  // as the empty-syndrome bypass.
  return lookup(key, [&] {
    thread_local std::vector<std::uint32_t> flat;
    thread_local std::vector<std::uint32_t> begins;
    thread_local std::vector<std::uint32_t> cluster_key;
    clusterable_->defect_clusters_into(sorted, flat, begins);
    if (begins.size() == 2)  // one cluster == the whole syndrome
      return clusterable_->decode_cluster(flat.data(), flat.size());
    std::uint64_t prediction = 0;
    for (std::size_t c = 0; c + 1 < begins.size(); ++c) {
      const std::uint32_t* cluster = flat.data() + begins[c];
      const std::size_t size = begins[c + 1] - begins[c];
      if (size == 1) {
        prediction ^= clusterable_->decode_cluster(cluster, 1);
        continue;
      }
      delta_encode_into(cluster, size, cluster_key);
      prediction ^= lookup(cluster_key, [&] {
        return clusterable_->decode_cluster(cluster, size);
      });
    }
    return prediction;
  });
}

std::size_t CachingDecoder::size() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(
        const_cast<std::mutex&>(shard.mu));
    total += shard.map.size();
  }
  return total;
}

}  // namespace radsurf
