#include "decoder/decode_cache.hpp"

#include <algorithm>
#include <bit>

namespace radsurf {

namespace {

// Canonical cache key: sorted defect indices, delta-encoded in place.
void delta_encode_into(const std::uint32_t* sorted, std::size_t size,
                       std::vector<std::uint32_t>& key) {
  key.resize(size);
  std::uint32_t prev = 0;
  for (std::size_t i = 0; i < size; ++i) {
    key[i] = sorted[i] - prev;
    prev = sorted[i];
  }
}

// Per-thread direct-mapped L1 over the word-keyed front table: lock-free
// repeat probes for syndromes of at most kL1MaxWords words.  One table per
// thread, owned by whichever CachingDecoder probed last (identified by
// instance id, never by address — a new decoder allocated where a dead one
// lived must not inherit its entries).
constexpr std::size_t kL1MaxWords = 4;
// Direct-mapped, so sized well above the campaign working sets (~1k
// distinct syndromes for small-distance radiation sweeps) to keep conflict
// misses rare: 4096 slots × 48 B = 192 KiB per thread, L2-resident.
constexpr std::size_t kL1Slots = 4096;  // power of two (indexing mask)

struct L1Slot {
  std::uint64_t key[kL1MaxWords];
  std::uint64_t prediction;
  std::uint32_t num_words = 0;  // 0 = empty
};

struct L1Cache {
  std::uint64_t decoder_id = 0;  // 0 = unowned
  std::array<L1Slot, kL1Slots> slots;
};

thread_local L1Cache t_l1;

std::atomic<std::uint64_t> g_next_decoder_id{1};

}  // namespace

CachingDecoder::CachingDecoder(Decoder& inner, std::size_t max_entries)
    : inner_(inner),
      clusterable_(dynamic_cast<MwpmDecoder*>(&inner)),
      instance_id_(g_next_decoder_id.fetch_add(1, std::memory_order_relaxed)),
      max_entries_per_shard_(max_entries / kNumShards + 1) {}

std::string CachingDecoder::name() const {
  return inner_.name() + "+cache";
}

template <typename ComputeFn>
std::uint64_t CachingDecoder::lookup(const std::vector<std::uint32_t>& key,
                                     const ComputeFn& miss) {
  const std::size_t h = VecHash{}(key);
  // unordered_map consumes the low bits; shard on the high ones.
  Shard& shard = shards_[(h >> 58) % kNumShards];
  lookups_.fetch_add(1, std::memory_order_relaxed);
  {
    const std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.map.find(key);
    if (it != shard.map.end()) return it->second;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t prediction = miss();
  {
    const std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.map.size() < max_entries_per_shard_)
      shard.map.emplace(key, prediction);
  }
  return prediction;
}

bool CachingDecoder::check_bypass() {
  if (!auto_bypass_) return false;
  if (bypassed_.load(std::memory_order_relaxed)) return true;
  const std::uint64_t lookups = lookups_.load(std::memory_order_relaxed);
  if (lookups < kBypassProbeWindow) return false;
  const std::uint64_t misses = misses_.load(std::memory_order_relaxed);
  if (static_cast<double>(lookups - misses) >=
      kBypassFloor * static_cast<double>(lookups))
    return false;
  bypassed_.store(true, std::memory_order_relaxed);
  return true;
}

std::uint64_t CachingDecoder::decode(
    const std::vector<std::uint32_t>& defects) {
  if (defects.empty()) return inner_.decode(defects);
  if (check_bypass()) return inner_.decode(defects);

  // Canonicalize once per shot; scratch buffers are thread-local so the
  // shared engine cache stays allocation-free on the campaign hot path.
  // Campaign defect lists arrive sorted (detector-index order), so the
  // copy+sort is reserved for out-of-order callers.
  thread_local std::vector<std::uint32_t> scratch;
  thread_local std::vector<std::uint32_t> key;
  const std::vector<std::uint32_t>* sorted_ptr = &defects;
  if (!std::is_sorted(defects.begin(), defects.end())) {
    scratch.assign(defects.begin(), defects.end());
    std::sort(scratch.begin(), scratch.end());
    sorted_ptr = &scratch;
  }
  const std::vector<std::uint32_t>& sorted = *sorted_ptr;

  delta_encode_into(sorted.data(), sorted.size(), key);
  if (!clusterable_)
    return lookup(key, [&] { return inner_.decode(sorted); });

  // Cluster mode: the whole syndrome is looked up first (repeat decodes
  // stay a single hash probe), and a miss decomposes into locality
  // clusters, each memoized independently and XORed.  Keys are collision-
  // safe across levels: a delta-encoded key identifies an absolute defect
  // list, and a list decodes to the same prediction whether it arrived as
  // a whole syndrome or as a cluster of a larger one (clusters stay whole
  // under re-clustering).  Singleton clusters bypass the cache (and its
  // counters) outright: their prediction is a forced boundary match the
  // decoder reads off in O(1), cheaper than hashing — the same philosophy
  // as the empty-syndrome bypass.
  return lookup(key, [&] {
    thread_local std::vector<std::uint32_t> flat;
    thread_local std::vector<std::uint32_t> begins;
    thread_local std::vector<std::uint32_t> cluster_key;
    clusterable_->defect_clusters_into(sorted, flat, begins);
    if (begins.size() == 2)  // one cluster == the whole syndrome
      return clusterable_->decode_cluster(flat.data(), flat.size());
    std::uint64_t prediction = 0;
    for (std::size_t c = 0; c + 1 < begins.size(); ++c) {
      const std::uint32_t* cluster = flat.data() + begins[c];
      const std::size_t size = begins[c + 1] - begins[c];
      if (size == 1) {
        prediction ^= clusterable_->decode_cluster(cluster, 1);
        continue;
      }
      delta_encode_into(cluster, size, cluster_key);
      prediction ^= lookup(cluster_key, [&] {
        return clusterable_->decode_cluster(cluster, size);
      });
    }
    return prediction;
  });
}

std::uint64_t CachingDecoder::decode_syndrome(const std::uint64_t* words,
                                              std::size_t num_words) {
  // Zero syndrome: same uncounted bypass as decode({}) — trivially 0 on
  // every backend.
  std::uint64_t any = 0;
  for (std::size_t w = 0; w < num_words; ++w) any |= words[w];
  if (!any) {
    static const std::vector<std::uint32_t> kEmpty;
    return inner_.decode(kEmpty);
  }
  if (check_bypass()) {
    // Forward without hashing: materialize the defect list (the cost the
    // inner decoder needs anyway) and skip every cache layer.
    thread_local std::vector<std::uint32_t> bypass_defects;
    bypass_defects.clear();
    append_syndrome_defects(words, num_words, bypass_defects);
    return inner_.decode(bypass_defects);
  }

  const auto h = static_cast<std::size_t>(fnv1a64_mixed(words, num_words));

  // L1: one array index, no lock.  A hit is a copy of a published word-map
  // entry, so it books the same lookup+hit a word-map hit would.
  L1Slot* slot = nullptr;
  if (num_words <= kL1MaxWords) {
    L1Cache& l1 = t_l1;
    if (l1.decoder_id != instance_id_) {
      for (L1Slot& s : l1.slots) s.num_words = 0;
      l1.decoder_id = instance_id_;
    }
    // The shard selector consumes the top 6 bits and unordered_map the low
    // ones; index the L1 with a middle run.
    slot = &l1.slots[(h >> 32) & (kL1Slots - 1)];
    if (slot->num_words == num_words &&
        std::equal(words, words + num_words, slot->key)) {
      lookups_.fetch_add(1, std::memory_order_relaxed);
      return slot->prediction;
    }
  }
  const auto publish_l1 = [&](std::uint64_t prediction) {
    if (slot == nullptr) return;
    for (std::size_t w = 0; w < num_words; ++w) slot->key[w] = words[w];
    slot->num_words = static_cast<std::uint32_t>(num_words);
    slot->prediction = prediction;
  };

  thread_local std::vector<std::uint64_t> word_key;
  word_key.assign(words, words + num_words);
  WordShard& shard = word_shards_[(h >> 58) % kNumShards];
  {
    const std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.map.find(word_key);
    if (it != shard.map.end()) {
      // A front hit implies the canonical whole-syndrome key is cached
      // (it was populated on this key's front miss), so book the one
      // lookup+hit the per-bit path would have booked.
      lookups_.fetch_add(1, std::memory_order_relaxed);
      const std::uint64_t prediction = it->second;
      publish_l1(prediction);
      return prediction;
    }
  }

  // Front miss: materialize the (sorted) defect list and run the
  // canonical keyed path — decode() counts and populates exactly as the
  // per-bit path does for a first occurrence — then publish the word key.
  thread_local std::vector<std::uint32_t> defects;
  defects.clear();
  append_syndrome_defects(words, num_words, defects);
  const std::uint64_t prediction = decode(defects);
  {
    const std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.map.size() < max_entries_per_shard_)
      shard.map.emplace(word_key, prediction);
  }
  publish_l1(prediction);
  return prediction;
}

std::size_t CachingDecoder::size() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(
        const_cast<std::mutex&>(shard.mu));
    total += shard.map.size();
  }
  return total;
}

}  // namespace radsurf
