#include "decoder/decode_cache.hpp"

namespace radsurf {

CachingDecoder::CachingDecoder(Decoder& inner, std::size_t max_entries)
    : inner_(inner),
      max_entries_per_shard_(max_entries / kNumShards + 1) {}

std::string CachingDecoder::name() const {
  return inner_.name() + "+cache";
}

std::uint64_t CachingDecoder::decode(
    const std::vector<std::uint32_t>& defects) {
  if (defects.empty()) return inner_.decode(defects);

  const std::size_t h = VecHash{}(defects);
  // unordered_map consumes the low bits; shard on the high ones.
  Shard& shard = shards_[(h >> 58) % kNumShards];
  lookups_.fetch_add(1, std::memory_order_relaxed);
  {
    const std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.map.find(defects);
    if (it != shard.map.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  const std::uint64_t prediction = inner_.decode(defects);
  {
    const std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.map.size() < max_entries_per_shard_)
      shard.map.emplace(defects, prediction);
  }
  return prediction;
}

std::size_t CachingDecoder::size() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(
        const_cast<std::mutex&>(shard.mu));
    total += shard.map.size();
  }
  return total;
}

}  // namespace radsurf
