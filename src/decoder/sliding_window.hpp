// Sliding-window MWPM decoding for long syndrome-measurement histories.
//
// A whole-history MWPM decoder precomputes an all-pairs distance table over
// every detector of the experiment — O((rounds * ns)^2) memory — which is
// untenable for the N-round timelines the radiation workload needs.  The
// sliding-window decoder instead walks the history in overlapping W-round
// windows that advance by C < W committed rounds:
//
//   1. decode the matching subgraph induced on the window's detectors
//      (temporal cuts are *closed*: cut-crossing edges are dropped, so a
//      defect whose partner lies beyond the cut defers instead of faking a
//      cheap boundary exit — see time_window in detector/matching_graph.hpp);
//   2. commit the matches of the first C rounds: a pair wholly inside the
//      committed region XORs its path observables into the prediction; a
//      pair crossing the commit cut is committed only up to the first path
//      node beyond the cut, which becomes an *artificial defect* carried
//      into the next window (the committed partial correction flipped it);
//   3. defer everything else: uncommitted defects — real or artificial —
//      re-enter the next window's defect set (toggling, so a defect flipped
//      twice cancels).
//
// The final window commits everything.  With window >= total rounds there
// is a single window whose subgraph IS the full matching graph, so the
// decoder reproduces whole-history MWPM bit-for-bit — the property the
// cross-validation suite pins down.  Windows with identical local subgraph
// structure (every interior window of a periodic memory experiment) share
// one per-shape MwpmDecoder, so decoder memory is O(window^2) independent
// of the number of rounds.
//
// Decoding is memoized *per window*: a window's (active defects) →
// (prediction, carried defects) map is a pure function of its subgraph,
// and although whole-history syndromes of a long timeline are almost
// always distinct (whole-syndrome caching never hits at 200 rounds), the
// small window-local defect sets repeat heavily across shots — the same
// locality observation behind CachingDecoder's cluster keys, one level
// up.  Memo hits skip matching and path reconstruction entirely.  The
// memo is sharded by key hash so concurrent decoders of a decode service
// (many streams sharing ONE SlidingWindowDecoder, see src/serve/) probe
// it without serialising on a single mutex.
//
// Streaming: decode() needs the whole history up front; a decode *service*
// sees rounds arrive one at a time and must commit windows under a latency
// bound.  ingest() is the incremental entry point: a StreamCursor holds
// the per-shot state (prediction accumulator, carried artificial defects,
// defects of rounds no window has consumed yet), and each ingest() call
// decodes every window whose rounds are now complete — committed windows
// are never revisited, so the server buffers O(window) rounds per shot,
// not whole histories.  Feeding the same defects round-by-round yields
// bit-for-bit the decode() result (same window walk, same shared memos).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "decoder/decoder.hpp"
#include "decoder/mwpm.hpp"

namespace radsurf {

struct SlidingWindowOptions {
  /// Rounds per decoding window (W).  Values >= the experiment's round
  /// count collapse to whole-history decoding.
  std::size_t window = 8;
  /// Rounds committed per step (C); 0 means ceil(window / 2).  Must be
  /// < window unless the window already covers the whole history.
  std::size_t commit = 0;
  /// Matcher configuration for the per-shape window decoders.  track_paths
  /// is forced on regardless (partial commits reconstruct paths); the
  /// cluster threshold and backend knobs pass through, so timeline
  /// campaigns exercise the same DP -> sparse -> dense escalation as
  /// whole-history decoding.
  MwpmOptions matcher{};

  std::size_t resolved_commit() const {
    return commit == 0 ? (window + 1) / 2 : commit;
  }
};

class SlidingWindowDecoder final : public Decoder {
 public:
  /// `detector_rounds[d]` is the stabilisation-round index of detector d of
  /// `full` (see DetectorSet::detector_rounds; callers clamp final-readout
  /// detectors into the last round).  `num_rounds` is the total number of
  /// round indices.  The constructor materialises the window layout and one
  /// MwpmDecoder per *distinct* window subgraph shape.
  SlidingWindowDecoder(const MatchingGraph& full,
                       std::vector<std::uint32_t> detector_rounds,
                       std::size_t num_rounds, SlidingWindowOptions options);

  std::string name() const override;
  /// Thread-safe: per-call state is local, shared tables are immutable.
  std::uint64_t decode(const std::vector<std::uint32_t>& defects) override;

  /// Incremental decode state of one streamed shot.  Value-semantic and
  /// cheap while idle: a server keeps one per in-flight shot.  All fields
  /// are owned by the cursor; the decoder itself stays stateless per shot,
  /// so any number of cursors may ingest concurrently against one shared
  /// decoder (the memos are sharded and locked internally).
  struct StreamCursor {
    std::uint64_t prediction = 0;       // XOR of committed corrections
    std::size_t next_window = 0;        // first window not yet decoded
    std::size_t rounds_complete = 0;    // rounds fully delivered so far
    bool finished = false;
    std::vector<std::uint32_t> carried;  // artificial defects (global ids)
    std::vector<std::uint32_t> pending;  // delivered, not yet windowed
  };

  /// Feed newly observed defects (global detector ids, any order) and
  /// declare that all rounds < `rounds_complete` have now been fully
  /// delivered; decodes every window whose rounds are complete and
  /// returns how many windows this call committed.  Bit-for-bit contract:
  /// once the stream completes, finish() equals decode() of the union of
  /// all fed defects.  Preconditions (InvalidArgument): rounds_complete
  /// is monotone and <= num_rounds(); every defect's round is already
  /// complete but not older than the last committed window (late defects
  /// for committed history are a protocol error, not a decode).
  /// Thread-safe across cursors; a single cursor is not concurrent.
  std::size_t ingest(StreamCursor& cursor, const std::uint32_t* defects,
                     std::size_t count, std::size_t rounds_complete) const;

  /// Final prediction of a completed stream (every window committed, i.e.
  /// after ingest(..., num_rounds())).  Marks the cursor finished.
  std::uint64_t finish(StreamCursor& cursor) const;

  /// Total rounds the window layout covers (the constructor's num_rounds).
  std::size_t num_rounds() const { return windows_.back().end_round; }
  /// Exclusive end round of window `w` — the round count after which that
  /// window commits.  Streaming clients use this to predict commit points.
  std::size_t window_end_round(std::size_t w) const {
    return windows_[w].end_round;
  }

  /// Shared window-memo (syndrome cache) counters, cumulative across every
  /// decode()/ingest() on this decoder — all streams sharing the decoder
  /// share the cache, so a hot defect pattern on one stream accelerates
  /// every other.
  std::uint64_t memo_lookups() const {
    return memo_lookups_.load(std::memory_order_relaxed);
  }
  std::uint64_t memo_hits() const {
    return memo_hits_.load(std::memory_order_relaxed);
  }

  std::size_t num_windows() const { return windows_.size(); }
  /// Decoders actually built (distinct window shapes) — O(1) for periodic
  /// memory circuits regardless of rounds.
  std::size_t num_decoders() const { return decoders_.size(); }
  /// Largest per-window detector count: the decoder's memory scale.
  std::size_t max_window_detectors() const { return max_window_detectors_; }
  const SlidingWindowOptions& options() const { return options_; }

  /// Matcher backend the window decoders escalate to past the subset DP.
  std::string matcher_backend() const {
    return decoders_.empty() ? "none" : decoders_.front()->matcher_backend();
  }
  /// Matcher work counters aggregated over every window-shape decoder.
  MwpmMatcherStats matcher_stats() const {
    MwpmMatcherStats s;
    for (const auto& d : decoders_) s += d->matcher_stats();
    return s;
  }

 private:
  struct Window {
    std::size_t begin_round = 0;
    std::size_t end_round = 0;     // exclusive
    std::size_t commit_round = 0;  // rounds < commit_round are committed
    MatchingGraphView view;
    std::size_t decoder_index = 0;  // into decoders_ (shapes deduplicated)
  };

  // Concurrent memo of one window's decode results (decode() is called
  // from many campaign chunks at once, ingest() from many server streams).
  // Sharded by key hash so concurrent probes mostly hit distinct locks;
  // values are immutable once inserted and racing duplicate computes are
  // harmless (decode_window is deterministic).
  struct WindowMemo {
    struct KeyHash {
      std::size_t operator()(const std::vector<std::uint32_t>& v) const;
    };
    static constexpr std::size_t kShards = 16;
    // Total capacity matches the pre-sharding 1<<16 cap.
    static constexpr std::size_t kShardCap = (std::size_t{1} << 16) / kShards;
    struct Shard {
      std::mutex mu;
      std::unordered_map<
          std::vector<std::uint32_t>,
          std::pair<std::uint64_t, std::vector<std::uint32_t>>, KeyHash>
          map;
    };
    std::array<Shard, kShards> shards;
  };

  std::uint64_t decode_window(const Window& w,
                              const std::vector<std::uint32_t>& defects,
                              std::vector<std::uint32_t>& carried) const;

  // Decode one window given its gathered global-id defect set (`active`,
  // unsorted: prior carried + newly consumed), through the shared memo;
  // XORs the window's contribution into `prediction` and rewrites
  // `carried` with the global ids deferred into the next window.  The
  // local_* vectors are caller-owned scratch.
  void step_window(const Window& w, std::vector<std::uint32_t>& active,
                   std::vector<std::uint32_t>& carried,
                   std::uint64_t& prediction,
                   std::vector<std::uint32_t>& local_active,
                   std::vector<std::uint32_t>& local_carried) const;

  SlidingWindowOptions options_;
  std::vector<std::uint32_t> detector_rounds_;
  std::vector<Window> windows_;
  // One memo per distinct window shape (parallel to decoders_, indexed by
  // Window::decoder_index) — same-shape windows share entries.
  std::vector<std::unique_ptr<WindowMemo>> memos_;
  std::vector<std::unique_ptr<MwpmDecoder>> decoders_;
  std::size_t max_window_detectors_ = 0;
  mutable std::atomic<std::uint64_t> memo_lookups_{0};
  mutable std::atomic<std::uint64_t> memo_hits_{0};
};

}  // namespace radsurf
