// Sliding-window MWPM decoding for long syndrome-measurement histories.
//
// A whole-history MWPM decoder precomputes an all-pairs distance table over
// every detector of the experiment — O((rounds * ns)^2) memory — which is
// untenable for the N-round timelines the radiation workload needs.  The
// sliding-window decoder instead walks the history in overlapping W-round
// windows that advance by C < W committed rounds:
//
//   1. decode the matching subgraph induced on the window's detectors
//      (temporal cuts are *closed*: cut-crossing edges are dropped, so a
//      defect whose partner lies beyond the cut defers instead of faking a
//      cheap boundary exit — see time_window in detector/matching_graph.hpp);
//   2. commit the matches of the first C rounds: a pair wholly inside the
//      committed region XORs its path observables into the prediction; a
//      pair crossing the commit cut is committed only up to the first path
//      node beyond the cut, which becomes an *artificial defect* carried
//      into the next window (the committed partial correction flipped it);
//   3. defer everything else: uncommitted defects — real or artificial —
//      re-enter the next window's defect set (toggling, so a defect flipped
//      twice cancels).
//
// The final window commits everything.  With window >= total rounds there
// is a single window whose subgraph IS the full matching graph, so the
// decoder reproduces whole-history MWPM bit-for-bit — the property the
// cross-validation suite pins down.  Windows with identical local subgraph
// structure (every interior window of a periodic memory experiment) share
// one per-shape MwpmDecoder, so decoder memory is O(window^2) independent
// of the number of rounds.
//
// Decoding is memoized *per window*: a window's (active defects) →
// (prediction, carried defects) map is a pure function of its subgraph,
// and although whole-history syndromes of a long timeline are almost
// always distinct (whole-syndrome caching never hits at 200 rounds), the
// small window-local defect sets repeat heavily across shots — the same
// locality observation behind CachingDecoder's cluster keys, one level
// up.  Memo hits skip matching and path reconstruction entirely.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "decoder/decoder.hpp"
#include "decoder/mwpm.hpp"

namespace radsurf {

struct SlidingWindowOptions {
  /// Rounds per decoding window (W).  Values >= the experiment's round
  /// count collapse to whole-history decoding.
  std::size_t window = 8;
  /// Rounds committed per step (C); 0 means ceil(window / 2).  Must be
  /// < window unless the window already covers the whole history.
  std::size_t commit = 0;
  /// Matcher configuration for the per-shape window decoders.  track_paths
  /// is forced on regardless (partial commits reconstruct paths); the
  /// cluster threshold and backend knobs pass through, so timeline
  /// campaigns exercise the same DP -> sparse -> dense escalation as
  /// whole-history decoding.
  MwpmOptions matcher{};

  std::size_t resolved_commit() const {
    return commit == 0 ? (window + 1) / 2 : commit;
  }
};

class SlidingWindowDecoder final : public Decoder {
 public:
  /// `detector_rounds[d]` is the stabilisation-round index of detector d of
  /// `full` (see DetectorSet::detector_rounds; callers clamp final-readout
  /// detectors into the last round).  `num_rounds` is the total number of
  /// round indices.  The constructor materialises the window layout and one
  /// MwpmDecoder per *distinct* window subgraph shape.
  SlidingWindowDecoder(const MatchingGraph& full,
                       std::vector<std::uint32_t> detector_rounds,
                       std::size_t num_rounds, SlidingWindowOptions options);

  std::string name() const override;
  /// Thread-safe: per-call state is local, shared tables are immutable.
  std::uint64_t decode(const std::vector<std::uint32_t>& defects) override;

  std::size_t num_windows() const { return windows_.size(); }
  /// Decoders actually built (distinct window shapes) — O(1) for periodic
  /// memory circuits regardless of rounds.
  std::size_t num_decoders() const { return decoders_.size(); }
  /// Largest per-window detector count: the decoder's memory scale.
  std::size_t max_window_detectors() const { return max_window_detectors_; }
  const SlidingWindowOptions& options() const { return options_; }

  /// Matcher backend the window decoders escalate to past the subset DP.
  std::string matcher_backend() const {
    return decoders_.empty() ? "none" : decoders_.front()->matcher_backend();
  }
  /// Matcher work counters aggregated over every window-shape decoder.
  MwpmMatcherStats matcher_stats() const {
    MwpmMatcherStats s;
    for (const auto& d : decoders_) s += d->matcher_stats();
    return s;
  }

 private:
  struct Window {
    std::size_t begin_round = 0;
    std::size_t end_round = 0;     // exclusive
    std::size_t commit_round = 0;  // rounds < commit_round are committed
    MatchingGraphView view;
    std::size_t decoder_index = 0;  // into decoders_ (shapes deduplicated)
  };

  // Concurrent memo of one window's decode results (decode() is called
  // from many campaign chunks at once).  Values are immutable once
  // inserted; racing duplicate computes are harmless (decode_window is
  // deterministic).
  struct WindowMemo {
    struct KeyHash {
      std::size_t operator()(const std::vector<std::uint32_t>& v) const;
    };
    std::mutex mu;
    std::unordered_map<std::vector<std::uint32_t>,
                       std::pair<std::uint64_t, std::vector<std::uint32_t>>,
                       KeyHash>
        map;
  };

  std::uint64_t decode_window(const Window& w,
                              const std::vector<std::uint32_t>& defects,
                              std::vector<std::uint32_t>& carried) const;

  SlidingWindowOptions options_;
  std::vector<std::uint32_t> detector_rounds_;
  std::vector<Window> windows_;
  // One memo per distinct window shape (parallel to decoders_, indexed by
  // Window::decoder_index) — same-shape windows share entries.
  std::vector<std::unique_ptr<WindowMemo>> memos_;
  std::vector<std::unique_ptr<MwpmDecoder>> decoders_;
  std::size_t max_window_detectors_ = 0;
};

}  // namespace radsurf
