// Minimum-weight perfect-matching decoder (paper Sec. II-D).
//
// Two distance backends share one matching pipeline:
//
//  * SPARSE (default): construction stores only the adjacency-list graph;
//    per-node Dijkstra rows (distance, observable parity, predecessor) are
//    grown on demand the first time a node appears as a defect and then
//    memoized for every later shot.  Construction is O(E) instead of the
//    dense all-pairs O(V * E log V), and memory is O(touched_nodes * V)
//    instead of O(V^2) — radiation campaigns touch a small, hot subset of
//    detectors, so most rows are never built.
//  * DENSE: the original eager all-pairs precompute, kept as the
//    bit-for-bit validation oracle for the sparse backend.
//
// Per shot, defects are first split into locality clusters by a union-find
// prefilter: defects i, j join one cluster only when d(i, j) can beat
// matching both to the boundary (strictly, in the matcher's fixed-point
// weights), so no minimum-weight matching pairs defects across clusters.
// Exact blossom then runs independently per cluster — small subproblems
// instead of one k-complete graph, which removes the k^2..k^3 cliff on
// high-defect-count radiation shots and gives the syndrome cache a
// composable per-cluster key (see decode_cache.hpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "decoder/decoder.hpp"

namespace radsurf {

/// One matched defect pair; `b == graph.boundary_node()` for a boundary
/// match.  `a` is always a real defect.
struct MwpmMatch {
  std::uint32_t a = 0;
  std::uint32_t b = 0;
};

struct MwpmOptions {
  /// Additionally record shortest-path predecessors so path_nodes() can
  /// reconstruct correction paths — needed only by the sliding-window
  /// decoder's partial commits.
  bool track_paths = false;
  /// Grow and memoize Dijkstra rows on demand (default) instead of the
  /// dense eager all-pairs precompute.
  bool lazy = true;
  /// Split defects into locality clusters before blossom.  Off reproduces
  /// the single whole-defect-set matching problem (validation oracle).
  bool cluster = true;
  /// Largest cluster the exact subset-DP matcher handles; larger clusters
  /// escalate to the sparse region-growing blossom matcher.  0 sends every
  /// multi-defect cluster straight to blossom.  Capped at
  /// DecoderOptions::kDpClusterCap (the DP tables are 2^k entries).
  std::size_t dp_max_cluster = 10;
  /// Route post-DP clusters to the dense all-pairs blossom oracle
  /// (blossom.hpp) instead of the sparse matcher — the bit-for-bit
  /// validation backend, and the before/after side of the perf cliff.
  bool dense_matcher = false;
};

/// Cumulative matcher work counters (snapshot of thread-safe counters; see
/// MwpmDecoder::matcher_stats).  Cluster counts say which backend resolved
/// each multi-defect cluster; the region/blossom counts aggregate the
/// sparse matcher's primal-dual work and land in the perf JSON records.
struct MwpmMatcherStats {
  std::uint64_t clusters_dp = 0;
  std::uint64_t clusters_sparse = 0;
  std::uint64_t clusters_dense = 0;
  std::uint64_t regions_grown = 0;
  std::uint64_t blossoms_formed = 0;
  std::uint64_t blossoms_expanded = 0;
  // Sparse-matcher solves answered by warm-start reuse (the presented
  // cluster instance was already resident and solved in the arena).
  std::uint64_t warm_reuses = 0;

  MwpmMatcherStats& operator+=(const MwpmMatcherStats& o) {
    clusters_dp += o.clusters_dp;
    clusters_sparse += o.clusters_sparse;
    clusters_dense += o.clusters_dense;
    regions_grown += o.regions_grown;
    blossoms_formed += o.blossoms_formed;
    blossoms_expanded += o.blossoms_expanded;
    warm_reuses += o.warm_reuses;
    return *this;
  }
  /// Delta between two snapshots — attributes counter growth to one phase
  /// of a run (counters are cumulative and only ever grow).
  MwpmMatcherStats& operator-=(const MwpmMatcherStats& o) {
    clusters_dp -= o.clusters_dp;
    clusters_sparse -= o.clusters_sparse;
    clusters_dense -= o.clusters_dense;
    regions_grown -= o.regions_grown;
    blossoms_formed -= o.blossoms_formed;
    blossoms_expanded -= o.blossoms_expanded;
    warm_reuses -= o.warm_reuses;
    return *this;
  }
};

class MwpmDecoder final : public Decoder {
 public:
  explicit MwpmDecoder(const MatchingGraph& graph, MwpmOptions options);
  /// Compatibility constructor: sparse backend, clustering on.
  explicit MwpmDecoder(const MatchingGraph& graph, bool track_paths = false)
      : MwpmDecoder(graph, MwpmOptions{track_paths, true, true}) {}
  ~MwpmDecoder() override;

  std::string name() const override { return "mwpm"; }
  /// Thread-safe (lazy rows publish atomically; a racing duplicate compute
  /// is discarded), as required by the campaign engine's parallel chunks.
  std::uint64_t decode(const std::vector<std::uint32_t>& defects) override;

  /// The minimum-weight matching itself (each defect appears in exactly one
  /// pair).  decode() is the observable XOR over these pairs; the sliding-
  /// window decoder consumes the pairs to commit or defer them per window.
  std::vector<MwpmMatch> match_defects(
      const std::vector<std::uint32_t>& defects) const;

  /// Locality clusters of a defect set: within each cluster, defect order
  /// follows the input; no minimum-weight matching pairs defects from
  /// different clusters.  With clustering disabled, one cluster holds all
  /// defects.  Exposed for per-cluster syndrome caching.
  std::vector<std::vector<std::uint32_t>> defect_clusters(
      const std::vector<std::uint32_t>& defects) const;

  /// Allocation-free variant: cluster c spans
  /// flat[begins[c] .. begins[c + 1]); begins.size() == #clusters + 1.
  void defect_clusters_into(const std::vector<std::uint32_t>& defects,
                            std::vector<std::uint32_t>& flat,
                            std::vector<std::uint32_t>& begins) const;

  /// Observable prediction for one cluster returned by defect_clusters().
  /// decode() == XOR of decode_cluster over the clusters.
  std::uint64_t decode_cluster(
      const std::vector<std::uint32_t>& cluster) const {
    return decode_cluster(cluster.data(), cluster.size());
  }
  std::uint64_t decode_cluster(const std::uint32_t* cluster,
                               std::size_t size) const;

  /// Node sequence of the shortest path decode() charges for (a, b) —
  /// inclusive of both endpoints.  The observable crossed by hop i is
  /// path_observables(a, nodes[i]) ^ path_observables(a, nodes[i + 1]).
  /// Requires construction with track_paths = true.
  std::vector<std::uint32_t> path_nodes(std::uint32_t a,
                                        std::uint32_t b) const;

  /// Node-to-node shortest-path weight (infinity when unreachable).
  /// Lazily materialized under the sparse backend.
  double distance(std::uint32_t a, std::uint32_t b) const {
    return row(a).dist[b];
  }
  std::uint64_t path_observables(std::uint32_t a, std::uint32_t b) const {
    return row(a).obs[b];
  }

  /// Dijkstra rows materialized so far (== num_nodes() for DENSE).
  std::size_t rows_materialized() const {
    return rows_built_.load(std::memory_order_relaxed);
  }

  /// Matcher backend decode() escalates to past the subset DP — what the
  /// perf records report alongside the rates.
  std::string matcher_backend() const {
    return options_.dense_matcher ? "dense-blossom" : "sparse-blossom";
  }
  const MwpmOptions& options() const { return options_; }

  /// Snapshot of the cumulative matcher work counters (thread-safe; the
  /// counters accumulate across every decode on every thread).
  MwpmMatcherStats matcher_stats() const;

 private:
  struct Row {
    std::vector<double> dist;
    // dist in the matcher's fixed-point scale, converted once at Dijkstra
    // time: the cluster prefilter and the savings-edge build read these on
    // every decode, and per-pair llround calls dominated that hot path.
    std::vector<std::int64_t> fx;
    std::vector<std::uint64_t> obs;
    std::vector<std::uint32_t> pred;  // empty unless track_paths
  };

  const Row& row(std::uint32_t src) const;
  void compute_row(std::uint32_t src, Row& out) const;
  void match_defects_into(const std::vector<std::uint32_t>& defects,
                          std::vector<MwpmMatch>& pairs) const;
  void match_cluster(const std::uint32_t* cluster, std::size_t size,
                     std::vector<MwpmMatch>& pairs) const;

  MatchingGraph graph_;  // owned copy: decoders must outlive any temporary
  MwpmOptions options_;
  // rows_[src]: lazily published Dijkstra row (atomic pointer; losers of a
  // racing compute delete their copy).  The vector itself is never resized
  // after construction, so slot addresses stay stable.
  mutable std::vector<std::atomic<Row*>> rows_;
  mutable std::atomic<std::size_t> rows_built_{0};
  // Matcher work counters (relaxed: decode() is called concurrently from
  // campaign chunks; exact interleaving does not matter for telemetry).
  mutable std::atomic<std::uint64_t> stat_clusters_dp_{0};
  mutable std::atomic<std::uint64_t> stat_clusters_sparse_{0};
  mutable std::atomic<std::uint64_t> stat_clusters_dense_{0};
  mutable std::atomic<std::uint64_t> stat_regions_grown_{0};
  mutable std::atomic<std::uint64_t> stat_blossoms_formed_{0};
  mutable std::atomic<std::uint64_t> stat_blossoms_expanded_{0};
  mutable std::atomic<std::uint64_t> stat_warm_reuses_{0};
};

}  // namespace radsurf
