// Minimum-weight perfect-matching decoder (paper Sec. II-D).
//
// Construction precomputes, once per matching graph, Dijkstra shortest
// paths between every pair of nodes (boundary included) together with the
// parity of observable crossings along those paths.  Per shot, only the
// defects are matched: a complete graph over the k defects plus k virtual
// boundary copies (w(d_i, b_i) = dist to boundary, w(b_i, b_j) = 0) is
// handed to the exact blossom matcher, and the predicted observable flip
// is the XOR of path parities over matched pairs.
#pragma once

#include <cstdint>
#include <vector>

#include "decoder/decoder.hpp"

namespace radsurf {

/// One matched defect pair; `b == graph.boundary_node()` for a boundary
/// match.  `a` is always a real defect.
struct MwpmMatch {
  std::uint32_t a = 0;
  std::uint32_t b = 0;
};

class MwpmDecoder final : public Decoder {
 public:
  /// `track_paths` additionally records shortest-path predecessors (an
  /// extra n^2 table) so path_nodes() can reconstruct correction paths —
  /// needed only by the sliding-window decoder's partial commits.
  explicit MwpmDecoder(const MatchingGraph& graph, bool track_paths = false);

  std::string name() const override { return "mwpm"; }
  std::uint64_t decode(const std::vector<std::uint32_t>& defects) override;

  /// The minimum-weight matching itself (each defect appears in exactly one
  /// pair).  decode() is the observable XOR over these pairs; the sliding-
  /// window decoder consumes the pairs to commit or defer them per window.
  std::vector<MwpmMatch> match_defects(
      const std::vector<std::uint32_t>& defects) const;

  /// Node sequence of the shortest path decode() charges for (a, b) —
  /// inclusive of both endpoints.  The observable crossed by hop i is
  /// path_observables(a, nodes[i]) ^ path_observables(a, nodes[i + 1]).
  /// Requires construction with track_paths = true.
  std::vector<std::uint32_t> path_nodes(std::uint32_t a,
                                        std::uint32_t b) const;

  /// Precomputed node-to-node shortest-path weight (infinity when
  /// unreachable).
  double distance(std::uint32_t a, std::uint32_t b) const {
    return dist_[a][b];
  }
  std::uint64_t path_observables(std::uint32_t a, std::uint32_t b) const {
    return obs_[a][b];
  }

 private:
  MatchingGraph graph_;  // owned copy: decoders must outlive any temporary
  std::vector<std::vector<double>> dist_;
  std::vector<std::vector<std::uint64_t>> obs_;
  // pred_[src][v]: node preceding v on the chosen shortest path from src.
  // Empty unless constructed with track_paths.
  std::vector<std::vector<std::uint32_t>> pred_;
};

}  // namespace radsurf
