// Minimum-weight perfect-matching decoder (paper Sec. II-D).
//
// Two distance backends share one matching pipeline:
//
//  * SPARSE (default): construction stores only the adjacency-list graph;
//    per-node Dijkstra rows (distance, observable parity, predecessor) are
//    grown on demand the first time a node appears as a defect and then
//    memoized for every later shot.  Construction is O(E) instead of the
//    dense all-pairs O(V * E log V), and memory is O(touched_nodes * V)
//    instead of O(V^2) — radiation campaigns touch a small, hot subset of
//    detectors, so most rows are never built.
//  * DENSE: the original eager all-pairs precompute, kept as the
//    bit-for-bit validation oracle for the sparse backend.
//
// Per shot, defects are first split into locality clusters by a union-find
// prefilter: defects i, j join one cluster only when d(i, j) can beat
// matching both to the boundary (strictly, in the matcher's fixed-point
// weights), so no minimum-weight matching pairs defects across clusters.
// Exact blossom then runs independently per cluster — small subproblems
// instead of one k-complete graph, which removes the k^2..k^3 cliff on
// high-defect-count radiation shots and gives the syndrome cache a
// composable per-cluster key (see decode_cache.hpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "decoder/decoder.hpp"

namespace radsurf {

/// One matched defect pair; `b == graph.boundary_node()` for a boundary
/// match.  `a` is always a real defect.
struct MwpmMatch {
  std::uint32_t a = 0;
  std::uint32_t b = 0;
};

struct MwpmOptions {
  /// Additionally record shortest-path predecessors so path_nodes() can
  /// reconstruct correction paths — needed only by the sliding-window
  /// decoder's partial commits.
  bool track_paths = false;
  /// Grow and memoize Dijkstra rows on demand (default) instead of the
  /// dense eager all-pairs precompute.
  bool lazy = true;
  /// Split defects into locality clusters before blossom.  Off reproduces
  /// the single whole-defect-set matching problem (validation oracle).
  bool cluster = true;
};

class MwpmDecoder final : public Decoder {
 public:
  explicit MwpmDecoder(const MatchingGraph& graph, MwpmOptions options);
  /// Compatibility constructor: sparse backend, clustering on.
  explicit MwpmDecoder(const MatchingGraph& graph, bool track_paths = false)
      : MwpmDecoder(graph, MwpmOptions{track_paths, true, true}) {}
  ~MwpmDecoder() override;

  std::string name() const override { return "mwpm"; }
  /// Thread-safe (lazy rows publish atomically; a racing duplicate compute
  /// is discarded), as required by the campaign engine's parallel chunks.
  std::uint64_t decode(const std::vector<std::uint32_t>& defects) override;

  /// The minimum-weight matching itself (each defect appears in exactly one
  /// pair).  decode() is the observable XOR over these pairs; the sliding-
  /// window decoder consumes the pairs to commit or defer them per window.
  std::vector<MwpmMatch> match_defects(
      const std::vector<std::uint32_t>& defects) const;

  /// Locality clusters of a defect set: within each cluster, defect order
  /// follows the input; no minimum-weight matching pairs defects from
  /// different clusters.  With clustering disabled, one cluster holds all
  /// defects.  Exposed for per-cluster syndrome caching.
  std::vector<std::vector<std::uint32_t>> defect_clusters(
      const std::vector<std::uint32_t>& defects) const;

  /// Allocation-free variant: cluster c spans
  /// flat[begins[c] .. begins[c + 1]); begins.size() == #clusters + 1.
  void defect_clusters_into(const std::vector<std::uint32_t>& defects,
                            std::vector<std::uint32_t>& flat,
                            std::vector<std::uint32_t>& begins) const;

  /// Observable prediction for one cluster returned by defect_clusters().
  /// decode() == XOR of decode_cluster over the clusters.
  std::uint64_t decode_cluster(
      const std::vector<std::uint32_t>& cluster) const {
    return decode_cluster(cluster.data(), cluster.size());
  }
  std::uint64_t decode_cluster(const std::uint32_t* cluster,
                               std::size_t size) const;

  /// Node sequence of the shortest path decode() charges for (a, b) —
  /// inclusive of both endpoints.  The observable crossed by hop i is
  /// path_observables(a, nodes[i]) ^ path_observables(a, nodes[i + 1]).
  /// Requires construction with track_paths = true.
  std::vector<std::uint32_t> path_nodes(std::uint32_t a,
                                        std::uint32_t b) const;

  /// Node-to-node shortest-path weight (infinity when unreachable).
  /// Lazily materialized under the sparse backend.
  double distance(std::uint32_t a, std::uint32_t b) const {
    return row(a).dist[b];
  }
  std::uint64_t path_observables(std::uint32_t a, std::uint32_t b) const {
    return row(a).obs[b];
  }

  /// Dijkstra rows materialized so far (== num_nodes() for DENSE).
  std::size_t rows_materialized() const {
    return rows_built_.load(std::memory_order_relaxed);
  }

 private:
  struct Row {
    std::vector<double> dist;
    std::vector<std::uint64_t> obs;
    std::vector<std::uint32_t> pred;  // empty unless track_paths
  };

  const Row& row(std::uint32_t src) const;
  void compute_row(std::uint32_t src, Row& out) const;
  void match_cluster(const std::uint32_t* cluster, std::size_t size,
                     std::vector<MwpmMatch>& pairs) const;

  MatchingGraph graph_;  // owned copy: decoders must outlive any temporary
  MwpmOptions options_;
  // rows_[src]: lazily published Dijkstra row (atomic pointer; losers of a
  // racing compute delete their copy).  The vector itself is never resized
  // after construction, so slot addresses stay stable.
  mutable std::vector<std::atomic<Row*>> rows_;
  mutable std::atomic<std::size_t> rows_built_{0};
};

}  // namespace radsurf
