// Minimum-weight perfect-matching decoder (paper Sec. II-D).
//
// Construction precomputes, once per matching graph, Dijkstra shortest
// paths between every pair of nodes (boundary included) together with the
// parity of observable crossings along those paths.  Per shot, only the
// defects are matched: a complete graph over the k defects plus k virtual
// boundary copies (w(d_i, b_i) = dist to boundary, w(b_i, b_j) = 0) is
// handed to the exact blossom matcher, and the predicted observable flip
// is the XOR of path parities over matched pairs.
#pragma once

#include <cstdint>
#include <vector>

#include "decoder/decoder.hpp"

namespace radsurf {

class MwpmDecoder final : public Decoder {
 public:
  explicit MwpmDecoder(const MatchingGraph& graph);

  std::string name() const override { return "mwpm"; }
  std::uint64_t decode(const std::vector<std::uint32_t>& defects) override;

  /// Precomputed node-to-node shortest-path weight (infinity when
  /// unreachable).
  double distance(std::uint32_t a, std::uint32_t b) const {
    return dist_[a][b];
  }
  std::uint64_t path_observables(std::uint32_t a, std::uint32_t b) const {
    return obs_[a][b];
  }

 private:
  MatchingGraph graph_;  // owned copy: decoders must outlive any temporary
  std::vector<std::vector<double>> dist_;
  std::vector<std::vector<std::uint64_t>> obs_;
};

}  // namespace radsurf
