// Decoder interface.
//
// A decoder receives the defect list (indices of fired detectors) of one
// shot and predicts which logical observables the underlying physical
// error flipped.  The campaign engine XORs the prediction with the actual
// observable flip; disagreement on observable 0 is a logical error.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "detector/matching_graph.hpp"

namespace radsurf {

class Decoder {
 public:
  virtual ~Decoder() = default;
  virtual std::string name() const = 0;
  /// Predicted observable-flip mask for the given defects.
  virtual std::uint64_t decode(
      const std::vector<std::uint32_t>& defects) = 0;
};

enum class DecoderKind { MWPM, UNION_FIND, GREEDY };

std::string decoder_kind_name(DecoderKind kind);

std::unique_ptr<Decoder> make_decoder(DecoderKind kind,
                                      const MatchingGraph& graph);

}  // namespace radsurf
