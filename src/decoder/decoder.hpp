// Decoder interface.
//
// A decoder receives the defect list (indices of fired detectors) of one
// shot and predicts which logical observables the underlying physical
// error flipped.  The campaign engine XORs the prediction with the actual
// observable flip; disagreement on observable 0 is a logical error.
//
// Contracts:
//  * Determinism — decode() is a pure function of the defect list and the
//    matching graph: no backend consumes RNG, so campaign results depend
//    only on the sampling seed, never on the decoder.
//  * Thread-safety — decode() is non-const because backends may memoize
//    (the sparse MWPM backend grows Dijkstra rows on demand with atomic
//    publication, which IS safe to call concurrently; union-find and
//    greedy keep per-call scratch and are also safe).  CachingDecoder
//    (decode_cache.hpp) is the concurrent front every campaign actually
//    decodes through.
//  * Backend selection — EngineOptions::decoder picks the kind per
//    engine; MWPM is the paper's choice (Sec. II-D) and the default.
//    make_decoder builds the sparse lazy MWPM backend; the dense eager
//    backend survives only as a test oracle (MwpmOptions::lazy = false).
//    Timeline campaigns ignore this choice: run_timeline always decodes
//    through SlidingWindowDecoder's per-window MWPM (sliding_window.hpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "detector/matching_graph.hpp"
#include "util/bitvec.hpp"

namespace radsurf {

/// Append the defect indices of a zero-padded syndrome word span (bit d =
/// detector d fired) to `out` — the word-scan shared by every consumer of
/// batch-major syndrome rows.
inline void append_syndrome_defects(const std::uint64_t* words,
                                    std::size_t num_words,
                                    std::vector<std::uint32_t>& out) {
  for_each_set_bit(words, num_words, [&out](std::size_t d) {
    out.push_back(static_cast<std::uint32_t>(d));
  });
}

class Decoder {
 public:
  virtual ~Decoder() = default;
  virtual std::string name() const = 0;
  /// Predicted observable-flip mask for the given defects.  An empty
  /// defect list decodes to 0 on every backend (no defects, no
  /// correction) — the batch pipeline's zero-syndrome fast path relies on
  /// it.
  virtual std::uint64_t decode(
      const std::vector<std::uint32_t>& defects) = 0;

  /// Batch-major entry point: the shot's whole syndrome as a contiguous,
  /// zero-padded word span (bit d = detector d fired), i.e. one row of the
  /// shot-major BitTable the 64×64 transpose produces.  The default
  /// implementation word-scans the span into a (sorted) defect list and
  /// forwards to decode(); CachingDecoder overrides it to hash the raw
  /// words first, so repeat syndromes never materialize a defect list.
  virtual std::uint64_t decode_syndrome(const std::uint64_t* words,
                                        std::size_t num_words) {
    thread_local std::vector<std::uint32_t> defects;
    defects.clear();
    append_syndrome_defects(words, num_words, defects);
    return decode(defects);
  }
};

enum class DecoderKind { MWPM, UNION_FIND, GREEDY };

std::string decoder_kind_name(DecoderKind kind);

/// Backend configuration for make_decoder.  Implicitly constructible from
/// a bare DecoderKind so `options.decoder = DecoderKind::MWPM` keeps
/// working everywhere; the extra knobs only affect the MWPM backend.
struct DecoderOptions {
  /// Hard cap on dp_max_cluster: the subset-DP tables are 2^k entries.
  static constexpr std::size_t kDpClusterCap = 16;

  DecoderKind kind = DecoderKind::MWPM;
  /// Largest locality cluster the exact subset-DP matcher handles; larger
  /// clusters escalate to the sparse region-growing blossom matcher.
  /// 0 sends every multi-defect cluster straight to blossom.  Must be
  /// <= kDpClusterCap.
  std::size_t dp_max_cluster = 10;
  /// Route post-DP clusters to the dense all-pairs blossom oracle instead
  /// of the sparse matcher (bit-for-bit validation / A-B benchmarking).
  bool dense_matcher = false;
  /// Timeline campaigns only (run_timeline*): when a realization's strike
  /// herald fires — its sampled event list is non-empty — rebuild the
  /// sliding windows' matching graph from the strike-instrumented circuit
  /// with the reset field folded into the DEM (reweighting the edges of
  /// the affected rounds and graph region), modelling a decoder wired to
  /// an on-chip cosmic-ray detector.  Quiet realizations (and every
  /// non-timeline campaign) decode on the intrinsic-only graph, so with
  /// no strikes this mode is bit-for-bit the unaware decoder.
  bool herald_aware = false;

  DecoderOptions() = default;
  DecoderOptions(DecoderKind k) : kind(k) {}  // NOLINT: implicit by design
};

std::unique_ptr<Decoder> make_decoder(const DecoderOptions& options,
                                      const MatchingGraph& graph);

}  // namespace radsurf
