// Exact minimum-weight perfect matching on general graphs (blossom
// algorithm, O(n^3)).
//
// This is the decoding primitive of the paper's MWPM pipeline.  The
// implementation is the classic primal-dual blossom-shrinking scheme over a
// dense weight matrix; minimisation is reduced to maximum-weight matching
// with an offset large enough to force maximum cardinality.  Exactness is
// pinned in tests against an exhaustive subset-DP matcher.
#pragma once

#include <cstdint>
#include <vector>

namespace radsurf {

class DenseMatcher {
 public:
  /// `num_nodes` must be even for a perfect matching to exist.
  explicit DenseMatcher(std::size_t num_nodes);

  /// Declare an undirected edge with non-negative weight (overwrites any
  /// previous weight for the pair; keeps the smaller weight).
  void add_edge(std::size_t u, std::size_t v, std::int64_t weight);

  /// Minimum-weight perfect matching.  mate[u] = matched partner.
  /// Throws DecodeError when no perfect matching exists.
  std::vector<std::size_t> solve();

  /// Total weight of the last solve().
  std::int64_t matching_weight() const { return last_weight_; }

 private:
  std::size_t n_;
  std::vector<std::vector<std::int64_t>> w_;
  std::vector<std::vector<bool>> has_;
  std::int64_t last_weight_ = 0;
};

}  // namespace radsurf
