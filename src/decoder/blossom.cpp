#include "decoder/blossom.hpp"

#include <algorithm>
#include <deque>
#include <limits>

#include "util/error.hpp"

namespace radsurf {

namespace {

// Maximum-weight matching, primal-dual blossom algorithm, O(n^3).
// 1-indexed internally; index 0 is the null sentinel.  Weights must be
// non-negative; absent edges have weight 0 and are never used.
struct MaxWeightMatching {
  struct E {
    int u = 0, v = 0;
    long long w = 0;
  };

  int n = 0, n_x = 0;
  std::vector<std::vector<E>> g;
  std::vector<long long> lab;
  std::vector<int> match, slack, st, pa, S, vis;
  std::vector<std::vector<int>> flower;
  std::vector<std::vector<int>> flower_from;
  std::deque<int> q;

  explicit MaxWeightMatching(int n_in) : n(n_in) {
    const int N = 2 * n + 1;
    g.assign(N, std::vector<E>(N));
    lab.assign(N, 0);
    match.assign(N, 0);
    slack.assign(N, 0);
    st.assign(N, 0);
    pa.assign(N, 0);
    S.assign(N, -1);
    vis.assign(N, 0);
    flower.assign(N, {});
    flower_from.assign(N, std::vector<int>(n + 1, 0));
    for (int u = 1; u <= n; ++u)
      for (int v = 1; v <= n; ++v) g[u][v] = E{u, v, 0};
  }

  long long e_delta(const E& e) const {
    return lab[e.u] + lab[e.v] - g[e.u][e.v].w * 2;
  }
  void update_slack(int u, int x) {
    if (!slack[x] || e_delta(g[u][x]) < e_delta(g[slack[x]][x])) slack[x] = u;
  }
  void set_slack(int x) {
    slack[x] = 0;
    for (int u = 1; u <= n; ++u)
      if (g[u][x].w > 0 && st[u] != x && S[st[u]] == 0) update_slack(u, x);
  }
  void q_push(int x) {
    if (x <= n) {
      q.push_back(x);
    } else {
      for (int i : flower[x]) q_push(i);
    }
  }
  void set_st(int x, int b) {
    st[x] = b;
    if (x > n)
      for (int i : flower[x]) set_st(i, b);
  }
  int get_pr(int b, int xr) {
    const int pr = static_cast<int>(
        std::find(flower[b].begin(), flower[b].end(), xr) -
        flower[b].begin());
    if (pr % 2 == 1) {
      std::reverse(flower[b].begin() + 1, flower[b].end());
      return static_cast<int>(flower[b].size()) - pr;
    }
    return pr;
  }
  void set_match(int u, int v) {
    match[u] = g[u][v].v;
    if (u > n) {
      const E e = g[u][v];
      const int xr = flower_from[u][e.u];
      const int pr = get_pr(u, xr);
      for (int i = 0; i < pr; ++i) set_match(flower[u][i], flower[u][i ^ 1]);
      set_match(xr, v);
      std::rotate(flower[u].begin(), flower[u].begin() + pr, flower[u].end());
    }
  }
  void augment(int u, int v) {
    for (;;) {
      const int xnv = st[match[u]];
      set_match(u, v);
      if (!xnv) return;
      set_match(xnv, st[pa[xnv]]);
      u = st[pa[xnv]];
      v = xnv;
    }
  }
  int get_lca(int u, int v) {
    static thread_local int t = 0;
    for (++t; u || v; std::swap(u, v)) {
      if (u == 0) continue;
      if (vis[u] == t) return u;
      vis[u] = t;
      u = st[match[u]];
      if (u) u = st[pa[u]];
    }
    return 0;
  }
  void add_blossom(int u, int lca, int v) {
    int b = n + 1;
    while (b <= n_x && st[b]) ++b;
    if (b > n_x) ++n_x;
    lab[b] = 0;
    S[b] = 0;
    match[b] = match[lca];
    flower[b].clear();
    flower[b].push_back(lca);
    for (int x = u, y; x != lca; x = st[pa[y]]) {
      flower[b].push_back(x);
      flower[b].push_back(y = st[match[x]]);
      q_push(y);
    }
    std::reverse(flower[b].begin() + 1, flower[b].end());
    for (int x = v, y; x != lca; x = st[pa[y]]) {
      flower[b].push_back(x);
      flower[b].push_back(y = st[match[x]]);
      q_push(y);
    }
    set_st(b, b);
    for (int x = 1; x <= n_x; ++x) g[b][x].w = g[x][b].w = 0;
    for (int x = 1; x <= n; ++x) flower_from[b][x] = 0;
    for (const int xs : flower[b]) {
      for (int x = 1; x <= n_x; ++x) {
        if (g[b][x].w == 0 || e_delta(g[xs][x]) < e_delta(g[b][x])) {
          g[b][x] = g[xs][x];
          g[x][b] = g[x][xs];
        }
      }
      for (int x = 1; x <= n; ++x)
        if (flower_from[xs][x]) flower_from[b][x] = xs;
    }
    set_slack(b);
  }
  void expand_blossom(int b) {
    for (const int member : flower[b]) set_st(member, member);
    const int xr = flower_from[b][g[b][pa[b]].u];
    const int pr = get_pr(b, xr);
    for (int i = 0; i < pr; i += 2) {
      const int xs = flower[b][i];
      const int xns = flower[b][i + 1];
      pa[xs] = g[xns][xs].u;
      S[xs] = 1;
      S[xns] = 0;
      slack[xs] = 0;
      set_slack(xns);
      q_push(xns);
    }
    S[xr] = 1;
    pa[xr] = pa[b];
    for (std::size_t i = static_cast<std::size_t>(pr) + 1;
         i < flower[b].size(); ++i) {
      const int xs = flower[b][i];
      S[xs] = -1;
      set_slack(xs);
    }
    st[b] = 0;
  }
  bool on_found_edge(const E& e) {
    const int u = st[e.u];
    const int v = st[e.v];
    if (S[v] == -1) {
      pa[v] = e.u;
      S[v] = 1;
      const int nu = st[match[v]];
      slack[v] = slack[nu] = 0;
      S[nu] = 0;
      q_push(nu);
    } else if (S[v] == 0) {
      const int lca = get_lca(u, v);
      if (!lca) {
        augment(u, v);
        augment(v, u);
        return true;
      }
      add_blossom(u, lca, v);
    }
    return false;
  }
  bool matching() {
    std::fill(S.begin(), S.begin() + n_x + 1, -1);
    std::fill(slack.begin(), slack.begin() + n_x + 1, 0);
    q.clear();
    for (int x = 1; x <= n_x; ++x)
      if (st[x] == x && !match[x]) {
        pa[x] = 0;
        S[x] = 0;
        q_push(x);
      }
    if (q.empty()) return false;
    for (;;) {
      while (!q.empty()) {
        const int u = q.front();
        q.pop_front();
        if (S[st[u]] == 1) continue;
        for (int v = 1; v <= n; ++v) {
          if (g[u][v].w > 0 && st[u] != st[v]) {
            if (e_delta(g[u][v]) == 0) {
              if (on_found_edge(g[u][v])) return true;
            } else {
              update_slack(u, st[v]);
            }
          }
        }
      }
      long long d = std::numeric_limits<long long>::max();
      for (int b = n + 1; b <= n_x; ++b)
        if (st[b] == b && S[b] == 1) d = std::min(d, lab[b] / 2);
      for (int x = 1; x <= n_x; ++x) {
        if (st[x] == x && slack[x]) {
          if (S[x] == -1)
            d = std::min(d, e_delta(g[slack[x]][x]));
          else if (S[x] == 0)
            d = std::min(d, e_delta(g[slack[x]][x]) / 2);
        }
      }
      // No slack edge and no blossom to expand: the duals are unbounded, so
      // the graph admits no perfect matching (adding the sentinel to a
      // label would also overflow).
      if (d == std::numeric_limits<long long>::max()) return false;
      for (int u = 1; u <= n; ++u) {
        if (S[st[u]] == 0) {
          if (lab[u] <= d) return false;
          lab[u] -= d;
        } else if (S[st[u]] == 1) {
          lab[u] += d;
        }
      }
      for (int b = n + 1; b <= n_x; ++b) {
        if (st[b] == b) {
          if (S[b] == 0)
            lab[b] += d * 2;
          else if (S[b] == 1)
            lab[b] -= d * 2;
        }
      }
      q.clear();
      for (int x = 1; x <= n_x; ++x) {
        if (st[x] == x && slack[x] && st[slack[x]] != x &&
            e_delta(g[slack[x]][x]) == 0) {
          if (on_found_edge(g[slack[x]][x])) return true;
        }
      }
      for (int b = n + 1; b <= n_x; ++b)
        if (st[b] == b && S[b] == 1 && lab[b] == 0) expand_blossom(b);
    }
  }

  /// Returns mate array (1-indexed, 0 = unmatched).
  std::vector<int> solve() {
    n_x = n;
    long long w_max = 0;
    for (int u = 1; u <= n; ++u) {
      st[u] = u;
      flower[u].clear();
      for (int v = 1; v <= n; ++v)
        flower_from[u][v] = (u == v ? u : 0);
      for (int v = 1; v <= n; ++v) w_max = std::max(w_max, g[u][v].w);
    }
    for (int u = 1; u <= n; ++u) lab[u] = w_max;
    while (matching()) {
    }
    return {match.begin(), match.begin() + n + 1};
  }
};

}  // namespace

DenseMatcher::DenseMatcher(std::size_t num_nodes)
    : n_(num_nodes),
      w_(num_nodes, std::vector<std::int64_t>(num_nodes, 0)),
      has_(num_nodes, std::vector<bool>(num_nodes, false)) {
  RADSURF_CHECK_ARG(num_nodes % 2 == 0,
                    "perfect matching needs an even node count, got "
                        << num_nodes);
}

void DenseMatcher::add_edge(std::size_t u, std::size_t v,
                            std::int64_t weight) {
  RADSURF_CHECK_ARG(u < n_ && v < n_ && u != v,
                    "bad matching edge (" << u << "," << v << ")");
  RADSURF_CHECK_ARG(weight >= 0, "matching edge weight must be >= 0");
  if (!has_[u][v] || weight < w_[u][v]) {
    w_[u][v] = w_[v][u] = weight;
    has_[u][v] = has_[v][u] = true;
  }
}

std::vector<std::size_t> DenseMatcher::solve() {
  if (n_ == 0) {
    last_weight_ = 0;
    return {};
  }
  // Reduce min-weight to max-weight: w' = OFFSET - w, with OFFSET large
  // enough that every extra matched edge dominates any weight difference.
  std::int64_t max_w = 0;
  for (std::size_t u = 0; u < n_; ++u)
    for (std::size_t v = 0; v < n_; ++v)
      if (has_[u][v]) max_w = std::max(max_w, w_[u][v]);
  const std::int64_t offset =
      max_w * static_cast<std::int64_t>(n_) + 1;

  MaxWeightMatching mwm(static_cast<int>(n_));
  for (std::size_t u = 0; u < n_; ++u) {
    for (std::size_t v = u + 1; v < n_; ++v) {
      if (!has_[u][v]) continue;
      const long long wt = offset - w_[u][v];
      mwm.g[u + 1][v + 1].w = wt;
      mwm.g[v + 1][u + 1].w = wt;
    }
  }
  const std::vector<int> mate = mwm.solve();

  std::vector<std::size_t> out(n_);
  last_weight_ = 0;
  for (std::size_t u = 0; u < n_; ++u) {
    const int m = mate[u + 1];
    if (m == 0) throw DecodeError("no perfect matching exists");
    out[u] = static_cast<std::size_t>(m - 1);
    if (out[u] > u) last_weight_ += w_[u][out[u]];
  }
  for (std::size_t u = 0; u < n_; ++u)
    RADSURF_ASSERT(out[out[u]] == u);
  return out;
}

}  // namespace radsurf
