#include "decoder/sliding_window.hpp"

#include <algorithm>
#include <cstring>
#include <map>
#include <sstream>

#include "util/error.hpp"
#include "util/hash.hpp"

namespace radsurf {

namespace {

// Structural signature of a window: two windows with an identical local
// edge structure AND identical relative round layout (local detector →
// round offset from the window start, plus the relative commit cut)
// share one MwpmDecoder and one decode memo.  Interior windows of a
// periodic memory circuit are bit-identical in both respects, so the
// number of distinct shapes stays O(1) as rounds grow.  The round layout
// is part of the signature because decode_window's commit/defer split
// depends on it: sharing a memo across two windows is only sound when a
// local defect set decodes identically in both.
std::string shape_signature(const MatchingGraph& g,
                            const std::vector<std::uint32_t>& local_rounds,
                            std::uint64_t relative_commit) {
  std::string sig;
  sig.reserve(24 + g.edges().size() * 28 + local_rounds.size() * 8);
  auto put = [&sig](std::uint64_t v) {
    char buf[8];
    std::memcpy(buf, &v, 8);
    sig.append(buf, 8);
  };
  put(g.num_detectors());
  put(relative_commit);
  for (const std::uint32_t r : local_rounds) put(r);
  for (const MatchingEdge& e : g.edges()) {
    put((static_cast<std::uint64_t>(e.a) << 32) | e.b);
    std::uint64_t p_bits = 0;
    std::memcpy(&p_bits, &e.probability, 8);
    put(p_bits);
    put(e.observables);
  }
  return sig;
}

}  // namespace

SlidingWindowDecoder::SlidingWindowDecoder(
    const MatchingGraph& full, std::vector<std::uint32_t> detector_rounds,
    std::size_t num_rounds, SlidingWindowOptions options)
    : options_(options), detector_rounds_(std::move(detector_rounds)) {
  RADSURF_CHECK_ARG(num_rounds >= 1, "need at least one round");
  RADSURF_CHECK_ARG(options_.window >= 1, "window must be >= 1 round");
  RADSURF_CHECK_ARG(detector_rounds_.size() == full.num_detectors(),
                    "detector_rounds size " << detector_rounds_.size()
                                            << " != " << full.num_detectors()
                                            << " detectors");
  for (std::uint32_t r : detector_rounds_) {
    RADSURF_CHECK_ARG(r < num_rounds, "detector round " << r
                                                        << " >= num_rounds "
                                                        << num_rounds);
  }
  const std::size_t W = options_.window;
  const std::size_t C = options_.resolved_commit();
  RADSURF_CHECK_ARG(W >= num_rounds || C < W,
                    "commit stride " << C << " must be < window " << W
                                     << " (windows must overlap)");

  std::map<std::string, std::size_t> shape_index;
  std::size_t begin = 0;
  while (true) {
    Window w;
    w.begin_round = begin;
    w.end_round = std::min(begin + W, num_rounds);
    const bool final_window = w.end_round == num_rounds;
    w.commit_round = final_window ? w.end_round : begin + C;

    std::vector<std::uint32_t> ids;
    for (std::uint32_t d = 0; d < detector_rounds_.size(); ++d) {
      if (detector_rounds_[d] >= w.begin_round &&
          detector_rounds_[d] < w.end_round)
        ids.push_back(d);
    }
    w.view = time_window(full, ids);
    max_window_detectors_ = std::max(max_window_detectors_, ids.size());

    std::vector<std::uint32_t> local_rounds;
    local_rounds.reserve(ids.size());
    for (const std::uint32_t global : w.view.global_ids)
      local_rounds.push_back(detector_rounds_[global] -
                             static_cast<std::uint32_t>(w.begin_round));
    const std::string sig = shape_signature(
        w.view.graph, local_rounds,
        static_cast<std::uint64_t>(w.commit_round - w.begin_round));
    const auto [it, inserted] =
        shape_index.try_emplace(sig, decoders_.size());
    if (inserted) {
      MwpmOptions mopts = options_.matcher;
      mopts.track_paths = true;  // partial commits reconstruct paths
      decoders_.push_back(
          std::make_unique<MwpmDecoder>(w.view.graph, mopts));
      memos_.push_back(std::make_unique<WindowMemo>());
    }
    w.decoder_index = it->second;

    const std::size_t next = w.commit_round;
    windows_.push_back(std::move(w));
    if (final_window) break;
    begin = next;
  }
}

std::size_t SlidingWindowDecoder::WindowMemo::KeyHash::operator()(
    const std::vector<std::uint32_t>& v) const {
  return static_cast<std::size_t>(fnv1a64_mixed(v.data(), v.size()));
}

std::string SlidingWindowDecoder::name() const {
  std::ostringstream ss;
  ss << "sliding-window(mwpm, W=" << options_.window
     << ", C=" << options_.resolved_commit() << ")";
  return ss.str();
}

std::uint64_t SlidingWindowDecoder::decode_window(
    const Window& w, const std::vector<std::uint32_t>& local_defects,
    std::vector<std::uint32_t>& local_carried) const {
  const MwpmDecoder& decoder = *decoders_[w.decoder_index];
  const std::uint32_t local_boundary = w.view.graph.boundary_node();
  const std::size_t commit = w.commit_round;

  // Everything here is in window-local ids (the caller translates), so
  // the result depends only on the window *shape* — the property that
  // lets all same-shape windows share one decode memo.
  auto toggle = [&local_carried](std::uint32_t local) {
    const auto it =
        std::find(local_carried.begin(), local_carried.end(), local);
    if (it == local_carried.end())
      local_carried.push_back(local);
    else
      local_carried.erase(it);
  };
  auto uncommitted = [&](std::uint32_t local) {
    return local != local_boundary &&
           detector_rounds_[w.view.global_ids[local]] >= commit;
  };

  std::uint64_t prediction = 0;
  for (const MwpmMatch& pair : decoder.match_defects(local_defects)) {
    const std::vector<std::uint32_t> path =
        decoder.path_nodes(pair.a, pair.b);
    // First / last uncommitted node on the correction path (if any).
    std::size_t first = path.size(), last = path.size();
    for (std::size_t i = 0; i < path.size(); ++i) {
      if (uncommitted(path[i])) {
        if (first == path.size()) first = i;
        last = i;
      }
    }
    if (first == path.size()) {
      // The whole correction lies in committed territory: apply it.
      prediction ^= decoder.path_observables(pair.a, pair.b);
      continue;
    }
    // a-side: commit the prefix up to the first uncommitted node, which the
    // partial correction turns into an artificial defect; if a itself is
    // uncommitted, simply defer it.
    if (first > 0) {
      prediction ^= decoder.path_observables(pair.a, path[first]);
      toggle(path[first]);
    } else {
      toggle(pair.a);
    }
    // b-side: symmetric, except a boundary endpoint commits nothing (its
    // tail is simply re-decoded later).  When first == last the two sides
    // meet at one node: the double toggle cancels and the XORs compose to
    // the full path — equivalent to a full commit.
    if (pair.b == local_boundary) continue;
    if (last + 1 < path.size()) {
      prediction ^= decoder.path_observables(pair.a, path[last]) ^
                    decoder.path_observables(pair.a, pair.b);
      toggle(path[last]);
    } else {
      toggle(pair.b);
    }
  }
  return prediction;
}

void SlidingWindowDecoder::step_window(
    const Window& w, std::vector<std::uint32_t>& active,
    std::vector<std::uint32_t>& carried, std::uint64_t& prediction,
    std::vector<std::uint32_t>& local_active,
    std::vector<std::uint32_t>& local_carried) const {
  std::sort(active.begin(), active.end());
  local_active.clear();
  for (const std::uint32_t g : active)
    local_active.push_back(w.view.to_local(g));
  std::sort(local_active.begin(), local_active.end());

  // Shape-level memo: in local ids, (active) -> (prediction, carried)
  // is a pure function of the window shape, so a defect pattern seen at
  // round 50 resolves the identical pattern at round 150 — long
  // timelines repeat small window-local sets across shots and rounds
  // even though whole-history syndromes never repeat.  Sharded by key
  // hash: concurrent streams of a decode service share the cache without
  // sharing a lock.
  WindowMemo& memo = *memos_[w.decoder_index];
  WindowMemo::Shard& shard =
      memo.shards[WindowMemo::KeyHash{}(local_active) % WindowMemo::kShards];
  local_carried.clear();
  bool memoized = false;
  memo_lookups_.fetch_add(1, std::memory_order_relaxed);
  {
    const std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.map.find(local_active);
    if (it != shard.map.end()) {
      prediction ^= it->second.first;
      local_carried = it->second.second;
      memoized = true;
    }
  }
  if (memoized) {
    memo_hits_.fetch_add(1, std::memory_order_relaxed);
  } else {
    const std::uint64_t window_prediction =
        decode_window(w, local_active, local_carried);
    prediction ^= window_prediction;
    const std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.map.size() < WindowMemo::kShardCap)
      shard.map.emplace(local_active,
                        std::make_pair(window_prediction, local_carried));
  }
  carried.clear();
  for (const std::uint32_t local : local_carried)
    carried.push_back(w.view.global_ids[local]);
}

std::uint64_t SlidingWindowDecoder::decode(
    const std::vector<std::uint32_t>& defects) {
  if (defects.empty()) return 0;

  // Defect ids are emitted in circuit order, which our builders keep
  // round-monotone; stable-sort by round to stay correct for any layout.
  std::vector<std::uint32_t> by_round(defects);
  std::stable_sort(by_round.begin(), by_round.end(),
                   [this](std::uint32_t a, std::uint32_t b) {
                     return detector_rounds_[a] < detector_rounds_[b];
                   });

  std::uint64_t prediction = 0;
  std::vector<std::uint32_t> carried;
  std::vector<std::uint32_t> active;
  std::vector<std::uint32_t> local_active;
  std::vector<std::uint32_t> local_carried;
  std::size_t next = 0;  // next unconsumed defect in by_round
  for (const Window& w : windows_) {
    active.assign(carried.begin(), carried.end());
    carried.clear();
    while (next < by_round.size() &&
           detector_rounds_[by_round[next]] < w.end_round)
      active.push_back(by_round[next++]);
    if (active.empty()) continue;
    step_window(w, active, carried, prediction, local_active, local_carried);
  }
  RADSURF_ASSERT_MSG(carried.empty() && next == by_round.size(),
                     "sliding-window decode left defects unresolved");
  return prediction;
}

std::size_t SlidingWindowDecoder::ingest(StreamCursor& cursor,
                                         const std::uint32_t* defects,
                                         std::size_t count,
                                         std::size_t rounds_complete) const {
  RADSURF_CHECK_ARG(!cursor.finished, "stream cursor already finished");
  RADSURF_CHECK_ARG(rounds_complete >= cursor.rounds_complete,
                    "rounds_complete must be monotone: got "
                        << rounds_complete << " after "
                        << cursor.rounds_complete);
  RADSURF_CHECK_ARG(rounds_complete <= num_rounds(),
                    "rounds_complete " << rounds_complete << " > num_rounds "
                                       << num_rounds());
  // A window consumes every defect older than its end cut when it
  // decodes, so a defect for rounds a committed window already consumed
  // can never be folded in — reject it instead of silently mis-decoding.
  const std::size_t consumed_horizon =
      cursor.next_window == 0 ? 0
                              : windows_[cursor.next_window - 1].end_round;
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint32_t d = defects[i];
    RADSURF_CHECK_ARG(d < detector_rounds_.size(),
                      "defect " << d << " out of range");
    const std::uint32_t r = detector_rounds_[d];
    RADSURF_CHECK_ARG(r < rounds_complete,
                      "defect " << d << " lies in round " << r
                                << ", which is not complete yet "
                                   "(rounds_complete = "
                                << rounds_complete << ")");
    RADSURF_CHECK_ARG(r >= consumed_horizon,
                      "defect " << d << " in round " << r
                                << " arrived after its window committed "
                                   "(decoded horizon is round "
                                << consumed_horizon << ")");
    cursor.pending.push_back(d);
  }
  cursor.rounds_complete = rounds_complete;

  // Same walk as decode(): each ready window takes the prior carried set
  // plus every pending defect before its end cut.  The sets are sorted
  // inside step_window, so arrival order never matters — only that every
  // defect reaches the decoder before its window's rounds complete, which
  // the checks above enforce.
  std::size_t committed = 0;
  std::vector<std::uint32_t> active;
  std::vector<std::uint32_t> local_active;
  std::vector<std::uint32_t> local_carried;
  while (cursor.next_window < windows_.size() &&
         windows_[cursor.next_window].end_round <= rounds_complete) {
    const Window& w = windows_[cursor.next_window];
    active.assign(cursor.carried.begin(), cursor.carried.end());
    std::size_t kept = 0;
    for (std::size_t i = 0; i < cursor.pending.size(); ++i) {
      const std::uint32_t d = cursor.pending[i];
      if (detector_rounds_[d] < w.end_round)
        active.push_back(d);
      else
        cursor.pending[kept++] = d;
    }
    cursor.pending.resize(kept);
    if (active.empty())
      cursor.carried.clear();
    else
      step_window(w, active, cursor.carried, cursor.prediction, local_active,
                  local_carried);
    ++cursor.next_window;
    ++committed;
  }
  return committed;
}

std::uint64_t SlidingWindowDecoder::finish(StreamCursor& cursor) const {
  RADSURF_CHECK_ARG(!cursor.finished, "stream cursor already finished");
  RADSURF_CHECK_ARG(cursor.next_window == windows_.size(),
                    "stream incomplete: " << cursor.rounds_complete << " of "
                                          << num_rounds()
                                          << " rounds ingested");
  RADSURF_ASSERT_MSG(cursor.carried.empty() && cursor.pending.empty(),
                     "sliding-window stream left defects unresolved");
  cursor.finished = true;
  return cursor.prediction;
}

}  // namespace radsurf
