// Greedy nearest-pair matcher — the fast, inexact baseline.
//
// Repeatedly matches the globally closest available pair (defect-defect or
// defect-boundary) using the same precomputed path metric as MWPM.  Used in
// the decoder ablation bench to quantify how much exact matching buys under
// radiation-scale defect densities.
#pragma once

#include <cstdint>
#include <vector>

#include "decoder/decoder.hpp"
#include "decoder/mwpm.hpp"

namespace radsurf {

class GreedyDecoder final : public Decoder {
 public:
  explicit GreedyDecoder(const MatchingGraph& graph);

  std::string name() const override { return "greedy"; }
  std::uint64_t decode(const std::vector<std::uint32_t>& defects) override;

 private:
  MwpmDecoder metric_;  // reuse its all-pairs distances/parities
  std::uint32_t boundary_;
};

}  // namespace radsurf
