#include "decoder/greedy.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace radsurf {

GreedyDecoder::GreedyDecoder(const MatchingGraph& graph)
    : metric_(graph), boundary_(graph.boundary_node()) {}

std::uint64_t GreedyDecoder::decode(
    const std::vector<std::uint32_t>& defects) {
  const std::size_t k = defects.size();
  if (k == 0) return 0;

  struct Cand {
    double weight;
    std::size_t i;
    std::size_t j;  // SIZE_MAX = boundary
  };
  std::vector<Cand> cands;
  cands.reserve(k * (k + 1) / 2);
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = i + 1; j < k; ++j) {
      const double d = metric_.distance(defects[i], defects[j]);
      if (std::isfinite(d)) cands.push_back({d, i, j});
    }
    const double db = metric_.distance(defects[i], boundary_);
    if (std::isfinite(db))
      cands.push_back({db, i, std::numeric_limits<std::size_t>::max()});
  }
  std::sort(cands.begin(), cands.end(),
            [](const Cand& a, const Cand& b) { return a.weight < b.weight; });

  std::vector<char> used(k, 0);
  std::size_t remaining = k;
  std::uint64_t prediction = 0;
  for (const Cand& c : cands) {
    if (remaining == 0) break;
    if (used[c.i]) continue;
    if (c.j == std::numeric_limits<std::size_t>::max()) {
      used[c.i] = 1;
      --remaining;
      prediction ^= metric_.path_observables(defects[c.i], boundary_);
    } else {
      if (used[c.j]) continue;
      used[c.i] = used[c.j] = 1;
      remaining -= 2;
      prediction ^= metric_.path_observables(defects[c.i], defects[c.j]);
    }
  }
  if (remaining != 0)
    throw DecodeError("greedy decoder: defects unreachable from boundary");
  return prediction;
}

}  // namespace radsurf
