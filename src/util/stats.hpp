// Statistics helpers for fault-injection results.
//
// Logical error rates are binomial proportions, so confidence intervals use
// the Wilson score (well-behaved near 0 and 1, where the paper's data
// lives).  Medians across injection points / subgraph samples follow the
// paper's aggregation.
#pragma once

#include <cstddef>
#include <vector>

namespace radsurf {

double mean(const std::vector<double>& xs);
double variance(const std::vector<double>& xs);  // sample variance (n-1)
double stddev(const std::vector<double>& xs);
/// Median (average of middle two for even length).  Input is copied.
double median(std::vector<double> xs);
/// q-quantile in [0,1] by linear interpolation.  Input is copied.
double quantile(std::vector<double> xs, double q);

/// Binomial proportion with a Wilson score confidence interval.
struct Proportion {
  std::size_t successes = 0;
  std::size_t trials = 0;

  double rate() const {
    return trials == 0 ? 0.0 : static_cast<double>(successes) / trials;
  }
  /// Wilson score interval half-limits at z standard deviations (z=1.96
  /// for 95%).
  double wilson_low(double z = 1.96) const;
  double wilson_high(double z = 1.96) const;

  Proportion& operator+=(const Proportion& o) {
    successes += o.successes;
    trials += o.trials;
    return *this;
  }
};

/// Pooled two-proportion z statistic; z^2 is the chi-square statistic of
/// the 2x2 contingency table, so |z| < 4 accepts equality of the two
/// binomial rates at far beyond the 99.99% level.  Used to cross-validate
/// the frame and tableau sampling engines on identical campaigns.
double two_proportion_z(const Proportion& a, const Proportion& b);

/// Streaming mean/variance accumulator (Welford).
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const { return n_ > 1 ? m2_ / (n_ - 1) : 0.0; }
  double stddev() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace radsurf
