#include "util/parallel.hpp"

#include <exception>
#include <mutex>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "util/error.hpp"

namespace radsurf {

int hardware_threads() {
#ifdef _OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

namespace {
thread_local int g_serial_chunks_depth = 0;
}  // namespace

SerialChunksScope::SerialChunksScope() { ++g_serial_chunks_depth; }
SerialChunksScope::~SerialChunksScope() { --g_serial_chunks_depth; }

bool serial_chunks_active() { return g_serial_chunks_depth > 0; }

void parallel_chunks(std::size_t n, std::size_t chunk_size, const Rng& base,
                     const std::function<void(const ChunkRange&, Rng&)>& body) {
  RADSURF_CHECK_ARG(chunk_size > 0, "chunk_size must be positive");
  if (n == 0) return;

  const std::size_t num_chunks = (n + chunk_size - 1) / chunk_size;
  std::vector<ChunkRange> chunks(num_chunks);
  for (std::size_t c = 0; c < num_chunks; ++c) {
    chunks[c].begin = c * chunk_size;
    chunks[c].end = std::min(n, (c + 1) * chunk_size);
    chunks[c].index = c;
  }

  std::exception_ptr first_error;
  std::mutex error_mutex;

  // Streams are derived sequentially (stream c+1 = stream c jumped once)
  // to avoid O(chunks^2) jump work, then chunks execute in any order.
  std::vector<Rng> streams;
  streams.reserve(num_chunks);
  Rng cursor = base;
  for (std::size_t c = 0; c < num_chunks; ++c) {
    streams.push_back(cursor);
    cursor.jump();
  }

  const bool go_parallel = !serial_chunks_active() && num_chunks > 1;
  (void)go_parallel;
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic) if (go_parallel)
#endif
  for (long long c = 0; c < static_cast<long long>(num_chunks); ++c) {
    try {
      body(chunks[static_cast<std::size_t>(c)],
           streams[static_cast<std::size_t>(c)]);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(error_mutex);
      if (!first_error) first_error = std::current_exception();
    }
  }

  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace radsurf
