#include "util/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace radsurf {

namespace {

constexpr int kMaxDepth = 128;  // parser recursion guard

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  std::size_t line = 1;
  std::size_t col = 1;
  const std::string& origin;

  explicit Parser(std::string_view t, const std::string& o)
      : text(t), origin(o) {}

  [[noreturn]] void fail(const std::string& message) const {
    std::ostringstream ss;
    ss << origin << ":" << line << ":" << col << ": " << message;
    throw JsonError(ss.str());
  }

  bool eof() const { return pos >= text.size(); }
  char peek() const { return text[pos]; }

  char take() {
    const char c = text[pos++];
    if (c == '\n') {
      ++line;
      col = 1;
    } else {
      ++col;
    }
    return c;
  }

  void skip_ws() {
    while (!eof()) {
      const char c = peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
        take();
      else
        break;
    }
  }

  void expect(char c, const char* what) {
    skip_ws();
    if (eof()) fail(std::string("unexpected end of input, expected ") + what);
    if (peek() != c)
      fail(std::string("expected ") + what + ", got '" + peek() + "'");
    take();
  }

  bool consume_literal(std::string_view lit) {
    if (text.substr(pos, lit.size()) != lit) return false;
    for (std::size_t i = 0; i < lit.size(); ++i) take();
    return true;
  }

  JsonValue parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting deeper than 128 levels");
    skip_ws();
    if (eof()) fail("unexpected end of input, expected a value");
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object(depth);
      case '[':
        return parse_array(depth);
      case '"':
        return JsonValue(parse_string());
      case 't':
        if (consume_literal("true")) return JsonValue(true);
        fail("invalid literal (did you mean \"true\"?)");
      case 'f':
        if (consume_literal("false")) return JsonValue(false);
        fail("invalid literal (did you mean \"false\"?)");
      case 'n':
        if (consume_literal("null")) return JsonValue();
        fail("invalid literal (did you mean \"null\"?)");
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
        fail(std::string("unexpected character '") + c + "'");
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos;
    if (!eof() && peek() == '-') take();
    if (eof() || peek() < '0' || peek() > '9')
      fail("malformed number (expected a digit)");
    if (peek() == '0') {
      take();
      if (!eof() && peek() >= '0' && peek() <= '9')
        fail("malformed number (leading zero)");
    } else {
      while (!eof() && peek() >= '0' && peek() <= '9') take();
    }
    if (!eof() && peek() == '.') {
      take();
      if (eof() || peek() < '0' || peek() > '9')
        fail("malformed number (expected a digit after '.')");
      while (!eof() && peek() >= '0' && peek() <= '9') take();
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      take();
      if (!eof() && (peek() == '+' || peek() == '-')) take();
      if (eof() || peek() < '0' || peek() > '9')
        fail("malformed number (expected an exponent digit)");
      while (!eof() && peek() >= '0' && peek() <= '9') take();
    }
    const std::string token(text.substr(start, pos - start));
    return JsonValue(std::strtod(token.c_str(), nullptr));
  }

  void append_utf8(std::string& out, std::uint32_t cp) {
    if (cp <= 0x7f) {
      out.push_back(static_cast<char>(cp));
    } else if (cp <= 0x7ff) {
      out.push_back(static_cast<char>(0xc0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
    } else if (cp <= 0xffff) {
      out.push_back(static_cast<char>(0xe0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
    } else {
      out.push_back(static_cast<char>(0xf0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3f)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
    }
  }

  std::uint32_t parse_hex4() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      if (eof()) fail("unterminated \\u escape");
      const char c = take();
      v <<= 4;
      if (c >= '0' && c <= '9')
        v |= static_cast<std::uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f')
        v |= static_cast<std::uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F')
        v |= static_cast<std::uint32_t>(c - 'A' + 10);
      else
        fail("invalid hex digit in \\u escape");
    }
    return v;
  }

  std::string parse_string() {
    expect('"', "'\"'");
    std::string out;
    while (true) {
      if (eof()) fail("unterminated string");
      const char c = take();
      if (c == '"') break;
      if (static_cast<unsigned char>(c) < 0x20)
        fail("unescaped control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (eof()) fail("unterminated escape sequence");
      const char e = take();
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          std::uint32_t cp = parse_hex4();
          if (cp >= 0xd800 && cp <= 0xdbff) {
            // High surrogate: must be followed by \uDC00-\uDFFF.
            if (eof() || take() != '\\' || eof() || take() != 'u')
              fail("high surrogate not followed by \\u low surrogate");
            const std::uint32_t lo = parse_hex4();
            if (lo < 0xdc00 || lo > 0xdfff)
              fail("invalid low surrogate in \\u escape pair");
            cp = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
          } else if (cp >= 0xdc00 && cp <= 0xdfff) {
            fail("unpaired low surrogate in \\u escape");
          }
          append_utf8(out, cp);
          break;
        }
        default:
          fail(std::string("invalid escape sequence \\") + e);
      }
    }
    return out;
  }

  JsonValue parse_array(int depth) {
    expect('[', "'['");
    JsonValue out = JsonValue::array();
    skip_ws();
    if (!eof() && peek() == ']') {
      take();
      return out;
    }
    while (true) {
      out.push_back(parse_value(depth + 1));
      skip_ws();
      if (eof()) fail("unterminated array (expected ',' or ']')");
      const char c = take();
      if (c == ']') return out;
      if (c != ',') fail("expected ',' or ']' in array");
      skip_ws();
      if (!eof() && peek() == ']') fail("trailing comma in array");
    }
  }

  JsonValue parse_object(int depth) {
    expect('{', "'{'");
    JsonValue out = JsonValue::object();
    skip_ws();
    if (!eof() && peek() == '}') {
      take();
      return out;
    }
    while (true) {
      skip_ws();
      if (eof() || peek() != '"') fail("expected a string object key");
      std::string key = parse_string();
      if (out.find(key) != nullptr) fail("duplicate object key \"" + key + "\"");
      expect(':', "':'");
      out.set(std::move(key), parse_value(depth + 1));
      skip_ws();
      if (eof()) fail("unterminated object (expected ',' or '}')");
      const char c = take();
      if (c == '}') return out;
      if (c != ',') fail("expected ',' or '}' in object");
      skip_ws();
      if (!eof() && peek() == '}') fail("trailing comma in object");
    }
  }
};

void append_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

}  // namespace

const char* JsonValue::kind_name(Kind k) {
  switch (k) {
    case Kind::NUL: return "null";
    case Kind::BOOLEAN: return "boolean";
    case Kind::NUMBER: return "number";
    case Kind::STRING: return "string";
    case Kind::ARRAY: return "array";
    case Kind::OBJECT: return "object";
  }
  return "unknown";
}

JsonValue JsonValue::parse(std::string_view text, const std::string& origin) {
  Parser p(text, origin);
  JsonValue v = p.parse_value(0);
  p.skip_ws();
  if (!p.eof()) p.fail("trailing content after the JSON document");
  return v;
}

JsonValue JsonValue::parse_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw JsonError(path + ": cannot open file");
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse(ss.str(), path);
}

bool JsonValue::as_bool() const {
  if (kind_ != Kind::BOOLEAN)
    throw JsonError(std::string("expected boolean, got ") + kind_name());
  return bool_;
}

double JsonValue::as_number() const {
  if (kind_ != Kind::NUMBER)
    throw JsonError(std::string("expected number, got ") + kind_name());
  return number_;
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::STRING)
    throw JsonError(std::string("expected string, got ") + kind_name());
  return string_;
}

const JsonValue::Array& JsonValue::as_array() const {
  if (kind_ != Kind::ARRAY)
    throw JsonError(std::string("expected array, got ") + kind_name());
  return array_;
}

const JsonValue::Object& JsonValue::as_object() const {
  if (kind_ != Kind::OBJECT)
    throw JsonError(std::string("expected object, got ") + kind_name());
  return object_;
}

void JsonValue::push_back(JsonValue v) {
  if (kind_ != Kind::ARRAY)
    throw JsonError(std::string("push_back on ") + kind_name());
  array_.push_back(std::move(v));
}

std::size_t JsonValue::size() const {
  if (kind_ == Kind::ARRAY) return array_.size();
  if (kind_ == Kind::OBJECT) return object_.size();
  throw JsonError(std::string("size() on ") + kind_name());
}

const JsonValue& JsonValue::operator[](std::size_t i) const {
  const Array& a = as_array();
  if (i >= a.size())
    throw JsonError("array index " + std::to_string(i) + " out of range (" +
                    std::to_string(a.size()) + " elements)");
  return a[i];
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::OBJECT)
    throw JsonError(std::string("find() on ") + kind_name());
  for (const Member& m : object_)
    if (m.first == key) return &m.second;
  return nullptr;
}

void JsonValue::set(std::string key, JsonValue value) {
  if (kind_ != Kind::OBJECT)
    throw JsonError(std::string("set() on ") + kind_name());
  for (Member& m : object_) {
    if (m.first == key) {
      m.second = std::move(value);
      return;
    }
  }
  object_.emplace_back(std::move(key), std::move(value));
}

std::string JsonValue::number_to_string(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) <= 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    return buf;
  }
  if (!std::isfinite(v)) return "null";  // JSON has no inf/nan
  // Shortest representation that round-trips: try increasing precision.
  char buf[40];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) return buf;
  }
  return buf;
}

void JsonValue::dump_to(std::string& out, int indent, int depth) const {
  const auto newline = [&](int d) {
    if (indent < 0) return;
    out.push_back('\n');
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (kind_) {
    case Kind::NUL: out += "null"; break;
    case Kind::BOOLEAN: out += bool_ ? "true" : "false"; break;
    case Kind::NUMBER: out += number_to_string(number_); break;
    case Kind::STRING: append_escaped(out, string_); break;
    case Kind::ARRAY: {
      if (array_.empty()) {
        out += "[]";
        break;
      }
      out.push_back('[');
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i) out.push_back(',');
        newline(depth + 1);
        array_[i].dump_to(out, indent, depth + 1);
      }
      newline(depth);
      out.push_back(']');
      break;
    }
    case Kind::OBJECT: {
      if (object_.empty()) {
        out += "{}";
        break;
      }
      out.push_back('{');
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i) out.push_back(',');
        newline(depth + 1);
        append_escaped(out, object_[i].first);
        out += indent < 0 ? ":" : ": ";
        object_[i].second.dump_to(out, indent, depth + 1);
      }
      newline(depth);
      out.push_back('}');
      break;
    }
  }
}

std::string JsonValue::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

bool JsonValue::operator==(const JsonValue& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case Kind::NUL: return true;
    case Kind::BOOLEAN: return bool_ == other.bool_;
    case Kind::NUMBER: return number_ == other.number_;
    case Kind::STRING: return string_ == other.string_;
    case Kind::ARRAY: return array_ == other.array_;
    case Kind::OBJECT: {
      if (object_.size() != other.object_.size()) return false;
      for (const Member& m : object_) {
        const JsonValue* theirs = other.find(m.first);
        if (theirs == nullptr || !(m.second == *theirs)) return false;
      }
      return true;
    }
  }
  return false;
}

}  // namespace radsurf
