// Plain-text and CSV table rendering for benchmark reports.
//
// Every figure-reproduction binary prints its series through Table so the
// rows the paper reports can be eyeballed (and diffed) directly from
// bench_output.txt.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace radsurf {

class Table {
 public:
  /// An empty table (no columns); add_row rejects rows until headers are
  /// assigned by copy/move from a real table.
  Table() = default;
  explicit Table(std::vector<std::string> headers);

  /// Append one row; must match the header arity.
  void add_row(std::vector<std::string> cells);

  /// Formatting helpers for numeric cells.
  static std::string fmt(double v, int precision = 3);
  static std::string pct(double v, int precision = 1);  // 0.123 -> "12.3%"

  /// Render as an aligned ASCII table.
  std::string to_string() const;
  /// Render as CSV (RFC-4180-style quoting for cells with commas/quotes).
  std::string to_csv() const;

  std::size_t num_rows() const { return rows_.size(); }

  /// Structured access for machine-readable writers (CSV is lossy for
  /// cells containing commas; the JSON report writer wants raw cells).
  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

std::ostream& operator<<(std::ostream& os, const Table& t);

}  // namespace radsurf
