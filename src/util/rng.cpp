#include "util/rng.hpp"

namespace radsurf {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

inline std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
  // A state of all zeros is the one invalid xoshiro state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 top bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::below(std::uint64_t n) {
  // Lemire's nearly-divisionless bounded draw with rejection.
  const __uint128_t m =
      static_cast<__uint128_t>(next()) * static_cast<__uint128_t>(n);
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;
    std::uint64_t l = lo;
    __uint128_t mm = m;
    while (l < threshold) {
      mm = static_cast<__uint128_t>(next()) * static_cast<__uint128_t>(n);
      l = static_cast<std::uint64_t>(mm);
    }
    return static_cast<std::uint64_t>(mm >> 64);
  }
  return static_cast<std::uint64_t>(m >> 64);
}

void Rng::jump() {
  static constexpr std::uint64_t kJump[] = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  std::uint64_t t[4] = {0, 0, 0, 0};
  for (std::uint64_t jump_word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump_word & (std::uint64_t{1} << b)) {
        t[0] ^= s_[0];
        t[1] ^= s_[1];
        t[2] ^= s_[2];
        t[3] ^= s_[3];
      }
      next();
    }
  }
  s_[0] = t[0];
  s_[1] = t[1];
  s_[2] = t[2];
  s_[3] = t[3];
}

Rng Rng::stream(unsigned k) const {
  Rng out = *this;
  for (unsigned i = 0; i < k; ++i) out.jump();
  return out;
}

}  // namespace radsurf
