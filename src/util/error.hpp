// Typed error hierarchy and contract-check macros used across radsurf.
//
// Library errors are reported with exceptions derived from radsurf::Error so
// callers can catch the whole family or a specific kind.  Internal invariant
// violations use RADSURF_ASSERT, which is active in all build types: the
// simulator is used for scientific claims, so silently continuing past a
// broken invariant is never acceptable.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace radsurf {

/// Base class of all radsurf exceptions.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller supplied an argument that violates a documented precondition.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// A circuit is structurally malformed (bad target, bad record lookback, ...).
class CircuitError : public Error {
 public:
  explicit CircuitError(const std::string& what) : Error(what) {}
};

/// Transpilation cannot satisfy the architecture constraints.
class TranspileError : public Error {
 public:
  explicit TranspileError(const std::string& what) : Error(what) {}
};

/// Decoding failed (non-matchable syndrome, malformed matching graph, ...).
class DecodeError : public Error {
 public:
  explicit DecodeError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const std::string& msg) {
  std::ostringstream ss;
  ss << "radsurf internal invariant violated: (" << expr << ") at " << file
     << ":" << line;
  if (!msg.empty()) ss << " — " << msg;
  throw Error(ss.str());
}
}  // namespace detail

}  // namespace radsurf

#define RADSURF_ASSERT(expr)                                              \
  do {                                                                    \
    if (!(expr))                                                          \
      ::radsurf::detail::assert_fail(#expr, __FILE__, __LINE__, "");      \
  } while (0)

#define RADSURF_ASSERT_MSG(expr, msg)                                     \
  do {                                                                    \
    if (!(expr)) {                                                        \
      std::ostringstream radsurf_assert_ss;                               \
      radsurf_assert_ss << msg;                                           \
      ::radsurf::detail::assert_fail(#expr, __FILE__, __LINE__,           \
                                     radsurf_assert_ss.str());            \
    }                                                                     \
  } while (0)

#define RADSURF_CHECK_ARG(expr, msg)                                      \
  do {                                                                    \
    if (!(expr)) {                                                        \
      std::ostringstream radsurf_check_ss;                                \
      radsurf_check_ss << msg;                                            \
      throw ::radsurf::InvalidArgument(radsurf_check_ss.str());           \
    }                                                                     \
  } while (0)
