// Dependency-free JSON reader/writer shared by the spec-driven experiment
// runner, the BENCH_perf.json perf-trajectory file and the campaign
// checkpoint layer.
//
// JsonValue is an ordered document model: objects preserve insertion order
// so parse -> edit -> dump round-trips stay diff-able.  The parser is
// strict RFC-8259 JSON (no comments, no trailing commas) and reports
// errors as JsonError with 1-based line:column positions.  Numbers are
// stored as doubles: integral values up to 2^53 round-trip exactly, which
// covers every shot count, seed and parameter the spec layer uses.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/error.hpp"

namespace radsurf {

/// Malformed JSON text or a type-mismatched access on a JsonValue.
class JsonError : public Error {
 public:
  explicit JsonError(const std::string& what) : Error(what) {}
};

class JsonValue {
 public:
  enum class Kind { NUL, BOOLEAN, NUMBER, STRING, ARRAY, OBJECT };

  using Array = std::vector<JsonValue>;
  using Member = std::pair<std::string, JsonValue>;
  using Object = std::vector<Member>;

  JsonValue() = default;  // null
  JsonValue(bool b) : kind_(Kind::BOOLEAN), bool_(b) {}
  JsonValue(double d) : kind_(Kind::NUMBER), number_(d) {}
  JsonValue(int v) : JsonValue(static_cast<double>(v)) {}
  JsonValue(unsigned v) : JsonValue(static_cast<double>(v)) {}
  JsonValue(long v) : JsonValue(static_cast<double>(v)) {}
  JsonValue(unsigned long v) : JsonValue(static_cast<double>(v)) {}
  JsonValue(long long v) : JsonValue(static_cast<double>(v)) {}
  JsonValue(unsigned long long v) : JsonValue(static_cast<double>(v)) {}
  JsonValue(const char* s) : kind_(Kind::STRING), string_(s) {}
  JsonValue(std::string s) : kind_(Kind::STRING), string_(std::move(s)) {}

  static JsonValue array() {
    JsonValue v;
    v.kind_ = Kind::ARRAY;
    return v;
  }
  static JsonValue object() {
    JsonValue v;
    v.kind_ = Kind::OBJECT;
    return v;
  }

  /// Parse strict JSON; throws JsonError with "line:col: message" context
  /// (prefixed by `origin`, typically the file name).
  static JsonValue parse(std::string_view text,
                         const std::string& origin = "json");
  /// Parse the whole file at `path`; throws JsonError if unreadable.
  static JsonValue parse_file(const std::string& path);

  Kind kind() const { return kind_; }
  const char* kind_name() const { return kind_name(kind_); }
  static const char* kind_name(Kind k);

  bool is_null() const { return kind_ == Kind::NUL; }
  bool is_bool() const { return kind_ == Kind::BOOLEAN; }
  bool is_number() const { return kind_ == Kind::NUMBER; }
  bool is_string() const { return kind_ == Kind::STRING; }
  bool is_array() const { return kind_ == Kind::ARRAY; }
  bool is_object() const { return kind_ == Kind::OBJECT; }

  // Checked accessors: throw JsonError naming the actual kind on mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;

  // --- array interface -----------------------------------------------------
  void push_back(JsonValue v);
  std::size_t size() const;  // array/object element count
  const JsonValue& operator[](std::size_t i) const;

  // --- object interface ----------------------------------------------------
  /// Pointer to the member value, or nullptr when absent (object only).
  const JsonValue* find(std::string_view key) const;
  /// Insert or overwrite a member, preserving first-insertion order.
  void set(std::string key, JsonValue value);

  /// Serialize.  indent < 0 renders compactly on one line; indent >= 0
  /// pretty-prints with that many spaces per nesting level.
  std::string dump(int indent = -1) const;

  /// Structural equality (object member *order* is ignored).
  bool operator==(const JsonValue& other) const;
  bool operator!=(const JsonValue& other) const { return !(*this == other); }

  /// Render a double the way dump() does: integral values up to 2^53 print
  /// without decimal point or exponent, everything else as shortest %.17g
  /// that still round-trips through strtod.
  static std::string number_to_string(double v);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Kind kind_ = Kind::NUL;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

}  // namespace radsurf
