#include "util/bitmat.hpp"

#include <algorithm>
#include <bit>

namespace radsurf {

namespace {

using Word = BitTable::Word;
constexpr std::size_t kWordBits = BitTable::kWordBits;

// Below this many set bits, scattering a 64×64 block bit by bit beats the
// ~500 word ops of gather + masked-swap + scatter.  Syndrome batches are
// sparse (percent-level detector fire rates), so campaign chunks almost
// always take the sparse path; dense inputs (round-trip tests, worst-case
// noise) still get the O(64 log 64) kernel.
constexpr std::size_t kSparseBlockBits = 72;

// Gather/scatter plumbing shared by the two transpose_bits overloads: the
// source is abstracted as row-word loads so BitVec rows and BitTable rows
// go through one kernel.
template <typename LoadWordFn>
void transpose_blocks(std::size_t in_rows, std::size_t in_cols,
                      const LoadWordFn& load_word, BitTable& out) {
  out.reshape(in_cols, in_rows);
  const std::size_t row_blocks = (in_rows + kWordBits - 1) / kWordBits;
  const std::size_t col_words = (in_cols + kWordBits - 1) / kWordBits;
  Word block[kWordBits];
  for (std::size_t rb = 0; rb < row_blocks; ++rb) {
    const std::size_t r0 = rb * kWordBits;
    const std::size_t gathered =
        std::min(kWordBits, in_rows - r0);  // rows present in this block
    for (std::size_t cw = 0; cw < col_words; ++cw) {
      std::size_t pop = 0;
      for (std::size_t i = 0; i < gathered; ++i) {
        block[i] = load_word(r0 + i, cw);
        pop += static_cast<std::size_t>(std::popcount(block[i]));
      }
      const std::size_t c0 = cw * kWordBits;
      if (pop == 0) continue;  // out is pre-zeroed by reshape()
      if (pop <= kSparseBlockBits) {
        for (std::size_t i = 0; i < gathered; ++i) {
          for_each_set_bit(&block[i], 1, [&](std::size_t j) {
            out.row(c0 + j)[rb] |= Word{1} << i;
          });
        }
        continue;
      }
      for (std::size_t i = gathered; i < kWordBits; ++i) block[i] = 0;
      transpose64x64(block);
      const std::size_t scattered = std::min(kWordBits, in_cols - c0);
      for (std::size_t i = 0; i < scattered; ++i)
        out.row(c0 + i)[rb] = block[i];
    }
  }
}

}  // namespace

void transpose64x64(Word a[64]) {
  // 6 masked swap rounds (LSB-first bit order: bit c of a[r] is element
  // (r, c)): round j exchanges the high-j bits of low rows with the low-j
  // bits of high rows, j = 32, 16, ..., 1.
  Word m = 0x00000000FFFFFFFFULL;
  for (std::size_t j = 32; j; j >>= 1, m ^= m << j) {
    for (std::size_t k = 0; k < 64; k = ((k | j) + 1) & ~j) {
      const Word t = ((a[k] >> j) ^ a[k | j]) & m;
      a[k] ^= t << j;
      a[k | j] ^= t;
    }
  }
}

void transpose_bits(const std::vector<BitVec>& in, BitTable& out) {
  if (in.empty()) {
    out.reshape(0, 0);
    return;
  }
  const std::size_t in_cols = in[0].size();
  for (const BitVec& row : in) {
    RADSURF_ASSERT_MSG(row.size() == in_cols,
                       "transpose_bits: ragged input rows (" << row.size()
                                                             << " vs "
                                                             << in_cols
                                                             << " bits)");
  }
  transpose_blocks(
      in.size(), in_cols,
      [&in](std::size_t r, std::size_t w) { return in[r].word(w); }, out);
}

void transpose_bits(const BitTable& in, BitTable& out) {
  transpose_blocks(
      in.num_rows(), in.num_cols(),
      [&in](std::size_t r, std::size_t w) { return in.row(r)[w]; }, out);
}

}  // namespace radsurf
