#include "util/bitvec.hpp"

#include <bit>

namespace radsurf {

BitVec& BitVec::operator^=(const BitVec& o) {
  check_same_size(o);
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] ^= o.words_[w];
  return *this;
}

BitVec& BitVec::operator&=(const BitVec& o) {
  check_same_size(o);
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] &= o.words_[w];
  return *this;
}

BitVec& BitVec::operator|=(const BitVec& o) {
  check_same_size(o);
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] |= o.words_[w];
  return *this;
}

std::size_t BitVec::popcount() const {
  std::size_t n = 0;
  for (Word w : words_) n += static_cast<std::size_t>(std::popcount(w));
  return n;
}

bool BitVec::none() const {
  for (Word w : words_)
    if (w) return false;
  return true;
}

bool BitVec::and_parity(const BitVec& o) const {
  check_same_size(o);
  Word acc = 0;
  for (std::size_t w = 0; w < words_.size(); ++w)
    acc ^= words_[w] & o.words_[w];
  return std::popcount(acc) & 1u;
}

std::size_t BitVec::first_set() const {
  for (std::size_t w = 0; w < words_.size(); ++w) {
    if (words_[w])
      return w * kWordBits +
             static_cast<std::size_t>(std::countr_zero(words_[w]));
  }
  return num_bits_;
}

void BitVec::assign_xor(const BitVec& a, const BitVec& b) {
  a.check_same_size(b);
  num_bits_ = a.num_bits_;
  words_.resize(a.words_.size());
  for (std::size_t w = 0; w < words_.size(); ++w)
    words_[w] = a.words_[w] ^ b.words_[w];
}

void BitVec::append_set_bits(std::vector<std::uint32_t>& out) const {
  for_each_set_bit(words_.data(), words_.size(), [&out](std::size_t i) {
    out.push_back(static_cast<std::uint32_t>(i));
  });
}

std::vector<std::size_t> BitVec::set_bits() const {
  std::vector<std::size_t> out;
  for_each_set_bit(words_.data(), words_.size(),
                   [&out](std::size_t i) { out.push_back(i); });
  return out;
}

std::string BitVec::to_string() const {
  std::string s;
  s.reserve(num_bits_);
  for (std::size_t i = 0; i < num_bits_; ++i) s.push_back(get(i) ? '1' : '0');
  return s;
}

}  // namespace radsurf
