// Word-level bit-matrix transpose: the batch-major decode boundary.
//
// The frame simulator and the detector layer are *detector-major*: one
// BitVec row per detector, one bit per shot.  The decode side wants the
// opposite orientation — one contiguous syndrome row per shot, one bit per
// detector — so that a shot's whole syndrome is a handful of adjacent
// words (a single-word OR spots zero-syndrome shots, a word-span hash keys
// the decode cache).  BitTable is that shot-major matrix: contiguous
// storage, every row starting on a word boundary with its tail words
// zero-padded.
//
// transpose_bits() flips orientation with the classic 64×64 block
// transpose (Hacker's Delight §7-3, the kernel Stim uses at the same
// boundary): rows are gathered 64 at a time into a word block, the block
// is transposed in 6 masked swap rounds (O(64 log 64) word ops instead of
// 64×64 bit probes), and the result is scattered into the destination
// rows.  Ragged shapes need no edge cases — missing rows gather as zero
// words and out-of-range destination rows are simply not written, so the
// cost of an R×C transpose is ceil(R/64) * ceil(C/64) blocks regardless
// of alignment.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/bitvec.hpp"

namespace radsurf {

/// Dense bit matrix with word-aligned rows (shot-major syndrome storage).
/// Unlike std::vector<BitVec>, all rows share one contiguous allocation,
/// so reshaping between batches reuses capacity and row access is one
/// pointer offset.
class BitTable {
 public:
  using Word = BitVec::Word;
  static constexpr std::size_t kWordBits = BitVec::kWordBits;

  BitTable() = default;
  BitTable(std::size_t num_rows, std::size_t num_cols) {
    reshape(num_rows, num_cols);
  }

  /// Resize to num_rows × num_cols and zero every word, reusing the
  /// allocation when capacity suffices.
  void reshape(std::size_t num_rows, std::size_t num_cols) {
    num_rows_ = num_rows;
    num_cols_ = num_cols;
    words_per_row_ = (num_cols + kWordBits - 1) / kWordBits;
    words_.assign(num_rows_ * words_per_row_, 0);
  }

  std::size_t num_rows() const { return num_rows_; }
  std::size_t num_cols() const { return num_cols_; }
  std::size_t words_per_row() const { return words_per_row_; }

  Word* row(std::size_t r) { return words_.data() + r * words_per_row_; }
  const Word* row(std::size_t r) const {
    return words_.data() + r * words_per_row_;
  }

  bool get(std::size_t r, std::size_t c) const {
    RADSURF_ASSERT(r < num_rows_ && c < num_cols_);
    return (row(r)[c / kWordBits] >> (c % kWordBits)) & 1u;
  }
  void set(std::size_t r, std::size_t c, bool v) {
    RADSURF_ASSERT(r < num_rows_ && c < num_cols_);
    const Word mask = Word{1} << (c % kWordBits);
    if (v)
      row(r)[c / kWordBits] |= mask;
    else
      row(r)[c / kWordBits] &= ~mask;
  }

  /// OR of every word of row r — zero iff the row has no set bit.
  Word row_or(std::size_t r) const {
    const Word* w = row(r);
    Word acc = 0;
    for (std::size_t i = 0; i < words_per_row_; ++i) acc |= w[i];
    return acc;
  }

  bool operator==(const BitTable& o) const = default;

 private:
  std::size_t num_rows_ = 0;
  std::size_t num_cols_ = 0;
  std::size_t words_per_row_ = 0;
  std::vector<Word> words_;
};

/// Transpose one 64×64 bit block in place: block[i] bit j becomes
/// block[j] bit i.  Exposed for the property tests.
void transpose64x64(BitTable::Word block[64]);

/// out(c, r) = in(r, c) for an R×C matrix given as R rows of C bits.
/// `out` is reshaped to C×R.  Rows must all have in_cols bits.
void transpose_bits(const std::vector<BitVec>& in, BitTable& out);

/// Orientation-flipping copy of a BitTable (the round-trip building block:
/// transpose(transpose(M)) == M).
void transpose_bits(const BitTable& in, BitTable& out);

}  // namespace radsurf
