#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace radsurf {

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size() - 1);
}

double stddev(const std::vector<double>& xs) { return std::sqrt(variance(xs)); }

double median(std::vector<double> xs) {
  RADSURF_CHECK_ARG(!xs.empty(), "median of empty sample");
  const std::size_t mid = xs.size() / 2;
  std::nth_element(xs.begin(), xs.begin() + mid, xs.end());
  double hi = xs[mid];
  if (xs.size() % 2 == 1) return hi;
  double lo = *std::max_element(xs.begin(), xs.begin() + mid);
  return 0.5 * (lo + hi);
}

double quantile(std::vector<double> xs, double q) {
  RADSURF_CHECK_ARG(!xs.empty(), "quantile of empty sample");
  RADSURF_CHECK_ARG(q >= 0.0 && q <= 1.0, "quantile q out of [0,1]: " << q);
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  if (lo + 1 >= xs.size()) return xs.back();
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[lo + 1] * frac;
}

namespace {
double wilson_centre(double p, double n, double z) {
  return (p + z * z / (2 * n)) / (1 + z * z / n);
}
double wilson_margin(double p, double n, double z) {
  return (z / (1 + z * z / n)) *
         std::sqrt(p * (1 - p) / n + z * z / (4 * n * n));
}
}  // namespace

double Proportion::wilson_low(double z) const {
  if (trials == 0) return 0.0;
  const double n = static_cast<double>(trials);
  const double p = rate();
  return std::max(0.0, wilson_centre(p, n, z) - wilson_margin(p, n, z));
}

double Proportion::wilson_high(double z) const {
  if (trials == 0) return 1.0;
  const double n = static_cast<double>(trials);
  const double p = rate();
  return std::min(1.0, wilson_centre(p, n, z) + wilson_margin(p, n, z));
}

double two_proportion_z(const Proportion& a, const Proportion& b) {
  if (a.trials == 0 || b.trials == 0) return 0.0;
  const double na = static_cast<double>(a.trials);
  const double nb = static_cast<double>(b.trials);
  const double pooled =
      static_cast<double>(a.successes + b.successes) / (na + nb);
  const double se =
      std::sqrt(pooled * (1.0 - pooled) * (1.0 / na + 1.0 / nb));
  if (se == 0.0) return 0.0;  // both rates identically 0 or 1
  return (a.rate() - b.rate()) / se;
}

void RunningStats::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace radsurf
