// Non-cryptographic hashing helpers shared by the spec fingerprint
// (cli/spec.cpp) and the grid campaign's per-cell seed derivation
// (cli/grid.cpp) — one definition, so checkpoint compatibility and cell
// seeding can never diverge by editing a single copy.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace radsurf {

/// 64-bit FNV-1a over a byte string.
constexpr std::uint64_t fnv1a64(std::string_view text) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

/// splitmix64 finalizer: disperses structured inputs (hashes XORed with
/// small seeds) into uniformly mixed bits.
constexpr std::uint64_t splitmix64_mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// FNV-1a over a span of unsigned integers, splitmix-finalized.  One FNV
/// round only avalanches upward, so short keys would leave the high
/// (shard-selecting) and middle (table-indexing) bits nearly constant
/// without the finalizer — the hash behind every decode-cache key (delta
/// defect lists, raw syndrome words, window-memo defect sets).
template <typename T>
constexpr std::uint64_t fnv1a64_mixed(const T* data, std::size_t size) {
  std::uint64_t h = 1469598103934665603ULL;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= static_cast<std::uint64_t>(data[i]);
    h *= 1099511628211ULL;
  }
  return splitmix64_mix(h);
}

}  // namespace radsurf
