// Non-cryptographic hashing helpers shared by the spec fingerprint
// (cli/spec.cpp) and the grid campaign's per-cell seed derivation
// (cli/grid.cpp) — one definition, so checkpoint compatibility and cell
// seeding can never diverge by editing a single copy.
#pragma once

#include <cstdint>
#include <string_view>

namespace radsurf {

/// 64-bit FNV-1a over a byte string.
constexpr std::uint64_t fnv1a64(std::string_view text) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

/// splitmix64 finalizer: disperses structured inputs (hashes XORed with
/// small seeds) into uniformly mixed bits.
constexpr std::uint64_t splitmix64_mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace radsurf
