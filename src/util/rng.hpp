// xoshiro256++ pseudo-random generator with jumpable parallel streams.
//
// Campaign reproducibility requires that every shot's randomness be a pure
// function of (seed, stream, draw index).  Rng is seeded via SplitMix64 and
// supports jump(), which advances the state by 2^128 draws; worker thread k
// uses a stream obtained by k jumps, so results are independent of the
// OpenMP thread count and schedule (see util/parallel.hpp).
#pragma once

#include <cstdint>
#include <limits>

namespace radsurf {

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed);

  /// Uniform 64-bit draw.
  std::uint64_t next();

  // UniformRandomBitGenerator interface (usable with <random> distributions).
  result_type operator()() { return next(); }
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform integer in [0, n).  n must be > 0.
  std::uint64_t below(std::uint64_t n);
  /// Bernoulli(p) draw.
  bool bernoulli(double p) { return uniform() < p; }

  /// Advance the state by 2^128 steps (disjoint parallel substream).
  void jump();

  /// Copy of this generator advanced by `k` jumps (stream for worker k).
  Rng stream(unsigned k) const;

 private:
  std::uint64_t s_[4];
};

}  // namespace radsurf
