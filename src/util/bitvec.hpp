// Word-packed dynamic bit vector.
//
// BitVec is the workhorse of the stabilizer kernels: tableau rows, Pauli
// strings and per-shot frame rows are all BitVecs, and the hot operations
// (XOR, AND, popcount) work 64 bits at a time.  The length is fixed at
// construction; the trailing partial word is kept zero-padded so whole-word
// loops never need edge masking.
#pragma once

#include <bit>
#include <cstdint>
#include <cstddef>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace radsurf {

class BitVec {
 public:
  using Word = std::uint64_t;
  static constexpr std::size_t kWordBits = 64;

  BitVec() = default;
  explicit BitVec(std::size_t num_bits)
      : num_bits_(num_bits), words_((num_bits + kWordBits - 1) / kWordBits, 0) {}

  std::size_t size() const { return num_bits_; }
  std::size_t num_words() const { return words_.size(); }
  bool empty() const { return num_bits_ == 0; }

  bool get(std::size_t i) const {
    RADSURF_ASSERT(i < num_bits_);
    return (words_[i / kWordBits] >> (i % kWordBits)) & 1u;
  }
  bool operator[](std::size_t i) const { return get(i); }

  void set(std::size_t i, bool v) {
    RADSURF_ASSERT(i < num_bits_);
    const Word mask = Word{1} << (i % kWordBits);
    if (v)
      words_[i / kWordBits] |= mask;
    else
      words_[i / kWordBits] &= ~mask;
  }
  void flip(std::size_t i) {
    RADSURF_ASSERT(i < num_bits_);
    words_[i / kWordBits] ^= Word{1} << (i % kWordBits);
  }

  void clear() {
    for (auto& w : words_) w = 0;
  }

  /// Resize to `num_bits` and zero everything, reusing capacity — the
  /// buffer-recycling primitive of the batch pipeline's per-chunk scratch.
  void reset(std::size_t num_bits) {
    num_bits_ = num_bits;
    words_.assign((num_bits + kWordBits - 1) / kWordBits, 0);
  }

  /// this = a ^ b (resizing to match), without temporaries.
  void assign_xor(const BitVec& a, const BitVec& b);

  /// Append the indices of all set bits to `out` (word-scan, not per-bit).
  void append_set_bits(std::vector<std::uint32_t>& out) const;

  /// XOR-accumulate another vector of identical length.
  BitVec& operator^=(const BitVec& o);
  BitVec& operator&=(const BitVec& o);
  BitVec& operator|=(const BitVec& o);

  /// Number of set bits.
  std::size_t popcount() const;
  /// True iff no bit is set.
  bool none() const;
  /// True iff at least one bit is set.
  bool any() const { return !none(); }
  /// Parity (popcount mod 2) of the whole vector.
  bool parity() const { return popcount() & 1u; }
  /// Parity of (*this AND other) — the symplectic building block.
  bool and_parity(const BitVec& o) const;

  /// Index of the first set bit, or size() if none.
  std::size_t first_set() const;
  /// Indices of all set bits.
  std::vector<std::size_t> set_bits() const;

  void swap(BitVec& o) noexcept {
    std::swap(num_bits_, o.num_bits_);
    words_.swap(o.words_);
  }

  bool operator==(const BitVec& o) const = default;

  /// Raw word access for bit-parallel kernels.
  Word* words() { return words_.data(); }
  const Word* words() const { return words_.data(); }
  Word word(std::size_t w) const { return words_[w]; }

  /// "0101..." MSB-last (index 0 first) rendering, for tests and debugging.
  std::string to_string() const;

 private:
  void check_same_size(const BitVec& o) const {
    RADSURF_ASSERT_MSG(num_bits_ == o.num_bits_,
                       "BitVec size mismatch: " << num_bits_
                                                << " vs " << o.num_bits_);
  }

  std::size_t num_bits_ = 0;
  std::vector<Word> words_;
};

/// Invoke `body(bit_index)` for every set bit of a zero-padded word span,
/// lowest index first — the one scan idiom behind every sparse consumer
/// of packed bits (defect extraction, noise-mask application, transpose
/// scatter).
template <typename Fn>
inline void for_each_set_bit(const BitVec::Word* words,
                             std::size_t num_words, const Fn& body) {
  for (std::size_t w = 0; w < num_words; ++w) {
    BitVec::Word x = words[w];
    while (x) {
      body(w * BitVec::kWordBits +
           static_cast<std::size_t>(std::countr_zero(x)));
      x &= x - 1;
    }
  }
}

}  // namespace radsurf
