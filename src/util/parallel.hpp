// OpenMP-backed shot parallelism with deterministic RNG streams.
//
// parallel_chunks splits [0, n) into fixed chunks; chunk c always uses RNG
// stream c (base seed jumped c times), so the aggregate result is a pure
// function of the seed, independent of thread count and schedule — the
// property the campaign determinism tests pin down.  Falls back to serial
// execution when OpenMP is unavailable.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "util/rng.hpp"

namespace radsurf {

/// Number of worker threads OpenMP would use (1 when compiled without).
int hardware_threads();

struct ChunkRange {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t index = 0;  // chunk index == RNG stream index
};

/// Split [0, n) into chunks of at most `chunk_size`, run `body(range, rng)`
/// for each (possibly in parallel), where rng is the chunk's private stream.
/// Exceptions thrown by chunks are rethrown on the calling thread.
void parallel_chunks(std::size_t n, std::size_t chunk_size, const Rng& base,
                     const std::function<void(const ChunkRange&, Rng&)>& body);

/// Nested-parallelism guard: while one is alive on a thread, every
/// parallel_chunks call from that thread runs its chunks serially.  The
/// chunk decomposition and per-chunk RNG streams are unchanged, so results
/// stay bit-identical — only the scheduling collapses.  The grid
/// executor's `--jobs` cell workers install one each, so cell-level
/// threads and the engines' OpenMP shot teams never multiply into
/// jobs × hardware_threads() runnable threads.  Scopes nest.
class SerialChunksScope {
 public:
  SerialChunksScope();
  ~SerialChunksScope();
  SerialChunksScope(const SerialChunksScope&) = delete;
  SerialChunksScope& operator=(const SerialChunksScope&) = delete;
};

/// True while a SerialChunksScope is alive on the calling thread.
bool serial_chunks_active();

}  // namespace radsurf
