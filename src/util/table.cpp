#include "util/table.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace radsurf {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  RADSURF_CHECK_ARG(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  RADSURF_CHECK_ARG(!headers_.empty(), "cannot add rows to an empty table");
  RADSURF_CHECK_ARG(cells.size() == headers_.size(),
                    "row arity " << cells.size() << " != header arity "
                                 << headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::fmt(double v, int precision) {
  std::ostringstream ss;
  ss << std::setprecision(precision) << std::fixed << v;
  return ss.str();
}

std::string Table::pct(double v, int precision) {
  std::ostringstream ss;
  ss << std::setprecision(precision) << std::fixed << (v * 100.0) << "%";
  return ss.str();
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream ss;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      ss << "| " << std::setw(static_cast<int>(widths[c])) << std::left
         << row[c] << ' ';
    }
    ss << "|\n";
  };
  auto emit_rule = [&] {
    for (std::size_t c = 0; c < widths.size(); ++c)
      ss << '+' << std::string(widths[c] + 2, '-');
    ss << "+\n";
  };
  emit_rule();
  emit_row(headers_);
  emit_rule();
  for (const auto& row : rows_) emit_row(row);
  emit_rule();
  return ss.str();
}

namespace {
std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

std::string Table::to_csv() const {
  std::ostringstream ss;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) ss << ',';
      ss << csv_escape(row[c]);
    }
    ss << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return ss.str();
}

std::ostream& operator<<(std::ostream& os, const Table& t) {
  return os << t.to_string();
}

}  // namespace radsurf
