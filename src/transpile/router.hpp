// SWAP-insertion routing.
//
// Instructions are processed in program order; whenever a two-qubit gate's
// operands are not adjacent on the architecture, SWAPs move the first
// operand along a shortest path until they are.  The logical->physical
// mapping evolves accordingly; annotations pass through untouched (they
// reference measurement records, which routing preserves in order).
#pragma once

#include <cstdint>
#include <vector>

#include "arch/graph.hpp"
#include "circuit/circuit.hpp"

namespace radsurf {

struct RoutingResult {
  Circuit circuit;                         // over physical qubit indices
  std::vector<std::uint32_t> final_layout; // logical -> physical at the end
  std::size_t swap_count = 0;
};

RoutingResult route(const Circuit& circuit, const Graph& arch,
                    const std::vector<std::uint32_t>& initial_layout);

}  // namespace radsurf
