// Initial layout selection (logical -> physical qubit placement).
//
// TRIVIAL maps logical i to physical i.  DEGREE_GREEDY approximates
// Qiskit's dense-layout default: the most-interacting logical qubit is
// seeded on the highest-degree physical qubit, then each next logical qubit
// (most 2q-gate interactions with already-placed ones first) is placed on
// the free physical qubit closest to its placed partners.
#pragma once

#include <cstdint>
#include <vector>

#include "arch/graph.hpp"
#include "circuit/circuit.hpp"

namespace radsurf {

enum class LayoutStrategy {
  TRIVIAL,
  DEGREE_GREEDY,
  /// Order logical qubits along a DFS of the maximum spanning tree of the
  /// interaction graph (heavy, repeated interactions first) and map them
  /// onto a BFS ordering of the architecture.  Near-optimal for chain-like
  /// codes such as the repetition code on a line (paper Sec. V-D).
  INTERACTION_CHAIN,
  /// Try all strategies, route each, keep the one with fewest SWAPs
  /// (mirrors a transpiler's "default optimisation" search).
  AUTO,
};

/// Logical interaction graph: weight[a][b] = number of two-qubit gates
/// between logical qubits a and b.
std::vector<std::vector<std::size_t>> interaction_weights(
    const Circuit& circuit);

/// Compute an initial layout; result[logical] = physical.
/// Throws TranspileError when the architecture is too small.
std::vector<std::uint32_t> choose_layout(const Circuit& circuit,
                                         const Graph& arch,
                                         LayoutStrategy strategy);

}  // namespace radsurf
