#include "transpile/transpiler.hpp"

#include <algorithm>

#include "circuit/dag.hpp"
#include "transpile/router.hpp"

namespace radsurf {

std::vector<std::uint32_t> TranspileResult::touched_physical_qubits() const {
  std::vector<char> seen(circuit.num_qubits(), 0);
  for (const Instruction& ins : circuit.instructions())
    for (std::uint32_t q : ins.targets) seen[q] = 1;
  std::vector<std::uint32_t> out;
  for (std::uint32_t q = 0; q < seen.size(); ++q)
    if (seen[q]) out.push_back(q);
  return out;
}

TranspileResult transpile(const Circuit& circuit, const Graph& arch,
                          const TranspileOptions& options) {
  // AUTO mirrors a production transpiler's search: route under each layout
  // strategy and keep the cheapest result.
  std::vector<LayoutStrategy> strategies;
  if (options.layout == LayoutStrategy::AUTO) {
    strategies = {LayoutStrategy::DEGREE_GREEDY,
                  LayoutStrategy::INTERACTION_CHAIN};
  } else {
    strategies = {options.layout};
  }

  TranspileResult result;
  bool have_result = false;
  for (LayoutStrategy strategy : strategies) {
    std::vector<std::uint32_t> layout = choose_layout(circuit, arch, strategy);
    RoutingResult routed = route(circuit, arch, layout);
    if (have_result && routed.swap_count >= result.swap_count) continue;
    result.initial_layout = std::move(layout);
    result.swap_count = routed.swap_count;
    result.final_layout = std::move(routed.final_layout);
    result.circuit = std::move(routed.circuit);
    have_result = true;
  }
  result.ops_before = circuit.num_operations();
  result.depth_before = CircuitDag(circuit).depth();
  result.ops_after = result.circuit.num_operations();
  result.depth_after = CircuitDag(result.circuit).depth();
  return result;
}

}  // namespace radsurf
