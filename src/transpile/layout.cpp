#include "transpile/layout.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "util/error.hpp"

namespace radsurf {

std::vector<std::vector<std::size_t>> interaction_weights(
    const Circuit& circuit) {
  const std::size_t n = circuit.num_qubits();
  std::vector<std::vector<std::size_t>> w(n, std::vector<std::size_t>(n, 0));
  for (const Instruction& ins : circuit.instructions()) {
    const GateInfo& info = gate_info(ins.gate);
    if (!info.is_unitary || !info.is_two_qubit) continue;
    for (std::size_t i = 0; i + 1 < ins.targets.size(); i += 2) {
      const auto a = ins.targets[i];
      const auto b = ins.targets[i + 1];
      ++w[a][b];
      ++w[b][a];
    }
  }
  return w;
}

namespace {

// DFS order of the maximum spanning tree of the interaction graph, started
// from a leaf, mapped onto a BFS order of the architecture from a
// minimum-degree node.
std::vector<std::uint32_t> interaction_chain_layout(const Circuit& circuit,
                                                    const Graph& arch) {
  const std::size_t nl = circuit.num_qubits();
  const auto weights = interaction_weights(circuit);

  // Maximum spanning forest via Prim with heaviest-edge preference.
  std::vector<std::vector<std::uint32_t>> tree(nl);
  std::vector<char> in_tree(nl, 0);
  for (std::uint32_t seed = 0; seed < nl; ++seed) {
    if (in_tree[seed]) continue;
    in_tree[seed] = 1;
    std::vector<std::uint32_t> members{seed};
    for (;;) {
      std::size_t best_w = 0;
      std::uint32_t best_u = 0, best_v = 0;
      for (std::uint32_t u : members) {
        for (std::uint32_t v = 0; v < nl; ++v) {
          if (!in_tree[v] && weights[u][v] > best_w) {
            best_w = weights[u][v];
            best_u = u;
            best_v = v;
          }
        }
      }
      if (best_w == 0) break;
      in_tree[best_v] = 1;
      members.push_back(best_v);
      tree[best_u].push_back(best_v);
      tree[best_v].push_back(best_u);
    }
  }

  // DFS from a tree leaf (prefer degree-1 vertices) gives a chain-like
  // logical order.
  std::vector<std::uint32_t> logical_order;
  std::vector<char> visited(nl, 0);
  auto dfs = [&](std::uint32_t start) {
    std::vector<std::uint32_t> stack{start};
    while (!stack.empty()) {
      const std::uint32_t v = stack.back();
      stack.pop_back();
      if (visited[v]) continue;
      visited[v] = 1;
      logical_order.push_back(v);
      // Visit lighter branches last so the heaviest path stays contiguous.
      std::vector<std::uint32_t> nbrs = tree[v];
      std::sort(nbrs.begin(), nbrs.end(),
                [&](std::uint32_t a, std::uint32_t b) {
                  return weights[v][a] < weights[v][b];
                });
      for (std::uint32_t w : nbrs)
        if (!visited[w]) stack.push_back(w);
    }
  };
  for (std::uint32_t v = 0; v < nl; ++v)
    if (!visited[v] && tree[v].size() <= 1) dfs(v);
  for (std::uint32_t v = 0; v < nl; ++v)
    if (!visited[v]) dfs(v);

  // BFS order of the architecture from a minimum-degree node.
  std::uint32_t start = 0;
  for (std::uint32_t v = 1; v < arch.num_nodes(); ++v)
    if (arch.degree(v) < arch.degree(start)) start = v;
  std::vector<std::uint32_t> phys_order;
  std::vector<char> seen(arch.num_nodes(), 0);
  std::vector<std::uint32_t> queue{start};
  seen[start] = 1;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const std::uint32_t v = queue[head];
    phys_order.push_back(v);
    for (std::uint32_t w : arch.neighbors(v)) {
      if (!seen[w]) {
        seen[w] = 1;
        queue.push_back(w);
      }
    }
  }
  for (std::uint32_t v = 0; v < arch.num_nodes(); ++v)
    if (!seen[v]) phys_order.push_back(v);

  std::vector<std::uint32_t> layout(nl);
  for (std::size_t i = 0; i < nl; ++i)
    layout[logical_order[i]] = phys_order[i];
  return layout;
}

}  // namespace

std::vector<std::uint32_t> choose_layout(const Circuit& circuit,
                                         const Graph& arch,
                                         LayoutStrategy strategy) {
  const std::size_t nl = circuit.num_qubits();
  const std::size_t np = arch.num_nodes();
  if (nl > np) {
    throw TranspileError("circuit needs " + std::to_string(nl) +
                         " qubits but architecture has " + std::to_string(np));
  }
  RADSURF_CHECK_ARG(strategy != LayoutStrategy::AUTO,
                    "AUTO is resolved by transpile(), not choose_layout()");

  if (strategy == LayoutStrategy::TRIVIAL) {
    std::vector<std::uint32_t> layout(nl);
    std::iota(layout.begin(), layout.end(), 0);
    return layout;
  }
  if (strategy == LayoutStrategy::INTERACTION_CHAIN)
    return interaction_chain_layout(circuit, arch);

  // DEGREE_GREEDY.
  const auto weights = interaction_weights(circuit);
  const auto dist = arch.all_pairs_distances();

  std::vector<std::uint32_t> layout(nl,
                                    std::numeric_limits<std::uint32_t>::max());
  std::vector<char> phys_used(np, 0);
  std::vector<char> placed(nl, 0);

  // Total interaction per logical qubit.
  std::vector<std::size_t> total(nl, 0);
  for (std::size_t a = 0; a < nl; ++a)
    total[a] = std::accumulate(weights[a].begin(), weights[a].end(),
                               std::size_t{0});

  // Seed: busiest logical qubit on the highest-degree physical qubit.
  const auto seed_logical = static_cast<std::uint32_t>(std::distance(
      total.begin(), std::max_element(total.begin(), total.end())));
  std::uint32_t seed_phys = 0;
  for (std::uint32_t v = 1; v < np; ++v)
    if (arch.degree(v) > arch.degree(seed_phys)) seed_phys = v;
  layout[seed_logical] = seed_phys;
  placed[seed_logical] = 1;
  phys_used[seed_phys] = 1;

  for (std::size_t step = 1; step < nl; ++step) {
    // Next logical qubit: strongest connection to the placed set (ties by
    // total interaction, then index, for determinism).
    std::uint32_t best_l = std::numeric_limits<std::uint32_t>::max();
    std::size_t best_conn = 0;
    for (std::uint32_t a = 0; a < nl; ++a) {
      if (placed[a]) continue;
      std::size_t conn = 0;
      for (std::uint32_t b = 0; b < nl; ++b)
        if (placed[b]) conn += weights[a][b];
      if (best_l == std::numeric_limits<std::uint32_t>::max() ||
          conn > best_conn ||
          (conn == best_conn && total[a] > total[best_l])) {
        best_l = a;
        best_conn = conn;
      }
    }
    // Place on the free physical qubit minimising the weighted distance to
    // placed partners (falls back to any free qubit when unconnected).
    std::uint32_t best_p = std::numeric_limits<std::uint32_t>::max();
    double best_cost = std::numeric_limits<double>::infinity();
    for (std::uint32_t p = 0; p < np; ++p) {
      if (phys_used[p]) continue;
      double cost = 0;
      for (std::uint32_t b = 0; b < nl; ++b) {
        if (!placed[b] || weights[best_l][b] == 0) continue;
        const std::size_t d = dist[p][layout[b]];
        if (d == std::numeric_limits<std::size_t>::max()) {
          cost = std::numeric_limits<double>::infinity();
          break;
        }
        cost += static_cast<double>(weights[best_l][b]) *
                static_cast<double>(d);
      }
      if (cost < best_cost) {
        best_cost = cost;
        best_p = p;
      }
    }
    if (best_p == std::numeric_limits<std::uint32_t>::max()) {
      throw TranspileError(
          "no reachable free physical qubit (disconnected architecture?)");
    }
    layout[best_l] = best_p;
    placed[best_l] = 1;
    phys_used[best_p] = 1;
  }
  return layout;
}

}  // namespace radsurf
