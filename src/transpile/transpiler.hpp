// Transpilation pipeline: layout -> routing -> statistics.
//
// Matches the paper's workflow (Sec. V-D): surface-code circuits are mapped
// onto each architecture graph; poorly-connected architectures pay a SWAP
// overhead that both lengthens the circuit and widens the radiation blast
// radius (Obs. VIII).
#pragma once

#include <cstdint>
#include <vector>

#include "arch/graph.hpp"
#include "circuit/circuit.hpp"
#include "transpile/layout.hpp"

namespace radsurf {

struct TranspileOptions {
  LayoutStrategy layout = LayoutStrategy::AUTO;
};

struct TranspileResult {
  Circuit circuit;  // over physical qubit indices
  std::vector<std::uint32_t> initial_layout;  // logical -> physical
  std::vector<std::uint32_t> final_layout;
  std::size_t swap_count = 0;
  std::size_t ops_before = 0;
  std::size_t ops_after = 0;
  std::size_t depth_before = 0;
  std::size_t depth_after = 0;

  /// Physical qubits that host a logical qubit at any point (initial
  /// placement; SWAP targets are added by used_physical_qubits()).
  std::vector<std::uint32_t> touched_physical_qubits() const;
};

TranspileResult transpile(const Circuit& circuit, const Graph& arch,
                          const TranspileOptions& options = {});

}  // namespace radsurf
