#include "transpile/router.hpp"

#include <limits>

#include "util/error.hpp"

namespace radsurf {

namespace {

// Mutable mapping state shared by the router and its lookahead copies.
struct Mapping {
  std::vector<std::uint32_t> l2p;
  std::vector<std::uint32_t> p2l;

  void swap_physical(std::uint32_t pa, std::uint32_t pb) {
    const std::uint32_t la = p2l[pa];
    const std::uint32_t lb = p2l[pb];
    p2l[pa] = lb;
    p2l[pb] = la;
    if (la != std::numeric_limits<std::uint32_t>::max()) l2p[la] = pb;
    if (lb != std::numeric_limits<std::uint32_t>::max()) l2p[lb] = pa;
  }
};

}  // namespace

RoutingResult route(const Circuit& circuit, const Graph& arch,
                    const std::vector<std::uint32_t>& initial_layout) {
  const std::size_t nl = circuit.num_qubits();
  RADSURF_CHECK_ARG(initial_layout.size() >= nl,
                    "layout covers " << initial_layout.size()
                                     << " qubits, circuit needs " << nl);

  Mapping map;
  map.l2p.assign(initial_layout.begin(),
                 initial_layout.begin() + static_cast<std::ptrdiff_t>(nl));
  map.p2l.assign(arch.num_nodes(),
                 std::numeric_limits<std::uint32_t>::max());
  for (std::uint32_t l = 0; l < nl; ++l) {
    RADSURF_CHECK_ARG(map.l2p[l] < arch.num_nodes(),
                      "layout places qubit " << l << " outside architecture");
    RADSURF_CHECK_ARG(
        map.p2l[map.l2p[l]] == std::numeric_limits<std::uint32_t>::max(),
        "layout maps two logical qubits to physical " << map.l2p[l]);
    map.p2l[map.l2p[l]] = l;
  }

  // Flatten the sequence of two-qubit operations for the 1-gate lookahead.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> two_qubit_ops;
  for (const Instruction& ins : circuit.instructions()) {
    const GateInfo& info = gate_info(ins.gate);
    if (!info.is_annotation && info.is_two_qubit && info.is_unitary) {
      for (std::size_t i = 0; i + 1 < ins.targets.size(); i += 2)
        two_qubit_ops.emplace_back(ins.targets[i], ins.targets[i + 1]);
    }
  }
  const auto all_dist = arch.all_pairs_distances();

  RoutingResult out;
  out.circuit = Circuit(arch.num_nodes());

  auto emit_swap = [&](std::uint32_t pa, std::uint32_t pb) {
    out.circuit.append(Gate::SWAP, {pa, pb});
    ++out.swap_count;
    map.swap_physical(pa, pb);
  };

  std::size_t op_cursor = 0;  // index into two_qubit_ops
  for (const Instruction& ins : circuit.instructions()) {
    const GateInfo& info = gate_info(ins.gate);
    if (info.is_annotation) {
      out.circuit.append_annotation(ins.gate, ins.lookbacks, ins.args);
      continue;
    }
    if (!(info.is_two_qubit && info.is_unitary)) {
      std::vector<std::uint32_t> phys;
      phys.reserve(ins.targets.size());
      for (std::uint32_t q : ins.targets) phys.push_back(map.l2p[q]);
      out.circuit.append(ins.gate, std::move(phys), ins.args);
      continue;
    }
    for (std::size_t i = 0; i + 1 < ins.targets.size(); i += 2) {
      const std::uint32_t la = ins.targets[i];
      const std::uint32_t lb = ins.targets[i + 1];
      ++op_cursor;
      if (!arch.has_edge(map.l2p[la], map.l2p[lb])) {
        const auto path = arch.shortest_path(map.l2p[la], map.l2p[lb]);
        if (path.empty()) {
          throw TranspileError("qubits " + std::to_string(la) + " and " +
                               std::to_string(lb) +
                               " are not connected on the architecture");
        }
        // Two plans of equal cost: walk operand a forward along the path,
        // or operand b backward.  Pick by 1-gate lookahead: whichever
        // leaves the next two-qubit pair closer.
        bool move_a = true;
        if (op_cursor < two_qubit_ops.size() && path.size() > 2) {
          const auto [na, nb] = two_qubit_ops[op_cursor];
          Mapping trial_a = map;
          for (std::size_t s = 0; s + 2 < path.size(); ++s)
            trial_a.swap_physical(path[s], path[s + 1]);
          Mapping trial_b = map;
          for (std::size_t s = path.size() - 1; s >= 2; --s)
            trial_b.swap_physical(path[s], path[s - 1]);
          const std::size_t da = all_dist[trial_a.l2p[na]][trial_a.l2p[nb]];
          const std::size_t db = all_dist[trial_b.l2p[na]][trial_b.l2p[nb]];
          move_a = da <= db;
        }
        if (move_a) {
          for (std::size_t s = 0; s + 2 < path.size(); ++s)
            emit_swap(path[s], path[s + 1]);
        } else {
          for (std::size_t s = path.size() - 1; s >= 2; --s)
            emit_swap(path[s], path[s - 1]);
        }
      }
      RADSURF_ASSERT(arch.has_edge(map.l2p[la], map.l2p[lb]));
      out.circuit.append(ins.gate, {map.l2p[la], map.l2p[lb]}, ins.args);
    }
  }

  out.final_layout = std::move(map.l2p);
  return out;
}

}  // namespace radsurf
