#include "codes/repetition.hpp"

#include "util/error.hpp"

namespace radsurf {

RepetitionCode::RepetitionCode(int d, RepetitionFlavor flavor)
    : d_(d), flavor_(flavor) {
  RADSURF_CHECK_ARG(d >= 3 && d % 2 == 1,
                    "repetition distance must be odd and >= 3, got " << d);
  roles_.assign(num_qubits(), QubitRole::DATA);
  for (int i = 0; i < d_ - 1; ++i)
    roles_[stabilizer_qubit(i)] = QubitRole::STABILIZER;
  roles_[ancilla_qubit()] = QubitRole::ANCILLA;
}

std::string RepetitionCode::name() const {
  return (flavor_ == RepetitionFlavor::BIT_FLIP ? "repetition-bitflip-("
                                                : "repetition-phaseflip-(") +
         std::to_string(distance().first) + "," +
         std::to_string(distance().second) + ")";
}

std::pair<int, int> RepetitionCode::distance() const {
  return flavor_ == RepetitionFlavor::BIT_FLIP ? std::pair{d_, 1}
                                               : std::pair{1, d_};
}

std::vector<std::uint32_t> RepetitionCode::logical_op_support() const {
  std::vector<std::uint32_t> out;
  for (int i = 0; i < d_; ++i) out.push_back(data_qubit(i));
  return out;
}

void RepetitionCode::stabilisation_round(Circuit& c) const {
  const int ns = d_ - 1;
  if (flavor_ == RepetitionFlavor::BIT_FLIP) {
    // ZZ stabilizers: data control, syndrome target (Fig. 2 chain).
    for (int i = 0; i < ns; ++i) {
      c.cx(data_qubit(i), stabilizer_qubit(i));
      c.cx(data_qubit(i + 1), stabilizer_qubit(i));
    }
  } else {
    // XX stabilizers: syndrome in the X basis controls the data.
    for (int i = 0; i < ns; ++i) {
      c.h(stabilizer_qubit(i));
      c.cx(stabilizer_qubit(i), data_qubit(i));
      c.cx(stabilizer_qubit(i), data_qubit(i + 1));
      c.h(stabilizer_qubit(i));
    }
  }
  for (int i = 0; i < ns; ++i) c.mr(stabilizer_qubit(i));
}

Circuit RepetitionCode::build(std::size_t rounds) const {
  RADSURF_CHECK_ARG(rounds >= 2, "need at least two stabilisation rounds");
  const int ns = d_ - 1;
  Circuit c(num_qubits());

  // Initialisation: |0...0>, plus Hadamards for the |+...+> GHZ basis.
  for (std::uint32_t q = 0; q < num_qubits(); ++q) c.r(q);
  if (flavor_ == RepetitionFlavor::PHASE_FLIP)
    for (int i = 0; i < d_; ++i) c.h(data_qubit(i));

  // Round 1: outcomes are deterministic (the initial state is stabilised),
  // so each measurement is its own detector.  Every stabilisation round ends
  // with a TICK — the round marker the timeline noise schedule and the
  // sliding-window decoder key on (see noise/timeline.hpp).
  stabilisation_round(c);
  for (int i = 0; i < ns; ++i)
    c.detector({static_cast<std::uint32_t>(ns - i)});
  c.tick();

  // Transversal logical X (paper Fig. 2, green block).
  for (int i = 0; i < d_; ++i) {
    if (flavor_ == RepetitionFlavor::BIT_FLIP)
      c.x(data_qubit(i));
    else
      c.z(data_qubit(i));
  }

  // Rounds 2..R: detectors compare consecutive rounds.
  for (std::size_t round = 1; round < rounds; ++round) {
    stabilisation_round(c);
    for (int i = 0; i < ns; ++i) {
      c.detector({static_cast<std::uint32_t>(ns - i),
                  static_cast<std::uint32_t>(2 * ns - i)});
    }
    c.tick();
  }

  // Ancilla parity readout of the logical-Z representative (all data),
  // as in the paper's Fig. 2.
  if (flavor_ == RepetitionFlavor::PHASE_FLIP)
    for (int i = 0; i < d_; ++i) c.h(data_qubit(i));
  for (int i = 0; i < d_; ++i) c.cx(data_qubit(i), ancilla_qubit());
  c.m(ancilla_qubit());
  c.observable_include(0, {1});

  // Transversal data measurement with stabilizer reconstruction: the final
  // data record re-derives every stabilizer one last time, so no single
  // late error is invisible to the decoder (without this, the intrinsic
  // noise model alone would produce output errors, contradicting the
  // paper's Sec. IV-C).  The phase-flip basis change happened above.
  for (int i = 0; i < d_; ++i) c.m(data_qubit(i));
  const auto du = static_cast<std::uint32_t>(d_);
  for (int i = 0; i < ns; ++i) {
    // Stabilizer i ~ data (i, i+1); its last in-round outcome sits before
    // the ancilla measurement and the d data measurements.
    c.detector({du - static_cast<std::uint32_t>(i),
                du - static_cast<std::uint32_t>(i) - 1,
                du + 1 + static_cast<std::uint32_t>(ns - i)});
  }
  // Consistency of the ancilla parity with the data it accumulated: makes
  // readout-ancilla faults matchable instead of silent.
  std::vector<std::uint32_t> consistency{du + 1};
  for (int i = 0; i < d_; ++i)
    consistency.push_back(du - static_cast<std::uint32_t>(i));
  c.detector(std::move(consistency));
  return c;
}

}  // namespace radsurf
