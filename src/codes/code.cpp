#include "codes/code.hpp"

#include "codes/repetition.hpp"
#include "codes/xxzz.hpp"
#include "util/error.hpp"

namespace radsurf {

std::string role_name(QubitRole role) {
  switch (role) {
    case QubitRole::DATA: return "data";
    case QubitRole::STABILIZER: return "stabilizer";
    case QubitRole::ANCILLA: return "ancilla";
  }
  return "?";
}

std::vector<std::uint32_t> SurfaceCode::qubits_with_role(
    QubitRole role) const {
  std::vector<std::uint32_t> out;
  const auto& rs = roles();
  for (std::uint32_t q = 0; q < rs.size(); ++q)
    if (rs[q] == role) out.push_back(q);
  return out;
}

std::unique_ptr<SurfaceCode> make_code(CodeFamily family, int dz, int dx) {
  switch (family) {
    case CodeFamily::REPETITION: {
      RADSURF_CHECK_ARG((dz == 1) != (dx == 1),
                        "repetition code needs distance (d,1) or (1,d), got ("
                            << dz << "," << dx << ")");
      if (dx == 1)
        return std::make_unique<RepetitionCode>(dz,
                                                RepetitionFlavor::BIT_FLIP);
      return std::make_unique<RepetitionCode>(dx,
                                              RepetitionFlavor::PHASE_FLIP);
    }
    case CodeFamily::XXZZ:
      return std::make_unique<XXZZCode>(dz, dx);
  }
  throw InvalidArgument("unknown code family");
}

}  // namespace radsurf
