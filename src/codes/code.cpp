#include "codes/code.hpp"

#include "circuit/gate.hpp"
#include "codes/repetition.hpp"
#include "codes/rotated.hpp"
#include "codes/xxzz.hpp"
#include "util/error.hpp"

namespace radsurf {

std::string role_name(QubitRole role) {
  switch (role) {
    case QubitRole::DATA: return "data";
    case QubitRole::STABILIZER: return "stabilizer";
    case QubitRole::ANCILLA: return "ancilla";
  }
  return "?";
}

std::vector<std::uint32_t> SurfaceCode::qubits_with_role(
    QubitRole role) const {
  std::vector<std::uint32_t> out;
  const auto& rs = roles();
  for (std::uint32_t q = 0; q < rs.size(); ++q)
    if (rs[q] == role) out.push_back(q);
  return out;
}

std::unique_ptr<SurfaceCode> make_code(CodeFamily family, int dz, int dx) {
  switch (family) {
    case CodeFamily::REPETITION: {
      RADSURF_CHECK_ARG((dz == 1) != (dx == 1),
                        "repetition code needs distance (d,1) or (1,d), got ("
                            << dz << "," << dx << ")");
      if (dx == 1)
        return std::make_unique<RepetitionCode>(dz,
                                                RepetitionFlavor::BIT_FLIP);
      return std::make_unique<RepetitionCode>(dx,
                                              RepetitionFlavor::PHASE_FLIP);
    }
    case CodeFamily::XXZZ:
      return std::make_unique<XXZZCode>(dz, dx);
    case CodeFamily::ROTATED_MEMORY_X:
    case CodeFamily::ROTATED_MEMORY_Z: {
      RADSURF_CHECK_ARG(dz == dx, "rotated code needs a square distance, got ("
                                      << dz << "," << dx << ")");
      const auto memory = family == CodeFamily::ROTATED_MEMORY_X
                              ? RotatedMemory::X
                              : RotatedMemory::Z;
      return std::make_unique<RotatedCode>(dz, memory);
    }
  }
  throw InvalidArgument("unknown code family");
}

Graph native_graph_for(const SurfaceCode& code) {
  Graph g(code.num_qubits());
  const Circuit circuit = code.build(2);
  for (const Instruction& instr : circuit.instructions()) {
    if (gate_info(instr.gate).targets_per_op != 2) continue;
    for (std::size_t i = 0; i + 1 < instr.targets.size(); i += 2)
      g.add_edge(instr.targets[i], instr.targets[i + 1]);
  }
  return g;
}

}  // namespace radsurf
