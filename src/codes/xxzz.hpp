// XXZZ rotated surface code (paper Sec. IV-B, Fig. 1).
//
// Data qubits form a dZ x dX grid (dZ rows, dX columns).  Stabilizer
// plaquettes checkerboard the faces: X-type faces adjoin the top/bottom
// boundaries, Z-type faces the left/right boundaries, each boundary face
// having weight 2 (the standard rotated-code layout the qtcodes XXZZ class
// implements).  With n = dZ*dX data qubits there are (n-1)/2 Z-plaquettes
// and (n-1)/2 X-plaquettes plus a readout ancilla — 2*dZ*dX qubits total,
// matching the paper.  The logical X is a column of X's (weight dZ, so dZ
// is the bit-flip distance); the logical Z is a row of Z's (weight dX),
// and the readout ancilla collects the logical-Z parity of row 0.
//
// Degenerate distances (dZ = 1 or dX = 1) collapse to the repetition-code
// structure, exactly as the paper's Fig. 6b sizes indicate.
#pragma once

#include "codes/code.hpp"

namespace radsurf {

class XXZZCode final : public SurfaceCode {
 public:
  /// One face of the rotated lattice.
  struct Plaquette {
    bool x_type = false;
    std::vector<std::uint32_t> data;  // supporting data qubits (2 or 4)
    std::uint32_t syndrome = 0;       // measuring qubit
  };

  XXZZCode(int dz, int dx);

  std::string name() const override;
  std::pair<int, int> distance() const override { return {dz_, dx_}; }
  std::size_t num_qubits() const override {
    return 2 * static_cast<std::size_t>(dz_) * static_cast<std::size_t>(dx_);
  }
  const std::vector<QubitRole>& roles() const override { return roles_; }
  Circuit build(std::size_t rounds = 2) const override;
  std::vector<std::uint32_t> logical_op_support() const override;

  std::uint32_t data_qubit(int r, int c) const {
    return static_cast<std::uint32_t>(r * dx_ + c);
  }
  std::uint32_t ancilla_qubit() const {
    return static_cast<std::uint32_t>(num_qubits() - 1);
  }
  const std::vector<Plaquette>& plaquettes() const { return plaquettes_; }
  std::size_t num_z_plaquettes() const { return nz_; }
  std::size_t num_x_plaquettes() const { return nx_; }

  /// Support of the logical-Z representative read out at the end (row 0).
  std::vector<std::uint32_t> logical_z_support() const;

 private:
  void stabilisation_round(Circuit& c) const;

  int dz_;  // rows    (bit-flip distance)
  int dx_;  // columns (phase-flip distance)
  std::size_t nz_ = 0;
  std::size_t nx_ = 0;
  std::vector<Plaquette> plaquettes_;  // Z-type first, then X-type
  std::vector<QubitRole> roles_;
};

}  // namespace radsurf
