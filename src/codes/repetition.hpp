// Quantum repetition code (paper Sec. IV-A, Fig. 2).
//
// d data qubits, d-1 stabilizer qubits and one readout ancilla (2d qubits
// total, matching the paper's q_rep = 2n).  The BIT_FLIP flavor measures
// ZZ stabilizers on a |0...0> GHZ-basis state; PHASE_FLIP measures XX
// stabilizers on |+...+>.  The logical X between the two stabilisation
// rounds is X^(x)d for BIT_FLIP and Z^(x)d for PHASE_FLIP (the operator
// that flips the encoded bit in each basis); the readout ancilla collects
// the logical-Z parity of all data qubits.
#pragma once

#include "codes/code.hpp"

namespace radsurf {

enum class RepetitionFlavor { BIT_FLIP, PHASE_FLIP };

class RepetitionCode final : public SurfaceCode {
 public:
  RepetitionCode(int d, RepetitionFlavor flavor);

  std::string name() const override;
  std::pair<int, int> distance() const override;
  std::size_t num_qubits() const override {
    return 2 * static_cast<std::size_t>(d_);
  }
  const std::vector<QubitRole>& roles() const override { return roles_; }
  Circuit build(std::size_t rounds = 2) const override;
  std::vector<std::uint32_t> logical_op_support() const override;

  int d() const { return d_; }
  RepetitionFlavor flavor() const { return flavor_; }

  std::uint32_t data_qubit(int i) const { return static_cast<std::uint32_t>(i); }
  std::uint32_t stabilizer_qubit(int i) const {
    return static_cast<std::uint32_t>(d_ + i);
  }
  std::uint32_t ancilla_qubit() const {
    return static_cast<std::uint32_t>(2 * d_ - 1);
  }

 private:
  void stabilisation_round(Circuit& c) const;

  int d_;
  RepetitionFlavor flavor_;
  std::vector<QubitRole> roles_;
};

}  // namespace radsurf
