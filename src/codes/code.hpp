// Surface-code interface (paper Sec. IV).
//
// A SurfaceCode knows its qubit roles and emits the full annotated circuit
// of the paper's experiment: initialise data to |0>, one stabilisation
// round, a transversal logical X, a second stabilisation round, and an
// ancilla parity readout of a logical-Z representative (Figs 1–2).  The
// expected decoded output is logical |1>; DETECTOR annotations mark the
// measurement parities that are deterministic at zero noise, and the
// readout bit is OBSERVABLE 0.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "arch/graph.hpp"
#include "circuit/circuit.hpp"

namespace radsurf {

enum class QubitRole : std::uint8_t {
  DATA,
  STABILIZER,
  ANCILLA,
};

std::string role_name(QubitRole role);

class SurfaceCode {
 public:
  virtual ~SurfaceCode() = default;

  virtual std::string name() const = 0;
  /// Code distance as the paper's (dZ, dX) tuple.
  virtual std::pair<int, int> distance() const = 0;
  /// Total physical qubits (data + stabilizer + readout ancilla).
  virtual std::size_t num_qubits() const = 0;
  virtual const std::vector<QubitRole>& roles() const = 0;

  /// Annotated logical circuit with `rounds` stabilisation rounds (>= 2;
  /// the logical X is applied after the first round, as in the paper).
  virtual Circuit build(std::size_t rounds = 2) const = 0;

  /// Support of the applied logical operator (for tests).
  virtual std::vector<std::uint32_t> logical_op_support() const = 0;

  std::vector<std::uint32_t> qubits_with_role(QubitRole role) const;
};

enum class CodeFamily {
  REPETITION,
  XXZZ,
  ROTATED_MEMORY_X,
  ROTATED_MEMORY_Z,
};

/// Factory: REPETITION requires one of (d,1)/(1,d); XXZZ accepts odd
/// (dZ, dX) with dZ*dX > 1; the ROTATED families require dz == dx (one
/// odd distance d >= 3).
std::unique_ptr<SurfaceCode> make_code(CodeFamily family, int dz, int dx);

/// The code's own connectivity: one node per physical qubit and an edge
/// for every two-qubit gate the memory circuit applies — the "native"
/// architecture, on which the trivial layout is already perfect (zero
/// swaps).  This is what lets rotated codes at d = 11..21 skip the
/// O(n^3) layout search of the named devices.
Graph native_graph_for(const SurfaceCode& code);

}  // namespace radsurf
