#include "codes/xxzz.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace radsurf {

XXZZCode::XXZZCode(int dz, int dx) : dz_(dz), dx_(dx) {
  RADSURF_CHECK_ARG(dz >= 1 && dx >= 1 && dz % 2 == 1 && dx % 2 == 1,
                    "XXZZ distances must be odd and >= 1, got (" << dz << ","
                                                                 << dx << ")");
  RADSURF_CHECK_ARG(dz * dx > 1, "XXZZ-(1,1) encodes nothing");

  // Enumerate faces (r, c) with top-left data corner (r, c), including the
  // boundary rows/columns r = -1 and c = -1.  A face is X-type iff (r + c)
  // is even.  Interior faces have 4 corners; boundary faces keep only the
  // in-grid corners and are included only when they have weight 2 and
  // their type matches the boundary rule (X on top/bottom, Z on left/right)
  // — which the checkerboard delivers automatically at alternating
  // positions.
  std::vector<Plaquette> z_faces;
  std::vector<Plaquette> x_faces;
  for (int r = -1; r < dz_; ++r) {
    for (int c = -1; c < dx_; ++c) {
      Plaquette p;
      p.x_type = ((r + c) % 2 + 2) % 2 == 0;
      for (const auto& [rr, cc] : {std::pair{r, c}, {r, c + 1}, {r + 1, c},
                                   {r + 1, c + 1}}) {
        if (rr >= 0 && rr < dz_ && cc >= 0 && cc < dx_)
          p.data.push_back(data_qubit(rr, cc));
      }
      const bool interior = r >= 0 && r + 1 < dz_ && c >= 0 && c + 1 < dx_;
      if (interior) {
        RADSURF_ASSERT(p.data.size() == 4);
      } else {
        if (p.data.size() != 2) continue;
        const bool top_bottom = (r == -1 || r == dz_ - 1);
        // Boundary rule: weight-2 X faces only on top/bottom, Z faces only
        // on left/right.
        if (p.x_type != top_bottom) continue;
      }
      (p.x_type ? x_faces : z_faces).push_back(std::move(p));
    }
  }

  nz_ = z_faces.size();
  nx_ = x_faces.size();
  const std::size_t n = static_cast<std::size_t>(dz_) *
                        static_cast<std::size_t>(dx_);
  RADSURF_ASSERT_MSG(nz_ + nx_ == n - 1,
                     "XXZZ-(" << dz << "," << dx << ") produced " << nz_
                              << "+" << nx_ << " plaquettes, expected "
                              << n - 1);

  // Qubit numbering: data 0..n-1, Z syndromes, X syndromes, ancilla.
  plaquettes_ = std::move(z_faces);
  for (auto& p : x_faces) plaquettes_.push_back(std::move(p));
  std::uint32_t next = static_cast<std::uint32_t>(n);
  for (auto& p : plaquettes_) p.syndrome = next++;

  roles_.assign(num_qubits(), QubitRole::DATA);
  for (const auto& p : plaquettes_) roles_[p.syndrome] = QubitRole::STABILIZER;
  roles_[ancilla_qubit()] = QubitRole::ANCILLA;
}

std::string XXZZCode::name() const {
  return "xxzz-(" + std::to_string(dz_) + "," + std::to_string(dx_) + ")";
}

std::vector<std::uint32_t> XXZZCode::logical_op_support() const {
  // Logical X: column 0 (weight dZ).
  std::vector<std::uint32_t> out;
  for (int r = 0; r < dz_; ++r) out.push_back(data_qubit(r, 0));
  return out;
}

std::vector<std::uint32_t> XXZZCode::logical_z_support() const {
  std::vector<std::uint32_t> out;
  for (int c = 0; c < dx_; ++c) out.push_back(data_qubit(0, c));
  return out;
}

void XXZZCode::stabilisation_round(Circuit& c) const {
  for (const auto& p : plaquettes_) {
    if (p.x_type) {
      c.h(p.syndrome);
      for (std::uint32_t dq : p.data) c.cx(p.syndrome, dq);
      c.h(p.syndrome);
    } else {
      for (std::uint32_t dq : p.data) c.cx(dq, p.syndrome);
    }
  }
  for (const auto& p : plaquettes_) c.mr(p.syndrome);
}

Circuit XXZZCode::build(std::size_t rounds) const {
  RADSURF_CHECK_ARG(rounds >= 2, "need at least two stabilisation rounds");
  Circuit c(num_qubits());
  const auto ns = static_cast<std::uint32_t>(plaquettes_.size());

  for (std::uint32_t q = 0; q < num_qubits(); ++q) c.r(q);

  // Round 1.  Z-plaquette outcomes are deterministic on |0...0> (their
  // generators stabilise it); X-plaquette outcomes are random projections,
  // so they only participate in paired (round-over-round) detectors.
  // Every stabilisation round ends with a TICK — the round marker the
  // timeline noise schedule and the sliding-window decoder key on.
  stabilisation_round(c);
  for (std::uint32_t i = 0; i < nz_; ++i)
    c.detector({ns - i});
  c.tick();

  // Transversal logical X: a column of X's.
  for (std::uint32_t q : logical_op_support()) c.x(q);

  // Rounds 2..R: paired detectors for every plaquette.
  for (std::size_t round = 1; round < rounds; ++round) {
    stabilisation_round(c);
    for (std::uint32_t i = 0; i < ns; ++i)
      c.detector({ns - i, 2 * ns - i});
    c.tick();
  }

  // Logical-Z readout: parity of row 0 into the ancilla (paper Fig. 1).
  for (std::uint32_t q : logical_z_support()) c.cx(q, ancilla_qubit());
  c.m(ancilla_qubit());
  c.observable_include(0, {1});

  // Transversal Z-basis data measurement with Z-plaquette reconstruction
  // (X-plaquettes are unreconstructable in this basis, as in any logical-Z
  // memory experiment).  Without this final round the intrinsic model
  // alone would flip the readout silently, contradicting Sec. IV-C.
  const auto n = static_cast<std::uint32_t>(
      static_cast<std::size_t>(dz_) * static_cast<std::size_t>(dx_));
  for (std::uint32_t q = 0; q < n; ++q) c.m(q);
  for (std::uint32_t pi = 0; pi < nz_; ++pi) {
    std::vector<std::uint32_t> lookbacks;
    for (std::uint32_t dq : plaquettes_[pi].data)
      lookbacks.push_back(n - dq);
    lookbacks.push_back(n + 1 + (ns - pi));
    c.detector(std::move(lookbacks));
  }
  // Ancilla-vs-data consistency of the logical-Z parity.
  std::vector<std::uint32_t> consistency{n + 1};
  for (std::uint32_t q : logical_z_support()) consistency.push_back(n - q);
  c.detector(std::move(consistency));
  return c;
}

}  // namespace radsurf
