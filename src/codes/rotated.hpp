// Distance-parameterized rotated surface code, memory-X and memory-Z.
//
// The same rotated lattice as XXZZCode — a d x d data grid whose faces
// checkerboard into X- and Z-type plaquettes, with weight-2 boundary
// faces kept only where the type matches the boundary rule (X on
// top/bottom, Z on left/right) — but parameterized by a single odd
// distance d and built as a pure memory experiment: no readout ancilla,
// the observable is reconstructed from the final transversal data
// measurement.  Total qubits: d^2 data + (d^2-1)/2 X-plaquette
// syndromes + (d^2-1)/2 Z-plaquette syndromes = 2*d^2 - 1.
//
// Memory-Z (the paper's basis): data reset to |0>, Z-plaquettes
// deterministic in round 1, transversal logical X (a column of X's,
// weight d) applied after round 1, final transversal Z-basis data
// measurement with Z-plaquette reconstruction; OBSERVABLE 0 is the
// logical-Z representative (row 0) and decodes to |1>.
//
// Memory-X: the exact dual — data prepared in |+> (H after reset),
// X-plaquettes deterministic in round 1, transversal logical Z (a row of
// Z's) applied after round 1, H before the final measurement so the data
// readout is X-basis, X-plaquette reconstruction; OBSERVABLE 0 is the
// logical-X representative (column 0).
//
// This is the builder that carries the pipeline to d = 11..21
// (241..881 qubits); it pairs with the "native" architecture (the code's
// own connectivity graph) so transpilation stays the identity.
#pragma once

#include "codes/code.hpp"

namespace radsurf {

enum class RotatedMemory : std::uint8_t { X, Z };

class RotatedCode final : public SurfaceCode {
 public:
  /// One face of the rotated lattice (same shape as XXZZCode's).
  struct Plaquette {
    bool x_type = false;
    std::vector<std::uint32_t> data;  // supporting data qubits (2 or 4)
    std::uint32_t syndrome = 0;       // measuring qubit
  };

  RotatedCode(int d, RotatedMemory memory);

  std::string name() const override;
  std::pair<int, int> distance() const override { return {d_, d_}; }
  std::size_t num_qubits() const override {
    const auto n = static_cast<std::size_t>(d_) * static_cast<std::size_t>(d_);
    return 2 * n - 1;
  }
  const std::vector<QubitRole>& roles() const override { return roles_; }
  Circuit build(std::size_t rounds = 2) const override;
  /// Support of the *applied* logical operator: the column-0 X string for
  /// memory-Z, the row-0 Z string for memory-X.
  std::vector<std::uint32_t> logical_op_support() const override;

  RotatedMemory memory() const { return memory_; }
  std::uint32_t data_qubit(int r, int c) const {
    return static_cast<std::uint32_t>(r * d_ + c);
  }
  const std::vector<Plaquette>& plaquettes() const { return plaquettes_; }
  std::size_t num_z_plaquettes() const { return nz_; }
  std::size_t num_x_plaquettes() const { return nx_; }

  /// Support of the observable read out at the end (row-0 Z string for
  /// memory-Z, column-0 X string for memory-X).
  std::vector<std::uint32_t> observable_support() const;

 private:
  void stabilisation_round(Circuit& c) const;

  int d_;
  RotatedMemory memory_;
  std::size_t nz_ = 0;
  std::size_t nx_ = 0;
  std::vector<Plaquette> plaquettes_;  // Z-type first, then X-type
  std::vector<QubitRole> roles_;
};

}  // namespace radsurf
