#include "codes/rotated.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace radsurf {

RotatedCode::RotatedCode(int d, RotatedMemory memory)
    : d_(d), memory_(memory) {
  RADSURF_CHECK_ARG(d >= 3 && d % 2 == 1,
                    "rotated code distance must be odd and >= 3, got " << d);

  // Enumerate faces (r, c) with top-left data corner (r, c), including the
  // boundary rows/columns r = -1 and c = -1.  A face is X-type iff (r + c)
  // is even; boundary faces keep only the in-grid corners and are included
  // only at weight 2 with the type matching the boundary rule (X on
  // top/bottom, Z on left/right).
  std::vector<Plaquette> z_faces;
  std::vector<Plaquette> x_faces;
  for (int r = -1; r < d_; ++r) {
    for (int c = -1; c < d_; ++c) {
      Plaquette p;
      p.x_type = ((r + c) % 2 + 2) % 2 == 0;
      for (const auto& [rr, cc] : {std::pair{r, c}, {r, c + 1}, {r + 1, c},
                                   {r + 1, c + 1}}) {
        if (rr >= 0 && rr < d_ && cc >= 0 && cc < d_)
          p.data.push_back(data_qubit(rr, cc));
      }
      const bool interior = r >= 0 && r + 1 < d_ && c >= 0 && c + 1 < d_;
      if (interior) {
        RADSURF_ASSERT(p.data.size() == 4);
      } else {
        if (p.data.size() != 2) continue;
        const bool top_bottom = (r == -1 || r == d_ - 1);
        if (p.x_type != top_bottom) continue;
      }
      (p.x_type ? x_faces : z_faces).push_back(std::move(p));
    }
  }

  nz_ = z_faces.size();
  nx_ = x_faces.size();
  const std::size_t n = static_cast<std::size_t>(d_) *
                        static_cast<std::size_t>(d_);
  RADSURF_ASSERT_MSG(nz_ == (n - 1) / 2 && nx_ == (n - 1) / 2,
                     "rotated d=" << d << " produced " << nz_ << "+" << nx_
                                  << " plaquettes, expected (n-1)/2 each");

  // Qubit numbering: data 0..n-1, then Z syndromes, then X syndromes.
  plaquettes_ = std::move(z_faces);
  for (auto& p : x_faces) plaquettes_.push_back(std::move(p));
  std::uint32_t next = static_cast<std::uint32_t>(n);
  for (auto& p : plaquettes_) p.syndrome = next++;

  roles_.assign(num_qubits(), QubitRole::DATA);
  for (const auto& p : plaquettes_) roles_[p.syndrome] = QubitRole::STABILIZER;
}

std::string RotatedCode::name() const {
  return std::string("rotated-mem") +
         (memory_ == RotatedMemory::X ? "x" : "z") + "-" + std::to_string(d_);
}

std::vector<std::uint32_t> RotatedCode::logical_op_support() const {
  std::vector<std::uint32_t> out;
  if (memory_ == RotatedMemory::Z) {
    // Logical X: column 0 (a vertical X string crosses every horizontal
    // Z boundary face in 0 or 2 qubits, so it commutes with the group).
    for (int r = 0; r < d_; ++r) out.push_back(data_qubit(r, 0));
  } else {
    // Logical Z: row 0 (the dual string).
    for (int c = 0; c < d_; ++c) out.push_back(data_qubit(0, c));
  }
  return out;
}

std::vector<std::uint32_t> RotatedCode::observable_support() const {
  std::vector<std::uint32_t> out;
  if (memory_ == RotatedMemory::Z) {
    for (int c = 0; c < d_; ++c) out.push_back(data_qubit(0, c));  // Z row
  } else {
    for (int r = 0; r < d_; ++r) out.push_back(data_qubit(r, 0));  // X col
  }
  return out;
}

void RotatedCode::stabilisation_round(Circuit& c) const {
  for (const auto& p : plaquettes_) {
    if (p.x_type) {
      c.h(p.syndrome);
      for (std::uint32_t dq : p.data) c.cx(p.syndrome, dq);
      c.h(p.syndrome);
    } else {
      for (std::uint32_t dq : p.data) c.cx(dq, p.syndrome);
    }
  }
  for (const auto& p : plaquettes_) c.mr(p.syndrome);
}

Circuit RotatedCode::build(std::size_t rounds) const {
  RADSURF_CHECK_ARG(rounds >= 2, "need at least two stabilisation rounds");
  Circuit c(num_qubits());
  const auto ns = static_cast<std::uint32_t>(plaquettes_.size());
  const auto n = static_cast<std::uint32_t>(
      static_cast<std::size_t>(d_) * static_cast<std::size_t>(d_));
  const auto nz = static_cast<std::uint32_t>(nz_);
  const bool mem_x = memory_ == RotatedMemory::X;

  for (std::uint32_t q = 0; q < num_qubits(); ++q) c.r(q);
  // Memory-X prepares the data in |+>^n so the X-plaquettes stabilise the
  // initial state (and round-1 Z outcomes are random projections).
  if (mem_x)
    for (std::uint32_t q = 0; q < n; ++q) c.h(q);

  // Round 1: only the plaquette type matching the memory basis is
  // deterministic.  Plaquettes are measured Z-type first, so Z-plaquette
  // pi has lookback ns - pi and X-plaquette pi has the same formula.
  // Every stabilisation round ends with a TICK — the round marker the
  // timeline noise schedule and the sliding-window decoder key on.
  stabilisation_round(c);
  if (mem_x) {
    for (std::uint32_t pi = nz; pi < ns; ++pi) c.detector({ns - pi});
  } else {
    for (std::uint32_t pi = 0; pi < nz; ++pi) c.detector({ns - pi});
  }
  c.tick();

  // Transversal logical operator flipping the memory: X string for
  // memory-Z, Z string for memory-X.
  for (std::uint32_t q : logical_op_support()) {
    if (mem_x) c.z(q);
    else c.x(q);
  }

  // Rounds 2..R: paired detectors for every plaquette.
  for (std::size_t round = 1; round < rounds; ++round) {
    stabilisation_round(c);
    for (std::uint32_t i = 0; i < ns; ++i)
      c.detector({ns - i, 2 * ns - i});
    c.tick();
  }

  // Final transversal data measurement in the memory basis (H first for
  // memory-X), with same-type plaquette reconstruction: the parity of a
  // plaquette's data corners in this basis must match its last syndrome
  // measurement.  The other type is unreconstructable in this basis.
  if (mem_x)
    for (std::uint32_t q = 0; q < n; ++q) c.h(q);
  for (std::uint32_t q = 0; q < n; ++q) c.m(q);
  const std::uint32_t lo = mem_x ? nz : 0;
  const std::uint32_t hi = mem_x ? ns : nz;
  for (std::uint32_t pi = lo; pi < hi; ++pi) {
    std::vector<std::uint32_t> lookbacks;
    for (std::uint32_t dq : plaquettes_[pi].data)
      lookbacks.push_back(n - dq);
    lookbacks.push_back(n + (ns - pi));
    c.detector(std::move(lookbacks));
  }

  // OBSERVABLE 0: the memory-basis logical representative, reconstructed
  // from the data readout (no separate ancilla in this builder).
  std::vector<std::uint32_t> obs;
  for (std::uint32_t q : observable_support()) obs.push_back(n - q);
  c.observable_include(0, std::move(obs));
  return c;
}

}  // namespace radsurf
