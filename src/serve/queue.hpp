// Bounded MPSC work queue of the serve connection loop.
//
// Each connection owns one queue between its socket-reader thread and its
// decode worker.  The bound is the backpressure/shedding boundary: frames
// of shots already in flight block the reader when the queue is full (TCP
// backpressure propagates to the client), while frames that would *open a
// new shot* against a full queue are shed with an explicit SHED reply
// instead — overload degrades by dropping whole shots, never by silently
// stretching the latency of shots already admitted.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>

namespace radsurf {
namespace serve {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  /// Blocks while full.  Returns false (item dropped) once closed.
  bool push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    if (items_.size() > high_water_) high_water_ = items_.size();
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item or close.  False means closed *and* drained —
  /// the worker processes everything enqueued before the close.
  bool pop(T& out) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return true;
  }

  /// No further pushes; pending items stay poppable.
  void close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  /// Shed probe: true when an enqueue would block right now.  Racing a
  /// concurrent pop only makes shedding conservative, never unsafe.
  bool full() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size() >= capacity_;
  }

  std::size_t capacity() const { return capacity_; }

  std::size_t high_water() const {
    std::lock_guard<std::mutex> lock(mu_);
    return high_water_;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  std::size_t high_water_ = 0;
  bool closed_ = false;
};

}  // namespace serve
}  // namespace radsurf
