#include "serve/client.hpp"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "util/error.hpp"

namespace radsurf {
namespace serve {

ServeClient ServeClient::connect_tcp(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  RADSURF_ASSERT_MSG(fd >= 0,
                     "serve client: socket() failed: "
                         << std::strerror(errno));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const int err = errno;
    ::close(fd);
    RADSURF_ASSERT_MSG(false, "serve client: connect(127.0.0.1:"
                                  << port
                                  << ") failed: " << std::strerror(err));
  }
  // Frames are small and latency-sensitive; Nagle would batch them against
  // the server's delayed ACKs (~40ms floors on the commit latency bench).
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return ServeClient(fd);
}

ServeClient ServeClient::connect_unix(const std::string& path) {
  RADSURF_CHECK_ARG(path.size() < sizeof(sockaddr_un{}.sun_path),
                    "serve client: unix socket path too long: " << path);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  RADSURF_ASSERT_MSG(fd >= 0,
                     "serve client: socket(AF_UNIX) failed: "
                         << std::strerror(errno));
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const int err = errno;
    ::close(fd);
    RADSURF_ASSERT_MSG(false, "serve client: connect(" << path << ") failed: "
                                                       << std::strerror(err));
  }
  return ServeClient(fd);
}

void ServeClient::close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

void ServeClient::set_read_timeout_ms(int ms) {
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = (ms % 1000) * 1000;
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
}

HelloAck ServeClient::handshake() {
  HelloFrame hello;
  RADSURF_ASSERT_MSG(write_frame(fd_, FrameType::kHello, encode_hello(hello)),
                     "serve client: HELLO write failed");
  Frame frame;
  const RecvStatus s = read_frame(fd_, frame, nullptr, nullptr);
  RADSURF_ASSERT_MSG(s == RecvStatus::kOk,
                     "serve client: no HELLO_ACK (connection closed?)");
  if (frame.type == FrameType::kError) {
    const ErrorReply err = decode_error(frame.payload);
    RADSURF_ASSERT_MSG(false, "serve client: handshake rejected: code "
                                  << static_cast<std::uint32_t>(err.code)
                                  << " (" << err.message << ")");
  }
  RADSURF_ASSERT_MSG(frame.type == FrameType::kHelloAck,
                     "serve client: expected HELLO_ACK, got frame type "
                         << static_cast<unsigned>(frame.type));
  const HelloAck ack = decode_hello_ack(frame.payload);
  RADSURF_ASSERT_MSG(ack.version == kProtocolVersion,
                     "serve client: server protocol version "
                         << ack.version << " != " << kProtocolVersion);
  return ack;
}

bool ServeClient::send_rounds(const RoundsFrame& f) {
  return write_frame(fd_, FrameType::kRounds, encode_rounds(f));
}

bool ServeClient::send_herald(const HeraldFrame& f) {
  return write_frame(fd_, FrameType::kHerald, encode_herald(f));
}

bool ServeClient::send_bye() { return write_frame(fd_, FrameType::kBye, {}); }

bool ServeClient::send_raw(FrameType type,
                           const std::vector<std::uint8_t>& payload) {
  return write_frame(fd_, type, payload);
}

ServeClient::ServerReply ServeClient::read_reply() {
  Frame frame;
  while (true) {
    // nullptr keep_going: read_frame loops on EAGAIN forever, so detect
    // the caller's SO_RCVTIMEO here via a one-shot keep_going.
    static thread_local bool first_wait;
    first_wait = true;
    const RecvStatus s = read_frame(
        fd_, frame,
        [](void*) {
          const bool again = first_wait;
          first_wait = false;
          return again;
        },
        nullptr);
    if (s == RecvStatus::kAborted) {
      ServerReply r;
      r.kind = ServerReply::Kind::kTimeout;
      return r;
    }
    if (s == RecvStatus::kEof) {
      ServerReply r;
      r.kind = ServerReply::Kind::kClosed;
      return r;
    }
    RADSURF_ASSERT_MSG(s == RecvStatus::kOk,
                       "serve client: socket error reading reply");
    break;
  }
  ServerReply r;
  switch (frame.type) {
    case FrameType::kCommit:
      r.kind = ServerReply::Kind::kCommit;
      r.commit = decode_commit(frame.payload);
      return r;
    case FrameType::kResult:
      r.kind = ServerReply::Kind::kResult;
      r.result = decode_result(frame.payload);
      return r;
    case FrameType::kShed:
      r.kind = ServerReply::Kind::kShed;
      r.shed = decode_shed(frame.payload);
      return r;
    case FrameType::kError:
      r.kind = ServerReply::Kind::kError;
      r.error = decode_error(frame.payload);
      return r;
    case FrameType::kByeAck:
      r.kind = ServerReply::Kind::kByeAck;
      r.bye_ack = decode_bye_ack(frame.payload);
      return r;
    default:
      RADSURF_ASSERT_MSG(false, "serve client: unexpected reply frame type "
                                    << static_cast<unsigned>(frame.type));
  }
  return r;  // unreachable
}

}  // namespace serve
}  // namespace radsurf
