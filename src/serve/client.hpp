// Minimal blocking client of the serve protocol — the building block of
// the load generator (serve/loadgen.hpp), the CI smoke driver and the
// overload tests.  One ServeClient is one stream (one connection); it is
// not thread-safe, but the send_* and read_reply sides may be driven from
// one thread each (the socket is full-duplex and the two directions never
// share state).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/protocol.hpp"

namespace radsurf {
namespace serve {

class ServeClient {
 public:
  ServeClient() = default;
  ~ServeClient() { close(); }
  ServeClient(ServeClient&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  ServeClient& operator=(ServeClient&&) = delete;
  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  /// Connect to 127.0.0.1:port.  Throws radsurf::Error on failure.
  static ServeClient connect_tcp(std::uint16_t port);
  static ServeClient connect_unix(const std::string& path);

  bool connected() const { return fd_ >= 0; }
  void close();

  /// SO_RCVTIMEO of read_reply (0 = block forever).  The reply kTimeout
  /// below reports an expired timeout instead of throwing.
  void set_read_timeout_ms(int ms);

  /// HELLO/HELLO_ACK handshake.  Throws radsurf::Error on protocol
  /// mismatch or socket failure.
  HelloAck handshake();

  // --- sends (false = socket error / peer gone) -----------------------------
  bool send_rounds(const RoundsFrame& f);
  bool send_herald(const HeraldFrame& f);
  bool send_bye();
  /// Escape hatch for protocol-error tests: send an arbitrary frame.
  bool send_raw(FrameType type, const std::vector<std::uint8_t>& payload);

  // --- replies --------------------------------------------------------------
  struct ServerReply {
    enum class Kind {
      kCommit,
      kResult,
      kShed,
      kError,
      kByeAck,
      kClosed,   // orderly EOF
      kTimeout,  // read timeout expired (see set_read_timeout_ms)
    };
    Kind kind = Kind::kClosed;
    CommitReply commit;
    ResultReply result;
    ShedReply shed;
    ErrorReply error;
    ByeAck bye_ack;
  };

  /// Read the next server reply.  Throws radsurf::Error on malformed
  /// frames or unexpected frame types.
  ServerReply read_reply();

 private:
  explicit ServeClient(int fd) : fd_(fd) {}
  int fd_ = -1;
};

}  // namespace serve
}  // namespace radsurf
