// Wire protocol of `radsurf serve` — streaming decode-as-a-service.
//
// One connection carries one syndrome stream.  Frames are length-prefixed
// little-endian binary: a 1-byte type, 3 reserved bytes (zero), a u32
// payload length, then the payload.  The client opens with HELLO and the
// server answers HELLO_ACK carrying the experiment geometry (rounds,
// detectors, window layout) so the client can detect config mismatches
// and predict window-commit points.  Syndrome data travels in ROUNDS
// frames in the *shot-major word format* the batch pipeline speaks
// (DetectorSet::syndrome_words u64 words per shot, bit d = detector d
// fired): each frame carries the full-width span with only the bits of
// the rounds it declares complete — stray bits outside those rounds are a
// protocol error, not noise.  The server commits sliding windows as soon
// as their rounds are complete (COMMIT per window, RESULT when the final
// window lands) and degrades under overload by shedding whole shots with
// an explicit SHED reply (never silently, never mid-shot).
//
// Reply codes are part of the protocol contract and documented in
// docs/SCENARIOS.md; tests pin them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "noise/timeline.hpp"

namespace radsurf {
namespace serve {

inline constexpr std::uint32_t kProtocolVersion = 1;
/// Hard sanity cap on payload size (a corrupt length prefix must not
/// allocate gigabytes).
inline constexpr std::uint32_t kMaxPayload = 1u << 24;

enum class FrameType : std::uint8_t {
  // client -> server
  kHello = 0x01,
  kRounds = 0x02,
  kHerald = 0x03,
  kBye = 0x04,
  // server -> client
  kHelloAck = 0x81,
  kCommit = 0x82,
  kResult = 0x83,
  kShed = 0x84,
  kError = 0x85,
  kByeAck = 0x86,
};

/// SHED reply reasons (documented protocol contract).
enum class ShedReason : std::uint32_t {
  kQueueFull = 1,     // the stream's bounded ingest queue is full
  kShuttingDown = 2,  // server is draining; no new shots accepted
};

/// ERROR reply codes.  An ERROR reply is terminal: the server closes the
/// connection after sending it.
enum class ErrorCode : std::uint32_t {
  kBadVersion = 1,   // HELLO version mismatch
  kUnknownFrame = 2, // unrecognised frame type
  kBadPayload = 3,   // malformed payload (length / field bounds)
  kStrayBits = 4,    // ROUNDS words carry bits outside the declared rounds
  kBadRounds = 5,    // round sequencing violated (non-monotone, late, ...)
  kExpectedHello = 6 // first frame was not HELLO
};

struct Frame {
  FrameType type = FrameType::kHello;
  std::vector<std::uint8_t> payload;
};

struct HelloFrame {
  std::uint32_t version = kProtocolVersion;
};

struct HelloAck {
  std::uint32_t version = kProtocolVersion;
  std::uint32_t num_rounds = 0;
  std::uint32_t num_detectors = 0;
  std::uint32_t syndrome_words = 0;
  std::uint32_t window = 0;  // resolved window W
  std::uint32_t commit = 0;  // resolved commit stride C
  std::uint32_t num_windows = 0;
};

struct RoundsFrame {
  std::uint64_t shot_id = 0;
  std::uint32_t first_round = 0;
  std::uint32_t num_rounds = 0;  // rounds this frame completes
  std::vector<std::uint64_t> words;  // full-width shot-major span
};

struct HeraldFrame {
  std::vector<RadiationEvent> events;  // empty = back to the base decoder
};

struct CommitReply {
  std::uint64_t shot_id = 0;
  std::uint32_t window_index = 0;
  std::uint32_t end_round = 0;  // rounds < end_round are now decoded
};

struct ResultReply {
  std::uint64_t shot_id = 0;
  std::uint64_t prediction = 0;
};

struct ShedReply {
  std::uint64_t shot_id = 0;
  ShedReason reason = ShedReason::kQueueFull;
};

struct ErrorReply {
  ErrorCode code = ErrorCode::kBadPayload;
  std::string message;
};

struct ByeAck {
  std::uint64_t shots_completed = 0;
  std::uint64_t windows_committed = 0;
  std::uint64_t shed_shots = 0;
};

// --- payload encode / decode ------------------------------------------------
// Encoders return the payload bytes (the socket layer prepends the
// header); decoders throw radsurf::InvalidArgument on malformed payloads
// (the server maps that to ErrorCode::kBadPayload).

std::vector<std::uint8_t> encode_hello(const HelloFrame& f);
std::vector<std::uint8_t> encode_hello_ack(const HelloAck& f);
std::vector<std::uint8_t> encode_rounds(const RoundsFrame& f);
std::vector<std::uint8_t> encode_herald(const HeraldFrame& f);
std::vector<std::uint8_t> encode_commit(const CommitReply& f);
std::vector<std::uint8_t> encode_result(const ResultReply& f);
std::vector<std::uint8_t> encode_shed(const ShedReply& f);
std::vector<std::uint8_t> encode_error(const ErrorReply& f);
std::vector<std::uint8_t> encode_bye_ack(const ByeAck& f);

HelloFrame decode_hello(const std::vector<std::uint8_t>& p);
HelloAck decode_hello_ack(const std::vector<std::uint8_t>& p);
RoundsFrame decode_rounds(const std::vector<std::uint8_t>& p);
HeraldFrame decode_herald(const std::vector<std::uint8_t>& p);
CommitReply decode_commit(const std::vector<std::uint8_t>& p);
ResultReply decode_result(const std::vector<std::uint8_t>& p);
ShedReply decode_shed(const std::vector<std::uint8_t>& p);
ErrorReply decode_error(const std::vector<std::uint8_t>& p);
ByeAck decode_bye_ack(const std::vector<std::uint8_t>& p);

// --- framed socket I/O ------------------------------------------------------

enum class RecvStatus {
  kOk,       // frame filled
  kEof,      // orderly peer close between frames
  kAborted,  // keep_going() said stop
  kError,    // socket error or malformed header / truncated frame
};

/// Blocking frame read.  `keep_going` (may be null) is polled whenever the
/// socket read times out (callers set SO_RCVTIMEO), so a server can abort
/// a blocked reader during shutdown without closing the socket under it.
RecvStatus read_frame(int fd, Frame& out, bool (*keep_going)(void*),
                      void* ctx);

/// Blocking whole-frame write (header + payload).  Returns false on any
/// error or write timeout (callers set SO_SNDTIMEO); serialise calls per
/// socket externally.
bool write_frame(int fd, FrameType type,
                 const std::vector<std::uint8_t>& payload);

}  // namespace serve
}  // namespace radsurf
