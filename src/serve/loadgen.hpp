// Load generator for `radsurf serve` — the client side of the p50/p99
// commit-latency bench and the CI smoke driver.
//
// A run pre-samples an exact shot workload offline (the same RNG streams
// as run_timeline's EXACT path, via InjectionEngine::record_timeline_shots)
// and pre-decodes the expected prediction of every shot with the offline
// stream decoder, then replays the shots over `streams` concurrent
// connections, `rounds_per_frame` rounds per ROUNDS frame, with up to
// `max_inflight` pipelined shots per stream.  Every RESULT is pinned
// against the offline prediction (mismatches is the bit-for-bit parity
// counter: it must be zero), and every COMMIT is timed from the send of
// the frame that completed the window's rounds to the reply's arrival —
// the service's bounded-latency claim, measured where it matters, at the
// client.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "decoder/sliding_window.hpp"
#include "inject/campaign.hpp"
#include "noise/timeline.hpp"

namespace radsurf {
namespace serve {

struct LoadGenOptions {
  std::size_t streams = 4;
  std::size_t shots_per_stream = 32;
  /// Rounds per ROUNDS frame (the stream's delivery granularity).
  std::size_t rounds_per_frame = 1;
  /// Pipelined (sent, unresolved) shots per stream; 1 = fully synchronous.
  std::size_t max_inflight = 4;
  /// Sliding-window layout — must match the server's.
  SlidingWindowOptions window{};
  /// Event realization of the workload.  Non-empty: each stream sends a
  /// HERALD before its shots, and expectations come from the aware
  /// decoder.
  std::vector<RadiationEvent> events;
  std::uint64_t seed = 20240715;
  /// Endpoint: unix_path when non-empty, else TCP loopback `port`.
  std::uint16_t port = 0;
  std::string unix_path;
};

struct LoadGenReport {
  std::size_t streams = 0;
  std::size_t shots_sent = 0;
  std::size_t results = 0;       // RESULT replies received
  std::size_t commits = 0;       // COMMIT replies received
  std::size_t sheds = 0;         // SHED replies received
  std::size_t errors = 0;        // ERROR replies / dead connections
  std::size_t mismatches = 0;    // streamed prediction != offline decode
  double elapsed_seconds = 0.0;  // streaming phase only (excludes sampling)
  double p50_ms = 0.0;           // commit latency percentiles
  double p99_ms = 0.0;
  double shots_per_second = 0.0;

  bool clean() const { return errors == 0 && mismatches == 0; }
};

/// Run one load-generation campaign against a live server.  Throws
/// radsurf::Error on connection/handshake failures.
LoadGenReport run_load(const InjectionEngine& engine,
                       const RadiationTimeline& timeline,
                       const LoadGenOptions& options);

}  // namespace serve
}  // namespace radsurf
