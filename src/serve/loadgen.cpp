#include "serve/loadgen.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <map>
#include <mutex>
#include <thread>
#include <utility>

#include "serve/client.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace radsurf {
namespace serve {

namespace {

using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

/// End rounds of every window, replicated from the server's HELLO_ACK
/// geometry (the same layout loop as the SlidingWindowDecoder ctor).
std::vector<std::size_t> window_end_rounds(const HelloAck& ack) {
  std::vector<std::size_t> ends;
  std::size_t begin = 0;
  while (true) {
    const std::size_t end =
        std::min<std::size_t>(begin + ack.window, ack.num_rounds);
    ends.push_back(end);
    if (end == ack.num_rounds) break;
    begin += ack.commit;
  }
  return ends;
}

struct StreamOutcome {
  std::size_t shots_sent = 0;
  std::size_t results = 0;
  std::size_t commits = 0;
  std::size_t sheds = 0;
  std::size_t errors = 0;
  std::size_t mismatches = 0;
  std::vector<double> latencies_ms;
};

struct StreamState {
  std::mutex mu;
  std::condition_variable cv;
  std::size_t inflight = 0;
  bool aborted = false;
  // (shot, window) -> send time of the frame that completed the window.
  std::map<std::pair<std::uint64_t, std::uint32_t>, Clock::time_point> sent;
};

void run_stream(ServeClient client, const LoadGenOptions& opt,
                const std::vector<std::vector<std::uint64_t>>& shot_words,
                const std::vector<std::uint64_t>& expected,
                std::size_t first_shot, std::size_t num_shots,
                const std::vector<std::vector<std::uint64_t>>& round_masks,
                StreamOutcome& out) {
  const HelloAck ack = client.handshake();
  // Backstop against a wedged server: replies normally arrive within
  // milliseconds; a 10 s silence is a failed run, not a slow one.
  client.set_read_timeout_ms(10000);
  RADSURF_ASSERT_MSG(round_masks.size() == ack.num_rounds &&
                         shot_words[0].size() == ack.syndrome_words,
                     "loadgen: server geometry (" << ack.num_rounds
                                                  << " rounds) disagrees "
                                                     "with the workload");
  // The offline expectations are only meaningful if the server decodes
  // the same window layout — a W/C mismatch would surface as sporadic
  // prediction mismatches, so fail loudly at handshake instead.
  RADSURF_ASSERT_MSG(
      ack.window == opt.window.window &&
          ack.commit == opt.window.resolved_commit(),
      "loadgen: server window layout W=" << ack.window << "/C=" << ack.commit
                                         << " disagrees with the offline "
                                            "expectations W="
                                         << opt.window.window << "/C="
                                         << opt.window.resolved_commit());
  const std::vector<std::size_t> ends = window_end_rounds(ack);

  if (!opt.events.empty()) {
    HeraldFrame herald;
    herald.events = opt.events;
    RADSURF_ASSERT_MSG(client.send_herald(herald),
                       "loadgen: HERALD send failed");
  }

  StreamState state;
  std::thread reader([&] {
    while (true) {
      ServeClient::ServerReply reply = client.read_reply();
      switch (reply.kind) {
        case ServeClient::ServerReply::Kind::kCommit: {
          const Clock::time_point now = Clock::now();
          std::lock_guard<std::mutex> lock(state.mu);
          ++out.commits;
          const auto it = state.sent.find(
              {reply.commit.shot_id, reply.commit.window_index});
          if (it != state.sent.end()) {
            out.latencies_ms.push_back(ms_between(it->second, now));
            state.sent.erase(it);
          }
          break;
        }
        case ServeClient::ServerReply::Kind::kResult: {
          std::lock_guard<std::mutex> lock(state.mu);
          ++out.results;
          if (reply.result.prediction != expected[reply.result.shot_id])
            ++out.mismatches;
          --state.inflight;
          state.cv.notify_all();
          break;
        }
        case ServeClient::ServerReply::Kind::kShed: {
          std::lock_guard<std::mutex> lock(state.mu);
          ++out.sheds;
          --state.inflight;
          state.cv.notify_all();
          break;
        }
        case ServeClient::ServerReply::Kind::kError: {
          std::lock_guard<std::mutex> lock(state.mu);
          ++out.errors;
          state.aborted = true;
          state.cv.notify_all();
          return;
        }
        case ServeClient::ServerReply::Kind::kByeAck:
          return;
        case ServeClient::ServerReply::Kind::kClosed:
        case ServeClient::ServerReply::Kind::kTimeout: {
          std::lock_guard<std::mutex> lock(state.mu);
          if (state.inflight > 0) ++out.errors;
          state.aborted = true;
          state.cv.notify_all();
          return;
        }
      }
    }
  });

  const std::size_t num_rounds = ack.num_rounds;
  const std::size_t words = ack.syndrome_words;
  RoundsFrame frame;
  frame.words.resize(words);
  for (std::size_t s = 0; s < num_shots; ++s) {
    {
      std::unique_lock<std::mutex> lock(state.mu);
      state.cv.wait(lock, [&] {
        return state.aborted || state.inflight < opt.max_inflight;
      });
      if (state.aborted) break;
      ++state.inflight;
    }
    const std::uint64_t shot_id = first_shot + s;
    const std::vector<std::uint64_t>& full = shot_words[shot_id];
    bool sent_ok = true;
    std::size_t prev_windows = 0;
    for (std::size_t r = 0; r < num_rounds && sent_ok;
         r += opt.rounds_per_frame) {
      const std::size_t complete =
          std::min(r + opt.rounds_per_frame, num_rounds);
      frame.shot_id = shot_id;
      frame.first_round = static_cast<std::uint32_t>(r);
      frame.num_rounds = static_cast<std::uint32_t>(complete - r);
      for (std::size_t w = 0; w < words; ++w) {
        std::uint64_t mask = 0;
        for (std::size_t rr = r; rr < complete; ++rr)
          mask |= round_masks[rr][w];
        frame.words[w] = full[w] & mask;
      }
      // Windows this frame completes get the frame's send timestamp.
      std::size_t window = prev_windows;
      while (window < ends.size() && ends[window] <= complete) ++window;
      const Clock::time_point before = Clock::now();
      if (window > prev_windows) {
        std::lock_guard<std::mutex> lock(state.mu);
        for (std::size_t w = prev_windows; w < window; ++w)
          state.sent[{shot_id, static_cast<std::uint32_t>(w)}] = before;
      }
      prev_windows = window;
      sent_ok = client.send_rounds(frame);
    }
    if (!sent_ok) {
      std::lock_guard<std::mutex> lock(state.mu);
      ++out.errors;
      state.aborted = true;
      break;
    }
    ++out.shots_sent;
  }

  client.send_bye();
  reader.join();
  client.close();
}

}  // namespace

LoadGenReport run_load(const InjectionEngine& engine,
                       const RadiationTimeline& timeline,
                       const LoadGenOptions& options) {
  RADSURF_CHECK_ARG(options.streams > 0 && options.shots_per_stream > 0,
                    "loadgen: streams and shots_per_stream must be > 0");
  RADSURF_CHECK_ARG(options.rounds_per_frame > 0,
                    "loadgen: rounds_per_frame must be > 0");
  RADSURF_CHECK_ARG(options.max_inflight > 0,
                    "loadgen: max_inflight must be > 0");

  // --- offline workload: exact shot records + expected stream results.
  const std::size_t total_shots = options.streams * options.shots_per_stream;
  const std::vector<RecordedShot> shots = engine.record_timeline_shots(
      timeline, options.events, total_shots, options.seed);
  const std::unique_ptr<SlidingWindowDecoder> offline =
      engine.make_stream_decoder(options.events.empty() ? nullptr : &timeline,
                                 options.events, options.window);

  const std::size_t words = (engine.detector_rounds().size() + 63) / 64;
  std::vector<std::vector<std::uint64_t>> shot_words(
      total_shots, std::vector<std::uint64_t>(words, 0));
  std::vector<std::uint64_t> expected(total_shots, 0);
  for (std::size_t s = 0; s < total_shots; ++s) {
    for (const std::uint32_t d : shots[s].defects)
      shot_words[s][d / 64] |= std::uint64_t{1} << (d % 64);
    expected[s] = offline->decode(shots[s].defects);
  }

  const std::vector<std::uint32_t>& detector_rounds =
      engine.detector_rounds();
  std::vector<std::vector<std::uint64_t>> round_masks(
      offline->num_rounds(), std::vector<std::uint64_t>(words, 0));
  for (std::size_t d = 0; d < detector_rounds.size(); ++d)
    round_masks[detector_rounds[d]][d / 64] |= std::uint64_t{1} << (d % 64);

  // --- streaming phase.
  std::vector<StreamOutcome> outcomes(options.streams);
  const Clock::time_point t0 = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(options.streams);
  for (std::size_t i = 0; i < options.streams; ++i) {
    threads.emplace_back([&, i] {
      ServeClient client = options.unix_path.empty()
                               ? ServeClient::connect_tcp(options.port)
                               : ServeClient::connect_unix(options.unix_path);
      run_stream(std::move(client), options, shot_words, expected,
                 i * options.shots_per_stream, options.shots_per_stream,
                 round_masks, outcomes[i]);
    });
  }
  for (std::thread& t : threads) t.join();
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - t0).count();

  LoadGenReport report;
  report.streams = options.streams;
  report.elapsed_seconds = elapsed;
  std::vector<double> latencies;
  for (const StreamOutcome& o : outcomes) {
    report.shots_sent += o.shots_sent;
    report.results += o.results;
    report.commits += o.commits;
    report.sheds += o.sheds;
    report.errors += o.errors;
    report.mismatches += o.mismatches;
    latencies.insert(latencies.end(), o.latencies_ms.begin(),
                     o.latencies_ms.end());
  }
  if (!latencies.empty()) {
    report.p50_ms = quantile(latencies, 0.50);
    report.p99_ms = quantile(latencies, 0.99);
  }
  if (elapsed > 0.0)
    report.shots_per_second = static_cast<double>(report.results) / elapsed;
  return report;
}

}  // namespace serve
}  // namespace radsurf
