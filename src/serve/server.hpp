// The `radsurf serve` server: a long-lived decode service over TCP
// loopback and/or unix-domain sockets.
//
// Thread model — one accept thread plus two threads per connection:
//
//   reader  — owns the socket's receive side.  Parses frames, enforces
//             the HELLO handshake, and makes the ADMISSION decision: a
//             frame opening a new shot is shed (SHED reply, shot
//             blacklisted) when the connection's bounded queue is full or
//             the server is draining; frames of admitted shots use a
//             blocking enqueue, so overload backpressures through TCP to
//             the sender instead of growing memory.
//   worker  — pops work items and drives the StreamSession (decode,
//             window commits, replies).  Replies are written under a
//             per-connection write mutex with SO_SNDTIMEO: a reply that
//             cannot be written within the timeout is dropped and counted
//             (replies_dropped) — a slow reply consumer costs itself, not
//             the decode path of other connections.
//
// Shutdown is graceful by contract: shutdown() stops accepting, aborts
// blocked readers (SO_RCVTIMEO poll of a stop flag), closes each queue,
// and JOINS the workers — which drain every enqueued frame first, so all
// in-flight windows are still decoded, committed and (best-effort)
// replied before the sockets close.  begin_drain() alone sheds new shots
// (SHED kShuttingDown) while letting in-flight shots finish.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/queue.hpp"
#include "serve/session.hpp"

namespace radsurf {
namespace serve {

class ServeServer {
 public:
  ServeServer(const InjectionEngine& engine, const RadiationTimeline* timeline,
              ServeOptions options);
  ~ServeServer();

  ServeServer(const ServeServer&) = delete;
  ServeServer& operator=(const ServeServer&) = delete;

  /// Bind, listen and start accepting.  Throws radsurf::Error on socket
  /// failures.  Call once.
  void start();

  /// Stop admitting new shots (SHED kShuttingDown) while in-flight shots
  /// keep committing.  Idempotent; shutdown() implies it.
  void begin_drain();

  /// Graceful stop: drain every connection's queued work (in-flight
  /// windows still commit and reply), join all threads, close all
  /// sockets.  Idempotent.
  void shutdown();

  /// Port actually bound (meaningful after start(); resolves port 0).
  std::uint16_t tcp_port() const { return tcp_port_; }
  const std::string& unix_path() const { return shared_.options().unix_path; }

  bool draining() const { return draining_.load(std::memory_order_relaxed); }

  ServeStatsSnapshot stats() const { return shared_.snapshot(); }
  ServeShared& shared() { return shared_; }

 private:
  struct WorkItem {
    enum class Kind { kRounds, kHerald, kBye } kind = Kind::kBye;
    RoundsFrame rounds;
    HeraldFrame herald;
  };

  struct Connection {
    Connection(ServeShared& shared, int fd_in)
        : fd(fd_in),
          queue(shared.options().queue_capacity),
          session(shared) {}
    int fd;
    BoundedQueue<WorkItem> queue;
    std::mutex write_mu;
    StreamSession session;
    std::thread reader;
    std::thread worker;
  };

  void accept_loop();
  void reader_loop(Connection& conn);
  void worker_loop(Connection& conn);
  /// Serialised best-effort reply write; counts drops. False on failure.
  bool write_reply(Connection& conn, FrameType type,
                   const std::vector<std::uint8_t>& payload);
  void configure_socket(int fd) const;

  ServeShared shared_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> draining_{false};
  bool started_ = false;
  bool stopped_ = false;
  int tcp_listen_fd_ = -1;
  int unix_listen_fd_ = -1;
  std::uint16_t tcp_port_ = 0;
  std::thread accept_thread_;
  std::mutex conns_mu_;
  std::list<std::unique_ptr<Connection>> conns_;
};

}  // namespace serve
}  // namespace radsurf
