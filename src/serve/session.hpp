// Per-stream decode sessions of `radsurf serve`.
//
// ServeShared is the state every connection of a server shares: ONE
// SlidingWindowDecoder (so the word-keyed sharded window memo — the
// syndrome cache — is shared across streams: a hot defect pattern on one
// stream accelerates every other), the per-round detector bit masks the
// stray-bit check needs, and a cache of herald-aware decoders keyed by
// event realization so concurrent streams reporting the same strike share
// one rebuild.
//
// StreamSession is the per-connection state machine.  It is driven by the
// connection's single worker thread (no internal locking of its own) and
// turns incoming frames into replies:
//   ROUNDS  -> 0+ COMMIT (every window those rounds complete), RESULT when
//              the final window lands, or a terminal ERROR;
//   HERALD  -> switches the decoder for *subsequently opened* shots (shots
//              already in flight finish on the decoder they started on —
//              a realization change cannot retroactively re-decode
//              committed windows);
//   BYE     -> BYE_ACK with the stream's counters.
// Admission (shed-or-enqueue) is the reader thread's job, not the
// session's — see server.cpp.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "decoder/sliding_window.hpp"
#include "inject/campaign.hpp"
#include "noise/timeline.hpp"
#include "serve/protocol.hpp"

namespace radsurf {
namespace serve {

struct ServeOptions {
  /// Listen on TCP loopback (port 0 = kernel-assigned ephemeral; the bound
  /// port is surfaced by ServeServer::tcp_port()).
  bool listen_tcp = true;
  std::uint16_t tcp_port = 0;
  /// Unix-domain listening socket path; empty disables.
  std::string unix_path;
  /// Bound of each connection's ingest queue (see serve/queue.hpp): frames
  /// of admitted shots block (backpressure), frames opening a new shot
  /// against a full queue are shed.
  std::size_t queue_capacity = 128;
  /// Sliding-window layout of the stream decoders (shared with the offline
  /// campaigns, so streamed results pin bit-for-bit).
  SlidingWindowOptions window{};
  /// Honour HERALD frames by switching to strike-reweighted aware decoders
  /// (engine option decoder.herald_aware semantics); false ignores HERALD
  /// payloads and decodes everything on the base decoder.
  bool herald_aware = true;
  /// SO_RCVTIMEO of connection sockets — the poll granularity at which a
  /// blocked reader notices server shutdown.
  int io_timeout_ms = 200;
  /// SO_SNDTIMEO of reply writes; a timed-out reply is dropped (counted in
  /// replies_dropped) rather than stalling the decode path forever.
  int write_timeout_ms = 2000;
};

/// Server-wide counters (atomics; snapshot() for reporting).
struct ServeStats {
  std::atomic<std::uint64_t> connections{0};
  std::atomic<std::uint64_t> shots_completed{0};
  std::atomic<std::uint64_t> windows_committed{0};
  std::atomic<std::uint64_t> shed_shots{0};
  std::atomic<std::uint64_t> protocol_errors{0};
  std::atomic<std::uint64_t> replies_dropped{0};
  std::atomic<std::uint64_t> aware_rebuilds{0};
  std::atomic<std::uint64_t> herald_switches{0};
  std::atomic<std::uint64_t> queue_high_water{0};

  void bump_high_water(std::uint64_t seen) {
    std::uint64_t cur = queue_high_water.load(std::memory_order_relaxed);
    while (seen > cur &&
           !queue_high_water.compare_exchange_weak(cur, seen)) {
    }
  }
};

struct ServeStatsSnapshot {
  std::uint64_t connections = 0;
  std::uint64_t shots_completed = 0;
  std::uint64_t windows_committed = 0;
  std::uint64_t shed_shots = 0;
  std::uint64_t protocol_errors = 0;
  std::uint64_t replies_dropped = 0;
  std::uint64_t aware_rebuilds = 0;
  std::uint64_t herald_switches = 0;
  std::uint64_t queue_high_water = 0;
  std::uint64_t memo_lookups = 0;
  std::uint64_t memo_hits = 0;
};

/// State shared by every connection of one ServeServer.
class ServeShared {
 public:
  ServeShared(const InjectionEngine& engine, const RadiationTimeline* timeline,
              ServeOptions options);

  const ServeOptions& options() const { return options_; }
  const InjectionEngine& engine() const { return engine_; }
  const SlidingWindowDecoder& base_decoder() const { return *base_; }
  std::size_t syndrome_words() const { return syndrome_words_; }

  /// Full-width bit mask of the detectors belonging to round r.
  const std::vector<std::uint64_t>& round_mask(std::size_t r) const {
    return round_masks_[r];
  }
  std::size_t num_rounds() const { return round_masks_.size(); }

  HelloAck hello_ack() const;

  /// Decoder for a (possibly empty) event realization: the shared base
  /// decoder when empty or herald_aware is off, otherwise a strike-aware
  /// decoder from the realization-keyed cache (built once per distinct
  /// realization, shared across streams).
  std::shared_ptr<const SlidingWindowDecoder> decoder_for(
      const std::vector<RadiationEvent>& events);

  ServeStats& stats() { return stats_; }
  ServeStatsSnapshot snapshot() const;

 private:
  const InjectionEngine& engine_;
  const RadiationTimeline* timeline_;
  ServeOptions options_;
  std::shared_ptr<const SlidingWindowDecoder> base_;
  std::size_t syndrome_words_ = 0;
  std::vector<std::vector<std::uint64_t>> round_masks_;
  std::mutex aware_mu_;
  std::map<std::vector<RadiationEvent>,
           std::shared_ptr<const SlidingWindowDecoder>,
           bool (*)(const std::vector<RadiationEvent>&,
                    const std::vector<RadiationEvent>&)>
      aware_cache_;
  ServeStats stats_;
};

/// One reply the session wants written to the client socket.
struct Reply {
  FrameType type = FrameType::kError;
  std::vector<std::uint8_t> payload;
};

class StreamSession {
 public:
  explicit StreamSession(ServeShared& shared) : shared_(shared) {}

  /// True once the session hit a terminal protocol error (the connection
  /// should close after flushing the ERROR reply).
  bool failed() const { return failed_; }

  std::uint64_t shots_completed() const { return shots_completed_; }
  std::uint64_t windows_committed() const { return windows_committed_; }
  std::uint64_t shed_shots() const {
    return shed_shots_.load(std::memory_order_relaxed);
  }

  /// Record a shot shed by the admission layer (the reader thread, racing
  /// the worker that owns the rest of the session — hence atomic) so
  /// BYE_ACK counters stay truthful.
  void note_shed() { shed_shots_.fetch_add(1, std::memory_order_relaxed); }

  void handle_rounds(const RoundsFrame& f, std::vector<Reply>& out);
  void handle_herald(const HeraldFrame& f, std::vector<Reply>& out);
  void handle_bye(std::vector<Reply>& out);

  /// In-flight (admitted, unfinished) shots — what a draining shutdown
  /// still owes commits for.
  std::size_t open_shots() const { return shots_.size(); }

 private:
  struct ShotState {
    // Pinned at shot open: a HERALD mid-stream switches later shots only.
    std::shared_ptr<const SlidingWindowDecoder> decoder;
    SlidingWindowDecoder::StreamCursor cursor;
  };

  void fail(ErrorCode code, std::string message, std::vector<Reply>& out);

  ServeShared& shared_;
  std::shared_ptr<const SlidingWindowDecoder> current_;  // for new shots
  std::unordered_map<std::uint64_t, ShotState> shots_;
  std::uint64_t shots_completed_ = 0;
  std::uint64_t windows_committed_ = 0;
  std::atomic<std::uint64_t> shed_shots_{0};
  bool failed_ = false;
  std::vector<std::uint32_t> scratch_defects_;
};

}  // namespace serve
}  // namespace radsurf
