#include "serve/protocol.hpp"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <unistd.h>

#include "util/error.hpp"

namespace radsurf {
namespace serve {

namespace {

// Little-endian byte builder / reader.  Explicit byte assembly (not
// memcpy-of-struct) keeps the wire format layout-independent.
class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back((v >> (8 * i)) & 0xff);
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back((v >> (8 * i)) & 0xff);
  }
  void f64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, 8);
    u64(bits);
  }
  void bytes(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

class Reader {
 public:
  explicit Reader(const std::vector<std::uint8_t>& p) : p_(p) {}
  std::uint8_t u8() {
    need(1);
    return p_[off_++];
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(p_[off_++]) << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(p_[off_++]) << (8 * i);
    return v;
  }
  double f64() {
    const std::uint64_t bits = u64();
    double v = 0;
    std::memcpy(&v, &bits, 8);
    return v;
  }
  std::size_t remaining() const { return p_.size() - off_; }
  void done() const {
    RADSURF_CHECK_ARG(off_ == p_.size(),
                      "frame payload has " << p_.size() - off_
                                           << " trailing bytes");
  }

 private:
  void need(std::size_t n) const {
    RADSURF_CHECK_ARG(off_ + n <= p_.size(),
                      "frame payload truncated: need " << n << " bytes at "
                                                       << off_ << " of "
                                                       << p_.size());
  }
  const std::vector<std::uint8_t>& p_;
  std::size_t off_ = 0;
};

bool write_all(int fd, const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  while (n > 0) {
    const ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;  // includes EAGAIN from SO_SNDTIMEO: a write timeout
    }
    if (w == 0) return false;
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

// Reads exactly n bytes.  kEof only when the peer closed cleanly before
// the first byte (mid-buffer EOF is kError: a truncated frame).
RecvStatus read_exact(int fd, void* data, std::size_t n,
                      bool (*keep_going)(void*), void* ctx) {
  auto* p = static_cast<std::uint8_t*>(data);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd, p + got, n - got, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (keep_going != nullptr && !keep_going(ctx))
          return RecvStatus::kAborted;
        continue;
      }
      return RecvStatus::kError;
    }
    if (r == 0) return got == 0 ? RecvStatus::kEof : RecvStatus::kError;
    got += static_cast<std::size_t>(r);
  }
  return RecvStatus::kOk;
}

}  // namespace

std::vector<std::uint8_t> encode_hello(const HelloFrame& f) {
  Writer w;
  w.u32(f.version);
  return w.take();
}

std::vector<std::uint8_t> encode_hello_ack(const HelloAck& f) {
  Writer w;
  w.u32(f.version);
  w.u32(f.num_rounds);
  w.u32(f.num_detectors);
  w.u32(f.syndrome_words);
  w.u32(f.window);
  w.u32(f.commit);
  w.u32(f.num_windows);
  return w.take();
}

std::vector<std::uint8_t> encode_rounds(const RoundsFrame& f) {
  Writer w;
  w.u64(f.shot_id);
  w.u32(f.first_round);
  w.u32(f.num_rounds);
  w.u32(static_cast<std::uint32_t>(f.words.size()));
  for (const std::uint64_t word : f.words) w.u64(word);
  return w.take();
}

std::vector<std::uint8_t> encode_herald(const HeraldFrame& f) {
  Writer w;
  w.u32(static_cast<std::uint32_t>(f.events.size()));
  for (const RadiationEvent& e : f.events) {
    w.u32(static_cast<std::uint32_t>(e.round));
    w.u32(e.root);
    w.f64(e.intensity);
  }
  return w.take();
}

std::vector<std::uint8_t> encode_commit(const CommitReply& f) {
  Writer w;
  w.u64(f.shot_id);
  w.u32(f.window_index);
  w.u32(f.end_round);
  return w.take();
}

std::vector<std::uint8_t> encode_result(const ResultReply& f) {
  Writer w;
  w.u64(f.shot_id);
  w.u64(f.prediction);
  return w.take();
}

std::vector<std::uint8_t> encode_shed(const ShedReply& f) {
  Writer w;
  w.u64(f.shot_id);
  w.u32(static_cast<std::uint32_t>(f.reason));
  return w.take();
}

std::vector<std::uint8_t> encode_error(const ErrorReply& f) {
  Writer w;
  w.u32(static_cast<std::uint32_t>(f.code));
  w.u32(static_cast<std::uint32_t>(f.message.size()));
  w.bytes(f.message.data(), f.message.size());
  return w.take();
}

std::vector<std::uint8_t> encode_bye_ack(const ByeAck& f) {
  Writer w;
  w.u64(f.shots_completed);
  w.u64(f.windows_committed);
  w.u64(f.shed_shots);
  return w.take();
}

HelloFrame decode_hello(const std::vector<std::uint8_t>& p) {
  Reader r(p);
  HelloFrame f;
  f.version = r.u32();
  r.done();
  return f;
}

HelloAck decode_hello_ack(const std::vector<std::uint8_t>& p) {
  Reader r(p);
  HelloAck f;
  f.version = r.u32();
  f.num_rounds = r.u32();
  f.num_detectors = r.u32();
  f.syndrome_words = r.u32();
  f.window = r.u32();
  f.commit = r.u32();
  f.num_windows = r.u32();
  r.done();
  return f;
}

RoundsFrame decode_rounds(const std::vector<std::uint8_t>& p) {
  Reader r(p);
  RoundsFrame f;
  f.shot_id = r.u64();
  f.first_round = r.u32();
  f.num_rounds = r.u32();
  const std::uint32_t words = r.u32();
  RADSURF_CHECK_ARG(static_cast<std::size_t>(words) * 8 == r.remaining(),
                    "ROUNDS word count " << words << " disagrees with "
                                         << r.remaining()
                                         << " payload bytes");
  f.words.reserve(words);
  for (std::uint32_t i = 0; i < words; ++i) f.words.push_back(r.u64());
  r.done();
  return f;
}

HeraldFrame decode_herald(const std::vector<std::uint8_t>& p) {
  Reader r(p);
  HeraldFrame f;
  const std::uint32_t n = r.u32();
  RADSURF_CHECK_ARG(static_cast<std::size_t>(n) * 16 == r.remaining(),
                    "HERALD event count " << n << " disagrees with "
                                          << r.remaining()
                                          << " payload bytes");
  f.events.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    RadiationEvent e;
    e.round = r.u32();
    e.root = r.u32();
    e.intensity = r.f64();
    f.events.push_back(e);
  }
  r.done();
  return f;
}

CommitReply decode_commit(const std::vector<std::uint8_t>& p) {
  Reader r(p);
  CommitReply f;
  f.shot_id = r.u64();
  f.window_index = r.u32();
  f.end_round = r.u32();
  r.done();
  return f;
}

ResultReply decode_result(const std::vector<std::uint8_t>& p) {
  Reader r(p);
  ResultReply f;
  f.shot_id = r.u64();
  f.prediction = r.u64();
  r.done();
  return f;
}

ShedReply decode_shed(const std::vector<std::uint8_t>& p) {
  Reader r(p);
  ShedReply f;
  f.shot_id = r.u64();
  f.reason = static_cast<ShedReason>(r.u32());
  r.done();
  return f;
}

ErrorReply decode_error(const std::vector<std::uint8_t>& p) {
  Reader r(p);
  ErrorReply f;
  f.code = static_cast<ErrorCode>(r.u32());
  const std::uint32_t len = r.u32();
  RADSURF_CHECK_ARG(len == r.remaining(), "ERROR message length mismatch");
  f.message.resize(len);
  for (std::uint32_t i = 0; i < len; ++i)
    f.message[i] = static_cast<char>(r.u8());
  return f;
}

ByeAck decode_bye_ack(const std::vector<std::uint8_t>& p) {
  Reader r(p);
  ByeAck f;
  f.shots_completed = r.u64();
  f.windows_committed = r.u64();
  f.shed_shots = r.u64();
  r.done();
  return f;
}

RecvStatus read_frame(int fd, Frame& out, bool (*keep_going)(void*),
                      void* ctx) {
  std::uint8_t header[8];
  RecvStatus s = read_exact(fd, header, sizeof header, keep_going, ctx);
  if (s != RecvStatus::kOk) return s;
  out.type = static_cast<FrameType>(header[0]);
  if (header[1] != 0 || header[2] != 0 || header[3] != 0)
    return RecvStatus::kError;
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i)
    len |= static_cast<std::uint32_t>(header[4 + i]) << (8 * i);
  if (len > kMaxPayload) return RecvStatus::kError;
  out.payload.resize(len);
  if (len == 0) return RecvStatus::kOk;
  s = read_exact(fd, out.payload.data(), len, keep_going, ctx);
  return s == RecvStatus::kEof ? RecvStatus::kError : s;
}

bool write_frame(int fd, FrameType type,
                 const std::vector<std::uint8_t>& payload) {
  std::uint8_t header[8] = {static_cast<std::uint8_t>(type), 0, 0, 0, 0, 0,
                            0, 0};
  const auto len = static_cast<std::uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) header[4 + i] = (len >> (8 * i)) & 0xff;
  if (!write_all(fd, header, sizeof header)) return false;
  return payload.empty() || write_all(fd, payload.data(), payload.size());
}

}  // namespace serve
}  // namespace radsurf
