// Spec-driven configuration of `radsurf serve` and its load generator.
//
// The server and the load generator are separate processes that must
// agree bit-for-bit on the experiment (code, architecture, rounds, noise,
// window layout) — both sides therefore build their InjectionEngine from
// the SAME spec params block, parsed here.  Accepted fields (all under
// $.params, all optional):
//
//   "code": "repetition" | "rep" | "xxzz" | "rotated_memory_x" |
//           "rotated_x" | "rotated_memory_z" | "rotated_z" | "rotated"
//   "distance": 5            code distance (repetition maps to (d, 1))
//   "arch": "mesh:5x2"       topology name (arch/topologies.hpp)
//   "rounds": 200            stabilisation rounds per shot
//   "error_rate": 1e-2       intrinsic physical error rate
//   "decoder_error_rate": 0  matching-graph weighting override
//   "window": 10, "commit": 5   sliding-window layout (commit 0 = W/2)
//   "events_per_round": 0.02, "event_duration": 10  timeline model
//   "herald_events": 0       strikes pre-sampled into the HERALD workload
//   "herald_aware": true     honour HERALD frames with aware decoders
//   "port": 0                TCP loopback port (0 = ephemeral)
//   "tcp": true              listen on TCP at all
//   "unix_socket": ""        unix-domain socket path ("" disables)
//   "queue_capacity": 128    per-connection ingest queue bound
//   "streams", "shots_per_stream", "rounds_per_frame", "max_inflight"
//                            load-generator shape (client side only)
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cli/spec.hpp"
#include "inject/campaign.hpp"
#include "noise/timeline.hpp"
#include "serve/loadgen.hpp"
#include "serve/session.hpp"

namespace radsurf {
namespace serve {

struct ServeConfig {
  // --- experiment (must match between server and clients) -----------------
  std::string code = "repetition";
  std::size_t distance = 5;
  std::string arch = "mesh:5x2";
  std::size_t rounds = 200;
  double error_rate = 1e-2;
  double decoder_error_rate = 0.0;
  SlidingWindowOptions window{10, 5};
  double events_per_round = 0.02;
  std::size_t event_duration = 10;
  /// Strikes sampled (deterministically from the spec seed) into the
  /// HERALD realization the load generator announces; 0 = quiet streams.
  std::size_t herald_events = 0;

  // --- server side ---------------------------------------------------------
  // NOTE: server.window is not authoritative — ServeServer construction
  // must go through server_options(), which overwrites it with the
  // experiment-level `window` above so the server and the load
  // generator's offline expectations can never decode with different
  // window layouts.
  ServeOptions server;

  // --- load-generator side -------------------------------------------------
  std::size_t streams = 4;
  std::size_t shots_per_stream = 32;
  std::size_t rounds_per_frame = 10;
  std::size_t max_inflight = 4;

  /// Parse the accepted fields off `params` (caller owns finish()).
  static ServeConfig from_params(SpecReader& params);

  /// Server options with the experiment's sliding-window layout applied.
  /// Always construct ServeServer from this, never from `server` directly:
  /// a server decoding W/C different from the clients' offline decoders
  /// silently breaks the bit-for-bit parity pin.
  ServeOptions server_options() const {
    ServeOptions opts = server;
    opts.window = window;
    return opts;
  }

  /// Build the (long-timeline, sliding-window-only) engine of this config.
  std::unique_ptr<InjectionEngine> build_engine() const;
  RadiationTimeline build_timeline(const InjectionEngine& engine) const;
  /// The HERALD workload realization: `herald_events` strikes sampled from
  /// the timeline model (empty when herald_events == 0).
  std::vector<RadiationEvent> build_events(const InjectionEngine& engine,
                                           const RadiationTimeline& timeline,
                                           std::uint64_t seed) const;

  LoadGenOptions loadgen_options(std::uint64_t seed) const;
};

}  // namespace serve
}  // namespace radsurf
