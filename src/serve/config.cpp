#include "serve/config.hpp"

#include "arch/topologies.hpp"
#include "codes/code.hpp"
#include "util/rng.hpp"

namespace radsurf {
namespace serve {

namespace {

// Mirrors the grid layer's family vocabulary (cli/grid.cpp keeps its
// parser private; the accepted names are part of the spec schema).
CodeFamily parse_family(const std::string& name) {
  if (name == "repetition" || name == "rep") return CodeFamily::REPETITION;
  if (name == "xxzz") return CodeFamily::XXZZ;
  if (name == "rotated_memory_x" || name == "rotated_x")
    return CodeFamily::ROTATED_MEMORY_X;
  if (name == "rotated_memory_z" || name == "rotated_z" ||
      name == "rotated")
    return CodeFamily::ROTATED_MEMORY_Z;
  throw SpecError("$.params.code: unknown code family \"" + name +
                  "\" (accepted: repetition, xxzz, rotated_memory_x, "
                  "rotated_memory_z)");
}

}  // namespace

ServeConfig ServeConfig::from_params(SpecReader& params) {
  ServeConfig cfg;
  cfg.code = params.get_string("code", cfg.code);
  (void)parse_family(cfg.code);  // validate early
  cfg.distance =
      static_cast<std::size_t>(params.get_uint("distance", cfg.distance));
  cfg.arch = params.get_string("arch", cfg.arch);
  cfg.rounds =
      static_cast<std::size_t>(params.get_uint("rounds", cfg.rounds));
  cfg.error_rate = params.get_number("error_rate", cfg.error_rate);
  cfg.decoder_error_rate =
      params.get_number("decoder_error_rate", cfg.decoder_error_rate);
  cfg.window.window =
      static_cast<std::size_t>(params.get_uint("window", cfg.window.window));
  cfg.window.commit =
      static_cast<std::size_t>(params.get_uint("commit", cfg.window.commit));
  cfg.events_per_round =
      params.get_number("events_per_round", cfg.events_per_round);
  cfg.event_duration = static_cast<std::size_t>(
      params.get_uint("event_duration", cfg.event_duration));
  cfg.herald_events = static_cast<std::size_t>(
      params.get_uint("herald_events", cfg.herald_events));

  cfg.server.listen_tcp = params.get_bool("tcp", cfg.server.listen_tcp);
  cfg.server.tcp_port = static_cast<std::uint16_t>(
      params.get_uint("port", cfg.server.tcp_port));
  cfg.server.unix_path =
      params.get_string("unix_socket", cfg.server.unix_path);
  cfg.server.queue_capacity = static_cast<std::size_t>(
      params.get_uint("queue_capacity", cfg.server.queue_capacity));
  cfg.server.herald_aware =
      params.get_bool("herald_aware", cfg.server.herald_aware);

  cfg.streams =
      static_cast<std::size_t>(params.get_uint("streams", cfg.streams));
  cfg.shots_per_stream = static_cast<std::size_t>(
      params.get_uint("shots_per_stream", cfg.shots_per_stream));
  cfg.rounds_per_frame = static_cast<std::size_t>(
      params.get_uint("rounds_per_frame", cfg.rounds_per_frame));
  cfg.max_inflight = static_cast<std::size_t>(
      params.get_uint("max_inflight", cfg.max_inflight));

  if (cfg.rounds < 2) params.fail("rounds", "needs at least 2 rounds");
  if (!cfg.server.listen_tcp && cfg.server.unix_path.empty())
    params.fail("tcp", "no endpoint: tcp disabled and no unix_socket");
  return cfg;
}

std::unique_ptr<InjectionEngine> ServeConfig::build_engine() const {
  const CodeFamily family = parse_family(code);
  const int d = static_cast<int>(distance);
  const std::unique_ptr<SurfaceCode> code_obj =
      family == CodeFamily::REPETITION ? make_code(family, d, 1)
                                       : make_code(family, d, d);
  EngineOptions opts;
  opts.physical_error_rate = error_rate;
  opts.decoder_error_rate = decoder_error_rate;
  opts.rounds = rounds;
  // Serve decodes exclusively through sliding windows; whole-history
  // decoder tables at long horizons would be O((rounds * ns)^2) for
  // nothing.
  opts.whole_history_decoder = false;
  return std::make_unique<InjectionEngine>(*code_obj, make_topology(arch),
                                           opts);
}

RadiationTimeline ServeConfig::build_timeline(
    const InjectionEngine& engine) const {
  TimelineOptions topts;
  topts.events_per_round = events_per_round;
  topts.duration_rounds = event_duration;
  return RadiationTimeline(engine.radiation(), topts);
}

std::vector<RadiationEvent> ServeConfig::build_events(
    const InjectionEngine& engine, const RadiationTimeline& timeline,
    std::uint64_t seed) const {
  std::vector<RadiationEvent> events;
  if (herald_events == 0) return events;
  Rng rng(seed);
  // Keep drawing realizations until one carries at least herald_events
  // strikes, then truncate — deterministic per seed and never empty.
  for (int attempt = 0; attempt < 1000 && events.size() < herald_events;
       ++attempt)
    events = timeline.sample(rounds, engine.active_qubits(), rng);
  if (events.size() > herald_events) events.resize(herald_events);
  return events;
}

LoadGenOptions ServeConfig::loadgen_options(std::uint64_t seed) const {
  LoadGenOptions opts;
  opts.streams = streams;
  opts.shots_per_stream = shots_per_stream;
  opts.rounds_per_frame = rounds_per_frame;
  opts.max_inflight = max_inflight;
  opts.window = window;
  opts.seed = seed;
  return opts;
}

}  // namespace serve
}  // namespace radsurf
