#include "serve/session.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "util/error.hpp"

namespace radsurf {
namespace serve {

namespace {

bool event_less(const std::vector<RadiationEvent>& a,
                const std::vector<RadiationEvent>& b) {
  return std::lexicographical_compare(
      a.begin(), a.end(), b.begin(), b.end(),
      [](const RadiationEvent& x, const RadiationEvent& y) {
        if (x.round != y.round) return x.round < y.round;
        if (x.root != y.root) return x.root < y.root;
        return x.intensity < y.intensity;
      });
}

}  // namespace

ServeShared::ServeShared(const InjectionEngine& engine,
                         const RadiationTimeline* timeline,
                         ServeOptions options)
    : engine_(engine),
      timeline_(timeline),
      options_(std::move(options)),
      aware_cache_(&event_less) {
  base_ = engine_.make_stream_decoder(nullptr, {}, options_.window);
  const std::vector<std::uint32_t>& rounds = engine_.detector_rounds();
  syndrome_words_ = (rounds.size() + 63) / 64;
  round_masks_.assign(base_->num_rounds(),
                      std::vector<std::uint64_t>(syndrome_words_, 0));
  for (std::size_t d = 0; d < rounds.size(); ++d)
    round_masks_[rounds[d]][d / 64] |= std::uint64_t{1} << (d % 64);
}

HelloAck ServeShared::hello_ack() const {
  HelloAck ack;
  ack.num_rounds = static_cast<std::uint32_t>(base_->num_rounds());
  ack.num_detectors =
      static_cast<std::uint32_t>(engine_.detector_rounds().size());
  ack.syndrome_words = static_cast<std::uint32_t>(syndrome_words_);
  ack.window = static_cast<std::uint32_t>(base_->options().window);
  ack.commit = static_cast<std::uint32_t>(base_->options().resolved_commit());
  ack.num_windows = static_cast<std::uint32_t>(base_->num_windows());
  return ack;
}

std::shared_ptr<const SlidingWindowDecoder> ServeShared::decoder_for(
    const std::vector<RadiationEvent>& events) {
  if (events.empty() || !options_.herald_aware || timeline_ == nullptr)
    return base_;
  std::lock_guard<std::mutex> lock(aware_mu_);
  auto it = aware_cache_.find(events);
  if (it != aware_cache_.end()) return it->second;
  std::shared_ptr<const SlidingWindowDecoder> built =
      engine_.make_stream_decoder(timeline_, events, options_.window);
  stats_.aware_rebuilds.fetch_add(1, std::memory_order_relaxed);
  aware_cache_.emplace(events, built);
  return built;
}

ServeStatsSnapshot ServeShared::snapshot() const {
  ServeStatsSnapshot s;
  s.connections = stats_.connections.load(std::memory_order_relaxed);
  s.shots_completed = stats_.shots_completed.load(std::memory_order_relaxed);
  s.windows_committed =
      stats_.windows_committed.load(std::memory_order_relaxed);
  s.shed_shots = stats_.shed_shots.load(std::memory_order_relaxed);
  s.protocol_errors = stats_.protocol_errors.load(std::memory_order_relaxed);
  s.replies_dropped = stats_.replies_dropped.load(std::memory_order_relaxed);
  s.aware_rebuilds = stats_.aware_rebuilds.load(std::memory_order_relaxed);
  s.herald_switches = stats_.herald_switches.load(std::memory_order_relaxed);
  s.queue_high_water =
      stats_.queue_high_water.load(std::memory_order_relaxed);
  s.memo_lookups = base_->memo_lookups();
  s.memo_hits = base_->memo_hits();
  return s;
}

void StreamSession::fail(ErrorCode code, std::string message,
                         std::vector<Reply>& out) {
  failed_ = true;
  shared_.stats().protocol_errors.fetch_add(1, std::memory_order_relaxed);
  ErrorReply err;
  err.code = code;
  err.message = std::move(message);
  out.push_back({FrameType::kError, encode_error(err)});
}

void StreamSession::handle_rounds(const RoundsFrame& f,
                                  std::vector<Reply>& out) {
  if (failed_) return;
  if (f.words.size() != shared_.syndrome_words()) {
    std::ostringstream msg;
    msg << "ROUNDS carries " << f.words.size() << " words, expected "
        << shared_.syndrome_words();
    fail(ErrorCode::kBadPayload, msg.str(), out);
    return;
  }

  auto it = shots_.find(f.shot_id);
  if (it == shots_.end()) {
    if (!current_) current_ = shared_.decoder_for({});
    it = shots_.emplace(f.shot_id, ShotState{current_, {}}).first;
  }
  ShotState& shot = it->second;
  const SlidingWindowDecoder& dec = *shot.decoder;

  const std::size_t first = f.first_round;
  const std::size_t complete = first + f.num_rounds;
  if (f.num_rounds == 0 || first != shot.cursor.rounds_complete ||
      complete > dec.num_rounds()) {
    std::ostringstream msg;
    msg << "ROUNDS for shot " << f.shot_id << " covers [" << first << ", "
        << complete << ") but the stream is at round "
        << shot.cursor.rounds_complete << " of " << dec.num_rounds();
    fail(ErrorCode::kBadRounds, msg.str(), out);
    return;
  }

  // Stray-bit check + defect extraction: only bits of the rounds this
  // frame declares complete may be set.
  scratch_defects_.clear();
  for (std::size_t w = 0; w < f.words.size(); ++w) {
    std::uint64_t allowed = 0;
    for (std::size_t r = first; r < complete; ++r)
      allowed |= shared_.round_mask(r)[w];
    if ((f.words[w] & ~allowed) != 0) {
      std::ostringstream msg;
      msg << "ROUNDS word " << w << " of shot " << f.shot_id
          << " carries bits outside rounds [" << first << ", " << complete
          << ")";
      fail(ErrorCode::kStrayBits, msg.str(), out);
      return;
    }
    std::uint64_t bits = f.words[w];
    while (bits != 0) {
      const int b = __builtin_ctzll(bits);
      bits &= bits - 1;
      scratch_defects_.push_back(static_cast<std::uint32_t>(w * 64 + b));
    }
  }

  const std::size_t before = shot.cursor.next_window;
  try {
    dec.ingest(shot.cursor, scratch_defects_.data(), scratch_defects_.size(),
               complete);
  } catch (const InvalidArgument& e) {
    fail(ErrorCode::kBadRounds, e.what(), out);
    return;
  }

  for (std::size_t w = before; w < shot.cursor.next_window; ++w) {
    CommitReply commit;
    commit.shot_id = f.shot_id;
    commit.window_index = static_cast<std::uint32_t>(w);
    commit.end_round = static_cast<std::uint32_t>(dec.window_end_round(w));
    out.push_back({FrameType::kCommit, encode_commit(commit)});
    ++windows_committed_;
    shared_.stats().windows_committed.fetch_add(1,
                                                std::memory_order_relaxed);
  }

  if (shot.cursor.next_window == dec.num_windows()) {
    ResultReply result;
    result.shot_id = f.shot_id;
    result.prediction = dec.finish(shot.cursor);
    out.push_back({FrameType::kResult, encode_result(result)});
    shots_.erase(it);
    ++shots_completed_;
    shared_.stats().shots_completed.fetch_add(1, std::memory_order_relaxed);
  }
}

void StreamSession::handle_herald(const HeraldFrame& f,
                                  std::vector<Reply>& out) {
  (void)out;
  if (failed_) return;
  shared_.stats().herald_switches.fetch_add(1, std::memory_order_relaxed);
  current_ = shared_.decoder_for(f.events);
}

void StreamSession::handle_bye(std::vector<Reply>& out) {
  if (failed_) return;
  ByeAck ack;
  ack.shots_completed = shots_completed_;
  ack.windows_committed = windows_committed_;
  ack.shed_shots = shed_shots_;
  out.push_back({FrameType::kByeAck, encode_bye_ack(ack)});
}

}  // namespace serve
}  // namespace radsurf
