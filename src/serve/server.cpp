#include "serve/server.hpp"

#include <cerrno>
#include <cstring>
#include <unordered_set>
#include <utility>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "util/error.hpp"

namespace radsurf {
namespace serve {

namespace {

void set_timeout(int fd, int optname, int ms) {
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = (ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, optname, &tv, sizeof tv);
}

bool reader_keep_going(void* ctx) {
  return !static_cast<std::atomic<bool>*>(ctx)->load(
      std::memory_order_relaxed);
}

}  // namespace

ServeServer::ServeServer(const InjectionEngine& engine,
                         const RadiationTimeline* timeline,
                         ServeOptions options)
    : shared_(engine, timeline, std::move(options)) {}

ServeServer::~ServeServer() { shutdown(); }

void ServeServer::configure_socket(int fd) const {
  set_timeout(fd, SO_RCVTIMEO, shared_.options().io_timeout_ms);
  set_timeout(fd, SO_SNDTIMEO, shared_.options().write_timeout_ms);
  // COMMIT replies are tiny; Nagle batching against delayed ACKs would put
  // a ~40ms floor under the commit latency the service exists to bound.
  // (No-op with EOPNOTSUPP on unix-domain sockets.)
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

void ServeServer::start() {
  RADSURF_CHECK_ARG(!started_, "serve: start() called twice");
  const ServeOptions& opt = shared_.options();
  RADSURF_CHECK_ARG(opt.listen_tcp || !opt.unix_path.empty(),
                    "serve: no listening endpoint configured");

  if (opt.listen_tcp) {
    tcp_listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    RADSURF_ASSERT_MSG(tcp_listen_fd_ >= 0,
                       "serve: socket() failed: " << std::strerror(errno));
    const int one = 1;
    ::setsockopt(tcp_listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(opt.tcp_port);
    RADSURF_ASSERT_MSG(
        ::bind(tcp_listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof addr) == 0,
        "serve: bind(127.0.0.1:" << opt.tcp_port
                                 << ") failed: " << std::strerror(errno));
    RADSURF_ASSERT_MSG(::listen(tcp_listen_fd_, 64) == 0,
                       "serve: listen failed: " << std::strerror(errno));
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    ::getsockname(tcp_listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
    tcp_port_ = ntohs(bound.sin_port);
  }

  if (!opt.unix_path.empty()) {
    RADSURF_CHECK_ARG(opt.unix_path.size() < sizeof(sockaddr_un{}.sun_path),
                      "serve: unix socket path too long: " << opt.unix_path);
    unix_listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    RADSURF_ASSERT_MSG(unix_listen_fd_ >= 0,
                       "serve: socket(AF_UNIX) failed: "
                           << std::strerror(errno));
    ::unlink(opt.unix_path.c_str());
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, opt.unix_path.c_str(),
                 sizeof addr.sun_path - 1);
    RADSURF_ASSERT_MSG(
        ::bind(unix_listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof addr) == 0,
        "serve: bind(" << opt.unix_path
                       << ") failed: " << std::strerror(errno));
    RADSURF_ASSERT_MSG(::listen(unix_listen_fd_, 64) == 0,
                       "serve: listen(unix) failed: "
                           << std::strerror(errno));
  }

  started_ = true;
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void ServeServer::begin_drain() {
  draining_.store(true, std::memory_order_relaxed);
}

void ServeServer::shutdown() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  begin_drain();
  stopping_.store(true, std::memory_order_relaxed);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (tcp_listen_fd_ >= 0) ::close(tcp_listen_fd_);
  if (unix_listen_fd_ >= 0) {
    ::close(unix_listen_fd_);
    ::unlink(shared_.options().unix_path.c_str());
  }
  tcp_listen_fd_ = unix_listen_fd_ = -1;

  std::lock_guard<std::mutex> lock(conns_mu_);
  for (auto& conn : conns_) {
    // Reader aborts at its next SO_RCVTIMEO poll; the worker drains the
    // queue fully (in-flight windows still commit) before pop() fails.
    if (conn->reader.joinable()) conn->reader.join();
    conn->queue.close();
    if (conn->worker.joinable()) conn->worker.join();
    if (conn->fd >= 0) ::close(conn->fd);
    conn->fd = -1;
  }
}

void ServeServer::accept_loop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    pollfd fds[2];
    nfds_t n = 0;
    if (tcp_listen_fd_ >= 0) fds[n++] = {tcp_listen_fd_, POLLIN, 0};
    if (unix_listen_fd_ >= 0) fds[n++] = {unix_listen_fd_, POLLIN, 0};
    const int ready = ::poll(fds, n, shared_.options().io_timeout_ms);
    if (ready <= 0) continue;
    for (nfds_t i = 0; i < n; ++i) {
      if ((fds[i].revents & POLLIN) == 0) continue;
      const int fd = ::accept(fds[i].fd, nullptr, nullptr);
      if (fd < 0) continue;
      configure_socket(fd);
      shared_.stats().connections.fetch_add(1, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns_.push_back(std::make_unique<Connection>(shared_, fd));
      Connection& conn = *conns_.back();
      conn.reader = std::thread([this, &conn] { reader_loop(conn); });
      conn.worker = std::thread([this, &conn] { worker_loop(conn); });
    }
  }
}

bool ServeServer::write_reply(Connection& conn, FrameType type,
                              const std::vector<std::uint8_t>& payload) {
  std::lock_guard<std::mutex> lock(conn.write_mu);
  if (write_frame(conn.fd, type, payload)) return true;
  shared_.stats().replies_dropped.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void ServeServer::reader_loop(Connection& conn) {
  ServeStats& stats = shared_.stats();
  Frame frame;

  // --- handshake: the first frame must be a version-matched HELLO.
  RecvStatus s = read_frame(conn.fd, frame, &reader_keep_going, &stopping_);
  if (s != RecvStatus::kOk) {
    if (s == RecvStatus::kError)
      stats.protocol_errors.fetch_add(1, std::memory_order_relaxed);
    conn.queue.close();
    return;
  }
  bool ok = frame.type == FrameType::kHello;
  std::uint32_t version = 0;
  if (ok) {
    try {
      version = decode_hello(frame.payload).version;
    } catch (const InvalidArgument&) {
      ok = false;
    }
  }
  if (!ok || version != kProtocolVersion) {
    stats.protocol_errors.fetch_add(1, std::memory_order_relaxed);
    ErrorReply err;
    err.code = ok ? ErrorCode::kBadVersion : ErrorCode::kExpectedHello;
    err.message = ok ? "unsupported protocol version"
                     : "first frame must be HELLO";
    write_reply(conn, FrameType::kError, encode_error(err));
    ::shutdown(conn.fd, SHUT_RDWR);
    conn.queue.close();
    return;
  }
  write_reply(conn, FrameType::kHelloAck, encode_hello_ack(shared_.hello_ack()));

  // --- frame loop with shed-or-enqueue admission.
  std::unordered_set<std::uint64_t> admitted;
  std::unordered_set<std::uint64_t> shed;
  bool bye = false;
  while (!bye) {
    s = read_frame(conn.fd, frame, &reader_keep_going, &stopping_);
    if (s != RecvStatus::kOk) {
      if (s == RecvStatus::kError) {
        stats.protocol_errors.fetch_add(1, std::memory_order_relaxed);
        ErrorReply err;
        err.code = ErrorCode::kBadPayload;
        err.message = "malformed frame header";
        write_reply(conn, FrameType::kError, encode_error(err));
        ::shutdown(conn.fd, SHUT_RDWR);
      }
      break;
    }
    WorkItem item;
    try {
      switch (frame.type) {
        case FrameType::kRounds: {
          item.kind = WorkItem::Kind::kRounds;
          item.rounds = decode_rounds(frame.payload);
          const std::uint64_t shot = item.rounds.shot_id;
          if (shed.count(shot) != 0) continue;  // rest of a shed shot
          if (admitted.count(shot) == 0) {
            const bool refuse =
                draining_.load(std::memory_order_relaxed) ||
                conn.queue.full();
            if (refuse) {
              shed.insert(shot);
              conn.session.note_shed();
              stats.shed_shots.fetch_add(1, std::memory_order_relaxed);
              ShedReply sr;
              sr.shot_id = shot;
              sr.reason = draining_.load(std::memory_order_relaxed)
                              ? ShedReason::kShuttingDown
                              : ShedReason::kQueueFull;
              write_reply(conn, FrameType::kShed, encode_shed(sr));
              continue;
            }
            admitted.insert(shot);
          }
          break;
        }
        case FrameType::kHerald:
          item.kind = WorkItem::Kind::kHerald;
          item.herald = decode_herald(frame.payload);
          break;
        case FrameType::kBye:
          item.kind = WorkItem::Kind::kBye;
          bye = true;
          break;
        default: {
          stats.protocol_errors.fetch_add(1, std::memory_order_relaxed);
          ErrorReply err;
          err.code = ErrorCode::kUnknownFrame;
          err.message = "unexpected frame type";
          write_reply(conn, FrameType::kError, encode_error(err));
          ::shutdown(conn.fd, SHUT_RDWR);
          conn.queue.close();
          return;
        }
      }
    } catch (const InvalidArgument& e) {
      stats.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      ErrorReply err;
      err.code = ErrorCode::kBadPayload;
      err.message = e.what();
      write_reply(conn, FrameType::kError, encode_error(err));
      ::shutdown(conn.fd, SHUT_RDWR);
      conn.queue.close();
      return;
    }
    // Admitted work blocks when the queue is full: backpressure, not loss.
    conn.queue.push(std::move(item));
    stats.bump_high_water(conn.queue.high_water());
  }
  conn.queue.close();
}

void ServeServer::worker_loop(Connection& conn) {
  WorkItem item;
  std::vector<Reply> replies;
  while (conn.queue.pop(item)) {
    replies.clear();
    switch (item.kind) {
      case WorkItem::Kind::kRounds:
        conn.session.handle_rounds(item.rounds, replies);
        break;
      case WorkItem::Kind::kHerald:
        conn.session.handle_herald(item.herald, replies);
        break;
      case WorkItem::Kind::kBye:
        conn.session.handle_bye(replies);
        break;
    }
    for (const Reply& r : replies) write_reply(conn, r.type, r.payload);
    if (conn.session.failed()) {
      // Terminal protocol error: stop reading, drop the rest of the queue.
      ::shutdown(conn.fd, SHUT_RDWR);
      conn.queue.close();
      while (conn.queue.pop(item)) {
      }
      return;
    }
    if (item.kind == WorkItem::Kind::kBye) return;
  }
}

}  // namespace serve
}  // namespace radsurf
