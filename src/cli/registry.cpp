#include "cli/registry.hpp"

#include <algorithm>
#include <sstream>

#include "cli/grid.hpp"
#include "cli/perf_scenarios.hpp"
#include "cli/serve_scenario.hpp"
#include "core/ablations.hpp"

namespace radsurf {

namespace {

/// Common shots/seed mapping: an explicit shot budget always wins; with
/// no budget, smoke mode takes the tiny floor (the resolve_shots minimum
/// of 20) instead of the per-figure default.
ExperimentOptions experiment_options(const ScenarioSpec& spec) {
  ExperimentOptions opts;
  opts.shots = spec.shots != 0 ? spec.shots
                               : (spec.smoke ? 1 : 0);  // 1 floors to 20
  opts.seed = spec.seed;
  return opts;
}

/// Factory for scenarios parameterized by ExperimentOptions only: rejects
/// any spec.params field.
ScenarioFactory options_only(
    ExperimentReport (*fn)(const ExperimentOptions&)) {
  return [fn](const ScenarioSpec& spec) -> std::unique_ptr<Scenario> {
    SpecReader params(spec.params, "$.params");
    params.finish();  // no params accepted
    const ExperimentOptions opts = experiment_options(spec);
    return std::make_unique<FunctionScenario>(
        [fn, opts](CampaignSink*) { return fn(opts); });
  };
}

RadiationModel radiation_params(SpecReader& params) {
  RadiationModel model;
  model.gamma = params.get_number("gamma", model.gamma);
  model.n = params.get_number("n", model.n);
  model.ns = static_cast<std::size_t>(params.get_uint("ns", model.ns));
  return model;
}

std::unique_ptr<Scenario> make_fig3(const ScenarioSpec& spec) {
  SpecReader params(spec.params, "$.params");
  const RadiationModel model = radiation_params(params);
  params.finish();
  return std::make_unique<FunctionScenario>(
      [model](CampaignSink*) { return fig3_temporal_decay(model); });
}

std::unique_ptr<Scenario> make_fig4(const ScenarioSpec& spec) {
  SpecReader params(spec.params, "$.params");
  const RadiationModel model = radiation_params(params);
  const int extent =
      static_cast<int>(params.get_uint("extent", 10));
  params.finish();
  return std::make_unique<FunctionScenario>([model, extent](CampaignSink*) {
    return fig4_spatial_decay(model, extent);
  });
}

std::unique_ptr<Scenario> make_fig5(const ScenarioSpec& spec) {
  SpecReader params(spec.params, "$.params");
  Fig5Options fig5;
  fig5.error_rates =
      params.get_number_list("error_rates", fig5.error_rates);
  fig5.root = static_cast<std::uint32_t>(params.get_uint("root", fig5.root));
  params.finish();
  const ExperimentOptions opts = experiment_options(spec);
  return std::make_unique<FunctionScenario>([opts, fig5](CampaignSink*) {
    return fig5_noise_vs_radiation(opts, fig5);
  });
}

std::unique_ptr<Scenario> make_fig6(const ScenarioSpec& spec) {
  SpecReader params(spec.params, "$.params");
  Fig6Options fig6;
  std::vector<std::uint64_t> dists;
  for (const int d : fig6.rotated_distances)
    dists.push_back(static_cast<std::uint64_t>(d));
  dists = params.get_uint_list("rotated_distances", dists);
  fig6.rotated_distances.clear();
  for (const std::uint64_t d : dists)
    fig6.rotated_distances.push_back(static_cast<int>(d));
  params.finish();
  const ExperimentOptions opts = experiment_options(spec);
  return std::make_unique<FunctionScenario>([opts, fig6](CampaignSink*) {
    return fig6_code_distance(opts, fig6);
  });
}

std::unique_ptr<Scenario> make_perf(
    const ScenarioSpec& spec,
    ExperimentReport (*fn)(const PerfRunOptions&)) {
  SpecReader params(spec.params, "$.params");
  PerfRunOptions opts;
  opts.smoke = spec.smoke;
  // The smoke sweep must not clobber the repo's perf trajectory, so smoke
  // defaults to not writing; explicit bench_json always wins.
  opts.bench_json =
      params.get_string("bench_json", spec.smoke ? "" : "BENCH_perf.json");
  params.finish();
  return std::make_unique<FunctionScenario>(
      [fn, opts](CampaignSink*) { return fn(opts); });
}

std::vector<ScenarioInfo> build_registry() {
  std::vector<ScenarioInfo> r;
  r.push_back({"fig3", "temporal decay T(t) and its step approximation",
               make_fig3});
  r.push_back({"fig4", "spatial decay S(d) heatmap around the impact point",
               make_fig4});
  r.push_back({"fig5",
               "LER landscape: intrinsic noise x radiation time evolution",
               make_fig5});
  r.push_back({"fig6", "single non-spreading erasure at t=0 vs code distance",
               make_fig6});
  r.push_back({"fig7",
               "k simultaneous erasures vs one spreading radiation fault",
               options_only(fig7_fault_spread)});
  r.push_back({"fig8",
               "median LER by root qubit across architectures",
               options_only(fig8_architecture)});
  r.push_back({"abl_decoders",
               "decoder-kind ablation (mwpm / union-find / greedy)",
               options_only(abl_decoders)});
  r.push_back({"abl_rounds", "stabilisation-round-count ablation",
               options_only(abl_rounds)});
  r.push_back({"abl_meas_error", "readout (SPAM) error sensitivity sweep",
               options_only(abl_meas_error)});
  r.push_back({"abl_noise_channel",
               "two-qubit channel ablation: E(x)E vs uniform 15-Pauli",
               options_only(abl_noise_channel)});
  r.push_back({"abl_time_sampling",
               "temporal step-function resolution ns sweep",
               options_only(abl_time_sampling)});
  r.push_back({"abl_aware_decoder",
               "radiation-aware MWPM headroom (paper RQ3)",
               options_only(abl_aware_decoder)});
  r.push_back({"ext_timeline",
               "LER per round vs Poisson event rate, sliding windows",
               options_only(ext_timeline)});
  r.push_back({"ext_logical_layer",
               "post-QEC logical-layer fault injection (5-patch GHZ)",
               options_only(ext_logical_layer)});
  r.push_back({"perf_simulator",
               "simulator throughput benches (BENCH_perf.json)",
               [](const ScenarioSpec& s) {
                 return make_perf(s, run_perf_simulator);
               }});
  r.push_back({"perf_decoder",
               "decoder throughput benches (BENCH_perf.json)",
               [](const ScenarioSpec& s) {
                 return make_perf(s, run_perf_decoder);
               }});
  r.push_back({"perf_pipeline",
               "end-to-end campaign throughput benches (BENCH_perf.json)",
               [](const ScenarioSpec& s) {
                 return make_perf(s, run_perf_pipeline);
               }});
  r.push_back({"perf_timeline",
               "long-horizon timeline throughput benches (BENCH_perf.json)",
               [](const ScenarioSpec& s) {
                 return make_perf(s, run_perf_timeline);
               }});
  r.push_back({"perf_serve",
               "streaming decode service p50/p99 commit-latency benches "
               "(BENCH_perf.json)",
               [](const ScenarioSpec& s) {
                 return make_perf(s, run_perf_serve);
               }});
  r.push_back({"serve",
               "streaming decode round-trip (in-process server + load "
               "generator, parity-pinned)",
               make_serve_scenario});
  r.push_back({"grid",
               "generic cross-product campaign over engine and injection "
               "axes",
               make_grid_scenario});
  return r;
}

}  // namespace

const std::vector<ScenarioInfo>& scenario_registry() {
  static const std::vector<ScenarioInfo> registry = build_registry();
  return registry;
}

const ScenarioInfo* find_scenario(const std::string& name) {
  for (const ScenarioInfo& info : scenario_registry())
    if (info.name == name) return &info;
  return nullptr;
}

std::unique_ptr<Scenario> make_scenario(const ScenarioSpec& spec) {
  const ScenarioInfo* info = find_scenario(spec.scenario);
  if (info == nullptr) {
    std::ostringstream ss;
    ss << "unknown scenario \"" << spec.scenario << "\" (registered:";
    for (const ScenarioInfo& i : scenario_registry()) ss << " " << i.name;
    ss << ")";
    throw SpecError(ss.str());
  }
  return info->factory(spec);
}

ScenarioSpec smoke_spec(const std::string& name) {
  ScenarioSpec spec;
  spec.scenario = name;
  spec.smoke = true;
  return spec;
}

}  // namespace radsurf
