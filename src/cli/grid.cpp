#include "cli/grid.hpp"

#include <algorithm>
#include <atomic>
#include <charconv>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "arch/topologies.hpp"
#include "cli/checkpoint.hpp"
#include "codes/code.hpp"
#include "inject/campaign.hpp"
#include "transpile/transpiler.hpp"
#include "util/hash.hpp"
#include "util/json.hpp"
#include "util/parallel.hpp"

namespace radsurf {

namespace {

// --- axis value types -------------------------------------------------------

struct CodeAxis {
  std::string label;  // canonical "family:dzxdx"
  CodeFamily family;
  int dz = 0, dx = 0;

  std::unique_ptr<SurfaceCode> make() const {
    return make_code(family, dz, dx);
  }
};

struct ConfigAxis {
  CodeAxis code;
  std::string arch;  // make_topology name
};

enum class InjectionKind { INTRINSIC, RADIATION, ERASURE, TIMELINE };

struct InjectionAxis {
  InjectionKind kind = InjectionKind::INTRINSIC;
  std::string label;
  // radiation
  std::uint32_t root = 2;
  double intensity = 1.0;
  bool spread = true;
  bool aware = false;
  // erasure
  std::vector<std::uint32_t> qubits;
  bool sustained = false;
  // timeline
  TimelineOptions timeline;
  std::size_t num_timelines = 4;
  SlidingWindowOptions window;
};

// One decoders-axis entry: the backend options plus the canonical label
// cell keys and report rows use ("mwpm", "mwpm:dense", "union-find", ...).
// Plain kinds keep their historic labels, so existing checkpoints resume.
struct DecoderAxis {
  DecoderOptions options;
  std::string label;
};

struct GridPlan {
  std::vector<ConfigAxis> configs;
  std::vector<DecoderAxis> decoders;
  std::vector<double> error_rates;
  std::vector<double> meas_error_rates;
  std::vector<std::size_t> rounds;
  std::vector<SamplingPath> paths;
  std::vector<InjectionAxis> injections;
  std::size_t shots = 0;
  std::uint64_t seed = 0;
  std::size_t jobs = 1;
  bool smoke = false;
  // Engine sampling knobs applied to every cell (see EngineOptions).
  bool herald_promotion = true;
  std::size_t promotion_min_group = 2;
  bool cache_auto_bypass = true;
};

// --- axis parsing -----------------------------------------------------------

/// Strict base-10 int parse: the whole of `text` must be digits (no sign,
/// no trailing garbage) — "5,1" or "3x3x7" must fail, not half-parse.
bool parse_full_int(const std::string& text, int* out) {
  if (text.empty()) return false;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), *out);
  return ec == std::errc() && ptr == text.data() + text.size();
}

CodeFamily parse_family_name(const std::string& family,
                             const SpecReader& where,
                             const std::string& key) {
  if (family == "repetition" || family == "rep")
    return CodeFamily::REPETITION;
  if (family == "xxzz") return CodeFamily::XXZZ;
  if (family == "rotated_memory_x" || family == "rotated_x")
    return CodeFamily::ROTATED_MEMORY_X;
  if (family == "rotated_memory_z" || family == "rotated_z" ||
      family == "rotated")
    return CodeFamily::ROTATED_MEMORY_Z;
  throw SpecError(where.path() + "." + key + ": unknown code family \"" +
                  family +
                  "\" (expected repetition:<d>, xxzz:<dz>x<dx>, "
                  "rotated_memory_x:<d>, or rotated_memory_z:<d>)");
}

bool is_rotated(CodeFamily family) {
  return family == CodeFamily::ROTATED_MEMORY_X ||
         family == CodeFamily::ROTATED_MEMORY_Z;
}

std::string family_label(CodeFamily family) {
  switch (family) {
    case CodeFamily::REPETITION: return "repetition";
    case CodeFamily::XXZZ: return "xxzz";
    case CodeFamily::ROTATED_MEMORY_X: return "rotated_memory_x";
    case CodeFamily::ROTATED_MEMORY_Z: return "rotated_memory_z";
  }
  return "?";
}

/// CodeAxis with a validated (dz, dx) and the canonical label cell keys
/// use: "family:dzxdx" for the historic families, "family:d" for the
/// square rotated ones.
CodeAxis make_code_axis(CodeFamily family, int dz, int dx,
                        const SpecReader& where, const std::string& key) {
  CodeAxis axis;
  axis.family = family;
  axis.dz = dz;
  axis.dx = dx;
  axis.label = is_rotated(family)
                   ? family_label(family) + ":" + std::to_string(dz)
                   : family_label(family) + ":" + std::to_string(dz) + "x" +
                         std::to_string(dx);
  // Validate dimensions now (make_code throws InvalidArgument with the
  // family's rules).
  try {
    (void)make_code(axis.family, dz, dx);
  } catch (const Error& e) {
    throw SpecError(where.path() + "." + key + ": " + e.what());
  }
  return axis;
}

/// The single-distance expansion of a bare family name under the
/// `distances` axis: repetition d -> (d,1), every square family d -> (d,d).
CodeAxis code_axis_at_distance(CodeFamily family, int d,
                               const SpecReader& where,
                               const std::string& key) {
  const int dx = family == CodeFamily::REPETITION ? 1 : d;
  return make_code_axis(family, d, dx, where, key);
}

CodeAxis parse_code(const std::string& text, const SpecReader& where,
                    const std::string& key) {
  const auto colon = text.find(':');
  const CodeFamily family =
      parse_family_name(text.substr(0, colon), where, key);
  int dz = 0, dx = 1;
  if (colon == std::string::npos) {
    throw SpecError(where.path() + "." + key + ": code \"" + text +
                    "\" is missing its distance (e.g. repetition:5, "
                    "xxzz:3x3, rotated_memory_z:5) — bare family names are "
                    "only valid together with a distances axis");
  }
  const std::string dims = text.substr(colon + 1);
  const auto x = dims.find('x');
  bool ok;
  if (x == std::string::npos) {
    ok = parse_full_int(dims, &dz);
    dx = family == CodeFamily::REPETITION ? 1 : dz;
  } else {
    if (is_rotated(family))
      throw SpecError(where.path() + "." + key + ": rotated codes take one "
                      "square distance (e.g. rotated_memory_z:5), got \"" +
                      text + "\"");
    ok = parse_full_int(dims.substr(0, x), &dz) &&
         parse_full_int(dims.substr(x + 1), &dx);
  }
  if (!ok)
    throw SpecError(where.path() + "." + key + ": malformed code distance "
                    "in \"" + text + "\" (e.g. repetition:5, xxzz:3x3, "
                    "rotated_memory_z:5)");
  return make_code_axis(family, dz, dx, where, key);
}

/// Architecture name "native" is the code's own connectivity graph (built
/// per cell from the code instance); every other name must be a valid
/// make_topology device.
constexpr const char* kNativeArch = "native";

std::string validate_arch(const std::string& name, const SpecReader& where,
                          const std::string& key) {
  if (name == kNativeArch) return name;
  try {
    (void)make_topology(name);
  } catch (const Error& e) {
    throw SpecError(where.path() + "." + key + ": " + e.what());
  }
  return name;
}

DecoderAxis parse_decoder(const std::string& name, const SpecReader& where,
                          const std::string& key) {
  DecoderAxis axis;
  if (name == "mwpm") {
    axis.options = DecoderKind::MWPM;
  } else if (name == "mwpm:dense") {
    // Dense all-pairs blossom oracle instead of the sparse region-growing
    // matcher for above-DP clusters — the before/after side of the
    // matching cliff, sweepable next to "mwpm" in one grid.
    axis.options = DecoderKind::MWPM;
    axis.options.dense_matcher = true;
  } else if (name == "mwpm:aware") {
    // Herald-conditioned reweighting: timeline cells decode heralded
    // realizations on a strike-reweighted matching graph (see
    // DecoderOptions::herald_aware).  Sweepable next to "mwpm" in one
    // grid, so an ablation spec carries the on/off pair.
    axis.options = DecoderKind::MWPM;
    axis.options.herald_aware = true;
  } else if (name == "union-find" || name == "union_find") {
    axis.options = DecoderKind::UNION_FIND;
  } else if (name == "greedy") {
    axis.options = DecoderKind::GREEDY;
  } else {
    throw SpecError(where.path() + "." + key + ": unknown decoder \"" + name +
                    "\" (expected one of mwpm, mwpm:dense, mwpm:aware, "
                    "union-find, greedy)");
  }
  axis.label = decoder_kind_name(axis.options.kind) +
               (axis.options.dense_matcher ? ":dense" : "") +
               (axis.options.herald_aware ? ":aware" : "");
  return axis;
}

SamplingPath parse_path(const std::string& name, const SpecReader& where,
                        const std::string& key) {
  if (name == "auto") return SamplingPath::AUTO;
  if (name == "exact") return SamplingPath::EXACT;
  throw SpecError(where.path() + "." + key + ": unknown sampling path \"" +
                  name + "\" (expected auto or exact)");
}

std::string format_double(double v) { return JsonValue::number_to_string(v); }

InjectionAxis parse_injection(const JsonValue& json, const std::string& path,
                              bool smoke) {
  SpecReader r(json, path);
  InjectionAxis inj;
  const std::string kind = r.get_string("kind", "");
  std::ostringstream label;
  if (kind == "intrinsic") {
    inj.kind = InjectionKind::INTRINSIC;
    label << "intrinsic";
  } else if (kind == "radiation") {
    inj.kind = InjectionKind::RADIATION;
    inj.root = static_cast<std::uint32_t>(r.get_uint("root", 2));
    inj.intensity = r.get_number("intensity", 1.0);
    inj.spread = r.get_bool("spread", true);
    inj.aware = r.get_bool("aware", false);
    label << "radiation(root=" << inj.root
          << ",intensity=" << format_double(inj.intensity)
          << ",spread=" << (inj.spread ? "true" : "false")
          << (inj.aware ? ",aware=true" : "") << ")";
  } else if (kind == "erasure") {
    inj.kind = InjectionKind::ERASURE;
    const auto qubits = r.get_uint_list("qubits", {});
    if (qubits.empty())
      r.fail("qubits", "required: the physical qubits of the erasure set");
    for (const std::uint64_t q : qubits)
      inj.qubits.push_back(static_cast<std::uint32_t>(q));
    inj.sustained = r.get_bool("sustained", false);
    label << (inj.sustained ? "sustained_erasure(qubits=" : "erasure(qubits=");
    for (std::size_t i = 0; i < inj.qubits.size(); ++i)
      label << (i ? "+" : "") << inj.qubits[i];
    label << ")";
  } else if (kind == "timeline") {
    inj.kind = InjectionKind::TIMELINE;
    inj.timeline.events_per_round = r.get_number("events_per_round", 0.01);
    inj.timeline.burst_multiplicity =
        static_cast<std::size_t>(r.get_uint("burst_multiplicity", 1));
    inj.timeline.duration_rounds =
        static_cast<std::size_t>(r.get_uint("duration_rounds", 10));
    inj.timeline.intensity = r.get_number("intensity", 1.0);
    inj.timeline.spread = r.get_bool("spread", true);
    inj.timeline.chip_burst = r.get_bool("chip_burst", false);
    inj.timeline.qp_lambda = r.get_number("qp_lambda", 3.0);
    if (inj.timeline.qp_lambda <= 0.0)
      r.fail("qp_lambda", "quasiparticle diffusion length must be > 0");
    inj.num_timelines =
        static_cast<std::size_t>(r.get_uint("num_timelines", 4));
    if (smoke) inj.num_timelines = std::min<std::size_t>(inj.num_timelines, 1);
    inj.window.window = static_cast<std::size_t>(r.get_uint("window", 8));
    inj.window.commit = static_cast<std::size_t>(r.get_uint("commit", 0));
    label << "timeline(rate=" << format_double(inj.timeline.events_per_round)
          << ",duration=" << inj.timeline.duration_rounds
          << ",burst=" << inj.timeline.burst_multiplicity;
    // Non-default-only label parts: they keep existing timeline cell keys
    // (and their checkpoints) untouched while making cells that differ in
    // these fields distinct — two timeline injections differing only in
    // intensity used to collide into one cell key.
    if (inj.timeline.intensity != 1.0)
      label << ",intensity=" << format_double(inj.timeline.intensity);
    if (!inj.timeline.spread) label << ",spread=false";
    if (inj.timeline.chip_burst)
      label << ",chip_burst=lambda" << format_double(inj.timeline.qp_lambda);
    label << ",timelines=" << inj.num_timelines << ",window="
          << inj.window.window << "/" << inj.window.resolved_commit() << ")";
  } else {
    r.fail("kind", "unknown injection kind \"" + kind +
                       "\" (expected one of intrinsic, radiation, erasure, "
                       "timeline)");
  }
  inj.label = label.str();
  r.finish();
  return inj;
}

GridPlan parse_plan(const ScenarioSpec& spec) {
  GridPlan plan;
  // An explicit budget always wins; smoke only shrinks the default.
  plan.shots = spec.shots != 0 ? spec.shots : (spec.smoke ? 8 : 256);
  plan.seed = spec.seed;
  plan.jobs = spec.jobs == 0 ? 1 : spec.jobs;
  plan.smoke = spec.smoke;

  SpecReader r(spec.params, "$.params");

  // (code, arch) pairs: either explicit "configs" or the codes x archs
  // product, optionally crossed with a first-class `distances` axis
  // (bare family names in `codes` expand over every distance).
  const JsonValue* configs = r.get_raw("configs");
  const bool has_codes = r.has("codes") || r.has("archs");
  if (configs != nullptr && has_codes)
    r.fail("configs", "give either configs (paired) or codes+archs "
                      "(full product), not both");
  std::vector<int> distances;
  for (const std::uint64_t d : r.get_uint_list("distances", {}))
    distances.push_back(static_cast<int>(d));
  if (configs != nullptr && !distances.empty())
    r.fail("distances", "only valid with the codes+archs product form "
                        "(configs pairs carry explicit distances)");
  if (configs != nullptr) {
    if (!configs->is_array())
      r.fail("configs", std::string("expected array of {code, arch} "
                                    "objects, got ") + configs->kind_name());
    for (std::size_t i = 0; i < configs->size(); ++i) {
      SpecReader rc((*configs)[i],
                    "$.params.configs[" + std::to_string(i) + "]");
      ConfigAxis cfg;
      const std::string code = rc.get_string("code", "");
      if (code.empty()) rc.fail("code", "required (e.g. repetition:5)");
      cfg.code = parse_code(code, rc, "code");
      const std::string arch = rc.get_string("arch", "");
      if (arch.empty()) rc.fail("arch", "required (e.g. mesh:5x2)");
      cfg.arch = validate_arch(arch, rc, "arch");
      rc.finish();
      plan.configs.push_back(std::move(cfg));
    }
    if (plan.configs.empty()) r.fail("configs", "list must not be empty");
  } else {
    const auto codes = r.get_string_list("codes", {"repetition:5"});
    const auto archs = r.get_string_list("archs", {"mesh:5x2"});
    std::vector<std::string> arch_names;
    for (const std::string& arch : archs)
      arch_names.push_back(validate_arch(arch, r, "archs"));
    for (const std::string& code : codes) {
      // A bare family name sweeps the distances axis; an explicit
      // "family:<d>" entry stays fixed (and may coexist with the sweep).
      std::vector<CodeAxis> axes;
      if (code.find(':') == std::string::npos && !distances.empty()) {
        const CodeFamily family = parse_family_name(code, r, "codes");
        for (const int d : distances)
          axes.push_back(code_axis_at_distance(family, d, r, "codes"));
      } else {
        axes.push_back(parse_code(code, r, "codes"));
      }
      for (const CodeAxis& axis : axes)
        for (const std::string& arch : arch_names)
          plan.configs.push_back({axis, arch});
    }
  }

  for (const std::string& d : r.get_string_list("decoders", {"mwpm"}))
    plan.decoders.push_back(parse_decoder(d, r, "decoders"));
  // Subset-DP cluster threshold for every MWPM axis entry: clusters up to
  // this size match by exact subset DP, larger ones escalate to blossom.
  const std::uint64_t dp_max =
      r.get_uint("dp_max_cluster", DecoderOptions{}.dp_max_cluster);
  if (dp_max > DecoderOptions::kDpClusterCap)
    r.fail("dp_max_cluster",
           "must be <= " + std::to_string(DecoderOptions::kDpClusterCap) +
               " (the DP tables are 2^k entries), got " +
               std::to_string(dp_max));
  for (DecoderAxis& d : plan.decoders)
    d.options.dp_max_cluster = static_cast<std::size_t>(dp_max);
  plan.error_rates = r.get_number_list("error_rates", {1e-2});
  plan.meas_error_rates =
      r.get_number_list("measurement_error_rates", {0.0});
  for (const std::uint64_t n : r.get_uint_list("rounds", {2}))
    plan.rounds.push_back(static_cast<std::size_t>(n));
  for (const std::string& p : r.get_string_list("sampling_paths", {"auto"}))
    plan.paths.push_back(parse_path(p, r, "sampling_paths"));

  // Engine sampling knobs (uniform across cells; they do not add axes).
  plan.herald_promotion = r.get_bool("herald_promotion", true);
  plan.promotion_min_group =
      static_cast<std::size_t>(r.get_uint("promotion_min_group", 2));
  plan.cache_auto_bypass = r.get_bool("cache_auto_bypass", true);

  if (const JsonValue* injs = r.get_raw("injections")) {
    if (!injs->is_array())
      r.fail("injections", std::string("expected array of injection "
                                       "objects, got ") + injs->kind_name());
    for (std::size_t i = 0; i < injs->size(); ++i)
      plan.injections.push_back(
          parse_injection((*injs)[i],
                          "$.params.injections[" + std::to_string(i) + "]",
                          plan.smoke));
    if (plan.injections.empty())
      r.fail("injections", "list must not be empty");
  } else {
    InjectionAxis intrinsic;
    intrinsic.label = "intrinsic";
    plan.injections.push_back(std::move(intrinsic));
  }

  r.finish();
  return plan;
}

// --- execution --------------------------------------------------------------

struct CellResult {
  Proportion errors;
  std::string detail;
};

CellResult run_cell(const InjectionEngine& engine, const InjectionAxis& inj,
                    std::size_t shots, std::uint64_t seed) {
  CellResult out;
  switch (inj.kind) {
    case InjectionKind::INTRINSIC:
      out.errors = engine.run_intrinsic(shots, seed);
      break;
    case InjectionKind::RADIATION:
      out.errors = inj.aware
                       ? engine.run_radiation_at_aware(
                             inj.root, inj.intensity, inj.spread, shots, seed)
                       : engine.run_radiation_at(inj.root, inj.intensity,
                                                 inj.spread, shots, seed);
      break;
    case InjectionKind::ERASURE:
      out.errors = inj.sustained
                       ? engine.run_sustained_erasure(inj.qubits, shots, seed)
                       : engine.run_erasure(inj.qubits, shots, seed);
      break;
    case InjectionKind::TIMELINE: {
      const RadiationTimeline timeline(engine.radiation(), inj.timeline);
      const TimelineSummary summary = engine.run_timeline_campaign(
          timeline, inj.num_timelines, shots, seed, inj.window);
      out.errors = summary.errors;
      std::ostringstream detail;
      detail << "mean_events=" << Table::fmt(summary.mean_events(), 2)
             << " window_decoders=" << summary.window_decoders;
      if (engine.options().decoder.herald_aware)
        detail << " aware_rebuilds=" << summary.aware_rebuilds;
      out.detail = detail.str();
      break;
    }
  }
  return out;
}

class GridScenario final : public Scenario {
 public:
  GridScenario(GridPlan plan) : plan_(std::move(plan)) {}

  // One point of the cross product.  Cells sharing an engine combo (every
  // axis but the innermost injection one) are consecutive in enumeration
  // order and share the expensive static pipeline.
  struct Cell {
    const ConfigAxis* cfg;
    const DecoderAxis* decoder;
    double p, pm;
    std::size_t rounds;
    SamplingPath path;
    const InjectionAxis* inj;
    std::string key;         // checkpoint/report identity (decoder included)
    std::string sample_key;  // RNG identity (decoder stripped — see below)
    std::size_t combo;       // engine-combo ordinal
  };

  ExperimentReport run(CampaignSink* sink) override {
    ExperimentReport rep;
    rep.title = "Grid campaign — " + std::to_string(num_cells()) +
                " cells x " + std::to_string(plan_.shots) + " shots";
    Table t({"code", "arch", "decoder", "p", "meas p", "rounds", "path",
             "injection", "shots", "errors", "LER", "CI low", "CI high",
             "detail"});

    const bool needs_whole_history = std::any_of(
        plan_.injections.begin(), plan_.injections.end(),
        [](const InjectionAxis& inj) {
          return inj.kind != InjectionKind::TIMELINE;
        });

    // Materialize the cell list in deterministic row-major axis order:
    // rows, checkpoint lookups and worker scheduling all key off it, and
    // the final table is assembled by cell ordinal so the report is
    // byte-identical for every worker count.
    std::vector<Cell> cells;
    cells.reserve(num_cells());
    std::size_t num_combos = 0;
    for (const ConfigAxis& cfg : plan_.configs)
      for (const DecoderAxis& decoder : plan_.decoders)
        for (const double p : plan_.error_rates)
          for (const double pm : plan_.meas_error_rates)
            for (const std::size_t rounds : plan_.rounds)
              for (const SamplingPath path : plan_.paths) {
                for (const InjectionAxis& inj : plan_.injections) {
                  // The sampling seed strips the decoder axis: decoding is
                  // post-hoc and never consumes sampling RNG, so cells that
                  // differ only in decoder draw identical timeline event
                  // realizations and shot streams.  Decoder ablations (e.g.
                  // mwpm vs mwpm:aware) are therefore *paired* — the pooled
                  // two-proportion z over their rows is conservative.
                  Cell cell{&cfg,
                            &decoder,
                            p,
                            pm,
                            rounds,
                            path,
                            &inj,
                            cell_key(cfg, decoder.label, p, pm, rounds, path,
                                     inj),
                            cell_key(cfg, "*", p, pm, rounds, path, inj),
                            num_combos};
                  cells.push_back(std::move(cell));
                }
                ++num_combos;
              }

    // Resume pass (serial): replay checkpointed cells without building
    // anything.
    std::vector<std::vector<std::string>> rows(cells.size());
    std::vector<char> done(cells.size(), 0);
    std::size_t resumed = 0;
    if (sink != nullptr) {
      for (std::size_t i = 0; i < cells.size(); ++i) {
        if (sink->lookup(cells[i].key, &rows[i])) {
          done[i] = 1;
          ++resumed;
        }
      }
    }

    // Group the remaining work by engine combo: one engine (the expensive
    // static pipeline) serves every injection cell of its combo, built
    // lazily — an all-resumed combo costs nothing, and a combo is owned by
    // exactly one worker so the engine's single-caller contract holds.
    std::vector<std::vector<std::size_t>> combo_cells(num_combos);
    for (std::size_t i = 0; i < cells.size(); ++i)
      if (!done[i]) combo_cells[cells[i].combo].push_back(i);
    std::vector<std::size_t> work;
    for (std::size_t c = 0; c < num_combos; ++c)
      if (!combo_cells[c].empty()) work.push_back(c);

    std::atomic<std::size_t> engines_built{0};
    std::mutex sink_mu;
    // Transpile memo: combos sharing (code, architecture, rounds) differ
    // only in noise / decoder / path knobs, none of which enter the
    // routing search — the most expensive static-pipeline stage.  Each
    // engine gets a copy of the shared result; the layout strategy is a
    // function of the architecture axis, so it needs no key component.
    std::mutex transpile_mu;
    std::map<std::string, std::shared_ptr<const TranspileResult>> transpiles;
    const auto run_combo = [&](std::size_t combo) {
      std::unique_ptr<InjectionEngine> engine;
      for (const std::size_t i : combo_cells[combo]) {
        const Cell& cell = cells[i];
        if (!engine) {
          EngineOptions eopts;
          eopts.physical_error_rate = cell.p;
          eopts.measurement_error_rate = cell.pm;
          eopts.rounds = cell.rounds;
          eopts.decoder = cell.decoder->options;
          eopts.sampling_path = cell.path;
          eopts.whole_history_decoder = needs_whole_history;
          eopts.herald_promotion = plan_.herald_promotion;
          eopts.promotion_min_group = plan_.promotion_min_group;
          eopts.cache_auto_bypass = plan_.cache_auto_bypass;
          try {
            const std::unique_ptr<SurfaceCode> code = cell.cfg->code.make();
            Graph arch;
            if (cell.cfg->arch == kNativeArch) {
              // The code's own connectivity: the trivial layout is already
              // perfect, so skip the O(n^3) layout search — the difference
              // between seconds and hours at rotated d = 21 (881 qubits).
              arch = native_graph_for(*code);
              eopts.layout = LayoutStrategy::TRIVIAL;
            } else {
              arch = make_topology(cell.cfg->arch);
            }
            const std::string tkey = cell.cfg->code.label + "|" +
                                     cell.cfg->arch + "|" +
                                     std::to_string(cell.rounds);
            std::shared_ptr<const TranspileResult> shared;
            {
              const std::lock_guard<std::mutex> lock(transpile_mu);
              const auto it = transpiles.find(tkey);
              if (it != transpiles.end()) shared = it->second;
            }
            if (!shared) {
              // Raced duplicates are harmless (transpile is deterministic);
              // the routing search runs outside the lock.
              shared = std::make_shared<const TranspileResult>(
                  transpile(code->build(cell.rounds), arch,
                            TranspileOptions{eopts.layout}));
              const std::lock_guard<std::mutex> lock(transpile_mu);
              transpiles.emplace(tkey, shared);
            }
            engine = std::make_unique<InjectionEngine>(
                *code, std::move(arch), eopts, TranspileResult(*shared));
          } catch (const Error& e) {
            throw SpecError("grid cell " + cell.key +
                            ": engine construction failed: " + e.what());
          }
          engines_built.fetch_add(1, std::memory_order_relaxed);
        }
        const std::uint64_t seed = grid_cell_seed(plan_.seed, cell.sample_key);
        CellResult result;
        try {
          result = run_cell(*engine, *cell.inj, plan_.shots, seed);
        } catch (const Error& e) {
          throw SpecError("grid cell " + cell.key + ": " + e.what());
        }
        // Surface the exact replay engine on every row — the silent
        // compact -> generic fallback used to be unobservable.
        if (!result.detail.empty()) result.detail += " ";
        result.detail += "engine=" + engine->replay_engine();
        rows[i] = {cell.cfg->code.label,
                   cell.cfg->arch,
                   cell.decoder->label,
                   format_double(cell.p),
                   format_double(cell.pm),
                   std::to_string(cell.rounds),
                   cell.path == SamplingPath::AUTO ? "auto" : "exact",
                   cell.inj->label,
                   std::to_string(result.errors.trials),
                   std::to_string(result.errors.successes),
                   Table::pct(result.errors.rate()),
                   Table::pct(result.errors.wilson_low()),
                   Table::pct(result.errors.wilson_high()),
                   result.detail};
        if (sink != nullptr) {
          // Appends are mutex-guarded and land in completion order; the
          // checkpoint is order-tolerant (lookup is by cell key), so
          // resumability is independent of the worker count that wrote
          // the file.
          const std::lock_guard<std::mutex> lock(sink_mu);
          sink->emit(cell.key, rows[i]);
        }
      }
    };

    const std::size_t jobs = std::min(plan_.jobs, work.size());
    if (jobs <= 1) {
      for (const std::size_t combo : work) run_combo(combo);
    } else {
      // Worker pool over combos.  Each worker installs a SerialChunksScope
      // so the engines' OpenMP shot loops collapse to serial execution —
      // cell-level threads already saturate the machine, and nested teams
      // would oversubscribe it (results are unchanged either way: chunk
      // RNG streams do not depend on scheduling).
      std::atomic<std::size_t> next{0};
      std::exception_ptr first_error;
      std::mutex error_mu;
      std::vector<std::thread> workers;
      workers.reserve(jobs);
      for (std::size_t w = 0; w < jobs; ++w) {
        workers.emplace_back([&] {
          const SerialChunksScope serial_engine_chunks;
          while (true) {
            {
              // Fail fast: once any combo has thrown, stop pulling work
              // instead of grinding through the remaining combos first.
              const std::lock_guard<std::mutex> lock(error_mu);
              if (first_error) break;
            }
            const std::size_t k =
                next.fetch_add(1, std::memory_order_relaxed);
            if (k >= work.size()) break;
            try {
              run_combo(work[k]);
            } catch (...) {
              const std::lock_guard<std::mutex> lock(error_mu);
              if (!first_error) first_error = std::current_exception();
            }
          }
        });
      }
      for (std::thread& worker : workers) worker.join();
      if (first_error) std::rethrow_exception(first_error);
    }

    for (std::size_t i = 0; i < cells.size(); ++i)
      t.add_row(std::move(rows[i]));
    rep.table = std::move(t);
    std::ostringstream note;
    note << num_cells() << " cells, "
         << engines_built.load(std::memory_order_relaxed)
         << " engines built, " << resumed
         << " resumed from checkpoint, " << plan_.jobs
         << " worker(s); per-cell RNG stream = "
            "splitmix64(fnv1a(decoder-stripped cell key) xor seed "
         << plan_.seed << ")";
    rep.notes.push_back(note.str());
    return rep;
  }

 private:
  std::size_t num_cells() const {
    return plan_.configs.size() * plan_.decoders.size() *
           plan_.error_rates.size() * plan_.meas_error_rates.size() *
           plan_.rounds.size() * plan_.paths.size() *
           plan_.injections.size();
  }

  // decoder_label is "*" for the sampling key: decoder axes share RNG
  // streams (paired ablations), and "*" cannot collide with a real label.
  std::string cell_key(const ConfigAxis& cfg, const std::string& decoder_label,
                       double p, double pm, std::size_t rounds,
                       SamplingPath path, const InjectionAxis& inj) const {
    std::ostringstream key;
    key << "code=" << cfg.code.label << "|arch=" << cfg.arch
        << "|decoder=" << decoder_label
        << "|p=" << format_double(p) << "|pm=" << format_double(pm)
        << "|rounds=" << rounds
        << "|path=" << (path == SamplingPath::AUTO ? "auto" : "exact")
        << "|inject=" << inj.label << "|shots=" << plan_.shots;
    return key.str();
  }

  GridPlan plan_;
};

}  // namespace

std::uint64_t grid_cell_seed(std::uint64_t base_seed,
                             const std::string& cell_key) {
  return splitmix64_mix(fnv1a64(cell_key) ^ base_seed);
}

std::unique_ptr<Scenario> make_grid_scenario(const ScenarioSpec& spec) {
  return std::make_unique<GridScenario>(parse_plan(spec));
}

}  // namespace radsurf
