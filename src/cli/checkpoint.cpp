#include "cli/checkpoint.hpp"

#include <cstdio>
#include <utility>

#include "cli/spec.hpp"
#include "util/json.hpp"

namespace radsurf {

namespace {

std::string fingerprint_hex(std::uint64_t fp) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(fp));
  return buf;
}

}  // namespace

JsonlCheckpointSink::JsonlCheckpointSink(std::string path,
                                         std::uint64_t fingerprint,
                                         bool fresh)
    : path_(std::move(path)) {
  const std::string fp_hex = fingerprint_hex(fingerprint);
  // Loaded cells in file order, for the canonicalizing rewrite below.
  std::vector<const std::pair<const std::string, std::vector<std::string>>*>
      order;
  if (!fresh) {
    std::ifstream in(path_);
    std::string line;
    bool header_seen = false;
    while (in && std::getline(in, line)) {
      if (line.empty()) continue;
      JsonValue entry;
      try {
        entry = JsonValue::parse(line, path_);
      } catch (const JsonError&) {
        break;  // torn tail write from a killed run: drop it and the rest
      }
      if (!entry.is_object()) break;
      if (!header_seen) {
        header_seen = true;
        const JsonValue* fp = entry.find("fingerprint");
        if (fp == nullptr || !fp->is_string())
          throw SpecError(path_ + ": not a radsurf checkpoint file (missing "
                                  "fingerprint header); pass --fresh to "
                                  "overwrite it");
        if (fp->as_string() != fp_hex)
          throw SpecError(
              path_ + ": checkpoint was written by a different spec "
                      "(fingerprint " + fp->as_string() + ", this spec is " +
              fp_hex + "); pass --fresh to discard it, or point "
                       "output.checkpoint elsewhere");
        continue;
      }
      const JsonValue* cell = entry.find("cell");
      const JsonValue* row = entry.find("row");
      if (cell == nullptr || !cell->is_string() || row == nullptr ||
          !row->is_array())
        break;
      std::vector<std::string> cells;
      bool ok = true;
      for (std::size_t i = 0; i < row->size(); ++i) {
        if (!(*row)[i].is_string()) {
          ok = false;
          break;
        }
        cells.push_back((*row)[i].as_string());
      }
      if (!ok) break;
      const auto [it, inserted] =
          cells_.emplace(cell->as_string(), std::move(cells));
      if (inserted) order.push_back(&*it);
    }
    loaded_ = cells_.size();
  }

  // Rewrite header + loaded cells from parsed state: a torn trailing line
  // (crash mid-write) must not be glued onto the next emit, and every
  // open leaves the file in canonical one-cell-per-line form.
  out_.open(path_, std::ios::trunc);
  if (!out_)
    throw SpecError(path_ + ": cannot open checkpoint file for writing");
  JsonValue header = JsonValue::object();
  header.set("radsurf_checkpoint", 1);
  header.set("fingerprint", fp_hex);
  out_ << header.dump() << "\n";
  for (const auto* cell : order) write_cell(cell->first, cell->second);
  out_ << std::flush;
}

void JsonlCheckpointSink::write_cell(const std::string& key,
                                     const std::vector<std::string>& row) {
  JsonValue line = JsonValue::object();
  line.set("cell", key);
  JsonValue cells = JsonValue::array();
  for (const std::string& c : row) cells.push_back(c);
  line.set("row", std::move(cells));
  out_ << line.dump() << "\n";
}

bool JsonlCheckpointSink::lookup(const std::string& key,
                                 std::vector<std::string>* row) {
  const auto it = cells_.find(key);
  if (it == cells_.end()) return false;
  if (row != nullptr) *row = it->second;
  return true;
}

void JsonlCheckpointSink::emit(const std::string& key,
                               const std::vector<std::string>& row) {
  write_cell(key, row);
  out_ << std::flush;
  cells_.emplace(key, row);
}

}  // namespace radsurf
