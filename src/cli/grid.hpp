// The generic cross-product campaign executor behind the "grid" scenario.
//
// A grid spec enumerates axes — (code, arch) configs, decoders, intrinsic
// error rates, measurement error rates, round counts, sampling paths and
// injection workloads — and the executor runs one campaign cell per point
// of their Cartesian product.  This is the piece the 18 hand-rolled bench
// binaries could never express: any workload the InjectionEngine supports
// crossed with any engine axis, in one declarative file.
//
// Execution contract:
//  * cells are enumerated in deterministic row-major axis order, with the
//    injection axis innermost so one InjectionEngine (the expensive static
//    pipeline) serves every injection cell of its engine combo;
//  * each cell's shot loop is sharded through parallel_chunks (inside the
//    engine's run_* campaigns) from a seed that is a pure function of
//    (spec seed, cell key) — results are independent of thread count,
//    schedule, cell execution order and of which cells were resumed;
//  * spec.jobs > 1 (radsurf run --jobs N) runs engine combos on a worker
//    pool: whole combos are scheduled so each engine keeps a single
//    caller, workers install a SerialChunksScope so cell threads and the
//    engines' OpenMP shot teams never oversubscribe, and the final table
//    is assembled in cell-enumeration order — result CSVs are
//    byte-identical for every worker count;
//  * every finished cell is streamed to the CampaignSink (see
//    cli/checkpoint.hpp) under a mutex, in completion order; resume is
//    keyed by cell, so checkpoints written under any worker count resume
//    under any other.
#pragma once

#include <memory>

#include "cli/registry.hpp"

namespace radsurf {

/// Factory for the "grid" scenario: validates spec.params (axes, injection
/// objects, code/arch/decoder names) and returns the executor.  See
/// docs/SCENARIOS.md for the full params schema.
std::unique_ptr<Scenario> make_grid_scenario(const ScenarioSpec& spec);

/// Deterministic per-cell seed: splitmix64-finalized FNV-1a(cell key)
/// XOR base seed.  Exposed for the determinism tests.
std::uint64_t grid_cell_seed(std::uint64_t base_seed,
                             const std::string& cell_key);

}  // namespace radsurf
