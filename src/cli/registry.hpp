// The scenario registry: every experiment this repository can run, as a
// named factory over declarative specs.
//
// A ScenarioFactory validates spec.params (strictly — unknown fields and
// bad types throw SpecError before any sampling starts) and returns a
// Scenario whose run() produces the familiar ExperimentReport.  The
// registry is the single seam between workloads and entrypoints: the
// `radsurf` CLI, the legacy bench binaries (now compatibility shims), the
// test suite's smoke sweep and the CI docs-and-specs job all resolve
// scenarios here, so a new workload registered once is immediately
// spec-drivable, listable, smoke-tested and documented by name.
//
// Registered names (see docs/SCENARIOS.md for the params of each):
//   fig3 fig4 fig5 fig6 fig7 fig8            paper figure reproductions
//   abl_decoders abl_rounds abl_meas_error   ablations beyond the paper
//   abl_noise_channel abl_time_sampling abl_aware_decoder
//   ext_timeline ext_logical_layer           extensions (timelines, logical)
//   perf_simulator perf_decoder              perf benches (BENCH_perf.json)
//   perf_pipeline perf_timeline perf_serve
//   serve                                    streaming decode round-trip
//   grid                                     generic cross-product campaign
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cli/spec.hpp"
#include "core/experiments.hpp"

namespace radsurf {

class CampaignSink;  // cli/checkpoint.hpp

class Scenario {
 public:
  virtual ~Scenario() = default;
  /// Execute the scenario.  `sink` (may be null) provides per-cell
  /// checkpoint lookup and streaming emission; only campaign scenarios
  /// (grid) consult it — monolithic report scenarios ignore it.
  virtual ExperimentReport run(CampaignSink* sink) = 0;
};

using ScenarioFactory =
    std::function<std::unique_ptr<Scenario>(const ScenarioSpec&)>;

struct ScenarioInfo {
  std::string name;
  std::string summary;  // one-liner for `radsurf list` and the docs
  ScenarioFactory factory;
};

/// All registered scenarios, in listing order.
const std::vector<ScenarioInfo>& scenario_registry();

/// Lookup by name; nullptr when unknown.
const ScenarioInfo* find_scenario(const std::string& name);

/// Validate spec.params and build the scenario.  Throws SpecError for an
/// unknown scenario name (listing the known ones) or malformed params.
std::unique_ptr<Scenario> make_scenario(const ScenarioSpec& spec);

/// The tiny-budget spec the smoke sweep (`radsurf run --smoke`, the
/// registry test, CI) uses for `name`.
ScenarioSpec smoke_spec(const std::string& name);

/// Adapter used by registry factories: wraps a callable producing the
/// report (validated and bound at factory time).
class FunctionScenario final : public Scenario {
 public:
  explicit FunctionScenario(
      std::function<ExperimentReport(CampaignSink*)> fn)
      : fn_(std::move(fn)) {}
  ExperimentReport run(CampaignSink* sink) override { return fn_(sink); }

 private:
  std::function<ExperimentReport(CampaignSink*)> fn_;
};

}  // namespace radsurf
