#include "cli/perf_scenarios.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>

#include "arch/topologies.hpp"
#include "cli/serve_scenario.hpp"
#include "codes/code.hpp"
#include "codes/repetition.hpp"
#include "codes/rotated.hpp"
#include "codes/xxzz.hpp"
#include "decoder/decode_cache.hpp"
#include "decoder/mwpm.hpp"
#include "decoder/sliding_window.hpp"
#include "detector/error_model.hpp"
#include "inject/campaign.hpp"
#include "noise/depolarizing.hpp"
#include "noise/radiation.hpp"
#include "stab/compact_tableau.hpp"
#include "stab/frame_sim.hpp"
#include "stab/tableau_sim.hpp"
#include "util/json.hpp"

namespace radsurf {

namespace {

/// %.6g rendering of perf metrics — the BENCH_perf.json number format.
std::string json_number(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

/// Round through the %.6g representation so the merged JSON stays compact.
double round6(double v) { return std::strtod(json_number(v).c_str(), nullptr); }

JsonValue record_to_json(const PerfRecord& r) {
  JsonValue obj = JsonValue::object();
  obj.set("scenario", r.scenario);
  obj.set("shots_per_second", round6(r.shots_per_second));
  for (const auto& [key, value] : r.extra) obj.set(key, round6(value));
  for (const auto& [key, value] : r.text) obj.set(key, value);
  return obj;
}

ExperimentReport records_report(const std::string& title,
                                const std::vector<PerfRecord>& records,
                                const PerfRunOptions& options) {
  ExperimentReport rep;
  rep.title = title;
  Table t({"scenario", "items/s", "metrics"});
  for (const PerfRecord& r : records) {
    std::ostringstream metrics;
    for (std::size_t i = 0; i < r.extra.size(); ++i)
      metrics << (i ? " " : "") << r.extra[i].first << "="
              << json_number(r.extra[i].second);
    for (const auto& [key, value] : r.text)
      metrics << (metrics.tellp() > 0 ? " " : "") << key << "=" << value;
    t.add_row({r.scenario, json_number(r.shots_per_second), metrics.str()});
  }
  rep.table = std::move(t);
  if (!options.bench_json.empty()) {
    write_perf_json(options.bench_json, records);
    rep.notes.push_back("merged " + std::to_string(records.size()) +
                        " records into " + options.bench_json);
  }
  if (options.smoke)
    rep.notes.push_back(
        "smoke mode: tiny budgets, rates are not meaningful");
  return rep;
}

}  // namespace

double measure_rate(const std::function<std::size_t()>& fn,
                    double min_seconds, int max_reps) {
  using clock = std::chrono::steady_clock;
  (void)fn();  // warm-up (first-touch allocations, cache population)
  double best = 0.0;
  double total = 0.0;
  for (int rep = 0; rep < max_reps && (rep < 2 || total < min_seconds);
       ++rep) {
    const auto t0 = clock::now();
    const std::size_t items = fn();
    const double dt =
        std::chrono::duration<double>(clock::now() - t0).count();
    total += dt;
    if (dt > 0.0 && static_cast<double>(items) / dt > best)
      best = static_cast<double>(items) / dt;
  }
  return best;
}

double measure_rate_mode(const std::function<std::size_t()>& fn, bool smoke) {
  return measure_rate(fn, smoke ? 0.0 : 0.25, smoke ? 2 : 12);
}

std::size_t smoke_shots(bool smoke, std::size_t full, std::size_t tiny) {
  return smoke ? tiny : full;
}

void write_perf_json(const std::string& path,
                     const std::vector<PerfRecord>& records) {
  // Keep existing records for scenarios this run did not measure.
  std::vector<JsonValue> lines;
  {
    std::vector<std::string> replaced;
    for (const PerfRecord& r : records) replaced.push_back(r.scenario);
    std::ifstream probe(path);
    if (probe.good()) {
      probe.close();
      try {
        const JsonValue existing = JsonValue::parse_file(path);
        if (const JsonValue* recs = existing.is_object()
                                        ? existing.find("records")
                                        : nullptr;
            recs != nullptr && recs->is_array()) {
          for (std::size_t i = 0; i < recs->size(); ++i) {
            const JsonValue& rec = (*recs)[i];
            if (!rec.is_object()) continue;
            const JsonValue* name = rec.find("scenario");
            if (name == nullptr || !name->is_string()) continue;
            if (std::find(replaced.begin(), replaced.end(),
                          name->as_string()) == replaced.end())
              lines.push_back(rec);
          }
        }
      } catch (const JsonError&) {
        // Corrupt trajectory file: start fresh rather than failing a bench.
      }
    }
  }
  for (const PerfRecord& r : records) lines.push_back(record_to_json(r));

  std::ofstream out(path);
  out << "{\n  \"bench\": \"radsurf-perf\",\n  \"records\": [\n";
  for (std::size_t i = 0; i < lines.size(); ++i)
    out << "    " << lines[i].dump()
        << (i + 1 < lines.size() ? "," : "") << "\n";
  out << "  ]\n}\n";
}

// ---------------------------------------------------------------------------
// perf_simulator
// ---------------------------------------------------------------------------

namespace {

Circuit noisy_xxzz_circuit() {
  return DepolarizingModel{1e-2}.apply(XXZZCode(3, 3).build());
}

Circuit noisy_rep_circuit(int d) {
  return DepolarizingModel{1e-2}.apply(
      RepetitionCode(d, RepetitionFlavor::BIT_FLIP).build());
}

PerfRecord tableau_shot(const std::string& name, const Circuit& c,
                        bool smoke, std::size_t full_shots = 2048,
                        std::size_t tiny_shots = 64) {
  TableauSimulator sim(c);
  Rng rng(1);
  BitVec record(c.num_measurements());
  const std::size_t shots = smoke_shots(smoke, full_shots, tiny_shots);
  const double rate = measure_rate_mode(
      [&] {
        for (std::size_t s = 0; s < shots; ++s) sim.sample_into(rng, record);
        return shots;
      },
      smoke);
  return {name, rate, {}};
}

PerfRecord compact_shot(const std::string& name, const Circuit& c,
                        bool smoke, std::size_t full_shots) {
  CompactTableauSimulator sim(CircuitTape::compile(c));
  Rng rng(1);
  BitVec record(c.num_measurements());
  const std::size_t shots = smoke_shots(smoke, full_shots, 8);
  const double rate = measure_rate_mode(
      [&] {
        for (std::size_t s = 0; s < shots; ++s) sim.sample_into(rng, record);
        return shots;
      },
      smoke);
  PerfRecord r{name, rate, {}};
  r.text.emplace_back("engine",
                      CompactTableauSimulator::engine_name(c.num_qubits()));
  return r;
}

Circuit noisy_rotated_circuit(int d) {
  return DepolarizingModel{1e-2}.apply(
      RotatedCode(d, RotatedMemory::Z).build());
}

PerfRecord frame_batch(const std::string& name, const Circuit& c,
                       std::size_t batch, bool smoke) {
  FrameSimulator sim(c, batch);
  Rng rng(1);
  const double rate = measure_rate_mode(
      [&] {
        BitVec residual(batch);
        sim.run(rng, &residual);
        return batch;
      },
      smoke);
  return {name, rate, {}};
}

PerfRecord frame_radiation_batch(const std::string& name, const Circuit& c,
                                 std::size_t batch, bool smoke) {
  // Radiation-instrumented circuit through the heralded-reset fast path;
  // also reports the residual fraction (shots needing an exact re-run).
  FrameSimulator sim(c, batch);
  Rng rng(1);
  std::size_t residual_shots = 0;
  const double rate = measure_rate_mode(
      [&] {
        BitVec residual(batch);
        sim.run(rng, &residual);
        residual_shots = residual.popcount();
        return batch;
      },
      smoke);
  const double residual_fraction =
      static_cast<double>(residual_shots) / static_cast<double>(batch);
  return {name, rate, {{"residual_fraction", residual_fraction}}};
}

}  // namespace

ExperimentReport run_perf_simulator(const PerfRunOptions& options) {
  const bool smoke = options.smoke;
  std::vector<PerfRecord> records;

  records.push_back(
      tableau_shot("simulator/tableau/xxzz33", noisy_xxzz_circuit(), smoke));
  records.push_back(
      tableau_shot("simulator/tableau/rep5", noisy_rep_circuit(5), smoke));
  records.push_back(
      tableau_shot("simulator/tableau/rep15", noisy_rep_circuit(15), smoke));

  records.push_back(frame_batch("simulator/frame/xxzz33/b256",
                                noisy_xxzz_circuit(), 256, smoke));
  records.push_back(frame_batch("simulator/frame/xxzz33/b1024",
                                noisy_xxzz_circuit(), 1024, smoke));
  records.push_back(frame_batch("simulator/frame/rep5/b1024",
                                noisy_rep_circuit(5), 1024, smoke));

  {
    // Strike of intensity 1.0 at qubit 2 with spatial spread on the rep-5
    // mesh, the paper's Fig. 5 hot path.
    const Graph arch = make_mesh(5, 2);
    const Circuit base = noisy_rep_circuit(5);
    const RadiationModel radiation;
    const Circuit rad = instrument_reset_noise(
        base, radiation.qubit_probabilities(arch, 2, 1.0, true));
    records.push_back(frame_radiation_batch(
        "simulator/frame_radiation/rep5/b1024", rad, 1024, smoke));
  }

  {
    TableauSimulator sim(noisy_xxzz_circuit());
    const double rate = measure_rate_mode(
        [&] { return (void)sim.reference_sample(), std::size_t{1}; }, smoke);
    records.push_back({"simulator/reference_sample/xxzz33", rate, {}});
  }

  // --- exact engine at rotated distances (word-sliced columns) -------------
  // d = 3 is the last single-word size (17 qubits); d = 11/17/21 exercise
  // W = 8/19/28 column words.  The generic tableau records at the same
  // distances are the "before" reference for the replay-path speedup.
  records.push_back(compact_shot("simulator/compact/rotated_memz_d3",
                                 noisy_rotated_circuit(3), smoke, 2048));
  for (const int d : {11, 17, 21}) {
    const Circuit noisy = noisy_rotated_circuit(d);
    records.push_back(
        compact_shot("simulator/compact/rotated_memz_d" + std::to_string(d),
                     noisy, smoke, 64));
    records.push_back(
        tableau_shot("simulator/tableau/rotated_memz_d" + std::to_string(d),
                     noisy, smoke, 64, 8));
  }

  return records_report("perf_simulator (shots/s)", records, options);
}

// ---------------------------------------------------------------------------
// perf_decoder
// ---------------------------------------------------------------------------

namespace {

MatchingGraph xxzz_graph() {
  const Circuit noisy = DepolarizingModel{1e-2}.apply(XXZZCode(3, 3).build());
  return MatchingGraph::from_dem(DetectorErrorModel::from_circuit(noisy));
}

MatchingGraph rep_graph(int d) {
  const Circuit noisy = DepolarizingModel{1e-2}.apply(
      RepetitionCode(d, RepetitionFlavor::BIT_FLIP).build());
  return MatchingGraph::from_dem(DetectorErrorModel::from_circuit(noisy));
}

std::vector<std::uint32_t> random_defects(std::size_t num_detectors,
                                          std::size_t k, Rng& rng) {
  std::vector<std::uint32_t> out;
  while (out.size() < k && out.size() < num_detectors) {
    const auto d = static_cast<std::uint32_t>(rng.below(num_detectors));
    if (std::find(out.begin(), out.end(), d) == out.end()) out.push_back(d);
  }
  std::sort(out.begin(), out.end());
  return out;
}

// Type-erasing wrapper: hides the MwpmDecoder from CachingDecoder's
// dynamic_cast, forcing whole-syndrome memoization (the baseline the
// cluster cache is measured against).
struct OpaqueDecoder final : Decoder {
  explicit OpaqueDecoder(Decoder& inner) : inner_(inner) {}
  std::string name() const override { return inner_.name(); }
  std::uint64_t decode(const std::vector<std::uint32_t>& defects) override {
    return inner_.decode(defects);
  }
  Decoder& inner_;
};

// Attach the matcher backend name and per-decode work counters:
// regions_grown / blossoms_formed of ONE decode of the record's defect
// set, and warm_reuses of ONE immediate repeat of it.
void add_matcher_extras(PerfRecord& r, const std::string& backend,
                        const MwpmMatcherStats& cold,
                        const MwpmMatcherStats& warm) {
  r.text.emplace_back("matcher_backend", backend);
  r.extra.emplace_back("regions_grown",
                       static_cast<double>(cold.regions_grown));
  r.extra.emplace_back("blossoms_formed",
                       static_cast<double>(cold.blossoms_formed));
  r.extra.emplace_back("warm_reuses",
                       static_cast<double>(warm.warm_reuses));
}

PerfRecord decode_sweep(const std::string& name, Decoder& dec,
                        std::size_t num_detectors, std::size_t k, bool smoke,
                        MwpmDecoder* instrumented = nullptr) {
  Rng rng(1);
  const auto defects = random_defects(num_detectors, k, rng);
  PerfRecord r{name, 0.0, {}, {}};
  if (instrumented != nullptr) {
    // Per-decode matcher work, measured OUTSIDE the timing loop: one
    // decode for the cold counters and one immediate repeat for the
    // warm-reuse counter.  (Earlier records wrapped the whole timing loop
    // in the stats delta, so warm_reuses was reps * decodes - 1 = 3327
    // for every k — a loop-count artifact, not matcher behaviour.)
    MwpmMatcherStats before = instrumented->matcher_stats();
    instrumented->decode(defects);
    MwpmMatcherStats cold = instrumented->matcher_stats();
    cold -= before;
    before = instrumented->matcher_stats();
    instrumented->decode(defects);
    MwpmMatcherStats warm = instrumented->matcher_stats();
    warm -= before;
    add_matcher_extras(r, instrumented->matcher_backend(), cold, warm);
  }
  const std::size_t reps = smoke ? 16 : 256;
  r.shots_per_second = measure_rate_mode(
      [&] {
        for (std::size_t i = 0; i < reps; ++i) dec.decode(defects);
        return reps;
      },
      smoke);
  return r;
}

}  // namespace

ExperimentReport run_perf_decoder(const PerfRunOptions& options) {
  const bool smoke = options.smoke;
  std::vector<PerfRecord> records;

  {
    // Defect-count sweep across the matching cliff: clusters up to
    // dp_max_cluster resolve in the subset DP, larger ones escalate to the
    // sparse blossom matcher; k32/k40 track the cliff's tail.  Each record
    // carries the backend name and the matcher work its own measurement
    // performed.
    const auto g = rep_graph(15);
    MwpmDecoder dec(g);
    for (std::size_t k : {2u, 6u, 12u, 20u, 32u, 40u}) {
      records.push_back(decode_sweep("decoder/mwpm/rep15/k" +
                                         std::to_string(k),
                                     dec, g.num_detectors(), k, smoke,
                                     &dec));
    }

    // Before/after side of the cliff: the same escalation points through
    // the dense all-pairs blossom oracle (the pre-sparse-matcher path).
    MwpmOptions dense_opts;
    dense_opts.dense_matcher = true;
    MwpmDecoder dense(g, dense_opts);
    for (std::size_t k : {20u, 40u}) {
      records.push_back(decode_sweep("decoder/mwpm_dense/rep15/k" +
                                         std::to_string(k),
                                     dense, g.num_detectors(), k, smoke,
                                     &dense));
    }
  }

  {
    const auto g = xxzz_graph();
    for (auto kind :
         {DecoderKind::MWPM, DecoderKind::UNION_FIND, DecoderKind::GREEDY}) {
      const auto dec = make_decoder(kind, g);
      records.push_back(decode_sweep(
          "decoder/" + decoder_kind_name(kind) + "/xxzz33/k6", *dec,
          g.num_detectors(), 6, smoke));
    }
  }

  {
    // Rotated distance sweep: matching graphs of the 2-round memory-Z
    // experiments at real distances (d = 21 is 880 detectors).
    for (const int d : {11, 17, 21}) {
      const Circuit noisy = DepolarizingModel{1e-2}.apply(
          RotatedCode(d, RotatedMemory::Z).build());
      const auto g =
          MatchingGraph::from_dem(DetectorErrorModel::from_circuit(noisy));
      MwpmDecoder dec(g);
      for (std::size_t k : {6u, 20u}) {
        records.push_back(decode_sweep("decoder/mwpm/rotated_memz_d" +
                                           std::to_string(d) + "/k" +
                                           std::to_string(k),
                                       dec, g.num_detectors(), k, smoke,
                                       &dec));
      }
    }
  }

  {
    // Campaign-realistic memoization: radiation shots draw from a small
    // hot set of syndromes.  Stream decodes over a pool of 32 distinct
    // defect sets and report the steady-state hit rate.
    const auto g = rep_graph(15);
    MwpmDecoder inner(g);
    CachingDecoder cached(inner);
    Rng rng(7);
    std::vector<std::vector<std::uint32_t>> pool;
    for (int i = 0; i < 32; ++i)
      pool.push_back(random_defects(g.num_detectors(), 8, rng));
    const std::size_t stream = smoke ? 256 : 4096;
    const double rate = measure_rate_mode(
        [&] {
          for (std::size_t i = 0; i < stream; ++i)
            cached.decode(pool[rng.below(pool.size())]);
          return stream;
        },
        smoke);
    records.push_back({"decoder/mwpm_cached/rep15/pool32",
                       rate,
                       {{"cache_hit_rate", cached.stats().hit_rate()}}});
  }

  {
    // Per-cluster vs whole-syndrome memoization on a locality-structured
    // stream: each syndrome is the union of two far-apart defect pairs
    // (disjoint internal edges the union-find prefilter actually splits),
    // so the *whole-syndrome* vocabulary is the large pair-product space
    // while the *cluster* vocabulary is just the small set of edges.
    // Every syndrome is distinct by construction; the cold-pass hit-rate
    // gain of cluster keys is part of the bench contract.
    const auto g = rep_graph(15);
    const auto nd = static_cast<std::uint32_t>(g.num_detectors());
    MwpmDecoder prefilter(g);
    std::vector<std::pair<std::uint32_t, std::uint32_t>> internal;
    for (const MatchingEdge& e : g.edges())
      if (e.a < nd && e.b < nd && e.a != e.b) internal.push_back({e.a, e.b});
    std::vector<std::vector<std::uint32_t>> stream;
    for (std::size_t x = 0; x < internal.size() && stream.size() < 2048;
         ++x) {
      for (std::size_t y = x + 1;
           y < internal.size() && stream.size() < 2048; ++y) {
        const auto [a1, b1] = internal[x];
        const auto [a2, b2] = internal[y];
        if (a1 == a2 || a1 == b2 || b1 == a2 || b1 == b2) continue;
        std::vector<std::uint32_t> defects{a1, b1, a2, b2};
        std::sort(defects.begin(), defects.end());
        if (prefilter.defect_clusters(defects).size() < 2) continue;
        stream.push_back(defects);
      }
    }
    MwpmDecoder inner_cluster(g);
    CachingDecoder clustered(inner_cluster);
    MwpmDecoder inner_whole(g);
    OpaqueDecoder opaque(inner_whole);
    CachingDecoder whole(opaque);
    const double cluster_rate = measure_rate_mode(
        [&] {
          for (const auto& defects : stream) clustered.decode(defects);
          return stream.size();
        },
        smoke);
    const double whole_rate = measure_rate_mode(
        [&] {
          for (const auto& defects : stream) whole.decode(defects);
          return stream.size();
        },
        smoke);
    // Hit rates come from one *cold* pass each: measure_rate repeats the
    // stream, and by the second pass every whole-syndrome key is cached
    // too, hiding the structural difference the assertion pins down.
    MwpmDecoder cold_cluster_inner(g);
    CachingDecoder cold_cluster(cold_cluster_inner);
    MwpmDecoder cold_whole_inner(g);
    OpaqueDecoder cold_opaque(cold_whole_inner);
    CachingDecoder cold_whole(cold_opaque);
    for (const auto& defects : stream) {
      cold_cluster.decode(defects);
      cold_whole.decode(defects);
    }
    const double cluster_hits = cold_cluster.stats().hit_rate();
    const double whole_hits = cold_whole.stats().hit_rate();
    records.push_back({"decoder/mwpm_cached_cluster/rep15/distinct",
                       cluster_rate,
                       {{"cache_hit_rate", cluster_hits}}});
    records.push_back({"decoder/mwpm_cached_whole/rep15/distinct",
                       whole_rate,
                       {{"cache_hit_rate", whole_hits}}});
    RADSURF_ASSERT_MSG(cluster_hits > whole_hits,
                       "perf contract violated: cluster-cache hit rate "
                           << cluster_hits
                           << " did not beat whole-syndrome hit rate "
                           << whole_hits);
  }

  {
    // Decoder construction proper (graph prebuilt): sparse is O(E), dense
    // pays the eager all-pairs Dijkstra precompute.
    const auto g = rep_graph(15);
    const double sparse_rate = measure_rate_mode(
        [&] {
          MwpmDecoder dec(g);
          return std::size_t{1};
        },
        smoke);
    records.push_back({"decoder/mwpm_construction/rep15", sparse_rate, {}});
    const double dense_rate = measure_rate_mode(
        [&] {
          MwpmDecoder dec(g, MwpmOptions{false, /*lazy=*/false, true});
          return std::size_t{1};
        },
        smoke);
    records.push_back(
        {"decoder/mwpm_construction/rep15/dense", dense_rate, {}});
    // Cold-start decode: construction plus one decode, the sliding-window
    // and campaign-setup pattern (lazy rows only grow around the defects).
    Rng rng(3);
    const auto defects = random_defects(g.num_detectors(), 6, rng);
    const double cold_rate = measure_rate_mode(
        [&] {
          MwpmDecoder dec(g);
          (void)dec.decode(defects);
          return std::size_t{1};
        },
        smoke);
    records.push_back({"decoder/mwpm_cold_decode/rep15/k6", cold_rate, {}});
  }

  return records_report("perf_decoder (decodes/s)", records, options);
}

// ---------------------------------------------------------------------------
// perf_pipeline
// ---------------------------------------------------------------------------

namespace {

EngineOptions path_options(SamplingPath path) {
  EngineOptions opts;
  opts.sampling_path = path;
  return opts;
}

struct CampaignMeasurement {
  double shots_per_second = 0.0;
  double cache_hit_rate = 0.0;
  double residual_fraction = 0.0;
  PromotionStats promotion;
  bool cache_bypassed = false;
};

template <typename RunFn>
CampaignMeasurement measure_campaign(const SurfaceCode& code,
                                     const Graph& arch, SamplingPath path,
                                     std::size_t shots, const RunFn& run,
                                     bool smoke) {
  InjectionEngine engine(code, arch, path_options(path));
  CampaignMeasurement out;
  std::uint64_t seed = 1;
  out.shots_per_second = measure_rate_mode(
      [&] {
        run(engine, shots, seed++);
        return shots;
      },
      smoke);
  out.cache_hit_rate = engine.decode_cache_stats().hit_rate();
  out.residual_fraction = engine.residual_fraction();
  out.promotion = engine.promotion_stats();
  out.cache_bypassed = engine.cache_bypassed();
  return out;
}

}  // namespace

ExperimentReport run_perf_pipeline(const PerfRunOptions& options) {
  const bool smoke = options.smoke;
  std::vector<PerfRecord> records;

  const RepetitionCode rep5(5, RepetitionFlavor::BIT_FLIP);
  const XXZZCode xxzz33(3, 3);
  const Graph mesh52 = make_mesh(5, 2);
  const Graph mesh54 = make_mesh(5, 4);

  // --- intrinsic noise only (pure-Pauli frame path) ------------------------
  {
    const auto run = [](const InjectionEngine& e, std::size_t shots,
                        std::uint64_t seed) {
      return e.run_intrinsic(shots, seed);
    };
    const auto frame = measure_campaign(rep5, mesh52, SamplingPath::AUTO,
                                        smoke_shots(smoke, 4096), run, smoke);
    records.push_back({"pipeline/intrinsic/rep5",
                       frame.shots_per_second,
                       {{"cache_hit_rate", frame.cache_hit_rate},
                        {"residual_fraction", frame.residual_fraction}}});
  }

  // --- radiation campaigns: frame fast path vs exact baseline --------------
  const auto radiation_scenario = [&](const std::string& name,
                                      const SurfaceCode& code,
                                      const Graph& arch, std::size_t shots) {
    const auto run = [](const InjectionEngine& e, std::size_t s,
                        std::uint64_t seed) {
      return e.run_radiation_at(2, 1.0, true, s, seed);
    };
    const auto frame =
        measure_campaign(code, arch, SamplingPath::AUTO, shots, run, smoke);
    const auto exact =
        measure_campaign(code, arch, SamplingPath::EXACT, shots, run, smoke);
    const double speedup =
        exact.shots_per_second > 0
            ? frame.shots_per_second / exact.shots_per_second
            : 0.0;
    records.push_back(
        {name + "/frame",
         frame.shots_per_second,
         {{"cache_hit_rate", frame.cache_hit_rate},
          {"residual_fraction", frame.residual_fraction},
          {"promo_groups", static_cast<double>(frame.promotion.groups)},
          {"promoted_shots",
           static_cast<double>(frame.promotion.promoted_shots)},
          {"exact_replays",
           static_cast<double>(frame.promotion.exact_replays)},
          {"speedup_vs_exact", speedup}}});
    records.push_back({name + "/exact",
                       exact.shots_per_second,
                       {{"cache_hit_rate", exact.cache_hit_rate},
                        {"residual_fraction", exact.residual_fraction}}});
  };
  radiation_scenario("pipeline/radiation/rep5", rep5, mesh52,
                     smoke_shots(smoke, 4096));
  radiation_scenario("pipeline/radiation/xxzz33", xxzz33, mesh54,
                     smoke_shots(smoke, 4096));

  // --- shared-instant erasure (Figs 6-7 workload) --------------------------
  {
    const auto run = [](const InjectionEngine& e, std::size_t shots,
                        std::uint64_t seed) {
      return e.run_erasure({e.active_qubits()[0], e.active_qubits()[1]},
                           shots, seed);
    };
    const std::size_t shots = smoke_shots(smoke, 4096);
    const auto frame =
        measure_campaign(rep5, mesh52, SamplingPath::AUTO, shots, run, smoke);
    const auto exact = measure_campaign(rep5, mesh52, SamplingPath::EXACT,
                                        shots, run, smoke);
    const double speedup =
        exact.shots_per_second > 0
            ? frame.shots_per_second / exact.shots_per_second
            : 0.0;
    records.push_back({"pipeline/erasure/rep5/frame",
                       frame.shots_per_second,
                       {{"cache_hit_rate", frame.cache_hit_rate},
                        {"residual_fraction", frame.residual_fraction},
                        {"speedup_vs_exact", speedup}}});
    records.push_back({"pipeline/erasure/rep5/exact",
                       exact.shots_per_second,
                       {{"cache_hit_rate", exact.cache_hit_rate},
                        {"residual_fraction", exact.residual_fraction}}});
  }

  // --- rotated distance sweep on the native coupling graph -----------------
  // Real-distance memory-Z campaigns: frame fast path with word-sliced
  // compact replay for the residual shots.  Each record names the exact
  // engine the replay path selected for the device size.
  for (const int d : {11, 17, 21}) {
    const RotatedCode code(d, RotatedMemory::Z);
    EngineOptions eopts;
    eopts.layout = LayoutStrategy::TRIVIAL;  // native graph: identity wins
    const InjectionEngine engine(code, native_graph_for(code), eopts);
    const std::uint32_t root = engine.active_qubits()[0];
    const std::size_t shots = smoke_shots(smoke, 256, 8);
    std::uint64_t seed = 1;
    const double rate = measure_rate_mode(
        [&] {
          engine.run_radiation_at(root, 1.0, true, shots, seed++);
          return shots;
        },
        smoke);
    const PromotionStats promo = engine.promotion_stats();
    records.push_back(
        {"pipeline/radiation/rotated_memz_d" + std::to_string(d),
         rate,
         {{"cache_hit_rate", engine.decode_cache_stats().hit_rate()},
          {"residual_fraction", engine.residual_fraction()},
          {"promo_groups", static_cast<double>(promo.groups)},
          {"promoted_shots", static_cast<double>(promo.promoted_shots)},
          {"exact_replays", static_cast<double>(promo.exact_replays)},
          {"cache_bypassed", engine.cache_bypassed() ? 1.0 : 0.0}},
         {{"engine", engine.replay_engine()}}});
  }

  // --- herald-group promotion (low-entropy residual workloads) -------------
  // A localized full-intensity strike yields one herald signature per
  // strike ordinal, so the whole residual mass promotes into a handful of
  // groups: one conditioned tableau walk per group plus bit-parallel frame
  // replays, instead of a per-shot exact walk.  The off/on pair prices the
  // promotion itself.
  {
    const RotatedCode code(11, RotatedMemory::Z);
    const Graph arch = native_graph_for(code);
    const std::size_t shots = smoke_shots(smoke, 1024, 8);
    const auto measure_local = [&](bool promotion) {
      EngineOptions eopts;
      eopts.layout = LayoutStrategy::TRIVIAL;
      eopts.herald_promotion = promotion;
      const InjectionEngine engine(code, arch, eopts);
      const std::uint32_t root = engine.active_qubits()[0];
      std::uint64_t seed = 1;
      const double rate = measure_rate_mode(
          [&] {
            engine.run_radiation_at(root, 1.0, false, shots, seed++);
            return shots;
          },
          smoke);
      return std::make_pair(rate, engine.promotion_stats());
    };
    const auto [off_rate, off_stats] = measure_local(false);
    const auto [on_rate, on_stats] = measure_local(true);
    records.push_back(
        {"pipeline/promotion/rotated_memz_d11_local/off", off_rate,
         {{"exact_replays", static_cast<double>(off_stats.exact_replays)}}});
    records.push_back(
        {"pipeline/promotion/rotated_memz_d11_local/on",
         on_rate,
         {{"promo_groups", static_cast<double>(on_stats.groups)},
          {"promoted_shots", static_cast<double>(on_stats.promoted_shots)},
          {"exact_replays", static_cast<double>(on_stats.exact_replays)},
          {"speedup_vs_off", off_rate > 0 ? on_rate / off_rate : 0.0}}});
  }

  // --- static pipeline construction ---------------------------------------
  {
    const double rate = measure_rate_mode(
        [&] {
          InjectionEngine engine(xxzz33, mesh54, EngineOptions{});
          return std::size_t{1};
        },
        smoke);
    records.push_back({"pipeline/engine_construction/xxzz33", rate, {}});
  }

  return records_report("perf_pipeline (campaign shots/s)", records,
                        options);
}

// ---------------------------------------------------------------------------
// perf_timeline
// ---------------------------------------------------------------------------

ExperimentReport run_perf_timeline(const PerfRunOptions& options) {
  const bool smoke = options.smoke;
  constexpr std::size_t kRounds = 200;
  const std::size_t kShots = smoke_shots(smoke, 512, 16);
  std::vector<PerfRecord> records;

  const RepetitionCode rep5(5, RepetitionFlavor::BIT_FLIP);
  const Graph mesh52 = make_mesh(5, 2);

  EngineOptions opts;
  opts.rounds = kRounds;
  opts.whole_history_decoder = false;  // decoder memory stays O(window)
  const InjectionEngine engine(rep5, mesh52, opts);

  TimelineOptions topts;
  topts.events_per_round = 0.02;
  topts.duration_rounds = 10;
  const RadiationTimeline timeline(engine.radiation(), topts);
  Rng event_rng(20260729);
  const auto events =
      timeline.sample(kRounds, engine.active_qubits(), event_rng);

  // --- sliding windows (W = 10, C = 5) -------------------------------------
  const SlidingWindowOptions window{10, 5};
  SlidingWindowDecoder probe(engine.matching_graph(),
                             engine.detector_rounds(), kRounds, window);
  {
    std::uint64_t seed = 1;
    const double rate = measure_rate_mode(
        [&] {
          engine.run_timeline(timeline, events, kShots, seed++, window);
          return kShots;
        },
        smoke);
    // One unmeasured pass through the caller-owned probe decoder attaches
    // the matcher backend and work counters the measured runs performed
    // internally (run_timeline builds a private decoder per call).
    engine.run_timeline_with(timeline, events, kShots, 1, probe);
    const MwpmMatcherStats ms = probe.matcher_stats();
    records.push_back(
        {"timeline/rep5_200r/window",
         rate,
         {{"rounds", static_cast<double>(kRounds)},
          {"window", static_cast<double>(window.window)},
          {"num_windows", static_cast<double>(probe.num_windows())},
          {"window_decoders", static_cast<double>(probe.num_decoders())},
          {"max_window_detectors",
           static_cast<double>(probe.max_window_detectors())},
          {"cache_hit_rate", engine.decode_cache_stats().hit_rate()},
          {"regions_grown", static_cast<double>(ms.regions_grown)},
          {"blossoms_formed", static_cast<double>(ms.blossoms_formed)},
          {"warm_reuses", static_cast<double>(ms.warm_reuses)}},
         {{"matcher_backend", probe.matcher_backend()}}});
  }

  // --- whole-history baseline (window >= rounds: one full-size MWPM) -------
  {
    const SlidingWindowOptions whole{kRounds, 0};
    std::uint64_t seed = 1;
    const double rate = measure_rate_mode(
        [&] {
          engine.run_timeline(timeline, events, kShots, seed++, whole);
          return kShots;
        },
        smoke);
    records.push_back(
        {"timeline/rep5_200r/whole_history",
         rate,
         {{"rounds", static_cast<double>(kRounds)},
          {"history_detectors",
           static_cast<double>(engine.matching_graph().num_detectors())}}});
  }

  // --- chip-burst herald-aware pair (decoder reweighting cost) -------------
  // One localized chip-burst strike on a rotated d = 5 memory, decoded
  // unaware (shared intrinsic-weighted decoder) vs herald-aware (every
  // run_timeline call rebuilds a strike-reweighted sliding-window decoder
  // from the instrumented circuit's DEM).  The pair prices the rebuild:
  // cost_vs_unaware is the throughput ratio the aware mode gives up in
  // exchange for its LER gain (see the abl_burst_aware spec).
  {
    const RotatedCode burst_code(5, RotatedMemory::Z);
    const Graph burst_arch = native_graph_for(burst_code);
    const std::size_t burst_shots = smoke_shots(smoke, 512, 16);
    TimelineOptions burst_topts;
    burst_topts.chip_burst = true;
    burst_topts.qp_lambda = 1.5;
    burst_topts.intensity = 0.5;
    burst_topts.duration_rounds = 6;
    const SlidingWindowOptions burst_window{4, 2};
    const std::vector<RadiationEvent> strike = {
        {2, static_cast<std::uint32_t>(burst_arch.num_nodes() / 2), 0.5}};
    const auto measure_arm = [&](bool aware) {
      EngineOptions eopts;
      eopts.rounds = 8;
      eopts.layout = LayoutStrategy::TRIVIAL;
      eopts.whole_history_decoder = false;
      eopts.physical_error_rate = 1e-3;
      eopts.decoder.herald_aware = aware;
      const InjectionEngine burst_engine(burst_code, burst_arch, eopts);
      const RadiationTimeline burst_timeline(burst_engine.radiation(),
                                             burst_topts);
      std::uint64_t seed = 1;
      return measure_rate_mode(
          [&] {
            burst_engine.run_timeline(burst_timeline, strike, burst_shots,
                                      seed++, burst_window);
            return burst_shots;
          },
          smoke);
    };
    const double unaware_rate = measure_arm(false);
    const double aware_rate = measure_arm(true);
    records.push_back({"timeline/burst_rotated_d5/unaware", unaware_rate, {}});
    records.push_back(
        {"timeline/burst_rotated_d5/aware",
         aware_rate,
         {{"cost_vs_unaware",
           aware_rate > 0 ? unaware_rate / aware_rate : 0.0}}});
  }

  ExperimentReport rep = records_report(
      "perf_timeline (200-round rep-(5,1) campaign shots/s)", records,
      options);
  rep.notes.insert(rep.notes.begin(),
                   "events in realization: " + std::to_string(events.size()));
  return rep;
}

ExperimentReport run_perf_serve(const PerfRunOptions& options) {
  const bool smoke = options.smoke;
  std::vector<PerfRecord> records;

  // Shared workload shape: the perf_timeline experiment (rep-(5,1) on a
  // 5x2 mesh, 200 rounds, W = 10 / C = 5) streamed 10 rounds per frame,
  // up to 4 pipelined shots per stream.  One server per concurrency
  // level; every RESULT is pinned against the offline decode inside
  // run_load, and the structural contracts below hold in smoke mode too.
  serve::ServeConfig cfg;
  cfg.shots_per_stream = smoke ? 4 : 64;
  cfg.rounds_per_frame = 10;
  cfg.max_inflight = 4;
  const std::unique_ptr<InjectionEngine> engine = cfg.build_engine();
  const RadiationTimeline timeline = cfg.build_timeline(*engine);

  const auto run_level = [&](const std::string& name, std::size_t streams,
                             bool use_unix) {
    cfg.streams = streams;
    serve::ServeConfig level = cfg;
    if (use_unix) {
      level.server.listen_tcp = false;
      level.server.unix_path = "/tmp/radsurf_perf_serve.sock";
    }
    const ServeRoundtrip rt =
        run_serve_roundtrip(*engine, timeline, {}, level, 20240715);
    const serve::LoadGenReport& lg = rt.report;
    RADSURF_ASSERT_MSG(lg.mismatches == 0,
                       name << ": " << lg.mismatches
                            << " streamed predictions mismatch the offline "
                               "decode");
    RADSURF_ASSERT_MSG(lg.errors == 0 && rt.stats.protocol_errors == 0,
                       name << ": protocol errors during the bench");
    RADSURF_ASSERT_MSG(lg.results == streams * cfg.shots_per_stream,
                       name << ": " << lg.results << " of "
                            << streams * cfg.shots_per_stream
                            << " shots decoded (unexpected shedding)");
    const double hit_rate =
        rt.stats.memo_lookups == 0
            ? 0.0
            : static_cast<double>(rt.stats.memo_hits) /
                  static_cast<double>(rt.stats.memo_lookups);
    records.push_back(
        {name,
         lg.shots_per_second,
         {{"streams", static_cast<double>(streams)},
          {"shots", static_cast<double>(lg.results)},
          {"commit_p50_ms", lg.p50_ms},
          {"commit_p99_ms", lg.p99_ms},
          {"windows_committed",
           static_cast<double>(rt.stats.windows_committed)},
          {"shed_shots", static_cast<double>(rt.stats.shed_shots)},
          {"mismatches", static_cast<double>(lg.mismatches)},
          {"memo_hit_rate", hit_rate}},
         {{"transport", use_unix ? "unix" : "tcp"}}});
  };

  for (const std::size_t streams :
       smoke ? std::vector<std::size_t>{1, 2}
             : std::vector<std::size_t>{1, 4, 8})
    run_level("serve/rep5_200r_w10/c" + std::to_string(streams), streams,
              false);
  // Unix-domain transport at mid concurrency (the protocol is transport-
  // agnostic; this prices the socket layer difference).
  run_level("serve/rep5_200r_w10/unix_c4", smoke ? 2 : 4, true);

  return records_report(
      "perf_serve (streamed 200-round rep-(5,1) decode service, "
      "client-measured commit latency)",
      records, options);
}

}  // namespace radsurf
