// Per-cell result streaming and resumable checkpoints for campaign
// scenarios.
//
// A campaign executor (cli/grid.hpp) asks its CampaignSink before running
// each grid cell; a checkpointed cell's row is replayed instead of being
// recomputed, and every freshly computed cell is appended (and flushed) as
// one JSONL line the moment it finishes.  Killing a sharded campaign at
// cell 700/1000 therefore loses at most the cell in flight; re-running the
// same spec resumes from cell 701.  Determinism makes this sound: a cell's
// RNG stream is a pure function of (spec seed, cell key), so a resumed
// campaign produces bit-identical rows to an uninterrupted one.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <unordered_map>
#include <vector>

namespace radsurf {

/// Receiver of per-cell campaign results.
class CampaignSink {
 public:
  virtual ~CampaignSink() = default;
  /// True (filling `row`) when `key`'s result is already known.
  virtual bool lookup(const std::string& key,
                      std::vector<std::string>* row) = 0;
  /// Record a freshly computed cell (durably, for checkpoint sinks).
  virtual void emit(const std::string& key,
                    const std::vector<std::string>& row) = 0;
};

/// JSONL checkpoint file.  Line 1 is a header holding the spec
/// fingerprint (see ScenarioSpec::fingerprint); every other line is
/// {"cell": "<key>", "row": [...]}.  Opening against a file written by a
/// *different* spec throws SpecError with a hint to pass --fresh; opening
/// with fresh=true discards instead of resuming.  Unparseable trailing
/// lines (a crash mid-write) are dropped with the cells they held, and
/// every open rewrites the file in canonical one-cell-per-line form from
/// the parsed state, so a torn tail can never corrupt later appends.
class JsonlCheckpointSink final : public CampaignSink {
 public:
  JsonlCheckpointSink(std::string path, std::uint64_t fingerprint,
                      bool fresh = false);

  bool lookup(const std::string& key, std::vector<std::string>* row) override;
  void emit(const std::string& key,
            const std::vector<std::string>& row) override;

  /// Cells loaded from a pre-existing checkpoint file.
  std::size_t loaded() const { return loaded_; }
  const std::string& path() const { return path_; }

 private:
  void write_cell(const std::string& key,
                  const std::vector<std::string>& row);

  std::string path_;
  std::unordered_map<std::string, std::vector<std::string>> cells_;
  std::ofstream out_;
  std::size_t loaded_ = 0;
};

}  // namespace radsurf
