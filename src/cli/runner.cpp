#include "cli/runner.hpp"

#include <csignal>
#include <charconv>
#include <chrono>
#include <cstring>
#include <exception>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "cli/checkpoint.hpp"
#include "cli/registry.hpp"
#include "serve/config.hpp"
#include "serve/server.hpp"
#include "util/json.hpp"

namespace radsurf {

namespace {

constexpr const char* kUsage = R"(radsurf — spec-driven experiment runner

usage:
  radsurf run <spec.json | scenario> [options]   run one scenario
  radsurf run --smoke                            smoke-run every registered scenario
  radsurf serve <spec.json> [serve options]      streaming decode service (SIGINT stops)
  radsurf list                                   list registered scenarios
  radsurf validate <spec.json ...>               parse + validate specs without running
  radsurf help                                   this text

run options:
  --shots N         override the spec's shot budget
  --seed N          override the spec's base seed
  --smoke           tiny budgets (CI validation; perf JSON writing disabled)
  --jobs N          campaign worker threads: grid cells run on N workers
                    (results are identical for every N; other scenarios
                    ignore the flag)
  --csv             print the result table as CSV instead of aligned text
  --out FILE        write the result table as CSV
  --json-out FILE   write the full report as JSON
  --checkpoint FILE per-cell JSONL checkpoint (campaign scenarios resume from it)
  --fresh           discard an existing checkpoint instead of resuming

serve options:
  --port N          TCP loopback port override (0 = ephemeral)
  --unix PATH       unix-domain socket path override
  --no-tcp          do not listen on TCP (requires a unix socket)

Scenario specs live in specs/ (one per paper figure, plus cross-product
campaigns); docs/SCENARIOS.md documents the schema.
)";

void write_file(const std::string& path, const std::string& content,
                const char* what) {
  std::ofstream out(path);
  if (!out) throw SpecError(std::string(what) + ": cannot open " + path);
  out << content;
  if (!out) throw SpecError(std::string(what) + ": write failed for " + path);
}

/// Strict decimal parse for CLI counts: rejects signs, garbage and
/// overflow with an error naming the flag (std::stoull would wrap "-2" to
/// 1.8e19 shots and report bare "stoull" on junk).
std::uint64_t parse_uint_flag(const char* flag, const std::string& text) {
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (text.empty() || ec != std::errc() ||
      ptr != text.data() + text.size())
    throw SpecError(std::string(flag) + ": expected a non-negative "
                    "integer, got \"" + text + "\"");
  return value;
}

struct RunArgs {
  std::string target;  // spec file or scenario name ("" = all, smoke only)
  std::optional<std::size_t> shots;
  std::optional<std::uint64_t> seed;
  std::optional<std::size_t> jobs;
  bool smoke = false;
  bool csv = false;
  bool fresh = false;
  std::string out_csv;
  std::string out_json;
  std::string checkpoint;
};

RunArgs parse_run_args(int argc, char** argv, int begin) {
  RunArgs args;
  for (int i = begin; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&](const char* what) -> std::string {
      if (i + 1 >= argc)
        throw SpecError(std::string(what) + " needs a value");
      return argv[++i];
    };
    if (arg == "--shots") {
      args.shots = parse_uint_flag("--shots", next_value("--shots"));
    } else if (arg == "--seed") {
      args.seed = parse_uint_flag("--seed", next_value("--seed"));
    } else if (arg == "--jobs") {
      const std::uint64_t n = parse_uint_flag("--jobs", next_value("--jobs"));
      if (n == 0)
        throw SpecError("--jobs: expected a positive worker count");
      args.jobs = static_cast<std::size_t>(n);
    } else if (arg == "--smoke") {
      args.smoke = true;
    } else if (arg == "--csv") {
      args.csv = true;
    } else if (arg == "--fresh") {
      args.fresh = true;
    } else if (arg == "--out") {
      args.out_csv = next_value("--out");
    } else if (arg == "--json-out") {
      args.out_json = next_value("--json-out");
    } else if (arg == "--checkpoint") {
      args.checkpoint = next_value("--checkpoint");
    } else if (!arg.empty() && arg[0] == '-') {
      throw SpecError("unknown option " + arg + " (see radsurf help)");
    } else if (args.target.empty()) {
      args.target = arg;
    } else {
      throw SpecError("unexpected argument " + arg +
                      " (one spec per run; see radsurf help)");
    }
  }
  return args;
}

bool looks_like_file(const std::string& target) {
  if (target.size() > 5 && target.substr(target.size() - 5) == ".json")
    return true;
  return static_cast<bool>(std::ifstream(target));
}

ScenarioSpec load_target(const RunArgs& args) {
  ScenarioSpec spec;
  if (looks_like_file(args.target)) {
    spec = ScenarioSpec::from_file(args.target);
  } else {
    spec.scenario = args.target;  // bare registry name, default spec
  }
  if (args.smoke) {
    spec.smoke = true;
    spec.shots = 0;  // drop the spec file's budget; the floor takes over
  }
  // Explicit CLI overrides beat both the spec file and the smoke floor.
  if (args.shots) spec.shots = *args.shots;
  if (args.seed) spec.seed = *args.seed;
  if (args.jobs) spec.jobs = *args.jobs;
  if (!args.out_csv.empty()) spec.output.csv_path = args.out_csv;
  if (!args.out_json.empty()) spec.output.json_path = args.out_json;
  if (!args.checkpoint.empty()) spec.output.checkpoint_path = args.checkpoint;
  return spec;
}

int run_all_smoke(const RunArgs& args) {
  for (const ScenarioInfo& info : scenario_registry()) {
    ScenarioSpec spec = smoke_spec(info.name);
    if (args.shots) spec.shots = *args.shots;
    if (args.seed) spec.seed = *args.seed;
    const ExperimentReport report = run_spec(spec);
    std::cout << "smoke " << info.name << ": ok (" << report.table.num_rows()
              << " rows — " << report.title << ")\n";
  }
  std::cout << "smoke-ran " << scenario_registry().size() << " scenarios\n";
  return 0;
}

int cmd_run(int argc, char** argv) {
  const RunArgs args = parse_run_args(argc, argv, 2);
  if (args.target.empty()) {
    if (!args.smoke)
      throw SpecError("radsurf run needs a spec file or scenario name "
                      "(or --smoke to sweep all scenarios)");
    return run_all_smoke(args);
  }
  const ScenarioSpec spec = load_target(args);
  const ExperimentReport report = run_spec(spec, args.fresh);
  std::cout << report.to_string(args.csv);
  return 0;
}

int cmd_list() {
  for (const ScenarioInfo& info : scenario_registry())
    std::cout << info.name << "\t" << info.summary << "\n";
  return 0;
}

int cmd_validate(int argc, char** argv) {
  if (argc <= 2)
    throw SpecError("radsurf validate needs at least one spec file");
  bool ok = true;
  for (int i = 2; i < argc; ++i) {
    try {
      const ScenarioSpec spec = ScenarioSpec::from_file(argv[i]);
      (void)make_scenario(spec);  // full params validation
      std::cout << "OK " << argv[i] << " (scenario " << spec.scenario
                << ")\n";
    } catch (const Error& e) {
      std::cerr << "FAIL " << argv[i] << ": " << e.what() << "\n";
      ok = false;
    }
  }
  return ok ? 0 : 1;
}

// ---------------------------------------------------------------------------
// radsurf serve — long-lived streaming decode service.

volatile std::sig_atomic_t g_serve_stop = 0;
void serve_signal_handler(int) { g_serve_stop = 1; }

int cmd_serve(int argc, char** argv) {
  std::string spec_path;
  std::optional<std::uint16_t> port;
  std::optional<std::string> unix_path;
  bool no_tcp = false;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&](const char* what) -> std::string {
      if (i + 1 >= argc)
        throw SpecError(std::string(what) + " needs a value");
      return argv[++i];
    };
    if (arg == "--port") {
      port = static_cast<std::uint16_t>(
          parse_uint_flag("--port", next_value("--port")));
    } else if (arg == "--unix") {
      unix_path = next_value("--unix");
    } else if (arg == "--no-tcp") {
      no_tcp = true;
    } else if (!arg.empty() && arg[0] == '-') {
      throw SpecError("unknown option " + arg + " (see radsurf help)");
    } else if (spec_path.empty()) {
      spec_path = arg;
    } else {
      throw SpecError("unexpected argument " + arg +
                      " (one spec per serve; see radsurf help)");
    }
  }
  if (spec_path.empty())
    throw SpecError("radsurf serve needs a spec file (scenario \"serve\")");

  const ScenarioSpec spec = ScenarioSpec::from_file(spec_path);
  if (spec.scenario != "serve")
    throw SpecError("radsurf serve: spec scenario is \"" + spec.scenario +
                    "\", expected \"serve\"");
  SpecReader params(spec.params, "$.params");
  serve::ServeConfig cfg = serve::ServeConfig::from_params(params);
  params.finish();
  if (port) cfg.server.tcp_port = *port;
  if (unix_path) cfg.server.unix_path = *unix_path;
  if (no_tcp) cfg.server.listen_tcp = false;
  if (!cfg.server.listen_tcp && cfg.server.unix_path.empty())
    throw SpecError("radsurf serve: --no-tcp without a unix socket leaves "
                    "no endpoint");

  const std::unique_ptr<InjectionEngine> engine = cfg.build_engine();
  const RadiationTimeline timeline = cfg.build_timeline(*engine);
  serve::ServeServer server(*engine, &timeline, cfg.server_options());
  server.start();

  std::cout << "serve: " << cfg.code << ":" << cfg.distance << " on "
            << cfg.arch << ", " << cfg.rounds << " rounds, W="
            << cfg.window.window << " C=" << cfg.window.commit << "\n";
  if (cfg.server.listen_tcp)
    std::cout << "serve: listening on tcp 127.0.0.1:" << server.tcp_port()
              << "\n";
  if (!server.unix_path().empty())
    std::cout << "serve: listening on unix " << server.unix_path() << "\n";
  std::cout.flush();

  std::signal(SIGINT, serve_signal_handler);
  std::signal(SIGTERM, serve_signal_handler);
  while (g_serve_stop == 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(50));

  std::cout << "serve: shutting down (draining in-flight windows)\n";
  server.shutdown();
  const serve::ServeStatsSnapshot s = server.stats();
  // One grep-able line; the CI smoke job pins windows_committed > 0 and
  // protocol_errors == 0 off it.
  std::cout << "serve: connections=" << s.connections
            << " shots_completed=" << s.shots_completed
            << " windows_committed=" << s.windows_committed
            << " shed_shots=" << s.shed_shots
            << " protocol_errors=" << s.protocol_errors
            << " replies_dropped=" << s.replies_dropped
            << " aware_rebuilds=" << s.aware_rebuilds << "\n";
  return 0;
}

}  // namespace

std::string report_to_json(const ExperimentReport& report) {
  JsonValue json = JsonValue::object();
  json.set("title", report.title);
  JsonValue headers = JsonValue::array();
  for (const std::string& h : report.table.headers()) headers.push_back(h);
  json.set("headers", std::move(headers));
  JsonValue rows = JsonValue::array();
  for (const auto& row : report.table.rows()) {
    JsonValue cells = JsonValue::array();
    for (const std::string& c : row) cells.push_back(c);
    rows.push_back(std::move(cells));
  }
  json.set("rows", std::move(rows));
  JsonValue notes = JsonValue::array();
  for (const std::string& n : report.notes) notes.push_back(n);
  json.set("notes", std::move(notes));
  return json.dump(2) + "\n";
}

ExperimentReport run_spec(const ScenarioSpec& spec, bool fresh) {
  std::unique_ptr<Scenario> scenario = make_scenario(spec);
  std::unique_ptr<JsonlCheckpointSink> sink;
  if (!spec.output.checkpoint_path.empty())
    sink = std::make_unique<JsonlCheckpointSink>(
        spec.output.checkpoint_path, spec.fingerprint(), fresh);
  const ExperimentReport report = scenario->run(sink.get());
  if (!spec.output.csv_path.empty())
    write_file(spec.output.csv_path, report.table.to_csv(), "--out");
  if (!spec.output.json_path.empty())
    write_file(spec.output.json_path, report_to_json(report), "--json-out");
  return report;
}

int radsurf_cli_main(int argc, char** argv) {
  try {
    const std::string command = argc > 1 ? argv[1] : "help";
    if (command == "run") return cmd_run(argc, argv);
    if (command == "serve") return cmd_serve(argc, argv);
    if (command == "list") return cmd_list();
    if (command == "validate") return cmd_validate(argc, argv);
    if (command == "help" || command == "--help" || command == "-h") {
      std::cout << kUsage;
      return 0;
    }
    std::cerr << "error: unknown command \"" << command
              << "\" (run | serve | list | validate | help)\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}

int legacy_scenario_main(const std::string& scenario, int argc,
                         char** argv) {
  try {
    const auto opts = ExperimentOptions::from_args(argc, argv);
    ScenarioSpec spec;
    spec.scenario = scenario;
    spec.shots = opts.shots;
    spec.seed = opts.seed;
    const ExperimentReport report = make_scenario(spec)->run(nullptr);
    std::cout << report.to_string(opts.csv);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}

int legacy_perf_main(const std::string& scenario, int argc, char** argv) {
  try {
    ScenarioSpec spec;
    spec.scenario = scenario;
    for (int i = 1; i < argc; ++i)
      if (std::strcmp(argv[i], "--smoke") == 0) spec.smoke = true;
    // The binaries always merge the trajectory file, smoke included (the
    // CI perf-smoke job validates the file), unlike the smoke sweep.
    spec.params = JsonValue::object();
    spec.params.set("bench_json", "BENCH_perf.json");
    const ExperimentReport report = make_scenario(spec)->run(nullptr);
    std::cout << report.to_string(false);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace radsurf
