// Declarative scenario specs: the input format of the `radsurf` runner.
//
// A spec is a JSON object selecting one registered scenario and its
// parameters (see docs/SCENARIOS.md for the full schema and cookbook):
//
//   {
//     "scenario": "fig5",              // registry name (radsurf list)
//     "description": "free text",      // optional, ignored by the runner
//     "shots": 2000,                   // 0/absent = scenario default
//     "seed": 20240715,
//     "smoke": false,                  // tiny budgets, no perf JSON output
//     "jobs": 4,                       // campaign worker threads (grid)
//     "output": {"csv": "...", "json": "...", "checkpoint": "..."},
//     "params": { ... }                // scenario-specific, see registry
//   }
//
// Parsing is *strict*: unknown fields and type mismatches are rejected
// with SpecError messages that name the JSON path, the offending value and
// the accepted alternatives, so a typo in a 200-cell campaign spec fails
// in milliseconds instead of after an hour of sampling.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/error.hpp"
#include "util/json.hpp"

namespace radsurf {

/// A scenario spec that is malformed or inconsistent.
class SpecError : public Error {
 public:
  explicit SpecError(const std::string& what) : Error(what) {}
};

/// Typed, path-tracking reader over a JSON object.  Every field a scenario
/// accepts is declared by reading it (with a default); finish() then
/// rejects any leftover key, listing the accepted ones — the mechanism
/// behind the spec layer's unknown-field errors.
class SpecReader {
 public:
  /// `object` must outlive the reader.  `path` is the JSON-path prefix used
  /// in error messages (e.g. "$.params").
  SpecReader(const JsonValue& object, std::string path);

  bool has(const std::string& key) const;

  std::string get_string(const std::string& key, std::string fallback);
  bool get_bool(const std::string& key, bool fallback);
  double get_number(const std::string& key, double fallback);
  /// Non-negative integral number (rejects fractions and negatives).
  std::uint64_t get_uint(const std::string& key, std::uint64_t fallback);

  std::vector<double> get_number_list(const std::string& key,
                                      std::vector<double> fallback);
  std::vector<std::string> get_string_list(const std::string& key,
                                           std::vector<std::string> fallback);
  std::vector<std::uint64_t> get_uint_list(const std::string& key,
                                           std::vector<std::uint64_t> fallback);

  /// The raw member (marked consumed), or nullptr when absent.
  const JsonValue* get_raw(const std::string& key);

  /// Throw SpecError at `key`'s path with `message`.
  [[noreturn]] void fail(const std::string& key,
                         const std::string& message) const;

  /// Reject unconsumed keys: "unknown field $.params.xyz (accepted fields:
  /// ...)".  Call exactly once, after reading every accepted field.
  void finish() const;

  const std::string& path() const { return path_; }

 private:
  const JsonValue& object_;
  std::string path_;
  std::vector<std::string> consumed_;
};

/// Where a scenario writes machine-readable results, beyond stdout.
struct OutputOptions {
  std::string csv_path;         // final table as CSV ("" = don't write)
  std::string json_path;        // final report as JSON ("" = don't write)
  std::string checkpoint_path;  // per-cell JSONL checkpoint for campaigns

  bool operator==(const OutputOptions&) const = default;
};

struct ScenarioSpec {
  std::string scenario;
  std::string description;
  std::size_t shots = 0;  // 0 = scenario default
  std::uint64_t seed = 20240715;
  bool smoke = false;
  /// Campaign worker threads (grid cells run on `jobs` workers; every
  /// other scenario ignores it).  Results are independent of the value —
  /// cell seeds are pure functions of (seed, cell key) — so, like output
  /// paths, it does not enter the checkpoint fingerprint.
  std::size_t jobs = 1;
  OutputOptions output;
  JsonValue params = JsonValue::object();

  /// Strict parse; `origin` prefixes error messages (typically the file
  /// name).  `params` contents are validated later by the scenario factory.
  static ScenarioSpec from_json(const JsonValue& json,
                                const std::string& origin = "spec");
  static ScenarioSpec from_file(const std::string& path);

  /// Inverse of from_json: defaulted fields are emitted explicitly so a
  /// round-tripped spec is self-documenting.
  JsonValue to_json() const;

  bool operator==(const ScenarioSpec& other) const;

  /// 64-bit hash over the canonical spec JSON *minus the output block*,
  /// salted with a sampling-schema version: the resume layer's
  /// compatibility check.  Changing shots, seed, params or the scenario
  /// invalidates checkpoints — as does an engine release that changes the
  /// sampled values of an unchanged spec (see the salt in spec.cpp);
  /// changing output paths, the description or `jobs` does not.
  std::uint64_t fingerprint() const;
};

}  // namespace radsurf
