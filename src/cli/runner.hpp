// Entry points of the `radsurf` CLI and of the legacy bench shims.
//
// The CLI (bench/radsurf_main.cpp) is a thin argv front-end over the spec
// layer: load or synthesize a ScenarioSpec, resolve it through the
// scenario registry, attach the checkpoint sink, run, render.  The legacy
// bench binaries call the legacy_*_main helpers so their historical flags
// keep working while every execution path goes through the registry.
#pragma once

#include <string>

#include "cli/spec.hpp"
#include "core/experiments.hpp"

namespace radsurf {

/// JSON rendering of a report: {"title", "headers", "rows", "notes"}.
std::string report_to_json(const ExperimentReport& report);

/// Run one spec end to end: build the scenario (validating params), attach
/// a JsonlCheckpointSink when spec.output.checkpoint is set (`fresh`
/// discards an existing checkpoint), write the CSV/JSON outputs.  Returns
/// the report; throws SpecError/Error on failure.
ExperimentReport run_spec(const ScenarioSpec& spec, bool fresh = false);

/// The `radsurf` CLI: run | list | validate | help.  Returns the process
/// exit code.
int radsurf_cli_main(int argc, char** argv);

/// Shim for the fig/abl/ext binaries: parse the historical --shots/--seed/
/// --csv flags, run `scenario` through the registry, print the report.
int legacy_scenario_main(const std::string& scenario, int argc, char** argv);

/// Shim for the perf binaries: honour --smoke, always merge into
/// BENCH_perf.json, print the record table.
int legacy_perf_main(const std::string& scenario, int argc, char** argv);

}  // namespace radsurf
