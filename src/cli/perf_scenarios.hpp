// Performance benches as registry scenarios (moved here from the four
// standalone bench/perf_*.cpp binaries, which are now compatibility shims).
//
// Each run_perf_* function measures wall-clock throughput of one subsystem
// and merges its scenario records into the BENCH_perf.json perf-trajectory
// file: a JSON object whose "records" array holds one object per scenario,
// one per line:
//   {"scenario": "pipeline/radiation/rep5", "shots_per_second": 1.2e6,
//    "cache_hit_rate": 0.97, "speedup_vs_exact": 9.3}
// Re-running a bench replaces its own scenarios and preserves the others,
// so successive PRs accumulate a comparable perf history.
//
// Smoke mode runs a tiny shot budget with two quick repetitions — CI uses
// it to validate that the benches execute and emit well-formed JSON; no
// timing assertions (timings from shared runners are noise).  Structural
// contracts (e.g. the cluster-cache hit-rate gain in run_perf_decoder) are
// still asserted in smoke mode and throw radsurf::Error on violation.
#pragma once

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "core/experiments.hpp"

namespace radsurf {

struct PerfRecord {
  std::string scenario;
  double shots_per_second = 0.0;
  // Optional scenario-specific metrics (cache_hit_rate, speedup_vs_exact,
  // residual_fraction, ...).
  std::vector<std::pair<std::string, double>> extra;
  // Optional string-valued context (matcher backend name, ...), emitted as
  // JSON string fields alongside the numeric extras.
  std::vector<std::pair<std::string, std::string>> text;
};

/// Best-of-reps throughput: `fn` performs one repetition and returns the
/// number of work items (shots, decodes, ...) it processed.  One warm-up
/// repetition, then repetitions until `min_seconds` of measured time or
/// `max_reps`, keeping the fastest rate.
double measure_rate(const std::function<std::size_t()>& fn,
                    double min_seconds = 0.25, int max_reps = 12);

/// measure_rate with the shared smoke-mode budget policy: two quick reps
/// in smoke mode, the full best-of measurement otherwise.
double measure_rate_mode(const std::function<std::size_t()>& fn, bool smoke);

/// Shot budget helper: full budget normally, a fixed tiny budget in smoke
/// mode.
std::size_t smoke_shots(bool smoke, std::size_t full, std::size_t tiny = 64);

/// Merge `records` into the BENCH JSON file at `path` (see file comment),
/// preserving records of scenarios this run did not measure.
void write_perf_json(const std::string& path,
                     const std::vector<PerfRecord>& records);

struct PerfRunOptions {
  bool smoke = false;
  /// Merge destination; "" skips writing (the registry smoke sweep).
  std::string bench_json = "BENCH_perf.json";
};

/// Stabilizer-simulation throughput (tableau vs frame vs radiation frame).
ExperimentReport run_perf_simulator(const PerfRunOptions& options);
/// Decoding throughput: defect-density sweep, decoder kinds, sparse MWPM
/// construction, syndrome caches (asserts the cluster-cache gain).
ExperimentReport run_perf_decoder(const PerfRunOptions& options);
/// End-to-end campaign throughput, frame fast path vs exact baseline.
ExperimentReport run_perf_pipeline(const PerfRunOptions& options);
/// Long-horizon timeline campaign: sliding windows vs whole history.
ExperimentReport run_perf_timeline(const PerfRunOptions& options);
/// Streaming decode service: client-measured p50/p99 window-commit latency
/// and shots/s at several concurrency levels (asserts bit-for-bit parity
/// with the offline decode and a clean protocol run).
ExperimentReport run_perf_serve(const PerfRunOptions& options);

}  // namespace radsurf
