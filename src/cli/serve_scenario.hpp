// The "serve" registry scenario and the in-process serve round-trip the
// perf bench and the smoke sweep share: start a ServeServer, drive it
// with the load generator, shut down gracefully, and pin the streamed
// results bit-for-bit against the offline decode (run_load's mismatch
// counter).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cli/registry.hpp"
#include "serve/config.hpp"
#include "serve/loadgen.hpp"
#include "serve/session.hpp"

namespace radsurf {

struct ServeRoundtrip {
  serve::LoadGenReport report;
  serve::ServeStatsSnapshot stats;
};

/// Start an in-process server for `cfg` (ephemeral endpoint unless the
/// config pins one), run the load generator at cfg.streams concurrency,
/// and shut the server down gracefully.  Pure round-trip: no assertions —
/// callers decide which counters are contractual.
ServeRoundtrip run_serve_roundtrip(const InjectionEngine& engine,
                                   const RadiationTimeline& timeline,
                                   const std::vector<RadiationEvent>& events,
                                   const serve::ServeConfig& cfg,
                                   std::uint64_t seed);

/// Factory of the "serve" registry scenario: a self-contained round-trip
/// whose report carries throughput, commit-latency percentiles and the
/// parity/shed/error counters.  Throws radsurf::Error when the round-trip
/// is not clean (any mismatch or protocol error) — the smoke sweep is a
/// real end-to-end protocol test, not just an execution check.
std::unique_ptr<Scenario> make_serve_scenario(const ScenarioSpec& spec);

}  // namespace radsurf
