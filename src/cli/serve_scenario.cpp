#include "cli/serve_scenario.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "serve/server.hpp"
#include "util/error.hpp"

namespace radsurf {

namespace {

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

}  // namespace

ServeRoundtrip run_serve_roundtrip(const InjectionEngine& engine,
                                   const RadiationTimeline& timeline,
                                   const std::vector<RadiationEvent>& events,
                                   const serve::ServeConfig& cfg,
                                   std::uint64_t seed) {
  serve::ServeServer server(engine, &timeline, cfg.server_options());
  server.start();

  serve::LoadGenOptions lopts = cfg.loadgen_options(seed);
  lopts.events = events;
  if (!cfg.server.unix_path.empty() && !cfg.server.listen_tcp)
    lopts.unix_path = cfg.server.unix_path;
  else
    lopts.port = server.tcp_port();

  ServeRoundtrip rt;
  rt.report = serve::run_load(engine, timeline, lopts);
  server.shutdown();
  rt.stats = server.stats();
  return rt;
}

std::unique_ptr<Scenario> make_serve_scenario(const ScenarioSpec& spec) {
  SpecReader params(spec.params, "$.params");
  serve::ServeConfig cfg = serve::ServeConfig::from_params(params);
  params.finish();

  if (spec.smoke) {
    cfg.streams = std::min<std::size_t>(cfg.streams, 2);
    cfg.shots_per_stream = std::min<std::size_t>(cfg.shots_per_stream, 4);
  }
  // An explicit shot budget overrides the per-stream shot count.
  if (spec.shots != 0) cfg.shots_per_stream = spec.shots;
  const std::uint64_t seed = spec.seed;

  return std::make_unique<FunctionScenario>([cfg,
                                             seed](CampaignSink*)
                                                -> ExperimentReport {
    const std::unique_ptr<InjectionEngine> engine = cfg.build_engine();
    const RadiationTimeline timeline = cfg.build_timeline(*engine);
    const std::vector<RadiationEvent> events =
        cfg.build_events(*engine, timeline, seed + 1);
    const ServeRoundtrip rt =
        run_serve_roundtrip(*engine, timeline, events, cfg, seed);
    const serve::LoadGenReport& lg = rt.report;

    // Contracts of a healthy round-trip — enforced in smoke mode too, so
    // the registry sweep is an end-to-end protocol test.
    if (lg.mismatches != 0)
      throw Error("serve: " + std::to_string(lg.mismatches) +
                  " streamed predictions mismatch the offline decode");
    if (lg.errors != 0 || rt.stats.protocol_errors != 0)
      throw Error("serve: round-trip saw " + std::to_string(lg.errors) +
                  " client errors / " +
                  std::to_string(rt.stats.protocol_errors) +
                  " protocol errors");
    if (lg.results == 0 || rt.stats.windows_committed == 0)
      throw Error("serve: round-trip committed no windows");

    ExperimentReport rep;
    rep.title = "serve: streaming decode round-trip (" + cfg.code + ":" +
                std::to_string(cfg.distance) + ", " +
                std::to_string(cfg.rounds) + " rounds, W=" +
                std::to_string(cfg.window.window) + ")";
    Table t({"metric", "value"});
    t.add_row({"streams", std::to_string(lg.streams)});
    t.add_row({"shots_sent", std::to_string(lg.shots_sent)});
    t.add_row({"results", std::to_string(lg.results)});
    t.add_row({"windows_committed",
               std::to_string(rt.stats.windows_committed)});
    t.add_row({"shed_shots", std::to_string(rt.stats.shed_shots)});
    t.add_row({"mismatches", std::to_string(lg.mismatches)});
    t.add_row({"protocol_errors", std::to_string(rt.stats.protocol_errors)});
    t.add_row({"commit_p50_ms", fmt(lg.p50_ms)});
    t.add_row({"commit_p99_ms", fmt(lg.p99_ms)});
    t.add_row({"shots_per_second", fmt(lg.shots_per_second)});
    t.add_row({"memo_hit_rate",
               fmt(rt.stats.memo_lookups == 0
                       ? 0.0
                       : static_cast<double>(rt.stats.memo_hits) /
                             static_cast<double>(rt.stats.memo_lookups))});
    rep.table = std::move(t);
    std::ostringstream note;
    note << "streamed predictions pinned bit-for-bit against offline "
            "sliding-window decode ("
         << lg.results << " shots, " << events.size() << " herald events)";
    rep.notes.push_back(note.str());
    return rep;
  });
}

}  // namespace radsurf
