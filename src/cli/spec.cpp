#include "cli/spec.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/hash.hpp"

namespace radsurf {

namespace {

std::string describe(const JsonValue& v) {
  if (v.is_string()) return "string \"" + v.as_string() + "\"";
  return v.kind_name();
}

}  // namespace

SpecReader::SpecReader(const JsonValue& object, std::string path)
    : object_(object), path_(std::move(path)) {
  if (!object_.is_object())
    throw SpecError(path_ + ": expected an object, got " +
                    object_.kind_name());
}

bool SpecReader::has(const std::string& key) const {
  return object_.find(key) != nullptr;
}

void SpecReader::fail(const std::string& key,
                      const std::string& message) const {
  throw SpecError(path_ + "." + key + ": " + message);
}

const JsonValue* SpecReader::get_raw(const std::string& key) {
  if (std::find(consumed_.begin(), consumed_.end(), key) == consumed_.end())
    consumed_.push_back(key);
  return object_.find(key);
}

std::string SpecReader::get_string(const std::string& key,
                                   std::string fallback) {
  const JsonValue* v = get_raw(key);
  if (v == nullptr) return fallback;
  if (!v->is_string()) fail(key, std::string("expected string, got ") + describe(*v));
  return v->as_string();
}

bool SpecReader::get_bool(const std::string& key, bool fallback) {
  const JsonValue* v = get_raw(key);
  if (v == nullptr) return fallback;
  if (!v->is_bool()) fail(key, std::string("expected true/false, got ") + describe(*v));
  return v->as_bool();
}

double SpecReader::get_number(const std::string& key, double fallback) {
  const JsonValue* v = get_raw(key);
  if (v == nullptr) return fallback;
  if (!v->is_number()) fail(key, std::string("expected number, got ") + describe(*v));
  return v->as_number();
}

std::uint64_t SpecReader::get_uint(const std::string& key,
                                   std::uint64_t fallback) {
  const JsonValue* v = get_raw(key);
  if (v == nullptr) return fallback;
  if (!v->is_number()) fail(key, std::string("expected number, got ") + describe(*v));
  const double d = v->as_number();
  if (d < 0 || d != std::floor(d))
    fail(key, "expected a non-negative integer, got " +
                  JsonValue::number_to_string(d));
  return static_cast<std::uint64_t>(d);
}

std::vector<double> SpecReader::get_number_list(const std::string& key,
                                                std::vector<double> fallback) {
  const JsonValue* v = get_raw(key);
  if (v == nullptr) return fallback;
  if (!v->is_array()) fail(key, std::string("expected array of numbers, got ") + describe(*v));
  std::vector<double> out;
  for (std::size_t i = 0; i < v->size(); ++i) {
    const JsonValue& e = (*v)[i];
    if (!e.is_number())
      fail(key + "[" + std::to_string(i) + "]",
           std::string("expected number, got ") + describe(e));
    out.push_back(e.as_number());
  }
  if (out.empty()) fail(key, "list must not be empty");
  return out;
}

std::vector<std::string> SpecReader::get_string_list(
    const std::string& key, std::vector<std::string> fallback) {
  const JsonValue* v = get_raw(key);
  if (v == nullptr) return fallback;
  if (!v->is_array()) fail(key, std::string("expected array of strings, got ") + describe(*v));
  std::vector<std::string> out;
  for (std::size_t i = 0; i < v->size(); ++i) {
    const JsonValue& e = (*v)[i];
    if (!e.is_string())
      fail(key + "[" + std::to_string(i) + "]",
           std::string("expected string, got ") + describe(e));
    out.push_back(e.as_string());
  }
  if (out.empty()) fail(key, "list must not be empty");
  return out;
}

std::vector<std::uint64_t> SpecReader::get_uint_list(
    const std::string& key, std::vector<std::uint64_t> fallback) {
  const JsonValue* v = get_raw(key);
  if (v == nullptr) return fallback;
  if (!v->is_array()) fail(key, std::string("expected array of integers, got ") + describe(*v));
  std::vector<std::uint64_t> out;
  for (std::size_t i = 0; i < v->size(); ++i) {
    const JsonValue& e = (*v)[i];
    const std::string elem_key = key + "[" + std::to_string(i) + "]";
    if (!e.is_number())
      fail(elem_key, std::string("expected number, got ") + describe(e));
    const double d = e.as_number();
    if (d < 0 || d != std::floor(d))
      fail(elem_key, "expected a non-negative integer, got " +
                         JsonValue::number_to_string(d));
    out.push_back(static_cast<std::uint64_t>(d));
  }
  if (out.empty()) fail(key, "list must not be empty");
  return out;
}

void SpecReader::finish() const {
  for (const auto& [key, value] : object_.as_object()) {
    if (std::find(consumed_.begin(), consumed_.end(), key) !=
        consumed_.end())
      continue;
    std::ostringstream ss;
    ss << "unknown field " << path_ << "." << key << " (accepted fields:";
    for (std::size_t i = 0; i < consumed_.size(); ++i)
      ss << (i ? ", " : " ") << consumed_[i];
    ss << ")";
    throw SpecError(ss.str());
  }
}

ScenarioSpec ScenarioSpec::from_json(const JsonValue& json,
                                     const std::string& origin) {
  SpecReader r(json, origin + ": $");
  ScenarioSpec spec;
  spec.scenario = r.get_string("scenario", "");
  if (spec.scenario.empty())
    r.fail("scenario", "required: the registry name of the scenario to run "
                       "(see `radsurf list`)");
  spec.description = r.get_string("description", "");
  spec.shots = r.get_uint("shots", 0);
  spec.seed = r.get_uint("seed", spec.seed);
  spec.smoke = r.get_bool("smoke", false);
  spec.jobs = r.get_uint("jobs", 1);
  if (spec.jobs == 0) r.fail("jobs", "must be >= 1 worker");
  if (const JsonValue* out = r.get_raw("output")) {
    SpecReader ro(*out, origin + ": $.output");
    spec.output.csv_path = ro.get_string("csv", "");
    spec.output.json_path = ro.get_string("json", "");
    spec.output.checkpoint_path = ro.get_string("checkpoint", "");
    ro.finish();
  }
  if (const JsonValue* params = r.get_raw("params")) {
    if (!params->is_object())
      r.fail("params", std::string("expected object, got ") +
                           params->kind_name());
    spec.params = *params;
  }
  r.finish();
  return spec;
}

ScenarioSpec ScenarioSpec::from_file(const std::string& path) {
  try {
    return from_json(JsonValue::parse_file(path), path);
  } catch (const JsonError& e) {
    throw SpecError(e.what());
  }
}

JsonValue ScenarioSpec::to_json() const {
  JsonValue json = JsonValue::object();
  json.set("scenario", scenario);
  if (!description.empty()) json.set("description", description);
  json.set("shots", shots);
  json.set("seed", seed);
  json.set("smoke", smoke);
  if (jobs != 1) json.set("jobs", jobs);
  if (!output.csv_path.empty() || !output.json_path.empty() ||
      !output.checkpoint_path.empty()) {
    JsonValue out = JsonValue::object();
    if (!output.csv_path.empty()) out.set("csv", output.csv_path);
    if (!output.json_path.empty()) out.set("json", output.json_path);
    if (!output.checkpoint_path.empty())
      out.set("checkpoint", output.checkpoint_path);
    json.set("output", std::move(out));
  }
  if (params.is_object() && params.size() > 0) json.set("params", params);
  return json;
}

bool ScenarioSpec::operator==(const ScenarioSpec& other) const {
  return scenario == other.scenario && description == other.description &&
         shots == other.shots && seed == other.seed &&
         smoke == other.smoke && jobs == other.jobs &&
         output == other.output && params == other.params;
}

std::uint64_t ScenarioSpec::fingerprint() const {
  ScenarioSpec stripped = *this;
  stripped.output = {};
  stripped.description.clear();
  // Worker count never changes results (cell seeds are schedule-
  // independent), so a checkpoint written under --jobs 4 resumes under
  // --jobs 1 and vice versa.
  stripped.jobs = 1;
  // Sampling-schema salt: bump when an engine change alters the sampled
  // values of an unchanged spec (e.g. the shots_per_chunk default, which
  // sets the RNG stream decomposition).  Checkpoints written by a binary
  // whose cells would sample differently then refuse to resume (with the
  // --fresh hint) instead of silently mixing decompositions in one table.
  // v3: herald-group frame promotion re-salted the residual replay
  // streams (singles/groups draw from seed ^ kReplaySalt / kPromoteSalt).
  constexpr std::uint64_t kSamplingSchemaVersion = 3;
  return splitmix64_mix(fnv1a64(stripped.to_json().dump()) ^
                        kSamplingSchemaVersion);
}

}  // namespace radsurf
