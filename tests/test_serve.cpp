// End-to-end tests of the `radsurf serve` subsystem (src/serve/): protocol
// round-trips over TCP and unix-domain sockets, bit-for-bit parity of
// streamed results against the offline sliding-window decode, herald-aware
// decoder switching mid-stream, overload shedding with the documented
// reply codes, graceful drain/shutdown, and the shared cross-stream
// syndrome cache.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "arch/topologies.hpp"
#include "cli/serve_scenario.hpp"
#include "codes/repetition.hpp"
#include "inject/campaign.hpp"
#include "noise/timeline.hpp"
#include "serve/client.hpp"
#include "serve/config.hpp"
#include "serve/server.hpp"
#include "util/rng.hpp"

namespace radsurf {
namespace serve {
namespace {

constexpr std::size_t kRounds = 40;

struct Fixture {
  std::unique_ptr<InjectionEngine> engine;
  std::unique_ptr<RadiationTimeline> timeline;

  explicit Fixture(std::size_t rounds = kRounds) {
    EngineOptions opts;
    opts.rounds = rounds;
    opts.whole_history_decoder = false;
    RepetitionCode code(5, RepetitionFlavor::BIT_FLIP);
    engine = std::make_unique<InjectionEngine>(code, make_mesh(5, 2), opts);
    TimelineOptions topts;
    topts.events_per_round = 0.05;
    topts.duration_rounds = 8;
    timeline =
        std::make_unique<RadiationTimeline>(engine->radiation(), topts);
  }

  ServeOptions server_options() const {
    ServeOptions so;
    so.window = SlidingWindowOptions{10, 5};
    return so;
  }
};

/// Full-width word span of `defects`, masked to rounds [first, first+num).
std::vector<std::uint64_t> frame_words(const InjectionEngine& engine,
                                       std::size_t syndrome_words,
                                       const std::vector<std::uint32_t>& defects,
                                       std::size_t first, std::size_t num) {
  std::vector<std::uint64_t> words(syndrome_words, 0);
  for (const std::uint32_t d : defects) {
    const std::uint32_t r = engine.detector_rounds()[d];
    if (r >= first && r < first + num)
      words[d / 64] |= std::uint64_t{1} << (d % 64);
  }
  return words;
}

RoundsFrame make_frame(const InjectionEngine& engine, std::size_t words,
                       const std::vector<std::uint32_t>& defects,
                       std::uint64_t shot_id, std::size_t first,
                       std::size_t num) {
  RoundsFrame f;
  f.shot_id = shot_id;
  f.first_round = static_cast<std::uint32_t>(first);
  f.num_rounds = static_cast<std::uint32_t>(num);
  f.words = frame_words(engine, words, defects, first, num);
  return f;
}

/// Read replies until a RESULT for `shot_id` arrives; returns its
/// prediction and counts the COMMITs seen on the way.
std::uint64_t await_result(ServeClient& client, std::uint64_t shot_id,
                           std::size_t* commits = nullptr) {
  for (int i = 0; i < 1000; ++i) {
    const ServeClient::ServerReply r = client.read_reply();
    if (r.kind == ServeClient::ServerReply::Kind::kCommit) {
      if (commits != nullptr) ++*commits;
      continue;
    }
    if (r.kind == ServeClient::ServerReply::Kind::kResult &&
        r.result.shot_id == shot_id)
      return r.result.prediction;
    ADD_FAILURE() << "unexpected reply kind "
                  << static_cast<int>(r.kind);
    break;
  }
  return ~std::uint64_t{0};
}

TEST(Serve, TcpRoundTripPinsOfflineDecode) {
  Fixture fx;
  ServeServer server(*fx.engine, fx.timeline.get(), fx.server_options());
  server.start();

  const auto offline = fx.engine->make_stream_decoder(nullptr, {}, {10, 5});
  const auto shots =
      fx.engine->record_timeline_shots(*fx.timeline, {}, 6, 20260810);

  ServeClient client = ServeClient::connect_tcp(server.tcp_port());
  client.set_read_timeout_ms(2000);
  const HelloAck ack = client.handshake();
  EXPECT_EQ(ack.num_rounds, kRounds);
  EXPECT_EQ(ack.window, 10u);
  EXPECT_EQ(ack.commit, 5u);
  EXPECT_EQ(ack.num_windows, offline->num_windows());

  for (std::size_t s = 0; s < shots.size(); ++s) {
    // Deliver in 7-round frames (deliberately not a divisor of anything).
    for (std::size_t r = 0; r < kRounds; r += 7) {
      const std::size_t num = std::min<std::size_t>(7, kRounds - r);
      ASSERT_TRUE(client.send_rounds(make_frame(
          *fx.engine, ack.syndrome_words, shots[s].defects, s, r, num)));
    }
    std::size_t commits = 0;
    EXPECT_EQ(await_result(client, s, &commits),
              offline->decode(shots[s].defects));
    EXPECT_EQ(commits, offline->num_windows());
  }

  ASSERT_TRUE(client.send_bye());
  const ServeClient::ServerReply bye = client.read_reply();
  ASSERT_EQ(bye.kind, ServeClient::ServerReply::Kind::kByeAck);
  EXPECT_EQ(bye.bye_ack.shots_completed, shots.size());
  EXPECT_EQ(bye.bye_ack.shed_shots, 0u);
  server.shutdown();
  EXPECT_EQ(server.stats().protocol_errors, 0u);
}

TEST(Serve, UnixRoundTripViaLoadGenerator) {
  Fixture fx;
  ServeConfig cfg;
  cfg.rounds = kRounds;
  cfg.streams = 2;
  cfg.shots_per_stream = 6;
  cfg.rounds_per_frame = 10;
  cfg.window = SlidingWindowOptions{10, 5};
  cfg.server.listen_tcp = false;
  cfg.server.unix_path = "/tmp/radsurf_test_serve.sock";
  const ServeRoundtrip rt =
      run_serve_roundtrip(*fx.engine, *fx.timeline, {}, cfg, 20260811);
  EXPECT_TRUE(rt.report.clean());
  EXPECT_EQ(rt.report.results, 12u);
  EXPECT_EQ(rt.report.mismatches, 0u);
  EXPECT_EQ(rt.stats.protocol_errors, 0u);
  EXPECT_GT(rt.stats.windows_committed, 0u);
  std::remove("/tmp/radsurf_test_serve.sock");
}

// Regression: a default-constructed ServeConfig used to hand ServeServer
// the ServeOptions default window (W=8/C=4) while the load generator's
// offline expectations decoded the experiment window (W=10/C=5) — 4 of
// 256 perf_serve shots decoded differently, and only past the first 64,
// so smoke runs and single-stream levels never saw it.  ServeServer
// construction now goes through server_options(), which overwrites the
// server's window with the experiment's; the load generator additionally
// refuses the handshake on a W/C disagreement.
TEST(Serve, ServerOptionsAlwaysCarryTheExperimentWindow) {
  ServeConfig cfg;
  EXPECT_EQ(cfg.server_options().window.window, cfg.window.window);
  EXPECT_EQ(cfg.server_options().window.commit, cfg.window.commit);
  cfg.window = SlidingWindowOptions{12, 3};
  cfg.server.window = SlidingWindowOptions{7, 2};  // stale copy is ignored
  EXPECT_EQ(cfg.server_options().window.window, 12u);
  EXPECT_EQ(cfg.server_options().window.commit, 3u);
}

TEST(Serve, HeraldRoundTripUsesAwareDecoder) {
  Fixture fx;
  Rng rng(20260812);
  std::vector<RadiationEvent> events;
  for (int attempt = 0; attempt < 1000 && events.empty(); ++attempt)
    events = fx.timeline->sample(kRounds, fx.engine->active_qubits(), rng);
  ASSERT_FALSE(events.empty());

  ServeConfig cfg;
  cfg.rounds = kRounds;
  cfg.streams = 2;
  cfg.shots_per_stream = 4;
  cfg.rounds_per_frame = 5;
  cfg.window = SlidingWindowOptions{10, 5};
  cfg.server.window = cfg.window;
  const ServeRoundtrip rt =
      run_serve_roundtrip(*fx.engine, *fx.timeline, events, cfg, 20260813);
  // run_load computes its expectations from the AWARE offline decoder when
  // events are set — a clean report means the server honoured the HERALD.
  EXPECT_TRUE(rt.report.clean());
  EXPECT_EQ(rt.report.results, 8u);
  EXPECT_GE(rt.stats.herald_switches, 2u);   // one per stream
  EXPECT_EQ(rt.stats.aware_rebuilds, 1u);    // cached across streams
}

TEST(Serve, HeraldSwitchesSubsequentShotsOnlyMidStream) {
  Fixture fx;
  Rng rng(20260814);
  std::vector<RadiationEvent> events;
  for (int attempt = 0; attempt < 1000 && events.empty(); ++attempt)
    events = fx.timeline->sample(kRounds, fx.engine->active_qubits(), rng);
  ASSERT_FALSE(events.empty());

  ServeServer server(*fx.engine, fx.timeline.get(), fx.server_options());
  server.start();
  const auto base = fx.engine->make_stream_decoder(nullptr, {}, {10, 5});
  const auto aware =
      fx.engine->make_stream_decoder(fx.timeline.get(), events, {10, 5});
  const auto shots =
      fx.engine->record_timeline_shots(*fx.timeline, events, 2, 20260815);

  ServeClient client = ServeClient::connect_tcp(server.tcp_port());
  client.set_read_timeout_ms(2000);
  const HelloAck ack = client.handshake();

  // Shot 0 opens on the base decoder (first 10 rounds delivered), then the
  // HERALD lands mid-stream, then shot 1 opens: shot 0 must finish on the
  // decoder it started on, shot 1 on the aware one.
  ASSERT_TRUE(client.send_rounds(make_frame(
      *fx.engine, ack.syndrome_words, shots[0].defects, 0, 0, 10)));
  HeraldFrame herald;
  herald.events = events;
  ASSERT_TRUE(client.send_herald(herald));
  ASSERT_TRUE(client.send_rounds(make_frame(
      *fx.engine, ack.syndrome_words, shots[1].defects, 1, 0, kRounds)));
  ASSERT_TRUE(client.send_rounds(make_frame(
      *fx.engine, ack.syndrome_words, shots[0].defects, 0, 10,
      kRounds - 10)));

  std::uint64_t got0 = ~std::uint64_t{0};
  std::uint64_t got1 = ~std::uint64_t{0};
  for (int i = 0; i < 1000 && (got0 == ~std::uint64_t{0} ||
                               got1 == ~std::uint64_t{0});
       ++i) {
    const ServeClient::ServerReply r = client.read_reply();
    if (r.kind == ServeClient::ServerReply::Kind::kCommit) continue;
    ASSERT_EQ(r.kind, ServeClient::ServerReply::Kind::kResult);
    (r.result.shot_id == 0 ? got0 : got1) = r.result.prediction;
  }
  EXPECT_EQ(got0, base->decode(shots[0].defects));
  EXPECT_EQ(got1, aware->decode(shots[1].defects));
  server.shutdown();
  EXPECT_EQ(server.stats().herald_switches, 1u);
}

TEST(Serve, SlowConsumerShedsNewShotsHealthyStreamUnaffected) {
  Fixture fx;
  ServeOptions so = fx.server_options();
  so.queue_capacity = 1;    // admission control trips immediately
  so.write_timeout_ms = 200;  // a slow reply consumer cannot stall decode
  ServeServer server(*fx.engine, fx.timeline.get(), so);
  server.start();

  const auto offline = fx.engine->make_stream_decoder(nullptr, {}, {10, 5});
  const auto shots =
      fx.engine->record_timeline_shots(*fx.timeline, {}, 64, 20260816);

  // Overloading stream: floods whole-shot frames without reading a single
  // reply until everything is sent.  With a queue bound of 1 the reader
  // must shed most of these shots — with the documented reason code —
  // while every admitted shot still decodes to the exact offline result.
  ServeClient flood = ServeClient::connect_tcp(server.tcp_port());
  flood.set_read_timeout_ms(2000);
  const HelloAck ack = flood.handshake();
  for (std::size_t s = 0; s < shots.size(); ++s)
    ASSERT_TRUE(flood.send_rounds(make_frame(
        *fx.engine, ack.syndrome_words, shots[s].defects, s, 0, kRounds)));

  // Healthy stream on its own connection: must complete every shot with
  // zero sheds while the flood is in progress.
  std::thread healthy([&] {
    ServeClient client = ServeClient::connect_tcp(server.tcp_port());
    client.set_read_timeout_ms(2000);
    const HelloAck hack = client.handshake();
    for (std::size_t s = 0; s < 8; ++s) {
      ASSERT_TRUE(client.send_rounds(make_frame(*fx.engine,
                                                hack.syndrome_words,
                                                shots[s].defects, 100 + s, 0,
                                                kRounds)));
      EXPECT_EQ(await_result(client, 100 + s),
                offline->decode(shots[s].defects));
    }
    ASSERT_TRUE(client.send_bye());
    const ServeClient::ServerReply bye = client.read_reply();
    ASSERT_EQ(bye.kind, ServeClient::ServerReply::Kind::kByeAck);
    EXPECT_EQ(bye.bye_ack.shots_completed, 8u);
    EXPECT_EQ(bye.bye_ack.shed_shots, 0u);
  });

  std::size_t results = 0;
  std::size_t sheds = 0;
  while (results + sheds < shots.size()) {
    const ServeClient::ServerReply r = flood.read_reply();
    if (r.kind == ServeClient::ServerReply::Kind::kCommit) continue;
    if (r.kind == ServeClient::ServerReply::Kind::kShed) {
      EXPECT_EQ(r.shed.reason, ShedReason::kQueueFull);
      ++sheds;
      continue;
    }
    if (r.kind == ServeClient::ServerReply::Kind::kTimeout) break;
    ASSERT_EQ(r.kind, ServeClient::ServerReply::Kind::kResult);
    EXPECT_EQ(r.result.prediction,
              offline->decode(shots[r.result.shot_id].defects));
    ++results;
  }
  healthy.join();
  EXPECT_EQ(results + sheds, shots.size());
  EXPECT_GT(sheds, 0u) << "flood never tripped admission control";
  EXPECT_GT(results, 0u) << "admission shed everything";
  server.shutdown();
  EXPECT_EQ(server.stats().shed_shots, sheds);
  EXPECT_EQ(server.stats().protocol_errors, 0u);
}

TEST(Serve, DrainShedsNewShotsAndFinishesInFlight) {
  Fixture fx;
  ServeServer server(*fx.engine, fx.timeline.get(), fx.server_options());
  server.start();
  const auto offline = fx.engine->make_stream_decoder(nullptr, {}, {10, 5});
  const auto shots =
      fx.engine->record_timeline_shots(*fx.timeline, {}, 2, 20260817);

  ServeClient client = ServeClient::connect_tcp(server.tcp_port());
  client.set_read_timeout_ms(2000);
  const HelloAck ack = client.handshake();

  // Open shot 0 (half delivered), then drain, then try to open shot 1.
  ASSERT_TRUE(client.send_rounds(make_frame(
      *fx.engine, ack.syndrome_words, shots[0].defects, 0, 0, kRounds / 2)));
  // The commit of the first windows proves shot 0 was admitted before the
  // drain (ingest is ordered through the queue).
  const ServeClient::ServerReply first = client.read_reply();
  ASSERT_EQ(first.kind, ServeClient::ServerReply::Kind::kCommit);
  server.begin_drain();
  ASSERT_TRUE(client.send_rounds(make_frame(
      *fx.engine, ack.syndrome_words, shots[1].defects, 1, 0, kRounds)));
  ASSERT_TRUE(client.send_rounds(make_frame(*fx.engine, ack.syndrome_words,
                                            shots[0].defects, 0, kRounds / 2,
                                            kRounds - kRounds / 2)));

  bool shed1 = false;
  std::uint64_t got0 = ~std::uint64_t{0};
  for (int i = 0; i < 1000 && !(shed1 && got0 != ~std::uint64_t{0}); ++i) {
    const ServeClient::ServerReply r = client.read_reply();
    if (r.kind == ServeClient::ServerReply::Kind::kCommit) continue;
    if (r.kind == ServeClient::ServerReply::Kind::kShed) {
      EXPECT_EQ(r.shed.shot_id, 1u);
      EXPECT_EQ(r.shed.reason, ShedReason::kShuttingDown);
      shed1 = true;
      continue;
    }
    ASSERT_EQ(r.kind, ServeClient::ServerReply::Kind::kResult);
    EXPECT_EQ(r.result.shot_id, 0u);
    got0 = r.result.prediction;
  }
  EXPECT_TRUE(shed1);
  EXPECT_EQ(got0, offline->decode(shots[0].defects));
  server.shutdown();
  EXPECT_EQ(server.stats().shots_completed, 1u);
  EXPECT_EQ(server.stats().shed_shots, 1u);
}

TEST(Serve, ShutdownDrainsEnqueuedWindows) {
  Fixture fx;
  ServeServer server(*fx.engine, fx.timeline.get(), fx.server_options());
  server.start();
  const auto offline = fx.engine->make_stream_decoder(nullptr, {}, {10, 5});
  const auto shots =
      fx.engine->record_timeline_shots(*fx.timeline, {}, 1, 20260818);

  ServeClient client = ServeClient::connect_tcp(server.tcp_port());
  client.set_read_timeout_ms(2000);
  const HelloAck ack = client.handshake();
  ASSERT_TRUE(client.send_rounds(make_frame(
      *fx.engine, ack.syndrome_words, shots[0].defects, 0, 0, kRounds)));
  // Give the reader a moment to enqueue, then shut down: the worker must
  // still drain the queue, so the full commit ladder and the RESULT arrive
  // before the socket closes.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  server.shutdown();

  std::size_t commits = 0;
  EXPECT_EQ(await_result(client, 0, &commits),
            offline->decode(shots[0].defects));
  EXPECT_EQ(commits, offline->num_windows());
  EXPECT_EQ(server.stats().shots_completed, 1u);
}

TEST(Serve, ProtocolErrorsGetDocumentedCodes) {
  Fixture fx;
  ServeServer server(*fx.engine, fx.timeline.get(), fx.server_options());
  server.start();

  const auto expect_error = [&](ErrorCode code,
                                const std::function<void(ServeClient&)>& drive,
                                bool handshake_first) {
    ServeClient client = ServeClient::connect_tcp(server.tcp_port());
    client.set_read_timeout_ms(2000);
    if (handshake_first) client.handshake();
    drive(client);
    const ServeClient::ServerReply r = client.read_reply();
    ASSERT_EQ(r.kind, ServeClient::ServerReply::Kind::kError);
    EXPECT_EQ(r.error.code, code);
    // ERROR is terminal: the server closes after sending it.
    const ServeClient::ServerReply next = client.read_reply();
    EXPECT_EQ(next.kind, ServeClient::ServerReply::Kind::kClosed);
  };

  // First frame not HELLO.
  expect_error(ErrorCode::kExpectedHello,
               [](ServeClient& c) { c.send_bye(); }, false);
  // HELLO with the wrong version.
  expect_error(ErrorCode::kBadVersion,
               [](ServeClient& c) {
                 HelloFrame hello;
                 hello.version = 999;
                 c.send_raw(FrameType::kHello, encode_hello(hello));
               },
               false);
  // Unknown frame type.
  expect_error(ErrorCode::kUnknownFrame,
               [](ServeClient& c) { c.send_raw(FrameType::kHelloAck, {}); },
               true);
  // Truncated ROUNDS payload.
  expect_error(ErrorCode::kBadPayload,
               [](ServeClient& c) {
                 c.send_raw(FrameType::kRounds, {1, 2, 3});
               },
               true);
  // Stray bits outside the declared rounds.
  expect_error(ErrorCode::kStrayBits,
               [&](ServeClient& c) {
                 // Find a detector of a late round and set its bit in a
                 // frame that declares only rounds [0, 1).
                 std::uint32_t late = 0;
                 for (std::uint32_t d = 0;
                      d < fx.engine->detector_rounds().size(); ++d)
                   if (fx.engine->detector_rounds()[d] >= kRounds / 2)
                     late = d;
                 RoundsFrame f;
                 f.shot_id = 0;
                 f.first_round = 0;
                 f.num_rounds = 1;
                 f.words.assign(server.shared().syndrome_words(), 0);
                 f.words[late / 64] |= std::uint64_t{1} << (late % 64);
                 c.send_rounds(f);
               },
               true);
  // Non-monotone round sequencing.
  expect_error(ErrorCode::kBadRounds,
               [&](ServeClient& c) {
                 RoundsFrame f;
                 f.shot_id = 0;
                 f.first_round = 5;  // stream expects round 0 first
                 f.num_rounds = 1;
                 f.words.assign(server.shared().syndrome_words(), 0);
                 c.send_rounds(f);
               },
               true);

  server.shutdown();
  EXPECT_EQ(server.stats().protocol_errors, 6u);
  EXPECT_EQ(server.stats().shots_completed, 0u);
}

TEST(Serve, SyndromeCacheIsSharedAcrossStreams) {
  Fixture fx;
  ServeServer server(*fx.engine, fx.timeline.get(), fx.server_options());
  server.start();
  const auto shots =
      fx.engine->record_timeline_shots(*fx.timeline, {}, 4, 20260819);

  // Stream the same workload over two consecutive connections: the second
  // replays window-defect sets the first already memoised in the shared
  // word-keyed cache, so hits must appear.
  for (int conn = 0; conn < 2; ++conn) {
    ServeClient client = ServeClient::connect_tcp(server.tcp_port());
    client.set_read_timeout_ms(2000);
    const HelloAck ack = client.handshake();
    for (std::size_t s = 0; s < shots.size(); ++s) {
      ASSERT_TRUE(client.send_rounds(make_frame(
          *fx.engine, ack.syndrome_words, shots[s].defects, s, 0, kRounds)));
      await_result(client, s);
    }
  }
  server.shutdown();
  const ServeStatsSnapshot s = server.stats();
  EXPECT_GT(s.memo_lookups, 0u);
  EXPECT_GT(s.memo_hits, 0u);
  EXPECT_EQ(s.connections, 2u);
  EXPECT_EQ(s.shots_completed, 8u);
}

}  // namespace
}  // namespace serve
}  // namespace radsurf
