#include "detector/detectors.hpp"

#include <gtest/gtest.h>

#include "stab/frame_sim.hpp"
#include "stab/tableau_sim.hpp"

namespace radsurf {
namespace {

Circuit small_annotated() {
  Circuit c;
  c.r(0);
  c.r(1);
  c.m(0);             // record 0
  c.m(1);             // record 1
  c.detector({2});    // det 0 = record 0
  c.detector({1, 2}); // det 1 = records 0,1
  c.x(0);
  c.m(0);             // record 2
  c.observable_include(0, {1});
  return c;
}

TEST(DetectorSet, CompileShapes) {
  const auto ds = DetectorSet::compile(small_annotated());
  EXPECT_EQ(ds.num_detectors(), 2u);
  EXPECT_EQ(ds.num_observables(), 1u);
  EXPECT_EQ(ds.num_records(), 3u);
  EXPECT_TRUE(ds.detector_mask(0).get(0));
  EXPECT_FALSE(ds.detector_mask(0).get(1));
  EXPECT_TRUE(ds.detector_mask(1).get(0));
  EXPECT_TRUE(ds.detector_mask(1).get(1));
  EXPECT_TRUE(ds.observable_mask(0).get(2));
}

TEST(DetectorSet, InverseIndex) {
  const auto ds = DetectorSet::compile(small_annotated());
  EXPECT_EQ(ds.detectors_of_record(0),
            (std::vector<std::uint32_t>{0, 1}));
  EXPECT_EQ(ds.detectors_of_record(1), (std::vector<std::uint32_t>{1}));
  EXPECT_TRUE(ds.detectors_of_record(2).empty());
  EXPECT_EQ(ds.observables_of_record(2), 1u);
  EXPECT_EQ(ds.observables_of_record(0), 0u);
}

TEST(DetectorSet, ValuesRelativeToReference) {
  const auto ds = DetectorSet::compile(small_annotated());
  BitVec ref(3);
  ref.set(2, true);  // X|0> measured -> 1

  BitVec clean = ref;
  EXPECT_TRUE(ds.detector_values(clean, ref).none());
  EXPECT_EQ(ds.observable_values(clean, ref), 0u);
  EXPECT_TRUE(ds.defects(clean, ref).empty());

  BitVec flipped = ref;
  flipped.flip(0);  // record 0 flips both detectors
  const BitVec dets = ds.detector_values(flipped, ref);
  EXPECT_TRUE(dets.get(0));
  EXPECT_TRUE(dets.get(1));
  EXPECT_EQ(ds.defects(flipped, ref),
            (std::vector<std::uint32_t>{0, 1}));

  BitVec obs_flip = ref;
  obs_flip.flip(2);
  EXPECT_EQ(ds.observable_values(obs_flip, ref), 1u);
  EXPECT_TRUE(ds.detector_values(obs_flip, ref).none());
}

TEST(DetectorSet, BatchFlipConversionMatchesScalar) {
  const Circuit c = small_annotated();
  const auto ds = DetectorSet::compile(c);

  // Craft a flip table for 4 shots.
  MeasurementFlips flips(3, BitVec(4));
  flips[0].set(1, true);  // shot 1: record 0 flipped
  flips[1].set(2, true);  // shot 2: record 1 flipped
  flips[2].set(3, true);  // shot 3: record 2 flipped (observable)

  const auto det_rows = ds.detector_flips(flips);
  ASSERT_EQ(det_rows.size(), 2u);
  // Shot 0: nothing.
  EXPECT_FALSE(det_rows[0].get(0));
  EXPECT_FALSE(det_rows[1].get(0));
  // Shot 1: both detectors.
  EXPECT_TRUE(det_rows[0].get(1));
  EXPECT_TRUE(det_rows[1].get(1));
  // Shot 2: only detector 1.
  EXPECT_FALSE(det_rows[0].get(2));
  EXPECT_TRUE(det_rows[1].get(2));

  const auto obs_rows = ds.observable_flips(flips);
  ASSERT_EQ(obs_rows.size(), 1u);
  EXPECT_TRUE(obs_rows[0].get(3));
  EXPECT_FALSE(obs_rows[0].get(1));
}

TEST(DetectorSet, WordScanDefectsMatchMaskParityOracle) {
  // defects_into is a record-major word scan; pin it against the direct
  // per-detector parity definition on random records.
  const auto ds = DetectorSet::compile(small_annotated());
  Rng rng(31);
  BitVec ref(3), rec(3);
  for (int rep = 0; rep < 200; ++rep) {
    for (std::size_t i = 0; i < 3; ++i) {
      ref.set(i, rng.next() & 1);
      rec.set(i, rng.next() & 1);
    }
    std::vector<std::uint32_t> expected;
    for (std::size_t d = 0; d < ds.num_detectors(); ++d) {
      if (ds.detector_mask(d).and_parity(rec) ^
          ds.detector_mask(d).and_parity(ref))
        expected.push_back(static_cast<std::uint32_t>(d));
    }
    std::vector<std::uint32_t> actual;
    ds.defects_into(rec, ref, actual);
    EXPECT_EQ(actual, expected);

    std::uint64_t expected_obs = 0;
    for (std::size_t o = 0; o < ds.num_observables(); ++o) {
      if (ds.observable_mask(o).and_parity(rec) ^
          ds.observable_mask(o).and_parity(ref))
        expected_obs |= std::uint64_t{1} << o;
    }
    EXPECT_EQ(ds.observable_values(rec, ref), expected_obs);

    // The one-pass combined scan agrees with both.
    std::vector<std::uint32_t> combined;
    std::uint64_t combined_obs = 0;
    ds.defects_and_observables_into(rec, ref, combined, &combined_obs);
    EXPECT_EQ(combined, expected);
    EXPECT_EQ(combined_obs, expected_obs);
  }
}

TEST(DetectorSet, RecordDetectorMasksInvertTheMembershipIndex) {
  const auto ds = DetectorSet::compile(small_annotated());
  ASSERT_EQ(ds.syndrome_words(), 1u);
  for (std::size_t r = 0; r < ds.num_records(); ++r) {
    const BitVec& mask = ds.record_detector_mask(r);
    ASSERT_EQ(mask.size(), ds.num_detectors());
    for (std::size_t d = 0; d < ds.num_detectors(); ++d)
      EXPECT_EQ(mask.get(d), ds.detector_mask(d).get(r));
  }
}

TEST(DetectorSet, TransposedFlipsMatchDetectorMajorRows) {
  const auto ds = DetectorSet::compile(small_annotated());
  Rng rng(33);
  const std::size_t batch = 100;
  MeasurementFlips flips(3, BitVec(batch));
  for (auto& row : flips)
    for (std::size_t s = 0; s < batch; ++s) row.set(s, rng.uniform() < 0.2);

  DetectorSet::SyndromeScratch scratch;
  BitTable syndromes, observables;
  ds.transposed_flips(flips, scratch, syndromes, observables);
  ASSERT_EQ(syndromes.num_rows(), batch);
  ASSERT_EQ(syndromes.num_cols(), ds.num_detectors());
  ASSERT_EQ(observables.num_rows(), batch);

  const auto det_rows = ds.detector_flips(flips);
  const auto obs_rows = ds.observable_flips(flips);
  for (std::size_t s = 0; s < batch; ++s) {
    for (std::size_t d = 0; d < ds.num_detectors(); ++d)
      EXPECT_EQ(syndromes.get(s, d), det_rows[d].get(s));
    for (std::size_t o = 0; o < ds.num_observables(); ++o)
      EXPECT_EQ(observables.get(s, o), obs_rows[o].get(s));
  }
}

TEST(DetectorSet, FlipsIntoVariantsReuseBuffers) {
  const auto ds = DetectorSet::compile(small_annotated());
  MeasurementFlips flips(3, BitVec(8));
  flips[0].set(1, true);
  std::vector<BitVec> rows;
  ds.detector_flips_into(flips, rows);
  const auto expected = ds.detector_flips(flips);
  EXPECT_EQ(rows, expected);
  // A second call with a different batch size reshapes in place and must
  // not leak the previous batch's bits.
  MeasurementFlips wider(3, BitVec(200));
  ds.detector_flips_into(wider, rows);
  ASSERT_EQ(rows.size(), ds.num_detectors());
  for (const BitVec& row : rows) {
    EXPECT_EQ(row.size(), 200u);
    EXPECT_TRUE(row.none());
  }
}

TEST(DetectorSet, EndToEndWithSimulatedNoise) {
  // X error before the measurements must show up as detector flips
  // relative to the noiseless reference.
  Circuit c;
  c.r(0);
  c.append(Gate::X_ERROR, {0}, {1.0});
  c.m(0);
  c.detector({1});
  TableauSimulator sim(c);
  const BitVec ref = sim.reference_sample();
  Rng rng(5);
  const BitVec rec = sim.sample(rng);
  const auto ds = DetectorSet::compile(c);
  EXPECT_EQ(ds.defects(rec, ref), (std::vector<std::uint32_t>{0}));
}

}  // namespace
}  // namespace radsurf
