// Registry tests: every registered scenario builds from its smoke spec and
// runs a tiny-budget campaign end to end, and every shipped spec file in
// specs/ validates against the parser and names its file correctly.
#include "cli/registry.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <set>

#include "cli/spec.hpp"

namespace radsurf {
namespace {

TEST(Registry, HasTheExpectedScenarioFamilies) {
  std::set<std::string> names;
  for (const ScenarioInfo& info : scenario_registry()) {
    EXPECT_FALSE(info.summary.empty()) << info.name;
    EXPECT_TRUE(names.insert(info.name).second)
        << "duplicate scenario name " << info.name;
  }
  for (const char* required :
       {"fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "abl_decoders",
        "abl_rounds", "abl_meas_error", "abl_noise_channel",
        "abl_time_sampling", "abl_aware_decoder", "ext_timeline",
        "ext_logical_layer", "perf_simulator", "perf_decoder",
        "perf_pipeline", "perf_timeline", "grid"})
    EXPECT_TRUE(names.count(required)) << required;
}

TEST(Registry, FindScenarioResolvesAndRejects) {
  ASSERT_NE(find_scenario("fig5"), nullptr);
  EXPECT_EQ(find_scenario("fig5")->name, "fig5");
  EXPECT_EQ(find_scenario("nope"), nullptr);
}

// The satellite contract: every registered scenario builds and runs a
// 10-shot smoke campaign.  Smoke specs clamp shot budgets to the floor
// (20 shots for figure drivers, 8 for grid cells, two-rep measurements for
// the perf benches) and disable perf JSON writing, so the whole sweep
// stays test-suite fast.
TEST(Registry, EveryScenarioSmokeRuns) {
  for (const ScenarioInfo& info : scenario_registry()) {
    ScenarioSpec spec = smoke_spec(info.name);
    spec.shots = 10;
    std::unique_ptr<Scenario> scenario;
    ASSERT_NO_THROW(scenario = make_scenario(spec)) << info.name;
    ExperimentReport report;
    ASSERT_NO_THROW(report = scenario->run(nullptr)) << info.name;
    EXPECT_FALSE(report.title.empty()) << info.name;
    EXPECT_GT(report.table.num_rows(), 0u) << info.name;
  }
}

TEST(Registry, SmokeNeverWritesPerfTrajectory) {
  // The perf factories must default bench_json off under smoke, or the
  // smoke sweep would clobber the repo's BENCH_perf.json with noise.
  const ScenarioSpec spec = smoke_spec("perf_simulator");
  namespace fs = std::filesystem;
  const fs::path cwd_file = fs::current_path() / "BENCH_perf.json";
  const bool existed = fs::exists(cwd_file);
  const auto before = existed ? fs::last_write_time(cwd_file)
                              : fs::file_time_type::min();
  (void)make_scenario(spec)->run(nullptr);
  if (existed)
    EXPECT_EQ(fs::last_write_time(cwd_file), before);
  else
    EXPECT_FALSE(fs::exists(cwd_file));
}

// Every shipped spec file parses, validates against its scenario factory,
// and the fig/abl/ext/perf ones are named after their scenario.
TEST(Registry, ShippedSpecsAllValidate) {
  namespace fs = std::filesystem;
  const fs::path specs_dir = fs::path(RADSURF_SOURCE_DIR) / "specs";
  ASSERT_TRUE(fs::exists(specs_dir)) << specs_dir;
  std::size_t count = 0;
  std::size_t grid_count = 0;
  for (const auto& entry : fs::directory_iterator(specs_dir)) {
    if (entry.path().extension() != ".json") continue;
    ++count;
    ScenarioSpec spec;
    ASSERT_NO_THROW(spec = ScenarioSpec::from_file(entry.path().string()))
        << entry.path();
    ASSERT_NO_THROW((void)make_scenario(spec)) << entry.path();
    EXPECT_FALSE(spec.description.empty()) << entry.path();
    if (spec.scenario == "grid")
      ++grid_count;
    else
      EXPECT_EQ(entry.path().stem().string(), spec.scenario)
          << entry.path() << " should be named after its scenario";
  }
  // One spec per registered scenario (the grid scenario ships as the
  // cross-product campaigns instead of a bare default).
  EXPECT_EQ(count - grid_count, scenario_registry().size() - 1);
  // At least the two cross-product campaigns the legacy binaries could
  // not express.
  EXPECT_GE(grid_count, 2u);
}

}  // namespace
}  // namespace radsurf
