// Chip-scale correlated burst model (TimelineOptions::chip_burst):
// property tests pinning the quasiparticle-spread footprint —
//
//  * spatial decay: error probability is exactly intensity *
//    exp(-hops / qp_lambda) and therefore monotone non-increasing in BFS
//    hop distance from the epicenter;
//  * temporal decay: every subsequent round scales the footprint by the
//    configured T(t) envelope, exactly as the per-site model does;
//  * confinement: the footprint (and every correlated secondary burst
//    root) stays inside the epicenter's connected component;
//  * determinism: identical seeds give identical event realizations, and
//    grid campaigns over chip-burst cells are byte-identical across
//    --jobs worker counts.
#include "noise/timeline.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "arch/topologies.hpp"
#include "cli/registry.hpp"
#include "cli/spec.hpp"
#include "codes/code.hpp"
#include "codes/rotated.hpp"
#include "inject/campaign.hpp"
#include "util/rng.hpp"

namespace radsurf {
namespace {

TimelineOptions burst_options(double qp_lambda, double intensity) {
  TimelineOptions opts;
  opts.chip_burst = true;
  opts.qp_lambda = qp_lambda;
  opts.intensity = intensity;
  opts.duration_rounds = 4;
  return opts;
}

TEST(BurstModel, FootprintMatchesExponentialHopDecay) {
  const RotatedCode code(5, RotatedMemory::Z);
  const Graph arch = native_graph_for(code);
  const RadiationTimeline timeline({}, burst_options(2.5, 0.7));
  const std::uint32_t epicenter = 12;
  const auto probs = timeline.footprint(arch, epicenter, 0.7);
  const auto hops = arch.bfs_distances(epicenter);
  ASSERT_EQ(probs.size(), arch.num_nodes());
  for (std::size_t q = 0; q < probs.size(); ++q) {
    ASSERT_NE(hops[q], std::numeric_limits<std::size_t>::max());
    EXPECT_DOUBLE_EQ(probs[q],
                     0.7 * std::exp(-static_cast<double>(hops[q]) / 2.5))
        << "qubit " << q;
  }
  EXPECT_DOUBLE_EQ(probs[epicenter], 0.7);
}

TEST(BurstModel, FootprintMonotoneNonIncreasingInHopDistance) {
  const RotatedCode code(7, RotatedMemory::Z);
  const Graph arch = native_graph_for(code);
  const RadiationTimeline timeline({}, burst_options(3.0, 1.0));
  for (const std::uint32_t epicenter : {0u, 17u, 40u}) {
    const auto probs = timeline.footprint(arch, epicenter, 1.0);
    const auto hops = arch.bfs_distances(epicenter);
    // Sort qubits by hop distance; probabilities must never increase.
    std::vector<std::size_t> order(probs.size());
    for (std::size_t q = 0; q < order.size(); ++q) order[q] = q;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return hops[a] < hops[b]; });
    for (std::size_t i = 1; i < order.size(); ++i) {
      EXPECT_GE(probs[order[i - 1]], probs[order[i]])
          << "epicenter " << epicenter << ": hop " << hops[order[i - 1]]
          << " -> " << hops[order[i]];
    }
  }
}

TEST(BurstModel, TemporalEnvelopeMatchesConfiguredDecay) {
  // Round r of an event arriving at r0 scales the whole footprint by
  // T((r - r0) / duration) — the same envelope as the per-site model,
  // independent of the spatial profile swap.
  const RadiationModel model{};  // gamma = 10
  TimelineOptions opts = burst_options(2.0, 0.6);
  opts.duration_rounds = 4;
  const RadiationTimeline timeline(model, opts);
  const Graph line = make_linear(6);
  const std::vector<RadiationEvent> events = {{2, 1, 0.6}};
  const auto probs = timeline.schedule(line, events, 10);
  const auto peak = timeline.footprint(line, 1, 0.6);
  ASSERT_EQ(probs.size(), 10u);
  for (std::size_t r = 0; r < 10; ++r) {
    for (std::size_t q = 0; q < peak.size(); ++q) {
      double expected = 0.0;
      if (r >= 2 && r < 2 + opts.duration_rounds)
        expected = peak[q] * model.temporal((r - 2) / 4.0);
      EXPECT_NEAR(probs[r][q], expected, 1e-15)
          << "round " << r << " qubit " << q;
    }
  }
}

TEST(BurstModel, FootprintConfinedToEpicentersComponent) {
  // Two disconnected segments: 0-1-2 and 3-4.  A strike in one component
  // must never leak probability (or secondary burst roots) into the other.
  Graph arch(5);
  arch.add_edge(0, 1);
  arch.add_edge(1, 2);
  arch.add_edge(3, 4);
  TimelineOptions opts = burst_options(10.0, 1.0);  // huge lambda: no excuse
  opts.burst_multiplicity = 4;
  opts.events_per_round = 2.0;
  const RadiationTimeline timeline({}, opts);

  const auto probs = timeline.footprint(arch, 1, 1.0);
  EXPECT_GT(probs[0], 0.0);
  EXPECT_GT(probs[2], 0.0);
  EXPECT_DOUBLE_EQ(probs[3], 0.0);
  EXPECT_DOUBLE_EQ(probs[4], 0.0);

  // Correlated burst roots: every shower stays inside its epicenter's
  // component.  Showers are emitted epicenter-first and a multiplicity-4
  // shower strikes exactly as many roots as its component holds (3 in
  // {0,1,2}, 2 in {3,4}), so the event list parses deterministically.
  const std::vector<std::uint32_t> roots = {0, 1, 2, 3, 4};
  const auto component = [](std::uint32_t q) { return q <= 2 ? 0 : 1; };
  Rng rng(29);
  const auto events = timeline.sample(50, roots, &arch, rng);
  ASSERT_FALSE(events.empty());
  std::size_t showers_seen[2] = {0, 0};
  for (std::size_t i = 0; i < events.size();) {
    const int comp = component(events[i].root);
    const std::size_t size = comp == 0 ? 3 : 2;
    ASSERT_LE(i + size, events.size());
    std::set<std::uint32_t> struck;
    for (std::size_t j = 0; j < size; ++j) {
      EXPECT_EQ(events[i + j].round, events[i].round);
      EXPECT_EQ(component(events[i + j].root), comp)
          << "shower at event " << i << " leaked across components";
      struck.insert(events[i + j].root);
    }
    EXPECT_EQ(struck.size(), size) << "duplicate root within one shower";
    ++showers_seen[comp];
    i += size;
  }
  // Both components get struck over 50 rounds at rate 2.
  EXPECT_GT(showers_seen[0], 0u);
  EXPECT_GT(showers_seen[1], 0u);
}

TEST(BurstModel, SecondaryRootsClusterNearEpicenter) {
  // With qp_lambda small, correlated secondaries must sit statistically
  // closer to the epicenter than uniform draws would.
  const RotatedCode code(9, RotatedMemory::Z);
  const Graph arch = native_graph_for(code);
  std::vector<std::uint32_t> roots(arch.num_nodes());
  for (std::uint32_t q = 0; q < roots.size(); ++q) roots[q] = q;

  TimelineOptions correlated = burst_options(1.5, 1.0);
  correlated.burst_multiplicity = 3;
  correlated.events_per_round = 1.0;
  TimelineOptions uniform = correlated;
  uniform.chip_burst = false;

  const auto hop_stats = [&](const std::vector<RadiationEvent>& events,
                             bool first_is_epicenter) {
    double total = 0.0;
    std::size_t count = 0;
    for (std::size_t i = 0; i + 2 < events.size(); i += 3) {
      const auto hops = arch.bfs_distances(events[i].root);
      for (std::size_t j = 1; j < 3; ++j) {
        total += static_cast<double>(hops[events[i + j].root]);
        ++count;
      }
    }
    (void)first_is_epicenter;
    return count == 0 ? 0.0 : total / static_cast<double>(count);
  };

  Rng rng_c(101), rng_u(101);
  const auto correlated_events =
      RadiationTimeline({}, correlated).sample(300, roots, &arch, rng_c);
  const auto uniform_events =
      RadiationTimeline({}, uniform).sample(300, roots, &arch, rng_u);
  ASSERT_GT(correlated_events.size(), 600u);
  const double mean_correlated = hop_stats(correlated_events, true);
  const double mean_uniform = hop_stats(uniform_events, false);
  // lambda = 1.5 on a 161-qubit chip (diameter ~16): correlated showers
  // average a few hops, uniform pairs average near half the diameter.
  EXPECT_LT(mean_correlated, 0.6 * mean_uniform)
      << "correlated " << mean_correlated << " vs uniform " << mean_uniform;

  // Distinct roots within each shower.
  for (std::size_t i = 0; i + 2 < correlated_events.size(); i += 3) {
    EXPECT_NE(correlated_events[i].root, correlated_events[i + 1].root);
    EXPECT_NE(correlated_events[i].root, correlated_events[i + 2].root);
    EXPECT_NE(correlated_events[i + 1].root, correlated_events[i + 2].root);
  }
}

TEST(BurstModel, ChipBurstOffIsBitForBitTheUniformSampler) {
  // chip_burst = false must consume the RNG stream exactly as before the
  // chip-burst model existed — existing timeline campaigns (and their
  // checkpoints) depend on the draws not shifting.
  const Graph arch = make_mesh(4, 4);
  std::vector<std::uint32_t> roots = {0, 3, 5, 7, 9, 12, 15};
  TimelineOptions opts;
  opts.events_per_round = 0.3;
  opts.burst_multiplicity = 2;
  const RadiationTimeline timeline({}, opts);
  Rng a(77), b(77), c(77);
  const auto legacy = timeline.sample(100, roots, a);
  const auto with_arch = timeline.sample(100, roots, &arch, b);
  const auto with_null = timeline.sample(100, roots, nullptr, c);
  EXPECT_EQ(legacy, with_arch);
  EXPECT_EQ(legacy, with_null);
}

TEST(BurstModel, DeterministicUnderFixedSeed) {
  const RotatedCode code(5, RotatedMemory::Z);
  const Graph arch = native_graph_for(code);
  std::vector<std::uint32_t> roots(arch.num_nodes());
  for (std::uint32_t q = 0; q < roots.size(); ++q) roots[q] = q;
  TimelineOptions opts = burst_options(2.0, 0.8);
  opts.events_per_round = 0.5;
  opts.burst_multiplicity = 3;
  const RadiationTimeline timeline({}, opts);
  Rng a(123), b(123);
  EXPECT_EQ(timeline.sample(200, roots, &arch, a),
            timeline.sample(200, roots, &arch, b));
}

TEST(BurstModel, ChipBurstSamplingWithoutGraphThrows) {
  const RadiationTimeline timeline({}, burst_options(2.0, 0.8));
  Rng rng(1);
  std::vector<std::uint32_t> roots = {0, 1, 2};
  EXPECT_THROW(timeline.sample(10, roots, rng), InvalidArgument);
  EXPECT_THROW(timeline.sample(10, roots, nullptr, rng), InvalidArgument);
}

TEST(BurstModel, RejectsNonPositiveDiffusionLength) {
  TimelineOptions opts;
  opts.chip_burst = true;
  opts.qp_lambda = 0.0;
  EXPECT_THROW(RadiationTimeline({}, opts), InvalidArgument);
  opts.qp_lambda = -1.0;
  EXPECT_THROW(RadiationTimeline({}, opts), InvalidArgument);
}

TEST(BurstModel, GridCampaignByteIdenticalAcrossJobs) {
  // A chip-burst ablation grid must stay byte-identical across worker
  // counts — per-cell RNG streams are a function of the cell key alone.
  const char* json = R"({
    "scenario": "grid",
    "shots": 24,
    "seed": 2026,
    "params": {
      "codes": ["rotated_memory_z:3"],
      "archs": ["native"],
      "decoders": ["mwpm", "mwpm:aware"],
      "rounds": [6],
      "injections": [
        {"kind": "timeline", "events_per_round": 0.2, "duration_rounds": 3,
         "chip_burst": true, "qp_lambda": 2.0, "intensity": 0.5,
         "num_timelines": 2, "window": 3}
      ]
    }
  })";
  const auto run_with_jobs = [&](std::size_t jobs) {
    ScenarioSpec spec =
        ScenarioSpec::from_json(JsonValue::parse(json), "test");
    spec.jobs = jobs;
    const auto scenario = make_scenario(spec);
    return scenario->run(nullptr).table.to_csv();
  };
  const std::string serial = run_with_jobs(1);
  const std::string parallel = run_with_jobs(4);
  EXPECT_EQ(serial, parallel);
  EXPECT_NE(serial.find("chip_burst=lambda2"), std::string::npos);
  EXPECT_NE(serial.find("mwpm:aware"), std::string::npos);
}

TEST(BurstPromotionFallback, UniqueSignaturesDegradeToPerShotWalks) {
  // A chip-scale burst fires hundreds of heralded reset sites per shot
  // with per-site Bernoulli draws, so herald signatures are unique for
  // any realistic shot count and herald-group promotion has nothing to
  // group.  The contract (EngineOptions::herald_promotion) is graceful
  // degradation: zero groups, zero promoted shots, every residual shot
  // a per-shot conditioned walk counted by exact_replays — never a
  // silent grouping of distinct signatures.
  const RotatedCode code(5, RotatedMemory::Z);
  EngineOptions opts;
  opts.layout = LayoutStrategy::TRIVIAL;
  opts.rounds = 8;
  opts.whole_history_decoder = false;
  ASSERT_TRUE(opts.herald_promotion);  // promotion enabled, yet no groups
  const InjectionEngine engine(code, native_graph_for(code), opts);

  TimelineOptions topts = burst_options(3.0, 0.5);
  topts.duration_rounds = 4;
  const RadiationTimeline timeline(engine.radiation(), topts);
  SlidingWindowOptions wopts;
  wopts.window = 4;
  const std::vector<RadiationEvent> events = {{1, 12, 0.5}};
  const std::size_t shots = 600;
  const Proportion p = engine.run_timeline(timeline, events, shots, 97, wopts);
  EXPECT_EQ(p.trials, shots);

  const PromotionStats ps = engine.promotion_stats();
  EXPECT_EQ(ps.groups, 0u) << "distinct signatures must not group";
  EXPECT_EQ(ps.promoted_shots, 0u);
  EXPECT_GT(ps.exact_replays, 0u) << "burst shots must take the per-shot "
                                     "conditioned-walk fallback";
  // residual_fraction() counts exactly those per-shot walks.
  EXPECT_GT(engine.residual_fraction(), 0.0);
  EXPECT_LE(engine.residual_fraction(), 1.0);
  EXPECT_DOUBLE_EQ(engine.residual_fraction(),
                   static_cast<double>(ps.exact_replays) /
                       static_cast<double>(shots));
}

}  // namespace
}  // namespace radsurf
