#include "util/table.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace radsurf {
namespace {

TEST(Table, RendersAlignedAscii) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| name "), std::string::npos);
  EXPECT_NE(s.find("| alpha "), std::string::npos);
  EXPECT_NE(s.find("+"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Table, ArityMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), InvalidArgument);
  EXPECT_THROW(t.add_row({"1", "2", "3"}), InvalidArgument);
}

TEST(Table, EmptyHeadersRejected) {
  EXPECT_THROW(Table(std::vector<std::string>{}), InvalidArgument);
  Table def;
  EXPECT_THROW(def.add_row({"x"}), InvalidArgument);
}

TEST(Table, CsvEscaping) {
  Table t({"k", "v"});
  t.add_row({"plain", "with,comma"});
  t.add_row({"quote\"inside", "line"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("k,v\n"), std::string::npos);
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"quote\"\"inside\""), std::string::npos);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::fmt(1.23456, 3), "1.235");
  EXPECT_EQ(Table::fmt(2.0, 1), "2.0");
  EXPECT_EQ(Table::pct(0.123, 1), "12.3%");
  EXPECT_EQ(Table::pct(0.5, 0), "50%");
  EXPECT_EQ(Table::pct(1.0, 1), "100.0%");
}

TEST(Table, StreamOperator) {
  Table t({"x"});
  t.add_row({"y"});
  std::ostringstream ss;
  ss << t;
  EXPECT_FALSE(ss.str().empty());
}

}  // namespace
}  // namespace radsurf
