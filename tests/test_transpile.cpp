#include "transpile/transpiler.hpp"

#include <gtest/gtest.h>

#include <set>

#include "arch/topologies.hpp"
#include "codes/repetition.hpp"
#include "codes/xxzz.hpp"
#include "stab/tableau_sim.hpp"
#include "util/error.hpp"

namespace radsurf {
namespace {

void expect_respects_coupling(const Circuit& c, const Graph& arch) {
  for (const Instruction& ins : c.instructions()) {
    const GateInfo& info = gate_info(ins.gate);
    if (!info.is_unitary || !info.is_two_qubit) continue;
    for (std::size_t i = 0; i + 1 < ins.targets.size(); i += 2) {
      EXPECT_TRUE(arch.has_edge(ins.targets[i], ins.targets[i + 1]))
          << "gate on (" << ins.targets[i] << "," << ins.targets[i + 1]
          << ") violates the coupling map";
    }
  }
}

TEST(Layout, TrivialIdentity) {
  Circuit c;
  c.cx(0, 1);
  c.cx(1, 2);
  const auto layout = choose_layout(c, make_linear(5), LayoutStrategy::TRIVIAL);
  EXPECT_EQ(layout, (std::vector<std::uint32_t>{0, 1, 2}));
}

TEST(Layout, TooSmallArchitectureThrows) {
  Circuit c;
  c.cx(0, 5);
  EXPECT_THROW(choose_layout(c, make_linear(3), LayoutStrategy::TRIVIAL),
               TranspileError);
  EXPECT_THROW(choose_layout(c, make_linear(3), LayoutStrategy::DEGREE_GREEDY),
               TranspileError);
}

TEST(Layout, GreedyIsInjective) {
  const RepetitionCode code(5, RepetitionFlavor::BIT_FLIP);
  const Circuit c = code.build();
  const auto layout =
      choose_layout(c, make_mesh(5, 2), LayoutStrategy::DEGREE_GREEDY);
  std::set<std::uint32_t> phys(layout.begin(), layout.end());
  EXPECT_EQ(phys.size(), layout.size());
  for (std::uint32_t p : layout) EXPECT_LT(p, 10u);
}

TEST(Layout, InteractionWeightsCountTwoQubitGates) {
  Circuit c;
  c.cx(0, 1);
  c.cx(0, 1);
  c.cx(1, 2);
  c.h(0);
  const auto w = interaction_weights(c);
  EXPECT_EQ(w[0][1], 2u);
  EXPECT_EQ(w[1][0], 2u);
  EXPECT_EQ(w[1][2], 1u);
  EXPECT_EQ(w[0][2], 0u);
}

TEST(Router, AdjacentGatesNeedNoSwaps) {
  Circuit c;
  c.cx(0, 1);
  c.cx(1, 2);
  const auto result = transpile(c, make_linear(3),
                                TranspileOptions{LayoutStrategy::TRIVIAL});
  EXPECT_EQ(result.swap_count, 0u);
  expect_respects_coupling(result.circuit, make_linear(3));
}

TEST(Router, DistantGateInsertsSwaps) {
  Circuit c;
  c.cx(0, 3);  // distance 3 on a line
  const auto result = transpile(c, make_linear(4),
                                TranspileOptions{LayoutStrategy::TRIVIAL});
  EXPECT_EQ(result.swap_count, 2u);
  expect_respects_coupling(result.circuit, make_linear(4));
  EXPECT_GT(result.ops_after, result.ops_before);
}

TEST(Router, MappingFollowsSwaps) {
  Circuit c;
  c.cx(0, 2);
  c.m(0);  // logical 0 moved by routing; M must hit its physical home
  const auto result = transpile(c, make_linear(3),
                                TranspileOptions{LayoutStrategy::TRIVIAL});
  // Logical 0 was swapped to physical 1 to meet qubit 2.
  EXPECT_EQ(result.final_layout[0], 1u);
  // The measurement instruction targets physical 1.
  const auto& instrs = result.circuit.instructions();
  EXPECT_EQ(instrs.back().gate, Gate::M);
  EXPECT_EQ(instrs.back().targets[0], 1u);
}

TEST(Router, DisconnectedArchitectureThrows) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  Circuit c;
  c.cx(0, 2);
  EXPECT_THROW(transpile(c, g, TranspileOptions{LayoutStrategy::TRIVIAL}),
               TranspileError);
}

TEST(Router, AnnotationsPassThrough) {
  Circuit c;
  c.cx(0, 2);
  c.m(2);
  c.detector({1});
  c.observable_include(0, {1});
  const auto result = transpile(c, make_linear(3),
                                TranspileOptions{LayoutStrategy::TRIVIAL});
  EXPECT_EQ(result.circuit.num_detectors(), 1u);
  EXPECT_EQ(result.circuit.num_observables(), 1u);
  EXPECT_EQ(result.circuit.num_measurements(), 1u);
}

// Semantic preservation: the transpiled circuit must produce the same
// deterministic measurement record as the logical circuit.
class TranspileSemantics
    : public ::testing::TestWithParam<std::string> {};

TEST_P(TranspileSemantics, DeterministicRecordsPreserved) {
  // A deterministic circuit: GHZ-like chain collapsed by X gates, measured.
  Circuit c;
  c.x(0);
  c.cx(0, 1);
  c.cx(0, 2);
  c.cx(1, 3);
  c.x(2);
  for (std::uint32_t q = 0; q < 4; ++q) c.m(q);

  const Graph arch = make_topology(GetParam());
  const auto result = transpile(c, arch, {});
  expect_respects_coupling(result.circuit, arch);

  TableauSimulator logical(c);
  TableauSimulator physical(result.circuit);
  EXPECT_EQ(logical.reference_sample(), physical.reference_sample());
}

INSTANTIATE_TEST_SUITE_P(Architectures, TranspileSemantics,
                         ::testing::Values("linear:8", "mesh:5x2", "cairo",
                                           "complete:4", "almaden",
                                           "johannesburg", "cambridge"));

// The paper's Obs. VIII driver: XXZZ on a linear architecture needs far
// more SWAPs than on a mesh.
TEST(Router, XxzzSwapOverheadOrdering) {
  const XXZZCode code(3, 3);
  const Circuit c = code.build();
  const auto on_mesh = transpile(c, make_mesh(5, 4), {});
  const auto on_line = transpile(c, make_linear(18), {});
  const auto on_complete = transpile(c, make_complete(18), {});
  EXPECT_EQ(on_complete.swap_count, 0u);
  EXPECT_GT(on_line.swap_count, on_mesh.swap_count);
  expect_respects_coupling(on_mesh.circuit, make_mesh(5, 4));
  expect_respects_coupling(on_line.circuit, make_linear(18));
}

// The repetition code is nearest-neighbour (paper Sec. V-D): on a line its
// relative SWAP overhead must be far below the XXZZ code's.
TEST(Router, RepetitionOnLinearIsCheaperThanXxzz) {
  const RepetitionCode rep(5, RepetitionFlavor::BIT_FLIP);
  const XXZZCode xxzz(3, 3);
  const auto rep_line = transpile(rep.build(), make_linear(10), {});
  const auto xxzz_line = transpile(xxzz.build(), make_linear(18), {});
  const double rep_overhead =
      static_cast<double>(rep_line.swap_count) / rep_line.ops_before;
  const double xxzz_overhead =
      static_cast<double>(xxzz_line.swap_count) / xxzz_line.ops_before;
  EXPECT_LT(rep_overhead, xxzz_overhead);
  expect_respects_coupling(rep_line.circuit, make_linear(10));
}

TEST(Transpile, TouchedQubitsSubsetOfArch) {
  const XXZZCode code(3, 3);
  const auto result = transpile(code.build(), make_mesh(5, 4), {});
  const auto touched = result.touched_physical_qubits();
  EXPECT_GE(touched.size(), code.num_qubits());
  for (std::uint32_t q : touched) EXPECT_LT(q, 20u);
}

TEST(Transpile, StatsPopulated) {
  const RepetitionCode code(3, RepetitionFlavor::BIT_FLIP);
  const auto result = transpile(code.build(), make_mesh(5, 2), {});
  EXPECT_GT(result.ops_before, 0u);
  EXPECT_GE(result.ops_after, result.ops_before);
  EXPECT_GT(result.depth_before, 0u);
  EXPECT_GT(result.depth_after, 0u);
  EXPECT_EQ(result.initial_layout.size(), code.num_qubits());
}

}  // namespace
}  // namespace radsurf
