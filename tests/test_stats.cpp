#include "util/stats.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace radsurf {
namespace {

TEST(Stats, MeanVarianceStddev) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(mean(xs), 3.0);
  EXPECT_DOUBLE_EQ(variance(xs), 2.5);
  EXPECT_NEAR(stddev(xs), 1.5811, 1e-3);
}

TEST(Stats, MeanOfEmptyIsZero) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(variance({}), 0.0);
  EXPECT_DOUBLE_EQ(variance({1.0}), 0.0);
}

TEST(Stats, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median({3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(median({4, 1, 3, 2}), 2.5);
  EXPECT_DOUBLE_EQ(median({7}), 7.0);
  EXPECT_THROW(median({}), InvalidArgument);
}

TEST(Stats, QuantileInterpolates) {
  const std::vector<double> xs = {0, 1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.125), 0.5);
  EXPECT_THROW(quantile(xs, 1.5), InvalidArgument);
  EXPECT_THROW(quantile({}, 0.5), InvalidArgument);
}

TEST(Stats, ProportionBasics) {
  Proportion p{25, 100};
  EXPECT_DOUBLE_EQ(p.rate(), 0.25);
  EXPECT_GT(p.wilson_low(), 0.15);
  EXPECT_LT(p.wilson_low(), 0.25);
  EXPECT_GT(p.wilson_high(), 0.25);
  EXPECT_LT(p.wilson_high(), 0.40);
}

TEST(Stats, ProportionEdgeCases) {
  Proportion empty{0, 0};
  EXPECT_DOUBLE_EQ(empty.rate(), 0.0);
  EXPECT_DOUBLE_EQ(empty.wilson_low(), 0.0);
  EXPECT_DOUBLE_EQ(empty.wilson_high(), 1.0);

  Proportion zero{0, 100};
  EXPECT_DOUBLE_EQ(zero.wilson_low(), 0.0);
  EXPECT_GT(zero.wilson_high(), 0.0);
  EXPECT_LT(zero.wilson_high(), 0.06);

  Proportion all{100, 100};
  EXPECT_DOUBLE_EQ(all.wilson_high(), 1.0);
  EXPECT_LT(all.wilson_low(), 1.0);
  EXPECT_GT(all.wilson_low(), 0.94);
}

TEST(Stats, ProportionIntervalShrinksWithTrials) {
  Proportion small{10, 40};
  Proportion big{1000, 4000};
  const double w_small = small.wilson_high() - small.wilson_low();
  const double w_big = big.wilson_high() - big.wilson_low();
  EXPECT_LT(w_big, w_small);
}

TEST(Stats, ProportionAccumulate) {
  Proportion a{3, 10};
  Proportion b{7, 20};
  a += b;
  EXPECT_EQ(a.successes, 10u);
  EXPECT_EQ(a.trials, 30u);
}

TEST(Stats, RunningStatsMatchesBatch) {
  const std::vector<double> xs = {2.5, -1, 0, 7, 3.25, 9, -4};
  RunningStats rs;
  for (double x : xs) rs.add(x);
  EXPECT_EQ(rs.count(), xs.size());
  EXPECT_NEAR(rs.mean(), mean(xs), 1e-12);
  EXPECT_NEAR(rs.variance(), variance(xs), 1e-12);
  EXPECT_NEAR(rs.stddev(), stddev(xs), 1e-12);
}

TEST(Stats, RunningStatsEmpty) {
  RunningStats rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
}

TEST(Stats, TwoProportionZ) {
  // Identical proportions: z = 0.
  EXPECT_DOUBLE_EQ(two_proportion_z({50, 100}, {50, 100}), 0.0);
  // Known value: 60/100 vs 40/100, pooled p = 0.5 -> z = 0.2/sqrt(0.005).
  EXPECT_NEAR(two_proportion_z({60, 100}, {40, 100}), 2.8284271, 1e-6);
  // Antisymmetry and degenerate cases.
  EXPECT_NEAR(two_proportion_z({40, 100}, {60, 100}), -2.8284271, 1e-6);
  EXPECT_DOUBLE_EQ(two_proportion_z({0, 100}, {0, 100}), 0.0);
  EXPECT_DOUBLE_EQ(two_proportion_z({0, 0}, {5, 10}), 0.0);
}

}  // namespace
}  // namespace radsurf
