#include "stab/tableau_sim.hpp"

#include <gtest/gtest.h>

namespace radsurf {
namespace {

TEST(TableauSim, DeterministicCircuit) {
  Circuit c;
  c.r(0);
  c.x(0);
  c.m(0);
  c.m(1);
  TableauSimulator sim(c);
  Rng rng(1);
  const BitVec rec = sim.sample(rng);
  ASSERT_EQ(rec.size(), 2u);
  EXPECT_TRUE(rec.get(0));
  EXPECT_FALSE(rec.get(1));
}

TEST(TableauSim, BellCircuitCorrelated) {
  Circuit c;
  c.h(0);
  c.cx(0, 1);
  c.m(0);
  c.m(1);
  TableauSimulator sim(c);
  Rng rng(2);
  int ones = 0;
  for (int i = 0; i < 500; ++i) {
    const BitVec rec = sim.sample(rng);
    EXPECT_EQ(rec.get(0), rec.get(1));
    ones += rec.get(0);
  }
  EXPECT_NEAR(ones / 500.0, 0.5, 0.07);
}

TEST(TableauSim, ReferenceSampleIsDeterministicAndPinned) {
  Circuit c;
  c.h(0);
  c.m(0);  // random outcome -> pinned to 0 in the reference
  c.x(1);
  c.m(1);  // deterministic 1
  TableauSimulator sim(c);
  const BitVec ref1 = sim.reference_sample();
  const BitVec ref2 = sim.reference_sample();
  EXPECT_EQ(ref1, ref2);
  EXPECT_FALSE(ref1.get(0));
  EXPECT_TRUE(ref1.get(1));
}

TEST(TableauSim, ReferenceSkipsNoise) {
  Circuit c;
  c.x(0);
  c.append(Gate::X_ERROR, {0}, {1.0});  // would always flip if sampled
  c.m(0);
  TableauSimulator sim(c);
  EXPECT_TRUE(sim.reference_sample().get(0));
  // But a real sample applies it.
  Rng rng(3);
  EXPECT_FALSE(sim.sample(rng).get(0));
}

TEST(TableauSim, XErrorRate) {
  Circuit c;
  c.i(0);
  c.append(Gate::X_ERROR, {0}, {0.3});
  c.m(0);
  TableauSimulator sim(c);
  Rng rng(4);
  int flips = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) flips += sim.sample(rng).get(0);
  EXPECT_NEAR(flips / static_cast<double>(n), 0.3, 0.03);
}

TEST(TableauSim, ZErrorInvisibleInZBasis) {
  Circuit c;
  c.i(0);
  c.append(Gate::Z_ERROR, {0}, {1.0});
  c.m(0);
  TableauSimulator sim(c);
  Rng rng(5);
  for (int i = 0; i < 20; ++i) EXPECT_FALSE(sim.sample(rng).get(0));
}

TEST(TableauSim, ZErrorVisibleAfterHadamard) {
  // |+> with a Z error becomes |->; H maps it to |1>.
  Circuit c;
  c.h(0);
  c.append(Gate::Z_ERROR, {0}, {1.0});
  c.h(0);
  c.m(0);
  TableauSimulator sim(c);
  Rng rng(6);
  for (int i = 0; i < 20; ++i) EXPECT_TRUE(sim.sample(rng).get(0));
}

TEST(TableauSim, Depolarize1Rate) {
  // DEPOLARIZE1(p) flips a |0> measurement with probability 2p/3 (X or Y).
  Circuit c;
  c.i(0);
  c.append(Gate::DEPOLARIZE1, {0}, {0.3});
  c.m(0);
  TableauSimulator sim(c);
  Rng rng(7);
  int flips = 0;
  const int n = 6000;
  for (int i = 0; i < n; ++i) flips += sim.sample(rng).get(0);
  EXPECT_NEAR(flips / static_cast<double>(n), 0.2, 0.02);
}

TEST(TableauSim, Depolarize2IndependentMarginals) {
  // E (x) E: each qubit independently flips with 2p/3.
  Circuit c;
  c.cx(0, 1);
  c.append(Gate::DEPOLARIZE2, {0, 1}, {0.3});
  c.m(0);
  c.m(1);
  TableauSimulator sim(c);
  Rng rng(8);
  int f0 = 0, f1 = 0, both = 0;
  const int n = 8000;
  for (int i = 0; i < n; ++i) {
    const BitVec rec = sim.sample(rng);
    f0 += rec.get(0);
    f1 += rec.get(1);
    both += rec.get(0) && rec.get(1);
  }
  const double p0 = f0 / static_cast<double>(n);
  const double p1 = f1 / static_cast<double>(n);
  const double pb = both / static_cast<double>(n);
  EXPECT_NEAR(p0, 0.2, 0.02);
  EXPECT_NEAR(p1, 0.2, 0.02);
  EXPECT_NEAR(pb, 0.04, 0.01);  // independence
}

TEST(TableauSim, ResetErrorAlwaysFires) {
  Circuit c;
  c.x(0);
  c.append(Gate::RESET_ERROR, {0}, {1.0});
  c.m(0);
  TableauSimulator sim(c);
  Rng rng(9);
  for (int i = 0; i < 20; ++i) EXPECT_FALSE(sim.sample(rng).get(0));
}

TEST(TableauSim, ResetErrorRate) {
  Circuit c;
  c.x(0);
  c.append(Gate::RESET_ERROR, {0}, {0.4});
  c.m(0);
  TableauSimulator sim(c);
  Rng rng(10);
  int zeros = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) zeros += !sim.sample(rng).get(0);
  EXPECT_NEAR(zeros / static_cast<double>(n), 0.4, 0.03);
}

TEST(TableauSim, ResetErrorOnSuperpositionIsZCollapse) {
  // Reset of one half of a Bell pair leaves the partner 50/50 — the
  // "decoherence" the radiation model induces.
  Circuit c;
  c.h(0);
  c.cx(0, 1);
  c.append(Gate::RESET_ERROR, {0}, {1.0});
  c.m(0);
  c.m(1);
  TableauSimulator sim(c);
  Rng rng(11);
  int partner_ones = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    const BitVec rec = sim.sample(rng);
    EXPECT_FALSE(rec.get(0));
    partner_ones += rec.get(1);
  }
  EXPECT_NEAR(partner_ones / static_cast<double>(n), 0.5, 0.05);
}

TEST(TableauSim, MrMeasuresThenResets) {
  Circuit c;
  c.x(0);
  c.mr(0);
  c.m(0);
  TableauSimulator sim(c);
  Rng rng(12);
  const BitVec rec = sim.sample(rng);
  EXPECT_TRUE(rec.get(0));   // measured the |1>
  EXPECT_FALSE(rec.get(1));  // then reset to |0>
}

TEST(TableauSim, SeedReproducibility) {
  Circuit c;
  for (std::uint32_t q = 0; q < 4; ++q) c.h(q);
  c.append(Gate::DEPOLARIZE1, {0, 1, 2, 3}, {0.2});
  for (std::uint32_t q = 0; q < 4; ++q) c.m(q);
  TableauSimulator sim(c);
  Rng r1(77), r2(77);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(sim.sample(r1), sim.sample(r2));
}

TEST(TableauSim, EmptyCircuitRejected) {
  Circuit c;
  EXPECT_THROW(TableauSimulator sim(c), InvalidArgument);
}

TEST(TableauSim, SampleIntoReusesBufferAndMatchesSample) {
  Circuit c;
  for (std::uint32_t q = 0; q < 3; ++q) c.h(q);
  c.append(Gate::DEPOLARIZE1, {0, 1, 2}, {0.3});
  for (std::uint32_t q = 0; q < 3; ++q) c.m(q);
  TableauSimulator a(c), b(c);
  Rng r1(5), r2(5);
  BitVec record(c.num_measurements());
  for (int i = 0; i < 25; ++i) {
    a.sample_into(r1, record);
    EXPECT_EQ(record, b.sample(r2));
  }
}

TEST(TableauSim, ReferenceTraceDeterministicSites) {
  // Qubit held in a Z eigenstate: every reset site is deterministic, and
  // the recorded value follows the reference state (|0> then |1>).
  Circuit c;
  c.r(0);
  c.append(Gate::RESET_ERROR, {0}, {0.5});
  c.x(0);
  c.append(Gate::RESET_ERROR, {0}, {0.5});
  c.m(0);
  TableauSimulator sim(c);
  const ReferenceTrace trace = sim.reference_trace();
  ASSERT_EQ(trace.reset_sites.size(), 2u);
  EXPECT_EQ(trace.reset_sites[0], +1);  // |0> before the X
  EXPECT_EQ(trace.reset_sites[1], -1);  // |1> after the X
}

TEST(TableauSim, ReferenceTraceRandomSiteAndErasureInstants) {
  Circuit c;
  c.h(0);
  c.append(Gate::RESET_ERROR, {0}, {0.5});
  c.m(0);
  TableauSimulator sim(c);
  std::vector<std::uint32_t> corrupted = {0};
  const ReferenceTrace trace = sim.reference_trace(&corrupted);
  ASSERT_EQ(trace.reset_sites.size(), 1u);
  EXPECT_EQ(trace.reset_sites[0], 0);  // superposition: reference random
  // Physical ops: H, M.  Before H the qubit is |0>; before M it is random.
  ASSERT_EQ(trace.num_physical_ops, 2u);
  ASSERT_EQ(trace.erasure_sites.size(), 2u);
  EXPECT_EQ(trace.erasure_sites[0], +1);
  EXPECT_EQ(trace.erasure_sites[1], 0);
}

}  // namespace
}  // namespace radsurf
