#include "arch/subgraphs.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "arch/topologies.hpp"
#include "util/error.hpp"

namespace radsurf {
namespace {

bool is_connected_set(const Graph& g, const std::vector<std::uint32_t>& s) {
  if (s.empty()) return false;
  std::set<std::uint32_t> in(s.begin(), s.end());
  std::vector<std::uint32_t> stack{s[0]};
  std::set<std::uint32_t> seen{s[0]};
  while (!stack.empty()) {
    const auto v = stack.back();
    stack.pop_back();
    for (auto w : g.neighbors(v)) {
      if (in.count(w) && !seen.count(w)) {
        seen.insert(w);
        stack.push_back(w);
      }
    }
  }
  return seen.size() == s.size();
}

TEST(Subgraphs, PathGraphClosedForm) {
  // A path of n nodes has exactly n-k+1 connected subsets of size k.
  const Graph g = make_linear(8);
  for (std::size_t k = 1; k <= 8; ++k) {
    const auto sets = enumerate_connected_subgraphs(g, k);
    EXPECT_EQ(sets.size(), 8 - k + 1) << "k=" << k;
  }
}

TEST(Subgraphs, CompleteGraphClosedForm) {
  // K_5: every subset is connected -> C(5, k).
  const Graph g = make_complete(5);
  const std::size_t binom[] = {0, 5, 10, 10, 5, 1};
  for (std::size_t k = 1; k <= 5; ++k)
    EXPECT_EQ(enumerate_connected_subgraphs(g, k).size(), binom[k]);
}

TEST(Subgraphs, EnumerationIsDuplicateFreeAndConnected) {
  const Graph g = make_mesh(3, 4);
  for (std::size_t k : {2, 3, 4}) {
    const auto sets = enumerate_connected_subgraphs(g, k);
    std::set<std::vector<std::uint32_t>> unique(sets.begin(), sets.end());
    EXPECT_EQ(unique.size(), sets.size()) << "k=" << k;
    for (const auto& s : sets) {
      EXPECT_EQ(s.size(), k);
      EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
      EXPECT_TRUE(is_connected_set(g, s));
    }
  }
}

TEST(Subgraphs, MeshSize2MatchesEdgeCount) {
  // Size-2 connected subsets are exactly the edges.
  const Graph g = make_mesh(4, 4);
  EXPECT_EQ(enumerate_connected_subgraphs(g, 2).size(), g.num_edges());
}

TEST(Subgraphs, MaxCountCapsOutput) {
  const Graph g = make_mesh(4, 4);
  const auto sets = enumerate_connected_subgraphs(g, 3, 7);
  EXPECT_EQ(sets.size(), 7u);
}

TEST(Subgraphs, TooLargeKGivesNothing) {
  const Graph g = make_linear(4);
  EXPECT_TRUE(enumerate_connected_subgraphs(g, 5).empty());
  EXPECT_THROW(enumerate_connected_subgraphs(g, 0), InvalidArgument);
}

TEST(Subgraphs, SamplerProducesValidDistinctSets) {
  const Graph g = make_mesh(5, 6);
  Rng rng(42);
  for (std::size_t k : {1, 4, 9, 15}) {
    const auto sets = sample_connected_subgraphs(g, k, 10, rng);
    EXPECT_GT(sets.size(), 0u) << "k=" << k;
    EXPECT_LE(sets.size(), 10u);
    std::set<std::vector<std::uint32_t>> unique(sets.begin(), sets.end());
    EXPECT_EQ(unique.size(), sets.size());
    for (const auto& s : sets) {
      EXPECT_EQ(s.size(), k);
      EXPECT_TRUE(is_connected_set(g, s));
    }
  }
}

TEST(Subgraphs, SamplerFindsAllWhenFew) {
  // Path of 5, k=4: only 2 such sets; sampler should find both.
  const Graph g = make_linear(5);
  Rng rng(7);
  const auto sets = sample_connected_subgraphs(g, 4, 10, rng);
  EXPECT_EQ(sets.size(), 2u);
}

TEST(Subgraphs, SamplerFullGraph) {
  const Graph g = make_mesh(3, 3);
  Rng rng(9);
  const auto sets = sample_connected_subgraphs(g, 9, 5, rng);
  ASSERT_EQ(sets.size(), 1u);
  EXPECT_EQ(sets[0].size(), 9u);
}

}  // namespace
}  // namespace radsurf
