// Property tests for sliding-window decoding (decoder/sliding_window.hpp).
//
// The load-bearing guarantee: with window >= total rounds the sliding-
// window decoder IS whole-history MWPM — same matching graph, same blossom
// input, bit-for-bit identical predictions on every defect set.  Shorter
// windows must agree wherever the window can jointly see the defects
// involved (singletons, time-adjacent pairs), dedupe periodic window
// shapes, and keep per-window state independent of the history length.
#include "decoder/sliding_window.hpp"

#include <gtest/gtest.h>

#include "arch/topologies.hpp"
#include "codes/repetition.hpp"
#include "codes/xxzz.hpp"
#include "decoder/mwpm.hpp"
#include "inject/campaign.hpp"

namespace radsurf {
namespace {

EngineOptions rounds_options(std::size_t rounds,
                             bool whole_history = true) {
  EngineOptions opts;
  opts.rounds = rounds;
  opts.whole_history_decoder = whole_history;
  return opts;
}

TEST(TimeWindow, FullDetectorSetReproducesGraphVerbatim) {
  RepetitionCode code(5, RepetitionFlavor::BIT_FLIP);
  InjectionEngine engine(code, make_mesh(5, 2), rounds_options(4));
  const MatchingGraph& full = engine.matching_graph();

  std::vector<std::uint32_t> all;
  for (std::uint32_t d = 0; d < full.num_detectors(); ++d) all.push_back(d);
  const MatchingGraphView view = time_window(full, all);

  ASSERT_EQ(view.graph.num_detectors(), full.num_detectors());
  ASSERT_EQ(view.graph.edges().size(), full.edges().size());
  for (std::size_t i = 0; i < full.edges().size(); ++i) {
    const MatchingEdge& a = full.edges()[i];
    const MatchingEdge& b = view.graph.edges()[i];
    EXPECT_EQ(a.a, b.a);
    EXPECT_EQ(a.b, b.b);
    EXPECT_DOUBLE_EQ(a.probability, b.probability);
    EXPECT_DOUBLE_EQ(a.weight, b.weight);
    EXPECT_EQ(a.observables, b.observables);
  }
}

TEST(TimeWindow, ProperSubsetDropsCutEdgesButKeepsBoundary) {
  RepetitionCode code(5, RepetitionFlavor::BIT_FLIP);
  InjectionEngine engine(code, make_mesh(5, 2), rounds_options(6));
  const MatchingGraph& full = engine.matching_graph();
  const auto& rounds = engine.detector_rounds();

  std::vector<std::uint32_t> subset;
  for (std::uint32_t d = 0; d < full.num_detectors(); ++d)
    if (rounds[d] >= 1 && rounds[d] < 3) subset.push_back(d);
  ASSERT_FALSE(subset.empty());
  const MatchingGraphView view = time_window(full, subset);

  EXPECT_EQ(view.graph.num_detectors(), subset.size());
  EXPECT_LT(view.graph.edges().size(), full.edges().size());
  bool has_boundary_edge = false;
  for (const MatchingEdge& e : view.graph.edges()) {
    EXPECT_LE(e.a, view.graph.boundary_node());
    EXPECT_LE(e.b, view.graph.boundary_node());
    if (e.b == view.graph.boundary_node()) has_boundary_edge = true;
  }
  // Real (spatial) boundary edges survive the cut.
  EXPECT_TRUE(has_boundary_edge);
}

// Enumerate every singleton and pair of detectors and require bit-for-bit
// agreement with whole-history MWPM when one window covers all rounds.
void expect_whole_history_exact(const InjectionEngine& engine,
                                std::size_t rounds) {
  const MatchingGraph& g = engine.matching_graph();
  MwpmDecoder whole(g);
  SlidingWindowDecoder windowed(g, engine.detector_rounds(), rounds,
                                {rounds, 0});
  ASSERT_EQ(windowed.num_windows(), 1u);

  const auto n = static_cast<std::uint32_t>(g.num_detectors());
  std::vector<std::uint32_t> defects;
  for (std::uint32_t a = 0; a < n; ++a) {
    for (std::uint32_t b = a; b < n; ++b) {
      defects.assign(1, a);
      if (b != a) defects.push_back(b);
      ASSERT_EQ(whole.decode(defects), windowed.decode(defects))
          << "defects {" << a << ", " << b << "}";
    }
  }
  // A band of larger defect sets (every run of 4 consecutive detectors).
  for (std::uint32_t a = 0; a + 4 <= n; ++a) {
    defects = {a, a + 1, a + 2, a + 3};
    ASSERT_EQ(whole.decode(defects), windowed.decode(defects))
        << "defect run at " << a;
  }
}

TEST(SlidingWindow, WindowCoveringAllRoundsIsWholeHistoryRep51) {
  RepetitionCode code(5, RepetitionFlavor::BIT_FLIP);
  InjectionEngine engine(code, make_mesh(5, 2), rounds_options(6));
  expect_whole_history_exact(engine, 6);
}

TEST(SlidingWindow, WindowCoveringAllRoundsIsWholeHistoryXxzz33) {
  XXZZCode code(3, 3);
  InjectionEngine engine(code, make_mesh(5, 4), rounds_options(4));
  expect_whole_history_exact(engine, 4);
}

TEST(SlidingWindow, OversizedWindowAlsoExact) {
  RepetitionCode code(3, RepetitionFlavor::BIT_FLIP);
  InjectionEngine engine(code, make_mesh(5, 2), rounds_options(3));
  const MatchingGraph& g = engine.matching_graph();
  MwpmDecoder whole(g);
  SlidingWindowDecoder windowed(g, engine.detector_rounds(), 3, {64, 0});
  const auto n = static_cast<std::uint32_t>(g.num_detectors());
  for (std::uint32_t a = 0; a < n; ++a)
    for (std::uint32_t b = a; b < n; ++b) {
      std::vector<std::uint32_t> defects{a};
      if (b != a) defects.push_back(b);
      ASSERT_EQ(whole.decode(defects), windowed.decode(defects));
    }
}

// Short windows: defects a window can jointly see must decode exactly as
// whole-history.  Singletons are always committed from a window interior;
// time-adjacent pairs (the signature of every real error mechanism) fit in
// one window because windows overlap by window - commit rounds.
TEST(SlidingWindow, ShortWindowsExactOnSingletonsAndAdjacentPairs) {
  RepetitionCode code(5, RepetitionFlavor::BIT_FLIP);
  InjectionEngine engine(code, make_mesh(5, 2), rounds_options(6));
  const MatchingGraph& g = engine.matching_graph();
  const auto& rounds = engine.detector_rounds();
  MwpmDecoder whole(g);
  SlidingWindowDecoder windowed(g, rounds, 6, {3, 1});

  const auto n = static_cast<std::uint32_t>(g.num_detectors());
  for (std::uint32_t a = 0; a < n; ++a) {
    std::vector<std::uint32_t> defects{a};
    ASSERT_EQ(whole.decode(defects), windowed.decode(defects))
        << "singleton " << a;
    for (std::uint32_t b = a + 1; b < n; ++b) {
      if (rounds[b] > rounds[a] + 1) continue;  // not jointly visible
      defects = {a, b};
      ASSERT_EQ(whole.decode(defects), windowed.decode(defects))
          << "adjacent pair {" << a << ", " << b << "}";
    }
  }
}

TEST(SlidingWindow, PeriodicWindowShapesAreShared) {
  RepetitionCode code(5, RepetitionFlavor::BIT_FLIP);
  InjectionEngine engine(code, make_mesh(5, 2),
                         rounds_options(60, /*whole_history=*/false));
  SlidingWindowDecoder decoder(engine.matching_graph(),
                               engine.detector_rounds(), 60, {6, 3});
  EXPECT_GT(decoder.num_windows(), 15u);
  // Interior windows of a periodic memory circuit share one decoder: only
  // the head (round-0 detectors) and tail (readout detectors) differ.
  EXPECT_LE(decoder.num_decoders(), 4u);
}

TEST(SlidingWindow, WindowStateIndependentOfHistoryLength) {
  RepetitionCode code(5, RepetitionFlavor::BIT_FLIP);
  std::size_t detectors_short = 0, detectors_long = 0;
  std::size_t decoders_short = 0, decoders_long = 0;
  {
    InjectionEngine engine(code, make_mesh(5, 2),
                           rounds_options(40, false));
    SlidingWindowDecoder d(engine.matching_graph(),
                           engine.detector_rounds(), 40, {8, 4});
    detectors_short = d.max_window_detectors();
    decoders_short = d.num_decoders();
  }
  {
    InjectionEngine engine(code, make_mesh(5, 2),
                           rounds_options(200, false));
    SlidingWindowDecoder d(engine.matching_graph(),
                           engine.detector_rounds(), 200, {8, 4});
    detectors_long = d.max_window_detectors();
    decoders_long = d.num_decoders();
  }
  // O(window), not O(rounds): 5x the history, identical decoder state.
  EXPECT_EQ(detectors_short, detectors_long);
  EXPECT_EQ(decoders_short, decoders_long);
}

TEST(SlidingWindow, RejectsNonOverlappingWindows) {
  RepetitionCode code(3, RepetitionFlavor::BIT_FLIP);
  InjectionEngine engine(code, make_mesh(5, 2), rounds_options(6));
  EXPECT_THROW(SlidingWindowDecoder(engine.matching_graph(),
                                    engine.detector_rounds(), 6, {3, 3}),
               InvalidArgument);
  EXPECT_THROW(SlidingWindowDecoder(engine.matching_graph(),
                                    engine.detector_rounds(), 6, {3, 4}),
               InvalidArgument);
}

TEST(SlidingWindow, EmptyDefectsDecodeToZero) {
  RepetitionCode code(3, RepetitionFlavor::BIT_FLIP);
  InjectionEngine engine(code, make_mesh(5, 2), rounds_options(4));
  SlidingWindowDecoder decoder(engine.matching_graph(),
                               engine.detector_rounds(), 4, {2, 1});
  EXPECT_EQ(decoder.decode({}), 0u);
}

}  // namespace
}  // namespace radsurf
